// EXP-M1 — CFD discovery from reference data (paper §2, Constraint Engine):
// wall time of the CTANE-style miner over clean customer and hospital data
// as rows grow, plus the number of CFDs found. Claim: near-linear in rows
// (partition construction dominates) and combinatorial in max LHS size.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "discovery/cfd_miner.h"
#include "discovery/fd_miner.h"
#include "discovery/partition.h"
#include "relational/encoded_relation.h"
#include "workload/hospital_gen.h"

namespace semandaq {
namespace {

void BM_CfdDiscoveryCustomer(benchmark::State& state) {
  const size_t tuples = static_cast<size_t>(state.range(0));
  const auto& wl = bench::CachedCustomer(tuples, 0.0, /*seed=*/21);
  discovery::CfdMinerOptions opts;
  opts.max_lhs = 2;
  opts.min_support = 3;
  size_t found = 0;
  for (auto _ : state) {
    discovery::CfdMiner miner(&wl.clean, opts);
    auto mined = miner.Mine();
    benchmark::DoNotOptimize(mined);
    if (mined.ok()) found = mined->size();
  }
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["cfds_found"] = static_cast<double>(found);
}
BENCHMARK(BM_CfdDiscoveryCustomer)->Arg(1000)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

void BM_CfdDiscoveryHospital(benchmark::State& state) {
  const size_t tuples = static_cast<size_t>(state.range(0));
  workload::HospitalWorkloadOptions wopts;
  wopts.num_tuples = tuples;
  wopts.noise_rate = 0.0;
  wopts.seed = 22;
  static std::map<size_t, workload::HospitalWorkload> cache;
  auto it = cache.find(tuples);
  if (it == cache.end()) {
    it = cache.emplace(tuples, workload::HospitalGenerator::Generate(wopts)).first;
  }
  discovery::CfdMinerOptions opts;
  opts.max_lhs = 2;
  opts.min_support = 3;
  size_t found = 0;
  for (auto _ : state) {
    discovery::CfdMiner miner(&it->second.clean, opts);
    auto mined = miner.Mine();
    benchmark::DoNotOptimize(mined);
    if (mined.ok()) found = mined->size();
  }
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["cfds_found"] = static_cast<double>(found);
}
BENCHMARK(BM_CfdDiscoveryHospital)->Arg(1000)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

// Π_X construction — the workhorse of TANE-family mining — over projected
// Row hashing vs. dictionary code columns. range(0) selects the attribute
// set: 0 = single attribute (ZIP), 1 = pair (CNT, ZIP), 2 = triple
// (CNT, ZIP, STR).
std::vector<size_t> PartitionCols(int selector) {
  using C = workload::CustomerGenerator;
  switch (selector) {
    case 0: return {C::kZip};
    case 1: return {C::kCnt, C::kZip};
    default: return {C::kCnt, C::kZip, C::kStr};
  }
}

void BM_PartitionBuild(benchmark::State& state) {
  const auto& wl = bench::CachedCustomer(64000, 0.05);
  const std::vector<size_t> cols = PartitionCols(static_cast<int>(state.range(0)));
  relational::EncodedRelation encoded(&wl.dirty);
  size_t classes = 0;
  for (auto _ : state) {
    auto p = discovery::Partition::Build(encoded, cols);
    benchmark::DoNotOptimize(p);
    classes = p.num_classes();
  }
  state.counters["lhs_size"] = static_cast<double>(cols.size());
  state.counters["classes"] = static_cast<double>(classes);
}
BENCHMARK(BM_PartitionBuild)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_PartitionBuildRows(benchmark::State& state) {
  const auto& wl = bench::CachedCustomer(64000, 0.05);
  const std::vector<size_t> cols = PartitionCols(static_cast<int>(state.range(0)));
  size_t classes = 0;
  for (auto _ : state) {
    auto p = discovery::Partition::Build(wl.dirty, cols);
    benchmark::DoNotOptimize(p);
    classes = p.num_classes();
  }
  state.counters["lhs_size"] = static_cast<double>(cols.size());
  state.counters["classes"] = static_cast<double>(classes);
}
BENCHMARK(BM_PartitionBuildRows)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// SIMD kernel A/B of the encoded partition build: range(0) selects the
// attribute set as above, range(1) the kernel tier (0 = scalar floor,
// 1 = SSE2, 2 = AVX2, clamped to host support — the "simd_level" counter
// records the tier that ran). Same first-touch class assignment on every
// tier; only the liveness/NULL masking and key packing differ.
void BM_PartitionBuildSimd(benchmark::State& state) {
  const auto& wl = bench::CachedCustomer(64000, 0.05);
  const std::vector<size_t> cols = PartitionCols(static_cast<int>(state.range(0)));
  const auto level =
      static_cast<semandaq::common::simd::Level>(state.range(1));
  relational::EncodedRelation encoded(&wl.dirty);
  size_t classes = 0;
  for (auto _ : state) {
    auto p = discovery::Partition::Build(encoded, cols, level);
    benchmark::DoNotOptimize(p);
    classes = p.num_classes();
  }
  state.counters["lhs_size"] = static_cast<double>(cols.size());
  state.counters["classes"] = static_cast<double>(classes);
  state.counters["simd_level"] = static_cast<double>(
      semandaq::common::simd::KernelsFor(level).level);
}
BENCHMARK(BM_PartitionBuildSimd)
    ->Args({0, 0})
    ->Args({0, 2})
    ->Args({1, 0})
    ->Args({1, 2})
    ->Unit(benchmark::kMillisecond);

// The parallel levelwise sweep A/B (PR 5): full FdMiner::Mine over clean
// customer data. range(0) = tuples, range(1) = num_threads (1 = serial
// sweep), range(2) = kernel tier request (0 = scalar floor, 2 = AVX2,
// clamped to host support — the "simd_level" counter records what ran).
// Mined output is byte-identical across all configurations; only the wall
// clock moves. tools/bench_discovery_ratio.py digests the serial-vs-
// parallel and scalar-vs-vector ratios into BENCH_discovery.json.
// NOTE: on a single-core build host the thread sweep shows pool overhead,
// not speedup — multi-core CI is where the parallel ratio materializes
// (same caveat as BM_NativeDetectSharded).
void BM_FdMine(benchmark::State& state) {
  const size_t tuples = static_cast<size_t>(state.range(0));
  const auto& wl = bench::CachedCustomer(tuples, 0.0, /*seed=*/24);
  discovery::FdMinerOptions opts;
  opts.max_lhs = 3;
  opts.num_threads = static_cast<size_t>(state.range(1));
  opts.simd_level = static_cast<semandaq::common::simd::Level>(state.range(2));
  size_t found = 0;
  for (auto _ : state) {
    discovery::FdMiner miner(&wl.clean, opts);
    auto fds = miner.Mine();
    benchmark::DoNotOptimize(fds);
    found = fds.size();
  }
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["threads"] = static_cast<double>(state.range(1));
  state.counters["fds_found"] = static_cast<double>(found);
  state.counters["simd_level"] = static_cast<double>(
      semandaq::common::simd::KernelsFor(opts.simd_level).level);
}
BENCHMARK(BM_FdMine)
    ->Args({64000, 1, 0})
    ->Args({64000, 1, 2})
    ->Args({64000, 2, 2})
    ->Args({64000, 4, 2})
    ->Unit(benchmark::kMillisecond);

// Single-thread A/B of the e(X) == e(X∪A) early-exit: the same serial
// sweep with the error test disabled, deciding every candidate by the
// stripped-class walk. Compare against BM_FdMine/64000/1/<tier>.
void BM_FdMineClassWalk(benchmark::State& state) {
  const auto& wl = bench::CachedCustomer(64000, 0.0, /*seed=*/24);
  discovery::FdMinerOptions opts;
  opts.max_lhs = 3;
  opts.use_error_exit = false;
  opts.simd_level = static_cast<semandaq::common::simd::Level>(state.range(0));
  for (auto _ : state) {
    discovery::FdMiner miner(&wl.clean, opts);
    auto fds = miner.Mine();
    benchmark::DoNotOptimize(fds);
  }
  state.counters["simd_level"] = static_cast<double>(
      semandaq::common::simd::KernelsFor(opts.simd_level).level);
}
BENCHMARK(BM_FdMineClassWalk)->Arg(0)->Arg(2)->Unit(benchmark::kMillisecond);

// Full CfdMiner::Mine (constant + variable CFDs, embedded FD run) over the
// same axes: range(0) = tuples, range(1) = num_threads, range(2) = kernel
// tier. The evidence scans are what the tier moves; the candidate fan-out
// is what the thread count moves.
void BM_CfdMine(benchmark::State& state) {
  const size_t tuples = static_cast<size_t>(state.range(0));
  const auto& wl = bench::CachedCustomer(tuples, 0.0, /*seed=*/24);
  discovery::CfdMinerOptions opts;
  opts.max_lhs = 2;
  opts.min_support = 3;
  opts.num_threads = static_cast<size_t>(state.range(1));
  opts.simd_level = static_cast<semandaq::common::simd::Level>(state.range(2));
  size_t found = 0;
  for (auto _ : state) {
    discovery::CfdMiner miner(&wl.clean, opts);
    auto mined = miner.Mine();
    benchmark::DoNotOptimize(mined);
    if (mined.ok()) found = mined->size();
  }
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["threads"] = static_cast<double>(state.range(1));
  state.counters["cfds_found"] = static_cast<double>(found);
  state.counters["simd_level"] = static_cast<double>(
      semandaq::common::simd::KernelsFor(opts.simd_level).level);
}
BENCHMARK(BM_CfdMine)
    ->Args({64000, 1, 0})
    ->Args({64000, 1, 2})
    ->Args({64000, 2, 2})
    ->Args({64000, 4, 2})
    ->Unit(benchmark::kMillisecond);

void BM_FdDiscoveryByLhsDepth(benchmark::State& state) {
  const auto& wl = bench::CachedCustomer(4000, 0.0, /*seed=*/23);
  discovery::FdMinerOptions opts;
  opts.max_lhs = static_cast<size_t>(state.range(0));
  size_t found = 0;
  for (auto _ : state) {
    discovery::FdMiner miner(&wl.clean, opts);
    auto fds = miner.Mine();
    benchmark::DoNotOptimize(fds);
    found = fds.size();
  }
  state.counters["max_lhs"] = static_cast<double>(state.range(0));
  state.counters["fds_found"] = static_cast<double>(found);
}
BENCHMARK(BM_FdDiscoveryByLhsDepth)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semandaq

BENCHMARK_MAIN();
