// EXP-D2 — detection cost vs. constraint-set size ([3]-style): fixed data
// (8k customer tuples, 5% noise), sweeping (a) the number of embedded FDs
// and (b) the pattern-tableau size of a single embedded FD. Claim: cost
// grows with the number of embedded FDs (one hash pass each) and mildly
// with tableau width (per-tuple pattern checks).

#include <benchmark/benchmark.h>

#include <set>

#include "bench_util.h"
#include "detect/native_detector.h"

namespace semandaq {
namespace {

constexpr size_t kTuples = 8000;

const char* kSigmaByFdCount[] = {
    // 1 embedded FD
    "customer: [CNT, ZIP] -> [CITY]\n",
    // 2
    "customer: [CNT, ZIP] -> [CITY]\n"
    "customer: [CNT=UK, ZIP=_] -> [STR=_]\n",
    // 3
    "customer: [CNT, ZIP] -> [CITY]\n"
    "customer: [CNT=UK, ZIP=_] -> [STR=_]\n"
    "customer: [CC] -> [CNT] { (44 | UK), (31 | NL), (1 | US) }\n",
    // 4
    "customer: [CNT, ZIP] -> [CITY]\n"
    "customer: [CNT=UK, ZIP=_] -> [STR=_]\n"
    "customer: [CC] -> [CNT] { (44 | UK), (31 | NL), (1 | US) }\n"
    "customer: [CNT, CITY] -> [AC]\n",
};

void BM_DetectByNumFds(benchmark::State& state) {
  const auto& wl = bench::CachedCustomer(kTuples, 0.05);
  const auto cfds =
      bench::MustParseCfds(kSigmaByFdCount[state.range(0) - 1]);
  for (auto _ : state) {
    detect::NativeDetector detector(&wl.dirty, cfds);
    auto table = detector.Detect();
    benchmark::DoNotOptimize(table);
  }
  state.counters["embedded_fds"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DetectByNumFds)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);

/// Builds a constant tableau for [CNT, ZIP] -> [CITY] with `rows` pattern
/// rows sampled from the clean data's distinct (CNT, ZIP, CITY) triples.
std::vector<cfd::Cfd> TableauOfWidth(const relational::Relation& clean, size_t rows) {
  using workload::CustomerGenerator;
  std::set<std::vector<std::string>> triples;
  clean.ForEach([&](relational::TupleId, const relational::Row& r) {
    triples.insert({r[CustomerGenerator::kCnt].AsString(),
                    r[CustomerGenerator::kZip].AsString(),
                    r[CustomerGenerator::kCity].AsString()});
  });
  std::vector<cfd::PatternTuple> tableau;
  for (const auto& t : triples) {
    if (tableau.size() >= rows) break;
    cfd::PatternTuple pt;
    pt.lhs = {cfd::PatternValue::Constant(relational::Value::String(t[0])),
              cfd::PatternValue::Constant(relational::Value::String(t[1]))};
    pt.rhs = cfd::PatternValue::Constant(relational::Value::String(t[2]));
    tableau.push_back(std::move(pt));
  }
  // Pad with wildcard rows if the data has fewer distinct triples.
  while (tableau.size() < rows) {
    cfd::PatternTuple pt;
    pt.lhs = {cfd::PatternValue::Wildcard(), cfd::PatternValue::Wildcard()};
    pt.rhs = cfd::PatternValue::Wildcard();
    tableau.push_back(std::move(pt));
  }
  return {cfd::Cfd("customer", {"CNT", "ZIP"}, "CITY", std::move(tableau))};
}

void BM_DetectByTableauSize(benchmark::State& state) {
  const auto& wl = bench::CachedCustomer(kTuples, 0.05);
  const auto cfds = TableauOfWidth(wl.clean, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    detect::NativeDetector detector(&wl.dirty, cfds);
    auto table = detector.Detect();
    benchmark::DoNotOptimize(table);
  }
  state.counters["tableau_rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DetectByTableauSize)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semandaq

BENCHMARK_MAIN();
