// Ablation study of the data cleanser's design choices (DESIGN.md §5):
// on a fixed dirty customer instance, toggle (a) LHS repairs, (b) the NULL
// escape surcharge, and (c) attribute weighting, and report the effect on
// repair quality (precision/recall vs. gold) and cost. This quantifies why
// the VLDB'07 cost model is configured the way it is.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "repair/batch_repair.h"
#include "workload/quality.h"

namespace semandaq {
namespace {

constexpr size_t kTuples = 4000;
constexpr double kNoise = 0.05;

void RunRepair(benchmark::State& state, const repair::RepairOptions& opts,
               const repair::CostModelOptions& cost_opts) {
  const auto& wl = bench::CachedCustomer(kTuples, kNoise, /*seed=*/13);
  const auto cfds = bench::MustParseCfds(workload::CustomerGenerator::PaperCfds());
  repair::CostModel cm(wl.dirty.schema(), cost_opts);

  workload::RepairQuality quality;
  double cost = 0;
  size_t escapes = 0;
  for (auto _ : state) {
    repair::BatchRepair repair(&wl.dirty, cfds, cm, opts);
    auto result = repair.Run();
    benchmark::DoNotOptimize(result);
    if (result.ok()) {
      quality = workload::EvaluateRepair(wl.clean, wl.dirty, result->repaired);
      cost = result->total_cost;
      escapes = result->null_escapes;
    }
  }
  state.counters["precision"] = quality.precision;
  state.counters["recall"] = quality.recall;
  state.counters["damaged"] = static_cast<double>(quality.damaged);
  state.counters["repair_cost"] = cost;
  state.counters["null_escapes"] = static_cast<double>(escapes);
}

void BM_Baseline(benchmark::State& state) {
  RunRepair(state, {}, {});
}
BENCHMARK(BM_Baseline)->Unit(benchmark::kMillisecond);

void BM_NoLhsRepairs(benchmark::State& state) {
  repair::RepairOptions opts;
  opts.enable_lhs_repairs = false;
  RunRepair(state, opts, {});
}
BENCHMARK(BM_NoLhsRepairs)->Unit(benchmark::kMillisecond);

void BM_CheapNullEscape(benchmark::State& state) {
  // null_penalty 0.1 makes "don't know" cheaper than any constant repair:
  // the cleanser should lean on NULLs, trading recall away.
  repair::CostModelOptions cost_opts;
  cost_opts.null_penalty = 0.1;
  RunRepair(state, {}, cost_opts);
}
BENCHMARK(BM_CheapNullEscape)->Unit(benchmark::kMillisecond);

void BM_FewIterations(benchmark::State& state) {
  repair::RepairOptions opts;
  opts.max_iterations = 1;
  RunRepair(state, opts, {});
}
BENCHMARK(BM_FewIterations)->Unit(benchmark::kMillisecond);

void BM_TrustedKeyAttributes(benchmark::State& state) {
  // Weight CC and ZIP (the identifying attributes) as highly trusted:
  // repairs shift toward the dependent attributes.
  repair::CostModelOptions cost_opts;
  cost_opts.attr_weights = {1.0, 1.0, 1.0, 5.0, 1.0, 5.0, 1.0};
  RunRepair(state, {}, cost_opts);
}
BENCHMARK(BM_TrustedKeyAttributes)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semandaq

BENCHMARK_MAIN();
