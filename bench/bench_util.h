#ifndef SEMANDAQ_BENCH_BENCH_UTIL_H_
#define SEMANDAQ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "cfd/cfd_parser.h"
#include "workload/customer_gen.h"

namespace semandaq::bench {

/// Parses a CFD document, aborting on error (bench inputs are static).
inline std::vector<cfd::Cfd> MustParseCfds(const std::string& text) {
  auto r = cfd::ParseCfdSet(text);
  if (!r.ok()) {
    std::fprintf(stderr, "bad CFD text: %s\n", r.status().ToString().c_str());
    std::abort();
  }
  return std::move(*r);
}

/// Cache of generated customer workloads keyed by (tuples, noise%, seed) so
/// repeated benchmark runs do not regenerate.
inline const workload::CustomerWorkload& CachedCustomer(size_t tuples,
                                                        double noise,
                                                        uint64_t seed = 42) {
  static std::map<std::tuple<size_t, int, uint64_t>, workload::CustomerWorkload>
      cache;
  const auto key = std::make_tuple(tuples, static_cast<int>(noise * 1000), seed);
  auto it = cache.find(key);
  if (it == cache.end()) {
    workload::CustomerWorkloadOptions opts;
    opts.num_tuples = tuples;
    opts.noise_rate = noise;
    opts.seed = seed;
    it = cache.emplace(key, workload::CustomerGenerator::Generate(opts)).first;
  }
  return it->second;
}

}  // namespace semandaq::bench

#endif  // SEMANDAQ_BENCH_BENCH_UTIL_H_
