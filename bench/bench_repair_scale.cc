// EXP-R2 — repair scalability ([8]-style): BatchRepair wall time over the
// customer workload at fixed 5% noise as the relation grows 1k -> 16k.
// Claim: near-linear growth (each round is detection + local fixes; the
// number of rounds is small and size-independent).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "repair/batch_repair.h"

namespace semandaq {
namespace {

void BM_BatchRepairScale(benchmark::State& state) {
  const size_t tuples = static_cast<size_t>(state.range(0));
  const auto& wl = bench::CachedCustomer(tuples, 0.05, /*seed=*/9);
  const auto cfds = bench::MustParseCfds(workload::CustomerGenerator::PaperCfds());
  repair::CostModel cm(wl.dirty.schema());

  size_t changes = 0;
  int iterations = 0;
  for (auto _ : state) {
    repair::BatchRepair repair(&wl.dirty, cfds, cm);
    auto result = repair.Run();
    benchmark::DoNotOptimize(result);
    if (result.ok()) {
      changes = result->changes.size();
      iterations = result->iterations;
    }
  }
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["changed_cells"] = static_cast<double>(changes);
  state.counters["rounds"] = static_cast<double>(iterations);
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_BatchRepairScale)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(8000)
    ->Arg(16000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semandaq

BENCHMARK_MAIN();
