// EXP-D1 — detection scalability in |D| ([3] Fan et al., TODS'08 style):
// wall time of a full detection pass over the customer relation as the
// number of tuples grows, for both code paths (native hash detection and
// generated-SQL detection through the sql:: engine). The paper's claim:
// detection is a small number of scans, scaling near-linearly; the SQL path
// pays a constant interpreter factor but keeps the same asymptotics.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "detect/native_detector.h"
#include "detect/sql_detector.h"
#include "relational/database.h"

namespace semandaq {
namespace {

constexpr double kNoise = 0.05;

void BM_NativeDetect(benchmark::State& state) {
  const size_t tuples = static_cast<size_t>(state.range(0));
  const auto& wl = bench::CachedCustomer(tuples, kNoise);
  const auto cfds = bench::MustParseCfds(workload::CustomerGenerator::PaperCfds());
  int64_t total_vio = 0;
  for (auto _ : state) {
    detect::NativeDetector detector(&wl.dirty, cfds);
    auto table = detector.Detect();
    benchmark::DoNotOptimize(table);
    total_vio = table.ok() ? table->TotalVio() : -1;
  }
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["total_vio"] = static_cast<double>(total_vio);
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_NativeDetect)->Arg(1000)->Arg(4000)->Arg(16000)->Arg(64000)
    ->Unit(benchmark::kMillisecond);

void BM_SqlDetect(benchmark::State& state) {
  const size_t tuples = static_cast<size_t>(state.range(0));
  const auto& wl = bench::CachedCustomer(tuples, kNoise);
  const auto cfds = bench::MustParseCfds(workload::CustomerGenerator::PaperCfds());
  int64_t total_vio = 0;
  for (auto _ : state) {
    state.PauseTiming();
    relational::Database db;
    (void)db.AddRelation(wl.dirty.Clone());
    state.ResumeTiming();
    detect::SqlDetector detector(&db, "customer", cfds);
    auto table = detector.Detect();
    benchmark::DoNotOptimize(table);
    total_vio = table.ok() ? table->TotalVio() : -1;
  }
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["total_vio"] = static_cast<double>(total_vio);
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_SqlDetect)->Arg(1000)->Arg(4000)->Arg(16000)->Arg(64000)
    ->Unit(benchmark::kMillisecond);

// Noise sensitivity at fixed size: more dirt means more violation records
// but the scan cost dominates.
void BM_NativeDetectNoise(benchmark::State& state) {
  const double noise = static_cast<double>(state.range(0)) / 100.0;
  const auto& wl = bench::CachedCustomer(16000, noise);
  const auto cfds = bench::MustParseCfds(workload::CustomerGenerator::PaperCfds());
  int64_t total_vio = 0;
  for (auto _ : state) {
    detect::NativeDetector detector(&wl.dirty, cfds);
    auto table = detector.Detect();
    total_vio = table.ok() ? table->TotalVio() : -1;
  }
  state.counters["noise_pct"] = static_cast<double>(state.range(0));
  state.counters["total_vio"] = static_cast<double>(total_vio);
}
BENCHMARK(BM_NativeDetectNoise)->Arg(1)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semandaq

BENCHMARK_MAIN();
