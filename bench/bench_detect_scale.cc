// EXP-D1 — detection scalability in |D| ([3] Fan et al., TODS'08 style):
// wall time of a full detection pass over the customer relation as the
// number of tuples grows, for the code paths native-encoded (dictionary
// codes over a warm columnar snapshot), native-row (the original Row-hash
// scan), and generated-SQL detection through the sql:: engine. The paper's
// claim: detection is a small number of scans, scaling near-linearly; the
// SQL path pays a constant interpreter factor but keeps the same
// asymptotics. The encoded/row pair is the A/B for the columnar fast path.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "detect/native_detector.h"
#include "detect/sql_detector.h"
#include "relational/csv_io.h"
#include "relational/database.h"
#include "relational/encoded_relation.h"
#include "storage/snapshot.h"

namespace semandaq {
namespace {

constexpr double kNoise = 0.05;

// Shared body of the three native-detection variants; `warm` attaches an
// externally kept encoded snapshot (nullptr = whatever `options` implies,
// building a local snapshot per Detect when the encoded path is on).
void RunNativeDetect(benchmark::State& state, detect::DetectorOptions options,
                     relational::EncodedRelation* warm) {
  const size_t tuples = static_cast<size_t>(state.range(0));
  const auto& wl = bench::CachedCustomer(tuples, kNoise);
  const auto cfds = bench::MustParseCfds(workload::CustomerGenerator::PaperCfds());
  int64_t total_vio = 0;
  for (auto _ : state) {
    if (warm != nullptr) warm->Sync();
    detect::NativeDetector detector(&wl.dirty, cfds, options);
    if (warm != nullptr) detector.set_encoded(warm);
    auto table = detector.Detect();
    benchmark::DoNotOptimize(table);
    total_vio = table.ok() ? table->TotalVio() : -1;
  }
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["total_vio"] = static_cast<double>(total_vio);
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsIterationInvariantRate);
}

// The production configuration: detection over a dictionary-encoded
// snapshot that outlives the detector (the relation keeps it warm; Sync is
// a no-op between runs on static data).
void BM_NativeDetect(benchmark::State& state) {
  const auto& wl =
      bench::CachedCustomer(static_cast<size_t>(state.range(0)), kNoise);
  relational::EncodedRelation encoded(&wl.dirty);
  RunNativeDetect(state, detect::DetectorOptions{}, &encoded);
}
BENCHMARK(BM_NativeDetect)->Arg(1000)->Arg(4000)->Arg(16000)->Arg(64000)
    ->Unit(benchmark::kMillisecond);

// Encoded path paying the full snapshot build inside the timed region —
// the cold-start cost a one-shot caller sees.
void BM_NativeDetectColdEncode(benchmark::State& state) {
  RunNativeDetect(state, detect::DetectorOptions{}, nullptr);
}
BENCHMARK(BM_NativeDetectColdEncode)->Arg(1000)->Arg(4000)->Arg(16000)->Arg(64000)
    ->Unit(benchmark::kMillisecond);

// The full CSV cold path: time-to-first-detection for a process that starts
// from a CSV file on disk — read, parse, dictionary-encode, scan. This is
// the baseline the persistent columnar store replaces.
void BM_NativeDetectColdCsv(benchmark::State& state) {
  const size_t tuples = static_cast<size_t>(state.range(0));
  const auto& wl = bench::CachedCustomer(tuples, kNoise);
  const auto cfds = bench::MustParseCfds(workload::CustomerGenerator::PaperCfds());
  const std::string path =
      "/tmp/semandaq_bench_" + std::to_string(tuples) + ".csv";
  if (!relational::SaveRelationCsv(wl.dirty, path).ok()) std::abort();
  int64_t total_vio = 0;
  for (auto _ : state) {
    auto rel = relational::LoadRelationCsv("customer", path);
    if (!rel.ok()) std::abort();
    detect::NativeDetector detector(&*rel, cfds);
    auto table = detector.Detect();
    benchmark::DoNotOptimize(table);
    total_vio = table.ok() ? table->TotalVio() : -1;
  }
  std::remove(path.c_str());
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["total_vio"] = static_cast<double>(total_vio);
}
BENCHMARK(BM_NativeDetectColdCsv)->Arg(1000)->Arg(4000)->Arg(16000)->Arg(64000)
    ->Unit(benchmark::kMillisecond);

// Warm start from the persistent columnar store (src/storage): one bulk
// snapshot read feeds the code columns with no per-value re-encode, then
// the same detection scan. The A/B against BM_NativeDetectColdCsv is the
// store's reason to exist — time-to-first-detection without paying the
// parse + encode cold path. (The snapshot is written once outside the
// timed region; the loop measures load + detect only.)
void BM_NativeDetectColdLoad(benchmark::State& state) {
  const size_t tuples = static_cast<size_t>(state.range(0));
  const auto& wl = bench::CachedCustomer(tuples, kNoise);
  const auto cfds = bench::MustParseCfds(workload::CustomerGenerator::PaperCfds());
  const std::string path =
      "/tmp/semandaq_bench_" + std::to_string(tuples) + ".sdq";
  {
    const relational::EncodedRelation enc(&wl.dirty);
    auto stats = storage::SnapshotWriter::Write(wl.dirty, enc, path);
    if (!stats.ok()) std::abort();
  }
  int64_t total_vio = 0;
  for (auto _ : state) {
    auto loaded = storage::SnapshotReader::Read(path);
    if (!loaded.ok()) std::abort();
    relational::EncodedRelation enc = relational::EncodedRelation::FromStorage(
        &loaded->relation, std::move(loaded->dicts), std::move(loaded->columns));
    detect::NativeDetector detector(&loaded->relation, cfds);
    detector.set_encoded(&enc);
    auto table = detector.Detect();
    benchmark::DoNotOptimize(table);
    total_vio = table.ok() ? table->TotalVio() : -1;
  }
  std::remove(path.c_str());
  std::remove(storage::WalPathFor(path).c_str());
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["total_vio"] = static_cast<double>(total_vio);
}
BENCHMARK(BM_NativeDetectColdLoad)->Arg(1000)->Arg(4000)->Arg(16000)->Arg(64000)
    ->Unit(benchmark::kMillisecond);

// Thread sweep of the sharded scan over a warm snapshot: the LHS code-key
// space partitions into num_threads shards (second Arg; 1 = the serial
// fast path, the baseline the speedup is measured against). The output is
// identical to serial for every point of the sweep — this measures pure
// scan parallelism, not a semantic variant.
void BM_NativeDetectSharded(benchmark::State& state) {
  const auto& wl =
      bench::CachedCustomer(static_cast<size_t>(state.range(0)), kNoise);
  relational::EncodedRelation encoded(&wl.dirty);
  detect::DetectorOptions options;
  options.num_threads = static_cast<size_t>(state.range(1));
  RunNativeDetect(state, options, &encoded);
  // "shards", not "threads": benchmark emits its own per-run "threads" JSON
  // field and duplicate keys would make the artifact parser-dependent.
  state.counters["shards"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_NativeDetectSharded)
    ->Args({64000, 1})
    ->Args({64000, 2})
    ->Args({64000, 4})
    ->Args({64000, 8})
    ->Args({256000, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// SIMD kernel A/B over a warm snapshot: same blocked scan algorithm, the
// second Arg forces the kernel tier (0 = the scalar dispatch floor, 1 =
// SSE2, 2 = AVX2; tiers above the host's support clamp down — the
// "simd_level" counter records what actually ran). The constant-tableau Σ
// keeps the run kernel-bound (pattern match + liveness/NULL filtering +
// RHS disagreement masks), which is exactly the layer the tiers differ
// in; the mixed-workload scaling story stays with BM_NativeDetect. The
// scalar-vs-vector ratio of this A/B is the acceptance number recorded in
// BENCH_detect.json.
void BM_NativeDetectSimd(benchmark::State& state) {
  const size_t tuples = static_cast<size_t>(state.range(0));
  const auto& wl = bench::CachedCustomer(tuples, kNoise);
  relational::EncodedRelation encoded(&wl.dirty);
  const auto cfds = bench::MustParseCfds(
      "customer: [CC] -> [CNT] { (44 | UK), (31 | NL), (1 | US) }\n"
      "customer: [CNT] -> [CC] { (UK | 44), (NL | 31), (US | 1) }\n"
      "customer: [CITY] -> [AC] { (Edinburgh | 131), (London | 20), "
      "(Glasgow | 141), (Amsterdam | 20), (Utrecht | 30), (NewYork | 212), "
      "(Chicago | 312) }\n");
  detect::DetectorOptions options;
  options.simd_level =
      static_cast<semandaq::common::simd::Level>(state.range(1));
  int64_t total_vio = 0;
  for (auto _ : state) {
    detect::NativeDetector detector(&wl.dirty, cfds, options);
    detector.set_encoded(&encoded);
    auto table = detector.Detect();
    benchmark::DoNotOptimize(table);
    total_vio = table.ok() ? table->TotalVio() : -1;
  }
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["total_vio"] = static_cast<double>(total_vio);
  state.counters["simd_level"] = static_cast<double>(
      semandaq::common::simd::KernelsFor(options.simd_level).level);
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_NativeDetectSimd)
    ->Args({64000, 0})
    ->Args({64000, 1})
    ->Args({64000, 2})
    ->Args({256000, 0})
    ->Args({256000, 2})
    ->Unit(benchmark::kMillisecond);

// The pre-columnar baseline: hash partitioning on projected Rows.
void BM_NativeDetectRows(benchmark::State& state) {
  RunNativeDetect(state, detect::DetectorOptions{/*use_encoded=*/false},
                  nullptr);
}
BENCHMARK(BM_NativeDetectRows)->Arg(1000)->Arg(4000)->Arg(16000)->Arg(64000)
    ->Unit(benchmark::kMillisecond);

void BM_SqlDetect(benchmark::State& state) {
  const size_t tuples = static_cast<size_t>(state.range(0));
  const auto& wl = bench::CachedCustomer(tuples, kNoise);
  const auto cfds = bench::MustParseCfds(workload::CustomerGenerator::PaperCfds());
  int64_t total_vio = 0;
  for (auto _ : state) {
    state.PauseTiming();
    relational::Database db;
    (void)db.AddRelation(wl.dirty.Clone());
    state.ResumeTiming();
    detect::SqlDetector detector(&db, "customer", cfds);
    auto table = detector.Detect();
    benchmark::DoNotOptimize(table);
    total_vio = table.ok() ? table->TotalVio() : -1;
  }
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["total_vio"] = static_cast<double>(total_vio);
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_SqlDetect)->Arg(1000)->Arg(4000)->Arg(16000)->Arg(64000)
    ->Unit(benchmark::kMillisecond);

// Noise sensitivity at fixed size: more dirt means more violation records
// but the scan cost dominates.
void BM_NativeDetectNoise(benchmark::State& state) {
  const double noise = static_cast<double>(state.range(0)) / 100.0;
  const auto& wl = bench::CachedCustomer(16000, noise);
  const auto cfds = bench::MustParseCfds(workload::CustomerGenerator::PaperCfds());
  int64_t total_vio = 0;
  for (auto _ : state) {
    detect::NativeDetector detector(&wl.dirty, cfds);
    auto table = detector.Detect();
    total_vio = table.ok() ? table->TotalVio() : -1;
  }
  state.counters["noise_pct"] = static_cast<double>(state.range(0));
  state.counters["total_vio"] = static_cast<double>(total_vio);
}
BENCHMARK(BM_NativeDetectNoise)->Arg(1)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semandaq

BENCHMARK_MAIN();
