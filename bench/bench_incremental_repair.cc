// EXP-R3 — incremental vs. batch repair ([8] IncRepair): a clean 16k
// customer base receives a dirty delta of growing size; compare IncRepair
// (only the delta is repairable) against running BatchRepair over the whole
// updated instance. Claim: IncRepair's cost tracks |Δ|, not |D|, and both
// restore consistency.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/random.h"
#include "repair/batch_repair.h"
#include "repair/inc_repair.h"

namespace semandaq {
namespace {

constexpr size_t kBase = 16000;

/// A dirty delta: inserts cloned from clean rows with one corrupted cell.
relational::UpdateBatch DirtyDelta(const relational::Relation& clean, size_t size,
                                   common::Rng* rng) {
  using workload::CustomerGenerator;
  relational::UpdateBatch batch;
  std::vector<relational::TupleId> live = clean.LiveIds();
  for (size_t i = 0; i < size; ++i) {
    relational::Row row = clean.row(live[rng->NextIndex(live.size())]);
    row[CustomerGenerator::kName] =
        relational::Value::String("Delta_" + std::to_string(i));
    const size_t col = 1 + rng->NextIndex(6);
    row[col] = relational::Value::String(rng->NextString(5));
    batch.push_back(relational::Update::Insert(std::move(row)));
  }
  return batch;
}

void BM_IncRepair(benchmark::State& state) {
  const size_t delta = static_cast<size_t>(state.range(0));
  const auto& wl = bench::CachedCustomer(kBase, 0.0, /*seed=*/11);  // clean base
  const auto cfds = bench::MustParseCfds(workload::CustomerGenerator::PaperCfds());
  repair::CostModel cm(wl.clean.schema());
  common::Rng rng(99);

  // The stateful engine: detector state is built once (the DBMS-index
  // analogue); each measured batch costs O(|Δ|).
  relational::Relation working = wl.clean.Clone();
  repair::IncRepairEngine engine(&working, cfds, cm);
  if (!engine.Start().ok()) state.SkipWithError("engine start failed");

  size_t remaining = 0;
  for (auto _ : state) {
    state.PauseTiming();
    relational::UpdateBatch batch = DirtyDelta(wl.clean, delta, &rng);
    state.ResumeTiming();
    auto result = engine.ApplyAndRepair(batch);
    benchmark::DoNotOptimize(result);
    if (result.ok()) remaining = result->remaining_violations;
  }
  state.counters["delta"] = static_cast<double>(delta);
  state.counters["remaining_violations"] = static_cast<double>(remaining);
  state.counters["updates_per_sec"] = benchmark::Counter(
      static_cast<double>(delta), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_IncRepair)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_BatchRepairFromScratch(benchmark::State& state) {
  const size_t delta = static_cast<size_t>(state.range(0));
  const auto& wl = bench::CachedCustomer(kBase, 0.0, /*seed=*/11);
  const auto cfds = bench::MustParseCfds(workload::CustomerGenerator::PaperCfds());
  repair::CostModel cm(wl.clean.schema());
  common::Rng rng(99);

  for (auto _ : state) {
    state.PauseTiming();
    relational::Relation updated = wl.clean.Clone();
    relational::UpdateBatch batch = DirtyDelta(wl.clean, delta, &rng);
    (void)relational::ApplyUpdates(batch, &updated);
    state.ResumeTiming();
    repair::BatchRepair repair(&updated, cfds, cm);
    auto result = repair.Run();
    benchmark::DoNotOptimize(result);
  }
  state.counters["delta"] = static_cast<double>(delta);
}
BENCHMARK(BM_BatchRepairFromScratch)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semandaq

BENCHMARK_MAIN();
