// FIG-5 — "Data Cleansing Review": regenerates the paper's review screen on
// a 40-tuple / 10%-noise customer instance: the candidate repair with
// modified cells highlighted as [old -> new], the ranked alternatives per
// cell (the pop-up of Fig. 5), and the background incremental detection a
// user override triggers.

#include <cstdio>

#include "cfd/cfd_parser.h"
#include "repair/batch_repair.h"
#include "repair/repair_review.h"
#include "workload/customer_gen.h"
#include "workload/quality.h"

int main() {
  using semandaq::workload::CustomerGenerator;

  std::printf("=== Figure 5: Data Cleansing Review ===\n\n");

  semandaq::workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 40;
  opts.noise_rate = 0.10;
  opts.seed = 2008;
  auto wl = CustomerGenerator::Generate(opts);

  auto cfds_or = semandaq::cfd::ParseCfdSet(CustomerGenerator::PaperCfds());
  if (!cfds_or.ok()) return 1;
  auto cfds = std::move(*cfds_or);

  semandaq::repair::CostModel cm(wl.dirty.schema());
  semandaq::repair::BatchRepair repair(&wl.dirty, cfds, cm);
  auto result = repair.Run();
  if (!result.ok()) {
    std::printf("repair failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  auto quality =
      semandaq::workload::EvaluateRepair(wl.clean, wl.dirty, result->repaired);

  semandaq::repair::RepairReview review(&wl.dirty, std::move(*result), cfds);
  if (!review.Start().ok()) return 1;

  std::printf("%s\n", review.RenderDiff(40).c_str());

  std::printf("ranked alternatives per modified cell (pop-up of Fig. 5):\n");
  for (const auto& ch : review.changes()) {
    if (ch.alternatives.empty()) continue;
    std::printf("  tuple #%lld %s:", static_cast<long long>(ch.tid),
                wl.dirty.schema().attr(ch.col).name.c_str());
    for (const auto& [v, cost] : ch.alternatives) {
      std::printf("  %s (cost %.3f)", v.ToDisplayString().c_str(), cost);
    }
    std::printf("\n");
  }

  std::printf("\nrepair quality vs. gold standard: %s\n", quality.ToString().c_str());

  // A user override that re-introduces a conflict triggers background
  // incremental detection (third bullet of the demo's Fig. 5 scenario).
  if (!review.changes().empty()) {
    const auto& ch = review.changes().front();
    auto fresh = review.OverrideCell(ch.tid, ch.col, ch.original);
    if (fresh.ok()) {
      std::printf("\noverride of tuple #%lld back to '%s' -> %zu newly conflicting tuple(s):",
                  static_cast<long long>(ch.tid),
                  ch.original.ToDisplayString().c_str(), fresh->size());
      for (auto tid : *fresh) std::printf(" #%lld", static_cast<long long>(tid));
      std::printf("\n");
    }
  }
  return 0;
}
