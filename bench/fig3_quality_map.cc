// FIG-3 — "Error Detection and Data Quality Map": regenerates the paper's
// tuple-level quality map ("the darker the color of a tuple is, the greater
// vio(t) is") over a 60-tuple customer sample with 8% injected noise, using
// the SQL-based detection path the demo showcases.

#include <cstdio>

#include "audit/render.h"
#include "cfd/cfd_parser.h"
#include "detect/sql_detector.h"
#include "relational/database.h"
#include "workload/customer_gen.h"

int main() {
  using semandaq::workload::CustomerGenerator;

  std::printf("=== Figure 3: Error Detection and Data Quality Map ===\n\n");

  semandaq::workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 60;
  opts.noise_rate = 0.08;
  opts.seed = 2008;
  auto wl = CustomerGenerator::Generate(opts);

  auto cfds_or = semandaq::cfd::ParseCfdSet(CustomerGenerator::PaperCfds());
  if (!cfds_or.ok()) return 1;

  semandaq::relational::Database db;
  auto dirty_copy = wl.dirty.Clone();
  if (!db.AddRelation(std::move(dirty_copy)).ok()) return 1;

  semandaq::detect::SqlDetector detector(&db, "customer", std::move(*cfds_or));
  auto table = detector.Detect();
  if (!table.ok()) {
    std::printf("detect failed: %s\n", table.status().ToString().c_str());
    return 1;
  }

  // Show one generated detection query pair, the technique of [3].
  if (!detector.queries().empty()) {
    const auto& q = detector.queries().front();
    std::printf("generated Q_C: %s\n", q.qc.c_str());
    std::printf("generated Q_V: %s\n\n", q.qv_keys.c_str());
  }

  std::printf("%s\n",
              semandaq::audit::AsciiRender::QualityMap(wl.dirty, *table, 60).c_str());
  return 0;
}
