// EXP-S1 — consistency (satisfiability) analysis cost ([3] §static
// analysis): synthetic CFD sets of growing size over an 8-attribute schema.
// Three regimes: satisfiable sets over infinite domains (fast: the witness
// search succeeds early), unsatisfiable sets (the search proves exhaustion),
// and finite-domain attributes (the NP-hard regime the paper highlights).

#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.h"
#include "cfd/satisfiability.h"
#include "relational/schema.h"

namespace semandaq {
namespace {

using relational::Schema;
using relational::Value;

Schema OpenSchema() {
  return Schema::AllStrings({"A0", "A1", "A2", "A3", "A4", "A5", "A6", "A7"});
}

/// K chained constant CFDs [A_i = c] -> [A_{i+1} = c'], all satisfiable.
std::string SatisfiableSigma(size_t k) {
  std::string text;
  for (size_t i = 0; i < k; ++i) {
    const size_t a = i % 7;
    text += "t: [A" + std::to_string(a) + "=c" + std::to_string(i) + "] -> [A" +
            std::to_string(a + 1) + "=v" + std::to_string(i % 3) + "]\n";
  }
  return text;
}

/// Like SatisfiableSigma but with a forced contradiction on top.
std::string UnsatisfiableSigma(size_t k) {
  std::string text = SatisfiableSigma(k > 2 ? k - 2 : 0);
  text += "t: [A0=_] -> [A7=x]\n";
  text += "t: [A1=_] -> [A7=y]\n";
  return text;
}

void BM_SatisfiableOpenDomain(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  Schema schema = OpenSchema();
  const auto cfds = bench::MustParseCfds(SatisfiableSigma(k));
  cfd::SatisfiabilityChecker checker(schema);
  size_t nodes = 0;
  bool sat = false;
  for (auto _ : state) {
    auto report = checker.Check(cfds);
    benchmark::DoNotOptimize(report);
    if (report.ok()) {
      nodes = report->nodes_explored;
      sat = report->satisfiable;
    }
  }
  state.counters["cfds"] = static_cast<double>(k);
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["satisfiable"] = sat ? 1 : 0;
}
BENCHMARK(BM_SatisfiableOpenDomain)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_UnsatisfiableOpenDomain(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  Schema schema = OpenSchema();
  const auto cfds = bench::MustParseCfds(UnsatisfiableSigma(k));
  cfd::SatisfiabilityChecker checker(schema);
  bool sat = true;
  for (auto _ : state) {
    auto report = checker.Check(cfds);
    benchmark::DoNotOptimize(report);
    if (report.ok()) sat = report->satisfiable;
  }
  state.counters["cfds"] = static_cast<double>(k);
  state.counters["satisfiable"] = sat ? 1 : 0;
}
BENCHMARK(BM_UnsatisfiableOpenDomain)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_FiniteDomainRegime(benchmark::State& state) {
  // Finite {Y,N} flags make the search enumerate domain combinations — the
  // regime where the problem turns NP-complete ([3], Theorem 3.2).
  const size_t k = static_cast<size_t>(state.range(0));
  Schema schema;
  for (int i = 0; i < 4; ++i) {
    (void)schema.AddAttribute({"F" + std::to_string(i),
                               relational::DataType::kString,
                               {Value::String("Y"), Value::String("N")}});
  }
  for (int i = 0; i < 4; ++i) {
    (void)schema.AddAttribute(
        {"A" + std::to_string(i), relational::DataType::kString, {}});
  }
  std::string text;
  for (size_t i = 0; i < k; ++i) {
    text += "t: [F" + std::to_string(i % 4) + "=" + (i % 2 ? "Y" : "N") +
            "] -> [A" + std::to_string(i % 4) + "=v" + std::to_string(i % 5) + "]\n";
  }
  const auto cfds = bench::MustParseCfds(text);
  cfd::SatisfiabilityChecker checker(schema);
  size_t nodes = 0;
  for (auto _ : state) {
    auto report = checker.Check(cfds);
    benchmark::DoNotOptimize(report);
    if (report.ok()) nodes = report->nodes_explored;
  }
  state.counters["cfds"] = static_cast<double>(k);
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_FiniteDomainRegime)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace semandaq

BENCHMARK_MAIN();
