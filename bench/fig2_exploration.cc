// FIG-2 — "Data Exploration using CFDs": regenerates the four drill-down
// tables of the paper's Figure 2 on the Section-3 customer instance. The
// user selects the embedded FD [CNT, ZIP] -> [STR], its pattern tuple
// (UK, _ || _), the LHS match (UK, EH2 4SD), and sees the distinct RHS
// street values with violation counts guiding each step.

#include <cstdio>

#include "cfd/cfd_parser.h"
#include "core/explorer.h"
#include "detect/native_detector.h"
#include "relational/relation.h"

namespace {

semandaq::relational::Relation PaperInstance() {
  using semandaq::relational::Relation;
  using semandaq::relational::Schema;
  using semandaq::relational::Value;
  Relation rel{"customer",
               Schema::AllStrings({"NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"})};
  auto add = [&](const char* n, const char* c, const char* ci, const char* z,
                 const char* s, const char* cc, const char* ac) {
    rel.MustInsert({Value::String(n), Value::String(c), Value::String(ci),
                    Value::String(z), Value::String(s), Value::String(cc),
                    Value::String(ac)});
  };
  add("Mike", "UK", "Edinburgh", "EH2 4SD", "Mayfield Rd", "44", "131");
  add("Rick", "UK", "Edinburgh", "EH2 4SD", "Crichton St", "44", "131");
  add("Joe", "UK", "Edinburgh", "EH2 4SD", "Mayfield Rd", "44", "131");
  add("Mary", "UK", "Edinburgh", "EH8 9LE", "Princes St", "44", "131");
  add("Anna", "NL", "Amsterdam", "1016", "Keizersgracht", "31", "20");
  add("Bob", "US", "Chicago", "60614", "Clark St", "1", "312");
  add("Eve", "US", "NewYork", "10011", "Broadway", "44", "212");
  return rel;
}

}  // namespace

int main() {
  using semandaq::relational::Row;
  using semandaq::relational::Value;

  std::printf("=== Figure 2: Data Exploration using CFDs ===\n\n");

  semandaq::relational::Relation rel = PaperInstance();
  auto cfds_or = semandaq::cfd::ParseCfdSet(
      "customer: [CNT=UK, ZIP=_] -> [STR=_]\n"
      "customer: [CC=44] -> [CNT=UK]\n");
  if (!cfds_or.ok()) {
    std::printf("CFD parse failed: %s\n", cfds_or.status().ToString().c_str());
    return 1;
  }
  auto cfds = std::move(*cfds_or);
  for (auto& c : cfds) {
    if (auto st = c.Resolve(rel.schema()); !st.ok()) {
      std::printf("resolve failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  semandaq::detect::NativeDetector detector(&rel, cfds);
  auto table = detector.Detect();
  if (!table.ok()) {
    std::printf("detect failed: %s\n", table.status().ToString().c_str());
    return 1;
  }

  semandaq::core::DataExplorer explorer(&rel, &cfds, &*table);
  Row lhs = {Value::String("UK"), Value::String("EH2 4SD")};
  std::printf("%s\n", explorer.RenderDrilldown(0, 0, lhs).c_str());

  // Final step: the tuples behind the selected RHS value.
  auto tuples = explorer.TuplesFor(0, 0, lhs, Value::String("Mayfield Rd"));
  if (tuples.ok()) {
    std::printf("-- tuples for RHS 'Mayfield Rd' --\n");
    for (auto tid : *tuples) {
      const Row& row = rel.row(tid);
      std::printf("   #%lld:", static_cast<long long>(tid));
      for (const auto& v : row) std::printf(" %s", v.ToDisplayString().c_str());
      std::printf("\n");
    }
  }

  // Reverse exploration, the second bullet of the paper's Fig. 2 scenario.
  std::printf("\n-- reverse exploration: CFDs relevant to tuple #6 (Eve) --\n");
  auto relevant = explorer.CfdsForTuple(6);
  if (relevant.ok()) {
    for (const auto& [ci, pi] : *relevant) {
      std::printf("   CFD #%d pattern #%d: %s\n", ci, pi,
                  cfds[static_cast<size_t>(ci)].ToString().c_str());
    }
  }
  return 0;
}
