// EXP-R1 — repair quality vs. noise rate ([8] Cong et al., VLDB'07 style):
// 4k customer tuples with 1%-10% injected noise; reports repair wall time
// plus the quality metrics of [8] as counters: repair cost, precision,
// recall and residual errors against the generator's gold standard. Claim:
// precision/recall degrade gracefully as noise grows; cost grows roughly
// linearly with the number of injected errors.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "repair/batch_repair.h"
#include "workload/quality.h"

namespace semandaq {
namespace {

constexpr size_t kTuples = 4000;

void BM_RepairQualityVsNoise(benchmark::State& state) {
  const double noise = static_cast<double>(state.range(0)) / 100.0;
  const auto& wl = bench::CachedCustomer(kTuples, noise, /*seed=*/7);
  const auto cfds = bench::MustParseCfds(workload::CustomerGenerator::PaperCfds());
  repair::CostModel cm(wl.dirty.schema());

  workload::RepairQuality quality;
  double cost = 0;
  size_t changes = 0;
  for (auto _ : state) {
    repair::BatchRepair repair(&wl.dirty, cfds, cm);
    auto result = repair.Run();
    benchmark::DoNotOptimize(result);
    if (result.ok()) {
      quality = workload::EvaluateRepair(wl.clean, wl.dirty, result->repaired);
      cost = result->total_cost;
      changes = result->changes.size();
    }
  }
  state.counters["noise_pct"] = static_cast<double>(state.range(0));
  state.counters["repair_cost"] = cost;
  state.counters["changed_cells"] = static_cast<double>(changes);
  state.counters["precision"] = quality.precision;
  state.counters["recall"] = quality.recall;
  state.counters["f1"] = quality.f1;
  state.counters["residual_errors"] = static_cast<double>(quality.residual_errors);
}
BENCHMARK(BM_RepairQualityVsNoise)->Arg(1)->Arg(2)->Arg(5)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semandaq

BENCHMARK_MAIN();
