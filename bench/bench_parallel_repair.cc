// EXP-R3 — the code-columnar repair A/B: BatchRepair with the detect ->
// repair -> audit loop routed through one warm dictionary-encoded snapshot
// (kernel-blocked re-detection, CountEq32 group tallies, coded cost fast
// paths, parallel candidate evaluation) versus the row-hash serial
// baseline it replaced. Axes: range(0) = tuples, range(1) = worker lanes
// (0 = all hardware threads), range(2) = requested kernel tier. The
// RepairResult is byte-identical across every configuration (gated by
// tests/parallel_repair_test.cc) — only the wall clock may differ.
// Acceptance (recorded in BENCH_repair.json by tools/bench_repair_ratio.py):
// BM_Repair/64000 at hardware threads >= 3x over BM_RepairRows/64000.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "repair/batch_repair.h"

namespace semandaq {
namespace {

void RunRepairBench(benchmark::State& state, const repair::RepairOptions& opts,
                    size_t tuples) {
  const auto& wl = bench::CachedCustomer(tuples, 0.05, /*seed=*/9);
  const auto cfds = bench::MustParseCfds(workload::CustomerGenerator::PaperCfds());
  repair::CostModel cm(wl.dirty.schema());

  size_t changes = 0;
  int iterations = 0;
  for (auto _ : state) {
    repair::BatchRepair repair(&wl.dirty, cfds, cm, opts);
    auto result = repair.Run();
    benchmark::DoNotOptimize(result);
    if (result.ok()) {
      changes = result->changes.size();
      iterations = result->iterations;
    }
  }
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["threads"] = static_cast<double>(opts.num_threads);
  state.counters["changed_cells"] = static_cast<double>(changes);
  state.counters["rounds"] = static_cast<double>(iterations);
  state.counters["simd_level"] = static_cast<double>(
      common::simd::KernelsFor(opts.simd_level).level);
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsIterationInvariantRate);
}

/// The encoded path: one warm snapshot across rounds, candidate costs on
/// dictionary codes, per-round evaluation fanned out over the lanes.
void BM_Repair(benchmark::State& state) {
  repair::RepairOptions opts;
  opts.use_encoded = true;
  opts.num_threads = static_cast<size_t>(state.range(1));
  opts.simd_level = static_cast<common::simd::Level>(state.range(2));
  RunRepairBench(state, opts, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_Repair)
    ->Args({16000, 1, 2})
    ->Args({64000, 1, 0})
    ->Args({64000, 1, 2})
    ->Args({64000, 2, 2})
    ->Args({64000, 4, 2})
    ->Args({64000, 0, 2})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// The baseline: serial row-hash detection and Value-keyed group
/// resolution (use_encoded = false), the engine's semantics reference.
void BM_RepairRows(benchmark::State& state) {
  repair::RepairOptions opts;
  opts.use_encoded = false;
  opts.num_threads = 1;
  opts.simd_level = common::simd::Level::kScalar;
  RunRepairBench(state, opts, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_RepairRows)
    ->Arg(16000)
    ->Arg(64000)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace semandaq

BENCHMARK_MAIN();
