// EXP-D3 — incremental vs. batch detection ([3] §incremental): a 32k-tuple
// customer base; apply an update batch of growing size and compare (a) the
// incremental detector's per-batch cost against (b) a full re-detection
// from scratch. Claim: incremental wins by orders of magnitude for small Δ
// and loses its edge as |Δ| approaches |D|.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/random.h"
#include "detect/incremental_detector.h"
#include "detect/native_detector.h"

namespace semandaq {
namespace {

constexpr size_t kBase = 32000;

relational::UpdateBatch MakeBatch(const relational::Relation& rel, size_t size,
                                  common::Rng* rng) {
  using workload::CustomerGenerator;
  relational::UpdateBatch batch;
  std::vector<relational::TupleId> live = rel.LiveIds();
  for (size_t i = 0; i < size; ++i) {
    const relational::TupleId victim = live[rng->NextIndex(live.size())];
    // Mostly modifications (the monitor's common case), some inserts.
    if (rng->NextBool(0.25)) {
      relational::Row row = rel.row(victim);
      row[CustomerGenerator::kName] =
          relational::Value::String("New_" + std::to_string(i));
      batch.push_back(relational::Update::Insert(std::move(row)));
    } else {
      const size_t col = 1 + rng->NextIndex(6);
      batch.push_back(relational::Update::Modify(
          victim, col, relational::Value::String(rng->NextString(5))));
    }
  }
  return batch;
}

void BM_IncrementalDetect(benchmark::State& state) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  const auto& wl = bench::CachedCustomer(kBase, 0.05);
  const auto cfds = bench::MustParseCfds(workload::CustomerGenerator::PaperCfds());
  common::Rng rng(1234);

  // State construction is part of setup, not of the per-batch cost.
  relational::Relation working = wl.dirty.Clone();
  detect::IncrementalDetector detector(&working, cfds);
  if (!detector.Initialize().ok()) state.SkipWithError("init failed");

  for (auto _ : state) {
    state.PauseTiming();
    relational::UpdateBatch batch = MakeBatch(working, batch_size, &rng);
    state.ResumeTiming();
    auto status = detector.ApplyAndDetect(batch);
    benchmark::DoNotOptimize(status);
  }
  state.counters["batch_size"] = static_cast<double>(batch_size);
  state.counters["updates_per_sec"] = benchmark::Counter(
      static_cast<double>(batch_size),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_IncrementalDetect)
    ->Arg(1)->Arg(16)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_FullRedetectAfterBatch(benchmark::State& state) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  const auto& wl = bench::CachedCustomer(kBase, 0.05);
  const auto cfds = bench::MustParseCfds(workload::CustomerGenerator::PaperCfds());
  common::Rng rng(1234);
  relational::Relation working = wl.dirty.Clone();

  for (auto _ : state) {
    state.PauseTiming();
    relational::UpdateBatch batch = MakeBatch(working, batch_size, &rng);
    (void)relational::ApplyUpdates(batch, &working);
    state.ResumeTiming();
    detect::NativeDetector detector(&working, cfds);
    auto table = detector.Detect();
    benchmark::DoNotOptimize(table);
  }
  state.counters["batch_size"] = static_cast<double>(batch_size);
}
BENCHMARK(BM_FullRedetectAfterBatch)
    ->Arg(1)->Arg(16)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semandaq

BENCHMARK_MAIN();
