// FIG-4 — "Data Quality Report": regenerates the paper's bar chart
// (percentage of verified / probably / arguably clean values per attribute),
// the violation pie chart, and the statistics block, on a 2000-tuple
// customer instance with 5% injected noise.

#include <cstdio>

#include "audit/metrics.h"
#include "audit/render.h"
#include "audit/report.h"
#include "cfd/cfd_parser.h"
#include "detect/native_detector.h"
#include "workload/customer_gen.h"

int main() {
  using semandaq::workload::CustomerGenerator;

  std::printf("=== Figure 4: Data Quality Report ===\n\n");

  semandaq::workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 2000;
  opts.noise_rate = 0.05;
  opts.seed = 2008;
  auto wl = CustomerGenerator::Generate(opts);

  auto cfds_or = semandaq::cfd::ParseCfdSet(CustomerGenerator::PaperCfds());
  if (!cfds_or.ok()) return 1;
  auto cfds = std::move(*cfds_or);

  semandaq::detect::NativeDetector detector(&wl.dirty, cfds);
  auto table = detector.Detect();
  if (!table.ok()) return 1;

  semandaq::audit::DataAuditor auditor(&wl.dirty, cfds);
  auto outcome = auditor.Audit(*table);
  if (!outcome.ok()) {
    std::printf("audit failed: %s\n", outcome.status().ToString().c_str());
    return 1;
  }
  auto report = semandaq::audit::BuildQualityReport(*outcome, wl.dirty.schema());

  std::printf("%s\n", semandaq::audit::AsciiRender::BarChart(report).c_str());
  std::printf("%s\n", semandaq::audit::AsciiRender::PieChart(report).c_str());
  std::printf("%s\n", semandaq::audit::AsciiRender::Statistics(report).c_str());
  std::printf("bar chart data (CSV):\n%s", report.BarsToCsv().c_str());
  return 0;
}
