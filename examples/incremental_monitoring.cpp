// The data monitor in both of the paper's modes (§2): a stream of update
// batches hits a customer table. Before cleansing, the monitor only flags
// new inconsistencies (incremental detection); after MarkCleansed, every
// batch is incrementally repaired so the database never degrades.
//
// Build & run:  ./build/examples/incremental_monitoring

#include <cstdio>

#include "core/semandaq.h"
#include "workload/customer_gen.h"

namespace {

semandaq::relational::Row DirtyInsert(int i) {
  using semandaq::relational::Value;
  // A UK tuple whose street disagrees with the established one for EH1.
  return {Value::String("Walkin_" + std::to_string(i)), Value::String("UK"),
          Value::String("Edinburgh"), Value::String("EH1 0XY"),
          Value::String("Backalley " + std::to_string(i)), Value::String("44"),
          Value::String("131")};
}

}  // namespace

int main() {
  using semandaq::relational::Update;
  using semandaq::workload::CustomerGenerator;

  semandaq::workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 300;
  opts.noise_rate = 0.0;  // start clean
  opts.seed = 7;
  auto wl = CustomerGenerator::Generate(opts);

  semandaq::core::Semandaq sys;
  if (!sys.Connect(std::move(wl.clean)).ok()) return 1;
  // The generator names the gold relation "customer_gold".
  auto* rel = sys.database().FindMutableRelation("customer_gold");
  rel->set_name("customer_gold");
  if (!sys.constraints()
           .AddCfdsFromText(
               "customer_gold: [CNT=UK, ZIP=_] -> [STR=_]\n"
               "customer_gold: [CC] -> [CNT] { (44 | UK), (31 | NL), (1 | US) }\n")
           .ok()) {
    return 1;
  }

  // ---- phase 1: not yet cleansed -> incremental detection --------------
  auto monitor = sys.StartMonitor("customer_gold", /*cleansed=*/false);
  if (!monitor.ok()) {
    std::printf("monitor failed: %s\n", monitor.status().ToString().c_str());
    return 1;
  }
  std::printf("phase 1 (mode 1, incremental detection):\n");
  for (int i = 0; i < 3; ++i) {
    auto report = (*monitor)->OnUpdate({Update::Insert(DirtyInsert(i))});
    if (!report.ok()) return 1;
    std::printf("  batch %d: %zu violating tuple(s), total vio %lld, repairs %zu\n",
                i, report->violating_tuples,
                static_cast<long long>(report->total_vio),
                report->repairs_applied.size());
  }

  // The flagged dirt is still in the table; clean it once, then switch the
  // monitor to repair mode.
  auto repair = sys.Clean("customer_gold");
  if (!repair.ok()) return 1;
  if (!sys.ApplyRepair("customer_gold", *repair).ok()) return 1;
  std::printf("\none-off cleansing applied: %zu cell(s) fixed\n\n",
              repair->changes.size());

  // ---- phase 2: cleansed -> incremental repair --------------------------
  auto monitor2 = sys.StartMonitor("customer_gold", /*cleansed=*/true);
  if (!monitor2.ok()) return 1;
  std::printf("phase 2 (mode 2, incremental repair):\n");
  for (int i = 10; i < 13; ++i) {
    auto report = (*monitor2)->OnUpdate({Update::Insert(DirtyInsert(i))});
    if (!report.ok()) return 1;
    std::printf("  batch %d: total vio after repair %lld, repairs applied:\n", i,
                static_cast<long long>(report->total_vio));
    for (const auto& ch : report->repairs_applied) {
      std::printf("    tuple #%lld col %zu: %s -> %s\n",
                  static_cast<long long>(ch.tid), ch.col,
                  ch.original.ToDisplayString().c_str(),
                  ch.repaired.ToDisplayString().c_str());
    }
  }
  std::printf("\nthe database stayed consistent under dirty updates.\n");
  return 0;
}
