// The full demonstration walkthrough of the paper's Section 3 on a
// generated customer workload: specify Σ, validate it, detect errors (both
// the native and the SQL-based detector), audit the data quality (Fig. 4),
// render the quality map (Fig. 3), explore a dirty zip group (Fig. 2),
// clean, and review the candidate repair (Fig. 5) — measuring repair
// quality against the generator's gold standard.
//
// Build & run:  ./build/examples/customer_cleaning

#include <cstdio>

#include "audit/render.h"
#include "core/semandaq.h"
#include "workload/customer_gen.h"
#include "workload/quality.h"

int main() {
  using semandaq::workload::CustomerGenerator;

  semandaq::workload::CustomerWorkloadOptions opts;
  opts.num_tuples = 500;
  opts.noise_rate = 0.06;
  opts.seed = 1460;  // the paper's first page number
  auto wl = CustomerGenerator::Generate(opts);
  std::printf("generated %zu customer tuples, %zu cells corrupted\n\n",
              wl.dirty.size(), wl.injected.size());

  semandaq::core::Semandaq sys;
  if (!sys.Connect(wl.dirty.Clone()).ok()) return 1;
  if (!sys.constraints().AddCfdsFromText(CustomerGenerator::PaperCfds()).ok()) {
    return 1;
  }

  // --- constraint validation -------------------------------------------
  auto sat = sys.constraints().Validate("customer");
  if (!sat.ok()) return 1;
  std::printf("Sigma (%zu CFDs) satisfiable: %s\n\n", sys.constraints().size(),
              sat->satisfiable ? "yes" : "NO");

  // --- error detection, both code paths --------------------------------
  auto native = sys.DetectErrors("customer");
  auto sql = sys.DetectErrors("customer",
                              semandaq::core::Semandaq::DetectorKind::kSql);
  if (!native.ok() || !sql.ok()) return 1;
  std::printf("native detector: %s\n", native->Summary().c_str());
  std::printf("SQL detector:    %s\n", sql->Summary().c_str());
  std::printf("agreement: %s\n\n",
              native->TotalVio() == sql->TotalVio() ? "identical" : "MISMATCH");

  // --- data quality report (Fig. 4) -------------------------------------
  auto report = sys.Report("customer");
  if (!report.ok()) return 1;
  std::printf("%s\n", semandaq::audit::AsciiRender::BarChart(*report).c_str());
  std::printf("%s\n", semandaq::audit::AsciiRender::PieChart(*report).c_str());

  // --- quality map excerpt (Fig. 3) --------------------------------------
  auto map = sys.QualityMap("customer", 12);
  if (map.ok()) std::printf("%s\n", map->c_str());

  // --- exploration (Fig. 2): drill into the dirtiest UK zip --------------
  auto explorer = sys.Explore("customer");
  if (explorer.ok()) {
    auto matches = (*explorer)->LhsMatches(1, 0);  // phi2 = CFD #1, pattern 0
    if (matches.ok() && !matches->empty()) {
      const auto& worst = matches->front();
      std::printf("dirtiest UK zip group: %s with %zu tuple(s), %zu street(s), vio %lld\n\n",
                  semandaq::relational::RowToString(worst.lhs).c_str(),
                  worst.tuple_count, worst.distinct_rhs,
                  static_cast<long long>(worst.violation_count));
    }
  }

  // --- cleansing + review (Fig. 5) ---------------------------------------
  auto repair = sys.Clean("customer");
  if (!repair.ok()) return 1;
  std::printf("repair: %zu cell(s) changed, cost %.2f, %d round(s), %zu NULL escape(s)\n",
              repair->changes.size(), repair->total_cost, repair->iterations,
              repair->null_escapes);

  auto quality = semandaq::workload::EvaluateRepair(
      wl.clean, wl.dirty, repair->repaired);
  std::printf("repair quality: %s\n\n", quality.ToString().c_str());

  auto review = sys.Review("customer", *repair);
  if (review.ok()) {
    std::printf("%s\n", (*review)->RenderDiff(10).c_str());
  }

  if (!sys.ApplyRepair("customer", *repair).ok()) return 1;
  auto after = sys.DetectErrors("customer");
  std::printf("after applying the repair: %s\n",
              after.ok() ? after->Summary().c_str() : "error");
  return 0;
}
