// Constraint discovery workflow (paper §2, Constraint Engine: constraints
// "automatically discovered from reference data"): mine CFDs from a clean
// hospital reference feed, cross-validate them on a *second* reference
// sample to weed out coincidences (a levelwise miner will always overfit a
// finite sample), validate the surviving set, then use it to detect and
// repair errors in a dirty feed of the same domain.
//
// Build & run:  ./build/examples/discovery_workflow

#include <cstdio>

#include "core/semandaq.h"
#include "detect/native_detector.h"
#include "workload/hospital_gen.h"
#include "workload/quality.h"

int main() {
  using semandaq::workload::HospitalGenerator;

  // Two independent clean reference samples, one dirty target feed.
  semandaq::workload::HospitalWorkloadOptions ref_opts;
  ref_opts.num_tuples = 400;
  ref_opts.noise_rate = 0.0;
  ref_opts.seed = 1;
  auto reference = HospitalGenerator::Generate(ref_opts);

  semandaq::workload::HospitalWorkloadOptions holdout_opts = ref_opts;
  holdout_opts.seed = 3;
  auto holdout = HospitalGenerator::Generate(holdout_opts);

  semandaq::workload::HospitalWorkloadOptions tgt_opts;
  tgt_opts.num_tuples = 400;
  tgt_opts.noise_rate = 0.06;
  tgt_opts.seed = 2;
  auto target = HospitalGenerator::Generate(tgt_opts);

  semandaq::core::Semandaq sys;
  reference.clean.set_name("hospital");
  if (!sys.Connect(std::move(reference.clean)).ok()) return 1;

  // ---- mine -------------------------------------------------------------
  semandaq::discovery::CfdMinerOptions mopts;
  mopts.max_lhs = 2;
  mopts.min_support = 5;
  auto added = sys.constraints().DiscoverFrom("hospital", mopts);
  if (!added.ok()) {
    std::printf("discovery failed: %s\n", added.status().ToString().c_str());
    return 1;
  }
  std::printf("mined %zu candidate CFD(s) from reference sample A\n", *added);

  // ---- cross-validate on the holdout sample -----------------------------
  // A mined CFD that is a real domain rule holds on any clean sample; a
  // sampling coincidence (e.g. a provider that happens to report one
  // measure in sample A) does not survive sample B.
  holdout.clean.set_name("hospital");
  std::vector<semandaq::cfd::Cfd> confirmed;
  for (const auto& cfd : sys.constraints().cfds()) {
    semandaq::detect::NativeDetector probe(&holdout.clean, {cfd});
    auto table = probe.Detect();
    if (table.ok() && table->TotalVio() == 0) confirmed.push_back(cfd);
  }
  std::printf("cross-validation kept %zu of %zu CFD(s)\n", confirmed.size(),
              sys.constraints().size());
  sys.constraints().Clear();
  for (auto& cfd : confirmed) {
    if (!sys.constraints().AddCfd(std::move(cfd)).ok()) return 1;
  }
  const size_t pruned = sys.constraints().PruneRedundant();
  std::printf("subsumption pruning removed %zu redundant CFD(s); final set:\n",
              pruned);
  size_t shown = 0;
  for (const auto& cfd : sys.constraints().cfds()) {
    if (shown++ >= 12) {
      std::printf("  ... and %zu more\n", sys.constraints().size() - 12);
      break;
    }
    std::printf("  %s\n", cfd.ToString().c_str());
  }

  // ---- validate -----------------------------------------------------------
  auto sat = sys.constraints().Validate("hospital");
  if (!sat.ok()) return 1;
  std::printf("\nmined constraint set satisfiable: %s\n\n",
              sat->satisfiable ? "yes" : "NO");

  // ---- apply to the dirty feed -------------------------------------------
  sys.database().PutRelation(std::move(target.dirty));
  auto violations = sys.DetectErrors("hospital");
  if (!violations.ok()) return 1;
  std::printf("dirty feed: %s\n", violations->Summary().c_str());

  auto repair = sys.Clean("hospital");
  if (!repair.ok()) return 1;
  std::printf("repair: %zu cell(s) changed, cost %.2f\n", repair->changes.size(),
              repair->total_cost);

  auto quality = semandaq::workload::EvaluateRepair(
      target.clean, *sys.database().GetRelation("hospital").value(),
      repair->repaired);
  std::printf("repair quality vs gold: %s\n", quality.ToString().c_str());

  if (!sys.ApplyRepair("hospital", *repair).ok()) return 1;
  auto after = sys.DetectErrors("hospital");
  std::printf("after repair: %s\n", after.ok() ? after->Summary().c_str() : "error");
  return 0;
}
