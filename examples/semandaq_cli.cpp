// Interactive command shell over the Semandaq session layer — the
// command-line stand-in for the paper's web-based data explorer.
//
//   ./build/examples/semandaq_cli                 # run the built-in demo
//   ./build/examples/semandaq_cli -               # read commands from stdin
//   ./build/examples/semandaq_cli "gen customer 100 5" "detect customer" ...
//
// Type `help` for the command reference.

#include <cstdio>
#include <iostream>
#include <string>

#include "core/session.h"

namespace {

int RunCommand(semandaq::core::Session* session, const std::string& line) {
  auto out = session->Execute(line);
  if (!out.ok()) {
    std::printf("error: %s\n", out.status().ToString().c_str());
    return 1;
  }
  if (!out->empty()) std::printf("%s", out->c_str());
  return 0;
}

constexpr const char* kDemoScript[] = {
    "gen customer 200 6",
    "cfd customer: [CNT, ZIP] -> [CITY]",
    "cfd customer: [CNT=UK, ZIP=_] -> [STR=_]",
    "cfd customer: [CC] -> [CNT] { (44 | UK), (31 | NL), (1 | US) }",
    "validate customer",
    "detect customer",
    "detect customer sql",
    "map customer 8",
    "report customer",
    "sql SELECT CNT, COUNT(*) AS n FROM customer GROUP BY CNT ORDER BY n DESC",
    "clean customer",
    "diff",
    "apply",
    "detect customer",
};

}  // namespace

int main(int argc, char** argv) {
  semandaq::core::Session session;

  if (argc > 1 && std::string(argv[1]) == "-") {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line == "quit" || line == "exit") break;
      RunCommand(&session, line);
    }
    return 0;
  }
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::printf(">> %s\n", argv[i]);
      if (RunCommand(&session, argv[i]) != 0) return 1;
    }
    return 0;
  }
  std::printf("(no arguments: running the built-in demo script; "
              "use '-' for stdin mode)\n\n");
  for (const char* line : kDemoScript) {
    std::printf(">> %s\n", line);
    RunCommand(&session, line);
    std::printf("\n");
  }
  return 0;
}
