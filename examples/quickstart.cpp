// Quickstart: the five-minute tour of Semandaq's public API.
//
//   1. build a relation and connect it,
//   2. specify CFDs in the paper's textual notation,
//   3. check the constraints "make sense" (satisfiability),
//   4. detect violations and print vio(t),
//   5. clean the data and show what changed.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/semandaq.h"

int main() {
  using semandaq::relational::Relation;
  using semandaq::relational::Schema;
  using semandaq::relational::Value;

  // 1. A tiny customer table. The last tuple is inconsistent: country code
  //    44 (UK) with country US.
  Relation customer{"customer", Schema::AllStrings({"NAME", "CNT", "ZIP", "CC"})};
  auto add = [&](const char* n, const char* c, const char* z, const char* cc) {
    customer.MustInsert({Value::String(n), Value::String(c), Value::String(z),
                         Value::String(cc)});
  };
  add("Mike", "UK", "EH2 4SD", "44");
  add("Rick", "UK", "EH2 4SD", "44");
  add("Eve", "US", "10011", "44");

  semandaq::core::Semandaq sys;
  if (auto st = sys.Connect(std::move(customer)); !st.ok()) {
    std::printf("connect failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. One constant CFD: country code 44 binds the country to UK.
  if (auto st = sys.constraints().AddCfdsFromText("customer: [CC=44] -> [CNT=UK]");
      !st.ok()) {
    std::printf("bad CFD: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Do the constraints make sense together?
  auto sat = sys.constraints().Validate("customer");
  if (!sat.ok() || !sat->satisfiable) {
    std::printf("constraint set is unsatisfiable\n");
    return 1;
  }
  std::printf("constraints validated: %s\n", sat->explanation.c_str());

  // 4. Detect.
  auto violations = sys.DetectErrors("customer");
  if (!violations.ok()) return 1;
  std::printf("detection: %s\n", violations->Summary().c_str());
  for (auto tid : violations->ViolatingTuples()) {
    std::printf("  tuple #%lld has vio=%lld\n", static_cast<long long>(tid),
                static_cast<long long>(violations->vio(tid)));
  }

  // 5. Clean and inspect the candidate repair.
  auto repair = sys.Clean("customer");
  if (!repair.ok()) return 1;
  std::printf("repair: %zu cell(s) changed, cost %.3f\n", repair->changes.size(),
              repair->total_cost);
  for (const auto& ch : repair->changes) {
    std::printf("  tuple #%lld %s: %s -> %s\n", static_cast<long long>(ch.tid),
                sys.database().FindRelation("customer")->schema().attr(ch.col).name.c_str(),
                ch.original.ToDisplayString().c_str(),
                ch.repaired.ToDisplayString().c_str());
  }
  if (auto st = sys.ApplyRepair("customer", *repair); !st.ok()) return 1;

  auto after = sys.DetectErrors("customer");
  std::printf("after repair: %s\n", after.ok() ? after->Summary().c_str() : "error");
  return 0;
}
