#ifndef SEMANDAQ_STORAGE_ENV_H_
#define SEMANDAQ_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace semandaq::storage {

/// The injectable I/O seam every storage artifact flows through: WAL
/// segments, snapshot files, and catalog manifests are written via Env
/// (never raw std::ofstream), so tests can swap in a FaultInjectionEnv
/// (storage/fault_env.h) that models power cuts — unsynced bytes vanish —
/// while production uses the POSIX env with real fsync/fdatasync behind
/// it. See docs/robustness.md.

/// An append-only file handle. Append buffers nothing the caller needs to
/// know about: after an OK Sync(), every previously appended byte is on
/// stable storage (fdatasync), which is what the WAL's SyncPolicy promises
/// are built on.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual common::Status Append(std::string_view data) = 0;

  /// Flushes and forces the data to stable storage (fdatasync).
  virtual common::Status Sync() = 0;

  /// Flushes and closes (no implicit Sync). Idempotent; the destructor
  /// closes too, discarding errors.
  virtual common::Status Close() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// The process-default POSIX environment.
  static Env* Default();

  /// The env storage I/O currently goes through (Default() unless a test
  /// swapped one in with Set).
  static Env* Get();

  /// Swaps the process-wide env; nullptr restores Default(). The caller
  /// owns `env` and must keep it alive until swapped back (tests only).
  static void Set(Env* env);

  enum class OpenMode { kTruncate, kAppend };
  virtual common::Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, OpenMode mode) = 0;

  virtual common::Result<std::string> ReadFileToString(
      const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  virtual common::Status RenameFile(const std::string& from,
                                    const std::string& to) = 0;

  virtual common::Status RemoveFile(const std::string& path) = 0;

  virtual common::Status TruncateFile(const std::string& path,
                                      uint64_t size) = 0;

  /// fsyncs the directory containing `path`, making a preceding rename or
  /// create of `path` itself durable — renaming a fully-synced file into
  /// place is not a durable publish until its directory entry is too.
  virtual common::Status SyncDirOf(const std::string& path) = 0;
};

}  // namespace semandaq::storage

#endif  // SEMANDAQ_STORAGE_ENV_H_
