#ifndef SEMANDAQ_STORAGE_SNAPSHOT_H_
#define SEMANDAQ_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/column_chunk.h"
#include "relational/dictionary.h"
#include "relational/encoded_relation.h"
#include "relational/relation.h"

namespace semandaq::storage {

/// Binary columnar snapshot of a relation plus its dictionary-encoded form —
/// the persistent half of EncodedRelation. One snapshot file holds a fixed
/// header, a liveness bitmap, per-column dictionary blobs and flat uint32
/// code arrays written sequentially, and a checksummed manifest footer
/// (schema, row counts, versions, per-section offsets). Byte-level layout:
/// docs/storage.md. Rows changed after a snapshot live in the WAL sidecar
/// (storage/wal.h) at `path + ".wal"` and replay on load.

/// Conventional WAL sidecar path for a snapshot at `path`.
inline std::string WalPathFor(const std::string& path) { return path + ".wal"; }

/// What SnapshotWriter::Write reports back (CLI/status surface).
struct SnapshotStats {
  uint64_t id_bound = 0;    ///< code entries per column (incl. tombstones)
  uint64_t live_rows = 0;
  uint32_t num_columns = 0;
  uint64_t file_bytes = 0;
  /// Checksum of the manifest; doubles as the snapshot identity that the
  /// WAL sidecar is stamped with.
  uint64_t manifest_checksum = 0;
};

class SnapshotWriter {
 public:
  /// Persists `rel` and its encoded snapshot at `path` (write-temp-rename,
  /// so a crash never leaves a half-written snapshot behind) and creates a
  /// fresh, empty WAL sidecar at WalPathFor(path) stamped with the new
  /// snapshot's identity — after a save, the snapshot covers everything.
  /// `enc` must be a snapshot *of* `rel` and in sync with it.
  static common::Result<SnapshotStats> Write(
      const relational::Relation& rel, const relational::EncodedRelation& enc,
      const std::string& path);
};

/// A snapshot pulled back into memory: the reconstructed relation (same
/// TupleIds, tombstones preserved) plus the encoded columns exactly as
/// saved — refcounted chunks and dictionaries ready for
/// EncodedRelation::FromStorage, no per-value re-encode. The relation's
/// deferred row hydrator decodes from frozen views of these same chunks
/// and dictionaries, so nothing holds a second copy of the data (the file
/// buffer is released before Read returns).
struct LoadedSnapshot {
  relational::Relation relation;
  std::vector<std::shared_ptr<relational::Dictionary>> dicts;
  std::vector<relational::CodeColumn> columns;
  std::string saved_name;           ///< relation name at save time
  uint64_t manifest_checksum = 0;   ///< identity the WAL sidecar must carry
};

class SnapshotReader {
 public:
  /// Loads a snapshot with one bulk read: the file is pulled into memory
  /// with a single read and the code arrays are memcpy'd straight into
  /// their column chunks — no per-value decoding on the code path, and no
  /// second retained copy (the deferred row hydrator shares the chunks by
  /// refcount; the file buffer dies with this call). Every section is
  /// checksum-verified before use; corruption and truncation come back
  /// as IoError, never as garbage data. Does NOT replay the WAL sidecar
  /// (storage::ReplayWal; the relation must be registered at its final
  /// address first so the encoded snapshot can sync against it).
  static common::Result<LoadedSnapshot> Read(const std::string& path);
};

}  // namespace semandaq::storage

#endif  // SEMANDAQ_STORAGE_SNAPSHOT_H_
