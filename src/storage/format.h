#ifndef SEMANDAQ_STORAGE_FORMAT_H_
#define SEMANDAQ_STORAGE_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"
#include "relational/value.h"

namespace semandaq::storage {

/// The persistent columnar store's wire-level vocabulary: fixed magics, the
/// checksum, and bounds-checked little-endian primitive/Value codecs shared
/// by the snapshot writer/reader and the WAL. The byte-level layout built
/// from these pieces is specified in docs/storage.md.

/// Snapshot file magic, first 8 bytes of every snapshot ("SDQSNAP1").
inline constexpr char kSnapshotMagic[8] = {'S', 'D', 'Q', 'S',
                                           'N', 'A', 'P', '1'};

/// WAL file magic ("SDQWAL01").
inline constexpr char kWalMagic[8] = {'S', 'D', 'Q', 'W', 'A', 'L', '0', '1'};

/// Stored as a uint32 right after the magic. A reader on a byte-order that
/// disagrees with the writer sees the value reversed and refuses the file;
/// the on-disk format is little-endian and this is the canary that enforces
/// it (all mainstream deployment targets are little-endian; a big-endian
/// port would add byte swapping at this seam).
inline constexpr uint32_t kEndianCanary = 0x01020304u;

/// Bumped on incompatible layout changes; readers reject other versions.
inline constexpr uint32_t kFormatVersion = 1;

/// 64-bit content checksum in the xxhash spirit: the input is consumed as
/// 8-byte little-endian lanes (plus a byte-wise tail), each lane folded into
/// the accumulator through a strong 64-bit finalizer (splitmix64), and the
/// length is mixed in so a truncated prefix never collides with its whole.
/// One pass, no allocation; quality is "detect corruption", not crypto.
uint64_t Checksum64(const void* data, size_t size, uint64_t seed = 0);

/// Append-only little-endian encoder over a std::string (sections are
/// assembled in memory, checksummed, then written with one write syscall).
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  size_t size() const { return out_->size(); }

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutFixed(&v, sizeof v); }
  void PutU64(uint64_t v) { PutFixed(&v, sizeof v); }
  void PutI64(int64_t v) { PutFixed(&v, sizeof v); }
  void PutDouble(double v) { PutFixed(&v, sizeof v); }
  void PutBytes(const void* data, size_t n) {
    out_->append(static_cast<const char*>(data), n);
  }
  /// u32 length followed by the raw bytes.
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutBytes(s.data(), s.size());
  }
  /// Type-tagged Value: u8 tag (0 NULL, 1 INT, 2 DOUBLE, 3 STRING) + payload.
  void PutValue(const relational::Value& v);

 private:
  void PutFixed(const void* v, size_t n) {
    // Native stores on a little-endian host are already wire order; the
    // endian canary rejects the file anywhere that assumption breaks.
    out_->append(static_cast<const char*>(v), n);
  }

  std::string* out_;
};

/// Bounds-checked decoder over a byte range. Every getter reports overrun
/// as an IoError naming `context` (e.g. "manifest"), so a truncated or
/// corrupted region can never read out of bounds.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size, std::string context)
      : cur_(static_cast<const uint8_t*>(data)),
        end_(static_cast<const uint8_t*>(data) + size),
        context_(std::move(context)) {}

  size_t remaining() const { return static_cast<size_t>(end_ - cur_); }
  bool exhausted() const { return cur_ == end_; }

  common::Result<uint8_t> GetU8();
  common::Result<uint32_t> GetU32();
  common::Result<uint64_t> GetU64();
  common::Result<int64_t> GetI64();
  common::Result<double> GetDouble();
  common::Result<std::string> GetString();
  common::Result<relational::Value> GetValue();
  /// Borrows `n` raw bytes from the stream (no copy).
  common::Result<const uint8_t*> GetBytes(size_t n);

 private:
  common::Status Overrun(const char* what) const {
    return common::Status::IoError("truncated " + context_ +
                                   ": unexpected end while reading " + what);
  }

  const uint8_t* cur_;
  const uint8_t* end_;
  std::string context_;
};

}  // namespace semandaq::storage

#endif  // SEMANDAQ_STORAGE_FORMAT_H_
