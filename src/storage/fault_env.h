#ifndef SEMANDAQ_STORAGE_FAULT_ENV_H_
#define SEMANDAQ_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "storage/env.h"

namespace semandaq::storage {

/// A test Env modeling what stable storage keeps across a power cut: every
/// write goes through to the base env (so readers see the live state), but
/// the env tracks, per file, how much of it has been Sync()'d. A simulated
/// power cut truncates every tracked file back to its synced prefix —
/// written-but-unsynced bytes vanish, exactly the data a kernel page cache
/// would have lost. Renames follow the tracked state to the new name (the
/// rename itself is treated as durable; the snapshot/catalog writers fsync
/// the parent directory for real, and crash *ordering* between the two
/// publish renames is covered by failpoints instead).
///
/// Combined with common::Failpoints (which decides *where* a write path
/// stops), this is the machinery behind the crash-at-every-failpoint
/// recovery sweep in tests/crash_recovery_test.cc. Test-only; production
/// code never constructs one.
class FaultInjectionEnv : public Env {
 public:
  /// Wraps `base` (Env::Default() when nullptr).
  explicit FaultInjectionEnv(Env* base = nullptr);

  /// Drops the unsynced tail of every tracked file (truncating the real
  /// file through the base env) and resets tracking. Call after a crash
  /// failpoint fired, before "rebooting" (reopening the database).
  common::Status SimulatePowerCut();

  /// Forgets tracking without dropping anything (a clean shutdown).
  void Reset();

  /// Total Sync() calls on writable files since construction/Reset — how
  /// tests assert SyncPolicy batching behavior.
  uint64_t sync_calls() const;

  // Env:
  common::Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, OpenMode mode) override;
  common::Result<std::string> ReadFileToString(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  common::Status RenameFile(const std::string& from,
                            const std::string& to) override;
  common::Status RemoveFile(const std::string& path) override;
  common::Status TruncateFile(const std::string& path, uint64_t size) override;
  common::Status SyncDirOf(const std::string& path) override;

 private:
  friend class FaultInjectionWritableFile;

  struct FileState {
    uint64_t written = 0;  ///< bytes in the real file
    uint64_t synced = 0;   ///< durable prefix (survives a power cut)
  };

  void OnOpen(const std::string& path, OpenMode mode, uint64_t existing_size);
  void OnAppend(const std::string& path, uint64_t bytes);
  void OnSync(const std::string& path);

  Env* base_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, FileState> files_;
  uint64_t sync_calls_ = 0;
};

}  // namespace semandaq::storage

#endif  // SEMANDAQ_STORAGE_FAULT_ENV_H_
