#ifndef SEMANDAQ_STORAGE_WAL_H_
#define SEMANDAQ_STORAGE_WAL_H_

#include <cstdint>
#include <fstream>
#include <string>

#include "common/status.h"
#include "relational/relation.h"

namespace semandaq::storage {

/// Append-only write-ahead segment extending a snapshot: every mutation
/// applied to a relation after its last snapshot appends one checksummed
/// record here, and on load the records replay through Relation mutators so
/// EncodedRelation::Sync() catches the encoded form up along its ordinary
/// append path. The segment is stamped with the manifest checksum of the
/// snapshot it extends — replaying a WAL against any other snapshot is
/// refused, not silently merged. Record layout: docs/storage.md.
///
/// Crash discipline: records are length-prefixed and checksummed, so a torn
/// final record (the only corruption an interrupted append can produce) is
/// recognized and dropped; a checksum mismatch anywhere *before* the tail is
/// real corruption and fails the load.
class WalWriter {
 public:
  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;

  /// Creates (or truncates) the segment at `path`, stamped with
  /// `snapshot_checksum` (SnapshotStats::manifest_checksum).
  static common::Result<WalWriter> Create(const std::string& path,
                                          uint64_t snapshot_checksum);

  /// Reopens an existing segment for appending: verifies the stamp against
  /// `snapshot_checksum`, truncates a torn final record if the last append
  /// was interrupted, and positions at the end.
  static common::Result<WalWriter> OpenExisting(const std::string& path,
                                                uint64_t snapshot_checksum);

  /// Appends one mutation record (flushed before returning, so a record
  /// either reaches the file intact or is recognizably torn).
  common::Status AppendInsert(const relational::Row& row);
  common::Status AppendDelete(relational::TupleId tid);
  common::Status AppendSetCell(relational::TupleId tid, size_t col,
                               const relational::Value& value);

  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, std::ofstream out)
      : path_(std::move(path)), out_(std::move(out)) {}

  common::Status AppendRecord(const std::string& payload);

  std::string path_;
  std::ofstream out_;
};

/// Replays the WAL at `path` into `rel` through Insert/Delete/SetCell.
/// Missing file = empty tail (0 records). A segment stamped for a
/// different snapshot fails the load if it holds any record; record-free
/// it is treated as the empty tail it is — that state is the one artifact
/// a crash between SnapshotWriter's two publish renames can leave (the
/// predecessor's empty sidecar beside the fresh snapshot). A torn final
/// record is dropped silently (crash tail); any earlier corruption is an
/// IoError. Returns the number of records applied — after it,
/// EncodedRelation::Sync() brings a snapshot loaded via FromStorage up to
/// date.
common::Result<size_t> ReplayWal(const std::string& path,
                                 uint64_t snapshot_checksum,
                                 relational::Relation* rel);

}  // namespace semandaq::storage

#endif  // SEMANDAQ_STORAGE_WAL_H_
