#ifndef SEMANDAQ_STORAGE_WAL_H_
#define SEMANDAQ_STORAGE_WAL_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "common/status.h"
#include "relational/relation.h"

namespace semandaq::storage {

/// Append-only write-ahead segment extending a snapshot: every mutation
/// applied to a relation after its last snapshot appends one checksummed
/// record here, and on load the records replay through Relation mutators so
/// EncodedRelation::Sync() catches the encoded form up along its ordinary
/// append path. The segment is stamped with the manifest checksum of the
/// snapshot it extends — replaying a WAL against any other snapshot is
/// refused, not silently merged. Record layout: docs/storage.md.
///
/// Crash discipline: records are length-prefixed and checksummed, so a torn
/// final record (the only corruption an interrupted append can produce) is
/// recognized and dropped; a checksum mismatch anywhere *before* the tail is
/// real corruption and fails the load.
class WalWriter {
 public:
  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;

  /// Creates (or truncates) the segment at `path`, stamped with
  /// `snapshot_checksum` (SnapshotStats::manifest_checksum).
  static common::Result<WalWriter> Create(const std::string& path,
                                          uint64_t snapshot_checksum);

  /// Reopens an existing segment for appending: verifies the stamp against
  /// `snapshot_checksum`, truncates a torn final record if the last append
  /// was interrupted, and positions at the end.
  static common::Result<WalWriter> OpenExisting(const std::string& path,
                                                uint64_t snapshot_checksum);

  /// Appends one mutation record (flushed before returning, so a record
  /// either reaches the file intact or is recognizably torn).
  common::Status AppendInsert(const relational::Row& row);
  common::Status AppendDelete(relational::TupleId tid);
  common::Status AppendSetCell(relational::TupleId tid, size_t col,
                               const relational::Value& value);

  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, std::ofstream out)
      : path_(std::move(path)), out_(std::move(out)) {}

  common::Status AppendRecord(const std::string& payload);

  std::string path_;
  std::ofstream out_;
};

/// Live journaling of a relation's mutations into its snapshot's WAL
/// sidecar: a relational::MutationObserver that appends one record per
/// committed Insert/Delete/SetCell. Attach it (Relation::set_observer)
/// after a save or an open+replay and every subsequent mutation — monitor
/// update batches, applied repairs, any future SQL DML — reaches the
/// sidecar the moment it commits, so the next OpenRelation replays the
/// relation back to its exact live state.
///
/// Error discipline: the first failed append latches into status() and
/// disables further appends — a sidecar with a silent gap would replay a
/// *wrong* relation, which is worse than a sidecar that visibly stopped at
/// a known record. The next SaveRelation writes a fresh snapshot + empty
/// sidecar and re-arms a clean attachment.
class WalAttachment : public relational::MutationObserver {
 public:
  /// Opens the sidecar at `wal_path` for appending (WalWriter::OpenExisting
  /// semantics: stamp verified, torn tail truncated). The caller wires the
  /// result to the relation with set_observer and must detach (or destroy
  /// the relation) before destroying the attachment.
  static common::Result<std::unique_ptr<WalAttachment>> Open(
      const std::string& wal_path, uint64_t snapshot_checksum);

  void OnInsert(relational::TupleId tid, const relational::Row& row) override;
  void OnDelete(relational::TupleId tid) override;
  void OnSetCell(relational::TupleId tid, size_t col,
                 const relational::Value& value) override;

  /// OK until the first append failure; sticky afterwards.
  const common::Status& status() const { return status_; }

  /// Mutation records appended through this attachment (for tests/ops).
  size_t records_appended() const { return records_appended_; }

  const std::string& path() const { return writer_.path(); }

 private:
  explicit WalAttachment(WalWriter writer) : writer_(std::move(writer)) {}

  WalWriter writer_;
  common::Status status_ = common::Status::OK();
  size_t records_appended_ = 0;
};

/// Replays the WAL at `path` into `rel` through Insert/Delete/SetCell.
/// Missing file = empty tail (0 records). A segment stamped for a
/// different snapshot fails the load if it holds any record; record-free
/// it is treated as the empty tail it is — that state is the one artifact
/// a crash between SnapshotWriter's two publish renames can leave (the
/// predecessor's empty sidecar beside the fresh snapshot). A torn final
/// record is dropped silently (crash tail); any earlier corruption is an
/// IoError. Returns the number of records applied — after it,
/// EncodedRelation::Sync() brings a snapshot loaded via FromStorage up to
/// date.
common::Result<size_t> ReplayWal(const std::string& path,
                                 uint64_t snapshot_checksum,
                                 relational::Relation* rel);

}  // namespace semandaq::storage

#endif  // SEMANDAQ_STORAGE_WAL_H_
