#ifndef SEMANDAQ_STORAGE_WAL_H_
#define SEMANDAQ_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/cancel.h"
#include "common/status.h"
#include "relational/relation.h"
#include "storage/env.h"

namespace semandaq::storage {

/// When WAL appends reach stable storage (docs/robustness.md):
///
///   always    fdatasync after every record — an append that returned OK
///             survives any crash (zero acknowledged records lost)
///   batch(N)  fdatasync once per N records — a crash loses at most the
///             unsynced tail (< N records), never corrupts the segment
///   none      OS-buffered only — a crash may lose everything since the
///             last snapshot; torn tails are still recognized and dropped
struct SyncPolicy {
  enum class Mode { kAlways, kBatch, kNone };
  Mode mode = Mode::kAlways;
  /// Records per fdatasync under kBatch (>= 1).
  size_t batch_records = 64;

  /// Parses "always" | "none" | "batch" | "batch(N)".
  static common::Result<SyncPolicy> Parse(std::string_view text);
  std::string ToString() const;
};

/// Append-only write-ahead segment extending a snapshot: every mutation
/// applied to a relation after its last snapshot appends one checksummed
/// record here, and on load the records replay through Relation mutators so
/// EncodedRelation::Sync() catches the encoded form up along its ordinary
/// append path. The segment is stamped with the manifest checksum of the
/// snapshot it extends — replaying a WAL against any other snapshot is
/// refused, not silently merged. Record layout: docs/storage.md.
///
/// Crash discipline: records are length-prefixed and checksummed, so a torn
/// final record (the only corruption an interrupted append can produce) is
/// recognized and dropped; a checksum mismatch anywhere *before* the tail is
/// real corruption and fails the load.
class WalWriter {
 public:
  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;

  /// Creates (or truncates) the segment at `path`, stamped with
  /// `snapshot_checksum` (SnapshotStats::manifest_checksum). The header is
  /// synced to stable storage regardless of `policy` (it is written once;
  /// the policy governs record appends).
  static common::Result<WalWriter> Create(const std::string& path,
                                          uint64_t snapshot_checksum,
                                          SyncPolicy policy = {});

  /// Reopens an existing segment for appending: verifies the stamp against
  /// `snapshot_checksum`, truncates a torn final record if the last append
  /// was interrupted, and positions at the end.
  static common::Result<WalWriter> OpenExisting(const std::string& path,
                                                uint64_t snapshot_checksum,
                                                SyncPolicy policy = {});

  /// Appends one mutation record and makes it durable per the SyncPolicy:
  /// under `always` an OK return means the record is on stable storage;
  /// under `batch(N)`/`none` it means the record reached the OS (a torn or
  /// lost tail stays recognizable either way).
  common::Status AppendInsert(const relational::Row& row);
  common::Status AppendDelete(relational::TupleId tid);
  common::Status AppendSetCell(relational::TupleId tid, size_t col,
                               const relational::Value& value);

  /// Forces any unsynced batch tail to stable storage now.
  common::Status SyncNow();

  const std::string& path() const { return path_; }
  const SyncPolicy& sync_policy() const { return policy_; }

 private:
  WalWriter(std::string path, std::unique_ptr<WritableFile> out,
            SyncPolicy policy)
      : path_(std::move(path)), out_(std::move(out)), policy_(policy) {}

  common::Status AppendRecord(const std::string& payload);

  std::string path_;
  std::unique_ptr<WritableFile> out_;
  SyncPolicy policy_;
  size_t unsynced_records_ = 0;
};

/// Live journaling of a relation's mutations into its snapshot's WAL
/// sidecar: a relational::MutationObserver that appends one record per
/// committed Insert/Delete/SetCell. Attach it (Relation::set_observer)
/// after a save or an open+replay and every subsequent mutation — monitor
/// update batches, applied repairs, any future SQL DML — reaches the
/// sidecar the moment it commits, so the next OpenRelation replays the
/// relation back to its exact live state.
///
/// Error discipline: the first failed append latches into status() and
/// disables further appends — a sidecar with a silent gap would replay a
/// *wrong* relation, which is worse than a sidecar that visibly stopped at
/// a known record. The next SaveRelation writes a fresh snapshot + empty
/// sidecar and re-arms a clean attachment.
class WalAttachment : public relational::MutationObserver {
 public:
  /// Opens the sidecar at `wal_path` for appending (WalWriter::OpenExisting
  /// semantics: stamp verified, torn tail truncated), journaling under
  /// `policy` (docs/robustness.md). The caller wires the result to the
  /// relation with set_observer and must detach (or destroy the relation)
  /// before destroying the attachment.
  static common::Result<std::unique_ptr<WalAttachment>> Open(
      const std::string& wal_path, uint64_t snapshot_checksum,
      SyncPolicy policy = {});

  void OnInsert(relational::TupleId tid, const relational::Row& row) override;
  void OnDelete(relational::TupleId tid) override;
  void OnSetCell(relational::TupleId tid, size_t col,
                 const relational::Value& value) override;

  /// OK until the first append failure; sticky afterwards.
  const common::Status& status() const { return status_; }

  /// Mutation records appended through this attachment (for tests/ops).
  size_t records_appended() const { return records_appended_; }

  /// Forces any unsynced batch tail to stable storage (clean shutdown).
  common::Status SyncNow() { return writer_.SyncNow(); }

  const std::string& path() const { return writer_.path(); }
  const SyncPolicy& sync_policy() const { return writer_.sync_policy(); }

 private:
  explicit WalAttachment(WalWriter writer) : writer_(std::move(writer)) {}

  WalWriter writer_;
  common::Status status_ = common::Status::OK();
  size_t records_appended_ = 0;
};

/// Replays the WAL at `path` into `rel` through Insert/Delete/SetCell.
/// Missing file = empty tail (0 records). A segment stamped for a
/// different snapshot fails the load if it holds any record; record-free
/// it is treated as the empty tail it is — that state is the one artifact
/// a crash between SnapshotWriter's two publish renames can leave (the
/// predecessor's empty sidecar beside the fresh snapshot). A torn final
/// record is dropped silently (crash tail); any earlier corruption is an
/// IoError. Returns the number of records applied — after it,
/// EncodedRelation::Sync() brings a snapshot loaded via FromStorage up to
/// date.
///
/// `cancel` (common/cancel.h) is checked once per record: a tripped token
/// stops the replay with Status::Cancelled / Status::DeadlineExceeded,
/// leaving `rel` partially replayed — callers that opened the relation for
/// this replay unwind it (OpenRelation drops the half-built relation on
/// any replay failure, cancellation included), so nothing partial is ever
/// published.
common::Result<size_t> ReplayWal(const std::string& path,
                                 uint64_t snapshot_checksum,
                                 relational::Relation* rel,
                                 common::CancelToken* cancel = nullptr);

}  // namespace semandaq::storage

#endif  // SEMANDAQ_STORAGE_WAL_H_
