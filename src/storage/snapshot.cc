#include "storage/snapshot.h"

#include <cassert>
#include <cstring>
#include <memory>

#include "common/csv.h"
#include "common/failpoint.h"
#include "storage/env.h"
#include "storage/format.h"
#include "storage/wal.h"

namespace semandaq::storage {

using common::Result;
using common::Status;
using relational::AttributeDef;
using relational::Code;
using relational::DataType;
using relational::kNullCode;
using relational::Dictionary;
using relational::EncodedRelation;
using relational::Relation;
using relational::Row;
using relational::Schema;
using relational::TupleId;
using relational::Value;

namespace {

/// Fixed snapshot header: magic(8) canary(4) version(4) manifest_offset(8)
/// manifest_size(8) manifest_checksum(8) file_size(8) header_checksum(8).
constexpr size_t kHeaderSize = 56;
constexpr size_t kHeaderChecksumOffset = kHeaderSize - 8;

/// One manifest entry per column: where its two on-disk sections live.
struct ColumnExtent {
  uint32_t dict_count = 0;
  uint64_t dict_offset = 0, dict_size = 0, dict_checksum = 0;
  uint64_t codes_offset = 0, codes_size = 0, codes_checksum = 0;
};

void PatchU32(std::string* buf, size_t at, uint32_t v) {
  std::memcpy(&(*buf)[at], &v, sizeof v);
}

void PatchU64(std::string* buf, size_t at, uint64_t v) {
  std::memcpy(&(*buf)[at], &v, sizeof v);
}

/// Everything the deferred row materializer needs: frozen views of the
/// same refcounted chunks and dictionaries the adopted EncodedRelation
/// scans — NOT a second copy of the file. Shared by the hydrator closure
/// and by its copies when an unhydrated relation is cloned. All of it was
/// checksum-verified by Read before the hydrator was installed, so
/// hydration itself cannot fail.
struct HydrationSource {
  std::vector<std::shared_ptr<Dictionary>> dicts;
  std::vector<relational::CodeColumn> columns;  // frozen views
  std::vector<uint8_t> live;  // one byte per id, nonzero = live
};

/// Verifies one section's bounds (inside the data area between header and
/// manifest) and checksum, returning a pointer to its first byte.
Result<const uint8_t*> CheckSection(const std::string& file, uint64_t offset,
                                    uint64_t size, uint64_t checksum,
                                    uint64_t manifest_offset,
                                    const std::string& what) {
  if (offset < kHeaderSize || offset + size < offset ||
      offset + size > manifest_offset) {
    return Status::IoError("corrupted snapshot manifest: " + what +
                           " section out of bounds");
  }
  const uint8_t* p = reinterpret_cast<const uint8_t*>(file.data()) + offset;
  if (Checksum64(p, static_cast<size_t>(size)) != checksum) {
    return Status::IoError("snapshot checksum mismatch in " + what +
                           " section");
  }
  return p;
}

}  // namespace

Result<SnapshotStats> SnapshotWriter::Write(const Relation& rel,
                                            const EncodedRelation& enc,
                                            const std::string& path) {
  if (&enc.relation() != &rel) {
    return Status::FailedPrecondition(
        "encoded snapshot does not belong to the relation being saved");
  }
  if (!enc.InSync()) {
    return Status::FailedPrecondition(
        "encoded snapshot is stale; Sync() before saving");
  }
  const size_t ncols = rel.schema().size();
  const uint64_t id_bound = static_cast<uint64_t>(rel.IdBound());

  std::string file;
  file.append(kHeaderSize, '\0');  // patched at the end

  // Liveness bitmap, one bit per TupleId (LSB-first within a byte).
  const uint64_t live_offset = file.size();
  {
    std::string bits((id_bound + 7) / 8, '\0');
    for (uint64_t tid = 0; tid < id_bound; ++tid) {
      if (rel.IsLive(static_cast<TupleId>(tid))) {
        bits[tid / 8] |= static_cast<char>(1u << (tid % 8));
      }
    }
    file += bits;
  }
  const uint64_t live_size = file.size() - live_offset;
  const uint64_t live_checksum =
      Checksum64(file.data() + live_offset, static_cast<size_t>(live_size));

  // Per-column sections, written sequentially: dictionary blob (the decoded
  // values of codes 1..n, in code order), then the raw code array.
  std::vector<ColumnExtent> extents(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    ColumnExtent& ext = extents[c];
    const Dictionary& dict = enc.dictionary(c);
    ext.dict_offset = file.size();
    ext.dict_count = static_cast<uint32_t>(dict.size());
    {
      ByteWriter w(&file);
      for (Code code = 1; code <= dict.size(); ++code) {
        w.PutValue(dict.Decode(code));
      }
    }
    ext.dict_size = file.size() - ext.dict_offset;
    ext.dict_checksum = Checksum64(file.data() + ext.dict_offset,
                                   static_cast<size_t>(ext.dict_size));

    const relational::CodeColumn& codes = enc.column(c);
    ext.codes_offset = file.size();
    ext.codes_size = codes.size() * sizeof(Code);
    file.append(reinterpret_cast<const char*>(codes.data()), ext.codes_size);
    ext.codes_checksum = Checksum64(file.data() + ext.codes_offset,
                                    static_cast<size_t>(ext.codes_size));
  }

  // Manifest footer.
  const uint64_t manifest_offset = file.size();
  {
    ByteWriter w(&file);
    w.PutString(rel.name());
    w.PutU64(id_bound);
    w.PutU64(rel.size());
    w.PutU64(rel.version());
    w.PutU64(rel.overwrite_version());
    w.PutU64(live_offset);
    w.PutU64(live_size);
    w.PutU64(live_checksum);
    w.PutU32(static_cast<uint32_t>(ncols));
    for (size_t c = 0; c < ncols; ++c) {
      const AttributeDef& attr = rel.schema().attr(c);
      w.PutString(attr.name);
      w.PutU8(static_cast<uint8_t>(attr.type));
      w.PutU32(static_cast<uint32_t>(attr.finite_domain.size()));
      for (const Value& v : attr.finite_domain) w.PutValue(v);
      const ColumnExtent& ext = extents[c];
      w.PutU32(ext.dict_count);
      w.PutU64(ext.dict_offset);
      w.PutU64(ext.dict_size);
      w.PutU64(ext.dict_checksum);
      w.PutU64(ext.codes_offset);
      w.PutU64(ext.codes_size);
      w.PutU64(ext.codes_checksum);
    }
  }
  const uint64_t manifest_size = file.size() - manifest_offset;
  const uint64_t manifest_checksum = Checksum64(
      file.data() + manifest_offset, static_cast<size_t>(manifest_size));

  // Patch the header now that every offset is known.
  std::memcpy(&file[0], kSnapshotMagic, sizeof kSnapshotMagic);
  PatchU32(&file, 8, kEndianCanary);
  PatchU32(&file, 12, kFormatVersion);
  PatchU64(&file, 16, manifest_offset);
  PatchU64(&file, 24, manifest_size);
  PatchU64(&file, 32, manifest_checksum);
  PatchU64(&file, 40, file.size());
  PatchU64(&file, kHeaderChecksumOffset,
           Checksum64(file.data(), kHeaderChecksumOffset));

  // Publish with staged files and two back-to-back renames: both the
  // snapshot and its fresh (empty, newly stamped — a fresh snapshot
  // covers everything) WAL sidecar are fully written as .tmp before
  // either rename, so no crash point leaves a half-written file behind.
  // The only crash artifact left is the old sidecar next to the new
  // snapshot between the renames — ReplayWal treats a record-free
  // sidecar with a foreign stamp as the empty tail it is, so that state
  // stays openable too (a foreign sidecar *with* records still fails the
  // load, conservatively).
  // Both staged files are synced before either rename, and the parent
  // directory is fsynced after the renames — without the directory sync a
  // power cut can forget the rename itself and resurrect the old snapshot
  // (or nothing) even though the new file's bytes were durable.
  const std::string tmp = path + ".tmp";
  const std::string wal_tmp = WalPathFor(path) + ".tmp";
  Env* env = Env::Get();
  {
    SEMANDAQ_ASSIGN_OR_RETURN(WalWriter wal,
                              WalWriter::Create(wal_tmp, manifest_checksum));
    (void)wal;  // header written and synced; close before the rename
  }
  {
    SEMANDAQ_ASSIGN_OR_RETURN(
        std::unique_ptr<WritableFile> out,
        env->NewWritableFile(tmp, Env::OpenMode::kTruncate));
    SEMANDAQ_FAILPOINT_WRITE("snapshot.save.write", out.get(), file);
    SEMANDAQ_FAILPOINT("snapshot.save.pre_sync");
    SEMANDAQ_RETURN_IF_ERROR(out->Sync());
    SEMANDAQ_RETURN_IF_ERROR(out->Close());
  }
  SEMANDAQ_FAILPOINT("snapshot.save.pre_publish");
  {
    const Status renamed = env->RenameFile(tmp, path);
    if (!renamed.ok()) {
      (void)env->RemoveFile(tmp);
      (void)env->RemoveFile(wal_tmp);
      return renamed;
    }
  }
  SEMANDAQ_FAILPOINT("snapshot.save.between_renames");
  {
    const Status renamed = env->RenameFile(wal_tmp, WalPathFor(path));
    if (!renamed.ok()) {
      (void)env->RemoveFile(wal_tmp);
      return renamed;
    }
  }
  SEMANDAQ_FAILPOINT("snapshot.save.pre_dir_sync");
  // One directory fsync covers both renames: the sidecar lives beside the
  // snapshot, so they share a parent directory entry table.
  SEMANDAQ_RETURN_IF_ERROR(env->SyncDirOf(path));

  SnapshotStats stats;
  stats.id_bound = id_bound;
  stats.live_rows = rel.size();
  stats.num_columns = static_cast<uint32_t>(ncols);
  stats.file_bytes = file.size();
  stats.manifest_checksum = manifest_checksum;
  return stats;
}

Result<LoadedSnapshot> SnapshotReader::Read(const std::string& path) {
  // The single bulk read: everything below parses out of this one buffer.
  SEMANDAQ_ASSIGN_OR_RETURN(std::string file,
                            Env::Get()->ReadFileToString(path));

  if (file.size() < kHeaderSize) {
    return Status::IoError("truncated snapshot (shorter than the header): " +
                           path);
  }
  if (std::memcmp(file.data(), kSnapshotMagic, sizeof kSnapshotMagic) != 0) {
    return Status::IoError("not a semandaq snapshot (bad magic): " + path);
  }
  ByteReader header(file.data() + 8, kHeaderSize - 8, "snapshot header");
  SEMANDAQ_ASSIGN_OR_RETURN(uint32_t canary, header.GetU32());
  if (canary != kEndianCanary) {
    return Status::IoError("snapshot byte order does not match this host");
  }
  SEMANDAQ_ASSIGN_OR_RETURN(uint32_t version, header.GetU32());
  if (version != kFormatVersion) {
    return Status::IoError("unsupported snapshot format version " +
                           std::to_string(version));
  }
  SEMANDAQ_ASSIGN_OR_RETURN(uint64_t manifest_offset, header.GetU64());
  SEMANDAQ_ASSIGN_OR_RETURN(uint64_t manifest_size, header.GetU64());
  SEMANDAQ_ASSIGN_OR_RETURN(uint64_t manifest_checksum, header.GetU64());
  SEMANDAQ_ASSIGN_OR_RETURN(uint64_t file_size, header.GetU64());
  SEMANDAQ_ASSIGN_OR_RETURN(uint64_t header_checksum, header.GetU64());
  if (Checksum64(file.data(), kHeaderChecksumOffset) != header_checksum) {
    return Status::IoError("snapshot header checksum mismatch: " + path);
  }
  if (file_size != file.size()) {
    return Status::IoError(
        "truncated snapshot: header records " + std::to_string(file_size) +
        " bytes but the file has " + std::to_string(file.size()));
  }
  if (manifest_offset < kHeaderSize ||
      manifest_offset + manifest_size != file_size) {
    return Status::IoError("corrupted snapshot header: manifest out of bounds");
  }
  if (Checksum64(file.data() + manifest_offset,
                 static_cast<size_t>(manifest_size)) != manifest_checksum) {
    return Status::IoError("snapshot manifest checksum mismatch: " + path);
  }

  ByteReader m(file.data() + manifest_offset,
               static_cast<size_t>(manifest_size), "snapshot manifest");
  LoadedSnapshot out;
  out.manifest_checksum = manifest_checksum;
  SEMANDAQ_ASSIGN_OR_RETURN(out.saved_name, m.GetString());
  SEMANDAQ_ASSIGN_OR_RETURN(uint64_t id_bound, m.GetU64());
  SEMANDAQ_ASSIGN_OR_RETURN(uint64_t live_count, m.GetU64());
  SEMANDAQ_ASSIGN_OR_RETURN(uint64_t saved_version, m.GetU64());
  (void)saved_version;  // informational; sync marks use the rebuilt counters
  SEMANDAQ_ASSIGN_OR_RETURN(uint64_t saved_overwrite, m.GetU64());
  (void)saved_overwrite;
  SEMANDAQ_ASSIGN_OR_RETURN(uint64_t live_offset, m.GetU64());
  SEMANDAQ_ASSIGN_OR_RETURN(uint64_t live_size, m.GetU64());
  SEMANDAQ_ASSIGN_OR_RETURN(uint64_t live_checksum, m.GetU64());
  if (live_size != (id_bound + 7) / 8) {
    return Status::IoError("corrupted snapshot manifest: liveness bitmap size");
  }
  SEMANDAQ_ASSIGN_OR_RETURN(
      const uint8_t* live_bits,
      CheckSection(file, live_offset, live_size, live_checksum,
                   manifest_offset, "liveness bitmap"));

  SEMANDAQ_ASSIGN_OR_RETURN(uint32_t ncols, m.GetU32());
  std::vector<AttributeDef> attrs;
  attrs.reserve(ncols);
  out.dicts.reserve(ncols);
  out.columns.reserve(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    AttributeDef attr;
    SEMANDAQ_ASSIGN_OR_RETURN(attr.name, m.GetString());
    SEMANDAQ_ASSIGN_OR_RETURN(uint8_t type_tag, m.GetU8());
    if (type_tag > static_cast<uint8_t>(DataType::kString)) {
      return Status::IoError("corrupted snapshot manifest: bad column type");
    }
    attr.type = static_cast<DataType>(type_tag);
    SEMANDAQ_ASSIGN_OR_RETURN(uint32_t domain_count, m.GetU32());
    attr.finite_domain.reserve(domain_count);
    for (uint32_t i = 0; i < domain_count; ++i) {
      SEMANDAQ_ASSIGN_OR_RETURN(Value v, m.GetValue());
      attr.finite_domain.push_back(std::move(v));
    }
    attrs.push_back(std::move(attr));

    ColumnExtent ext;
    SEMANDAQ_ASSIGN_OR_RETURN(ext.dict_count, m.GetU32());
    SEMANDAQ_ASSIGN_OR_RETURN(ext.dict_offset, m.GetU64());
    SEMANDAQ_ASSIGN_OR_RETURN(ext.dict_size, m.GetU64());
    SEMANDAQ_ASSIGN_OR_RETURN(ext.dict_checksum, m.GetU64());
    SEMANDAQ_ASSIGN_OR_RETURN(ext.codes_offset, m.GetU64());
    SEMANDAQ_ASSIGN_OR_RETURN(ext.codes_size, m.GetU64());
    SEMANDAQ_ASSIGN_OR_RETURN(ext.codes_checksum, m.GetU64());

    // Dictionary blob: decoded values in code order.
    SEMANDAQ_ASSIGN_OR_RETURN(
        const uint8_t* dict_bytes,
        CheckSection(file, ext.dict_offset, ext.dict_size, ext.dict_checksum,
                     manifest_offset, "dictionary (column " + attr.name + ")"));
    ByteReader dr(dict_bytes, static_cast<size_t>(ext.dict_size),
                  "dictionary blob of column " + attr.name);
    std::vector<Value> decoded;
    decoded.reserve(ext.dict_count);
    for (uint32_t i = 0; i < ext.dict_count; ++i) {
      SEMANDAQ_ASSIGN_OR_RETURN(Value v, dr.GetValue());
      decoded.push_back(std::move(v));
    }
    if (!dr.exhausted()) {
      return Status::IoError("corrupted dictionary blob of column " +
                             attr.name + ": trailing bytes");
    }
    SEMANDAQ_ASSIGN_OR_RETURN(Dictionary dict,
                              Dictionary::FromDecodedValues(std::move(decoded)));
    out.dicts.push_back(std::make_shared<Dictionary>(std::move(dict)));

    // Code array: one memcpy off the file buffer into a refcounted chunk,
    // no per-value decoding — and the only copy of the codes this load
    // retains (the row hydrator shares the chunk; the file buffer dies
    // with this call). The file offsets are arbitrary, so the memcpy also
    // realigns the codes for the SIMD-friendly chunk storage.
    if (ext.codes_size != id_bound * sizeof(Code)) {
      return Status::IoError("corrupted snapshot manifest: code array of " +
                             attr.name + " has the wrong size");
    }
    SEMANDAQ_ASSIGN_OR_RETURN(
        const uint8_t* code_bytes,
        CheckSection(file, ext.codes_offset, ext.codes_size,
                     ext.codes_checksum, manifest_offset,
                     "code array (column " + attr.name + ")"));
    relational::CodeColumn codes;
    codes.Assign(reinterpret_cast<const Code*>(code_bytes),
                 static_cast<size_t>(id_bound));
    out.columns.push_back(std::move(codes));
  }
  if (!m.exhausted()) {
    return Status::IoError("corrupted snapshot manifest: trailing bytes");
  }

  // Rebuild the relation: same TupleIds, tombstones preserved. Every live
  // code is bounds-checked against its dictionary now — a code past the
  // dictionary means the file lies — but the per-cell *decode* into rows
  // is deferred: the relation gets a hydrator that materializes from the
  // retained file buffer on first row access (Relation::FromStorage), so
  // load-then-detect never pays it.
  Schema schema(std::move(attrs));
  std::vector<uint8_t> live(static_cast<size_t>(id_bound), 0);
  uint64_t live_seen = 0;
  for (uint64_t tid = 0; tid < id_bound; ++tid) {
    if ((live_bits[tid / 8] >> (tid % 8)) & 1) {
      live[static_cast<size_t>(tid)] = 1;
      ++live_seen;
    }
  }
  if (live_seen != live_count) {
    return Status::IoError("corrupted snapshot: liveness bitmap disagrees "
                           "with the recorded live count");
  }
  for (uint32_t c = 0; c < ncols; ++c) {
    const Dictionary& dict = *out.dicts[c];
    const relational::CodeColumn& codes = out.columns[c];
    for (uint64_t tid = 0; tid < id_bound; ++tid) {
      if (live[static_cast<size_t>(tid)] &&
          !dict.Contains(codes[static_cast<size_t>(tid)])) {
        return Status::IoError("corrupted snapshot: code out of range in "
                               "column " + schema.attr(c).name);
      }
    }
  }

  // The deferred row hydrator decodes from frozen views of the chunks and
  // dictionaries just built — by refcount, not by copy. The file buffer is
  // NOT captured: it dies when this function returns, so a loaded-but-
  // unhydrated relation holds exactly one copy of the data (the chunks).
  auto source = std::make_shared<HydrationSource>();
  source->dicts = out.dicts;
  source->columns.reserve(ncols);
  for (const auto& col : out.columns) {
    source->columns.push_back(col.ShareFrozen());
  }
  source->live = live;
  out.relation = Relation::FromStorage(
      out.saved_name, std::move(schema), std::move(live), [source]() {
        return relational::DecodeRowsFromColumns(source->dicts,
                                                 source->columns, source->live);
      });
  return out;
}

}  // namespace semandaq::storage
