#include "storage/wal.h"

#include <cstring>

#include "common/failpoint.h"
#include "storage/format.h"

namespace semandaq::storage {

using common::Result;
using common::Status;
using relational::Row;
using relational::TupleId;
using relational::Value;

namespace {

/// Fixed WAL header: magic(8) canary(4) version(4) snapshot_checksum(8)
/// header_checksum(8).
constexpr size_t kWalHeaderSize = 32;
constexpr size_t kWalHeaderChecksumOffset = kWalHeaderSize - 8;

/// Record ops. The insert path is the hot one (ISSUE's "rows inserted after
/// the last snapshot"); delete/setcell ride along so any mutation sequence
/// survives a restart — Sync() already knows how to absorb all three.
constexpr uint8_t kOpInsert = 1;
constexpr uint8_t kOpDelete = 2;
constexpr uint8_t kOpSetCell = 3;

/// Per-record frame ahead of the payload: u32 size + u64 checksum.
constexpr size_t kRecordFrameSize = 12;

std::string BuildWalHeader(uint64_t snapshot_checksum) {
  std::string h;
  ByteWriter w(&h);
  w.PutBytes(kWalMagic, sizeof kWalMagic);
  w.PutU32(kEndianCanary);
  w.PutU32(kFormatVersion);
  w.PutU64(snapshot_checksum);
  w.PutU64(Checksum64(h.data(), h.size()));
  return h;
}

/// Validates the header of a WAL buffer and returns its snapshot stamp;
/// callers decide how a foreign stamp is handled (see ReplayWal).
Result<uint64_t> ReadWalHeader(const std::string& file,
                               const std::string& path) {
  if (file.size() < kWalHeaderSize) {
    return Status::IoError("truncated WAL (shorter than the header): " + path);
  }
  if (std::memcmp(file.data(), kWalMagic, sizeof kWalMagic) != 0) {
    return Status::IoError("not a semandaq WAL (bad magic): " + path);
  }
  ByteReader r(file.data() + 8, kWalHeaderSize - 8, "WAL header");
  SEMANDAQ_ASSIGN_OR_RETURN(uint32_t canary, r.GetU32());
  if (canary != kEndianCanary) {
    return Status::IoError("WAL byte order does not match this host");
  }
  SEMANDAQ_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != kFormatVersion) {
    return Status::IoError("unsupported WAL format version " +
                           std::to_string(version));
  }
  SEMANDAQ_ASSIGN_OR_RETURN(uint64_t stamp, r.GetU64());
  SEMANDAQ_ASSIGN_OR_RETURN(uint64_t header_checksum, r.GetU64());
  if (Checksum64(file.data(), kWalHeaderChecksumOffset) != header_checksum) {
    return Status::IoError("WAL header checksum mismatch: " + path);
  }
  return stamp;
}

/// Walks the records of a validated WAL buffer, invoking `apply` per intact
/// payload. Returns the byte offset of the first torn/absent record (the
/// valid length of the segment); corruption before the tail is an error.
template <typename Fn>
Result<size_t> WalkRecords(const std::string& file, Fn&& apply) {
  size_t at = kWalHeaderSize;
  while (at < file.size()) {
    if (file.size() - at < kRecordFrameSize) break;  // torn frame at the tail
    uint32_t payload_size;
    uint64_t payload_checksum;
    std::memcpy(&payload_size, file.data() + at, 4);
    std::memcpy(&payload_checksum, file.data() + at + 4, 8);
    const size_t payload_at = at + kRecordFrameSize;
    if (file.size() - payload_at < payload_size) break;  // torn payload
    const char* payload = file.data() + payload_at;
    if (Checksum64(payload, payload_size) != payload_checksum) {
      // A checksum break on the *last* record is a torn write; anywhere
      // earlier the segment is corrupt, not merely interrupted.
      if (payload_at + payload_size == file.size()) break;
      return Status::IoError("WAL record checksum mismatch mid-segment");
    }
    SEMANDAQ_RETURN_IF_ERROR(apply(payload, static_cast<size_t>(payload_size)));
    at = payload_at + payload_size;
  }
  return at;
}

}  // namespace

Result<SyncPolicy> SyncPolicy::Parse(std::string_view text) {
  SyncPolicy p;
  if (text == "always") {
    p.mode = Mode::kAlways;
    return p;
  }
  if (text == "none") {
    p.mode = Mode::kNone;
    return p;
  }
  if (text == "batch") {
    p.mode = Mode::kBatch;
    return p;
  }
  if (text.size() > 7 && text.substr(0, 6) == "batch(" && text.back() == ')') {
    const std::string_view digits = text.substr(6, text.size() - 7);
    size_t n = 0;
    for (char c : digits) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("bad sync policy: " +
                                       std::string(text));
      }
      n = n * 10 + static_cast<size_t>(c - '0');
      if (n > (size_t{1} << 30)) {
        return Status::InvalidArgument("sync batch size too large: " +
                                       std::string(text));
      }
    }
    if (n == 0) {
      return Status::InvalidArgument("sync batch size must be >= 1: " +
                                     std::string(text));
    }
    p.mode = Mode::kBatch;
    p.batch_records = n;
    return p;
  }
  return Status::InvalidArgument(
      "bad sync policy (want always|batch|batch(N)|none): " +
      std::string(text));
}

std::string SyncPolicy::ToString() const {
  switch (mode) {
    case Mode::kAlways:
      return "always";
    case Mode::kNone:
      return "none";
    case Mode::kBatch:
      return "batch(" + std::to_string(batch_records) + ")";
  }
  return "always";
}

Result<WalWriter> WalWriter::Create(const std::string& path,
                                    uint64_t snapshot_checksum,
                                    SyncPolicy policy) {
  SEMANDAQ_FAILPOINT("wal.create.pre_open");
  SEMANDAQ_ASSIGN_OR_RETURN(
      std::unique_ptr<WritableFile> out,
      Env::Get()->NewWritableFile(path, Env::OpenMode::kTruncate));
  const std::string header = BuildWalHeader(snapshot_checksum);
  SEMANDAQ_FAILPOINT_WRITE("wal.create.write_header", out.get(), header);
  // The header is the segment's identity; a WAL whose header may evaporate
  // in a crash is not a WAL, so it syncs regardless of the record policy.
  SEMANDAQ_FAILPOINT("wal.create.pre_sync");
  SEMANDAQ_RETURN_IF_ERROR(out->Sync());
  return WalWriter(path, std::move(out), policy);
}

Result<WalWriter> WalWriter::OpenExisting(const std::string& path,
                                          uint64_t snapshot_checksum,
                                          SyncPolicy policy) {
  Env* env = Env::Get();
  SEMANDAQ_ASSIGN_OR_RETURN(std::string file, env->ReadFileToString(path));
  SEMANDAQ_ASSIGN_OR_RETURN(uint64_t stamp, ReadWalHeader(file, path));
  if (stamp != snapshot_checksum) {
    // Appending under a foreign stamp would fabricate history for a
    // snapshot this segment does not extend — never acceptable, even
    // when the segment is empty.
    return Status::IoError(
        "WAL does not extend this snapshot (stamp mismatch): " + path);
  }
  SEMANDAQ_ASSIGN_OR_RETURN(
      size_t valid_end,
      WalkRecords(file, [](const char*, size_t) { return Status::OK(); }));
  if (valid_end != file.size()) {
    // Drop the torn tail so new appends start on a record boundary.
    SEMANDAQ_RETURN_IF_ERROR(env->TruncateFile(path, valid_end));
  }
  SEMANDAQ_ASSIGN_OR_RETURN(
      std::unique_ptr<WritableFile> out,
      env->NewWritableFile(path, Env::OpenMode::kAppend));
  return WalWriter(path, std::move(out), policy);
}

Status WalWriter::AppendRecord(const std::string& payload) {
  SEMANDAQ_FAILPOINT("wal.append.pre_write");
  // Frame and payload go out as one buffer: a crash can tear the record at
  // any byte, but can never interleave it with a neighbor.
  std::string buf;
  ByteWriter w(&buf);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU64(Checksum64(payload.data(), payload.size()));
  buf.append(payload);
  SEMANDAQ_FAILPOINT_WRITE("wal.append.write", out_.get(), buf);
  SEMANDAQ_FAILPOINT("wal.append.pre_sync");
  switch (policy_.mode) {
    case SyncPolicy::Mode::kAlways:
      SEMANDAQ_RETURN_IF_ERROR(out_->Sync());
      break;
    case SyncPolicy::Mode::kBatch:
      if (++unsynced_records_ >= policy_.batch_records) {
        SEMANDAQ_RETURN_IF_ERROR(out_->Sync());
        unsynced_records_ = 0;
      }
      break;
    case SyncPolicy::Mode::kNone:
      break;
  }
  return Status::OK();
}

Status WalWriter::SyncNow() {
  SEMANDAQ_RETURN_IF_ERROR(out_->Sync());
  unsynced_records_ = 0;
  return Status::OK();
}

Status WalWriter::AppendInsert(const Row& row) {
  std::string payload;
  ByteWriter w(&payload);
  w.PutU8(kOpInsert);
  w.PutU32(static_cast<uint32_t>(row.size()));
  for (const Value& v : row) w.PutValue(v);
  return AppendRecord(payload);
}

Status WalWriter::AppendDelete(TupleId tid) {
  std::string payload;
  ByteWriter w(&payload);
  w.PutU8(kOpDelete);
  w.PutU64(static_cast<uint64_t>(tid));
  return AppendRecord(payload);
}

Status WalWriter::AppendSetCell(TupleId tid, size_t col, const Value& value) {
  std::string payload;
  ByteWriter w(&payload);
  w.PutU8(kOpSetCell);
  w.PutU64(static_cast<uint64_t>(tid));
  w.PutU32(static_cast<uint32_t>(col));
  w.PutValue(value);
  return AppendRecord(payload);
}

Result<size_t> ReplayWal(const std::string& path, uint64_t snapshot_checksum,
                         relational::Relation* rel,
                         common::CancelToken* cancel) {
  Env* env = Env::Get();
  if (!env->FileExists(path)) return size_t{0};  // no tail
  SEMANDAQ_ASSIGN_OR_RETURN(std::string file, env->ReadFileToString(path));
  SEMANDAQ_ASSIGN_OR_RETURN(uint64_t stamp, ReadWalHeader(file, path));
  if (stamp != snapshot_checksum) {
    // A sidecar stamped for a different snapshot carries nothing this
    // load may replay. With records in it, that is a real mismatch and
    // the load must fail; record-free, it is the one artifact a crash
    // between SnapshotWriter's two publish renames can leave behind (the
    // predecessor's empty sidecar), and an empty tail is an empty tail.
    size_t records = 0;
    SEMANDAQ_ASSIGN_OR_RETURN(
        size_t end, WalkRecords(file, [&](const char*, size_t) {
          ++records;
          return Status::OK();
        }));
    (void)end;
    if (records != 0) {
      return Status::IoError(
          "WAL does not extend this snapshot (stamp mismatch): " + path);
    }
    return size_t{0};
  }

  size_t applied = 0;
  auto apply = [&](const char* payload, size_t size) -> Status {
    SEMANDAQ_RETURN_IF_CANCELLED(cancel);
    ByteReader r(payload, size, "WAL record");
    SEMANDAQ_ASSIGN_OR_RETURN(uint8_t op, r.GetU8());
    switch (op) {
      case kOpInsert: {
        SEMANDAQ_ASSIGN_OR_RETURN(uint32_t ncells, r.GetU32());
        Row row;
        row.reserve(ncells);
        for (uint32_t i = 0; i < ncells; ++i) {
          SEMANDAQ_ASSIGN_OR_RETURN(Value v, r.GetValue());
          row.push_back(std::move(v));
        }
        SEMANDAQ_ASSIGN_OR_RETURN(TupleId tid, rel->Insert(std::move(row)));
        (void)tid;
        break;
      }
      case kOpDelete: {
        SEMANDAQ_ASSIGN_OR_RETURN(uint64_t tid, r.GetU64());
        SEMANDAQ_RETURN_IF_ERROR(rel->Delete(static_cast<TupleId>(tid)));
        break;
      }
      case kOpSetCell: {
        SEMANDAQ_ASSIGN_OR_RETURN(uint64_t tid, r.GetU64());
        SEMANDAQ_ASSIGN_OR_RETURN(uint32_t col, r.GetU32());
        SEMANDAQ_ASSIGN_OR_RETURN(Value v, r.GetValue());
        SEMANDAQ_RETURN_IF_ERROR(
            rel->SetCell(static_cast<TupleId>(tid), col, std::move(v)));
        break;
      }
      default:
        return Status::IoError("unknown WAL record op " + std::to_string(op));
    }
    if (!r.exhausted()) {
      return Status::IoError("corrupted WAL record: trailing bytes");
    }
    ++applied;
    return Status::OK();
  };
  SEMANDAQ_ASSIGN_OR_RETURN(size_t valid_end, WalkRecords(file, apply));
  (void)valid_end;
  return applied;
}

Result<std::unique_ptr<WalAttachment>> WalAttachment::Open(
    const std::string& wal_path, uint64_t snapshot_checksum,
    SyncPolicy policy) {
  SEMANDAQ_ASSIGN_OR_RETURN(
      WalWriter writer,
      WalWriter::OpenExisting(wal_path, snapshot_checksum, policy));
  return std::unique_ptr<WalAttachment>(new WalAttachment(std::move(writer)));
}

void WalAttachment::OnInsert(TupleId tid, const Row& row) {
  (void)tid;  // replay re-issues the same ids by append order
  if (!status_.ok()) return;
  status_ = writer_.AppendInsert(row);
  if (status_.ok()) ++records_appended_;
}

void WalAttachment::OnDelete(TupleId tid) {
  if (!status_.ok()) return;
  status_ = writer_.AppendDelete(tid);
  if (status_.ok()) ++records_appended_;
}

void WalAttachment::OnSetCell(TupleId tid, size_t col, const Value& value) {
  if (!status_.ok()) return;
  status_ = writer_.AppendSetCell(tid, col, value);
  if (status_.ok()) ++records_appended_;
}

}  // namespace semandaq::storage
