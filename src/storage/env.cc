#include "storage/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

namespace semandaq::storage {

using common::Result;
using common::Status;

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::FailedPrecondition("file is closed: " + path_);
    const char* p = data.data();
    size_t n = data.size();
    while (n > 0) {
      const ssize_t w = ::write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Errno("cannot write", path_);
      }
      p += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::FailedPrecondition("file is closed: " + path_);
    if (::fdatasync(fd_) != 0) return Errno("cannot fdatasync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return Errno("cannot close", path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, OpenMode mode) override {
    const int flags = O_WRONLY | O_CREAT | O_CLOEXEC |
                      (mode == OpenMode::kTruncate ? O_TRUNC : O_APPEND);
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return Errno("cannot open for writing", path);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return Errno("cannot open for reading", path);
    std::string out;
    char buf[1 << 16];
    for (;;) {
      const ssize_t r = ::read(fd, buf, sizeof buf);
      if (r < 0) {
        if (errno == EINTR) continue;
        const Status st = Errno("cannot read", path);
        ::close(fd);
        return st;
      }
      if (r == 0) break;
      out.append(buf, static_cast<size_t>(r));
    }
    ::close(fd);
    return out;
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Errno("cannot rename " + from + " to", to);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Errno("cannot remove", path);
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Errno("cannot truncate", path);
    }
    return Status::OK();
  }

  Status SyncDirOf(const std::string& path) override {
    const size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : path.substr(0, slash == 0 ? 1 : slash);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return Errno("cannot open directory", dir);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return Errno("cannot fsync directory", dir);
    return Status::OK();
  }
};

std::atomic<Env*> g_env{nullptr};

}  // namespace

Env* Env::Default() {
  static PosixEnv* posix = new PosixEnv();
  return posix;
}

Env* Env::Get() {
  Env* env = g_env.load(std::memory_order_acquire);
  return env != nullptr ? env : Default();
}

void Env::Set(Env* env) { g_env.store(env, std::memory_order_release); }

}  // namespace semandaq::storage
