#include "storage/fault_env.h"

#include <sys/stat.h>

#include <algorithm>
#include <utility>

namespace semandaq::storage {

using common::Result;
using common::Status;

namespace {

uint64_t SizeOnDisk(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace

/// Pass-through writable file that reports appends and syncs back to the
/// env so it can keep the durable-prefix bookkeeping current.
class FaultInjectionWritableFile : public WritableFile {
 public:
  FaultInjectionWritableFile(FaultInjectionEnv* env, std::string path,
                             std::unique_ptr<WritableFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    SEMANDAQ_RETURN_IF_ERROR(base_->Append(data));
    env_->OnAppend(path_, data.size());
    return Status::OK();
  }

  Status Sync() override {
    SEMANDAQ_RETURN_IF_ERROR(base_->Sync());
    env_->OnSync(path_);
    return Status::OK();
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base)
    : base_(base != nullptr ? base : Env::Default()) {}

Status FaultInjectionEnv::SimulatePowerCut() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [path, state] : files_) {
    if (state.synced < state.written && base_->FileExists(path)) {
      SEMANDAQ_RETURN_IF_ERROR(base_->TruncateFile(path, state.synced));
    }
  }
  files_.clear();
  return Status::OK();
}

void FaultInjectionEnv::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  files_.clear();
  sync_calls_ = 0;
}

uint64_t FaultInjectionEnv::sync_calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sync_calls_;
}

void FaultInjectionEnv::OnOpen(const std::string& path, OpenMode mode,
                               uint64_t existing_size) {
  std::lock_guard<std::mutex> lock(mu_);
  if (mode == OpenMode::kTruncate) {
    // Overwriting discards the old durable content too: after a power cut
    // mid-rewrite the safest model is "empty until synced again".
    files_[path] = FileState{0, 0};
    return;
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    // History this env never saw is durable history.
    files_[path] = FileState{existing_size, existing_size};
    return;
  }
  it->second.written = existing_size;
  it->second.synced = std::min(it->second.synced, existing_size);
}

void FaultInjectionEnv::OnAppend(const std::string& path, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path].written += bytes;
}

void FaultInjectionEnv::OnSync(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  FileState& state = files_[path];
  state.synced = state.written;
  ++sync_calls_;
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, OpenMode mode) {
  const uint64_t existing =
      mode == OpenMode::kAppend ? SizeOnDisk(path) : uint64_t{0};
  SEMANDAQ_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                            base_->NewWritableFile(path, mode));
  OnOpen(path, mode, existing);
  return std::unique_ptr<WritableFile>(
      new FaultInjectionWritableFile(this, path, std::move(base)));
}

Result<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) {
  return base_->ReadFileToString(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  SEMANDAQ_RETURN_IF_ERROR(base_->RenameFile(from, to));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it != files_.end()) {
    files_[to] = it->second;
    files_.erase(it);
  }
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  SEMANDAQ_RETURN_IF_ERROR(base_->RemoveFile(path));
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(path);
  return Status::OK();
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  SEMANDAQ_RETURN_IF_ERROR(base_->TruncateFile(path, size));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it != files_.end()) {
    it->second.written = std::min(it->second.written, size);
    it->second.synced = std::min(it->second.synced, size);
  }
  return Status::OK();
}

Status FaultInjectionEnv::SyncDirOf(const std::string& path) {
  return base_->SyncDirOf(path);
}

}  // namespace semandaq::storage
