#include "storage/format.h"

#include "common/hash.h"

namespace semandaq::storage {

using common::Result;
using common::SplitMix64;  // the per-lane mixer of Checksum64
using common::Status;
using relational::Value;

uint64_t Checksum64(const void* data, size_t size, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = SplitMix64(seed ^ (0x53444153ULL + size));  // length-keyed start
  size_t n = size;
  while (n >= 8) {
    uint64_t lane;
    std::memcpy(&lane, p, 8);
    h = SplitMix64(h ^ lane);
    p += 8;
    n -= 8;
  }
  uint64_t tail = 0;
  for (size_t i = 0; i < n; ++i) {
    tail |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return SplitMix64(h ^ tail);
}

void ByteWriter::PutValue(const Value& v) {
  switch (v.type()) {
    case relational::DataType::kNull:
      PutU8(0);
      return;
    case relational::DataType::kInt:
      PutU8(1);
      PutI64(v.AsInt());
      return;
    case relational::DataType::kDouble:
      PutU8(2);
      PutDouble(v.AsDouble());
      return;
    case relational::DataType::kString:
      PutU8(3);
      PutString(v.AsString());
      return;
  }
}

Result<uint8_t> ByteReader::GetU8() {
  if (remaining() < 1) return Overrun("u8");
  return *cur_++;
}

Result<uint32_t> ByteReader::GetU32() {
  if (remaining() < 4) return Overrun("u32");
  uint32_t v;
  std::memcpy(&v, cur_, 4);
  cur_ += 4;
  return v;
}

Result<uint64_t> ByteReader::GetU64() {
  if (remaining() < 8) return Overrun("u64");
  uint64_t v;
  std::memcpy(&v, cur_, 8);
  cur_ += 8;
  return v;
}

Result<int64_t> ByteReader::GetI64() {
  if (remaining() < 8) return Overrun("i64");
  int64_t v;
  std::memcpy(&v, cur_, 8);
  cur_ += 8;
  return v;
}

Result<double> ByteReader::GetDouble() {
  if (remaining() < 8) return Overrun("double");
  double v;
  std::memcpy(&v, cur_, 8);
  cur_ += 8;
  return v;
}

Result<std::string> ByteReader::GetString() {
  SEMANDAQ_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (remaining() < len) return Overrun("string payload");
  std::string s(reinterpret_cast<const char*>(cur_), len);
  cur_ += len;
  return s;
}

Result<Value> ByteReader::GetValue() {
  SEMANDAQ_ASSIGN_OR_RETURN(uint8_t tag, GetU8());
  switch (tag) {
    case 0:
      return Value::Null();
    case 1: {
      SEMANDAQ_ASSIGN_OR_RETURN(int64_t v, GetI64());
      return Value::Int(v);
    }
    case 2: {
      SEMANDAQ_ASSIGN_OR_RETURN(double v, GetDouble());
      return Value::Double(v);
    }
    case 3: {
      SEMANDAQ_ASSIGN_OR_RETURN(std::string s, GetString());
      return Value::String(std::move(s));
    }
    default:
      return Status::IoError("corrupted " + context_ + ": unknown value tag " +
                             std::to_string(tag));
  }
}

Result<const uint8_t*> ByteReader::GetBytes(size_t n) {
  if (remaining() < n) return Overrun("raw bytes");
  const uint8_t* p = cur_;
  cur_ += n;
  return p;
}

}  // namespace semandaq::storage
