#ifndef SEMANDAQ_STORAGE_CATALOG_H_
#define SEMANDAQ_STORAGE_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace semandaq::storage {

/// Whole-database persistence: a directory holding one snapshot file (plus
/// WAL sidecar) per relation and a checksummed catalog manifest that names
/// them. The manifest is the unit a server restart opens to come back warm
/// — every relation listed is reopened through the ordinary snapshot + WAL
/// replay path, so the reopened database is byte-equivalent to the live one
/// at its last save (plus journaled mutations). Byte-level layout:
/// docs/server.md (Catalog manifest).

/// Catalog file magic ("SDQCATL1"), first 8 bytes of the manifest.
inline constexpr char kCatalogMagic[8] = {'S', 'D', 'Q', 'C',
                                          'A', 'T', 'L', '1'};

/// Conventional manifest filename inside a database directory.
inline constexpr const char* kCatalogFileName = "catalog.sdqc";

/// One relation the catalog names: its display name, the snapshot file
/// holding it (relative to the catalog's directory), and the snapshot's
/// manifest checksum at save time (advisory identity for ops/debugging;
/// the snapshot and WAL verify themselves on open).
struct CatalogEntry {
  std::string name;
  std::string file;
  uint64_t snapshot_checksum = 0;
};

/// Creates `dir` if it does not exist yet (one level; parents must exist).
common::Status EnsureDirectory(const std::string& dir);

/// Maps a relation name to a filesystem-safe snapshot filename stem:
/// alphanumerics, '_' and '-' pass through, everything else becomes '_'.
/// Collisions are the caller's problem (CatalogEntry::file is what opens).
std::string SanitizeFileStem(const std::string& name);

/// Writes the catalog manifest for `dir` (write-temp-rename, so a crash
/// never leaves a torn manifest behind).
common::Status WriteCatalog(const std::string& dir,
                            const std::vector<CatalogEntry>& entries);

/// Reads and checksum-verifies the catalog manifest in `dir`. Corruption
/// and truncation come back as IoError; a missing manifest is NotFound.
common::Result<std::vector<CatalogEntry>> ReadCatalog(const std::string& dir);

}  // namespace semandaq::storage

#endif  // SEMANDAQ_STORAGE_CATALOG_H_
