#include "storage/catalog.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <memory>

#include "common/csv.h"
#include "common/failpoint.h"
#include "storage/env.h"
#include "storage/format.h"

namespace semandaq::storage {

using common::Result;
using common::Status;

namespace {

std::string CatalogPath(const std::string& dir) {
  return dir + "/" + kCatalogFileName;
}

}  // namespace

common::Status EnsureDirectory(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::IoError("cannot create directory " + dir + ": " +
                         std::strerror(errno));
}

std::string SanitizeFileStem(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-';
    out.push_back(safe ? c : '_');
  }
  if (out.empty()) out = "relation";
  return out;
}

common::Status WriteCatalog(const std::string& dir,
                            const std::vector<CatalogEntry>& entries) {
  std::string bytes;
  ByteWriter w(&bytes);
  w.PutBytes(kCatalogMagic, sizeof kCatalogMagic);
  w.PutU32(kEndianCanary);
  w.PutU32(kFormatVersion);
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const CatalogEntry& e : entries) {
    w.PutString(e.name);
    w.PutString(e.file);
    w.PutU64(e.snapshot_checksum);
  }
  w.PutU64(Checksum64(bytes.data(), bytes.size()));

  // Write-temp-sync-rename-syncdir, mirroring the snapshot writer's
  // publish discipline: a crash mid-write leaves the previous manifest (or
  // none) in place, never a torn one, and the directory fsync makes the
  // rename itself survive a power cut.
  const std::string path = CatalogPath(dir);
  const std::string tmp = path + ".tmp";
  Env* env = Env::Get();
  {
    SEMANDAQ_ASSIGN_OR_RETURN(
        std::unique_ptr<WritableFile> out,
        env->NewWritableFile(tmp, Env::OpenMode::kTruncate));
    SEMANDAQ_FAILPOINT_WRITE("catalog.save.write", out.get(), bytes);
    SEMANDAQ_FAILPOINT("catalog.save.pre_sync");
    SEMANDAQ_RETURN_IF_ERROR(out->Sync());
    SEMANDAQ_RETURN_IF_ERROR(out->Close());
  }
  SEMANDAQ_FAILPOINT("catalog.save.pre_rename");
  {
    const Status renamed = env->RenameFile(tmp, path);
    if (!renamed.ok()) {
      (void)env->RemoveFile(tmp);
      return renamed;
    }
  }
  SEMANDAQ_FAILPOINT("catalog.save.pre_dir_sync");
  SEMANDAQ_RETURN_IF_ERROR(env->SyncDirOf(path));
  return Status::OK();
}

common::Result<std::vector<CatalogEntry>> ReadCatalog(const std::string& dir) {
  const std::string path = CatalogPath(dir);
  Env* env = Env::Get();
  if (!env->FileExists(path)) {
    return Status::NotFound("no catalog manifest at " + path);
  }
  SEMANDAQ_ASSIGN_OR_RETURN(std::string bytes, env->ReadFileToString(path));
  if (bytes.size() < sizeof kCatalogMagic + sizeof(uint64_t)) {
    return Status::IoError("truncated catalog at " + path);
  }
  const size_t body_size = bytes.size() - sizeof(uint64_t);
  ByteReader footer(bytes.data() + body_size, sizeof(uint64_t), "catalog");
  SEMANDAQ_ASSIGN_OR_RETURN(uint64_t stored, footer.GetU64());
  if (stored != Checksum64(bytes.data(), body_size)) {
    return Status::IoError("catalog checksum mismatch at " + path);
  }

  ByteReader r(bytes.data(), body_size, "catalog");
  SEMANDAQ_ASSIGN_OR_RETURN(const uint8_t* magic,
                            r.GetBytes(sizeof kCatalogMagic));
  if (std::memcmp(magic, kCatalogMagic, sizeof kCatalogMagic) != 0) {
    return Status::IoError("not a catalog manifest: " + path);
  }
  SEMANDAQ_ASSIGN_OR_RETURN(uint32_t canary, r.GetU32());
  if (canary != kEndianCanary) {
    return Status::IoError("catalog byte order mismatch at " + path);
  }
  SEMANDAQ_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != kFormatVersion) {
    return Status::IoError("unsupported catalog version " +
                           std::to_string(version) + " at " + path);
  }
  SEMANDAQ_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  std::vector<CatalogEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CatalogEntry e;
    SEMANDAQ_ASSIGN_OR_RETURN(e.name, r.GetString());
    SEMANDAQ_ASSIGN_OR_RETURN(e.file, r.GetString());
    SEMANDAQ_ASSIGN_OR_RETURN(e.snapshot_checksum, r.GetU64());
    entries.push_back(std::move(e));
  }
  if (!r.exhausted()) {
    return Status::IoError("trailing bytes after catalog entries at " + path);
  }
  return entries;
}

}  // namespace semandaq::storage
