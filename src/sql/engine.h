#ifndef SEMANDAQ_SQL_ENGINE_H_
#define SEMANDAQ_SQL_ENGINE_H_

#include <string_view>
#include <utility>

#include "common/status.h"
#include "relational/database.h"
#include "relational/relation.h"
#include "sql/executor.h"

namespace semandaq::sql {

/// Front door of the SQL substrate: parse + bind + execute against a
/// database. This is the component the error detector hands its generated
/// detection queries to, standing in for the DBMS of the paper's
/// architecture.
class Engine {
 public:
  /// The database must outlive the engine. Not owned.
  explicit Engine(const relational::Database* db) : db_(db) {}

  /// Attaches the warm-snapshot resolver enabling the executor's
  /// code-compiled fast paths (see sql::Execute): string-equality scans,
  /// shared-dictionary hash joins, and GROUP BY on dictionary codes.
  /// Results are identical with or without it.
  void set_encoded_provider(EncodedProvider provider) {
    provider_ = std::move(provider);
  }

  /// Attaches a cooperative cancellation token (common/cancel.h) checked
  /// at the executor's batch boundaries. nullptr = not cancellable.
  void set_cancel(common::CancelToken* cancel) { cancel_ = cancel; }

  /// Runs one SELECT and materializes the result relation.
  common::Result<relational::Relation> Query(
      std::string_view sql, std::string_view result_name = "result") const;

 private:
  const relational::Database* db_;
  EncodedProvider provider_;
  common::CancelToken* cancel_ = nullptr;
};

}  // namespace semandaq::sql

#endif  // SEMANDAQ_SQL_ENGINE_H_
