#ifndef SEMANDAQ_SQL_PARSER_H_
#define SEMANDAQ_SQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "sql/ast.h"

namespace semandaq::sql {

/// Parses a single SELECT statement.
///
/// Supported grammar (a superset of what the generated CFD-detection queries
/// of Fan et al. [TODS'08] need):
///
///   SELECT [DISTINCT] item, ...            item := * | t.* | expr [AS alias]
///   FROM t [alias], ...                    and INNER JOIN ... ON sugar
///   [WHERE expr] [GROUP BY expr, ...] [HAVING expr]
///   [ORDER BY expr [ASC|DESC], ...] [LIMIT n]
///
/// Expressions: literals (string/int/float/NULL/TRUE/FALSE), column refs,
/// comparisons, AND/OR/NOT, arithmetic, LIKE, IN (list), IS [NOT] NULL,
/// BETWEEN (desugared), and aggregate calls COUNT/SUM/AVG/MIN/MAX with
/// optional DISTINCT and COUNT(*).
common::Result<SelectStmt> ParseSelect(std::string_view sql);

}  // namespace semandaq::sql

#endif  // SEMANDAQ_SQL_PARSER_H_
