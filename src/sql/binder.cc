#include "sql/binder.h"

#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace semandaq::sql {

namespace {

using common::Result;
using common::Status;

bool IsAggregateName(const std::string& upper) {
  return upper == "COUNT" || upper == "SUM" || upper == "AVG" || upper == "MIN" ||
         upper == "MAX";
}

class Binder {
 public:
  Binder(SelectStmt stmt, const relational::Database& db) : db_(db) {
    q_.stmt = std::move(stmt);
  }

  Result<BoundQuery> Run() {
    SEMANDAQ_RETURN_IF_ERROR(BindTables());
    // WHERE and GROUP BY: no aggregates allowed.
    if (q_.stmt.where) {
      SEMANDAQ_RETURN_IF_ERROR(BindExpr(q_.stmt.where.get(), /*allow_agg=*/false));
    }
    for (auto& g : q_.stmt.group_by) {
      SEMANDAQ_RETURN_IF_ERROR(BindExpr(g.get(), /*allow_agg=*/false));
    }
    // Select list (stars expanded), HAVING, ORDER BY: aggregates allowed.
    SEMANDAQ_RETURN_IF_ERROR(ExpandOutputs());
    for (auto& out : q_.outputs) {
      SEMANDAQ_RETURN_IF_ERROR(BindExpr(out.expr.get(), /*allow_agg=*/true));
    }
    if (q_.stmt.having) {
      SEMANDAQ_RETURN_IF_ERROR(BindExpr(q_.stmt.having.get(), /*allow_agg=*/true));
    }
    for (auto& o : q_.stmt.order_by) {
      SEMANDAQ_RETURN_IF_ERROR(BindExpr(o.expr.get(), /*allow_agg=*/true));
    }
    q_.is_aggregate = !q_.stmt.group_by.empty() || !q_.aggregates.empty();
    if (q_.stmt.having && !q_.is_aggregate) {
      return Status::InvalidArgument("HAVING requires GROUP BY or aggregates");
    }
    SEMANDAQ_RETURN_IF_ERROR(UniquifyOutputNames());
    return std::move(q_);
  }

 private:
  Status BindTables() {
    if (q_.stmt.from.empty()) {
      return Status::InvalidArgument("FROM clause is required");
    }
    std::unordered_set<std::string> seen;
    for (const TableRef& tr : q_.stmt.from) {
      const relational::Relation* rel = db_.FindRelation(tr.table_name);
      if (rel == nullptr) {
        return Status::NotFound("no relation named " + tr.table_name);
      }
      std::string eff = common::ToLower(tr.effective_name());
      if (!seen.insert(eff).second) {
        return Status::InvalidArgument("duplicate table name/alias in FROM: " +
                                       tr.effective_name());
      }
      q_.tables.push_back(rel);
    }
    return Status::OK();
  }

  Status ExpandOutputs() {
    for (SelectItem& item : q_.stmt.items) {
      if (item.expr->kind == ExprKind::kStar) {
        const std::string& qual = item.expr->qualifier;
        bool matched = false;
        for (size_t t = 0; t < q_.tables.size(); ++t) {
          if (!qual.empty() &&
              !common::EqualsIgnoreCase(qual, q_.stmt.from[t].effective_name())) {
            continue;
          }
          matched = true;
          const auto& schema = q_.tables[t]->schema();
          for (size_t c = 0; c < schema.size(); ++c) {
            auto ref = Expr::Column(q_.stmt.from[t].effective_name(),
                                    schema.attr(c).name);
            q_.outputs.push_back(OutputColumn{std::move(ref), schema.attr(c).name});
          }
        }
        if (!matched) {
          return Status::NotFound("star qualifier does not name a FROM table: " + qual);
        }
        continue;
      }
      std::string name = item.alias;
      if (name.empty()) {
        name = item.expr->kind == ExprKind::kColumnRef ? item.expr->column
                                                       : item.expr->ToString();
      }
      q_.outputs.push_back(OutputColumn{CloneExpr(*item.expr), std::move(name)});
    }
    if (q_.outputs.empty()) {
      return Status::InvalidArgument("empty select list");
    }
    return Status::OK();
  }

  Status BindExpr(Expr* e, bool allow_agg) {
    switch (e->kind) {
      case ExprKind::kLiteral:
        return Status::OK();
      case ExprKind::kStar:
        return Status::InvalidArgument("'*' is only valid in the select list");
      case ExprKind::kColumnRef:
        return BindColumn(e);
      case ExprKind::kUnary:
        return BindExpr(e->left.get(), allow_agg);
      case ExprKind::kBinary:
        SEMANDAQ_RETURN_IF_ERROR(BindExpr(e->left.get(), allow_agg));
        return BindExpr(e->right.get(), allow_agg);
      case ExprKind::kFuncCall: {
        if (!IsAggregateName(e->func_name)) {
          return Status::InvalidArgument("unknown function: " + e->func_name);
        }
        if (!allow_agg) {
          return Status::InvalidArgument(
              "aggregate " + e->func_name + " is not allowed in WHERE or GROUP BY");
        }
        if (e->star_arg && e->func_name != "COUNT") {
          return Status::InvalidArgument(e->func_name + "(*) is not valid");
        }
        if (!e->star_arg) {
          if (e->args.size() != 1) {
            return Status::InvalidArgument(e->func_name +
                                           " takes exactly one argument");
          }
          // The argument is evaluated per input row: no nested aggregates.
          SEMANDAQ_RETURN_IF_ERROR(BindExpr(e->args[0].get(), /*allow_agg=*/false));
        }
        e->agg_index = static_cast<int>(q_.aggregates.size());
        q_.aggregates.push_back(e);
        return Status::OK();
      }
      case ExprKind::kInList: {
        SEMANDAQ_RETURN_IF_ERROR(BindExpr(e->left.get(), allow_agg));
        for (auto& item : e->in_list) {
          SEMANDAQ_RETURN_IF_ERROR(BindExpr(item.get(), allow_agg));
        }
        return Status::OK();
      }
      case ExprKind::kIsNull:
        return BindExpr(e->left.get(), allow_agg);
      case ExprKind::kLike:
        SEMANDAQ_RETURN_IF_ERROR(BindExpr(e->left.get(), allow_agg));
        return BindExpr(e->right.get(), allow_agg);
    }
    return Status::Internal("unreachable expression kind");
  }

  Status BindColumn(Expr* e) {
    int found_table = -1;
    int found_col = -1;
    for (size_t t = 0; t < q_.tables.size(); ++t) {
      if (!e->qualifier.empty() &&
          !common::EqualsIgnoreCase(e->qualifier, q_.stmt.from[t].effective_name())) {
        continue;
      }
      int col;
      if (common::EqualsIgnoreCase(e->column, kTidPseudoColumn)) {
        col = Expr::kTidColumn;
      } else {
        col = q_.tables[t]->schema().IndexOf(e->column);
        if (col < 0) continue;
      }
      if (found_table >= 0) {
        return Status::InvalidArgument("ambiguous column reference: " + e->ToString());
      }
      found_table = static_cast<int>(t);
      found_col = col;
    }
    if (found_table < 0) {
      return Status::NotFound("unresolved column reference: " + e->ToString());
    }
    e->bound_table = found_table;
    e->bound_col = found_col;
    return Status::OK();
  }

  Status UniquifyOutputNames() {
    std::unordered_map<std::string, int> counts;
    for (auto& out : q_.outputs) {
      std::string key = common::ToLower(out.name);
      int& n = counts[key];
      ++n;
      if (n > 1) out.name += "_" + std::to_string(n);
    }
    return Status::OK();
  }

  BoundQuery q_;
  const relational::Database& db_;
};

}  // namespace

common::Result<BoundQuery> Bind(SelectStmt stmt, const relational::Database& db) {
  Binder binder(std::move(stmt), db);
  return binder.Run();
}

}  // namespace semandaq::sql
