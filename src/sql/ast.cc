#include "sql/ast.h"

namespace semandaq::sql {

const char* BinOpToString(BinOp op) {
  switch (op) {
    case BinOp::kEq:
      return "=";
    case BinOp::kNe:
      return "<>";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kAnd:
      return "AND";
    case BinOp::kOr:
      return "OR";
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
  }
  return "?";
}

std::unique_ptr<Expr> CloneExpr(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->literal = e.literal;
  out->qualifier = e.qualifier;
  out->column = e.column;
  out->bound_table = e.bound_table;
  out->bound_col = e.bound_col;
  out->unary_op = e.unary_op;
  out->bin_op = e.bin_op;
  out->func_name = e.func_name;
  out->distinct = e.distinct;
  out->star_arg = e.star_arg;
  out->agg_index = e.agg_index;
  out->negated = e.negated;
  if (e.left) out->left = CloneExpr(*e.left);
  if (e.right) out->right = CloneExpr(*e.right);
  for (const auto& a : e.args) out->args.push_back(CloneExpr(*a));
  for (const auto& a : e.in_list) out->in_list.push_back(CloneExpr(*a));
  return out;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToSqlLiteral();
    case ExprKind::kColumnRef:
      return qualifier.empty() ? column : qualifier + "." + column;
    case ExprKind::kUnary:
      return (unary_op == UnaryOp::kNot ? "(NOT " : "(-") + left->ToString() + ")";
    case ExprKind::kBinary:
      return "(" + left->ToString() + " " + BinOpToString(bin_op) + " " +
             right->ToString() + ")";
    case ExprKind::kFuncCall: {
      std::string out = func_name + "(";
      if (distinct) out += "DISTINCT ";
      if (star_arg) {
        out += "*";
      } else {
        for (size_t i = 0; i < args.size(); ++i) {
          if (i > 0) out += ", ";
          out += args[i]->ToString();
        }
      }
      return out + ")";
    }
    case ExprKind::kInList: {
      std::string out = "(" + left->ToString();
      out += negated ? " NOT IN (" : " IN (";
      for (size_t i = 0; i < in_list.size(); ++i) {
        if (i > 0) out += ", ";
        out += in_list[i]->ToString();
      }
      return out + "))";
    }
    case ExprKind::kIsNull:
      return "(" + left->ToString() + (negated ? " IS NOT NULL)" : " IS NULL)");
    case ExprKind::kLike:
      return "(" + left->ToString() + (negated ? " NOT LIKE " : " LIKE ") +
             right->ToString() + ")";
    case ExprKind::kStar:
      return qualifier.empty() ? "*" : qualifier + ".*";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::Literal(relational::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::Column(std::string qualifier, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

std::unique_ptr<Expr> Expr::Unary(UnaryOp op, std::unique_ptr<Expr> operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->left = std::move(operand);
  return e;
}

std::unique_ptr<Expr> Expr::Binary(BinOp op, std::unique_ptr<Expr> l,
                                   std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

std::unique_ptr<Expr> Expr::Func(std::string name,
                                 std::vector<std::unique_ptr<Expr>> args,
                                 bool distinct) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFuncCall;
  e->func_name = std::move(name);
  e->args = std::move(args);
  e->distinct = distinct;
  return e;
}

std::unique_ptr<Expr> Expr::CountStar() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFuncCall;
  e->func_name = "COUNT";
  e->star_arg = true;
  return e;
}

std::unique_ptr<Expr> Expr::Star() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

std::string SelectStmt::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].expr->ToString();
    if (!items[i].alias.empty()) out += " AS " + items[i].alias;
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    out += from[i].table_name;
    if (!from[i].alias.empty()) out += " " + from[i].alias;
  }
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (!order_by[i].ascending) out += " DESC";
    }
  }
  if (limit.has_value()) out += " LIMIT " + std::to_string(*limit);
  return out;
}

}  // namespace semandaq::sql
