#include "sql/parser.h"

#include <utility>

#include "sql/lexer.h"

namespace semandaq::sql {

namespace {

using common::Result;
using common::Status;
using relational::Value;

// We cannot use SEMANDAQ_RETURN_IF_ERROR (it returns Status, these methods
// return Result<T>); this helper keeps keyword checks terse.
#define SEMANDAQ_RETURN_IF_NOT(expr)            \
  do {                                          \
    Status _st = (expr);                        \
    if (!_st.ok()) return _st;                  \
  } while (0)

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStmt> ParseStatement() {
    SEMANDAQ_RETURN_IF_NOT(ExpectKeyword("SELECT"));
    SelectStmt stmt;
    if (Peek().IsKeyword("DISTINCT")) {
      Advance();
      stmt.distinct = true;
    }
    // Select list.
    while (true) {
      SelectItem item;
      if (Peek().IsSymbol("*")) {
        Advance();
        item.expr = Expr::Star();
      } else if (Peek().type == TokenType::kIdentifier && Peek(1).IsSymbol(".") &&
                 Peek(2).IsSymbol("*")) {
        auto star = Expr::Star();
        star->qualifier = Peek().text;
        Advance();
        Advance();
        Advance();
        item.expr = std::move(star);
      } else {
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        item.expr = std::move(*e);
        if (Peek().IsKeyword("AS")) {
          Advance();
          if (Peek().type != TokenType::kIdentifier) {
            return Err("expected alias after AS");
          }
          item.alias = Peek().text;
          Advance();
        } else if (Peek().type == TokenType::kIdentifier) {
          item.alias = Peek().text;
          Advance();
        }
      }
      stmt.items.push_back(std::move(item));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    SEMANDAQ_RETURN_IF_NOT(ExpectKeyword("FROM"));
    // FROM list with optional INNER JOIN ... ON sugar.
    {
      auto first = ParseTableRef();
      if (!first.ok()) return first.status();
      stmt.from.push_back(std::move(*first));
    }
    while (true) {
      if (Peek().IsSymbol(",")) {
        Advance();
        auto tr = ParseTableRef();
        if (!tr.ok()) return tr.status();
        stmt.from.push_back(std::move(*tr));
        continue;
      }
      if (Peek().IsKeyword("JOIN") ||
          (Peek().IsKeyword("INNER") && Peek(1).IsKeyword("JOIN"))) {
        if (Peek().IsKeyword("INNER")) Advance();
        Advance();  // JOIN
        auto tr2 = ParseTableRef();
        if (!tr2.ok()) return tr2.status();
        stmt.from.push_back(std::move(*tr2));
        SEMANDAQ_RETURN_IF_NOT(ExpectKeyword("ON"));
        auto cond = ParseExpr();
        if (!cond.ok()) return cond.status();
        // Fold the join condition into WHERE.
        if (stmt.where) {
          stmt.where =
              Expr::Binary(BinOp::kAnd, std::move(stmt.where), std::move(*cond));
        } else {
          stmt.where = std::move(*cond);
        }
        continue;
      }
      break;
    }
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      if (stmt.where) {
        stmt.where = Expr::Binary(BinOp::kAnd, std::move(*e), std::move(stmt.where));
      } else {
        stmt.where = std::move(*e);
      }
    }
    if (Peek().IsKeyword("GROUP")) {
      Advance();
      SEMANDAQ_RETURN_IF_NOT(ExpectKeyword("BY"));
      while (true) {
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        stmt.group_by.push_back(std::move(*e));
        if (Peek().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (Peek().IsKeyword("HAVING")) {
      Advance();
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      stmt.having = std::move(*e);
    }
    if (Peek().IsKeyword("ORDER")) {
      Advance();
      SEMANDAQ_RETURN_IF_NOT(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        auto e = ParseExpr();
        if (!e.ok()) return e.status();
        item.expr = std::move(*e);
        if (Peek().IsKeyword("ASC")) {
          Advance();
        } else if (Peek().IsKeyword("DESC")) {
          Advance();
          item.ascending = false;
        }
        stmt.order_by.push_back(std::move(item));
        if (Peek().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (Peek().IsKeyword("LIMIT")) {
      Advance();
      if (Peek().type != TokenType::kInteger) return Err("expected integer after LIMIT");
      stmt.limit = Peek().int_value;
      Advance();
    }
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Err("unexpected trailing input: '" + Peek().text + "'");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Err(std::string msg) const {
    return Status::InvalidArgument("SQL parse error at offset " +
                                   std::to_string(Peek().offset) + ": " + std::move(msg));
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!Peek().IsKeyword(kw)) {
      return Err("expected " + std::string(kw) + ", found '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Result<TableRef> ParseTableRef() {
    if (Peek().type != TokenType::kIdentifier) return Err("expected table name");
    TableRef tr;
    tr.table_name = Peek().text;
    Advance();
    if (Peek().IsKeyword("AS")) {
      Advance();
      if (Peek().type != TokenType::kIdentifier) return Err("expected alias after AS");
      tr.alias = Peek().text;
      Advance();
    } else if (Peek().type == TokenType::kIdentifier) {
      tr.alias = Peek().text;
      Advance();
    }
    return tr;
  }

  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }

  Result<std::unique_ptr<Expr>> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs.status();
    auto node = std::move(*lhs);
    while (Peek().IsKeyword("OR")) {
      Advance();
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs.status();
      node = Expr::Binary(BinOp::kOr, std::move(node), std::move(*rhs));
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    auto lhs = ParseNot();
    if (!lhs.ok()) return lhs.status();
    auto node = std::move(*lhs);
    while (Peek().IsKeyword("AND")) {
      Advance();
      auto rhs = ParseNot();
      if (!rhs.ok()) return rhs.status();
      node = Expr::Binary(BinOp::kAnd, std::move(node), std::move(*rhs));
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseNot() {
    if (Peek().IsKeyword("NOT")) {
      Advance();
      auto operand = ParseNot();
      if (!operand.ok()) return operand.status();
      return Expr::Unary(UnaryOp::kNot, std::move(*operand));
    }
    return ParsePredicate();
  }

  Result<std::unique_ptr<Expr>> ParsePredicate() {
    auto lhs = ParseAdditive();
    if (!lhs.ok()) return lhs.status();
    auto node = std::move(*lhs);

    // Comparison operators.
    struct CmpOp {
      std::string_view sym;
      BinOp op;
    };
    static constexpr CmpOp kCmps[] = {
        {"<>", BinOp::kNe}, {"!=", BinOp::kNe}, {"<=", BinOp::kLe},
        {">=", BinOp::kGe}, {"=", BinOp::kEq},  {"<", BinOp::kLt},
        {">", BinOp::kGt},
    };
    for (const auto& cmp : kCmps) {
      if (Peek().IsSymbol(cmp.sym)) {
        Advance();
        auto rhs = ParseAdditive();
        if (!rhs.ok()) return rhs.status();
        return Expr::Binary(cmp.op, std::move(node), std::move(*rhs));
      }
    }

    bool negated = false;
    if (Peek().IsKeyword("NOT") &&
        (Peek(1).IsKeyword("IN") || Peek(1).IsKeyword("LIKE") ||
         Peek(1).IsKeyword("BETWEEN"))) {
      negated = true;
      Advance();
    }
    if (Peek().IsKeyword("IS")) {
      Advance();
      bool is_not = false;
      if (Peek().IsKeyword("NOT")) {
        Advance();
        is_not = true;
      }
      SEMANDAQ_RETURN_IF_NOT(ExpectKeyword("NULL"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIsNull;
      e->left = std::move(node);
      e->negated = is_not;
      return e;
    }
    if (Peek().IsKeyword("LIKE")) {
      Advance();
      auto pat = ParseAdditive();
      if (!pat.ok()) return pat.status();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kLike;
      e->left = std::move(node);
      e->right = std::move(*pat);
      e->negated = negated;
      return e;
    }
    if (Peek().IsKeyword("IN")) {
      Advance();
      if (!Peek().IsSymbol("(")) return Err("expected ( after IN");
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kInList;
      e->left = std::move(node);
      e->negated = negated;
      while (true) {
        auto item = ParseExpr();
        if (!item.ok()) return item.status();
        e->in_list.push_back(std::move(*item));
        if (Peek().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      if (!Peek().IsSymbol(")")) return Err("expected ) closing IN list");
      Advance();
      return e;
    }
    if (Peek().IsKeyword("BETWEEN")) {
      Advance();
      auto lo = ParseAdditive();
      if (!lo.ok()) return lo.status();
      SEMANDAQ_RETURN_IF_NOT(ExpectKeyword("AND"));
      auto hi = ParseAdditive();
      if (!hi.ok()) return hi.status();
      // x BETWEEN a AND b  =>  x >= a AND x <= b  (negated: NOT (...)).
      auto lhs_copy = CloneExpr(*node);
      auto range = Expr::Binary(
          BinOp::kAnd, Expr::Binary(BinOp::kGe, std::move(node), std::move(*lo)),
          Expr::Binary(BinOp::kLe, std::move(lhs_copy), std::move(*hi)));
      if (negated) return Expr::Unary(UnaryOp::kNot, std::move(range));
      return range;
    }
    if (negated) return Err("dangling NOT");
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    auto lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs.status();
    auto node = std::move(*lhs);
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      const BinOp op = Peek().IsSymbol("+") ? BinOp::kAdd : BinOp::kSub;
      Advance();
      auto rhs = ParseMultiplicative();
      if (!rhs.ok()) return rhs.status();
      node = Expr::Binary(op, std::move(node), std::move(*rhs));
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseMultiplicative() {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs.status();
    auto node = std::move(*lhs);
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/")) {
      const BinOp op = Peek().IsSymbol("*") ? BinOp::kMul : BinOp::kDiv;
      Advance();
      auto rhs = ParseUnary();
      if (!rhs.ok()) return rhs.status();
      node = Expr::Binary(op, std::move(node), std::move(*rhs));
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (Peek().IsSymbol("-")) {
      Advance();
      auto operand = ParseUnary();
      if (!operand.ok()) return operand.status();
      return Expr::Unary(UnaryOp::kNegate, std::move(*operand));
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kString: {
        auto e = Expr::Literal(Value::String(t.text));
        Advance();
        return e;
      }
      case TokenType::kInteger: {
        auto e = Expr::Literal(Value::Int(t.int_value));
        Advance();
        return e;
      }
      case TokenType::kFloat: {
        auto e = Expr::Literal(Value::Double(t.double_value));
        Advance();
        return e;
      }
      case TokenType::kKeyword: {
        if (t.IsKeyword("NULL")) {
          Advance();
          return Expr::Literal(Value::Null());
        }
        if (t.IsKeyword("TRUE")) {
          Advance();
          return Expr::Literal(Value::Int(1));
        }
        if (t.IsKeyword("FALSE")) {
          Advance();
          return Expr::Literal(Value::Int(0));
        }
        return Err("unexpected keyword '" + t.text + "' in expression");
      }
      case TokenType::kIdentifier: {
        std::string first = t.text;
        Advance();
        // Function call?
        if (Peek().IsSymbol("(")) {
          Advance();
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kFuncCall;
          e->func_name = ToUpperAscii(first);
          if (Peek().IsSymbol("*")) {
            Advance();
            e->star_arg = true;
          } else {
            if (Peek().IsKeyword("DISTINCT")) {
              Advance();
              e->distinct = true;
            }
            if (!Peek().IsSymbol(")")) {
              while (true) {
                auto arg = ParseExpr();
                if (!arg.ok()) return arg.status();
                e->args.push_back(std::move(*arg));
                if (Peek().IsSymbol(",")) {
                  Advance();
                  continue;
                }
                break;
              }
            }
          }
          if (!Peek().IsSymbol(")")) return Err("expected ) closing function call");
          Advance();
          return e;
        }
        // Qualified column?
        if (Peek().IsSymbol(".")) {
          Advance();
          if (Peek().type != TokenType::kIdentifier) {
            return Err("expected column name after '.'");
          }
          std::string col = Peek().text;
          Advance();
          return Expr::Column(std::move(first), std::move(col));
        }
        return Expr::Column("", std::move(first));
      }
      case TokenType::kSymbol: {
        if (t.IsSymbol("(")) {
          Advance();
          auto inner = ParseExpr();
          if (!inner.ok()) return inner.status();
          if (!Peek().IsSymbol(")")) return Err("expected )");
          Advance();
          return inner;
        }
        return Err("unexpected symbol '" + t.text + "' in expression");
      }
      case TokenType::kEnd:
        return Err("unexpected end of input in expression");
    }
    return Err("unexpected token");
  }

  static std::string ToUpperAscii(std::string s) {
    for (char& c : s) {
      if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
    }
    return s;
  }

#undef SEMANDAQ_RETURN_IF_NOT

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

common::Result<SelectStmt> ParseSelect(std::string_view sql) {
  SEMANDAQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace semandaq::sql
