#include "sql/lexer.h"

#include <array>
#include <cctype>

#include "common/string_util.h"

namespace semandaq::sql {

namespace {

constexpr std::array<std::string_view, 25> kKeywords = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP",  "BY",    "HAVING",
    "ORDER",  "ASC",      "DESC", "LIMIT", "AND",    "OR",    "NOT",
    "IN",     "IS",       "NULL", "LIKE",  "AS",     "ON",    "JOIN",
    "INNER",  "TRUE",     "FALSE", "BETWEEN",
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool IsReservedKeyword(std::string_view upper_word) {
  for (std::string_view kw : kKeywords) {
    if (kw == upper_word) return true;
  }
  return false;
}

common::Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    // String literal with '' escaping.
    if (c == '\'') {
      std::string payload;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            payload.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        payload.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return common::Status::InvalidArgument(
            "unterminated string literal at offset " + std::to_string(tok.offset));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(payload);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Quoted identifier.
    if (c == '"') {
      std::string payload;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '"') {
          if (i + 1 < n && sql[i + 1] == '"') {
            payload.push_back('"');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        payload.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return common::Status::InvalidArgument(
            "unterminated quoted identifier at offset " + std::to_string(tok.offset));
      }
      tok.type = TokenType::kIdentifier;
      tok.text = std::move(payload);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Number literal.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_float = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string_view lexeme = sql.substr(start, i - start);
      if (is_float) {
        tok.type = TokenType::kFloat;
        if (!common::ParseDouble(lexeme, &tok.double_value)) {
          return common::Status::InvalidArgument("bad numeric literal: " +
                                                 std::string(lexeme));
        }
      } else {
        tok.type = TokenType::kInteger;
        if (!common::ParseInt64(lexeme, &tok.int_value)) {
          return common::Status::InvalidArgument("bad integer literal: " +
                                                 std::string(lexeme));
        }
      }
      tok.text = std::string(lexeme);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Identifier or keyword.
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      std::string word(sql.substr(start, i - start));
      std::string upper = common::ToUpper(word);
      if (IsReservedKeyword(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = std::move(upper);
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = std::move(word);
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-char operators first.
    auto starts = [&](std::string_view op) {
      return sql.substr(i, op.size()) == op;
    };
    bool matched = false;
    for (std::string_view op : {"<>", "<=", ">=", "!="}) {
      if (starts(op)) {
        tok.type = TokenType::kSymbol;
        tok.text = std::string(op);
        i += op.size();
        tokens.push_back(std::move(tok));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    if (std::string_view("(),.*=<>+-/;").find(c) != std::string_view::npos) {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    return common::Status::InvalidArgument("unexpected character '" + std::string(1, c) +
                                           "' at offset " + std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace semandaq::sql
