#ifndef SEMANDAQ_SQL_EXECUTOR_H_
#define SEMANDAQ_SQL_EXECUTOR_H_

#include <functional>
#include <string>
#include <string_view>

#include "common/cancel.h"
#include "common/status.h"
#include "relational/encoded_relation.h"
#include "relational/relation.h"
#include "sql/binder.h"

namespace semandaq::sql {

/// Resolves a FROM table to its warm dictionary-encoded snapshot, or
/// nullptr when none exists. The executor validates the snapshot itself
/// (in sync, shape-matching) before trusting it, so providers can hand
/// back whatever the facade has without freshness bookkeeping.
using EncodedProvider = std::function<const relational::EncodedRelation*(
    const relational::Relation*)>;

/// Evaluates a bound query and materializes the result as a relation.
///
/// Physical strategy: left-deep join in FROM order. Equality conjuncts
/// between the joined prefix and the next table become composite-key hash
/// joins (SQL NULL semantics: null keys never match); everything else is a
/// nested-loop filter applied as soon as all referenced tables are joined.
/// Aggregation is hash-based with per-group states for COUNT / COUNT
/// DISTINCT / SUM / AVG / MIN / MAX. NULL comparison follows three-valued
/// logic throughout.
///
/// With an EncodedProvider, tables whose warm snapshot is in sync get the
/// code-compiled fast paths — results are row-for-row identical to the
/// value paths (the group emission order of an un-ORDER-BY'd aggregate may
/// differ, as it always could between hash-map states):
///  * `col = 'string literal'` conjuncts on a base scan compile to one
///    dictionary lookup + a FilterEqMulti32/MaskLive kernel pass over the
///    code column (only non-NULL string literals: a numeric literal can
///    cross-type equal a differently-coded cell, which codes cannot see);
///  * hash joins whose every key pair references the same column of the
///    same relation (the self-join shape of detection queries) key on
///    uint32 codes instead of hashed Values;
///  * GROUP BY over plain column refs of encoded tables keys on codes too.
///
/// `cancel` (common/cancel.h) is checked every few thousand rows in the
/// scan, join, aggregation, and projection loops; a tripped token turns
/// the query into Status::Cancelled / Status::DeadlineExceeded. Queries
/// only read the database and materialize a private result, so stopping
/// publishes nothing.
common::Result<relational::Relation> Execute(const BoundQuery& query,
                                             std::string_view result_name = "result",
                                             const EncodedProvider& encoded = {},
                                             common::CancelToken* cancel = nullptr);

}  // namespace semandaq::sql

#endif  // SEMANDAQ_SQL_EXECUTOR_H_
