#ifndef SEMANDAQ_SQL_EXECUTOR_H_
#define SEMANDAQ_SQL_EXECUTOR_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "relational/relation.h"
#include "sql/binder.h"

namespace semandaq::sql {

/// Evaluates a bound query and materializes the result as a relation.
///
/// Physical strategy: left-deep join in FROM order. Equality conjuncts
/// between the joined prefix and the next table become composite-key hash
/// joins (SQL NULL semantics: null keys never match); everything else is a
/// nested-loop filter applied as soon as all referenced tables are joined.
/// Aggregation is hash-based with per-group states for COUNT / COUNT
/// DISTINCT / SUM / AVG / MIN / MAX. NULL comparison follows three-valued
/// logic throughout.
common::Result<relational::Relation> Execute(const BoundQuery& query,
                                             std::string_view result_name = "result");

}  // namespace semandaq::sql

#endif  // SEMANDAQ_SQL_EXECUTOR_H_
