#ifndef SEMANDAQ_SQL_LEXER_H_
#define SEMANDAQ_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace semandaq::sql {

/// Token categories produced by the SQL lexer.
enum class TokenType {
  kIdentifier,   ///< Bare or "quoted" identifier.
  kKeyword,      ///< Reserved word; text is upper-cased.
  kString,       ///< 'single quoted' literal; text is the unescaped payload.
  kInteger,      ///< Integer literal.
  kFloat,        ///< Floating-point literal.
  kSymbol,       ///< Punctuation/operator; text is the exact lexeme.
  kEnd,          ///< End of input sentinel.
};

/// One lexical token with its source offset (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;        ///< Normalized lexeme (see TokenType docs).
  int64_t int_value = 0;   ///< For kInteger.
  double double_value = 0; ///< For kFloat.
  size_t offset = 0;       ///< Byte offset in the input.

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(std::string_view sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
};

/// Tokenizes a SQL string. SQL keywords are recognized case-insensitively;
/// '--' starts a line comment. Fails on unterminated strings and unknown
/// characters.
common::Result<std::vector<Token>> Tokenize(std::string_view sql);

/// True if `word` (upper-cased) is one of the reserved keywords.
bool IsReservedKeyword(std::string_view upper_word);

}  // namespace semandaq::sql

#endif  // SEMANDAQ_SQL_LEXER_H_
