#ifndef SEMANDAQ_SQL_BINDER_H_
#define SEMANDAQ_SQL_BINDER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/database.h"
#include "sql/ast.h"

namespace semandaq::sql {

/// Name of the pseudo-column exposing a tuple's stable id to SQL. The CFD
/// detection queries select it so violations can be mapped back to tuples.
inline constexpr const char* kTidPseudoColumn = "__tid";

/// One output column of a bound query: an expression plus its result name.
struct OutputColumn {
  std::unique_ptr<Expr> expr;  ///< owned (stars are expanded into fresh refs)
  std::string name;
};

/// A SELECT statement after semantic analysis: tables resolved, column
/// references bound to (table ordinal, column ordinal), aggregates collected,
/// stars expanded.
struct BoundQuery {
  SelectStmt stmt;
  std::vector<const relational::Relation*> tables;  ///< parallel to stmt.from
  bool is_aggregate = false;

  /// Every aggregate call in the select list / HAVING / ORDER BY, in
  /// discovery order; Expr::agg_index points here.
  std::vector<Expr*> aggregates;

  std::vector<OutputColumn> outputs;
};

/// Performs name resolution and semantic checks against `db`.
///
/// Rules enforced: FROM tables must exist and have unique effective names;
/// column refs must resolve uniquely; only COUNT/SUM/AVG/MIN/MAX calls are
/// known, they may not nest, and they may not appear in WHERE or GROUP BY;
/// aggregate queries may not select bare stars.
common::Result<BoundQuery> Bind(SelectStmt stmt, const relational::Database& db);

}  // namespace semandaq::sql

#endif  // SEMANDAQ_SQL_BINDER_H_
