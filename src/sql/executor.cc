#include "sql/executor.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "common/simd/simd.h"
#include "common/string_util.h"

namespace semandaq::sql {

namespace {

using common::Result;
using common::Status;
using relational::Code;
using relational::DataType;
using relational::EncodedRelation;
using relational::kNullCode;
using relational::Relation;
using relational::Row;
using relational::RowEq;
using relational::RowHash;
using relational::TupleId;
using relational::Value;

/// A partial or complete cross-product row: one base-table row pointer and
/// tuple id per FROM entry (null until that table is joined).
struct JoinedRow {
  std::vector<const Row*> rows;
  std::vector<TupleId> tids;
};

/// Tri-state boolean for SQL three-valued logic.
enum class TriBool { kFalse, kTrue, kUnknown };

TriBool ValueToTri(const Value& v, Status* status) {
  if (v.is_null()) return TriBool::kUnknown;
  double num = 0;
  if (v.ToNumeric(&num)) return num != 0 ? TriBool::kTrue : TriBool::kFalse;
  *status = Status::InvalidArgument("string value used as a boolean: " +
                                    v.ToDisplayString());
  return TriBool::kFalse;
}

Value TriToValue(TriBool b) {
  switch (b) {
    case TriBool::kFalse:
      return Value::Int(0);
    case TriBool::kTrue:
      return Value::Int(1);
    case TriBool::kUnknown:
      return Value::Null();
  }
  return Value::Null();
}

/// State of one aggregate over one group.
struct AggState {
  int64_t count = 0;
  double sum = 0;
  bool saw_double = false;
  bool has_minmax = false;
  Value min;
  Value max;
  std::unordered_set<Value, relational::ValueHash> distinct;
};

/// Per-row / per-group expression evaluation context.
struct EvalContext {
  const JoinedRow* row = nullptr;                ///< null only for empty global group
  const std::vector<Value>* agg_values = nullptr;  ///< set in group context
};

/// Executor batch size between cancel checkpoints: big enough that an
/// unarmed token costs one branch per ~4k rows, small enough that a cancel
/// lands within tens of milliseconds of work.
constexpr size_t kCancelBatch = 4096;

class ExecutorImpl {
 public:
  ExecutorImpl(const BoundQuery& q, const EncodedProvider& encoded,
               common::CancelToken* cancel)
      : q_(q), provider_(encoded), cancel_(cancel) {}

  Result<Relation> Run(std::string_view result_name) {
    SEMANDAQ_ASSIGN_OR_RETURN(std::vector<JoinedRow> rows, BuildJoin());
    std::vector<Row> produced;      // projected output rows
    std::vector<Row> sort_keys;     // parallel, only when ORDER BY present
    if (q_.is_aggregate) {
      SEMANDAQ_RETURN_IF_ERROR(RunAggregate(rows, &produced, &sort_keys));
    } else {
      SEMANDAQ_RETURN_IF_ERROR(RunProjection(rows, &produced, &sort_keys));
    }
    if (q_.stmt.distinct) Deduplicate(&produced, &sort_keys);
    SortRows(&produced, &sort_keys);
    if (q_.stmt.limit.has_value() &&
        produced.size() > static_cast<size_t>(*q_.stmt.limit)) {
      produced.resize(static_cast<size_t>(std::max<int64_t>(0, *q_.stmt.limit)));
    }
    return Materialize(std::move(produced), result_name);
  }

 private:
  /// One cancel checkpoint per kCancelBatch calls; the hot loops below
  /// thread every processed row through here.
  Status MaybeCheckCancel() {
    if (cancel_ == nullptr) return Status::OK();
    if (++rows_since_check_ < kCancelBatch) return Status::OK();
    rows_since_check_ = 0;
    return cancel_->Check();
  }

  // -- Expression evaluation -----------------------------------------------

  Result<Value> Eval(const Expr& e, const EvalContext& ctx) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return e.literal;
      case ExprKind::kColumnRef: {
        if (ctx.row == nullptr || ctx.row->rows[e.bound_table] == nullptr) {
          return Value::Null();  // empty global aggregate group
        }
        if (e.bound_col == Expr::kTidColumn) {
          return Value::Int(ctx.row->tids[e.bound_table]);
        }
        return (*ctx.row->rows[e.bound_table])[static_cast<size_t>(e.bound_col)];
      }
      case ExprKind::kUnary: {
        SEMANDAQ_ASSIGN_OR_RETURN(Value v, Eval(*e.left, ctx));
        if (e.unary_op == UnaryOp::kNegate) {
          if (v.is_null()) return Value::Null();
          if (v.type() == DataType::kInt) return Value::Int(-v.AsInt());
          double num = 0;
          if (v.ToNumeric(&num)) return Value::Double(-num);
          return Status::InvalidArgument("cannot negate " + v.ToDisplayString());
        }
        Status st;
        TriBool b = ValueToTri(v, &st);
        if (!st.ok()) return st;
        switch (b) {
          case TriBool::kTrue:
            return Value::Int(0);
          case TriBool::kFalse:
            return Value::Int(1);
          case TriBool::kUnknown:
            return Value::Null();
        }
        return Value::Null();
      }
      case ExprKind::kBinary:
        return EvalBinary(e, ctx);
      case ExprKind::kFuncCall: {
        if (ctx.agg_values == nullptr || e.agg_index < 0) {
          return Status::Internal("aggregate evaluated outside group context: " +
                                  e.ToString());
        }
        return (*ctx.agg_values)[static_cast<size_t>(e.agg_index)];
      }
      case ExprKind::kInList: {
        SEMANDAQ_ASSIGN_OR_RETURN(Value probe, Eval(*e.left, ctx));
        if (probe.is_null()) return Value::Null();
        bool saw_null = false;
        for (const auto& item : e.in_list) {
          SEMANDAQ_ASSIGN_OR_RETURN(Value v, Eval(*item, ctx));
          if (v.is_null()) {
            saw_null = true;
            continue;
          }
          if (EqualForSql(probe, v)) {
            return TriToValue(e.negated ? TriBool::kFalse : TriBool::kTrue);
          }
        }
        if (saw_null) return Value::Null();
        return TriToValue(e.negated ? TriBool::kTrue : TriBool::kFalse);
      }
      case ExprKind::kIsNull: {
        SEMANDAQ_ASSIGN_OR_RETURN(Value v, Eval(*e.left, ctx));
        const bool isnull = v.is_null();
        return Value::Int((isnull != e.negated) ? 1 : 0);
      }
      case ExprKind::kLike: {
        SEMANDAQ_ASSIGN_OR_RETURN(Value text, Eval(*e.left, ctx));
        SEMANDAQ_ASSIGN_OR_RETURN(Value pat, Eval(*e.right, ctx));
        if (text.is_null() || pat.is_null()) return Value::Null();
        if (text.type() != DataType::kString || pat.type() != DataType::kString) {
          return Status::InvalidArgument("LIKE requires string operands");
        }
        const bool m = common::LikeMatch(text.AsString(), pat.AsString());
        return TriToValue((m != e.negated) ? TriBool::kTrue : TriBool::kFalse);
      }
      case ExprKind::kStar:
        return Status::Internal("unexpanded star reached the executor");
    }
    return Status::Internal("unreachable expression kind");
  }

  /// SQL equality for non-null values: numeric cross-type compare, exact
  /// otherwise. (Distinct types like 'a' = 1 simply compare unequal.)
  static bool EqualForSql(const Value& a, const Value& b) {
    double x = 0;
    double y = 0;
    if (a.ToNumeric(&x) && b.ToNumeric(&y)) return x == y;
    if (a.type() != b.type()) return false;
    return a == b;
  }

  Result<Value> EvalBinary(const Expr& e, const EvalContext& ctx) {
    // AND/OR need short-circuit-ish three-valued logic.
    if (e.bin_op == BinOp::kAnd || e.bin_op == BinOp::kOr) {
      SEMANDAQ_ASSIGN_OR_RETURN(Value lv, Eval(*e.left, ctx));
      Status st;
      TriBool l = ValueToTri(lv, &st);
      if (!st.ok()) return st;
      if (e.bin_op == BinOp::kAnd && l == TriBool::kFalse) return Value::Int(0);
      if (e.bin_op == BinOp::kOr && l == TriBool::kTrue) return Value::Int(1);
      SEMANDAQ_ASSIGN_OR_RETURN(Value rv, Eval(*e.right, ctx));
      TriBool r = ValueToTri(rv, &st);
      if (!st.ok()) return st;
      if (e.bin_op == BinOp::kAnd) {
        if (r == TriBool::kFalse) return Value::Int(0);
        if (l == TriBool::kUnknown || r == TriBool::kUnknown) return Value::Null();
        return Value::Int(1);
      }
      if (r == TriBool::kTrue) return Value::Int(1);
      if (l == TriBool::kUnknown || r == TriBool::kUnknown) return Value::Null();
      return Value::Int(0);
    }

    SEMANDAQ_ASSIGN_OR_RETURN(Value l, Eval(*e.left, ctx));
    SEMANDAQ_ASSIGN_OR_RETURN(Value r, Eval(*e.right, ctx));
    switch (e.bin_op) {
      case BinOp::kEq:
      case BinOp::kNe:
      case BinOp::kLt:
      case BinOp::kLe:
      case BinOp::kGt:
      case BinOp::kGe: {
        if (l.is_null() || r.is_null()) return Value::Null();
        const int c = l.Compare(r);
        bool res = false;
        switch (e.bin_op) {
          case BinOp::kEq:
            res = (c == 0);
            break;
          case BinOp::kNe:
            res = (c != 0);
            break;
          case BinOp::kLt:
            res = (c < 0);
            break;
          case BinOp::kLe:
            res = (c <= 0);
            break;
          case BinOp::kGt:
            res = (c > 0);
            break;
          default:
            res = (c >= 0);
            break;
        }
        return Value::Int(res ? 1 : 0);
      }
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul:
      case BinOp::kDiv: {
        if (l.is_null() || r.is_null()) return Value::Null();
        double x = 0;
        double y = 0;
        if (!l.ToNumeric(&x) || !r.ToNumeric(&y)) {
          return Status::InvalidArgument("arithmetic on non-numeric values: " +
                                         e.ToString());
        }
        const bool both_int =
            l.type() == DataType::kInt && r.type() == DataType::kInt;
        switch (e.bin_op) {
          case BinOp::kAdd:
            return both_int ? Value::Int(l.AsInt() + r.AsInt()) : Value::Double(x + y);
          case BinOp::kSub:
            return both_int ? Value::Int(l.AsInt() - r.AsInt()) : Value::Double(x - y);
          case BinOp::kMul:
            return both_int ? Value::Int(l.AsInt() * r.AsInt()) : Value::Double(x * y);
          default:
            if (y == 0) return Value::Null();  // SQL: division by zero -> NULL here
            return Value::Double(x / y);
        }
      }
      default:
        return Status::Internal("unhandled binary operator");
    }
  }

  // -- Join construction ----------------------------------------------------

  /// Splits the WHERE tree into top-level AND conjuncts.
  static void CollectConjuncts(Expr* e, std::vector<Expr*>* out) {
    if (e == nullptr) return;
    if (e->kind == ExprKind::kBinary && e->bin_op == BinOp::kAnd) {
      CollectConjuncts(e->left.get(), out);
      CollectConjuncts(e->right.get(), out);
      return;
    }
    out->push_back(e);
  }

  /// Bitmask of FROM tables referenced by an expression.
  static uint64_t TableMask(const Expr& e) {
    uint64_t mask = 0;
    if (e.kind == ExprKind::kColumnRef && e.bound_table >= 0) {
      mask |= (uint64_t{1} << e.bound_table);
    }
    if (e.left) mask |= TableMask(*e.left);
    if (e.right) mask |= TableMask(*e.right);
    for (const auto& a : e.args) mask |= TableMask(*a);
    for (const auto& a : e.in_list) mask |= TableMask(*a);
    return mask;
  }

  /// The table's warm encoded snapshot, if the provider has one that is in
  /// sync and shape-matching; nullptr disables the code fast paths for it.
  /// Resolved once per table index (validation included) and cached.
  const EncodedRelation* EncodedFor(size_t t) {
    if (!provider_) return nullptr;
    if (enc_.empty()) {
      enc_.assign(q_.tables.size(), nullptr);
      enc_resolved_.assign(q_.tables.size(), false);
    }
    if (!enc_resolved_[t]) {
      enc_resolved_[t] = true;
      const Relation* rel = q_.tables[t];
      const EncodedRelation* e = provider_(rel);
      if (e != nullptr && e->InSync() && e->IdBound() == rel->IdBound() &&
          e->num_columns() == rel->schema().size()) {
        enc_[t] = e;
      }
    }
    return enc_[t];
  }

  /// True when conjunct `e` is `col = 'string literal'` (either side order)
  /// over table t's real columns — the shape that compiles to one
  /// dictionary lookup plus a code-column equality kernel. Restricted to
  /// non-NULL *string* literals: a numeric literal can cross-type equal a
  /// differently-coded cell (Compare treats Int(2) and Double(2.0) as
  /// equal), which code equality cannot express; string-vs-anything-else
  /// never compares equal, so exact code equality is the whole predicate.
  static bool IsCodeEq(const Expr& e, size_t t, const Expr** col,
                       const Expr** lit) {
    if (e.kind != ExprKind::kBinary || e.bin_op != BinOp::kEq) return false;
    const Expr* a = e.left.get();
    const Expr* b = e.right.get();
    if (a->kind == ExprKind::kColumnRef && b->kind == ExprKind::kLiteral) {
      *col = a;
      *lit = b;
    } else if (b->kind == ExprKind::kColumnRef && a->kind == ExprKind::kLiteral) {
      *col = b;
      *lit = a;
    } else {
      return false;
    }
    if ((*col)->bound_table != static_cast<int>(t) || (*col)->bound_col < 0) {
      return false;
    }
    const Value& v = (*lit)->literal;
    return !v.is_null() && v.type() == DataType::kString;
  }

  /// Scans table t into (tid, row) pairs, applying the single-table
  /// conjuncts. With an encoded snapshot, `col = 'lit'` conjuncts become
  /// one MaskLive + FilterEqMulti32 kernel pass over the code columns (a
  /// literal absent from the dictionary yields the empty scan for free);
  /// residual conjuncts evaluate row-at-a-time over the surviving bits.
  /// Emission is ascending-tid either way, so both paths produce the same
  /// scan in the same order.
  Status ScanTable(size_t t, const std::vector<Expr*>& local,
                   std::vector<std::pair<TupleId, const Row*>>* scan) {
    const size_t n = q_.tables.size();
    const Relation* rel = q_.tables[t];
    std::vector<const uint32_t*> cols;
    std::vector<uint32_t> consts;
    std::vector<Expr*> residual;
    const EncodedRelation* enc = EncodedFor(t);
    if (enc != nullptr) {
      for (Expr* c : local) {
        const Expr* col = nullptr;
        const Expr* lit = nullptr;
        if (IsCodeEq(*c, t, &col, &lit)) {
          // kAbsentCode (literal never encoded) matches no cell: the
          // kernel then clears the whole mask, which is the right answer.
          cols.push_back(enc->column(static_cast<size_t>(col->bound_col)).data());
          consts.push_back(
              enc->dictionary(static_cast<size_t>(col->bound_col)).Lookup(lit->literal));
        } else {
          residual.push_back(c);
        }
      }
    } else {
      residual = local;
    }

    Status scan_status;
    auto probe_row = [&](TupleId tid, const Row& row) {
      if (!scan_status.ok()) return;
      scan_status = MaybeCheckCancel();
      if (!scan_status.ok()) return;
      JoinedRow probe;
      probe.rows.assign(n, nullptr);
      probe.tids.assign(n, -1);
      probe.rows[t] = &row;
      probe.tids[t] = tid;
      EvalContext ctx{.row = &probe, .agg_values = nullptr};
      for (Expr* c : residual) {
        auto v = Eval(*c, ctx);
        if (!v.ok()) {
          scan_status = v.status();
          return;
        }
        Status st;
        if (ValueToTri(*v, &st) != TriBool::kTrue) {
          if (!st.ok()) scan_status = st;
          return;
        }
      }
      scan->emplace_back(tid, &row);
    };
    if (!cols.empty()) {
      const size_t bound = static_cast<size_t>(rel->IdBound());
      std::vector<uint64_t> mask(common::simd::MaskWords(bound));
      const common::simd::Kernels& k = common::simd::KernelsFor();
      k.MaskLive(rel->live_data(), nullptr, 0, kNullCode, bound, mask.data());
      k.FilterEqMulti32(cols.data(), consts.data(), cols.size(), bound,
                        mask.data());
      common::simd::ForEachSetBit(mask.data(), mask.size(), [&](size_t i) {
        const TupleId tid = static_cast<TupleId>(i);
        probe_row(tid, rel->row(tid));
      });
    } else {
      rel->ForEach(probe_row);
    }
    return scan_status;
  }

  Result<std::vector<JoinedRow>> BuildJoin() {
    const size_t n = q_.tables.size();
    std::vector<Expr*> conjuncts;
    CollectConjuncts(q_.stmt.where.get(), &conjuncts);
    std::vector<bool> applied(conjuncts.size(), false);

    std::vector<JoinedRow> acc;
    uint64_t joined_mask = 0;

    for (size_t t = 0; t < n; ++t) {
      SEMANDAQ_RETURN_IF_CANCELLED(cancel_);
      const uint64_t t_bit = uint64_t{1} << t;

      // Scan table t, applying single-table conjuncts on the fly.
      std::vector<Expr*> local;
      for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
        if (!applied[ci] && TableMask(*conjuncts[ci]) == t_bit) {
          local.push_back(conjuncts[ci]);
          applied[ci] = true;
        }
      }
      std::vector<std::pair<TupleId, const Row*>> scan;
      SEMANDAQ_RETURN_IF_ERROR(ScanTable(t, local, &scan));

      if (t == 0) {
        acc.reserve(scan.size());
        for (auto& [tid, row] : scan) {
          JoinedRow jr;
          jr.rows.assign(n, nullptr);
          jr.tids.assign(n, -1);
          jr.rows[0] = row;
          jr.tids[0] = tid;
          acc.push_back(std::move(jr));
        }
        joined_mask = t_bit;
      } else {
        // Find usable equi conjuncts: left side in joined prefix, right side
        // exactly table t (or mirrored).
        std::vector<std::pair<Expr*, Expr*>> keys;  // (prefix side, t side)
        for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
          Expr* c = conjuncts[ci];
          if (applied[ci] || c->kind != ExprKind::kBinary || c->bin_op != BinOp::kEq) {
            continue;
          }
          const uint64_t lm = TableMask(*c->left);
          const uint64_t rm = TableMask(*c->right);
          if (lm != 0 && (lm & ~joined_mask) == 0 && rm == t_bit) {
            keys.emplace_back(c->left.get(), c->right.get());
            applied[ci] = true;
          } else if (rm != 0 && (rm & ~joined_mask) == 0 && lm == t_bit) {
            keys.emplace_back(c->right.get(), c->left.get());
            applied[ci] = true;
          }
        }

        std::vector<JoinedRow> next;
        // A key pair comparing one relation's column to itself (the
        // self-join shape of detection queries) shares a dictionary on both
        // sides, so exact-equality hash keys can be uint32 codes instead of
        // hashed Values. The Row-keyed join below already uses exact
        // equality (never numeric coercion), so the code join is not just
        // faster but identical, NULL-skips included.
        bool code_join = !keys.empty();
        for (auto& [pl, pt] : keys) {
          if (pl->kind != ExprKind::kColumnRef || pt->kind != ExprKind::kColumnRef ||
              pl->bound_col < 0 || pt->bound_col < 0 ||
              pl->bound_col != pt->bound_col ||
              q_.tables[static_cast<size_t>(pl->bound_table)] !=
                  q_.tables[static_cast<size_t>(pt->bound_table)] ||
              EncodedFor(static_cast<size_t>(pt->bound_table)) == nullptr) {
            code_join = false;
            break;
          }
        }
        if (code_join) {
          auto code_key = [&](const std::vector<TupleId>& tids,
                              bool probe_side) -> std::optional<std::vector<Code>> {
            std::vector<Code> key;
            key.reserve(keys.size());
            for (auto& [pl, pt] : keys) {
              const Expr* side = probe_side ? pt : pl;
              const size_t st = static_cast<size_t>(side->bound_table);
              const Code c = EncodedFor(st)->code(
                  tids[st], static_cast<size_t>(side->bound_col));
              if (c == kNullCode) return std::nullopt;  // NULL never joins
              key.push_back(c);
            }
            return key;
          };
          std::unordered_map<std::vector<Code>, std::vector<size_t>,
                             relational::CodeVecHash>
              ht;
          std::vector<TupleId> probe_tids(n, -1);
          for (size_t si = 0; si < scan.size(); ++si) {
            probe_tids[t] = scan[si].first;
            if (auto key = code_key(probe_tids, /*probe_side=*/true)) {
              ht[std::move(*key)].push_back(si);
            }
          }
          for (JoinedRow& jr : acc) {
            SEMANDAQ_RETURN_IF_ERROR(MaybeCheckCancel());
            auto key = code_key(jr.tids, /*probe_side=*/false);
            if (!key) continue;
            auto it = ht.find(*key);
            if (it == ht.end()) continue;
            for (size_t si : it->second) {
              JoinedRow ext = jr;
              ext.rows[t] = scan[si].second;
              ext.tids[t] = scan[si].first;
              next.push_back(std::move(ext));
            }
          }
        } else if (!keys.empty()) {
          // Hash the new table side.
          std::unordered_map<Row, std::vector<size_t>, RowHash, RowEq> ht;
          for (size_t si = 0; si < scan.size(); ++si) {
            JoinedRow probe;
            probe.rows.assign(n, nullptr);
            probe.tids.assign(n, -1);
            probe.rows[t] = scan[si].second;
            probe.tids[t] = scan[si].first;
            EvalContext ctx{.row = &probe, .agg_values = nullptr};
            Row key;
            key.reserve(keys.size());
            bool null_key = false;
            for (auto& [pl, pt] : keys) {
              SEMANDAQ_ASSIGN_OR_RETURN(Value v, Eval(*pt, ctx));
              if (v.is_null()) {
                null_key = true;
                break;
              }
              key.push_back(std::move(v));
            }
            if (null_key) continue;  // NULL never joins
            ht[std::move(key)].push_back(si);
          }
          for (JoinedRow& jr : acc) {
            SEMANDAQ_RETURN_IF_ERROR(MaybeCheckCancel());
            EvalContext ctx{.row = &jr, .agg_values = nullptr};
            Row key;
            key.reserve(keys.size());
            bool null_key = false;
            for (auto& [pl, pt] : keys) {
              SEMANDAQ_ASSIGN_OR_RETURN(Value v, Eval(*pl, ctx));
              if (v.is_null()) {
                null_key = true;
                break;
              }
              key.push_back(std::move(v));
            }
            if (null_key) continue;
            auto it = ht.find(key);
            if (it == ht.end()) continue;
            for (size_t si : it->second) {
              JoinedRow ext = jr;
              ext.rows[t] = scan[si].second;
              ext.tids[t] = scan[si].first;
              next.push_back(std::move(ext));
            }
          }
        } else {
          next.reserve(acc.size() * std::max<size_t>(1, scan.size()));
          for (const JoinedRow& jr : acc) {
            SEMANDAQ_RETURN_IF_ERROR(MaybeCheckCancel());
            for (auto& [tid, row] : scan) {
              JoinedRow ext = jr;
              ext.rows[t] = row;
              ext.tids[t] = tid;
              next.push_back(std::move(ext));
            }
          }
        }
        acc = std::move(next);
        joined_mask |= t_bit;
      }

      // Apply any pending conjuncts fully covered by the joined prefix.
      for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
        if (applied[ci]) continue;
        const uint64_t m = TableMask(*conjuncts[ci]);
        if ((m & ~joined_mask) != 0) continue;
        applied[ci] = true;
        std::vector<JoinedRow> kept;
        kept.reserve(acc.size());
        for (JoinedRow& jr : acc) {
          EvalContext ctx{.row = &jr, .agg_values = nullptr};
          SEMANDAQ_ASSIGN_OR_RETURN(Value v, Eval(*conjuncts[ci], ctx));
          Status st;
          if (ValueToTri(v, &st) == TriBool::kTrue) kept.push_back(std::move(jr));
          SEMANDAQ_RETURN_IF_ERROR(st);
        }
        acc = std::move(kept);
      }
    }
    return acc;
  }

  // -- Aggregation and projection -------------------------------------------

  Status AccumulateAgg(const Expr& call, const EvalContext& ctx, AggState* st) {
    if (call.star_arg) {
      ++st->count;
      return Status::OK();
    }
    SEMANDAQ_ASSIGN_OR_RETURN(Value v, Eval(*call.args[0], ctx));
    if (v.is_null()) return Status::OK();  // aggregates skip NULLs
    if (call.distinct) {
      if (!st->distinct.insert(v).second) return Status::OK();
    }
    ++st->count;
    double num = 0;
    if (v.ToNumeric(&num)) {
      st->sum += num;
      if (v.type() == DataType::kDouble) st->saw_double = true;
    } else if (call.func_name == "SUM" || call.func_name == "AVG") {
      return Status::InvalidArgument(call.func_name + " over non-numeric value: " +
                                     v.ToDisplayString());
    }
    if (!st->has_minmax) {
      st->min = v;
      st->max = v;
      st->has_minmax = true;
    } else {
      if (v.Compare(st->min) < 0) st->min = v;
      if (v.Compare(st->max) > 0) st->max = v;
    }
    return Status::OK();
  }

  static Value FinalizeAgg(const Expr& call, const AggState& st) {
    if (call.func_name == "COUNT") return Value::Int(st.count);
    if (st.count == 0) return Value::Null();
    if (call.func_name == "SUM") {
      return st.saw_double ? Value::Double(st.sum)
                           : Value::Int(static_cast<int64_t>(st.sum));
    }
    if (call.func_name == "AVG") {
      return Value::Double(st.sum / static_cast<double>(st.count));
    }
    if (call.func_name == "MIN") return st.min;
    return st.max;  // MAX
  }

  Status RunAggregate(const std::vector<JoinedRow>& rows, std::vector<Row>* produced,
                      std::vector<Row>* sort_keys) {
    // GROUP BY over plain column refs of encoded tables keys the group
    // hash on uint32 codes. Code equality is exact Value equality — the
    // same grouping the Row-keyed path computes (NULLs all carry
    // kNullCode, matching Row keys' exact NULL equality) — without
    // hashing a Value per row per key column.
    bool code_keys = !q_.stmt.group_by.empty();
    for (const auto& g : q_.stmt.group_by) {
      if (g->kind != ExprKind::kColumnRef || g->bound_col < 0 ||
          EncodedFor(static_cast<size_t>(g->bound_table)) == nullptr) {
        code_keys = false;
        break;
      }
    }
    if (code_keys) {
      auto make_key = [&](const JoinedRow& jr, std::vector<Code>* key) -> Status {
        key->reserve(q_.stmt.group_by.size());
        for (const auto& g : q_.stmt.group_by) {
          const size_t gt = static_cast<size_t>(g->bound_table);
          key->push_back(EncodedFor(gt)->code(jr.tids[gt],
                                              static_cast<size_t>(g->bound_col)));
        }
        return Status::OK();
      };
      return RunAggregateKeyed<std::vector<Code>, relational::CodeVecHash,
                               std::equal_to<std::vector<Code>>>(
          rows, make_key, produced, sort_keys);
    }
    auto make_key = [&](const JoinedRow& jr, Row* key) -> Status {
      EvalContext ctx{.row = &jr, .agg_values = nullptr};
      key->reserve(q_.stmt.group_by.size());
      for (const auto& g : q_.stmt.group_by) {
        SEMANDAQ_ASSIGN_OR_RETURN(Value v, Eval(*g, ctx));
        key->push_back(std::move(v));
      }
      return Status::OK();
    };
    return RunAggregateKeyed<Row, RowHash, RowEq>(rows, make_key, produced,
                                                  sort_keys);
  }

  template <typename Key, typename Hash, typename Eq, typename KeyFn>
  Status RunAggregateKeyed(const std::vector<JoinedRow>& rows, const KeyFn& make_key,
                           std::vector<Row>* produced, std::vector<Row>* sort_keys) {
    struct Group {
      std::vector<AggState> states;
      const JoinedRow* representative = nullptr;
    };
    std::unordered_map<Key, Group, Hash, Eq> groups;

    for (const JoinedRow& jr : rows) {
      SEMANDAQ_RETURN_IF_ERROR(MaybeCheckCancel());
      EvalContext ctx{.row = &jr, .agg_values = nullptr};
      Key key;
      SEMANDAQ_RETURN_IF_ERROR(make_key(jr, &key));
      Group& grp = groups[key];
      if (grp.states.empty()) {
        grp.states.resize(q_.aggregates.size());
        grp.representative = &jr;
      }
      for (size_t a = 0; a < q_.aggregates.size(); ++a) {
        SEMANDAQ_RETURN_IF_ERROR(AccumulateAgg(*q_.aggregates[a], ctx, &grp.states[a]));
      }
    }
    // Global aggregate over empty input still yields one group.
    if (groups.empty() && q_.stmt.group_by.empty()) {
      groups[Key{}] = Group{std::vector<AggState>(q_.aggregates.size()), nullptr};
    }

    for (auto& [key, grp] : groups) {
      std::vector<Value> agg_values;
      agg_values.reserve(q_.aggregates.size());
      for (size_t a = 0; a < q_.aggregates.size(); ++a) {
        agg_values.push_back(FinalizeAgg(*q_.aggregates[a], grp.states[a]));
      }
      EvalContext ctx{.row = grp.representative, .agg_values = &agg_values};
      if (q_.stmt.having) {
        SEMANDAQ_ASSIGN_OR_RETURN(Value hv, Eval(*q_.stmt.having, ctx));
        Status st;
        const TriBool keep = ValueToTri(hv, &st);
        SEMANDAQ_RETURN_IF_ERROR(st);
        if (keep != TriBool::kTrue) continue;
      }
      SEMANDAQ_RETURN_IF_ERROR(EmitRow(ctx, produced, sort_keys));
    }
    return Status::OK();
  }

  Status RunProjection(const std::vector<JoinedRow>& rows, std::vector<Row>* produced,
                       std::vector<Row>* sort_keys) {
    for (const JoinedRow& jr : rows) {
      SEMANDAQ_RETURN_IF_ERROR(MaybeCheckCancel());
      EvalContext ctx{.row = &jr, .agg_values = nullptr};
      SEMANDAQ_RETURN_IF_ERROR(EmitRow(ctx, produced, sort_keys));
    }
    return Status::OK();
  }

  Status EmitRow(const EvalContext& ctx, std::vector<Row>* produced,
                 std::vector<Row>* sort_keys) {
    Row out;
    out.reserve(q_.outputs.size());
    for (const auto& oc : q_.outputs) {
      SEMANDAQ_ASSIGN_OR_RETURN(Value v, Eval(*oc.expr, ctx));
      out.push_back(std::move(v));
    }
    if (!q_.stmt.order_by.empty()) {
      Row key;
      key.reserve(q_.stmt.order_by.size());
      for (const auto& oi : q_.stmt.order_by) {
        SEMANDAQ_ASSIGN_OR_RETURN(Value v, Eval(*oi.expr, ctx));
        key.push_back(std::move(v));
      }
      sort_keys->push_back(std::move(key));
    }
    produced->push_back(std::move(out));
    return Status::OK();
  }

  void Deduplicate(std::vector<Row>* produced, std::vector<Row>* sort_keys) {
    std::unordered_set<Row, RowHash, RowEq> seen;
    std::vector<Row> rows_out;
    std::vector<Row> keys_out;
    for (size_t i = 0; i < produced->size(); ++i) {
      if (!seen.insert((*produced)[i]).second) continue;
      rows_out.push_back(std::move((*produced)[i]));
      if (!sort_keys->empty()) keys_out.push_back(std::move((*sort_keys)[i]));
    }
    *produced = std::move(rows_out);
    *sort_keys = std::move(keys_out);
  }

  void SortRows(std::vector<Row>* produced, std::vector<Row>* sort_keys) {
    if (q_.stmt.order_by.empty()) return;
    std::vector<size_t> order(produced->size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const Row& ka = (*sort_keys)[a];
      const Row& kb = (*sort_keys)[b];
      for (size_t k = 0; k < q_.stmt.order_by.size(); ++k) {
        const int c = ka[k].Compare(kb[k]);
        if (c != 0) return q_.stmt.order_by[k].ascending ? c < 0 : c > 0;
      }
      return false;
    });
    std::vector<Row> sorted;
    sorted.reserve(produced->size());
    for (size_t i : order) sorted.push_back(std::move((*produced)[i]));
    *produced = std::move(sorted);
  }

  Result<Relation> Materialize(std::vector<Row> rows, std::string_view name) {
    relational::Schema schema;
    for (size_t c = 0; c < q_.outputs.size(); ++c) {
      DataType t = DataType::kString;
      for (const Row& r : rows) {
        if (!r[c].is_null()) {
          t = r[c].type();
          break;
        }
      }
      SEMANDAQ_RETURN_IF_ERROR(schema.AddAttribute(
          relational::AttributeDef{q_.outputs[c].name, t, {}}));
    }
    Relation rel{std::string(name), std::move(schema)};
    for (Row& r : rows) {
      auto ins = rel.Insert(std::move(r));
      if (!ins.ok()) return ins.status();
    }
    return rel;
  }

  const BoundQuery& q_;
  const EncodedProvider& provider_;
  common::CancelToken* cancel_ = nullptr;
  size_t rows_since_check_ = 0;
  /// Per-FROM-table resolved encoded snapshots (see EncodedFor); lazily
  /// filled, nullptr = fall back to the value paths for that table.
  std::vector<const EncodedRelation*> enc_;
  std::vector<bool> enc_resolved_;
};

}  // namespace

common::Result<relational::Relation> Execute(const BoundQuery& query,
                                             std::string_view result_name,
                                             const EncodedProvider& encoded,
                                             common::CancelToken* cancel) {
  ExecutorImpl impl(query, encoded, cancel);
  return impl.Run(result_name);
}

}  // namespace semandaq::sql
