#ifndef SEMANDAQ_SQL_AST_H_
#define SEMANDAQ_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "relational/value.h"

namespace semandaq::sql {

/// Expression node kinds. A single struct (rather than a class hierarchy)
/// keeps this mini-engine's AST compact; fields are used per-kind as
/// documented below.
enum class ExprKind {
  kLiteral,    ///< `literal`
  kColumnRef,  ///< `qualifier` (may be empty) + `column`
  kUnary,      ///< `unary_op` applied to `left`
  kBinary,     ///< `bin_op` over `left`, `right`
  kFuncCall,   ///< `func_name`(args...), possibly DISTINCT or COUNT(*)
  kInList,     ///< `left` [NOT] IN (in_list...)
  kIsNull,     ///< `left` IS [NOT] NULL
  kLike,       ///< `left` [NOT] LIKE `right`
  kStar,       ///< bare `*` in a select list (optionally qualified)
};

enum class UnaryOp { kNot, kNegate };

enum class BinOp {
  kEq, kNe, kLt, kLe, kGt, kGe,  // comparisons
  kAnd, kOr,                     // logic
  kAdd, kSub, kMul, kDiv,        // arithmetic
};

/// Returns the SQL spelling of a binary operator ("=", "AND", ...).
const char* BinOpToString(BinOp op);

struct Expr;

/// Deep copy of an expression tree (binder bindings included).
std::unique_ptr<Expr> CloneExpr(const Expr& e);

/// A SQL scalar expression.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  relational::Value literal;

  // kColumnRef
  std::string qualifier;  ///< table name or alias; empty if unqualified
  std::string column;

  // Filled by the binder: which FROM entry / column ordinal this reference
  // resolved to. bound_col == kTidColumn refers to the pseudo-column __tid.
  int bound_table = -1;
  int bound_col = -1;
  static constexpr int kTidColumn = -2;

  // kUnary
  UnaryOp unary_op = UnaryOp::kNot;

  // kBinary
  BinOp bin_op = BinOp::kEq;
  std::unique_ptr<Expr> left;
  std::unique_ptr<Expr> right;

  // kFuncCall
  std::string func_name;  ///< upper-cased
  bool distinct = false;
  bool star_arg = false;  ///< COUNT(*)
  std::vector<std::unique_ptr<Expr>> args;
  int agg_index = -1;  ///< filled by the binder for aggregate calls

  // kInList / kIsNull / kLike
  bool negated = false;
  std::vector<std::unique_ptr<Expr>> in_list;

  /// Debug/round-trip rendering (parseable SQL for all kinds).
  std::string ToString() const;

  // -- Factories ------------------------------------------------------------
  static std::unique_ptr<Expr> Literal(relational::Value v);
  static std::unique_ptr<Expr> Column(std::string qualifier, std::string column);
  static std::unique_ptr<Expr> Unary(UnaryOp op, std::unique_ptr<Expr> operand);
  static std::unique_ptr<Expr> Binary(BinOp op, std::unique_ptr<Expr> l,
                                      std::unique_ptr<Expr> r);
  static std::unique_ptr<Expr> Func(std::string name,
                                    std::vector<std::unique_ptr<Expr>> args,
                                    bool distinct);
  static std::unique_ptr<Expr> CountStar();
  static std::unique_ptr<Expr> Star();
};

/// One entry of a SELECT list: an expression with an optional alias, or a
/// (qualified) star.
struct SelectItem {
  std::unique_ptr<Expr> expr;
  std::string alias;  ///< empty means derive a name
};

/// One entry of a FROM list. Joins are expressed as comma-separated tables
/// with join predicates in WHERE (the form the CFD detection queries of
/// Fan et al. use); INNER JOIN ... ON sugar is normalized to this by the
/// parser.
struct TableRef {
  std::string table_name;
  std::string alias;  ///< empty means the table name itself

  const std::string& effective_name() const {
    return alias.empty() ? table_name : alias;
  }
};

struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool ascending = true;
};

/// A parsed SELECT statement.
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::unique_ptr<Expr> where;
  std::vector<std::unique_ptr<Expr>> group_by;
  std::unique_ptr<Expr> having;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;

  /// Round-trip rendering for logs/tests.
  std::string ToString() const;
};

}  // namespace semandaq::sql

#endif  // SEMANDAQ_SQL_AST_H_
