#include "sql/engine.h"

#include "sql/binder.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace semandaq::sql {

common::Result<relational::Relation> Engine::Query(std::string_view sql,
                                                   std::string_view result_name) const {
  SEMANDAQ_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect(sql));
  SEMANDAQ_ASSIGN_OR_RETURN(BoundQuery bound, Bind(std::move(stmt), *db_));
  return Execute(bound, result_name, provider_, cancel_);
}

}  // namespace semandaq::sql
