#include "workload/customer_gen.h"

#include <array>

#include "common/random.h"

namespace semandaq::workload {

using common::Rng;
using common::ZipfGenerator;
using relational::Relation;
using relational::Row;
using relational::Schema;
using relational::TupleId;
using relational::Value;

namespace {

/// One master location: a fully consistent (CNT, CITY, ZIP, STR, CC, AC)
/// combination. The generator samples customers from this pool.
struct Location {
  const char* cnt;
  const char* city;
  std::string zip;
  std::string str;
  const char* cc;
  const char* ac;
};

struct CitySpec {
  const char* cnt;
  const char* cc;
  const char* city;
  const char* ac;
  const char* zip_prefix;
  bool zip_determines_street;  // true in the UK (paper's φ2), false in the US
};

constexpr CitySpec kCities[] = {
    {"UK", "44", "Edinburgh", "131", "EH", true},
    {"UK", "44", "London", "20", "W", true},
    {"UK", "44", "Glasgow", "141", "G", true},
    {"NL", "31", "Amsterdam", "20", "10", true},
    {"NL", "31", "Utrecht", "30", "35", true},
    {"US", "1", "NewYork", "212", "100", false},
    {"US", "1", "Chicago", "312", "606", false},
};

constexpr const char* kStreetNames[] = {
    "MayfieldRd", "PrincesSt", "HighSt",  "KingsRd",   "QueenSt",
    "ParkAve",    "LakeSt",    "MainSt",  "OakAve",    "ElmSt",
};

/// Builds the master location pool: per city a handful of zips; in
/// zip_determines_street cities each zip has exactly one street, elsewhere
/// each zip is shared by several streets.
std::vector<Location> BuildMasterData() {
  std::vector<Location> pool;
  for (const CitySpec& city : kCities) {
    const size_t zips = 6;
    for (size_t z = 0; z < zips; ++z) {
      const std::string zip =
          std::string(city.zip_prefix) + std::to_string(z + 1) + " " +
          std::to_string((z * 7) % 10) + "XY";
      if (city.zip_determines_street) {
        pool.push_back(Location{city.cnt, city.city, zip,
                                kStreetNames[z % std::size(kStreetNames)], city.cc,
                                city.ac});
      } else {
        for (size_t s = 0; s < 3; ++s) {
          pool.push_back(Location{city.cnt, city.city, zip,
                                  kStreetNames[(z + s * 3) % std::size(kStreetNames)],
                                  city.cc, city.ac});
        }
      }
    }
  }
  return pool;
}

/// Introduces a one-character typo (substitution) into a string value.
Value Typo(const Value& v, Rng* rng) {
  if (v.type() != relational::DataType::kString || v.AsString().empty()) {
    return Value::String("X");
  }
  std::string s = v.AsString();
  const size_t pos = rng->NextIndex(s.size());
  char replacement = static_cast<char>('a' + rng->NextBelow(26));
  if (s[pos] == replacement) replacement = 'z';
  s[pos] = replacement;
  return Value::String(std::move(s));
}

}  // namespace

Schema CustomerGenerator::CustomerSchema() {
  return Schema::AllStrings({"NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"});
}

std::string CustomerGenerator::PaperCfds() {
  return R"(# Sigma for the paper's customer relation (Section 3 examples)
# phi1: country + zip determine city (holds globally, like f1)
customer: [CNT, ZIP] -> [CITY]
# phi2: in the UK, zip determines street (conditional - fails in the US)
customer: [CNT=UK, ZIP=_] -> [STR=_]
# phi3/phi4: country code determines country, with known constant bindings
customer: [CC] -> [CNT] { (44 | UK), (31 | NL), (1 | US) }
# country + city determine area code
customer: [CNT, CITY] -> [AC]
)";
}

CustomerWorkload CustomerGenerator::Generate(const CustomerWorkloadOptions& options) {
  Rng rng(options.seed);
  const std::vector<Location> pool = BuildMasterData();
  ZipfGenerator zipf(pool.size(), options.zipf_theta);

  CustomerWorkload out;
  out.clean = Relation{"customer_gold", CustomerSchema()};
  out.dirty = Relation{"customer", CustomerSchema()};

  for (size_t i = 0; i < options.num_tuples; ++i) {
    const Location& loc = pool[zipf.Next(&rng)];
    Row row{Value::String("Cust_" + std::to_string(i)), Value::String(loc.cnt),
            Value::String(loc.city),  Value::String(loc.zip),
            Value::String(loc.str),   Value::String(loc.cc),
            Value::String(loc.ac)};
    out.clean.MustInsert(row);
    out.dirty.MustInsert(std::move(row));
  }

  // Corrupt ~noise_rate of the tuples, one cell each. Errors are either a
  // domain swap (value from another master location: semantically wrong but
  // plausible) or a typo.
  const size_t num_errors =
      static_cast<size_t>(static_cast<double>(options.num_tuples) *
                              options.noise_rate +
                          0.5);
  std::vector<TupleId> tids = out.dirty.LiveIds();
  rng.Shuffle(&tids);
  constexpr std::array<size_t, 6> kCorruptible = {kCnt, kCity, kZip, kStr, kCc, kAc};
  for (size_t e = 0; e < num_errors && e < tids.size(); ++e) {
    const TupleId tid = tids[e];
    const size_t col = kCorruptible[rng.NextIndex(kCorruptible.size())];
    const Value original = out.dirty.cell(tid, col);
    Value corrupted;
    if (rng.NextBool(0.5)) {
      // Domain swap: pick the same attribute from a random other location.
      const Location& other = pool[rng.NextIndex(pool.size())];
      switch (col) {
        case kCnt:
          corrupted = Value::String(other.cnt);
          break;
        case kCity:
          corrupted = Value::String(other.city);
          break;
        case kZip:
          corrupted = Value::String(other.zip);
          break;
        case kStr:
          corrupted = Value::String(other.str);
          break;
        case kCc:
          corrupted = Value::String(other.cc);
          break;
        default:
          corrupted = Value::String(other.ac);
          break;
      }
      if (corrupted == original) corrupted = Typo(original, &rng);
    } else {
      corrupted = Typo(original, &rng);
    }
    (void)out.dirty.SetCell(tid, col, corrupted);
    out.injected.push_back(InjectedError{tid, col, original, corrupted});
  }
  return out;
}

}  // namespace semandaq::workload
