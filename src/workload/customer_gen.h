#ifndef SEMANDAQ_WORKLOAD_CUSTOMER_GEN_H_
#define SEMANDAQ_WORKLOAD_CUSTOMER_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/relation.h"

namespace semandaq::workload {

/// One injected error, kept as the gold standard for repair-quality
/// measurements (precision/recall as in Cong et al. [VLDB'07]).
struct InjectedError {
  relational::TupleId tid = -1;
  size_t col = 0;
  relational::Value clean;
  relational::Value dirty;
};

struct CustomerWorkloadOptions {
  size_t num_tuples = 1000;
  /// Fraction of tuples that receive one corrupted cell.
  double noise_rate = 0.05;
  uint64_t seed = 42;
  /// Skew of master-location popularity (0 = uniform).
  double zipf_theta = 0.6;
};

/// A generated instance of the paper's running example relation
/// customer(NAME, CNT, CITY, ZIP, STR, CC, AC).
struct CustomerWorkload {
  relational::Relation clean;  ///< gold standard ("customer_gold")
  relational::Relation dirty;  ///< with injected noise ("customer")
  std::vector<InjectedError> injected;
};

/// Synthetic generator for the paper's customer relation, built from master
/// data that satisfies the paper's Σ by construction:
///  * CC determines CNT (44=UK, 31=NL, 1=US) — φ3/φ4;
///  * (CNT, ZIP) determines CITY everywhere — φ1;
///  * within the UK, ZIP additionally determines STR — φ2 — while US zips
///    are shared by several streets, so the FD [CNT,ZIP] -> [STR] holds
///    *only conditionally* (the motivating example of the paper);
///  * (CNT, CITY) determines AC.
/// Injected noise corrupts one cell per chosen tuple (domain swap or typo).
class CustomerGenerator {
 public:
  /// The seven-attribute all-string schema of the paper's example.
  static relational::Schema CustomerSchema();

  /// The paper's constraint set (φ1, φ2, φ3 as a tableau of φ4-style
  /// constants, plus the AC rule) in cfd_parser notation.
  static std::string PaperCfds();

  /// Column ordinals, for tests and benches.
  enum Column : size_t { kName = 0, kCnt, kCity, kZip, kStr, kCc, kAc };

  static CustomerWorkload Generate(const CustomerWorkloadOptions& options);
};

}  // namespace semandaq::workload

#endif  // SEMANDAQ_WORKLOAD_CUSTOMER_GEN_H_
