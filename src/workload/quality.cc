#include "workload/quality.h"

#include <cstdio>

namespace semandaq::workload {

using relational::Row;
using relational::TupleId;

RepairQuality EvaluateRepair(const relational::Relation& gold,
                             const relational::Relation& dirty,
                             const relational::Relation& repaired) {
  RepairQuality q;
  size_t correctly_changed = 0;
  gold.ForEach([&](TupleId tid, const Row& grow) {
    if (!dirty.IsLive(tid) || !repaired.IsLive(tid)) return;
    const Row& drow = dirty.row(tid);
    const Row& rrow = repaired.row(tid);
    for (size_t c = 0; c < grow.size(); ++c) {
      const bool was_error = !(drow[c] == grow[c]);
      const bool changed = !(rrow[c] == drow[c]);
      const bool now_correct = rrow[c] == grow[c];
      if (was_error) {
        ++q.error_cells;
        if (now_correct) ++q.corrected;
      } else if (changed) {
        ++q.damaged;
      }
      if (changed) {
        ++q.changed_cells;
        if (now_correct) ++correctly_changed;
      }
      if (!now_correct) ++q.residual_errors;
    }
  });
  q.precision = q.changed_cells == 0
                    ? 1.0
                    : static_cast<double>(correctly_changed) /
                          static_cast<double>(q.changed_cells);
  q.recall = q.error_cells == 0 ? 1.0
                                : static_cast<double>(q.corrected) /
                                      static_cast<double>(q.error_cells);
  q.f1 = (q.precision + q.recall) == 0
             ? 0
             : 2 * q.precision * q.recall / (q.precision + q.recall);
  return q;
}

std::string RepairQuality::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "errors=%zu changed=%zu corrected=%zu damaged=%zu residual=%zu "
                "precision=%.3f recall=%.3f f1=%.3f",
                error_cells, changed_cells, corrected, damaged, residual_errors,
                precision, recall, f1);
  return buf;
}

}  // namespace semandaq::workload
