#ifndef SEMANDAQ_WORKLOAD_QUALITY_H_
#define SEMANDAQ_WORKLOAD_QUALITY_H_

#include <string>

#include "relational/relation.h"

namespace semandaq::workload {

/// Repair quality against a gold standard, the evaluation metric of Cong et
/// al. [VLDB'07]: how much of the injected noise did the cleanser undo, and
/// how much clean data did it damage?
struct RepairQuality {
  size_t error_cells = 0;     ///< cells where dirty != gold
  size_t changed_cells = 0;   ///< cells where repaired != dirty
  size_t corrected = 0;       ///< error cells restored to the gold value
  size_t damaged = 0;         ///< clean cells the cleanser changed
  size_t residual_errors = 0; ///< cells still != gold after repair

  /// changed cells that now match gold / changed cells.
  double precision = 0;
  /// corrected / error cells.
  double recall = 0;
  double f1 = 0;

  std::string ToString() const;
};

/// Cell-level comparison of gold vs. dirty vs. repaired. The three relations
/// must share schema and tuple ids (the generator guarantees this).
RepairQuality EvaluateRepair(const relational::Relation& gold,
                             const relational::Relation& dirty,
                             const relational::Relation& repaired);

}  // namespace semandaq::workload

#endif  // SEMANDAQ_WORKLOAD_QUALITY_H_
