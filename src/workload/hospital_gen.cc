#include "workload/hospital_gen.h"

#include <array>

#include "common/random.h"

namespace semandaq::workload {

using common::Rng;
using relational::Relation;
using relational::Row;
using relational::Schema;
using relational::TupleId;
using relational::Value;

namespace {

struct HospitalCity {
  const char* city;
  const char* state;
  const char* zip_prefix;
  const char* phone_prefix;
};

constexpr HospitalCity kHospitalCities[] = {
    {"Birmingham", "AL", "352", "205"}, {"Mobile", "AL", "366", "251"},
    {"Phoenix", "AZ", "850", "602"},    {"Tucson", "AZ", "857", "520"},
    {"Denver", "CO", "802", "303"},     {"Boulder", "CO", "803", "720"},
};

struct Measure {
  const char* code;
  const char* name;
};

constexpr Measure kMeasures[] = {
    {"PN-1", "Pneumonia oxygenation assessment"},
    {"PN-2", "Pneumonia vaccination"},
    {"AMI-1", "Aspirin at arrival"},
    {"AMI-2", "Aspirin at discharge"},
    {"HF-1", "Discharge instructions"},
    {"SCIP-1", "Prophylactic antibiotic"},
};

}  // namespace

Schema HospitalGenerator::HospitalSchema() {
  return Schema::AllStrings(
      {"PROVIDER", "CITY", "STATE", "ZIP", "PHONE", "MCODE", "MNAME"});
}

std::string HospitalGenerator::HospitalCfds() {
  return R"(# Sigma for the hospital relation
hospital: [ZIP] -> [STATE]
hospital: [ZIP] -> [CITY]
hospital: [MCODE] -> [MNAME]
hospital: [MCODE] -> [MNAME] { (PN-2 | 'Pneumonia vaccination'), (AMI-1 | 'Aspirin at arrival') }
hospital: [STATE, CITY] -> [PHONE]
)";
}

HospitalWorkload HospitalGenerator::Generate(const HospitalWorkloadOptions& options) {
  Rng rng(options.seed);
  HospitalWorkload out;
  out.clean = Relation{"hospital_gold", HospitalSchema()};
  out.dirty = Relation{"hospital", HospitalSchema()};

  for (size_t i = 0; i < options.num_tuples; ++i) {
    const HospitalCity& city = kHospitalCities[rng.NextIndex(std::size(kHospitalCities))];
    const Measure& m = kMeasures[rng.NextIndex(std::size(kMeasures))];
    const std::string zip =
        std::string(city.zip_prefix) + std::to_string(10 + rng.NextBelow(6));
    // The central switchboard number: constant per (STATE, CITY) so the
    // [STATE, CITY] -> [PHONE] dependency holds on clean data.
    const std::string phone = std::string(city.phone_prefix) + "-555-0100";
    Row row{Value::String("Provider_" + std::to_string(i % 97)),
            Value::String(city.city),
            Value::String(city.state),
            Value::String(zip),
            Value::String(phone),
            Value::String(m.code),
            Value::String(m.name)};
    out.clean.MustInsert(row);
    out.dirty.MustInsert(std::move(row));
  }

  const size_t num_errors = static_cast<size_t>(
      static_cast<double>(options.num_tuples) * options.noise_rate + 0.5);
  std::vector<TupleId> tids = out.dirty.LiveIds();
  rng.Shuffle(&tids);
  constexpr std::array<size_t, 5> kCorruptible = {kCity, kState, kZip, kMcode, kMname};
  for (size_t e = 0; e < num_errors && e < tids.size(); ++e) {
    const TupleId tid = tids[e];
    const size_t col = kCorruptible[rng.NextIndex(kCorruptible.size())];
    const Value original = out.dirty.cell(tid, col);
    Value corrupted;
    const HospitalCity& other =
        kHospitalCities[rng.NextIndex(std::size(kHospitalCities))];
    const Measure& other_m = kMeasures[rng.NextIndex(std::size(kMeasures))];
    switch (col) {
      case kCity:
        corrupted = Value::String(other.city);
        break;
      case kState:
        corrupted = Value::String(other.state);
        break;
      case kZip:
        corrupted = Value::String(std::string(other.zip_prefix) +
                                  std::to_string(10 + rng.NextBelow(6)));
        break;
      case kMcode:
        corrupted = Value::String(other_m.code);
        break;
      default:
        corrupted = Value::String(other_m.name);
        break;
    }
    if (corrupted == original) {
      corrupted = Value::String(original.AsString() + "X");
    }
    (void)out.dirty.SetCell(tid, col, corrupted);
    out.injected.push_back(InjectedError{tid, col, original, corrupted});
  }
  return out;
}

}  // namespace semandaq::workload
