#ifndef SEMANDAQ_WORKLOAD_HOSPITAL_GEN_H_
#define SEMANDAQ_WORKLOAD_HOSPITAL_GEN_H_

#include <cstdint>
#include <string>

#include "relational/relation.h"
#include "workload/customer_gen.h"

namespace semandaq::workload {

struct HospitalWorkloadOptions {
  size_t num_tuples = 1000;
  double noise_rate = 0.05;
  uint64_t seed = 4242;
};

/// The second evaluation domain: a simplified HOSPITAL quality-measure feed
/// (the dataset family used throughout the CFD literature), with schema
/// hospital(PROVIDER, CITY, STATE, ZIP, PHONE, MCODE, MNAME).
struct HospitalWorkload {
  relational::Relation clean;  ///< "hospital_gold"
  relational::Relation dirty;  ///< "hospital"
  std::vector<InjectedError> injected;
};

/// Master-data invariants: ZIP determines (CITY, STATE); (STATE, CITY)
/// determines PHONE area prefix; MCODE determines MNAME with well-known
/// constant bindings.
class HospitalGenerator {
 public:
  static relational::Schema HospitalSchema();

  /// Σ_hospital in cfd_parser notation: [ZIP]->[STATE], [ZIP]->[CITY],
  /// [MCODE]->[MNAME] plus a constant tableau binding measure codes to
  /// names, and [STATE,CITY]->[PHONE].
  static std::string HospitalCfds();

  enum Column : size_t { kProvider = 0, kCity, kState, kZip, kPhone, kMcode, kMname };

  static HospitalWorkload Generate(const HospitalWorkloadOptions& options);
};

}  // namespace semandaq::workload

#endif  // SEMANDAQ_WORKLOAD_HOSPITAL_GEN_H_
