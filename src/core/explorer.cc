#include "core/explorer.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace semandaq::core {

using cfd::Cfd;
using cfd::PatternTuple;
using common::Status;
using relational::Row;
using relational::RowEq;
using relational::RowHash;
using relational::TupleId;
using relational::Value;

common::Status DataExplorer::CheckCfdIndex(int cfd_index) const {
  if (cfd_index < 0 || static_cast<size_t>(cfd_index) >= cfds_->size()) {
    return Status::OutOfRange("no CFD with index " + std::to_string(cfd_index));
  }
  if (!(*cfds_)[static_cast<size_t>(cfd_index)].resolved()) {
    return Status::FailedPrecondition("CFD is not resolved against the schema");
  }
  return Status::OK();
}

common::Status DataExplorer::CheckPattern(int cfd_index, int pattern_index) const {
  SEMANDAQ_RETURN_IF_ERROR(CheckCfdIndex(cfd_index));
  const Cfd& c = (*cfds_)[static_cast<size_t>(cfd_index)];
  if (pattern_index < 0 ||
      static_cast<size_t>(pattern_index) >= c.tableau().size()) {
    return Status::OutOfRange("no pattern with index " + std::to_string(pattern_index));
  }
  return Status::OK();
}

common::Result<std::vector<DataExplorer::CfdEntry>> DataExplorer::ListCfds() const {
  std::vector<CfdEntry> out;
  for (size_t ci = 0; ci < cfds_->size(); ++ci) {
    const Cfd& c = (*cfds_)[ci];
    if (!c.resolved()) {
      return Status::FailedPrecondition("CFD is not resolved: " + c.ToString());
    }
    CfdEntry entry;
    entry.cfd_index = static_cast<int>(ci);
    std::string lhs = "[";
    for (size_t i = 0; i < c.lhs_attrs().size(); ++i) {
      if (i > 0) lhs += ", ";
      lhs += c.lhs_attrs()[i];
    }
    entry.display = lhs + "] -> [" + c.rhs_attr() + "]";
    entry.num_patterns = c.tableau().size();
    // Violation mass attributable to this CFD: vio of every tuple whose
    // LHS matches some pattern of it.
    rel_->ForEach([&](TupleId tid, const Row& row) {
      for (const PatternTuple& pt : c.tableau()) {
        bool match = true;
        for (size_t i = 0; i < c.lhs_cols().size(); ++i) {
          if (!pt.lhs[i].Matches(row[c.lhs_cols()[i]])) {
            match = false;
            break;
          }
        }
        if (match) {
          entry.violation_count += table_->vio(tid);
          return;
        }
      }
    });
    out.push_back(std::move(entry));
  }
  return out;
}

common::Result<std::vector<DataExplorer::PatternEntry>> DataExplorer::PatternsOf(
    int cfd_index) const {
  SEMANDAQ_RETURN_IF_ERROR(CheckCfdIndex(cfd_index));
  const Cfd& c = (*cfds_)[static_cast<size_t>(cfd_index)];
  std::vector<PatternEntry> out;
  for (size_t pi = 0; pi < c.tableau().size(); ++pi) {
    const PatternTuple& pt = c.tableau()[pi];
    PatternEntry entry;
    entry.pattern_index = static_cast<int>(pi);
    entry.display = pt.ToString();
    rel_->ForEach([&](TupleId tid, const Row& row) {
      for (size_t i = 0; i < c.lhs_cols().size(); ++i) {
        if (!pt.lhs[i].Matches(row[c.lhs_cols()[i]])) return;
      }
      ++entry.matching_tuples;
      entry.violation_count += table_->vio(tid);
    });
    out.push_back(std::move(entry));
  }
  return out;
}

common::Result<std::vector<DataExplorer::LhsEntry>> DataExplorer::LhsMatches(
    int cfd_index, int pattern_index) const {
  SEMANDAQ_RETURN_IF_ERROR(CheckPattern(cfd_index, pattern_index));
  const Cfd& c = (*cfds_)[static_cast<size_t>(cfd_index)];
  const PatternTuple& pt = c.tableau()[static_cast<size_t>(pattern_index)];

  struct Acc {
    size_t tuples = 0;
    int64_t vio = 0;
    std::unordered_map<Value, size_t, relational::ValueHash> rhs;
  };
  std::unordered_map<Row, Acc, RowHash, RowEq> acc;
  rel_->ForEach([&](TupleId tid, const Row& row) {
    for (size_t i = 0; i < c.lhs_cols().size(); ++i) {
      if (!pt.lhs[i].Matches(row[c.lhs_cols()[i]])) return;
    }
    Row key;
    key.reserve(c.lhs_cols().size());
    for (size_t col : c.lhs_cols()) key.push_back(row[col]);
    Acc& a = acc[std::move(key)];
    ++a.tuples;
    a.vio += table_->vio(tid);
    ++a.rhs[row[c.rhs_col()]];
  });

  std::vector<LhsEntry> out;
  out.reserve(acc.size());
  for (auto& [key, a] : acc) {
    LhsEntry e;
    e.lhs = key;
    e.tuple_count = a.tuples;
    e.distinct_rhs = a.rhs.size();
    e.violation_count = a.vio;
    out.push_back(std::move(e));
  }
  // Dirtiest first, then by key for determinism.
  std::sort(out.begin(), out.end(), [](const LhsEntry& a, const LhsEntry& b) {
    if (a.violation_count != b.violation_count) {
      return a.violation_count > b.violation_count;
    }
    const size_t n = std::min(a.lhs.size(), b.lhs.size());
    for (size_t i = 0; i < n; ++i) {
      const int c = a.lhs[i].Compare(b.lhs[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
  return out;
}

common::Result<std::vector<DataExplorer::RhsEntry>> DataExplorer::RhsValues(
    int cfd_index, int pattern_index, const Row& lhs) const {
  SEMANDAQ_RETURN_IF_ERROR(CheckPattern(cfd_index, pattern_index));
  const Cfd& c = (*cfds_)[static_cast<size_t>(cfd_index)];

  struct Acc {
    size_t tuples = 0;
    int64_t vio = 0;
  };
  std::unordered_map<Value, Acc, relational::ValueHash> acc;
  rel_->ForEach([&](TupleId tid, const Row& row) {
    for (size_t i = 0; i < c.lhs_cols().size(); ++i) {
      if (!(row[c.lhs_cols()[i]] == lhs[i])) return;
    }
    Acc& a = acc[row[c.rhs_col()]];
    ++a.tuples;
    a.vio += table_->vio(tid);
  });

  std::vector<RhsEntry> out;
  out.reserve(acc.size());
  for (auto& [v, a] : acc) {
    out.push_back(RhsEntry{v, a.tuples, a.vio});
  }
  std::sort(out.begin(), out.end(), [](const RhsEntry& a, const RhsEntry& b) {
    if (a.tuple_count != b.tuple_count) return a.tuple_count > b.tuple_count;
    return a.rhs.Compare(b.rhs) < 0;
  });
  return out;
}

common::Result<std::vector<TupleId>> DataExplorer::TuplesFor(
    int cfd_index, int pattern_index, const Row& lhs, const Value& rhs) const {
  SEMANDAQ_RETURN_IF_ERROR(CheckPattern(cfd_index, pattern_index));
  const Cfd& c = (*cfds_)[static_cast<size_t>(cfd_index)];
  std::vector<TupleId> out;
  rel_->ForEach([&](TupleId tid, const Row& row) {
    for (size_t i = 0; i < c.lhs_cols().size(); ++i) {
      if (!(row[c.lhs_cols()[i]] == lhs[i])) return;
    }
    if (!(row[c.rhs_col()] == rhs)) return;
    out.push_back(tid);
  });
  return out;
}

common::Result<std::vector<std::pair<int, int>>> DataExplorer::CfdsForTuple(
    TupleId tid) const {
  if (!rel_->IsLive(tid)) {
    return Status::OutOfRange("no live tuple with id " + std::to_string(tid));
  }
  const Row& row = rel_->row(tid);
  std::vector<std::pair<int, int>> out;
  for (size_t ci = 0; ci < cfds_->size(); ++ci) {
    const Cfd& c = (*cfds_)[ci];
    for (size_t pi = 0; pi < c.tableau().size(); ++pi) {
      const PatternTuple& pt = c.tableau()[pi];
      bool match = true;
      for (size_t i = 0; i < c.lhs_cols().size(); ++i) {
        if (!pt.lhs[i].Matches(row[c.lhs_cols()[i]])) {
          match = false;
          break;
        }
      }
      if (match) out.emplace_back(static_cast<int>(ci), static_cast<int>(pi));
    }
  }
  return out;
}

std::string DataExplorer::RenderDrilldown(int cfd_index, int pattern_index,
                                          const Row& lhs) const {
  std::ostringstream out;
  auto cfds = ListCfds();
  if (!cfds.ok()) return "error: " + cfds.status().ToString();
  out << "-- CFDs --\n";
  for (const auto& e : *cfds) {
    out << (e.cfd_index == cfd_index ? " >" : "  ") << " #" << e.cfd_index << " "
        << e.display << "  patterns=" << e.num_patterns
        << " violations=" << e.violation_count << "\n";
  }

  auto patterns = PatternsOf(cfd_index);
  if (!patterns.ok()) return out.str() + "error: " + patterns.status().ToString();
  out << "-- pattern tuples --\n";
  for (const auto& e : *patterns) {
    out << (e.pattern_index == pattern_index ? " >" : "  ") << " " << e.display
        << "  matching=" << e.matching_tuples << " violations=" << e.violation_count
        << "\n";
  }

  auto matches = LhsMatches(cfd_index, pattern_index);
  if (!matches.ok()) return out.str() + "error: " + matches.status().ToString();
  out << "-- LHS matches --\n";
  for (const auto& e : *matches) {
    out << (RowEq{}(e.lhs, lhs) ? " >" : "  ") << " " << relational::RowToString(e.lhs)
        << "  tuples=" << e.tuple_count << " distinct_rhs=" << e.distinct_rhs
        << " violations=" << e.violation_count << "\n";
  }

  auto rhs = RhsValues(cfd_index, pattern_index, lhs);
  if (!rhs.ok()) return out.str() + "error: " + rhs.status().ToString();
  out << "-- RHS values for " << relational::RowToString(lhs) << " --\n";
  for (const auto& e : *rhs) {
    out << "   " << e.rhs.ToDisplayString() << "  tuples=" << e.tuple_count
        << " violations=" << e.violation_count << "\n";
  }
  return out.str();
}

}  // namespace semandaq::core
