#include "core/command_words.h"

#include "common/string_util.h"

namespace semandaq::core {

using common::Result;
using common::Status;

std::vector<std::string> Words(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ' ' || c == '\t') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

Result<size_t> ParseCount(const std::string& text) {
  int64_t n = 0;
  if (!common::ParseInt64(text, &n) || n < 0) {
    return Status::InvalidArgument("not a count: " + text);
  }
  return static_cast<size_t>(n);
}

common::Status ParseSweepOption(const std::string& arg, size_t* num_threads,
                                common::simd::Level* simd_level,
                                bool* matched) {
  *matched = false;
  const std::string lower = common::ToLower(arg);
  if (common::StartsWith(lower, "threads=")) {
    SEMANDAQ_ASSIGN_OR_RETURN(
        *num_threads, ParseCount(arg.substr(std::string("threads=").size())));
    *matched = true;  // 0 = all hardware threads, 1 = serial
    return Status::OK();
  }
  if (common::StartsWith(lower, "simd=")) {
    const std::string text = arg.substr(std::string("simd=").size());
    if (!common::simd::ParseLevel(text, simd_level)) {
      return Status::InvalidArgument(
          "unknown simd level '" + text + "' (want scalar|sse2|avx2|auto)");
    }
    *matched = true;
    return Status::OK();
  }
  return Status::OK();
}

common::Status ParseSaveOptions(const std::vector<std::string>& args,
                                size_t from, size_t* compact_after,
                                std::optional<storage::SyncPolicy>* sync) {
  for (size_t i = from; i < args.size(); ++i) {
    const std::string lower = common::ToLower(args[i]);
    if (common::StartsWith(lower, "compact=")) {
      SEMANDAQ_ASSIGN_OR_RETURN(
          *compact_after,
          ParseCount(args[i].substr(std::string("compact=").size())));
      continue;
    }
    if (common::StartsWith(lower, "sync=")) {
      SEMANDAQ_ASSIGN_OR_RETURN(
          storage::SyncPolicy policy,
          storage::SyncPolicy::Parse(
              lower.substr(std::string("sync=").size())));
      *sync = policy;
      continue;
    }
    return Status::InvalidArgument(
        "usage: save REL PATH [compact=N] [sync=always|batch(N)|none]");
  }
  return Status::OK();
}

}  // namespace semandaq::core
