#ifndef SEMANDAQ_CORE_SESSION_H_
#define SEMANDAQ_CORE_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/semandaq.h"

namespace semandaq::core {

/// A text-command front end over the Semandaq facade — the library-level
/// analog of the paper's web-based data explorer. Each command returns the
/// text a UI would render, so the CLI example (examples/semandaq_cli.cpp),
/// tests, and scripting all share one surface. New contributors: this is
/// the easiest way to poke at the whole pipeline interactively; see the
/// worked example in the top-level README and the data-flow overview in
/// docs/architecture.md.
///
/// Commands (see Help() for the full syntax):
///   help                          this text
///   ls                            list relations
///   load NAME PATH                import a CSV file as relation NAME
///   save REL PATH [compact=N] [sync=MODE]
///                                 persist REL as a binary columnar snapshot
///                                 (+ WAL sidecar at PATH.wal); compact=N
///                                 arms auto-compaction of the sidecar and
///                                 sync=MODE its durability (always |
///                                 batch(N) | none, docs/robustness.md)
///   open NAME PATH                load a snapshot (+ WAL tail) as NAME;
///                                 detection runs on the loaded columns
///                                 with no re-encode
///   savedb DIR                    persist every relation + catalog manifest
///   opendb DIR                    reopen a savedb directory (warm restart)
///   gen customer|hospital N NOISE generate a synthetic workload
///   show REL [N]                  print up to N tuples
///   cfd DEFINITION                add one CFD (parser notation)
///   cfds                          list registered CFDs
///   validate REL                  satisfiability analysis
///   mine REL [threads=N]          discover CFDs from REL into Sigma;
///                                 threads=N fans the levelwise sweep out
///                                 (0 = all hardware threads) with mined
///                                 output identical to the serial sweep
///   detect REL [sql] [threads=N]  run the error detector; threads=N shards
///                                 the native scan over N worker lanes
///                                 (0 = all hardware threads) with output
///                                 identical to the serial scan
///   map REL [N]                   tuple-level quality map (Fig 3)
///   report REL                    quality report (Fig 4)
///   explore REL CFD# PAT#         drill-down tables (Fig 2)
///   clean REL                     compute a candidate repair (kept pending)
///   diff                          show the pending repair (Fig 5)
///   apply                         write the pending repair back
///   sql QUERY                     run a SELECT through the SQL engine
///
/// Error model: Execute never throws; every failure comes back as the
/// common::Status inside the Result, rendered by the caller.
class Session {
 public:
  Session() = default;

  /// Executes one command line; returns the rendered output or an error.
  common::Result<std::string> Execute(std::string_view command_line);

  /// The command reference text.
  static std::string Help();

  Semandaq& system() { return sys_; }

 private:
  common::Result<std::string> CmdLoad(const std::vector<std::string>& args);
  common::Result<std::string> CmdSave(const std::vector<std::string>& args);
  common::Result<std::string> CmdOpen(const std::vector<std::string>& args);
  common::Result<std::string> CmdSaveDb(const std::vector<std::string>& args);
  common::Result<std::string> CmdOpenDb(const std::vector<std::string>& args);
  common::Result<std::string> CmdGen(const std::vector<std::string>& args);
  common::Result<std::string> CmdShow(const std::vector<std::string>& args);
  common::Result<std::string> CmdCfd(std::string_view rest);
  common::Result<std::string> CmdValidate(const std::vector<std::string>& args);
  common::Result<std::string> CmdMine(const std::vector<std::string>& args);
  common::Result<std::string> CmdDetect(const std::vector<std::string>& args);
  common::Result<std::string> CmdMap(const std::vector<std::string>& args);
  common::Result<std::string> CmdReport(const std::vector<std::string>& args);
  common::Result<std::string> CmdExplore(const std::vector<std::string>& args);
  common::Result<std::string> CmdClean(const std::vector<std::string>& args);
  common::Result<std::string> CmdDiff();
  common::Result<std::string> CmdApply();
  common::Result<std::string> CmdSql(std::string_view query);

  Semandaq sys_;
  /// Pending candidate repair from the last `clean`, awaiting review/apply.
  std::optional<repair::RepairResult> pending_repair_;
  std::string pending_relation_;
};

}  // namespace semandaq::core

#endif  // SEMANDAQ_CORE_SESSION_H_
