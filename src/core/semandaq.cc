#include "core/semandaq.h"

#include "audit/render.h"
#include "common/string_util.h"
#include "detect/native_detector.h"
#include "detect/sql_detector.h"
#include "storage/catalog.h"
#include "storage/wal.h"

namespace semandaq::core {

using common::Status;

common::ThreadPool* Semandaq::PoolFor(size_t num_threads) {
  if (num_threads == 1) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<common::ThreadPool>(common::ResolveThreadCount(0));
    // Discovery can share the facade pool: once it exists, Discover /
    // DiscoverFrom calls with num_threads == 0 fan their levelwise sweep
    // out over it (explicit N >= 2 runs a private N-lane pool instead,
    // and the default of 1 mines serially).
    engine_.set_thread_pool(pool_.get());
  }
  return pool_.get();
}

relational::EncodedRelation* Semandaq::FindWarm(
    const std::string& relation, const relational::Relation* rel) {
  auto it = warm_.find(common::ToLower(relation));
  if (it == warm_.end()) return nullptr;
  if (&it->second->relation() != rel) {
    // The relation was replaced out from under the snapshot (PutRelation /
    // Drop + Add); the entry is garbage, not merely stale.
    warm_.erase(it);
    return nullptr;
  }
  return it->second.get();
}

relational::EncodedRelation* Semandaq::WarmSnapshot(
    const std::string& relation) {
  const relational::Relation* rel = db_.FindRelation(relation);
  if (rel == nullptr) return nullptr;
  return FindWarm(relation, rel);
}

relational::EncodedRelation* Semandaq::WarmOrEncode(const std::string& relation) {
  relational::Relation* rel = db_.FindMutableRelation(relation);
  if (rel == nullptr) return nullptr;
  common::ThreadPool* pool = PoolFor(detector_options_.num_threads);
  relational::EncodedRelation* warm = FindWarm(relation, rel);
  if (warm == nullptr) {
    auto enc = std::make_unique<relational::EncodedRelation>(rel, pool);
    warm = enc.get();
    warm_[common::ToLower(relation)] = std::move(enc);
  } else {
    warm->set_thread_pool(pool);
    warm->Sync();
  }
  return warm;
}

storage::WalAttachment* Semandaq::AttachedWal(const std::string& relation) {
  const relational::Relation* rel = db_.FindRelation(relation);
  if (rel == nullptr) return nullptr;
  auto it = wals_.find(common::ToLower(relation));
  if (it == wals_.end()) return nullptr;
  // A replaced relation never fires the old attachment (copies drop the
  // observer); report it gone rather than returning a zombie.
  if (rel->observer() != it->second.get()) return nullptr;
  return it->second.get();
}

common::Status Semandaq::AttachWal(const std::string& relation,
                                   relational::Relation* rel,
                                   const std::string& path,
                                   uint64_t snapshot_checksum,
                                   storage::SyncPolicy sync) {
  auto att = storage::WalAttachment::Open(storage::WalPathFor(path),
                                          snapshot_checksum, sync);
  if (!att.ok()) {
    // Disarm any previous attachment rather than leaving it in place: the
    // snapshot write just replaced the sidecar it was appending to, so
    // further appends would land in the unlinked old file and vanish —
    // a silent journal gap, the one failure mode the sticky-error
    // discipline exists to prevent. With the observer detached and the
    // entry gone, AttachedWal() truthfully reports "no live journal".
    rel->set_observer(nullptr);
    wals_.erase(common::ToLower(relation));
    return att.status();
  }
  rel->set_observer(att->get());
  wals_[common::ToLower(relation)] = std::move(*att);  // replaces any stale one
  return Status::OK();
}

common::Result<size_t> Semandaq::Discover(const std::string& relation,
                                          discovery::CfdMinerOptions options) {
  // Only num_threads == 0 ("all hardware threads") borrows the shared
  // hardware-width pool; an explicit N >= 2 is left for the miner to
  // honor with a private N-lane pool (mirroring the detect path, where
  // threads=N really runs N shards), and 1 stays serial. Output is
  // identical for every lane count.
  if (options.pool == nullptr && options.num_threads == 0) {
    options.pool = PoolFor(options.num_threads);
  }
  return engine_.DiscoverFrom(relation, options);
}

common::Result<detect::ViolationTable> Semandaq::DetectErrors(
    const std::string& relation, DetectorKind kind,
    std::optional<detect::DetectorOptions> options) {
  SEMANDAQ_ASSIGN_OR_RETURN(const relational::Relation* rel,
                            db_.GetRelation(relation));
  std::vector<cfd::Cfd> cfds = engine_.CfdsFor(relation);
  if (kind == DetectorKind::kNative) {
    const detect::DetectorOptions opts = options.value_or(detector_options_);
    detect::NativeDetector detector(rel, std::move(cfds), opts);
    common::ThreadPool* pool = PoolFor(opts.num_threads);
    detector.set_thread_pool(pool);
    if (relational::EncodedRelation* warm = FindWarm(relation, rel)) {
      warm->set_thread_pool(pool);
      warm->Sync();
      detector.set_encoded(warm);
    }
    return detector.Detect();
  }
  detect::SqlDetector detector(&db_, relation, std::move(cfds));
  return detector.Detect();
}

common::Result<storage::SnapshotStats> Semandaq::SaveRelation(
    const std::string& relation, const std::string& path, size_t compact_after,
    std::optional<storage::SyncPolicy> sync) {
  relational::Relation* rel = db_.FindMutableRelation(relation);
  if (rel == nullptr) return Status::NotFound("no relation named " + relation);
  const storage::SyncPolicy policy = sync.value_or(wal_sync_policy_);
  relational::EncodedRelation* warm = WarmOrEncode(relation);
  SEMANDAQ_ASSIGN_OR_RETURN(storage::SnapshotStats stats,
                            storage::SnapshotWriter::Write(*rel, *warm, path));
  // Arm the live journal: the write left a fresh, empty sidecar stamped
  // with this snapshot; from here on every committed mutation appends to
  // it, keeping the on-disk state one replay away from the live one.
  SEMANDAQ_RETURN_IF_ERROR(
      AttachWal(relation, rel, path, stats.manifest_checksum, policy));
  save_policies_[common::ToLower(relation)] =
      SavePolicy{path, compact_after, policy};
  return stats;
}

common::Result<bool> Semandaq::CompactIfDue(const std::string& relation) {
  auto it = save_policies_.find(common::ToLower(relation));
  if (it == save_policies_.end() || it->second.compact_after == 0) {
    return false;
  }
  storage::WalAttachment* wal = AttachedWal(relation);
  if (wal == nullptr || wal->records_appended() < it->second.compact_after) {
    return false;
  }
  // Re-saving rewrites the snapshot with the journaled mutations folded in
  // and re-arms a fresh, empty sidecar — the attachment's record count
  // restarts at zero, so the policy naturally re-triggers every
  // `compact_after` further mutations.
  const SavePolicy policy = it->second;
  SEMANDAQ_RETURN_IF_ERROR(
      SaveRelation(relation, policy.path, policy.compact_after, policy.sync)
          .status());
  return true;
}

common::Result<Semandaq::SaveDbStats> Semandaq::SaveDatabase(
    const std::string& dir) {
  SEMANDAQ_RETURN_IF_ERROR(storage::EnsureDirectory(dir));
  std::vector<storage::CatalogEntry> entries;
  for (const std::string& key : db_.RelationNames()) {
    const relational::Relation* rel = db_.FindRelation(key);
    storage::CatalogEntry entry;
    entry.name = rel->name();
    entry.file = storage::SanitizeFileStem(rel->name()) + ".sdq";
    // Keep a previously armed compaction threshold and sync policy; the
    // policy's path moves with the database directory.
    size_t compact_after = 0;
    std::optional<storage::SyncPolicy> sync;
    auto pit = save_policies_.find(common::ToLower(entry.name));
    if (pit != save_policies_.end()) {
      compact_after = pit->second.compact_after;
      sync = pit->second.sync;
    }
    SEMANDAQ_ASSIGN_OR_RETURN(
        storage::SnapshotStats stats,
        SaveRelation(entry.name, dir + "/" + entry.file, compact_after, sync));
    entry.snapshot_checksum = stats.manifest_checksum;
    entries.push_back(std::move(entry));
  }
  SEMANDAQ_RETURN_IF_ERROR(storage::WriteCatalog(dir, entries));
  SaveDbStats stats;
  stats.relations = entries.size();
  stats.manifest_path = dir + "/" + storage::kCatalogFileName;
  return stats;
}

common::Result<Semandaq::OpenDbStats> Semandaq::OpenDatabase(
    const std::string& dir, common::CancelToken* cancel) {
  SEMANDAQ_ASSIGN_OR_RETURN(std::vector<storage::CatalogEntry> entries,
                            storage::ReadCatalog(dir));
  for (const storage::CatalogEntry& e : entries) {
    if (db_.HasRelation(e.name)) {
      return Status::AlreadyExists("relation already connected: " + e.name);
    }
  }
  OpenDbStats stats;
  std::vector<std::string> opened;
  for (const storage::CatalogEntry& e : entries) {
    auto one = OpenRelation(e.name, dir + "/" + e.file, cancel);
    if (!one.ok()) {
      for (const std::string& name : opened) (void)db_.DropRelation(name);
      return one.status();
    }
    opened.push_back(e.name);
    stats.live_rows += one->live_rows;
    stats.wal_records += one->wal_records;
  }
  stats.relations = entries.size();
  return stats;
}

common::Result<Semandaq::OpenStats> Semandaq::OpenRelation(
    const std::string& name, const std::string& path,
    common::CancelToken* cancel) {
  if (db_.HasRelation(name)) {
    return Status::AlreadyExists("relation already connected: " + name);
  }
  SEMANDAQ_ASSIGN_OR_RETURN(storage::LoadedSnapshot snap,
                            storage::SnapshotReader::Read(path));
  snap.relation.set_name(name);
  SEMANDAQ_RETURN_IF_ERROR(db_.AddRelation(std::move(snap.relation)));
  relational::Relation* rel = db_.FindMutableRelation(name);
  auto enc = std::make_unique<relational::EncodedRelation>(
      relational::EncodedRelation::FromStorage(rel, std::move(snap.dicts),
                                               std::move(snap.columns)));
  // The WAL tail replays through the relation's ordinary mutators; Sync()
  // then absorbs it along the encoded append path (or a rebuild after an
  // in-place overwrite record). A bad WAL unwinds the registration.
  auto wal = storage::ReplayWal(storage::WalPathFor(path),
                                snap.manifest_checksum, rel, cancel);
  if (!wal.ok()) {
    (void)db_.DropRelation(name);
    return wal.status();
  }
  enc->set_thread_pool(PoolFor(detector_options_.num_threads));
  enc->set_cancel(cancel);
  enc->Sync();
  enc->set_cancel(nullptr);  // the token's life ends with this request
  if (cancel != nullptr && !cancel->Check().ok()) {
    (void)db_.DropRelation(name);
    return cancel->Check();
  }

  // Arm the live journal AFTER the replay above — the replayed records are
  // already in the sidecar; the attachment appends only new mutations.
  const common::Status attached =
      AttachWal(name, rel, path, snap.manifest_checksum, wal_sync_policy_);
  if (!attached.ok()) {
    (void)db_.DropRelation(name);
    return attached;
  }

  OpenStats stats;
  stats.live_rows = rel->size();
  stats.num_columns = static_cast<uint32_t>(rel->schema().size());
  stats.wal_records = *wal;
  warm_[common::ToLower(name)] = std::move(enc);
  return stats;
}

common::Result<audit::AuditOutcome> Semandaq::Audit(const std::string& relation) {
  SEMANDAQ_ASSIGN_OR_RETURN(const relational::Relation* rel,
                            db_.GetRelation(relation));
  SEMANDAQ_ASSIGN_OR_RETURN(detect::ViolationTable table, DetectErrors(relation));
  audit::DataAuditor auditor(rel, engine_.CfdsFor(relation));
  return auditor.Audit(table);
}

common::Result<audit::QualityReport> Semandaq::Report(const std::string& relation) {
  SEMANDAQ_ASSIGN_OR_RETURN(const relational::Relation* rel,
                            db_.GetRelation(relation));
  SEMANDAQ_ASSIGN_OR_RETURN(audit::AuditOutcome outcome, Audit(relation));
  return audit::BuildQualityReport(outcome, rel->schema());
}

common::Result<std::string> Semandaq::QualityMap(const std::string& relation,
                                                 size_t max_rows) {
  SEMANDAQ_ASSIGN_OR_RETURN(const relational::Relation* rel,
                            db_.GetRelation(relation));
  SEMANDAQ_ASSIGN_OR_RETURN(detect::ViolationTable table, DetectErrors(relation));
  return audit::AsciiRender::QualityMap(*rel, table, max_rows);
}

common::Result<repair::RepairResult> Semandaq::Clean(const std::string& relation,
                                                     repair::RepairOptions options,
                                                     repair::CostModelOptions cost) {
  SEMANDAQ_ASSIGN_OR_RETURN(const relational::Relation* rel,
                            db_.GetRelation(relation));
  // Same lane policy as Discover: only num_threads == 0 borrows the shared
  // hardware-width pool; an explicit N >= 2 gets a private N-lane pool from
  // the repair engine itself, and 1 repairs serially. The RepairResult is
  // byte-identical for every lane count.
  if (options.pool == nullptr && options.num_threads == 0) {
    options.pool = PoolFor(options.num_threads);
  }
  repair::CostModel model(rel->schema(), std::move(cost));
  repair::BatchRepair cleaner(rel, engine_.CfdsFor(relation), std::move(model),
                              std::move(options));
  return cleaner.Run();
}

common::Result<std::unique_ptr<repair::RepairReview>> Semandaq::Review(
    const std::string& relation, repair::RepairResult result) {
  SEMANDAQ_ASSIGN_OR_RETURN(const relational::Relation* rel,
                            db_.GetRelation(relation));
  auto review = std::make_unique<repair::RepairReview>(rel, std::move(result),
                                                       engine_.CfdsFor(relation));
  SEMANDAQ_RETURN_IF_ERROR(review->Start());
  return review;
}

common::Status Semandaq::ApplyRepair(const std::string& relation,
                                     const repair::RepairResult& result) {
  relational::Relation* rel = db_.FindMutableRelation(relation);
  if (rel == nullptr) return Status::NotFound("no relation named " + relation);
  for (const repair::CellChange& ch : result.changes) {
    SEMANDAQ_RETURN_IF_ERROR(rel->SetCell(ch.tid, ch.col, ch.repaired));
  }
  return Status::OK();
}

common::Result<std::unique_ptr<monitor::DataMonitor>> Semandaq::StartMonitor(
    const std::string& relation, bool cleansed, repair::RepairOptions options,
    repair::CostModelOptions cost) {
  relational::Relation* rel = db_.FindMutableRelation(relation);
  if (rel == nullptr) return Status::NotFound("no relation named " + relation);
  repair::CostModel model(rel->schema(), std::move(cost));
  auto mon = std::make_unique<monitor::DataMonitor>(
      rel, engine_.CfdsFor(relation), std::move(model), std::move(options));
  SEMANDAQ_RETURN_IF_ERROR(mon->Start());
  if (cleansed) mon->MarkCleansed();
  return mon;
}

common::Result<std::unique_ptr<DataExplorer>> Semandaq::Explore(
    const std::string& relation) {
  SEMANDAQ_ASSIGN_OR_RETURN(const relational::Relation* rel,
                            db_.GetRelation(relation));
  SEMANDAQ_ASSIGN_OR_RETURN(detect::ViolationTable table, DetectErrors(relation));
  explorer_cfds_.push_back(
      std::make_unique<std::vector<cfd::Cfd>>(engine_.CfdsFor(relation)));
  explorer_tables_.push_back(
      std::make_unique<detect::ViolationTable>(std::move(table)));
  return std::make_unique<DataExplorer>(rel, explorer_cfds_.back().get(),
                                        explorer_tables_.back().get());
}

}  // namespace semandaq::core
