#include "core/semandaq.h"

#include "audit/render.h"
#include "detect/native_detector.h"
#include "detect/sql_detector.h"

namespace semandaq::core {

using common::Status;

common::Result<detect::ViolationTable> Semandaq::DetectErrors(
    const std::string& relation, DetectorKind kind,
    std::optional<detect::DetectorOptions> options) {
  SEMANDAQ_ASSIGN_OR_RETURN(const relational::Relation* rel,
                            db_.GetRelation(relation));
  std::vector<cfd::Cfd> cfds = engine_.CfdsFor(relation);
  if (kind == DetectorKind::kNative) {
    detect::NativeDetector detector(rel, std::move(cfds),
                                    options.value_or(detector_options_));
    return detector.Detect();
  }
  detect::SqlDetector detector(&db_, relation, std::move(cfds));
  return detector.Detect();
}

common::Result<audit::AuditOutcome> Semandaq::Audit(const std::string& relation) {
  SEMANDAQ_ASSIGN_OR_RETURN(const relational::Relation* rel,
                            db_.GetRelation(relation));
  SEMANDAQ_ASSIGN_OR_RETURN(detect::ViolationTable table, DetectErrors(relation));
  audit::DataAuditor auditor(rel, engine_.CfdsFor(relation));
  return auditor.Audit(table);
}

common::Result<audit::QualityReport> Semandaq::Report(const std::string& relation) {
  SEMANDAQ_ASSIGN_OR_RETURN(const relational::Relation* rel,
                            db_.GetRelation(relation));
  SEMANDAQ_ASSIGN_OR_RETURN(audit::AuditOutcome outcome, Audit(relation));
  return audit::BuildQualityReport(outcome, rel->schema());
}

common::Result<std::string> Semandaq::QualityMap(const std::string& relation,
                                                 size_t max_rows) {
  SEMANDAQ_ASSIGN_OR_RETURN(const relational::Relation* rel,
                            db_.GetRelation(relation));
  SEMANDAQ_ASSIGN_OR_RETURN(detect::ViolationTable table, DetectErrors(relation));
  return audit::AsciiRender::QualityMap(*rel, table, max_rows);
}

common::Result<repair::RepairResult> Semandaq::Clean(const std::string& relation,
                                                     repair::RepairOptions options,
                                                     repair::CostModelOptions cost) {
  SEMANDAQ_ASSIGN_OR_RETURN(const relational::Relation* rel,
                            db_.GetRelation(relation));
  repair::CostModel model(rel->schema(), std::move(cost));
  repair::BatchRepair cleaner(rel, engine_.CfdsFor(relation), std::move(model),
                              std::move(options));
  return cleaner.Run();
}

common::Result<std::unique_ptr<repair::RepairReview>> Semandaq::Review(
    const std::string& relation, repair::RepairResult result) {
  SEMANDAQ_ASSIGN_OR_RETURN(const relational::Relation* rel,
                            db_.GetRelation(relation));
  auto review = std::make_unique<repair::RepairReview>(rel, std::move(result),
                                                       engine_.CfdsFor(relation));
  SEMANDAQ_RETURN_IF_ERROR(review->Start());
  return review;
}

common::Status Semandaq::ApplyRepair(const std::string& relation,
                                     const repair::RepairResult& result) {
  relational::Relation* rel = db_.FindMutableRelation(relation);
  if (rel == nullptr) return Status::NotFound("no relation named " + relation);
  for (const repair::CellChange& ch : result.changes) {
    SEMANDAQ_RETURN_IF_ERROR(rel->SetCell(ch.tid, ch.col, ch.repaired));
  }
  return Status::OK();
}

common::Result<std::unique_ptr<monitor::DataMonitor>> Semandaq::StartMonitor(
    const std::string& relation, bool cleansed, repair::RepairOptions options,
    repair::CostModelOptions cost) {
  relational::Relation* rel = db_.FindMutableRelation(relation);
  if (rel == nullptr) return Status::NotFound("no relation named " + relation);
  repair::CostModel model(rel->schema(), std::move(cost));
  auto mon = std::make_unique<monitor::DataMonitor>(
      rel, engine_.CfdsFor(relation), std::move(model), std::move(options));
  SEMANDAQ_RETURN_IF_ERROR(mon->Start());
  if (cleansed) mon->MarkCleansed();
  return mon;
}

common::Result<std::unique_ptr<DataExplorer>> Semandaq::Explore(
    const std::string& relation) {
  SEMANDAQ_ASSIGN_OR_RETURN(const relational::Relation* rel,
                            db_.GetRelation(relation));
  SEMANDAQ_ASSIGN_OR_RETURN(detect::ViolationTable table, DetectErrors(relation));
  explorer_cfds_.push_back(
      std::make_unique<std::vector<cfd::Cfd>>(engine_.CfdsFor(relation)));
  explorer_tables_.push_back(
      std::make_unique<detect::ViolationTable>(std::move(table)));
  return std::make_unique<DataExplorer>(rel, explorer_cfds_.back().get(),
                                        explorer_tables_.back().get());
}

}  // namespace semandaq::core
