#include "core/session.h"

#include <sstream>

#include "audit/render.h"
#include "common/string_util.h"
#include "core/command_words.h"
#include "relational/csv_io.h"
#include "sql/engine.h"
#include "workload/customer_gen.h"
#include "workload/hospital_gen.h"

namespace semandaq::core {

using common::Result;
using common::Status;

std::string Session::Help() {
  return
      "commands:\n"
      "  help | ls\n"
      "  load NAME PATH            import CSV as relation NAME\n"
      "  save REL PATH [compact=N] [sync=MODE]\n"
      "                            persist REL as a binary columnar snapshot\n"
      "                            (WAL sidecar at PATH.wal); compact=N folds\n"
      "                            the sidecar back into the snapshot once it\n"
      "                            holds N mutation records; sync=MODE picks\n"
      "                            WAL durability: always (fdatasync every\n"
      "                            record), batch(N), or none\n"
      "  open NAME PATH            load a snapshot (+ WAL tail) as NAME;\n"
      "                            detect/mine need no re-encode afterwards\n"
      "  savedb DIR                persist every relation into DIR plus a\n"
      "                            catalog manifest (whole-database save)\n"
      "  opendb DIR                reopen a savedb directory (snapshots +\n"
      "                            WAL tails; warm restart)\n"
      "  gen customer|hospital N NOISE%   generate a workload (dirty + gold)\n"
      "  show REL [N]              print up to N tuples (default 10)\n"
      "  cfd DEFINITION            e.g. cfd customer: [CC=44] -> [CNT=UK]\n"
      "  cfds                      list registered CFDs\n"
      "  validate REL              satisfiability analysis of Sigma(REL)\n"
      "  mine REL [threads=N] [simd=LEVEL]\n"
      "                            discover CFDs from REL into Sigma\n"
      "                            (threads=N fans the levelwise sweep out,\n"
      "                            0 = all hardware threads; mined output is\n"
      "                            identical for every thread count and tier)\n"
      "  detect REL [sql] [threads=N] [simd=scalar|sse2|avx2]\n"
      "                            run the error detector (native or SQL\n"
      "                            path; threads=N shards the native scan,\n"
      "                            0 = all hardware threads; simd= forces a\n"
      "                            kernel tier, default = best supported)\n"
      "  map REL [N]               tuple-level data quality map\n"
      "  report REL                data quality report\n"
      "  explore REL CFD# PAT#     drill-down tables for a pattern\n"
      "  clean REL [threads=N] [simd=LEVEL]\n"
      "                            compute a candidate repair (pending);\n"
      "                            threads=N fans the per-round candidate\n"
      "                            evaluation and re-detection out, 0 = all\n"
      "                            hardware threads; the repair is identical\n"
      "                            for every thread count and tier\n"
      "  diff                      show the pending repair\n"
      "  apply                     write the pending repair back\n"
      "  sql QUERY                 run a SELECT statement\n";
}

common::Result<std::string> Session::Execute(std::string_view command_line) {
  const std::string_view line = common::Trim(command_line);
  if (line.empty() || line.front() == '#') return std::string();
  const std::vector<std::string> words = Words(line);
  const std::string verb = common::ToLower(words[0]);
  const std::vector<std::string> args(words.begin() + 1, words.end());

  if (verb == "help") return Help();
  if (verb == "ls") {
    std::string out;
    for (const auto& name : sys_.database().RelationNames()) {
      const auto* rel = sys_.database().FindRelation(name);
      out += name + " (" + std::to_string(rel->size()) + " tuples: " +
             rel->schema().ToString() + ")\n";
    }
    return out.empty() ? std::string("(no relations)\n") : out;
  }
  if (verb == "load") return CmdLoad(args);
  if (verb == "save") return CmdSave(args);
  if (verb == "open") return CmdOpen(args);
  if (verb == "savedb") return CmdSaveDb(args);
  if (verb == "opendb") return CmdOpenDb(args);
  if (verb == "gen") return CmdGen(args);
  if (verb == "show") return CmdShow(args);
  if (verb == "cfd") return CmdCfd(line.substr(verb.size()));
  if (verb == "cfds") {
    std::string out;
    for (const auto& c : sys_.constraints().cfds()) out += c.ToString() + "\n";
    return out.empty() ? std::string("(no CFDs)\n") : out;
  }
  if (verb == "validate") return CmdValidate(args);
  if (verb == "mine") return CmdMine(args);
  if (verb == "detect") return CmdDetect(args);
  if (verb == "map") return CmdMap(args);
  if (verb == "report") return CmdReport(args);
  if (verb == "explore") return CmdExplore(args);
  if (verb == "clean") return CmdClean(args);
  if (verb == "diff") return CmdDiff();
  if (verb == "apply") return CmdApply();
  if (verb == "sql") return CmdSql(line.substr(verb.size()));
  return Status::InvalidArgument("unknown command '" + verb + "' (try: help)");
}

common::Result<std::string> Session::CmdLoad(const std::vector<std::string>& args) {
  if (args.size() != 2) return Status::InvalidArgument("usage: load NAME PATH");
  SEMANDAQ_ASSIGN_OR_RETURN(relational::Relation rel,
                            relational::LoadRelationCsv(args[0], args[1]));
  SEMANDAQ_RETURN_IF_ERROR(sys_.Connect(std::move(rel)));
  return "loaded " + args[0] + "\n";
}

common::Result<std::string> Session::CmdSave(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    return Status::InvalidArgument(
        "usage: save REL PATH [compact=N] [sync=always|batch(N)|none]");
  }
  size_t compact_after = 0;
  std::optional<storage::SyncPolicy> sync;
  SEMANDAQ_RETURN_IF_ERROR(ParseSaveOptions(args, 2, &compact_after, &sync));
  SEMANDAQ_ASSIGN_OR_RETURN(
      auto stats, sys_.SaveRelation(args[0], args[1], compact_after, sync));
  std::string out = "saved " + args[0] + " to " + args[1] + " (" +
                    std::to_string(stats.live_rows) + " tuples, " +
                    std::to_string(stats.num_columns) + " columns, " +
                    std::to_string(stats.file_bytes) + " bytes)";
  if (compact_after > 0) {
    out += "; compaction armed at " + std::to_string(compact_after) +
           " WAL record(s)";
  }
  if (sync.has_value()) out += "; wal sync=" + sync->ToString();
  return out + "\n";
}

common::Result<std::string> Session::CmdSaveDb(
    const std::vector<std::string>& args) {
  if (args.size() != 1) return Status::InvalidArgument("usage: savedb DIR");
  SEMANDAQ_ASSIGN_OR_RETURN(auto stats, sys_.SaveDatabase(args[0]));
  return "saved " + std::to_string(stats.relations) + " relation(s) to " +
         args[0] + " (manifest " + stats.manifest_path + ")\n";
}

common::Result<std::string> Session::CmdOpenDb(
    const std::vector<std::string>& args) {
  if (args.size() != 1) return Status::InvalidArgument("usage: opendb DIR");
  SEMANDAQ_ASSIGN_OR_RETURN(auto stats, sys_.OpenDatabase(args[0]));
  return "opened " + std::to_string(stats.relations) + " relation(s) from " +
         args[0] + " (" + std::to_string(stats.live_rows) + " tuples, +" +
         std::to_string(stats.wal_records) + " wal record(s))\n";
}

common::Result<std::string> Session::CmdOpen(const std::vector<std::string>& args) {
  if (args.size() != 2) return Status::InvalidArgument("usage: open NAME PATH");
  SEMANDAQ_ASSIGN_OR_RETURN(auto stats, sys_.OpenRelation(args[0], args[1]));
  return "opened " + args[0] + " from " + args[1] + " (" +
         std::to_string(stats.live_rows) + " tuples, " +
         std::to_string(stats.num_columns) + " columns, +" +
         std::to_string(stats.wal_records) + " wal record(s))\n";
}

common::Result<std::string> Session::CmdGen(const std::vector<std::string>& args) {
  if (args.size() != 3) {
    return Status::InvalidArgument("usage: gen customer|hospital N NOISE%");
  }
  SEMANDAQ_ASSIGN_OR_RETURN(size_t n, ParseCount(args[1]));
  SEMANDAQ_ASSIGN_OR_RETURN(size_t noise_pct, ParseCount(args[2]));
  const double noise = static_cast<double>(noise_pct) / 100.0;
  if (common::EqualsIgnoreCase(args[0], "customer")) {
    workload::CustomerWorkloadOptions opts;
    opts.num_tuples = n;
    opts.noise_rate = noise;
    auto wl = workload::CustomerGenerator::Generate(opts);
    SEMANDAQ_RETURN_IF_ERROR(sys_.Connect(std::move(wl.dirty)));
    SEMANDAQ_RETURN_IF_ERROR(sys_.Connect(std::move(wl.clean)));
    return "generated customer (+ customer_gold), " + std::to_string(n) +
           " tuples at " + args[2] + "% noise\n";
  }
  if (common::EqualsIgnoreCase(args[0], "hospital")) {
    workload::HospitalWorkloadOptions opts;
    opts.num_tuples = n;
    opts.noise_rate = noise;
    auto wl = workload::HospitalGenerator::Generate(opts);
    SEMANDAQ_RETURN_IF_ERROR(sys_.Connect(std::move(wl.dirty)));
    SEMANDAQ_RETURN_IF_ERROR(sys_.Connect(std::move(wl.clean)));
    return "generated hospital (+ hospital_gold), " + std::to_string(n) +
           " tuples at " + args[2] + "% noise\n";
  }
  return Status::InvalidArgument("unknown workload: " + args[0]);
}

common::Result<std::string> Session::CmdShow(const std::vector<std::string>& args) {
  if (args.empty()) return Status::InvalidArgument("usage: show REL [N]");
  SEMANDAQ_ASSIGN_OR_RETURN(const relational::Relation* rel,
                            sys_.database().GetRelation(args[0]));
  size_t n = 10;
  if (args.size() > 1) {
    SEMANDAQ_ASSIGN_OR_RETURN(n, ParseCount(args[1]));
  }
  return rel->ToAsciiTable(n);
}

common::Result<std::string> Session::CmdCfd(std::string_view rest) {
  SEMANDAQ_RETURN_IF_ERROR(sys_.constraints().AddCfdsFromText(common::Trim(rest)));
  return "added; Sigma now has " + std::to_string(sys_.constraints().size()) +
         " CFD(s)\n";
}

common::Result<std::string> Session::CmdValidate(
    const std::vector<std::string>& args) {
  if (args.size() != 1) return Status::InvalidArgument("usage: validate REL");
  SEMANDAQ_ASSIGN_OR_RETURN(auto report, sys_.constraints().Validate(args[0]));
  std::string out = report.satisfiable ? "SATISFIABLE" : "UNSATISFIABLE";
  out += ": " + report.explanation + "\n";
  if (report.satisfiable && !report.witness.empty()) {
    out += "witness:";
    for (size_t i = 0; i < report.witness.size(); ++i) {
      out += " " + report.witness_attrs[i] + "=" +
             report.witness[i].ToDisplayString();
    }
    out += "\n";
  }
  return out;
}

common::Result<std::string> Session::CmdMine(const std::vector<std::string>& args) {
  if (args.empty()) {
    return Status::InvalidArgument("usage: mine REL [threads=N] [simd=LEVEL]");
  }
  discovery::CfdMinerOptions options;
  for (size_t i = 1; i < args.size(); ++i) {
    bool matched = false;
    SEMANDAQ_RETURN_IF_ERROR(ParseSweepOption(
        args[i], &options.num_threads, &options.simd_level, &matched));
    if (!matched) {
      return Status::InvalidArgument(
          "unknown mine option '" + args[i] +
          "' (usage: mine REL [threads=N] [simd=LEVEL])");
    }
  }
  SEMANDAQ_ASSIGN_OR_RETURN(size_t added, sys_.Discover(args[0], options));
  return "mined " + std::to_string(added) + " CFD(s) from " + args[0] +
         "; Sigma now has " + std::to_string(sys_.constraints().size()) +
         " CFD(s)\n";
}

common::Result<std::string> Session::CmdDetect(const std::vector<std::string>& args) {
  if (args.empty()) {
    return Status::InvalidArgument(
        "usage: detect REL [sql] [threads=N] [simd=LEVEL]");
  }
  auto kind = Semandaq::DetectorKind::kNative;
  detect::DetectorOptions options = sys_.detector_options();
  bool native_opts_given = false;
  for (size_t i = 1; i < args.size(); ++i) {
    if (common::EqualsIgnoreCase(args[i], "sql")) {
      kind = Semandaq::DetectorKind::kSql;
      continue;
    }
    bool matched = false;
    SEMANDAQ_RETURN_IF_ERROR(ParseSweepOption(
        args[i], &options.num_threads, &options.simd_level, &matched));
    if (!matched) {
      return Status::InvalidArgument(
          "unknown detect option '" + args[i] +
          "' (usage: detect REL [sql] [threads=N] [simd=LEVEL])");
    }
    native_opts_given = true;
  }
  if (kind == Semandaq::DetectorKind::kSql && native_opts_given) {
    return Status::InvalidArgument(
        "threads=/simd= apply to the native detector only");
  }
  SEMANDAQ_ASSIGN_OR_RETURN(auto table, sys_.DetectErrors(args[0], kind, options));
  return table.Summary() + "\n";
}

common::Result<std::string> Session::CmdMap(const std::vector<std::string>& args) {
  if (args.empty()) return Status::InvalidArgument("usage: map REL [N]");
  size_t n = 20;
  if (args.size() > 1) {
    SEMANDAQ_ASSIGN_OR_RETURN(n, ParseCount(args[1]));
  }
  return sys_.QualityMap(args[0], n);
}

common::Result<std::string> Session::CmdReport(const std::vector<std::string>& args) {
  if (args.size() != 1) return Status::InvalidArgument("usage: report REL");
  SEMANDAQ_ASSIGN_OR_RETURN(auto report, sys_.Report(args[0]));
  return audit::AsciiRender::BarChart(report) + "\n" +
         audit::AsciiRender::PieChart(report) + "\n" +
         audit::AsciiRender::Statistics(report);
}

common::Result<std::string> Session::CmdExplore(const std::vector<std::string>& args) {
  if (args.size() < 3) {
    return Status::InvalidArgument("usage: explore REL CFD# PAT#");
  }
  SEMANDAQ_ASSIGN_OR_RETURN(size_t ci, ParseCount(args[1]));
  SEMANDAQ_ASSIGN_OR_RETURN(size_t pi, ParseCount(args[2]));
  SEMANDAQ_ASSIGN_OR_RETURN(auto explorer, sys_.Explore(args[0]));
  // Pick the dirtiest LHS automatically for the drill-down rendering.
  SEMANDAQ_ASSIGN_OR_RETURN(auto matches,
                            explorer->LhsMatches(static_cast<int>(ci),
                                                 static_cast<int>(pi)));
  if (matches.empty()) return std::string("(no tuples match this pattern)\n");
  return explorer->RenderDrilldown(static_cast<int>(ci), static_cast<int>(pi),
                                   matches.front().lhs);
}

common::Result<std::string> Session::CmdClean(const std::vector<std::string>& args) {
  if (args.empty()) {
    return Status::InvalidArgument("usage: clean REL [threads=N] [simd=LEVEL]");
  }
  repair::RepairOptions options;
  for (size_t i = 1; i < args.size(); ++i) {
    bool matched = false;
    SEMANDAQ_RETURN_IF_ERROR(ParseSweepOption(
        args[i], &options.num_threads, &options.simd_level, &matched));
    if (!matched) {
      return Status::InvalidArgument(
          "unknown clean option '" + args[i] +
          "' (usage: clean REL [threads=N] [simd=LEVEL])");
    }
  }
  SEMANDAQ_ASSIGN_OR_RETURN(auto repair, sys_.Clean(args[0], options));
  std::ostringstream out;
  out << "candidate repair: " << repair.changes.size() << " cell(s), cost "
      << repair.total_cost << ", " << repair.iterations << " round(s), "
      << repair.null_escapes << " NULL escape(s), remaining "
      << repair.remaining_violations << "\nuse 'diff' to review, 'apply' to commit\n";
  pending_repair_ = std::move(repair);
  pending_relation_ = args[0];
  return out.str();
}

common::Result<std::string> Session::CmdDiff() {
  if (!pending_repair_.has_value()) {
    return Status::FailedPrecondition("no pending repair (run 'clean REL' first)");
  }
  SEMANDAQ_ASSIGN_OR_RETURN(const relational::Relation* rel,
                            sys_.database().GetRelation(pending_relation_));
  std::ostringstream out;
  out << "pending repair for '" << pending_relation_ << "':\n";
  for (const auto& ch : pending_repair_->changes) {
    out << "  #" << ch.tid << " " << rel->schema().attr(ch.col).name << ": "
        << ch.original.ToDisplayString() << " -> "
        << ch.repaired.ToDisplayString();
    if (!ch.alternatives.empty()) {
      out << "   (alternatives:";
      for (const auto& [v, cost] : ch.alternatives) {
        out << " " << v.ToDisplayString();
      }
      out << ")";
    }
    out << "\n";
  }
  return out.str();
}

common::Result<std::string> Session::CmdApply() {
  if (!pending_repair_.has_value()) {
    return Status::FailedPrecondition("no pending repair (run 'clean REL' first)");
  }
  SEMANDAQ_RETURN_IF_ERROR(sys_.ApplyRepair(pending_relation_, *pending_repair_));
  const size_t n = pending_repair_->changes.size();
  pending_repair_.reset();
  std::string out =
      "applied " + std::to_string(n) + " change(s) to " + pending_relation_;
  SEMANDAQ_ASSIGN_OR_RETURN(bool compacted, sys_.CompactIfDue(pending_relation_));
  if (compacted) out += " (snapshot compacted)";
  return out + "\n";
}

common::Result<std::string> Session::CmdSql(std::string_view query) {
  sql::Engine engine(&sys_.database());
  // Queries over relations with a warm encoded snapshot (saved/opened ones)
  // get the code-compiled scan/join/group fast paths; the executor
  // re-validates freshness itself, so a stale snapshot just falls back.
  engine.set_encoded_provider(
      [this](const relational::Relation* rel)
          -> const relational::EncodedRelation* {
        return sys_.WarmSnapshot(rel->name());
      });
  SEMANDAQ_ASSIGN_OR_RETURN(relational::Relation result,
                            engine.Query(common::Trim(query)));
  return result.ToAsciiTable(50);
}

}  // namespace semandaq::core
