#ifndef SEMANDAQ_CORE_SEMANDAQ_H_
#define SEMANDAQ_CORE_SEMANDAQ_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "audit/metrics.h"
#include "audit/report.h"
#include "common/cancel.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/constraint_engine.h"
#include "core/explorer.h"
#include "detect/native_detector.h"
#include "detect/violation.h"
#include "monitor/data_monitor.h"
#include "relational/database.h"
#include "relational/encoded_relation.h"
#include "repair/batch_repair.h"
#include "repair/cost_model.h"
#include "repair/repair_review.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace semandaq::core {

/// The system facade, wiring the six components of the paper's architecture
/// (Fig. 1): constraint engine, error detector, data auditor, data cleanser,
/// data monitor, and the (programmatic) data explorer, over the relational
/// substrate standing in for the database servers. The data flow between
/// the components is diagrammed in docs/architecture.md; the text-command
/// wrapper over this facade is core/session.h.
///
/// Typical session, mirroring the demonstration flow of §3:
///
/// \code
///   Semandaq sys;
///   sys.Connect(std::move(customer_relation));
///   sys.constraints().AddCfdsFromText("customer: [CC=44] -> [CNT=UK]");
///   auto sat = sys.constraints().Validate("customer");     // "makes sense"?
///   auto vio = sys.DetectErrors("customer");               // error detector
///   auto report = sys.Report("customer");                  // data auditor
///   auto repair = sys.Clean("customer");                   // data cleanser
///   sys.ApplyRepair("customer", repair.value());
///   auto monitor = sys.StartMonitor("customer");           // data monitor
/// \endcode
class Semandaq {
 public:
  Semandaq() : engine_(&db_) {}

  // Not copyable/movable: components hold pointers into db_.
  Semandaq(const Semandaq&) = delete;
  Semandaq& operator=(const Semandaq&) = delete;

  /// Which detection code path to use.
  enum class DetectorKind {
    kNative,  ///< in-process hash detection
    kSql,     ///< generated Q_C/Q_V SQL through the sql:: engine
  };

  relational::Database& database() { return db_; }
  const relational::Database& database() const { return db_; }
  ConstraintEngine& constraints() { return engine_; }
  const ConstraintEngine& constraints() const { return engine_; }

  /// Registers a relation to clean ("connect the system to a database").
  common::Status Connect(relational::Relation data) {
    return db_.AddRelation(std::move(data));
  }

  /// Persists `relation` as a binary columnar snapshot at `path` (plus a
  /// fresh WAL sidecar at `path + ".wal"`), using — and warming — the
  /// facade's encoded snapshot of the relation, so a save also primes
  /// subsequent detections. See docs/storage.md for the format.
  ///
  /// `compact_after` arms the relation's compaction policy: once more than
  /// that many mutation records have accumulated in the WAL sidecar,
  /// CompactIfDue() folds them into a fresh snapshot at the same path
  /// (0 = disarmed, the default). The policy sticks to the relation name
  /// until the next save of it overwrites it.
  ///
  /// `sync` selects when WAL appends reach stable storage for this
  /// relation's sidecar (storage::SyncPolicy; docs/robustness.md);
  /// std::nullopt inherits the facade-wide default (wal_sync_policy()).
  /// Like the compaction threshold, it sticks to the relation name:
  /// CompactIfDue re-saves keep it.
  common::Result<storage::SnapshotStats> SaveRelation(
      const std::string& relation, const std::string& path,
      size_t compact_after = 0,
      std::optional<storage::SyncPolicy> sync = std::nullopt);

  /// Rewrites `relation`'s snapshot in place (same path, same policy) when
  /// its armed compaction policy is due — the WAL sidecar holds at least
  /// `compact_after` records. Returns whether a compaction ran. A relation
  /// without an armed policy (or without a live WAL attachment) is never
  /// due. Mutating callers (apply paths, the server's write commands) call
  /// this after committing a batch so snapshots stay one short replay away
  /// from the live state instead of accreting unbounded WAL tails.
  common::Result<bool> CompactIfDue(const std::string& relation);

  /// What SaveDatabase reports back.
  struct SaveDbStats {
    size_t relations = 0;
    std::string manifest_path;
  };

  /// Persists every connected relation into `dir` (created if missing):
  /// one snapshot file + WAL sidecar per relation, named by a sanitized
  /// form of the relation name, plus the checksummed catalog manifest
  /// (storage/catalog.h) that OpenDatabase restores from. Per-relation
  /// compaction policies already armed keep their thresholds; the save
  /// path they compact to moves into `dir`.
  common::Result<SaveDbStats> SaveDatabase(const std::string& dir);

  /// What OpenDatabase reports back.
  struct OpenDbStats {
    size_t relations = 0;
    uint64_t live_rows = 0;
    size_t wal_records = 0;  ///< total mutations replayed across relations
  };

  /// Restores a database saved by SaveDatabase: reads the catalog manifest
  /// in `dir` and opens every listed relation (snapshot + WAL replay, warm
  /// encoded snapshots adopted — the server restart path). Fails without
  /// side effects when any listed name is already connected or any file is
  /// corrupt: relations opened earlier in the same call are dropped again.
  /// A tripped `cancel` token (common/cancel.h, checked per replayed WAL
  /// record) unwinds the same way — no relation stays half-open.
  common::Result<OpenDbStats> OpenDatabase(
      const std::string& dir, common::CancelToken* cancel = nullptr);

  /// What OpenRelation reports back.
  struct OpenStats {
    uint64_t live_rows = 0;
    uint32_t num_columns = 0;
    size_t wal_records = 0;  ///< mutations replayed from the WAL sidecar
  };

  /// Loads a snapshot (replaying any WAL tail through the relation and the
  /// encoded append path) and registers it as `name`. The loaded code
  /// columns are adopted as the relation's warm encoded snapshot — the
  /// first DetectErrors after an open pays no re-encode. Fails without
  /// side effects if `name` is taken or the files are corrupt — and
  /// likewise when `cancel` (common/cancel.h) trips mid-replay: the
  /// half-replayed relation is dropped before the status escapes.
  common::Result<OpenStats> OpenRelation(const std::string& name,
                                         const std::string& path,
                                         common::CancelToken* cancel = nullptr);

  /// The warm encoded snapshot DetectErrors uses for `relation`; nullptr
  /// when none exists yet (exposed for tests and benches).
  relational::EncodedRelation* WarmSnapshot(const std::string& relation);

  /// The warm encoded snapshot for `relation`, built (and cached) on the
  /// spot when none exists yet, and Sync'd either way — the server's
  /// publication path uses this so every pinned epoch freezes off one
  /// warm, in-sync encoded form. nullptr when the relation is unknown.
  relational::EncodedRelation* WarmOrEncode(const std::string& relation);

  /// The live WAL attachment journaling `relation`'s mutations into its
  /// snapshot sidecar; nullptr when the relation has no attached snapshot
  /// (never saved/opened, or replaced since). Armed by SaveRelation and
  /// OpenRelation: from then on every mutation that commits through the
  /// relation's mutators — monitor update batches, ApplyRepair, direct
  /// Insert/Delete/SetCell — appends its record immediately, so a later
  /// OpenRelation of the same path replays the relation to its exact
  /// current state. Check status() on it for append failures (sticky).
  storage::WalAttachment* AttachedWal(const std::string& relation);

  /// Facade-wide default WAL durability, used when SaveRelation (and hence
  /// SaveDatabase/OpenRelation/OpenDatabase) gets no explicit policy. The
  /// server and CLI set this once from their --sync flag.
  void set_wal_sync_policy(storage::SyncPolicy policy) {
    wal_sync_policy_ = policy;
  }
  const storage::SyncPolicy& wal_sync_policy() const {
    return wal_sync_policy_;
  }

  /// Discovers CFDs from `relation` (reference data) into the constraint
  /// set, returning how many were added. CfdMinerOptions::num_threads
  /// selects the parallel levelwise sweep: 1 (the default) mines serially,
  /// 0 fans each lattice level's candidates out over the shared
  /// hardware-width facade pool, and N >= 2 runs exactly N lanes (a
  /// private pool inside the miner, mirroring how detect's threads=N runs
  /// N shards) — mined output is byte-identical for every thread count
  /// and SIMD tier (docs/discovery.md). This is what the Session CLI's
  /// `mine REL threads=N` runs.
  common::Result<size_t> Discover(const std::string& relation,
                                  discovery::CfdMinerOptions options = {});

  /// Runs the error detector over one relation with the CFDs registered for
  /// it. `options` only applies to the native detector; in particular
  /// DetectorOptions::num_threads >= 2 (or 0 = all hardware threads) turns
  /// on the sharded parallel scan, whose output is identical to the serial
  /// one (see docs/architecture.md). Omitted, it inherits the facade-wide
  /// default set via set_detector_options.
  common::Result<detect::ViolationTable> DetectErrors(
      const std::string& relation, DetectorKind kind = DetectorKind::kNative,
      std::optional<detect::DetectorOptions> options = std::nullopt);

  /// Facade-wide default detection options, used by DetectErrors and by
  /// every component that detects internally (Audit, Report, QualityMap,
  /// Explore). This is how a deployment opts the whole read path into
  /// sharded detection once instead of plumbing options through each call.
  void set_detector_options(detect::DetectorOptions options) {
    detector_options_ = options;
  }
  const detect::DetectorOptions& detector_options() const {
    return detector_options_;
  }

  /// Error detector + data auditor.
  common::Result<audit::AuditOutcome> Audit(const std::string& relation);

  /// Full data quality report (Fig. 4 content).
  common::Result<audit::QualityReport> Report(const std::string& relation);

  /// The tuple-level data quality map (Fig. 3 content).
  common::Result<std::string> QualityMap(const std::string& relation,
                                         size_t max_rows = 40);

  /// Runs the data cleanser; the database is not modified (review first,
  /// then ApplyRepair). RepairOptions::num_threads selects the parallel
  /// candidate-evaluation and sharded re-detection path: 1 (the default)
  /// repairs serially, 0 borrows the shared hardware-width facade pool,
  /// and N >= 2 runs exactly N private lanes — the RepairResult is
  /// byte-identical for every thread count and SIMD tier (docs/repair.md).
  /// This is what the Session CLI's `clean REL threads=N` runs.
  common::Result<repair::RepairResult> Clean(const std::string& relation,
                                             repair::RepairOptions options = {},
                                             repair::CostModelOptions cost = {});

  /// Builds an interactive review for a Clean() result (Fig. 5 content).
  common::Result<std::unique_ptr<repair::RepairReview>> Review(
      const std::string& relation, repair::RepairResult result);

  /// Writes a candidate repair back into the connected database.
  common::Status ApplyRepair(const std::string& relation,
                             const repair::RepairResult& result);

  /// Arms the data monitor over the live relation. `cleansed` selects the
  /// paper's mode (2), incremental repair, instead of mode (1), incremental
  /// detection.
  common::Result<std::unique_ptr<monitor::DataMonitor>> StartMonitor(
      const std::string& relation, bool cleansed = false,
      repair::RepairOptions options = {}, repair::CostModelOptions cost = {});

  /// Drill-down explorer over the latest detection of `relation`; the
  /// returned explorer borrows the relation, CFD set, and violation table,
  /// which all must stay alive (they live in this object).
  common::Result<std::unique_ptr<DataExplorer>> Explore(const std::string& relation);

 private:
  /// The shared worker pool for sharded scans and parallel encodes, built
  /// once (at hardware width) the first time options ask for parallelism
  /// and reused across Detect/Save/Open calls. nullptr result = stay
  /// serial. The shard plan still decides task counts; the pool is only
  /// the lanes they run on.
  common::ThreadPool* PoolFor(size_t num_threads);

  /// The warm snapshot for `relation` if it still describes `rel` (a
  /// replaced relation drops its stale entry); nullptr otherwise.
  relational::EncodedRelation* FindWarm(const std::string& relation,
                                        const relational::Relation* rel);

  /// Opens the sidecar at WalPathFor(path) and installs it as `rel`'s
  /// mutation observer, replacing any previous attachment for the name.
  common::Status AttachWal(const std::string& relation,
                           relational::Relation* rel, const std::string& path,
                           uint64_t snapshot_checksum,
                           storage::SyncPolicy sync);

  relational::Database db_;
  ConstraintEngine engine_;
  detect::DetectorOptions detector_options_;
  std::unique_ptr<common::ThreadPool> pool_;

  /// Warm encoded snapshots by lowercase relation name, fed by
  /// SaveRelation/OpenRelation and consumed (and Sync'd) by DetectErrors.
  std::unordered_map<std::string, std::unique_ptr<relational::EncodedRelation>>
      warm_;

  /// Snapshot path + compaction threshold + WAL durability armed by the
  /// last SaveRelation of each (lowercase) relation name; consulted by
  /// CompactIfDue (which re-saves under the same policy) and SaveDatabase.
  struct SavePolicy {
    std::string path;
    size_t compact_after = 0;  ///< 0 = never compact automatically
    storage::SyncPolicy sync;
  };
  std::unordered_map<std::string, SavePolicy> save_policies_;

  /// Default for SaveRelation calls without an explicit sync policy.
  storage::SyncPolicy wal_sync_policy_;

  /// Live WAL attachments by lowercase relation name (see AttachedWal).
  /// Declared after db_ so teardown destroys attachments while their
  /// relations still exist; a dropped/replaced relation never fires its
  /// observer again (copies don't inherit it), so a stale entry is inert
  /// until the next save/open of that name overwrites it.
  std::unordered_map<std::string, std::unique_ptr<storage::WalAttachment>>
      wals_;

  // Kept alive for explorers handed out by Explore().
  std::vector<std::unique_ptr<std::vector<cfd::Cfd>>> explorer_cfds_;
  std::vector<std::unique_ptr<detect::ViolationTable>> explorer_tables_;
};

}  // namespace semandaq::core

#endif  // SEMANDAQ_CORE_SEMANDAQ_H_
