#ifndef SEMANDAQ_CORE_COMMAND_WORDS_H_
#define SEMANDAQ_CORE_COMMAND_WORDS_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/simd/simd.h"
#include "common/status.h"
#include "storage/wal.h"

namespace semandaq::core {

/// The lexical layer shared by every text-command surface over the facade:
/// the single-process core::Session and the server's SemandaqService speak
/// the same grammar, so they split lines and parse option words with the
/// same helpers (a `detect REL threads=N` frame sent over the wire means
/// exactly what the same line means at the CLI).

/// Splits a command line on whitespace (no quoting; the `cfd` and `sql`
/// commands take the raw remainder instead).
std::vector<std::string> Words(std::string_view line);

/// Parses a non-negative integer ("not a count" otherwise).
common::Result<size_t> ParseCount(const std::string& text);

/// Parses one `threads=N` / `simd=LEVEL` option word (shared by the mine,
/// detect, and clean commands) into the given slots. *matched reports
/// whether the word was one of the two forms; malformed values are errors.
common::Status ParseSweepOption(const std::string& arg, size_t* num_threads,
                                common::simd::Level* simd_level, bool* matched);

/// Parses the trailing option words of `save REL PATH [compact=N]
/// [sync=MODE]` (in either order) starting at args[from]. `sync` is left
/// untouched when no sync= word appears, so callers can tell "inherit the
/// facade default" apart from an explicit policy.
common::Status ParseSaveOptions(const std::vector<std::string>& args,
                                size_t from, size_t* compact_after,
                                std::optional<storage::SyncPolicy>* sync);

}  // namespace semandaq::core

#endif  // SEMANDAQ_CORE_COMMAND_WORDS_H_
