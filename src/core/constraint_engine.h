#ifndef SEMANDAQ_CORE_CONSTRAINT_ENGINE_H_
#define SEMANDAQ_CORE_CONSTRAINT_ENGINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "cfd/cfd.h"
#include "cfd/satisfiability.h"
#include "common/status.h"
#include "discovery/cfd_miner.h"
#include "relational/database.h"

namespace semandaq::core {

/// The constraint engine, "the core of SEMANDAQ" (paper §2): manages the
/// CFD set, validates that it "makes sense" (satisfiability analysis),
/// discovers constraints from reference data, and persists CFDs relationally
/// through cfd::TableauStore.
class ConstraintEngine {
 public:
  /// The database must outlive the engine. Not owned.
  explicit ConstraintEngine(relational::Database* db) : db_(db) {}

  /// Adds one CFD; it must resolve against its target relation's schema.
  common::Status AddCfd(cfd::Cfd cfd);

  /// Parses and adds CFDs in the textual notation of cfd/cfd_parser.h.
  common::Status AddCfdsFromText(std::string_view text);

  /// Discovers CFDs from a (reference) relation and adds them to the set.
  /// Returns how many were added.
  common::Result<size_t> DiscoverFrom(const std::string& relation,
                                      discovery::CfdMinerOptions options = {});

  /// Runs the consistency analysis over the CFDs targeting `relation` —
  /// "users are informed whether the specified set of CFDs makes sense".
  common::Result<cfd::SatisfiabilityReport> Validate(
      const std::string& relation) const;

  /// All managed CFDs (resolved), in insertion order.
  const std::vector<cfd::Cfd>& cfds() const { return cfds_; }

  /// The subset targeting one relation.
  std::vector<cfd::Cfd> CfdsFor(const std::string& relation) const;

  /// Drops CFDs and tableau rows that are syntactically implied by other
  /// members of the set (see cfd/subsumption.h) — mined sets in particular
  /// carry many redundant rows. Returns how many CFDs were removed.
  size_t PruneRedundant();

  /// Writes the tableaux into the database (relational CFD storage).
  common::Status Persist();

  /// Reloads the CFD set from a previously persisted encoding, replacing
  /// the in-memory set.
  common::Status LoadPersisted();

  void Clear() { cfds_.clear(); }
  size_t size() const { return cfds_.size(); }

 private:
  relational::Database* db_;
  std::vector<cfd::Cfd> cfds_;
};

}  // namespace semandaq::core

#endif  // SEMANDAQ_CORE_CONSTRAINT_ENGINE_H_
