#ifndef SEMANDAQ_CORE_CONSTRAINT_ENGINE_H_
#define SEMANDAQ_CORE_CONSTRAINT_ENGINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "cfd/cfd.h"
#include "cfd/satisfiability.h"
#include "common/status.h"
#include "discovery/cfd_miner.h"
#include "relational/database.h"

namespace semandaq::common {
class ThreadPool;
}  // namespace semandaq::common

namespace semandaq::core {

/// The constraint engine, "the core of SEMANDAQ" (paper §2): manages the
/// CFD set, validates that it "makes sense" (satisfiability analysis),
/// discovers constraints from reference data, and persists CFDs relationally
/// through cfd::TableauStore.
class ConstraintEngine {
 public:
  /// The database must outlive the engine. Not owned.
  explicit ConstraintEngine(relational::Database* db) : db_(db) {}

  /// Adds one CFD; it must resolve against its target relation's schema.
  common::Status AddCfd(cfd::Cfd cfd);

  /// Parses and adds CFDs in the textual notation of cfd/cfd_parser.h.
  common::Status AddCfdsFromText(std::string_view text);

  /// Discovers CFDs from a (reference) relation and adds them to the set.
  /// Returns how many were added. When `options.pool` is unset, the lanes
  /// follow `options.num_threads`: 1 (default) mines serially, 0 inherits
  /// the engine's attached hardware-width pool (set_thread_pool), N >= 2
  /// runs a private N-lane pool inside the miner — and the levelwise
  /// sweep fans out per candidate; mined output is byte-identical either
  /// way (docs/discovery.md).
  common::Result<size_t> DiscoverFrom(const std::string& relation,
                                      discovery::CfdMinerOptions options = {});

  /// Attaches a borrowed hardware-width worker pool for DiscoverFrom's
  /// miners (the Semandaq facade wires its shared pool here once it
  /// exists). Since PR 5 the pool is only used when a DiscoverFrom call
  /// asks for it with options.num_threads == 0 — the default (1) mines
  /// serially, matching the detector's 1=serial convention.
  void set_thread_pool(common::ThreadPool* pool) { pool_ = pool; }

  /// Runs the consistency analysis over the CFDs targeting `relation` —
  /// "users are informed whether the specified set of CFDs makes sense".
  common::Result<cfd::SatisfiabilityReport> Validate(
      const std::string& relation) const;

  /// All managed CFDs (resolved), in insertion order.
  const std::vector<cfd::Cfd>& cfds() const { return cfds_; }

  /// The subset targeting one relation.
  std::vector<cfd::Cfd> CfdsFor(const std::string& relation) const;

  /// Drops CFDs and tableau rows that are syntactically implied by other
  /// members of the set (see cfd/subsumption.h) — mined sets in particular
  /// carry many redundant rows. Returns how many CFDs were removed.
  size_t PruneRedundant();

  /// Writes the tableaux into the database (relational CFD storage).
  common::Status Persist();

  /// Reloads the CFD set from a previously persisted encoding, replacing
  /// the in-memory set.
  common::Status LoadPersisted();

  void Clear() { cfds_.clear(); }
  size_t size() const { return cfds_.size(); }

 private:
  relational::Database* db_;
  std::vector<cfd::Cfd> cfds_;
  common::ThreadPool* pool_ = nullptr;  // borrowed; nullptr = serial mining
};

}  // namespace semandaq::core

#endif  // SEMANDAQ_CORE_CONSTRAINT_ENGINE_H_
