#include "core/constraint_engine.h"

#include "cfd/cfd_parser.h"
#include "cfd/subsumption.h"
#include "cfd/tableau_store.h"
#include "common/string_util.h"

namespace semandaq::core {

using common::Status;

common::Status ConstraintEngine::AddCfd(cfd::Cfd cfd) {
  SEMANDAQ_ASSIGN_OR_RETURN(const relational::Relation* rel,
                            db_->GetRelation(cfd.relation()));
  SEMANDAQ_RETURN_IF_ERROR(cfd.Resolve(rel->schema()));
  cfds_.push_back(std::move(cfd));
  return Status::OK();
}

common::Status ConstraintEngine::AddCfdsFromText(std::string_view text) {
  SEMANDAQ_ASSIGN_OR_RETURN(std::vector<cfd::Cfd> parsed, cfd::ParseCfdSet(text));
  for (cfd::Cfd& c : parsed) {
    SEMANDAQ_RETURN_IF_ERROR(AddCfd(std::move(c)));
  }
  return Status::OK();
}

common::Result<size_t> ConstraintEngine::DiscoverFrom(
    const std::string& relation, discovery::CfdMinerOptions options) {
  SEMANDAQ_ASSIGN_OR_RETURN(const relational::Relation* rel,
                            db_->GetRelation(relation));
  // The engine's attached (hardware-width) pool is only inherited when the
  // options ask for all hardware threads — an explicit num_threads of 1
  // must stay serial, and an explicit N >= 2 gets a private N-lane pool
  // from the miner rather than being rounded up to the shared pool's
  // width. An explicitly attached options.pool always wins.
  if (options.pool == nullptr && options.num_threads == 0) {
    options.pool = pool_;
  }
  discovery::CfdMiner miner(rel, options);
  SEMANDAQ_ASSIGN_OR_RETURN(std::vector<cfd::Cfd> mined, miner.Mine());
  size_t added = 0;
  for (cfd::Cfd& c : mined) {
    SEMANDAQ_RETURN_IF_ERROR(AddCfd(std::move(c)));
    ++added;
  }
  return added;
}

common::Result<cfd::SatisfiabilityReport> ConstraintEngine::Validate(
    const std::string& relation) const {
  SEMANDAQ_ASSIGN_OR_RETURN(const relational::Relation* rel,
                            db_->GetRelation(relation));
  cfd::SatisfiabilityChecker checker(rel->schema());
  return checker.Check(CfdsFor(relation));
}

std::vector<cfd::Cfd> ConstraintEngine::CfdsFor(const std::string& relation) const {
  std::vector<cfd::Cfd> out;
  for (const cfd::Cfd& c : cfds_) {
    if (common::EqualsIgnoreCase(c.relation(), relation)) out.push_back(c);
  }
  return out;
}

size_t ConstraintEngine::PruneRedundant() {
  const size_t before = cfds_.size();
  std::vector<cfd::Cfd> pruned = cfd::RemoveSubsumed(cfds_);
  // RemoveSubsumed rebuilds CFDs without resolution state; re-resolve.
  for (cfd::Cfd& c : pruned) {
    const relational::Relation* rel = db_->FindRelation(c.relation());
    if (rel != nullptr) (void)c.Resolve(rel->schema());
  }
  cfds_ = std::move(pruned);
  return before - cfds_.size();
}

common::Status ConstraintEngine::Persist() {
  return cfd::TableauStore::Store(cfds_, db_);
}

common::Status ConstraintEngine::LoadPersisted() {
  SEMANDAQ_ASSIGN_OR_RETURN(std::vector<cfd::Cfd> loaded,
                            cfd::TableauStore::Load(*db_));
  cfds_.clear();
  for (cfd::Cfd& c : loaded) {
    SEMANDAQ_RETURN_IF_ERROR(AddCfd(std::move(c)));
  }
  return Status::OK();
}

}  // namespace semandaq::core
