#ifndef SEMANDAQ_CORE_EXPLORER_H_
#define SEMANDAQ_CORE_EXPLORER_H_

#include <string>
#include <vector>

#include "cfd/cfd.h"
#include "common/status.h"
#include "detect/violation.h"
#include "relational/relation.h"

namespace semandaq::core {

/// The data explorer's CFD drill-down (paper §3, "Data exploration" and
/// Fig. 2): select an embedded FD, see its pattern tuples, the distinct LHS
/// values matching a pattern, the distinct RHS values for one LHS, and
/// finally the tuples — with violation counts guiding every step.
///
/// The explorer is a pure read API over one relation, a CFD set, and a
/// detection result (the GUI of the paper renders exactly these tables).
class DataExplorer {
 public:
  struct CfdEntry {
    int cfd_index = -1;
    std::string display;        ///< "[CNT, ZIP] -> [STR]"
    size_t num_patterns = 0;
    int64_t violation_count = 0;  ///< sum of vio over tuples this CFD flags
  };

  struct PatternEntry {
    int pattern_index = -1;
    std::string display;  ///< "(UK, _ || _)"
    size_t matching_tuples = 0;
    int64_t violation_count = 0;
  };

  struct LhsEntry {
    relational::Row lhs;
    size_t tuple_count = 0;
    size_t distinct_rhs = 0;
    int64_t violation_count = 0;
  };

  struct RhsEntry {
    relational::Value rhs;
    size_t tuple_count = 0;
    int64_t violation_count = 0;
  };

  /// All inputs must outlive the explorer; `table` must be a detection
  /// result for (rel, cfds) — violation counts are read from it.
  DataExplorer(const relational::Relation* rel, const std::vector<cfd::Cfd>* cfds,
               const detect::ViolationTable* table)
      : rel_(rel), cfds_(cfds), table_(table) {}

  /// Step 1: the CFDs (embedded FDs) to explore.
  common::Result<std::vector<CfdEntry>> ListCfds() const;

  /// Step 2: the pattern tuples of one CFD.
  common::Result<std::vector<PatternEntry>> PatternsOf(int cfd_index) const;

  /// Step 3: distinct LHS projections of tuples matching one pattern.
  common::Result<std::vector<LhsEntry>> LhsMatches(int cfd_index,
                                                   int pattern_index) const;

  /// Step 4: distinct RHS values among tuples with the given LHS.
  common::Result<std::vector<RhsEntry>> RhsValues(int cfd_index, int pattern_index,
                                                  const relational::Row& lhs) const;

  /// Step 5: the tuples behind one (LHS, RHS) choice.
  common::Result<std::vector<relational::TupleId>> TuplesFor(
      int cfd_index, int pattern_index, const relational::Row& lhs,
      const relational::Value& rhs) const;

  /// Reverse exploration (paper §3: "the user selects a tuple ... and is
  /// provided with all CFDs and pattern tuples relevant to that tuple"):
  /// (cfd_index, pattern_index) pairs whose LHS pattern matches the tuple.
  common::Result<std::vector<std::pair<int, int>>> CfdsForTuple(
      relational::TupleId tid) const;

  /// Renders the full Fig. 2 drill-down as four ASCII tables for a given
  /// selection path (used by the fig2 binary and examples).
  std::string RenderDrilldown(int cfd_index, int pattern_index,
                              const relational::Row& lhs) const;

 private:
  common::Status CheckCfdIndex(int cfd_index) const;
  common::Status CheckPattern(int cfd_index, int pattern_index) const;

  const relational::Relation* rel_;
  const std::vector<cfd::Cfd>* cfds_;
  const detect::ViolationTable* table_;
};

}  // namespace semandaq::core

#endif  // SEMANDAQ_CORE_EXPLORER_H_
