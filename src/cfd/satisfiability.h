#ifndef SEMANDAQ_CFD_SATISFIABILITY_H_
#define SEMANDAQ_CFD_SATISFIABILITY_H_

#include <string>
#include <utility>
#include <vector>

#include "cfd/cfd.h"
#include "common/status.h"
#include "relational/schema.h"

namespace semandaq::cfd {

/// Outcome of the consistency (satisfiability) analysis of a CFD set.
struct SatisfiabilityReport {
  bool satisfiable = false;

  /// When satisfiable: a one-tuple witness over `witness_attrs` (parallel
  /// vectors). By Proposition 2.2-style reasoning in Fan et al. [TODS'08],
  /// a CFD set is satisfiable iff some single tuple satisfies it, so the
  /// witness is a complete certificate.
  std::vector<std::string> witness_attrs;
  relational::Row witness;

  /// When unsatisfiable: pairs of CFD indices that are already jointly
  /// unsatisfiable (best-effort explanation; empty if the conflict needs
  /// three or more CFDs).
  std::vector<std::pair<size_t, size_t>> conflicting_pairs;

  /// Human-readable summary for the UI layer.
  std::string explanation;

  /// Number of candidate-assignment nodes the search explored (a work
  /// measure reported by bench_satisfiability).
  size_t nodes_explored = 0;
};

/// Decides whether a set of CFDs over one relation schema "makes sense"
/// (paper §2, Constraint Engine): is there a non-empty instance satisfying
/// all of them?
///
/// Algorithm: reduce to the one-tuple-witness test of [TODS'08] and run a
/// backtracking search over, per attribute, the constants mentioned by the
/// CFD set plus one fresh "other" value — restricted to the declared domain
/// for finite-domain attributes (the case that makes the problem
/// NP-complete). Constraint propagation prunes a prefix assignment as soon
/// as a fully-assigned CFD is violated.
class SatisfiabilityChecker {
 public:
  explicit SatisfiabilityChecker(const relational::Schema& schema)
      : schema_(schema) {}

  /// All CFDs must target the same relation and resolve against the schema.
  /// (Resolve() is invoked on copies; the input is untouched.)
  common::Result<SatisfiabilityReport> Check(const std::vector<Cfd>& cfds) const;

 private:
  const relational::Schema& schema_;
};

}  // namespace semandaq::cfd

#endif  // SEMANDAQ_CFD_SATISFIABILITY_H_
