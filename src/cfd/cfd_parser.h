#ifndef SEMANDAQ_CFD_CFD_PARSER_H_
#define SEMANDAQ_CFD_CFD_PARSER_H_

#include <string_view>
#include <vector>

#include "cfd/cfd.h"
#include "common/status.h"

namespace semandaq::cfd {

/// Parses the textual CFD notation used throughout the paper:
///
///   customer: [CC=44] -> [CNT=UK]                      -- constant CFD
///   customer: [CNT=UK, ZIP=_] -> [STR=_]               -- variable CFD
///   customer: [CNT, ZIP] -> [CITY]                     -- plain FD (all '_')
///   customer: [CC, CNT] -> [CITY] { (44, UK | _), (1, _ | _) }   -- tableau
///
/// Constants may be bare tokens (no commas/brackets) or 'single quoted'
/// strings (with '' escaping); '_' is the wildcard. Constants are kept as
/// strings here and coerced to attribute types by Cfd::Resolve.
common::Result<Cfd> ParseCfd(std::string_view text);

/// Parses a whole document: one CFD per line, '#' comments, blank lines
/// ignored.
common::Result<std::vector<Cfd>> ParseCfdSet(std::string_view text);

}  // namespace semandaq::cfd

#endif  // SEMANDAQ_CFD_CFD_PARSER_H_
