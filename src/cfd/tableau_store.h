#ifndef SEMANDAQ_CFD_TABLEAU_STORE_H_
#define SEMANDAQ_CFD_TABLEAU_STORE_H_

#include <string>
#include <vector>

#include "cfd/cfd.h"
#include "common/status.h"
#include "relational/database.h"

namespace semandaq::cfd {

/// Relational encoding of CFD pattern tableaux (paper §2: "CFDs allow for a
/// relational representation, [so] the constraint engine maximally leverages
/// ... the DBMS in the storage and manipulation of CFDs").
///
/// Encoding: one relation per embedded-FD group, named
/// `__cfd_tableau_<i>`, with one STRING column per LHS attribute, one for
/// the RHS attribute, and `__cfd_id` / `__pattern_id` provenance columns.
/// Wildcards are stored as SQL NULL — exactly the convention the generated
/// detection queries rely on. A catalog relation `__cfd_meta` records
/// (tableau_name, target_relation, lhs_attrs ';'-joined, rhs_attr) so the
/// CFD set can be decoded back.
class TableauStore {
 public:
  static constexpr const char* kMetaRelation = "__cfd_meta";
  static constexpr const char* kTableauPrefix = "__cfd_tableau_";

  /// Encodes `cfds` into `db`, replacing any previous encoding. On success
  /// `tableau_names` (optional) receives the created tableau relation names
  /// in embedded-FD-group order.
  static common::Status Store(const std::vector<Cfd>& cfds, relational::Database* db,
                              std::vector<std::string>* tableau_names = nullptr);

  /// Decodes the CFD set previously written by Store. Each embedded-FD
  /// group comes back as a single CFD whose tableau holds all of the
  /// group's pattern rows (a semantics-preserving normal form).
  static common::Result<std::vector<Cfd>> Load(const relational::Database& db);

  /// Drops all tableau relations and the meta relation from `db`.
  static void Clear(relational::Database* db);
};

}  // namespace semandaq::cfd

#endif  // SEMANDAQ_CFD_TABLEAU_STORE_H_
