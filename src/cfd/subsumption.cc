#include "cfd/subsumption.h"

#include <algorithm>

#include "common/string_util.h"

namespace semandaq::cfd {

namespace {

/// Case-insensitive attribute-name equality.
bool SameAttr(const std::string& a, const std::string& b) {
  return common::EqualsIgnoreCase(a, b);
}

bool SameFd(const Cfd& a, const Cfd& b) {
  if (!common::EqualsIgnoreCase(a.relation(), b.relation())) return false;
  if (!SameAttr(a.rhs_attr(), b.rhs_attr())) return false;
  if (a.lhs_attrs().size() != b.lhs_attrs().size()) return false;
  for (size_t i = 0; i < a.lhs_attrs().size(); ++i) {
    if (!SameAttr(a.lhs_attrs()[i], b.lhs_attrs()[i])) return false;
  }
  return true;
}

/// Is `sub`'s LHS attribute set a subset of `super`'s (names, order-free)?
bool LhsSubset(const Cfd& sub, const Cfd& super) {
  for (const auto& a : sub.lhs_attrs()) {
    bool found = false;
    for (const auto& b : super.lhs_attrs()) {
      if (SameAttr(a, b)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool IsPureFd(const Cfd& c) { return c.IsStandardFd(); }

}  // namespace

bool PatternSubsumes(const PatternTuple& general, const PatternTuple& specific) {
  if (general.lhs.size() != specific.lhs.size()) return false;
  // LHS: general must match everything specific matches.
  for (size_t i = 0; i < general.lhs.size(); ++i) {
    if (general.lhs[i].is_wildcard()) continue;
    if (specific.lhs[i].is_wildcard()) return false;  // specific is broader here
    if (!(general.lhs[i] == specific.lhs[i])) return false;
  }
  // RHS: general's demand must be at least as strong.
  if (general.rhs.is_wildcard()) {
    // Variable semantics implies variable semantics only.
    return specific.rhs.is_wildcard();
  }
  if (specific.rhs.is_wildcard()) {
    // A constant demand does NOT imply the pairwise variable semantics for
    // tuples outside the pattern scope... but within the same LHS scope a
    // forced constant makes all matching tuples agree, which is exactly the
    // variable demand. Since general's scope covers specific's, this holds.
    return true;
  }
  return general.rhs == specific.rhs;
}

bool CfdSubsumes(const Cfd& general, const Cfd& specific) {
  if (!SameFd(general, specific)) return false;
  for (const PatternTuple& sp : specific.tableau()) {
    bool covered = false;
    for (const PatternTuple& gp : general.tableau()) {
      if (PatternSubsumes(gp, sp)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

std::vector<Cfd> RemoveSubsumed(const std::vector<Cfd>& cfds) {
  // Pass 1: drop tableau rows subsumed by another row anywhere in the set
  // (same embedded FD).
  std::vector<Cfd> rows_pruned;
  rows_pruned.reserve(cfds.size());
  for (size_t ci = 0; ci < cfds.size(); ++ci) {
    const Cfd& c = cfds[ci];
    std::vector<PatternTuple> kept;
    for (size_t pi = 0; pi < c.tableau().size(); ++pi) {
      const PatternTuple& row = c.tableau()[pi];
      bool subsumed = false;
      for (size_t cj = 0; cj < cfds.size() && !subsumed; ++cj) {
        if (!SameFd(c, cfds[cj])) continue;
        for (size_t pj = 0; pj < cfds[cj].tableau().size(); ++pj) {
          if (ci == cj && pi == pj) continue;
          const PatternTuple& other = cfds[cj].tableau()[pj];
          if (!PatternSubsumes(other, row)) continue;
          // Symmetric pairs (identical rows) must keep one copy: break the
          // tie by position.
          if (PatternSubsumes(row, other) &&
              (cj > ci || (cj == ci && pj > pi))) {
            continue;
          }
          subsumed = true;
          break;
        }
      }
      if (!subsumed) kept.push_back(row);
    }
    if (!kept.empty()) {
      rows_pruned.emplace_back(c.relation(), c.lhs_attrs(), c.rhs_attr(),
                               std::move(kept));
    }
  }

  // Pass 2: classical augmentation — a pure FD X -> A kills any CFD
  // Y -> A with X ⊆ Y (every pattern of the latter is implied: within any
  // Y-scope, agreeing on Y means agreeing on X, hence on A; and a constant
  // demand on A is NOT implied, so only variable-only CFDs are dropped).
  std::vector<Cfd> out;
  for (size_t i = 0; i < rows_pruned.size(); ++i) {
    const Cfd& c = rows_pruned[i];
    bool redundant = false;
    const bool variable_only =
        std::all_of(c.tableau().begin(), c.tableau().end(),
                    [](const PatternTuple& pt) { return pt.rhs.is_wildcard(); });
    if (variable_only) {
      for (size_t j = 0; j < rows_pruned.size() && !redundant; ++j) {
        if (i == j) continue;
        const Cfd& other = rows_pruned[j];
        if (!IsPureFd(other)) continue;
        if (!common::EqualsIgnoreCase(other.relation(), c.relation())) continue;
        if (!SameAttr(other.rhs_attr(), c.rhs_attr())) continue;
        if (!LhsSubset(other, c)) continue;
        // Avoid dropping both of two identical pure FDs.
        if (IsPureFd(c) && SameFd(c, other) && j > i) continue;
        redundant = true;
      }
    }
    if (!redundant) out.push_back(c);
  }
  return out;
}

}  // namespace semandaq::cfd
