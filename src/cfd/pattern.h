#ifndef SEMANDAQ_CFD_PATTERN_H_
#define SEMANDAQ_CFD_PATTERN_H_

#include <string>

#include "relational/value.h"

namespace semandaq::cfd {

/// One entry of a CFD pattern tuple: either a constant or the wildcard '_'
/// ("don't care" in the paper's notation).
///
/// NULL semantics mirror the SQL-based detection of Fan et al. [TODS'08],
/// where a wildcard is encoded as SQL NULL and matching is the predicate
/// `(t.A = tp.A OR tp.A IS NULL)`:
///   * a wildcard matches every tuple value, NULL included;
///   * a constant matches only an equal, non-NULL tuple value.
class PatternValue {
 public:
  /// Constructs the wildcard.
  PatternValue() : wildcard_(true) {}

  static PatternValue Wildcard() { return PatternValue(); }
  static PatternValue Constant(relational::Value v);

  bool is_wildcard() const { return wildcard_; }
  bool is_constant() const { return !wildcard_; }

  /// The constant; only valid when is_constant().
  const relational::Value& constant() const { return constant_; }

  /// Pattern-match against a tuple value (see class comment for NULLs).
  bool Matches(const relational::Value& v) const;

  /// Two constants are *compatible* when equal; a wildcard is compatible
  /// with anything. Compatibility is the pairwise-consistency primitive of
  /// the satisfiability analysis.
  bool CompatibleWith(const PatternValue& other) const;

  /// "_" for the wildcard, the display form of the constant otherwise.
  std::string ToString() const;

  bool operator==(const PatternValue& other) const {
    if (wildcard_ != other.wildcard_) return false;
    return wildcard_ || constant_ == other.constant_;
  }
  bool operator!=(const PatternValue& other) const { return !(*this == other); }

 private:
  bool wildcard_;
  relational::Value constant_;
};

}  // namespace semandaq::cfd

#endif  // SEMANDAQ_CFD_PATTERN_H_
