#include "cfd/satisfiability.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace semandaq::cfd {

namespace {

using common::Result;
using common::Status;
using relational::DataType;
using relational::Row;
using relational::Value;

/// A fresh value outside the given set of used constants, representing the
/// infinitely many domain values no pattern mentions.
Value MakeFreshValue(DataType type, const std::vector<Value>& used) {
  switch (type) {
    case DataType::kInt: {
      int64_t max = 0;
      for (const Value& v : used) {
        if (v.type() == DataType::kInt) max = std::max(max, v.AsInt());
      }
      return Value::Int(max + 1);
    }
    case DataType::kDouble: {
      double max = 0;
      for (const Value& v : used) {
        if (v.type() == DataType::kDouble) max = std::max(max, v.AsDouble());
      }
      return Value::Double(max + 1.0);
    }
    default: {
      std::string fresh = "__other__";
      auto clashes = [&](const std::string& s) {
        for (const Value& v : used) {
          if (v.type() == DataType::kString && v.AsString() == s) return true;
        }
        return false;
      };
      while (clashes(fresh)) fresh += "_";
      return Value::String(fresh);
    }
  }
}

/// The single-tuple satisfiability engine: assigns values attribute by
/// attribute, failing fast when a fully-assigned CFD is violated.
class WitnessSearch {
 public:
  WitnessSearch(const std::vector<Cfd>& cfds, const relational::Schema& schema,
                const std::vector<size_t>& attrs)
      : cfds_(cfds), schema_(schema), attrs_(attrs) {
    // Candidate values per search position.
    candidates_.resize(attrs_.size());
    col_to_pos_.assign(schema.size(), -1);
    for (size_t p = 0; p < attrs_.size(); ++p) {
      col_to_pos_[attrs_[p]] = static_cast<int>(p);
      std::vector<Value> constants;
      auto add_constant = [&](const PatternValue& pv) {
        if (!pv.is_constant()) return;
        if (std::find(constants.begin(), constants.end(), pv.constant()) ==
            constants.end()) {
          constants.push_back(pv.constant());
        }
      };
      for (const Cfd& c : cfds_) {
        for (size_t i = 0; i < c.lhs_cols().size(); ++i) {
          if (c.lhs_cols()[i] != attrs_[p]) continue;
          for (const PatternTuple& pt : c.tableau()) add_constant(pt.lhs[i]);
        }
        if (c.rhs_col() == attrs_[p]) {
          for (const PatternTuple& pt : c.tableau()) add_constant(pt.rhs);
        }
      }
      const auto& def = schema.attr(attrs_[p]);
      if (def.has_finite_domain()) {
        // Finite domain: candidates are exactly the domain values.
        candidates_[p] = def.finite_domain;
      } else {
        candidates_[p] = constants;
        candidates_[p].push_back(MakeFreshValue(def.type, constants));
      }
    }
    // Index CFDs by the latest search position they touch, so each is
    // checked as soon as it is fully assigned.
    check_at_.resize(attrs_.size());
    for (size_t ci = 0; ci < cfds_.size(); ++ci) {
      int last = -1;
      for (size_t col : cfds_[ci].lhs_cols()) {
        last = std::max(last, col_to_pos_[col]);
      }
      last = std::max(last, col_to_pos_[cfds_[ci].rhs_col()]);
      if (last >= 0) check_at_[static_cast<size_t>(last)].push_back(ci);
    }
  }

  bool Run(Row* witness, size_t* nodes) {
    assignment_.assign(attrs_.size(), Value::Null());
    nodes_ = 0;
    const bool found = Assign(0);
    *nodes = nodes_;
    if (found) *witness = assignment_;
    return found;
  }

 private:
  bool Assign(size_t pos) {
    if (pos == attrs_.size()) return true;
    for (const Value& cand : candidates_[pos]) {
      ++nodes_;
      assignment_[pos] = cand;
      bool ok = true;
      for (size_t ci : check_at_[pos]) {
        if (!SatisfiedByAssignment(cfds_[ci])) {
          ok = false;
          break;
        }
      }
      if (ok && Assign(pos + 1)) return true;
    }
    assignment_[pos] = Value::Null();
    return false;
  }

  bool SatisfiedByAssignment(const Cfd& c) const {
    for (const PatternTuple& pt : c.tableau()) {
      bool lhs_match = true;
      for (size_t i = 0; i < c.lhs_cols().size(); ++i) {
        const Value& v = ValueAt(c.lhs_cols()[i]);
        if (!pt.lhs[i].Matches(v)) {
          lhs_match = false;
          break;
        }
      }
      if (!lhs_match) continue;
      // Single tuple: the variable-RHS case is vacuous; constant RHS must
      // match.
      if (pt.rhs.is_constant() && !pt.rhs.Matches(ValueAt(c.rhs_col()))) {
        return false;
      }
    }
    return true;
  }

  const Value& ValueAt(size_t col) const {
    return assignment_[static_cast<size_t>(col_to_pos_[col])];
  }

  const std::vector<Cfd>& cfds_;
  [[maybe_unused]] const relational::Schema& schema_;
  const std::vector<size_t>& attrs_;
  std::vector<std::vector<Value>> candidates_;
  std::vector<int> col_to_pos_;
  std::vector<std::vector<size_t>> check_at_;
  Row assignment_;
  size_t nodes_ = 0;
};

}  // namespace

common::Result<SatisfiabilityReport> SatisfiabilityChecker::Check(
    const std::vector<Cfd>& cfds) const {
  SatisfiabilityReport report;
  if (cfds.empty()) {
    report.satisfiable = true;
    report.explanation = "empty constraint set is trivially satisfiable";
    return report;
  }
  // Resolve copies against the schema and require a single target relation.
  std::vector<Cfd> resolved = cfds;
  const std::string rel = common::ToLower(resolved.front().relation());
  for (Cfd& c : resolved) {
    if (common::ToLower(c.relation()) != rel) {
      return Status::InvalidArgument(
          "satisfiability analysis requires all CFDs over one relation; got " +
          c.relation() + " vs " + resolved.front().relation());
    }
    SEMANDAQ_RETURN_IF_ERROR(c.Resolve(schema_));
  }

  // Attributes that actually occur in the CFD set.
  std::vector<size_t> attrs;
  {
    std::unordered_set<size_t> seen;
    for (const Cfd& c : resolved) {
      for (size_t col : c.lhs_cols()) {
        if (seen.insert(col).second) attrs.push_back(col);
      }
      if (seen.insert(c.rhs_col()).second) attrs.push_back(c.rhs_col());
    }
    std::sort(attrs.begin(), attrs.end());
  }

  WitnessSearch search(resolved, schema_, attrs);
  Row witness;
  report.satisfiable = search.Run(&witness, &report.nodes_explored);
  if (report.satisfiable) {
    report.witness = std::move(witness);
    for (size_t col : attrs) report.witness_attrs.push_back(schema_.attr(col).name);
    report.explanation = "satisfiable; witness tuple found";
    return report;
  }

  // Unsatisfiable: look for a minimal pairwise explanation.
  for (size_t i = 0; i < resolved.size() && report.conflicting_pairs.size() < 8; ++i) {
    for (size_t j = i + 1; j < resolved.size(); ++j) {
      std::vector<Cfd> pair = {resolved[i], resolved[j]};
      std::vector<size_t> pair_attrs;
      std::unordered_set<size_t> seen;
      for (const Cfd& c : pair) {
        for (size_t col : c.lhs_cols()) {
          if (seen.insert(col).second) pair_attrs.push_back(col);
        }
        if (seen.insert(c.rhs_col()).second) pair_attrs.push_back(c.rhs_col());
      }
      std::sort(pair_attrs.begin(), pair_attrs.end());
      WitnessSearch pair_search(pair, schema_, pair_attrs);
      Row unused;
      size_t unused_nodes = 0;
      if (!pair_search.Run(&unused, &unused_nodes)) {
        report.conflicting_pairs.emplace_back(i, j);
      }
    }
  }
  report.explanation = "unsatisfiable: no single-tuple witness exists";
  if (!report.conflicting_pairs.empty()) {
    report.explanation += "; e.g. CFDs #" +
                          std::to_string(report.conflicting_pairs.front().first) +
                          " and #" +
                          std::to_string(report.conflicting_pairs.front().second) +
                          " conflict on their own";
  }
  return report;
}

}  // namespace semandaq::cfd
