#include "cfd/tableau_store.h"

#include "common/string_util.h"

namespace semandaq::cfd {

using common::Status;
using relational::DataType;
using relational::Relation;
using relational::Row;
using relational::Schema;
using relational::Value;

common::Status TableauStore::Store(const std::vector<Cfd>& cfds,
                                   relational::Database* db,
                                   std::vector<std::string>* tableau_names) {
  Clear(db);

  Schema meta_schema = Schema::AllStrings(
      {"tableau_name", "target_relation", "lhs_attrs", "rhs_attr"});
  Relation meta{kMetaRelation, meta_schema};

  const std::vector<EmbeddedFdGroup> groups = GroupByEmbeddedFd(cfds);
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    const EmbeddedFdGroup& g = groups[gi];
    const std::string name = kTableauPrefix + std::to_string(gi);

    // Pattern columns adopt the target relation's attribute types when it is
    // registered, so the generated detection SQL compares like with like.
    const Relation* target = db->FindRelation(g.relation);
    auto attr_type = [&](const std::string& attr) {
      if (target == nullptr) return DataType::kString;
      const int idx = target->schema().IndexOf(attr);
      return idx < 0 ? DataType::kString : target->schema().attr(idx).type;
    };
    Schema schema;
    for (const std::string& a : g.lhs_attrs) {
      SEMANDAQ_RETURN_IF_ERROR(
          schema.AddAttribute(relational::AttributeDef{a, attr_type(a), {}}));
    }
    SEMANDAQ_RETURN_IF_ERROR(schema.AddAttribute(
        relational::AttributeDef{g.rhs_attr, attr_type(g.rhs_attr), {}}));
    SEMANDAQ_RETURN_IF_ERROR(schema.AddAttribute(
        relational::AttributeDef{"__cfd_id", DataType::kInt, {}}));
    SEMANDAQ_RETURN_IF_ERROR(schema.AddAttribute(
        relational::AttributeDef{"__pattern_id", DataType::kInt, {}}));

    Relation tableau{name, schema};
    for (const auto& [ci, pi] : g.members) {
      const PatternTuple& pt = cfds[ci].tableau()[pi];
      Row row;
      row.reserve(g.lhs_attrs.size() + 3);
      for (const PatternValue& pv : pt.lhs) {
        row.push_back(pv.is_wildcard() ? Value::Null() : pv.constant());
      }
      row.push_back(pt.rhs.is_wildcard() ? Value::Null() : pt.rhs.constant());
      row.push_back(Value::Int(static_cast<int64_t>(ci)));
      row.push_back(Value::Int(static_cast<int64_t>(pi)));
      auto ins = tableau.Insert(std::move(row));
      if (!ins.ok()) return ins.status();
    }
    db->PutRelation(std::move(tableau));

    std::vector<std::string> lhs_copy = g.lhs_attrs;
    meta.MustInsert(Row{Value::String(name), Value::String(g.relation),
                        Value::String(common::Join(lhs_copy, ";")),
                        Value::String(g.rhs_attr)});
    if (tableau_names != nullptr) tableau_names->push_back(name);
  }
  db->PutRelation(std::move(meta));
  return Status::OK();
}

common::Result<std::vector<Cfd>> TableauStore::Load(const relational::Database& db) {
  SEMANDAQ_ASSIGN_OR_RETURN(const Relation* meta, db.GetRelation(kMetaRelation));
  std::vector<Cfd> out;
  Status status;
  meta->ForEach([&](relational::TupleId, const Row& mrow) {
    if (!status.ok()) return;
    const std::string& tableau_name = mrow[0].AsString();
    const std::string& target = mrow[1].AsString();
    std::vector<std::string> lhs_attrs = common::Split(mrow[2].AsString(), ';');
    const std::string& rhs_attr = mrow[3].AsString();

    const Relation* tab = db.FindRelation(tableau_name);
    if (tab == nullptr) {
      status = Status::Internal("missing tableau relation " + tableau_name);
      return;
    }
    std::vector<PatternTuple> tableau;
    tab->ForEach([&](relational::TupleId, const Row& trow) {
      PatternTuple pt;
      for (size_t i = 0; i < lhs_attrs.size(); ++i) {
        pt.lhs.push_back(trow[i].is_null()
                             ? PatternValue::Wildcard()
                             : PatternValue::Constant(trow[i]));
      }
      const Value& rv = trow[lhs_attrs.size()];
      pt.rhs = rv.is_null() ? PatternValue::Wildcard() : PatternValue::Constant(rv);
      tableau.push_back(std::move(pt));
    });
    out.emplace_back(target, std::move(lhs_attrs), rhs_attr, std::move(tableau));
  });
  if (!status.ok()) return status;
  return out;
}

void TableauStore::Clear(relational::Database* db) {
  std::vector<std::string> to_drop;
  for (const std::string& name : db->RelationNames()) {
    if (common::StartsWith(name, kTableauPrefix) || name == kMetaRelation) {
      to_drop.push_back(name);
    }
  }
  for (const std::string& name : to_drop) (void)db->DropRelation(name);
}

}  // namespace semandaq::cfd
