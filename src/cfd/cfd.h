#ifndef SEMANDAQ_CFD_CFD_H_
#define SEMANDAQ_CFD_CFD_H_

#include <string>
#include <vector>

#include "cfd/pattern.h"
#include "common/status.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace semandaq::cfd {

/// One row of a CFD's pattern tableau: a pattern over the LHS attributes
/// plus a pattern for the RHS attribute.
struct PatternTuple {
  std::vector<PatternValue> lhs;  ///< parallel to Cfd::lhs_attrs()
  PatternValue rhs;

  /// True when the RHS is a constant (single-tuple semantics apply).
  bool is_constant_rhs() const { return rhs.is_constant(); }

  /// True when every position (LHS and RHS) is the wildcard — the row then
  /// expresses the plain embedded FD.
  bool is_pure_fd_row() const;

  /// "(UK, _ || _)" in the paper's tableau notation.
  std::string ToString() const;
};

/// A conditional functional dependency φ = (R : X → A, Tp) in the formalism
/// of Fan, Geerts, Jia, Kementsietsidis [TODS'08]: an embedded FD X → A over
/// relation R together with a pattern tableau Tp. Each tableau row whose LHS
/// pattern a tuple matches conditions the FD onto that tuple, and the tuple
/// (pair) must additionally match the row's RHS pattern.
///
/// Worked example (the paper's φ2): over customer, [CNT=UK, ZIP=_] → [STR=_]
/// reads "for UK customers, zip code determines street" — the constant UK
/// conditions the dependency onto a subset of the data, which is exactly
/// what classical FDs cannot express. A row with a *constant* RHS (e.g.
/// [CC=44] → [CNT=UK]) is checkable one tuple at a time ("single-tuple
/// semantics"); a wildcard RHS needs a pair of tuples to witness a
/// violation ("multi-tuple semantics"). src/detect implements both, and
/// cfd_parser.h accepts the bracket notation used above.
///
/// Lifecycle: construct (or parse) → Resolve against a schema (fills the
/// column ordinals and coerces constants to attribute types) → hand copies
/// to detectors/repairers. A Cfd is plain data; resolution is the only
/// step that ties it to a concrete relation.
class Cfd {
 public:
  Cfd() = default;
  Cfd(std::string relation, std::vector<std::string> lhs_attrs, std::string rhs_attr,
      std::vector<PatternTuple> tableau)
      : relation_(std::move(relation)),
        lhs_attrs_(std::move(lhs_attrs)),
        rhs_attr_(std::move(rhs_attr)),
        tableau_(std::move(tableau)) {}

  const std::string& relation() const { return relation_; }
  const std::vector<std::string>& lhs_attrs() const { return lhs_attrs_; }
  const std::string& rhs_attr() const { return rhs_attr_; }
  const std::vector<PatternTuple>& tableau() const { return tableau_; }
  std::vector<PatternTuple>& mutable_tableau() { return tableau_; }

  /// Appends a tableau row (arity must match; asserted).
  void AddPattern(PatternTuple pt);

  /// Resolves attribute names against `schema`: fills the column ordinals
  /// and coerces string-typed pattern constants to the attribute types
  /// (e.g. "44" to INT 44 for an INT attribute). Fails on unknown
  /// attributes, arity mismatches, or non-coercible constants.
  common::Status Resolve(const relational::Schema& schema);

  bool resolved() const { return !lhs_cols_.empty() || lhs_attrs_.empty(); }
  const std::vector<size_t>& lhs_cols() const { return lhs_cols_; }
  size_t rhs_col() const { return rhs_col_; }

  /// True when the whole tableau is wildcard-only, i.e. the CFD degenerates
  /// to the classical FD X → A.
  bool IsStandardFd() const;

  /// "customer: [CNT, ZIP] -> [CITY] { (UK, _ || _) }".
  std::string ToString() const;

 private:
  std::string relation_;
  std::vector<std::string> lhs_attrs_;
  std::string rhs_attr_;
  std::vector<PatternTuple> tableau_;

  std::vector<size_t> lhs_cols_;  // filled by Resolve
  size_t rhs_col_ = 0;
};

/// Tableau rows of several CFDs that share an embedded FD (same relation,
/// same LHS attribute list, same RHS attribute). The SQL generator of
/// [TODS'08] merges such rows into a single tableau relation so one Q_C/Q_V
/// query pair covers all of them.
struct EmbeddedFdGroup {
  std::string relation;
  std::vector<std::string> lhs_attrs;
  std::string rhs_attr;

  /// (index into the CFD vector, index into that CFD's tableau).
  std::vector<std::pair<size_t, size_t>> members;
};

/// Groups the tableau rows of `cfds` by embedded FD. LHS attribute lists
/// compare order-insensitively (case-insensitive names).
std::vector<EmbeddedFdGroup> GroupByEmbeddedFd(const std::vector<Cfd>& cfds);

/// Resolves every CFD in the set against the schemas in `db`-like lookup:
/// the caller supplies a resolver from relation name to schema.
common::Status ResolveAll(std::vector<Cfd>* cfds, const relational::Schema& schema);

}  // namespace semandaq::cfd

#endif  // SEMANDAQ_CFD_CFD_H_
