#include "cfd/pattern.h"

namespace semandaq::cfd {

PatternValue PatternValue::Constant(relational::Value v) {
  PatternValue p;
  p.wildcard_ = false;
  p.constant_ = std::move(v);
  return p;
}

bool PatternValue::Matches(const relational::Value& v) const {
  if (wildcard_) return true;
  if (v.is_null()) return false;
  return v == constant_;
}

bool PatternValue::CompatibleWith(const PatternValue& other) const {
  if (wildcard_ || other.wildcard_) return true;
  return constant_ == other.constant_;
}

std::string PatternValue::ToString() const {
  return wildcard_ ? "_" : constant_.ToDisplayString();
}

}  // namespace semandaq::cfd
