#ifndef SEMANDAQ_CFD_SUBSUMPTION_H_
#define SEMANDAQ_CFD_SUBSUMPTION_H_

#include <vector>

#include "cfd/cfd.h"

namespace semandaq::cfd {

/// Syntactic implication between two pattern rows of the same embedded FD:
/// row `general` implies row `specific` when every LHS position of
/// `general` is at least as permissive (wildcard, or the same constant) and
/// the RHS demand is at least as strong (same constant, or `specific` only
/// asks for the variable semantics the wildcard already enforces).
///
/// If general implies specific, any instance satisfying the former satisfies
/// the latter, so `specific` is redundant. This is the sound, syntactic
/// fragment of CFD implication — full implication is coNP-complete in the
/// presence of finite domains (Fan et al. [TODS'08], Thm. 4.3), so the
/// constraint engine only uses this fragment to prune mined sets.
bool PatternSubsumes(const PatternTuple& general, const PatternTuple& specific);

/// True when some tableau row of `general` subsumes every tableau row of
/// `specific` (both must share relation, LHS attribute list and RHS
/// attribute; otherwise false). Additionally, a CFD whose LHS attribute set
/// is a SUBSET of another's subsumes it at the FD level when its rows are
/// positionally compatible; this helper handles the equal-attribute case
/// only — set-level reasoning stays in RemoveSubsumed.
bool CfdSubsumes(const Cfd& general, const Cfd& specific);

/// Removes every CFD (and every individual tableau row) that is implied by
/// another member of the set:
///  * tableau rows subsumed by another row of the same embedded-FD group
///    are dropped;
///  * a pure-FD CFD X -> A makes any CFD Y -> A with X ⊆ Y redundant
///    (classical augmentation), so those are dropped too.
/// Returns the pruned set; relative order of survivors is preserved.
std::vector<Cfd> RemoveSubsumed(const std::vector<Cfd>& cfds);

}  // namespace semandaq::cfd

#endif  // SEMANDAQ_CFD_SUBSUMPTION_H_
