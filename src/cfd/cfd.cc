#include "cfd/cfd.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace semandaq::cfd {

using common::Status;
using relational::DataType;
using relational::Value;

bool PatternTuple::is_pure_fd_row() const {
  if (!rhs.is_wildcard()) return false;
  return std::all_of(lhs.begin(), lhs.end(),
                     [](const PatternValue& p) { return p.is_wildcard(); });
}

std::string PatternTuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (i > 0) out += ", ";
    out += lhs[i].ToString();
  }
  out += " || ";
  out += rhs.ToString();
  out += ")";
  return out;
}

void Cfd::AddPattern(PatternTuple pt) {
  assert(pt.lhs.size() == lhs_attrs_.size());
  tableau_.push_back(std::move(pt));
}

namespace {

/// Coerces a string-typed pattern constant to the declared attribute type.
common::Result<PatternValue> CoerceConstant(const PatternValue& p, DataType type,
                                            const std::string& attr) {
  if (p.is_wildcard()) return p;
  const Value& v = p.constant();
  if (v.type() == type || v.is_null()) return p;
  if (v.type() == DataType::kString) {
    const std::string& text = v.AsString();
    if (type == DataType::kInt) {
      int64_t parsed = 0;
      if (!common::ParseInt64(text, &parsed)) {
        return Status::InvalidArgument("pattern constant '" + text + "' for INT attribute " +
                                       attr + " is not an integer");
      }
      return PatternValue::Constant(Value::Int(parsed));
    }
    if (type == DataType::kDouble) {
      double parsed = 0;
      if (!common::ParseDouble(text, &parsed)) {
        return Status::InvalidArgument("pattern constant '" + text +
                                       "' for DOUBLE attribute " + attr +
                                       " is not a number");
      }
      return PatternValue::Constant(Value::Double(parsed));
    }
  }
  return Status::InvalidArgument("pattern constant " + v.ToDisplayString() +
                                 " has the wrong type for attribute " + attr);
}

}  // namespace

Status Cfd::Resolve(const relational::Schema& schema) {
  lhs_cols_.clear();
  lhs_cols_.reserve(lhs_attrs_.size());
  if (lhs_attrs_.empty()) {
    return Status::InvalidArgument("CFD must have at least one LHS attribute: " +
                                   ToString());
  }
  for (const std::string& a : lhs_attrs_) {
    auto idx = schema.RequireIndexOf(a);
    if (!idx.ok()) return idx.status();
    lhs_cols_.push_back(*idx);
  }
  auto ridx = schema.RequireIndexOf(rhs_attr_);
  if (!ridx.ok()) return ridx.status();
  rhs_col_ = *ridx;
  if (std::find(lhs_cols_.begin(), lhs_cols_.end(), rhs_col_) != lhs_cols_.end()) {
    return Status::InvalidArgument("RHS attribute " + rhs_attr_ +
                                   " also appears on the LHS: " + ToString());
  }
  for (PatternTuple& pt : tableau_) {
    if (pt.lhs.size() != lhs_attrs_.size()) {
      return Status::InvalidArgument("pattern arity mismatch in " + ToString());
    }
    for (size_t i = 0; i < pt.lhs.size(); ++i) {
      auto coerced =
          CoerceConstant(pt.lhs[i], schema.attr(lhs_cols_[i]).type, lhs_attrs_[i]);
      if (!coerced.ok()) return coerced.status();
      pt.lhs[i] = std::move(*coerced);
    }
    auto coerced = CoerceConstant(pt.rhs, schema.attr(rhs_col_).type, rhs_attr_);
    if (!coerced.ok()) return coerced.status();
    pt.rhs = std::move(*coerced);
  }
  return Status::OK();
}

bool Cfd::IsStandardFd() const {
  return std::all_of(tableau_.begin(), tableau_.end(),
                     [](const PatternTuple& pt) { return pt.is_pure_fd_row(); });
}

std::string Cfd::ToString() const {
  std::string out = relation_ + ": [";
  for (size_t i = 0; i < lhs_attrs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += lhs_attrs_[i];
  }
  out += "] -> [" + rhs_attr_ + "] { ";
  for (size_t i = 0; i < tableau_.size(); ++i) {
    if (i > 0) out += ", ";
    out += tableau_[i].ToString();
  }
  out += " }";
  return out;
}

std::vector<EmbeddedFdGroup> GroupByEmbeddedFd(const std::vector<Cfd>& cfds) {
  std::vector<EmbeddedFdGroup> groups;
  // Key by the exact LHS order so member pattern tuples stay positionally
  // aligned with the group's attribute list.
  auto key_of = [](const Cfd& c) {
    std::vector<std::string> lhs;
    lhs.reserve(c.lhs_attrs().size());
    for (const auto& a : c.lhs_attrs()) lhs.push_back(common::ToLower(a));
    return common::ToLower(c.relation()) + "|" + common::Join(lhs, ",") + "|" +
           common::ToLower(c.rhs_attr());
  };
  std::vector<std::string> keys;
  for (size_t ci = 0; ci < cfds.size(); ++ci) {
    const std::string key = key_of(cfds[ci]);
    size_t gi = 0;
    for (; gi < keys.size(); ++gi) {
      if (keys[gi] == key) break;
    }
    if (gi == keys.size()) {
      keys.push_back(key);
      EmbeddedFdGroup g;
      g.relation = cfds[ci].relation();
      g.lhs_attrs = cfds[ci].lhs_attrs();
      g.rhs_attr = cfds[ci].rhs_attr();
      groups.push_back(std::move(g));
    }
    for (size_t pi = 0; pi < cfds[ci].tableau().size(); ++pi) {
      groups[gi].members.emplace_back(ci, pi);
    }
  }
  return groups;
}

common::Status ResolveAll(std::vector<Cfd>* cfds, const relational::Schema& schema) {
  for (Cfd& c : *cfds) {
    SEMANDAQ_RETURN_IF_ERROR(c.Resolve(schema));
  }
  return Status::OK();
}

}  // namespace semandaq::cfd
