#include "cfd/cfd_parser.h"

#include <cctype>

#include "common/string_util.h"

namespace semandaq::cfd {

namespace {

using common::Result;
using common::Status;
using relational::Value;

/// Character-level cursor over a single CFD definition.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char PeekChar() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Status::InvalidArgument(std::string("expected '") + c + "' at position " +
                                     std::to_string(pos_) + " in CFD: " +
                                     std::string(text_));
    }
    return Status::OK();
  }

  /// Bare token: letters/digits/_/-/./space-free run, stopping at , ] ) | = {.
  Result<std::string> ReadToken() {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ',' || c == ']' || c == ')' || c == '|' || c == '=' || c == '{' ||
          c == '}' || c == '(' || c == '[' || c == ':' ||
          std::isspace(static_cast<unsigned char>(c))) {
        break;
      }
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected a token at position " +
                                     std::to_string(pos_) + " in CFD: " +
                                     std::string(text_));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  /// A pattern value: '_' wildcard, 'quoted string', or bare token.
  Result<PatternValue> ReadPatternValue() {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '\'') {
      ++pos_;
      std::string payload;
      bool closed = false;
      while (pos_ < text_.size()) {
        if (text_[pos_] == '\'') {
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '\'') {
            payload.push_back('\'');
            pos_ += 2;
            continue;
          }
          ++pos_;
          closed = true;
          break;
        }
        payload.push_back(text_[pos_]);
        ++pos_;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated quoted constant in CFD: " +
                                       std::string(text_));
      }
      return PatternValue::Constant(Value::String(std::move(payload)));
    }
    SEMANDAQ_ASSIGN_OR_RETURN(std::string tok, ReadToken());
    if (tok == "_") return PatternValue::Wildcard();
    return PatternValue::Constant(Value::String(std::move(tok)));
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

/// One "[A=v, B, C=_]" attribute list; `values` entries are wildcards for
/// attributes written without '='.
Status ParseAttrList(Cursor* cur, std::vector<std::string>* attrs,
                     std::vector<PatternValue>* values) {
  SEMANDAQ_RETURN_IF_ERROR(cur->Expect('['));
  while (true) {
    auto name = cur->ReadToken();
    if (!name.ok()) return name.status();
    attrs->push_back(std::move(*name));
    if (cur->Consume('=')) {
      auto pv = cur->ReadPatternValue();
      if (!pv.ok()) return pv.status();
      values->push_back(std::move(*pv));
    } else {
      values->push_back(PatternValue::Wildcard());
    }
    if (cur->Consume(',')) continue;
    break;
  }
  return cur->Expect(']');
}

}  // namespace

common::Result<Cfd> ParseCfd(std::string_view text) {
  Cursor cur(text);

  SEMANDAQ_ASSIGN_OR_RETURN(std::string relation, cur.ReadToken());
  SEMANDAQ_RETURN_IF_ERROR(cur.Expect(':'));

  std::vector<std::string> lhs_attrs;
  std::vector<PatternValue> lhs_values;
  SEMANDAQ_RETURN_IF_ERROR(ParseAttrList(&cur, &lhs_attrs, &lhs_values));

  SEMANDAQ_RETURN_IF_ERROR(cur.Expect('-'));
  SEMANDAQ_RETURN_IF_ERROR(cur.Expect('>'));

  std::vector<std::string> rhs_attrs;
  std::vector<PatternValue> rhs_values;
  SEMANDAQ_RETURN_IF_ERROR(ParseAttrList(&cur, &rhs_attrs, &rhs_values));
  if (rhs_attrs.size() != 1) {
    return Status::InvalidArgument(
        "CFD RHS must name exactly one attribute (normal form): " + std::string(text));
  }

  std::vector<PatternTuple> tableau;
  if (cur.PeekChar() == '{') {
    // Explicit tableau: the inline '=' patterns are not allowed with it.
    for (const PatternValue& pv : lhs_values) {
      if (!pv.is_wildcard()) {
        return Status::InvalidArgument(
            "inline '=' patterns cannot be combined with a tableau block: " +
            std::string(text));
      }
    }
    if (!rhs_values[0].is_wildcard()) {
      return Status::InvalidArgument(
          "inline RHS '=' pattern cannot be combined with a tableau block: " +
          std::string(text));
    }
    (void)cur.Consume('{');
    while (true) {
      SEMANDAQ_RETURN_IF_ERROR(cur.Expect('('));
      PatternTuple pt;
      for (size_t i = 0; i < lhs_attrs.size(); ++i) {
        SEMANDAQ_ASSIGN_OR_RETURN(PatternValue pv, cur.ReadPatternValue());
        pt.lhs.push_back(std::move(pv));
        if (i + 1 < lhs_attrs.size()) {
          SEMANDAQ_RETURN_IF_ERROR(cur.Expect(','));
        }
      }
      SEMANDAQ_RETURN_IF_ERROR(cur.Expect('|'));
      (void)cur.Consume('|');  // accept the paper's "||" separator too
      SEMANDAQ_ASSIGN_OR_RETURN(PatternValue rv, cur.ReadPatternValue());
      pt.rhs = std::move(rv);
      SEMANDAQ_RETURN_IF_ERROR(cur.Expect(')'));
      tableau.push_back(std::move(pt));
      if (cur.Consume(',')) continue;
      break;
    }
    SEMANDAQ_RETURN_IF_ERROR(cur.Expect('}'));
  } else {
    PatternTuple pt;
    pt.lhs = std::move(lhs_values);
    pt.rhs = std::move(rhs_values[0]);
    tableau.push_back(std::move(pt));
  }

  if (!cur.AtEnd()) {
    return Status::InvalidArgument("trailing input after CFD definition: " +
                                   std::string(text));
  }
  return Cfd(std::move(relation), std::move(lhs_attrs), std::move(rhs_attrs[0]),
             std::move(tableau));
}

common::Result<std::vector<Cfd>> ParseCfdSet(std::string_view text) {
  std::vector<Cfd> out;
  for (const std::string& raw : common::Split(text, '\n')) {
    std::string_view line = common::Trim(raw);
    if (line.empty() || line.front() == '#') continue;
    SEMANDAQ_ASSIGN_OR_RETURN(Cfd cfd, ParseCfd(line));
    out.push_back(std::move(cfd));
  }
  return out;
}

}  // namespace semandaq::cfd
