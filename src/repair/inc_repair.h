#ifndef SEMANDAQ_REPAIR_INC_REPAIR_H_
#define SEMANDAQ_REPAIR_INC_REPAIR_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "cfd/cfd.h"
#include "common/status.h"
#include "detect/incremental_detector.h"
#include "relational/relation.h"
#include "relational/update.h"
#include "repair/batch_repair.h"
#include "repair/cost_model.h"

namespace semandaq::repair {

/// Outcome of one incremental-repair batch (stateful engine).
struct IncBatchResult {
  /// Cell edits applied to the delta, with ranked alternatives.
  std::vector<CellChange> changes;
  double total_cost = 0;
  /// Violations still involving delta tuples (non-zero only when the
  /// immutable clean data pins irreconcilable values).
  size_t remaining_violations = 0;
  size_t null_escapes = 0;
  /// Tuple ids the batch introduced or modified.
  std::vector<relational::TupleId> delta_tids;
};

/// Incremental repair (IncRepair of Cong et al. [VLDB'07]; paper §2, Data
/// Monitor mode (2)). Precondition: the relation satisfies Σ. Each update
/// batch is applied and only the inserted/modified tuples may be edited;
/// the existing clean data is immutable and pins multi-tuple targets.
///
/// The engine is *stateful*: Start() pays one O(|D|) pass to build the
/// incremental detector's group state, after which every ApplyAndRepair
/// costs O(|Δ|) — violations of delta tuples are read directly from the
/// detector's buckets, never by re-scanning the relation. This is the
/// |Δ|-vs-|D| separation the companion paper's IncRepair experiment shows.
///
/// Unlike BatchRepair, this path stays row-based and serial: the per-batch
/// work is already delta-local, so the encoded/SIMD/parallel stack (see
/// docs/repair.md) has nothing to amortize here. Of RepairOptions only
/// `max_iterations` and `alternatives_k` apply. Every decision is
/// deterministic — consensus candidates are Compare-ordered before cost
/// ties break first-wins, matching the batch engine's guarantee.
class IncRepairEngine {
 public:
  /// The relation must outlive the engine; all mutations must go through
  /// ApplyAndRepair so the internal detector stays in sync.
  IncRepairEngine(relational::Relation* rel, std::vector<cfd::Cfd> cfds,
                  CostModel cost_model, RepairOptions options = {});

  /// Builds detector state (one full pass). Call once.
  common::Status Start();

  /// Applies the batch, then repairs the delta tuples in place.
  common::Result<IncBatchResult> ApplyAndRepair(const relational::UpdateBatch& batch);

  /// The live detector (for violation snapshots).
  detect::IncrementalDetector* detector() { return detector_.get(); }

 private:
  /// Resolves all current violations of one delta tuple. Returns the number
  /// of edits applied.
  common::Result<size_t> RepairTuple(relational::TupleId tid, IncBatchResult* result);

  relational::Relation* rel_;
  std::vector<cfd::Cfd> cfds_;
  CostModel cost_model_;
  RepairOptions options_;
  std::unique_ptr<detect::IncrementalDetector> detector_;
  std::unordered_set<relational::TupleId> delta_;
};

/// Outcome of the one-shot wrapper: a full RepairResult over a cloned
/// relation (the shape the data cleanser and the tests consume).
struct IncRepairResult {
  RepairResult repair;
  std::vector<relational::TupleId> delta_tids;
};

/// One-shot convenience wrapper: clones the relation, applies + repairs one
/// batch with a fresh IncRepairEngine, and returns the repaired copy.
class IncRepair {
 public:
  IncRepair(const relational::Relation* rel, std::vector<cfd::Cfd> cfds,
            CostModel cost_model, RepairOptions options = {})
      : rel_(rel),
        cfds_(std::move(cfds)),
        cost_model_(std::move(cost_model)),
        options_(std::move(options)) {}

  common::Result<IncRepairResult> Run(const relational::UpdateBatch& batch);

 private:
  const relational::Relation* rel_;
  std::vector<cfd::Cfd> cfds_;
  CostModel cost_model_;
  RepairOptions options_;
};

}  // namespace semandaq::repair

#endif  // SEMANDAQ_REPAIR_INC_REPAIR_H_
