#ifndef SEMANDAQ_REPAIR_EQUIVALENCE_H_
#define SEMANDAQ_REPAIR_EQUIVALENCE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "relational/relation.h"
#include "relational/value.h"

namespace semandaq::repair {

/// A (tuple, attribute) cell of the relation under repair.
struct CellId {
  relational::TupleId tid = -1;
  size_t col = 0;

  bool operator==(const CellId& other) const {
    return tid == other.tid && col == other.col;
  }
};

/// Union-find over cells, the core data structure of the equivalence-class
/// repair framework of Bohannon et al. [SIGMOD'05] as extended to CFDs by
/// Cong et al. [VLDB'07]: cells that must agree in any repair are merged
/// into one class, and the class is assigned a single target value chosen by
/// the cost model.
class EquivalenceClasses {
 public:
  EquivalenceClasses() = default;

  /// Representative cell of the class containing `cell` (path compressed).
  CellId Find(CellId cell);

  /// Merges the classes of `a` and `b`; the surviving class keeps the target
  /// of `a`'s class if both had one.
  void Union(CellId a, CellId b);

  /// Bulk merge over one code column: cells (tids[i], col) sharing a label
  /// merge into one class. Labels are uint32 dictionary codes in the
  /// encoded repair engine (relational::Code) and distinct-value ordinals
  /// in the row fallback — any uint32 space where label equality means
  /// value equality works. Label 0 (relational::kNullCode) marks a NULL
  /// cell and is skipped: NULL never pins cells together. One pass, one
  /// integer-keyed map — no Value hashing. Returns the number of Union
  /// operations performed.
  size_t MergeColumn(const std::vector<relational::TupleId>& tids, size_t col,
                     const std::vector<uint32_t>& labels);

  /// Merges the cells (tids[i], col) — all known to share one label — into
  /// a single class. Produces the same partition as MergeColumn with a
  /// uniform label vector, but cells not yet in any class are linked to the
  /// absorbing root directly: one hash find + one insert each, instead of
  /// the find-make-singleton-then-union walk. Repair groups run into the
  /// thousands of members, which makes this the apply phase's hot path.
  /// Returns the number of cells newly joined to the class.
  size_t MergeUniform(const std::vector<relational::TupleId>& tids, size_t col);

  /// All cells in the class of `cell` (including `cell` itself).
  std::vector<CellId> Members(CellId cell);

  /// Assigns the class target value.
  void SetTarget(CellId cell, relational::Value v);

  /// Target value of the class, if assigned.
  std::optional<relational::Value> Target(CellId cell);

  /// Number of classes with more than one member (a repair-complexity
  /// statistic surfaced in benches).
  size_t NumMergedClasses() const;

 private:
  static uint64_t Key(CellId c) {
    return (static_cast<uint64_t>(c.tid) << 16) | static_cast<uint64_t>(c.col);
  }
  static CellId FromKey(uint64_t k) {
    return CellId{static_cast<relational::TupleId>(k >> 16),
                  static_cast<size_t>(k & 0xFFFF)};
  }

  uint64_t FindRoot(uint64_t key);

  std::unordered_map<uint64_t, uint64_t> parent_;
  std::unordered_map<uint64_t, std::vector<uint64_t>> members_;  // at roots
  std::unordered_map<uint64_t, relational::Value> targets_;      // at roots
};

}  // namespace semandaq::repair

#endif  // SEMANDAQ_REPAIR_EQUIVALENCE_H_
