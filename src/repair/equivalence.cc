#include "repair/equivalence.h"

namespace semandaq::repair {

uint64_t EquivalenceClasses::FindRoot(uint64_t key) {
  auto it = parent_.find(key);
  if (it == parent_.end()) {
    parent_[key] = key;
    members_[key] = {key};
    return key;
  }
  // Path compression.
  uint64_t root = key;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[key] != root) {
    uint64_t next = parent_[key];
    parent_[key] = root;
    key = next;
  }
  return root;
}

CellId EquivalenceClasses::Find(CellId cell) { return FromKey(FindRoot(Key(cell))); }

void EquivalenceClasses::Union(CellId a, CellId b) {
  uint64_t ra = FindRoot(Key(a));
  uint64_t rb = FindRoot(Key(b));
  if (ra == rb) return;
  // Union by size.
  if (members_[ra].size() < members_[rb].size()) std::swap(ra, rb);
  parent_[rb] = ra;
  auto& ma = members_[ra];
  auto& mb = members_[rb];
  ma.insert(ma.end(), mb.begin(), mb.end());
  members_.erase(rb);
  auto tb = targets_.find(rb);
  if (tb != targets_.end()) {
    // Keep the absorbing class's target when both exist.
    if (targets_.find(ra) == targets_.end()) targets_[ra] = tb->second;
    targets_.erase(tb);
  }
}

std::vector<CellId> EquivalenceClasses::Members(CellId cell) {
  const uint64_t root = FindRoot(Key(cell));
  std::vector<CellId> out;
  for (uint64_t k : members_[root]) out.push_back(FromKey(k));
  return out;
}

void EquivalenceClasses::SetTarget(CellId cell, relational::Value v) {
  targets_[FindRoot(Key(cell))] = std::move(v);
}

std::optional<relational::Value> EquivalenceClasses::Target(CellId cell) {
  auto it = targets_.find(FindRoot(Key(cell)));
  if (it == targets_.end()) return std::nullopt;
  return it->second;
}

size_t EquivalenceClasses::NumMergedClasses() const {
  size_t n = 0;
  for (const auto& [root, cells] : members_) {
    if (cells.size() > 1) ++n;
  }
  return n;
}

}  // namespace semandaq::repair
