#include "repair/equivalence.h"

#include <algorithm>

namespace semandaq::repair {

uint64_t EquivalenceClasses::FindRoot(uint64_t key) {
  auto it = parent_.find(key);
  if (it == parent_.end()) {
    parent_[key] = key;
    members_[key] = {key};
    return key;
  }
  // Path compression.
  uint64_t root = key;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[key] != root) {
    uint64_t next = parent_[key];
    parent_[key] = root;
    key = next;
  }
  return root;
}

CellId EquivalenceClasses::Find(CellId cell) { return FromKey(FindRoot(Key(cell))); }

void EquivalenceClasses::Union(CellId a, CellId b) {
  uint64_t ra = FindRoot(Key(a));
  uint64_t rb = FindRoot(Key(b));
  if (ra == rb) return;
  // Union by size.
  if (members_[ra].size() < members_[rb].size()) std::swap(ra, rb);
  parent_[rb] = ra;
  auto& ma = members_[ra];
  auto& mb = members_[rb];
  ma.insert(ma.end(), mb.begin(), mb.end());
  members_.erase(rb);
  auto tb = targets_.find(rb);
  if (tb != targets_.end()) {
    // Keep the absorbing class's target when both exist.
    if (targets_.find(ra) == targets_.end()) targets_[ra] = tb->second;
    targets_.erase(tb);
  }
}

size_t EquivalenceClasses::MergeColumn(const std::vector<relational::TupleId>& tids,
                                       size_t col,
                                       const std::vector<uint32_t>& labels) {
  // label -> first cell seen with it; later cells union into that class.
  std::unordered_map<uint32_t, CellId> first;
  first.reserve(labels.size());
  size_t unions = 0;
  const size_t n = std::min(tids.size(), labels.size());
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] == 0) continue;  // kNullCode: NULL never merges cells
    const CellId cell{tids[i], col};
    auto [it, fresh] = first.emplace(labels[i], cell);
    if (fresh) continue;
    Union(it->second, cell);
    ++unions;
  }
  return unions;
}

size_t EquivalenceClasses::MergeUniform(const std::vector<relational::TupleId>& tids,
                                        size_t col) {
  if (tids.size() < 2) return 0;
  // Split the cells into fresh ones (no class yet) and the distinct roots of
  // cells already classed in an earlier round.
  std::vector<uint64_t> fresh;
  fresh.reserve(tids.size());
  std::vector<uint64_t> roots;
  for (relational::TupleId tid : tids) {
    const uint64_t key = Key({tid, col});
    if (parent_.find(key) == parent_.end()) {
      fresh.push_back(key);
    } else {
      const uint64_t root = FindRoot(key);
      if (std::find(roots.begin(), roots.end(), root) == roots.end()) {
        roots.push_back(root);
      }
    }
  }

  // Absorb into the largest existing class; with none, the first fresh cell
  // founds the class (matching MergeColumn's first-cell anchoring).
  uint64_t absorb;
  if (!roots.empty()) {
    absorb = roots.front();
    for (uint64_t r : roots) {
      if (members_[r].size() > members_[absorb].size()) absorb = r;
    }
  } else {
    absorb = fresh.front();
    parent_[absorb] = absorb;
    members_[absorb] = {};
  }

  auto& ma = members_[absorb];
  ma.reserve(ma.size() + fresh.size());
  size_t joined = 0;
  for (uint64_t key : fresh) {
    if (key != absorb) {
      parent_[key] = absorb;
      ++joined;
    }
    ma.push_back(key);
  }
  for (uint64_t r : roots) {
    if (r == absorb) continue;
    auto& mb = members_[r];
    joined += mb.size();
    ma.insert(ma.end(), mb.begin(), mb.end());
    parent_[r] = absorb;
    members_.erase(r);
    auto tb = targets_.find(r);
    if (tb != targets_.end()) {
      // Keep the absorbing class's target when both exist.
      if (targets_.find(absorb) == targets_.end()) targets_[absorb] = tb->second;
      targets_.erase(tb);
    }
  }
  return joined;
}

std::vector<CellId> EquivalenceClasses::Members(CellId cell) {
  const uint64_t root = FindRoot(Key(cell));
  std::vector<CellId> out;
  for (uint64_t k : members_[root]) out.push_back(FromKey(k));
  return out;
}

void EquivalenceClasses::SetTarget(CellId cell, relational::Value v) {
  targets_[FindRoot(Key(cell))] = std::move(v);
}

std::optional<relational::Value> EquivalenceClasses::Target(CellId cell) {
  auto it = targets_.find(FindRoot(Key(cell)));
  if (it == targets_.end()) return std::nullopt;
  return it->second;
}

size_t EquivalenceClasses::NumMergedClasses() const {
  size_t n = 0;
  for (const auto& [root, cells] : members_) {
    if (cells.size() > 1) ++n;
  }
  return n;
}

}  // namespace semandaq::repair
