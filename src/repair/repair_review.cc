#include "repair/repair_review.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace semandaq::repair {

using common::Status;
using relational::Row;
using relational::TupleId;
using relational::Update;
using relational::Value;

RepairReview::RepairReview(const relational::Relation* original, RepairResult result,
                           std::vector<cfd::Cfd> cfds)
    : original_(original), result_(std::move(result)), cfds_(std::move(cfds)) {}

common::Status RepairReview::Start() {
  detector_ =
      std::make_unique<detect::IncrementalDetector>(&result_.repaired, cfds_);
  return detector_->Initialize();
}

const CellChange* RepairReview::FindChange(TupleId tid, size_t col) const {
  for (const CellChange& ch : result_.changes) {
    if (ch.tid == tid && ch.col == col) return &ch;
  }
  return nullptr;
}

common::Result<std::vector<TupleId>> RepairReview::OverrideCell(TupleId tid,
                                                                size_t col,
                                                                Value v) {
  if (detector_ == nullptr) {
    return Status::FailedPrecondition("RepairReview::Start was not called");
  }
  std::vector<TupleId> before = detector_->Snapshot().ViolatingTuples();
  SEMANDAQ_RETURN_IF_ERROR(
      detector_->ApplyAndDetect({Update::Modify(tid, col, std::move(v))}));
  std::vector<TupleId> after = detector_->Snapshot().ViolatingTuples();

  // Newly conflicting tuples = after \ before.
  std::vector<TupleId> fresh;
  std::set_difference(after.begin(), after.end(), before.begin(), before.end(),
                      std::back_inserter(fresh));

  // Keep the change log in sync with the user's decision.
  bool found = false;
  for (CellChange& ch : result_.changes) {
    if (ch.tid == tid && ch.col == col) {
      ch.repaired = result_.repaired.cell(tid, col);
      found = true;
      break;
    }
  }
  if (!found) {
    CellChange ch;
    ch.tid = tid;
    ch.col = col;
    ch.original = original_->cell(tid, col);
    ch.repaired = result_.repaired.cell(tid, col);
    result_.changes.push_back(std::move(ch));
  }
  return fresh;
}

std::string RepairReview::RenderDiff(size_t max_rows) const {
  const auto& schema = original_->schema();
  std::ostringstream out;
  out << "Cleansing review (" << result_.changes.size() << " modified cell(s), cost "
      << result_.total_cost;
  if (result_.merged_classes > 0) {
    out << ", " << result_.merged_classes << " merged class(es)";
  }
  if (result_.null_escapes > 0) {
    out << ", " << result_.null_escapes << " null escape(s)";
  }
  out << ")\n";

  // One pass over the change log instead of an O(|changes|) FindChange per
  // rendered cell — diffs of wide repairs stay linear.
  std::unordered_map<uint64_t, const CellChange*> by_cell;
  by_cell.reserve(result_.changes.size());
  for (const CellChange& ch : result_.changes) {
    by_cell.emplace((static_cast<uint64_t>(ch.tid) << 16) | ch.col, &ch);
  }
  auto change_at = [&](TupleId tid, size_t c) -> const CellChange* {
    auto it = by_cell.find((static_cast<uint64_t>(tid) << 16) | c);
    return it == by_cell.end() ? nullptr : it->second;
  };

  // Column headers.
  out << "tid";
  for (size_t c = 0; c < schema.size(); ++c) out << " | " << schema.attr(c).name;
  out << "\n";

  size_t shown = 0;
  original_->ForEach([&](TupleId tid, const Row& row) {
    if (shown >= max_rows) return;
    if (!result_.repaired.IsLive(tid)) return;
    bool any_change = false;
    for (size_t c = 0; c < schema.size(); ++c) {
      if (change_at(tid, c) != nullptr) {
        any_change = true;
        break;
      }
    }
    if (!any_change) return;
    ++shown;
    out << "#" << tid;
    for (size_t c = 0; c < schema.size(); ++c) {
      out << " | ";
      const CellChange* ch = change_at(tid, c);
      if (ch != nullptr && !(ch->original == ch->repaired)) {
        out << "[" << ch->original.ToDisplayString() << " -> "
            << ch->repaired.ToDisplayString() << "]";
      } else {
        out << row[c].ToDisplayString();
      }
    }
    out << "\n";
  });
  if (shown == 0) out << "(no modified tuples)\n";
  return out.str();
}

}  // namespace semandaq::repair
