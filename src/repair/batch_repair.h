#ifndef SEMANDAQ_REPAIR_BATCH_REPAIR_H_
#define SEMANDAQ_REPAIR_BATCH_REPAIR_H_

#include <unordered_set>
#include <utility>
#include <vector>

#include "cfd/cfd.h"
#include "common/cancel.h"
#include "common/simd/simd.h"
#include "common/status.h"
#include "detect/violation.h"
#include "relational/relation.h"
#include "repair/cost_model.h"

namespace semandaq::common {
class ThreadPool;
}  // namespace semandaq::common

namespace semandaq::repair {

/// Tuning knobs of the heuristic repair algorithm.
struct RepairOptions {
  /// Detection/resolution rounds before the NULL-escape pass that
  /// guarantees termination (the role nulls play in Cong et al. [VLDB'07]).
  int max_iterations = 16;

  /// Allow breaking a pattern match by editing an LHS cell (otherwise only
  /// RHS cells are repaired).
  bool enable_lhs_repairs = true;

  /// How many ranked alternative values to keep per changed cell for the
  /// cleansing-review UI (paper Fig. 5).
  size_t alternatives_k = 3;

  /// When non-empty, only these tuples may be modified (IncRepair mode:
  /// existing clean data is immutable, only the delta is repaired).
  std::unordered_set<relational::TupleId> mutable_tids;
  bool restrict_to_mutable = false;

  /// Route the per-round re-detection and candidate-cost evaluation through
  /// one dictionary-encoded snapshot of the working relation, kept warm
  /// across rounds via the delta hooks (every applied cell edit re-encodes
  /// exactly that cell). Off = the original row-hash walk, kept for A/B
  /// measurement and as the semantic reference; the computed RepairResult
  /// is byte-identical either way.
  bool use_encoded = true;

  /// Worker lanes for the per-round candidate evaluation and the sharded
  /// re-detection scans: 1 (default) = serial, 0 = one lane per hardware
  /// thread, N >= 2 = exactly N lanes. Each round evaluates all violation
  /// resolutions against the round-start state into per-violation slots
  /// (fanned out over the lanes) and then applies them serially in a
  /// canonical order, so the RepairResult — changes, alternatives, costs,
  /// null escapes — is byte-identical for every thread count.
  size_t num_threads = 1;

  /// Kernel tier of the encoded scans (see docs/simd.md); every tier
  /// repairs identically. The row path ignores it.
  common::simd::Level simd_level = common::simd::Level::kAuto;

  /// Borrowed worker pool (e.g. the Semandaq facade's shared one). nullptr
  /// = the engine resolves `num_threads` itself, spinning up a private pool
  /// for N >= 2.
  common::ThreadPool* pool = nullptr;

  /// Cooperative cancellation (common/cancel.h), checked at round
  /// boundaries and inherited by the per-round re-detection scans (kernel
  /// blocks). The engine repairs a private clone of the relation and the
  /// master copy is untouched until the caller publishes the RepairResult,
  /// so a tripped token turns Run() into Status::Cancelled /
  /// Status::DeadlineExceeded with no observable state change. nullptr =
  /// not cancellable.
  common::CancelToken* cancel = nullptr;
};

/// One cell edit made by the cleanser, with its ranked alternatives.
struct CellChange {
  relational::TupleId tid = -1;
  size_t col = 0;
  relational::Value original;
  relational::Value repaired;
  double cost = 0;
  /// Other candidate values considered for this cell, ranked by cost
  /// ascending (the pop-up list of the paper's Fig. 5).
  std::vector<std::pair<relational::Value, double>> alternatives;
};

/// Outcome of a repair run.
struct RepairResult {
  relational::Relation repaired;
  std::vector<CellChange> changes;
  double total_cost = 0;
  int iterations = 0;
  /// Violations left when the heuristic gave up (0 unless the constraint
  /// set is effectively unsatisfiable on some tuple in restricted mode).
  size_t remaining_violations = 0;
  /// Number of cells forced to NULL by the termination escape.
  size_t null_escapes = 0;
  /// Number of multi-cell equivalence classes the resolved groups merged
  /// (repair::EquivalenceClasses over the RHS code columns) — the
  /// repair-complexity statistic of the [SIGMOD'05] framework.
  size_t merged_classes = 0;
};

/// The cost-based heuristic repair algorithm of Cong et al. [VLDB'07]
/// ("BatchRepair"), the engine behind the paper's data cleanser (§2: "a
/// candidate repair is obtained from the original data using attribute value
/// modifications on the violations ... the repair algorithm aims to find a
/// repair that minimally differs from the original data").
///
/// Each round: detect violations; resolve every single-tuple violation by
/// the cheaper of (RHS := pattern constant) and (break the LHS match);
/// resolve every multi-tuple group by merging the members' RHS cells and
/// assigning the value that minimizes total weighted change cost (or break
/// a minority member's LHS match when cheaper). Rounds repeat until clean;
/// a NULL-escape pass bounds the worst case.
class BatchRepair {
 public:
  /// `cfds` are resolved internally against rel's schema.
  BatchRepair(const relational::Relation* rel, std::vector<cfd::Cfd> cfds,
              CostModel cost_model, RepairOptions options = {});

  common::Result<RepairResult> Run();

 private:
  const relational::Relation* rel_;
  std::vector<cfd::Cfd> cfds_;
  CostModel cost_model_;
  RepairOptions options_;
};

}  // namespace semandaq::repair

#endif  // SEMANDAQ_REPAIR_BATCH_REPAIR_H_
