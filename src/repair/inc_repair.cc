#include "repair/inc_repair.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace semandaq::repair {

using cfd::Cfd;
using cfd::PatternTuple;
using common::Status;
using detect::IncrementalDetector;
using relational::Relation;
using relational::Row;
using relational::TupleId;
using relational::Update;
using relational::UpdateBatch;
using relational::Value;

IncRepairEngine::IncRepairEngine(Relation* rel, std::vector<Cfd> cfds,
                                 CostModel cost_model, RepairOptions options)
    : rel_(rel),
      cfds_(std::move(cfds)),
      cost_model_(std::move(cost_model)),
      options_(std::move(options)) {}

common::Status IncRepairEngine::Start() {
  detector_ = std::make_unique<IncrementalDetector>(rel_, cfds_);
  return detector_->Initialize();
}

common::Result<IncBatchResult> IncRepairEngine::ApplyAndRepair(
    const UpdateBatch& batch) {
  if (detector_ == nullptr) {
    return Status::FailedPrecondition("IncRepairEngine::Start was not called");
  }
  IncBatchResult result;

  std::vector<TupleId> inserted;
  SEMANDAQ_RETURN_IF_ERROR(detector_->ApplyAndDetect(batch, &inserted));
  delta_.clear();
  for (TupleId tid : inserted) delta_.insert(tid);
  for (const Update& u : batch) {
    if (u.kind == Update::Kind::kModify && rel_->IsLive(u.tid)) delta_.insert(u.tid);
  }
  result.delta_tids.assign(delta_.begin(), delta_.end());
  std::sort(result.delta_tids.begin(), result.delta_tids.end());

  // Repair rounds over the delta only. Fixing one tuple can re-expose
  // another delta tuple (they may share buckets), hence the small loop;
  // detector state is updated by every edit, so reads are always current.
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    size_t edits = 0;
    for (TupleId tid : result.delta_tids) {
      if (!rel_->IsLive(tid)) continue;
      if (detector_->Vio(tid) == 0) continue;
      SEMANDAQ_ASSIGN_OR_RETURN(size_t n, RepairTuple(tid, &result));
      edits += n;
    }
    if (edits == 0) break;
  }

  // Escape pass: NULL the RHS of anything still stuck.
  for (TupleId tid : result.delta_tids) {
    if (!rel_->IsLive(tid) || detector_->Vio(tid) == 0) continue;
    for (const auto& [ci, pi] : detector_->SinglesOf(tid)) {
      const size_t rhs_col = detector_->cfds()[ci].rhs_col();
      SEMANDAQ_RETURN_IF_ERROR(
          detector_->ApplyAndDetect({Update::Modify(tid, rhs_col, Value::Null())}));
      ++result.null_escapes;
    }
    for (const auto& view : detector_->ViolatingGroupsOf(tid)) {
      SEMANDAQ_RETURN_IF_ERROR(detector_->ApplyAndDetect(
          {Update::Modify(tid, view.rhs_col, Value::Null())}));
      ++result.null_escapes;
      break;  // views were invalidated by the edit; re-read next round
    }
  }

  // Residual accounting and change-log costs.
  for (TupleId tid : result.delta_tids) {
    if (rel_->IsLive(tid)) {
      result.remaining_violations += static_cast<size_t>(detector_->Vio(tid));
    }
  }
  for (CellChange& ch : result.changes) {
    ch.repaired = rel_->cell(ch.tid, ch.col);
    ch.cost = cost_model_.CellChangeCost(ch.col, ch.original, ch.repaired);
    result.total_cost += ch.cost;
  }
  return result;
}

common::Result<size_t> IncRepairEngine::RepairTuple(TupleId tid,
                                                    IncBatchResult* result) {
  size_t edits = 0;
  auto record_change = [&](size_t col, const Value& original,
                           std::vector<std::pair<Value, double>> alternatives) {
    for (CellChange& ch : result->changes) {
      if (ch.tid == tid && ch.col == col) {
        if (!alternatives.empty()) ch.alternatives = std::move(alternatives);
        return;
      }
    }
    CellChange ch;
    ch.tid = tid;
    ch.col = col;
    ch.original = original;
    ch.alternatives = std::move(alternatives);
    result->changes.push_back(std::move(ch));
  };

  // Single-tuple violations: set the RHS to the pattern constant (the
  // cheaper LHS option of BatchRepair needs column statistics; for the
  // delta-local path the forced constant is the faithful [VLDB'07] move).
  for (const auto& [ci, pi] : detector_->SinglesOf(tid)) {
    const Cfd& c = detector_->cfds()[ci];
    const PatternTuple& pt = c.tableau()[pi];
    const Value original = rel_->cell(tid, c.rhs_col());
    record_change(c.rhs_col(), original,
                  {{pt.rhs.constant(),
                    cost_model_.CellChangeCost(c.rhs_col(), original,
                                               pt.rhs.constant())}});
    SEMANDAQ_RETURN_IF_ERROR(detector_->ApplyAndDetect(
        {Update::Modify(tid, c.rhs_col(), pt.rhs.constant())}));
    ++edits;
  }

  // Multi-tuple violations: adopt the value pinned by the immutable
  // majority; if the frozen tuples disagree among themselves, escape via
  // the LHS. Each edit invalidates the views, so re-read after every fix.
  for (int guard = 0; guard < 8; ++guard) {
    auto views = detector_->ViolatingGroupsOf(tid);
    if (views.empty()) break;
    const auto& view = views.front();

    // Frozen = members outside the delta. Tallied by exact value equality
    // in member order (a display-keyed map would conflate distinct values
    // that render alike, e.g. the int 1 and the string "1", and misread a
    // disagreeing frozen group as unanimous).
    std::vector<std::pair<Value, int64_t>> frozen;  // first-occurrence order
    for (TupleId member : *view.members) {
      if (delta_.count(member) > 0) continue;
      const Value& v = rel_->cell(member, view.rhs_col);
      if (v.is_null()) continue;
      auto it = std::find_if(frozen.begin(), frozen.end(),
                             [&](const auto& f) { return f.first == v; });
      if (it == frozen.end()) {
        frozen.emplace_back(v, 1);
      } else {
        ++it->second;
      }
    }

    const Value original_rhs = rel_->cell(tid, view.rhs_col);
    if (frozen.size() > 1) {
      // Clean data disagrees with itself (it was not actually clean):
      // move this tuple out of the group.
      const size_t col = view.escape_lhs_col;
      record_change(col, rel_->cell(tid, col), {});
      SEMANDAQ_RETURN_IF_ERROR(
          detector_->ApplyAndDetect({Update::Modify(tid, col, Value::Null())}));
      ++result->null_escapes;
      ++edits;
      continue;
    }

    Value target;
    std::vector<std::pair<Value, double>> alternatives;
    if (frozen.size() == 1) {
      target = frozen.front().first;
    } else {
      // Group is all-delta: pick the cheapest consensus value by weighted
      // change cost, exactly as BatchRepair does. The candidates come out
      // of the detector's unordered tally, so order them first — cost ties
      // must break the same way on every platform and run.
      std::vector<Value> candidates;
      candidates.reserve(view.rhs_counts->size());
      for (const auto& [v, n] : *view.rhs_counts) candidates.push_back(v);
      std::sort(candidates.begin(), candidates.end(),
                [](const Value& a, const Value& b) {
                  const int c = a.Compare(b);
                  if (c != 0) return c < 0;
                  // Compare coerces numerics (1 == 1.0); fall back to the
                  // rendering for a total order over distinct values.
                  return a.ToDisplayString() < b.ToDisplayString();
                });
      double best_cost = -1;
      for (const Value& v : candidates) {
        double cost = 0;
        for (TupleId member : *view.members) {
          if (delta_.count(member) == 0) continue;
          cost += cost_model_.CellChangeCost(view.rhs_col,
                                             rel_->cell(member, view.rhs_col), v);
        }
        alternatives.emplace_back(v, cost);
        if (best_cost < 0 || cost < best_cost) {
          best_cost = cost;
          target = v;
        }
      }
      std::stable_sort(alternatives.begin(), alternatives.end(),
                       [](const auto& a, const auto& b) { return a.second < b.second; });
      if (alternatives.size() > options_.alternatives_k) {
        alternatives.resize(options_.alternatives_k);
      }
    }
    if (original_rhs == target) break;  // this tuple already agrees
    record_change(view.rhs_col, original_rhs, std::move(alternatives));
    SEMANDAQ_RETURN_IF_ERROR(detector_->ApplyAndDetect(
        {Update::Modify(tid, view.rhs_col, target)}));
    ++edits;
  }
  return edits;
}

common::Result<IncRepairResult> IncRepair::Run(const UpdateBatch& batch) {
  Relation updated = rel_->Clone();
  IncRepairEngine engine(&updated, cfds_, cost_model_, options_);
  SEMANDAQ_RETURN_IF_ERROR(engine.Start());
  SEMANDAQ_ASSIGN_OR_RETURN(IncBatchResult inc, engine.ApplyAndRepair(batch));

  IncRepairResult out;
  out.delta_tids = std::move(inc.delta_tids);
  out.repair.changes = std::move(inc.changes);
  out.repair.total_cost = inc.total_cost;
  out.repair.null_escapes = inc.null_escapes;
  out.repair.remaining_violations = inc.remaining_violations;
  out.repair.repaired = std::move(updated);
  return out;
}

}  // namespace semandaq::repair
