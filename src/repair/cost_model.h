#ifndef SEMANDAQ_REPAIR_COST_MODEL_H_
#define SEMANDAQ_REPAIR_COST_MODEL_H_

#include <vector>

#include "relational/dictionary.h"
#include "relational/encoded_relation.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace semandaq::repair {

/// Tuning knobs of the repair cost model.
struct CostModelOptions {
  /// Per-column weights w(t, A) (confidence in the attribute's accuracy, as
  /// in Bohannon et al. [SIGMOD'05] / Cong et al. [VLDB'07]). Missing
  /// entries default to `default_weight`.
  std::vector<double> attr_weights;
  double default_weight = 1.0;

  /// Cost surcharge multiplier for repairing a cell to NULL (the
  /// termination-guaranteeing "don't know" value of [VLDB'07]); keeps NULL
  /// escapes as a last resort.
  double null_penalty = 1.5;
};

/// The repair cost model of the data cleanser (paper §2: "these alternatives
/// are ranked according to the cost model used in the underlying repair
/// algorithms"): cost(v -> v') = w(A) * dist(v, v') with dist the
/// Damerau-Levenshtein distance normalized by max(|v|, |v'|), so cost is in
/// [0, w(A)] for string repairs. Numeric cells use identity-0 / change-1.
class CostModel {
 public:
  explicit CostModel(const relational::Schema& schema, CostModelOptions options = {});

  /// Cost of changing column `col` from `from` to `to`. Zero when equal.
  double CellChangeCost(size_t col, const relational::Value& from,
                        const relational::Value& to) const;

  /// Code-level fast path of CellChangeCost through one column's shared
  /// dictionary: equal codes are equal values (dictionaries are injective),
  /// so the zero-cost case needs no decode at all; unequal codes decode
  /// once and fall into the value path. Both codes must have been issued by
  /// `dict` (or be kNullCode).
  double CellChangeCostCoded(size_t col, relational::Code from,
                             relational::Code to,
                             const relational::Dictionary& dict) const;

  /// Sum of per-cell change costs between two rows of this schema.
  double RowDistance(const relational::Row& a, const relational::Row& b) const;

  /// Code-level fast path of RowDistance over a dictionary-encoded
  /// snapshot: cells of `a` and `b` with equal codes short-circuit to zero
  /// cost without hydrating either row; only disagreeing cells decode.
  double RowDistance(const relational::EncodedRelation& enc,
                     relational::TupleId a, relational::TupleId b) const;

  double weight(size_t col) const {
    return col < options_.attr_weights.size() ? options_.attr_weights[col]
                                              : options_.default_weight;
  }

  const CostModelOptions& options() const { return options_; }

 private:
  relational::Schema schema_;
  CostModelOptions options_;
};

}  // namespace semandaq::repair

#endif  // SEMANDAQ_REPAIR_COST_MODEL_H_
