#include "repair/cost_model.h"

#include "common/string_util.h"

namespace semandaq::repair {

using relational::DataType;
using relational::Value;

CostModel::CostModel(const relational::Schema& schema, CostModelOptions options)
    : schema_(schema), options_(std::move(options)) {}

double CostModel::CellChangeCost(size_t col, const Value& from, const Value& to) const {
  if (from == to) return 0.0;
  const double w = weight(col);
  if (to.is_null() || from.is_null()) {
    // Introducing or overwriting NULL: a full change, with the NULL escape
    // surcharged so constant repairs win when available.
    return w * (to.is_null() ? options_.null_penalty : 1.0);
  }
  if (from.type() == DataType::kString && to.type() == DataType::kString) {
    return w * common::NormalizedEditDistance(from.AsString(), to.AsString());
  }
  return w;  // numeric or mixed-type change: unit cost
}

double CostModel::CellChangeCostCoded(size_t col, relational::Code from,
                                      relational::Code to,
                                      const relational::Dictionary& dict) const {
  if (from == to) return 0.0;  // injective codes: equal code <=> equal value
  return CellChangeCost(col, dict.Decode(from), dict.Decode(to));
}

double CostModel::RowDistance(const relational::Row& a, const relational::Row& b) const {
  double total = 0.0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t c = 0; c < n; ++c) total += CellChangeCost(c, a[c], b[c]);
  return total;
}

double CostModel::RowDistance(const relational::EncodedRelation& enc,
                              relational::TupleId a, relational::TupleId b) const {
  double total = 0.0;
  const size_t n = enc.num_columns();
  for (size_t c = 0; c < n; ++c) {
    const relational::Code ca = enc.code(a, c);
    const relational::Code cb = enc.code(b, c);
    if (ca == cb) continue;  // equal codes: no decode, no edit distance
    total += CellChangeCost(c, enc.Decode(c, ca), enc.Decode(c, cb));
  }
  return total;
}

}  // namespace semandaq::repair
