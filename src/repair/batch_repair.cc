#include "repair/batch_repair.h"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_map>

#include "common/thread_pool.h"
#include "detect/native_detector.h"
#include "relational/encoded_relation.h"
#include "repair/equivalence.h"

namespace semandaq::repair {

namespace {

using cfd::Cfd;
using cfd::PatternTuple;
using common::Result;
using common::Status;
using detect::SingleViolation;
using detect::ViolationGroup;
using detect::ViolationTable;
using relational::Code;
using relational::EncodedRelation;
using relational::kNullCode;
using relational::Relation;
using relational::Row;
using relational::TupleId;
using relational::Value;

/// A candidate assignment for one cell with its cost.
struct Candidate {
  Value value;
  double cost = 0;
};

/// Phase-A output for one single-tuple violation: the resolution decided
/// against the round-start state, not yet applied.
struct SingleEval {
  bool actionable = false;
  double rhs_cost = 0;
  /// Best LHS break, when one exists (< 0 = none considered/found).
  double lhs_cost = -1;
  size_t lhs_col = 0;
  Value lhs_value;
  std::vector<std::pair<Value, double>> alts;
};

/// One live group member at round start. `label` is a uint32 stand-in for
/// the member's RHS value — the dictionary code in encoded mode, a
/// first-occurrence ordinal in the row fallback — with 0 (kNullCode)
/// reserved for NULL in both. Label equality means value equality either
/// way, which is what lets the apply phase and the equivalence classes run
/// on integers.
struct GroupMember {
  TupleId tid = -1;
  uint32_t label = 0;
  bool is_mutable = true;
};

/// Phase-A output for one multi-tuple violation group.
struct GroupEval {
  bool actionable = false;
  /// Immutable members disagree among themselves: the RHS cannot be
  /// repaired at all, mutable members leave via an LHS break.
  bool frozen_conflict = false;
  std::vector<GroupMember> members;
  Value best;
  uint32_t best_label = 0;
  double best_cost = 0;
  double escape_cost = 0;
  std::vector<size_t> escapees;  ///< indices into `members`
  std::vector<std::pair<Value, double>> alts;
};

class RepairEngine {
 public:
  RepairEngine(const Relation* rel, std::vector<Cfd> cfds, CostModel cost_model,
               RepairOptions options)
      : original_(rel),
        work_(rel->Clone()),
        cfds_(std::move(cfds)),
        cost_model_(std::move(cost_model)),
        options_(std::move(options)) {}

  Result<RepairResult> Run() {
    SEMANDAQ_RETURN_IF_ERROR(cfd::ResolveAll(&cfds_, work_.schema()));
    work_.EnsureHydrated();  // Phase A reads rows from worker lanes
    pool_ = common::ResolvePool(options_.pool, options_.num_threads, &owned_pool_);
    if (options_.use_encoded) {
      enc_ = std::make_unique<EncodedRelation>(&work_, pool_, options_.cancel);
    }
    kernels_ = &common::simd::KernelsFor(options_.simd_level);
    ComputeFrequentValues();

    // One detector for the whole run: the encoded snapshot attached here is
    // kept warm through every applied edit (ApplyChange re-encodes exactly
    // the touched cell), so each round's re-detection is a warm kernel scan
    // instead of a cold per-round re-encode.
    detect::DetectorOptions dopts;
    dopts.use_encoded = options_.use_encoded;
    dopts.num_threads = options_.num_threads;
    dopts.simd_level = options_.simd_level;
    // The engine reads current cells (or codes) itself; decoding a Value
    // per group member per round would dominate re-detection on the mega
    // groups low-cardinality LHS keys produce.
    dopts.materialize_group_rhs = false;
    // The re-detection scans inherit the token (kernel-block granularity);
    // the round loop below adds the round-boundary checkpoint.
    dopts.cancel = options_.cancel;
    detect::NativeDetector detector(&work_, cfds_, dopts);
    detector.set_thread_pool(pool_);
    if (enc_) detector.set_encoded(enc_.get());

    RepairResult result;
    int it = 0;
    for (; it < options_.max_iterations; ++it) {
      SEMANDAQ_RETURN_IF_CANCELLED(options_.cancel);
      SEMANDAQ_ASSIGN_OR_RETURN(ViolationTable table, detector.Detect());
      if (table.TotalVio() == 0) break;
      const size_t edits = ResolveRound(table, &result);
      if (edits == 0) break;  // stuck: defer to the escape pass
    }
    result.iterations = it;

    // Termination escape. Overlapping embedded FDs can constrain the same
    // cell in incompatible ways; whatever is left now gets the NULL
    // treatment of [VLDB'07] — but surgically: only the cells that actually
    // disagree with their group's majority, never whole groups.
    {
      SEMANDAQ_ASSIGN_OR_RETURN(ViolationTable table, detector.Detect());
      if (table.TotalVio() > 0) EscapePass(table, &result);
    }

    // Final audit of what is left (non-zero only when frozen tuples pin
    // irreconcilable values).
    {
      SEMANDAQ_ASSIGN_OR_RETURN(ViolationTable table, detector.Detect());
      result.remaining_violations = static_cast<size_t>(table.TotalVio());
    }

    // Materialize the change log against the original relation.
    for (const auto& [cell, alts] : change_alternatives_) {
      const TupleId tid = static_cast<TupleId>(cell >> 16);
      const size_t col = static_cast<size_t>(cell & 0xFFFF);
      CellChange ch;
      ch.tid = tid;
      ch.col = col;
      ch.original = original_->cell(tid, col);
      ch.repaired = work_.cell(tid, col);
      if (ch.original == ch.repaired) continue;  // net no-op across rounds
      ch.cost = cost_model_.CellChangeCost(col, ch.original, ch.repaired);
      ch.alternatives = alts;
      result.total_cost += ch.cost;
      result.changes.push_back(std::move(ch));
    }
    std::sort(result.changes.begin(), result.changes.end(),
              [](const CellChange& a, const CellChange& b) {
                return a.tid != b.tid ? a.tid < b.tid : a.col < b.col;
              });
    result.merged_classes = eq_.NumMergedClasses();
    result.repaired = std::move(work_);
    return result;
  }

 private:
  static uint64_t CellKey(TupleId tid, size_t col) {
    return (static_cast<uint64_t>(tid) << 16) | static_cast<uint64_t>(col);
  }

  bool Mutable(TupleId tid) const {
    return !options_.restrict_to_mutable || options_.mutable_tids.count(tid) > 0;
  }

  /// One repair round over a fresh violation table, in two phases.
  ///
  /// Phase A evaluates every violation's resolution against the round-start
  /// state only — each slot is a pure function of (table, work_ at round
  /// start, frequent_, cost model), so the slots fan out over the worker
  /// pool and land byte-identical for every thread count. Phase B then
  /// applies the decisions serially in one canonical order (singles by
  /// (cfd, pattern, tid), then groups by (fd group, first member)), with
  /// the pending-target/touched-cell conflict machinery arbitrating cells
  /// claimed by more than one violation. The canonical order also erases
  /// the emission-order difference between the encoded and row detectors,
  /// which is what makes encoded/row runs repair identically.
  size_t ResolveRound(const ViolationTable& table, RepairResult* result) {
    touched_this_round_.clear();
    pending_targets_.clear();

    std::vector<const SingleViolation*> singles;
    singles.reserve(table.singles().size());
    for (const SingleViolation& sv : table.singles()) singles.push_back(&sv);
    std::sort(singles.begin(), singles.end(),
              [](const SingleViolation* a, const SingleViolation* b) {
                if (a->cfd_index != b->cfd_index) return a->cfd_index < b->cfd_index;
                if (a->pattern_index != b->pattern_index)
                  return a->pattern_index < b->pattern_index;
                return a->tid < b->tid;
              });
    std::vector<const ViolationGroup*> groups;
    groups.reserve(table.groups().size());
    for (const ViolationGroup& vg : table.groups()) groups.push_back(&vg);
    std::sort(groups.begin(), groups.end(),
              [](const ViolationGroup* a, const ViolationGroup* b) {
                if (a->fd_group != b->fd_group) return a->fd_group < b->fd_group;
                const TupleId ta = a->members.empty() ? -1 : a->members.front();
                const TupleId tb = b->members.empty() ? -1 : b->members.front();
                return ta < tb;
              });

    // Phase A: evaluate.
    std::vector<SingleEval> single_evals(singles.size());
    std::vector<GroupEval> group_evals(groups.size());
    const size_t n_slots = singles.size() + groups.size();
    auto eval_slot = [&](size_t i) {
      if (i < singles.size()) {
        EvalSingle(*singles[i], &single_evals[i]);
      } else {
        EvalGroup(*groups[i - singles.size()], &group_evals[i - singles.size()]);
      }
    };
    if (pool_ != nullptr) {
      pool_->Run(n_slots, eval_slot);
    } else {
      for (size_t i = 0; i < n_slots; ++i) eval_slot(i);
    }

    // Phase B: apply in canonical order.
    size_t edits = 0;
    for (size_t i = 0; i < singles.size(); ++i) {
      edits += ApplySingle(*singles[i], single_evals[i], result);
    }
    for (size_t i = 0; i < groups.size(); ++i) {
      edits += ApplyGroup(*groups[i], group_evals[i], result);
    }
    return edits;
  }

  void EvalSingle(const SingleViolation& sv, SingleEval* out) const {
    const Cfd& c = cfds_[static_cast<size_t>(sv.cfd_index)];
    const PatternTuple& pt = c.tableau()[static_cast<size_t>(sv.pattern_index)];
    if (!work_.IsLive(sv.tid) || !Mutable(sv.tid)) return;
    const Row& row = work_.row(sv.tid);
    for (size_t i = 0; i < c.lhs_cols().size(); ++i) {
      if (!pt.lhs[i].Matches(row[c.lhs_cols()[i]])) return;
    }
    const Value& cur = row[c.rhs_col()];
    if (cur.is_null() || cur == pt.rhs.constant()) return;

    out->actionable = true;
    out->rhs_cost = cost_model_.CellChangeCost(c.rhs_col(), cur, pt.rhs.constant());
    out->alts = RankAlternatives({{pt.rhs.constant(), out->rhs_cost}});

    // Option B: break the LHS match at a constant-pattern position.
    // Candidate replacement values: frequent column values that differ from
    // the pattern constant, and the NULL escape.
    if (!options_.enable_lhs_repairs) return;
    for (size_t i = 0; i < c.lhs_cols().size(); ++i) {
      if (!pt.lhs[i].is_constant()) continue;  // wildcard matches any value
      const size_t col = c.lhs_cols()[i];
      for (const Value& v : frequent_[col]) {
        if (v == pt.lhs[i].constant()) continue;
        const double cost = cost_model_.CellChangeCost(col, row[col], v);
        if (out->lhs_cost < 0 || cost < out->lhs_cost) {
          out->lhs_cost = cost;
          out->lhs_col = col;
          out->lhs_value = v;
        }
      }
      const double null_cost =
          cost_model_.CellChangeCost(col, row[col], Value::Null());
      if (out->lhs_cost < 0 || null_cost < out->lhs_cost) {
        out->lhs_cost = null_cost;
        out->lhs_col = col;
        out->lhs_value = Value::Null();
      }
    }
  }

  /// Returns the number of edits applied (0 when skipped/stale).
  size_t ApplySingle(const SingleViolation& sv, const SingleEval& e,
                     RepairResult* result) {
    if (!e.actionable) return 0;
    const Cfd& c = cfds_[static_cast<size_t>(sv.cfd_index)];
    const PatternTuple& pt = c.tableau()[static_cast<size_t>(sv.pattern_index)];
    const size_t rhs_col = c.rhs_col();
    if (const Value* pending = PendingTarget(sv.tid, rhs_col)) {
      if (*pending == pt.rhs.constant()) return 0;  // already decided our way
      // Conflicting demand on the RHS cell: detach the tuple from this
      // pattern via a constant-LHS position instead of flip-flopping.
      if (options_.enable_lhs_repairs) {
        for (size_t i = 0; i < c.lhs_cols().size(); ++i) {
          if (!pt.lhs[i].is_constant()) continue;
          ApplyChange(sv.tid, c.lhs_cols()[i], Value::Null(), {});
          ++result->null_escapes;
          return 1;
        }
      }
      return 0;  // all-wildcard LHS: leave it to the escape pass
    }
    if (touched_this_round_.count(CellKey(sv.tid, rhs_col)) > 0) return 0;
    if (e.lhs_cost >= 0 && e.lhs_cost < e.rhs_cost &&
        touched_this_round_.count(CellKey(sv.tid, e.lhs_col)) == 0) {
      ApplyChange(sv.tid, e.lhs_col, e.lhs_value, {});
      return 1;
    }
    ApplyChange(sv.tid, rhs_col, pt.rhs.constant(), e.alts);
    return 1;
  }

  /// Round-start RHS label of a live member: the dictionary code in encoded
  /// mode; in the row fallback an ordinal assigned per group by first
  /// occurrence (via `ords`, the group-local value->ordinal map).
  uint32_t MemberLabel(
      TupleId tid, size_t rhs_col,
      std::unordered_map<Value, uint32_t, relational::ValueHash>* ords) const {
    if (enc_) return enc_->code(tid, rhs_col);
    const Value& v = work_.cell(tid, rhs_col);
    if (v.is_null()) return kNullCode;
    return ords->emplace(v, static_cast<uint32_t>(ords->size()) + 1).first->second;
  }

  const Value& LabelValue(size_t rhs_col, uint32_t label, TupleId carrier) const {
    if (enc_) return enc_->Decode(rhs_col, label);
    return work_.cell(carrier, rhs_col);
  }

  void EvalGroup(const ViolationGroup& vg, GroupEval* out) const {
    if (vg.cfd_index < 0) return;
    const Cfd& c = cfds_[static_cast<size_t>(vg.cfd_index)];
    const size_t rhs_col = c.rhs_col();

    std::unordered_map<Value, uint32_t, relational::ValueHash> ords;
    out->members.reserve(vg.members.size());
    for (TupleId tid : vg.members) {
      if (!work_.IsLive(tid)) continue;
      out->members.push_back({tid, MemberLabel(tid, rhs_col, &ords), Mutable(tid)});
    }

    // Distinct non-NULL RHS labels in first-occurrence order, with a
    // carrier tid per label so the row fallback can read the value back.
    // Counting runs on integers: the encoded path gathers the member codes
    // into a scratch column and lets CountEq32 tally each distinct code,
    // which is the same kernel pass the detector's partner counts use.
    std::vector<uint32_t> distinct;
    std::vector<TupleId> carrier;
    std::vector<Code> codes;  // the gathered scratch column (all members)
    std::vector<Code> mut_codes;
    codes.reserve(out->members.size());
    mut_codes.reserve(out->members.size());
    int64_t mut_nulls = 0;
    for (const GroupMember& m : out->members) {
      codes.push_back(m.label);
      if (m.is_mutable) {
        mut_codes.push_back(m.label);
        if (m.label == kNullCode) ++mut_nulls;
      }
      if (m.label == kNullCode) continue;
      if (std::find(distinct.begin(), distinct.end(), m.label) == distinct.end()) {
        distinct.push_back(m.label);
        carrier.push_back(m.tid);
      }
    }
    if (distinct.size() < 2) return;  // already resolved

    std::vector<int64_t> mut_counts(distinct.size());
    for (size_t d = 0; d < distinct.size(); ++d) {
      mut_counts[d] = static_cast<int64_t>(
          kernels_->CountEq32(mut_codes.data(), mut_codes.size(), distinct[d]));
    }

    // Frozen members pin the target: if they disagree among themselves the
    // group cannot be repaired on the RHS at all.
    std::vector<uint32_t> frozen;
    for (const GroupMember& m : out->members) {
      if (m.is_mutable || m.label == kNullCode) continue;
      if (std::find(frozen.begin(), frozen.end(), m.label) == frozen.end()) {
        frozen.push_back(m.label);
      }
    }
    if (frozen.size() > 1) {
      out->actionable = true;
      out->frozen_conflict = true;
      return;
    }

    // Candidate targets with total weighted rewrite cost over the mutable
    // members, summed per distinct label (count x per-value cost — one
    // CellChangeCost per (label, candidate) pair instead of one per member).
    auto total_cost = [&](uint32_t target, const Value& target_v) {
      double cost = 0;
      for (size_t d = 0; d < distinct.size(); ++d) {
        if (mut_counts[d] == 0) continue;
        cost += static_cast<double>(mut_counts[d]) *
                (enc_ ? cost_model_.CellChangeCostCoded(
                            rhs_col, distinct[d], target, enc_->dictionary(rhs_col))
                      : cost_model_.CellChangeCost(
                            rhs_col, LabelValue(rhs_col, distinct[d], carrier[d]),
                            target_v));
      }
      if (mut_nulls > 0) {
        cost += static_cast<double>(mut_nulls) *
                cost_model_.CellChangeCost(rhs_col, Value::Null(), target_v);
      }
      return cost;
    };

    std::vector<Candidate> candidates;
    std::vector<uint32_t> candidate_labels;
    if (frozen.size() == 1) {
      size_t d = 0;
      while (distinct[d] != frozen.front()) ++d;
      candidates.push_back(
          {LabelValue(rhs_col, frozen.front(), carrier[d]),
           total_cost(frozen.front(), LabelValue(rhs_col, frozen.front(), carrier[d]))});
      candidate_labels.push_back(frozen.front());
    } else {
      candidates.reserve(distinct.size());
      candidate_labels.reserve(distinct.size());
      std::vector<size_t> order(distinct.size());
      for (size_t d = 0; d < distinct.size(); ++d) order[d] = d;
      std::vector<double> costs(distinct.size());
      for (size_t d = 0; d < distinct.size(); ++d) {
        costs[d] = total_cost(distinct[d], LabelValue(rhs_col, distinct[d], carrier[d]));
      }
      // Ties break to the first-occurring value — stable under every thread
      // count and both detector paths, unlike the old unstable sort.
      std::stable_sort(order.begin(), order.end(),
                       [&](size_t a, size_t b) { return costs[a] < costs[b]; });
      for (size_t d : order) {
        candidates.push_back({LabelValue(rhs_col, distinct[d], carrier[d]), costs[d]});
        candidate_labels.push_back(distinct[d]);
      }
    }
    out->actionable = true;
    out->best = candidates.front().value;
    out->best_label = candidate_labels.front();
    out->best_cost = candidates.front().cost;
    out->alts = RankAlternatives(candidates);

    // Alternative resolution (the attribute-modification option of
    // [VLDB'07]): move the disagreeing members out of the group by breaking
    // the LHS key instead of rewriting their RHS. Wins when the RHS carries
    // far more weight than the LHS.
    if (options_.enable_lhs_repairs) {
      const size_t escape_col = c.lhs_cols().back();
      for (size_t i = 0; i < out->members.size(); ++i) {
        const GroupMember& m = out->members[i];
        if (!m.is_mutable || m.label == out->best_label) continue;
        out->escapees.push_back(i);
        out->escape_cost += cost_model_.CellChangeCost(
            escape_col, work_.cell(m.tid, escape_col), Value::Null());
      }
    }
  }

  /// Returns the number of edits applied.
  size_t ApplyGroup(const ViolationGroup& vg, const GroupEval& e,
                    RepairResult* result) {
    if (!e.actionable) return 0;
    const Cfd& c = cfds_[static_cast<size_t>(vg.cfd_index)];
    const size_t rhs_col = c.rhs_col();
    const size_t escape_col = c.lhs_cols().back();

    if (e.frozen_conflict) {
      // Move mutable members out of the group by breaking the LHS key.
      size_t edits = 0;
      if (options_.enable_lhs_repairs) {
        for (const GroupMember& m : e.members) {
          if (!m.is_mutable) continue;
          ApplyChange(m.tid, escape_col, Value::Null(), {});
          ++result->null_escapes;
          ++edits;
        }
      }
      return edits;
    }

    if (options_.enable_lhs_repairs && !e.escapees.empty() &&
        e.escape_cost < e.best_cost) {
      size_t edits = 0;
      for (size_t i : e.escapees) {
        const GroupMember& m = e.members[i];
        if (touched_this_round_.count(CellKey(m.tid, escape_col)) > 0) continue;
        ApplyChange(m.tid, escape_col, Value::Null(), {});
        ++result->null_escapes;
        ++edits;
      }
      if (edits > 0) return edits;
    }

    size_t edits = 0;
    std::vector<TupleId> aligned;  // members whose RHS cell ends at e.best
    aligned.reserve(e.members.size());
    for (const GroupMember& m : e.members) {
      if (m.label == e.best_label) {
        aligned.push_back(m.tid);
        continue;
      }
      if (!m.is_mutable) continue;
      if (const Value* pending = PendingTarget(m.tid, rhs_col)) {
        if (*pending == e.best) {
          aligned.push_back(m.tid);
          continue;
        }
        // Another FD group already claimed this cell with a different
        // value: the tuple's LHS attributes are mutually inconsistent
        // (e.g. a Denver city with a Phoenix zip). Detach it from THIS
        // group by clearing the group's key attribute.
        if (options_.enable_lhs_repairs) {
          ApplyChange(m.tid, escape_col, Value::Null(), {});
          ++result->null_escapes;
          ++edits;
        }
        continue;
      }
      if (touched_this_round_.count(CellKey(m.tid, rhs_col)) > 0) continue;
      ApplyChange(m.tid, rhs_col, e.best, e.alts);
      aligned.push_back(m.tid);
      ++edits;
    }
    // The resolved members' RHS cells now agree in any extension of this
    // repair: one equivalence class, bulk-linked on the integer label (the
    // [SIGMOD'05] bookkeeping, without a single Value hash — groups run
    // into the thousands of members, so the per-member union walk was the
    // apply phase's hot path).
    if (aligned.size() > 1) {
      eq_.MergeUniform(aligned, rhs_col);
      eq_.SetTarget({aligned.front(), rhs_col}, e.best);
    }
    return edits;
  }

  /// The surgical NULL pass over whatever detection still flags, in the
  /// same canonical violation order as the rounds.
  void EscapePass(const ViolationTable& table, RepairResult* result) {
    std::vector<const SingleViolation*> singles;
    for (const SingleViolation& sv : table.singles()) singles.push_back(&sv);
    std::sort(singles.begin(), singles.end(),
              [](const SingleViolation* a, const SingleViolation* b) {
                if (a->cfd_index != b->cfd_index) return a->cfd_index < b->cfd_index;
                if (a->pattern_index != b->pattern_index)
                  return a->pattern_index < b->pattern_index;
                return a->tid < b->tid;
              });
    std::vector<const ViolationGroup*> groups;
    for (const ViolationGroup& vg : table.groups()) groups.push_back(&vg);
    std::sort(groups.begin(), groups.end(),
              [](const ViolationGroup* a, const ViolationGroup* b) {
                if (a->fd_group != b->fd_group) return a->fd_group < b->fd_group;
                const TupleId ta = a->members.empty() ? -1 : a->members.front();
                const TupleId tb = b->members.empty() ? -1 : b->members.front();
                return ta < tb;
              });

    // Detect-time RHS snapshot per group, taken before ANY escape edit:
    // the detector no longer materializes member_rhs for this engine, and
    // the majorities below must not see edits this very pass applies.
    std::vector<std::vector<Value>> group_rhs(groups.size());
    for (size_t g = 0; g < groups.size(); ++g) {
      const Cfd& c = cfds_[static_cast<size_t>(groups[g]->cfd_index)];
      group_rhs[g].reserve(groups[g]->members.size());
      for (TupleId tid : groups[g]->members) {
        group_rhs[g].push_back(work_.cell(tid, c.rhs_col()));
      }
    }

    for (const SingleViolation* sv : singles) {
      const Cfd& c = cfds_[static_cast<size_t>(sv->cfd_index)];
      if (!Mutable(sv->tid)) continue;
      ApplyChange(sv->tid, c.rhs_col(), Value::Null(), {});
      ++result->null_escapes;
    }
    for (size_t g = 0; g < groups.size(); ++g) {
      const ViolationGroup* vg = groups[g];
      const Cfd& c = cfds_[static_cast<size_t>(vg->cfd_index)];
      // Deterministic majority: max count, ties to the first-occurring
      // value (the old hash-iteration pick was tie-unstable).
      std::vector<const Value*> distinct;
      std::vector<int64_t> counts;
      for (const Value& v : group_rhs[g]) {
        if (v.is_null()) continue;
        size_t d = 0;
        while (d < distinct.size() && !(*distinct[d] == v)) ++d;
        if (d == distinct.size()) {
          distinct.push_back(&v);
          counts.push_back(0);
        }
        ++counts[d];
      }
      const Value* majority = nullptr;
      int64_t best_n = 0;
      for (size_t d = 0; d < distinct.size(); ++d) {
        if (counts[d] > best_n) {
          best_n = counts[d];
          majority = distinct[d];
        }
      }
      for (size_t i = 0; i < vg->members.size(); ++i) {
        if (!Mutable(vg->members[i])) continue;
        const Value& rhs = work_.cell(vg->members[i], c.rhs_col());
        if (rhs.is_null()) continue;
        if (majority != nullptr && rhs == *majority) continue;
        ApplyChange(vg->members[i], c.rhs_col(), Value::Null(), {});
        ++result->null_escapes;
      }
    }
  }

  /// Per-column frequent values from one histogram pass. In encoded mode
  /// the pass counts dictionary codes over the live code column — integer
  /// increments, no Value hashing; the row fallback counts values in the
  /// same first-occurrence-over-live order, so both paths produce the same
  /// list (count descending, ties to first occurrence).
  void ComputeFrequentValues() {
    const size_t ncols = work_.schema().size();
    frequent_.resize(ncols);
    if (enc_) {
      for (size_t col = 0; col < ncols; ++col) {
        const relational::CodeColumn& codes = enc_->column(col);
        std::vector<int64_t> counts(enc_->dictionary(col).size() + 1, 0);
        std::vector<Code> order;
        enc_->ForEachLive([&](TupleId tid) {
          const Code code = codes[static_cast<size_t>(tid)];
          if (code == kNullCode) return;
          if (counts[code]++ == 0) order.push_back(code);
        });
        std::stable_sort(order.begin(), order.end(),
                         [&](Code a, Code b) { return counts[a] > counts[b]; });
        const size_t keep = std::min<size_t>(order.size(), 4);
        for (size_t i = 0; i < keep; ++i) {
          frequent_[col].push_back(enc_->Decode(col, order[i]));
        }
      }
      return;
    }
    std::vector<std::unordered_map<Value, size_t, relational::ValueHash>> slot(ncols);
    std::vector<std::vector<std::pair<Value, int64_t>>> items(ncols);
    work_.ForEach([&](TupleId, const Row& row) {
      for (size_t c = 0; c < ncols; ++c) {
        if (row[c].is_null()) continue;
        auto [it, fresh] = slot[c].emplace(row[c], items[c].size());
        if (fresh) items[c].emplace_back(row[c], 0);
        ++items[c][it->second].second;
      }
    });
    for (size_t c = 0; c < ncols; ++c) {
      std::stable_sort(items[c].begin(), items[c].end(),
                       [](const auto& a, const auto& b) { return a.second > b.second; });
      const size_t keep = std::min<size_t>(items[c].size(), 4);
      for (size_t i = 0; i < keep; ++i) frequent_[c].push_back(items[c][i].first);
    }
  }

  void ApplyChange(TupleId tid, size_t col, Value v,
                   std::vector<std::pair<Value, double>> alternatives) {
    pending_targets_[CellKey(tid, col)] = v;
    (void)work_.SetCell(tid, col, std::move(v));
    if (enc_) enc_->ApplyCell(tid, col);  // keep the snapshot warm
    touched_this_round_.insert(CellKey(tid, col));
    auto& slot = change_alternatives_[CellKey(tid, col)];
    if (!alternatives.empty() || slot.empty()) slot = std::move(alternatives);
  }

  /// This round's decision for a cell, if one was already made. Two
  /// overlapping FD groups demanding different values for the same cell is
  /// the conflict the equivalence classes of [VLDB'07] exist to catch; we
  /// detect it here and resolve by detaching the tuple via an LHS edit.
  const Value* PendingTarget(TupleId tid, size_t col) const {
    auto it = pending_targets_.find(CellKey(tid, col));
    return it == pending_targets_.end() ? nullptr : &it->second;
  }

  std::vector<std::pair<Value, double>> RankAlternatives(
      const std::vector<Candidate>& cands) const {
    std::vector<std::pair<Value, double>> out;
    out.reserve(cands.size());
    for (const Candidate& c : cands) out.emplace_back(c.value, c.cost);
    std::stable_sort(out.begin(), out.end(),
                     [](const auto& a, const auto& b) { return a.second < b.second; });
    if (out.size() > options_.alternatives_k) out.resize(options_.alternatives_k);
    return out;
  }

  const Relation* original_;
  Relation work_;
  std::vector<Cfd> cfds_;
  CostModel cost_model_;
  RepairOptions options_;

  std::unique_ptr<common::ThreadPool> owned_pool_;
  common::ThreadPool* pool_ = nullptr;                 // resolved lane source
  std::unique_ptr<EncodedRelation> enc_;               // warm across rounds
  const common::simd::Kernels* kernels_ = nullptr;
  EquivalenceClasses eq_;

  std::vector<std::vector<Value>> frequent_;  // per column, most frequent first
  std::unordered_set<uint64_t> touched_this_round_;
  std::unordered_map<uint64_t, Value> pending_targets_;  // per round
  /// cell key -> ranked alternatives recorded when the cell was changed.
  std::map<uint64_t, std::vector<std::pair<Value, double>>> change_alternatives_;
};

}  // namespace

BatchRepair::BatchRepair(const Relation* rel, std::vector<Cfd> cfds,
                         CostModel cost_model, RepairOptions options)
    : rel_(rel),
      cfds_(std::move(cfds)),
      cost_model_(std::move(cost_model)),
      options_(std::move(options)) {}

common::Result<RepairResult> BatchRepair::Run() {
  RepairEngine engine(rel_, cfds_, cost_model_, options_);
  return engine.Run();
}

}  // namespace semandaq::repair
