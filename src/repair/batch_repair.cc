#include "repair/batch_repair.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "detect/native_detector.h"

namespace semandaq::repair {

namespace {

using cfd::Cfd;
using cfd::PatternTuple;
using common::Result;
using common::Status;
using detect::SingleViolation;
using detect::ViolationGroup;
using detect::ViolationTable;
using relational::Relation;
using relational::Row;
using relational::TupleId;
using relational::Value;

/// A candidate assignment for one cell with its cost.
struct Candidate {
  Value value;
  double cost = 0;
};

class RepairEngine {
 public:
  RepairEngine(const Relation* rel, std::vector<Cfd> cfds, CostModel cost_model,
               RepairOptions options)
      : original_(rel),
        work_(rel->Clone()),
        cfds_(std::move(cfds)),
        cost_model_(std::move(cost_model)),
        options_(std::move(options)) {}

  Result<RepairResult> Run() {
    SEMANDAQ_RETURN_IF_ERROR(cfd::ResolveAll(&cfds_, work_.schema()));
    ComputeFrequentValues();

    RepairResult result;
    int it = 0;
    for (; it < options_.max_iterations; ++it) {
      detect::NativeDetector detector(&work_, cfds_);
      SEMANDAQ_ASSIGN_OR_RETURN(ViolationTable table, detector.Detect());
      if (table.TotalVio() == 0) break;
      touched_this_round_.clear();
      pending_targets_.clear();
      size_t edits = 0;
      for (const SingleViolation& sv : table.singles()) {
        edits += ResolveSingle(sv, &result);
      }
      for (const ViolationGroup& vg : table.groups()) {
        edits += ResolveGroup(vg, &result);
      }
      if (edits == 0) break;  // stuck: defer to the escape pass
    }
    result.iterations = it;

    // Termination escape. Overlapping embedded FDs can constrain the same
    // cell in incompatible ways; whatever is left now gets the NULL
    // treatment of [VLDB'07] — but surgically: only the cells that actually
    // disagree with their group's majority, never whole groups.
    {
      detect::NativeDetector detector(&work_, cfds_);
      SEMANDAQ_ASSIGN_OR_RETURN(ViolationTable table, detector.Detect());
      if (table.TotalVio() > 0) {
        for (const SingleViolation& sv : table.singles()) {
          const Cfd& c = cfds_[static_cast<size_t>(sv.cfd_index)];
          if (!Mutable(sv.tid)) continue;
          ApplyChange(sv.tid, c.rhs_col(), Value::Null(), {});
          ++result.null_escapes;
        }
        for (const ViolationGroup& vg : table.groups()) {
          const Cfd& c = cfds_[static_cast<size_t>(vg.cfd_index)];
          std::unordered_map<Value, int64_t, relational::ValueHash> freq;
          for (const Value& v : vg.member_rhs) {
            if (!v.is_null()) ++freq[v];
          }
          const Value* majority = nullptr;
          int64_t best_n = 0;
          for (const auto& [v, n] : freq) {
            if (n > best_n) {
              best_n = n;
              majority = &v;
            }
          }
          for (size_t i = 0; i < vg.members.size(); ++i) {
            if (!Mutable(vg.members[i])) continue;
            const Value& rhs = work_.cell(vg.members[i], c.rhs_col());
            if (rhs.is_null()) continue;
            if (majority != nullptr && rhs == *majority) continue;
            ApplyChange(vg.members[i], c.rhs_col(), Value::Null(), {});
            ++result.null_escapes;
          }
        }
      }
    }

    // Final audit of what is left (non-zero only when frozen tuples pin
    // irreconcilable values).
    {
      detect::NativeDetector detector(&work_, cfds_);
      SEMANDAQ_ASSIGN_OR_RETURN(ViolationTable table, detector.Detect());
      result.remaining_violations = static_cast<size_t>(table.TotalVio());
    }

    // Materialize the change log against the original relation.
    for (const auto& [cell, alts] : change_alternatives_) {
      const TupleId tid = static_cast<TupleId>(cell >> 16);
      const size_t col = static_cast<size_t>(cell & 0xFFFF);
      CellChange ch;
      ch.tid = tid;
      ch.col = col;
      ch.original = original_->cell(tid, col);
      ch.repaired = work_.cell(tid, col);
      if (ch.original == ch.repaired) continue;  // net no-op across rounds
      ch.cost = cost_model_.CellChangeCost(col, ch.original, ch.repaired);
      ch.alternatives = alts;
      result.total_cost += ch.cost;
      result.changes.push_back(std::move(ch));
    }
    std::sort(result.changes.begin(), result.changes.end(),
              [](const CellChange& a, const CellChange& b) {
                return a.tid != b.tid ? a.tid < b.tid : a.col < b.col;
              });
    result.repaired = std::move(work_);
    return result;
  }

 private:
  static uint64_t CellKey(TupleId tid, size_t col) {
    return (static_cast<uint64_t>(tid) << 16) | static_cast<uint64_t>(col);
  }

  bool Mutable(TupleId tid) const {
    return !options_.restrict_to_mutable || options_.mutable_tids.count(tid) > 0;
  }

  void ComputeFrequentValues() {
    const size_t ncols = work_.schema().size();
    std::vector<std::unordered_map<Value, int64_t, relational::ValueHash>> counts(
        ncols);
    work_.ForEach([&](TupleId, const Row& row) {
      for (size_t c = 0; c < ncols; ++c) {
        if (!row[c].is_null()) ++counts[c][row[c]];
      }
    });
    frequent_.resize(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      std::vector<std::pair<Value, int64_t>> items(counts[c].begin(), counts[c].end());
      std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
        return a.second > b.second;
      });
      const size_t keep = std::min<size_t>(items.size(), 4);
      for (size_t i = 0; i < keep; ++i) frequent_[c].push_back(items[i].first);
    }
  }

  void ApplyChange(TupleId tid, size_t col, Value v,
                   std::vector<std::pair<Value, double>> alternatives) {
    pending_targets_[CellKey(tid, col)] = v;
    (void)work_.SetCell(tid, col, std::move(v));
    touched_this_round_.insert(CellKey(tid, col));
    auto& slot = change_alternatives_[CellKey(tid, col)];
    if (!alternatives.empty() || slot.empty()) slot = std::move(alternatives);
  }

  /// This round's decision for a cell, if one was already made. Two
  /// overlapping FD groups demanding different values for the same cell is
  /// the conflict the equivalence classes of [VLDB'07] exist to catch; we
  /// detect it here and resolve by detaching the tuple via an LHS edit.
  const Value* PendingTarget(TupleId tid, size_t col) const {
    auto it = pending_targets_.find(CellKey(tid, col));
    return it == pending_targets_.end() ? nullptr : &it->second;
  }

  std::vector<std::pair<Value, double>> RankAlternatives(
      const std::vector<Candidate>& cands) const {
    std::vector<std::pair<Value, double>> out;
    out.reserve(cands.size());
    for (const Candidate& c : cands) out.emplace_back(c.value, c.cost);
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    if (out.size() > options_.alternatives_k) out.resize(options_.alternatives_k);
    return out;
  }

  /// Returns the number of edits applied (0 when skipped/stale).
  size_t ResolveSingle(const SingleViolation& sv, RepairResult* result) {
    const Cfd& c = cfds_[static_cast<size_t>(sv.cfd_index)];
    const PatternTuple& pt = c.tableau()[static_cast<size_t>(sv.pattern_index)];
    if (!work_.IsLive(sv.tid) || !Mutable(sv.tid)) return 0;
    const Row& row = work_.row(sv.tid);

    // Staleness check: earlier edits this round may have fixed it already.
    for (size_t i = 0; i < c.lhs_cols().size(); ++i) {
      if (!pt.lhs[i].Matches(row[c.lhs_cols()[i]])) return 0;
    }
    const Value& cur = row[c.rhs_col()];
    if (cur.is_null() || cur == pt.rhs.constant()) return 0;
    if (const Value* pending = PendingTarget(sv.tid, c.rhs_col())) {
      if (*pending == pt.rhs.constant()) return 0;  // already decided our way
      // Conflicting demand on the RHS cell: detach the tuple from this
      // pattern via a constant-LHS position instead of flip-flopping.
      if (options_.enable_lhs_repairs) {
        for (size_t i = 0; i < c.lhs_cols().size(); ++i) {
          if (!pt.lhs[i].is_constant()) continue;
          ApplyChange(sv.tid, c.lhs_cols()[i], Value::Null(), {});
          ++result->null_escapes;
          return 1;
        }
      }
      return 0;  // all-wildcard LHS: leave it to the escape pass
    }
    if (touched_this_round_.count(CellKey(sv.tid, c.rhs_col())) > 0) return 0;

    std::vector<Candidate> rhs_cands;
    rhs_cands.push_back(
        {pt.rhs.constant(),
         cost_model_.CellChangeCost(c.rhs_col(), cur, pt.rhs.constant())});

    // Option B: break the LHS match at a constant-pattern position.
    double best_lhs_cost = -1;
    size_t best_lhs_col = 0;
    Value best_lhs_value;
    if (options_.enable_lhs_repairs) {
      for (size_t i = 0; i < c.lhs_cols().size(); ++i) {
        if (!pt.lhs[i].is_constant()) continue;  // wildcard matches any value
        const size_t col = c.lhs_cols()[i];
        if (touched_this_round_.count(CellKey(sv.tid, col)) > 0) continue;
        // Candidate replacement values: frequent column values that differ
        // from the pattern constant, and the NULL escape.
        for (const Value& v : frequent_[col]) {
          if (v == pt.lhs[i].constant()) continue;
          const double cost = cost_model_.CellChangeCost(col, row[col], v);
          if (best_lhs_cost < 0 || cost < best_lhs_cost) {
            best_lhs_cost = cost;
            best_lhs_col = col;
            best_lhs_value = v;
          }
        }
        const double null_cost = cost_model_.CellChangeCost(col, row[col], Value::Null());
        if (best_lhs_cost < 0 || null_cost < best_lhs_cost) {
          best_lhs_cost = null_cost;
          best_lhs_col = col;
          best_lhs_value = Value::Null();
        }
      }
    }

    const double rhs_cost = rhs_cands.front().cost;
    if (best_lhs_cost >= 0 && best_lhs_cost < rhs_cost) {
      ApplyChange(sv.tid, best_lhs_col, best_lhs_value, {});
      return 1;
    }
    ApplyChange(sv.tid, c.rhs_col(), pt.rhs.constant(), RankAlternatives(rhs_cands));
    return 1;
  }

  /// Returns the number of edits applied.
  size_t ResolveGroup(const ViolationGroup& vg, RepairResult* result) {
    if (vg.cfd_index < 0) return 0;
    const Cfd& c = cfds_[static_cast<size_t>(vg.cfd_index)];
    const size_t rhs_col = c.rhs_col();

    // Re-read current member values (earlier edits may have resolved or
    // reshaped the group).
    struct MemberState {
      TupleId tid;
      Value rhs;
      bool is_mutable;
    };
    std::vector<MemberState> members;
    members.reserve(vg.members.size());
    for (TupleId tid : vg.members) {
      if (!work_.IsLive(tid)) continue;
      members.push_back({tid, work_.cell(tid, rhs_col), Mutable(tid)});
    }

    // Distinct non-null values with weighted change costs.
    std::unordered_map<Value, int64_t, relational::ValueHash> freq;
    for (const MemberState& m : members) {
      if (!m.rhs.is_null()) ++freq[m.rhs];
    }
    if (freq.size() < 2) return 0;  // already resolved

    // Frozen members pin the target: if they disagree among themselves the
    // group cannot be repaired on the RHS at all.
    std::unordered_map<Value, int64_t, relational::ValueHash> frozen_values;
    for (const MemberState& m : members) {
      if (!m.is_mutable && !m.rhs.is_null()) ++frozen_values[m.rhs];
    }
    if (frozen_values.size() > 1) {
      // Move mutable members out of the group by breaking the LHS key.
      size_t edits = 0;
      if (options_.enable_lhs_repairs) {
        const size_t escape_col = c.lhs_cols().back();
        for (const MemberState& m : members) {
          if (!m.is_mutable) continue;
          ApplyChange(m.tid, escape_col, Value::Null(), {});
          ++result->null_escapes;
          ++edits;
        }
      }
      return edits;
    }

    std::vector<Candidate> candidates;
    if (frozen_values.size() == 1) {
      candidates.push_back({frozen_values.begin()->first, 0});
      candidates.back().cost = TotalRhsCost(members, rhs_col, candidates.back().value);
    } else {
      candidates.reserve(freq.size());
      for (const auto& [v, n] : freq) {
        candidates.push_back({v, TotalRhsCost(members, rhs_col, v)});
      }
      std::sort(candidates.begin(), candidates.end(),
                [](const Candidate& a, const Candidate& b) { return a.cost < b.cost; });
    }
    const Candidate& best = candidates.front();

    // Alternative resolution (the attribute-modification option of
    // [VLDB'07]): move the disagreeing members out of the group by breaking
    // the LHS key instead of rewriting their RHS. Wins when the RHS carries
    // far more weight than the LHS.
    double escape_cost = 0;
    std::vector<const MemberState*> escapees;
    if (options_.enable_lhs_repairs) {
      const size_t escape_col = c.lhs_cols().back();
      for (const MemberState& m : members) {
        if (!m.is_mutable || m.rhs == best.value) continue;
        escapees.push_back(&m);
        escape_cost += cost_model_.CellChangeCost(escape_col, work_.cell(m.tid, escape_col),
                                                  Value::Null());
      }
      if (!escapees.empty() && escape_cost < best.cost) {
        size_t edits = 0;
        for (const MemberState* m : escapees) {
          if (touched_this_round_.count(CellKey(m->tid, escape_col)) > 0) continue;
          ApplyChange(m->tid, escape_col, Value::Null(), {});
          ++result->null_escapes;
          ++edits;
        }
        if (edits > 0) return edits;
      }
    }

    size_t edits = 0;
    for (const MemberState& m : members) {
      if (!m.is_mutable) continue;
      if (m.rhs == best.value) continue;
      if (const Value* pending = PendingTarget(m.tid, rhs_col)) {
        if (*pending == best.value) continue;
        // Another FD group already claimed this cell with a different
        // value: the tuple's LHS attributes are mutually inconsistent
        // (e.g. a Denver city with a Phoenix zip). Detach it from THIS
        // group by clearing the group's key attribute.
        if (options_.enable_lhs_repairs) {
          const size_t escape_col = c.lhs_cols().back();
          ApplyChange(m.tid, escape_col, Value::Null(), {});
          ++result->null_escapes;
          ++edits;
        }
        continue;
      }
      if (touched_this_round_.count(CellKey(m.tid, rhs_col)) > 0) continue;
      ApplyChange(m.tid, rhs_col, best.value, RankAlternatives(candidates));
      ++edits;
    }
    return edits;
  }

  template <typename MemberVec>
  double TotalRhsCost(const MemberVec& members, size_t rhs_col, const Value& target) {
    double cost = 0;
    for (const auto& m : members) {
      if (!m.is_mutable) continue;
      cost += cost_model_.CellChangeCost(rhs_col, m.rhs, target);
    }
    return cost;
  }

  const Relation* original_;
  Relation work_;
  std::vector<Cfd> cfds_;
  CostModel cost_model_;
  RepairOptions options_;

  std::vector<std::vector<Value>> frequent_;  // per column, most frequent first
  std::unordered_set<uint64_t> touched_this_round_;
  std::unordered_map<uint64_t, Value> pending_targets_;  // per round
  /// cell key -> ranked alternatives recorded when the cell was changed.
  std::map<uint64_t, std::vector<std::pair<Value, double>>> change_alternatives_;
};

}  // namespace

BatchRepair::BatchRepair(const Relation* rel, std::vector<Cfd> cfds,
                         CostModel cost_model, RepairOptions options)
    : rel_(rel),
      cfds_(std::move(cfds)),
      cost_model_(std::move(cost_model)),
      options_(std::move(options)) {}

common::Result<RepairResult> BatchRepair::Run() {
  RepairEngine engine(rel_, cfds_, cost_model_, options_);
  return engine.Run();
}

}  // namespace semandaq::repair
