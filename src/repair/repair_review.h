#ifndef SEMANDAQ_REPAIR_REPAIR_REVIEW_H_
#define SEMANDAQ_REPAIR_REPAIR_REVIEW_H_

#include <memory>
#include <string>
#include <vector>

#include "cfd/cfd.h"
#include "common/status.h"
#include "detect/incremental_detector.h"
#include "relational/relation.h"
#include "repair/batch_repair.h"

namespace semandaq::repair {

/// Interactive review of a candidate repair (paper §3, "Data cleansing
/// review" / Fig. 5): compare repaired vs. original with modified cells
/// highlighted, inspect ranked alternatives per cell, override a suggestion,
/// and watch the override trigger background incremental detection that
/// surfaces newly conflicting tuples.
class RepairReview {
 public:
  /// `original` must outlive the review; the repaired relation is owned.
  RepairReview(const relational::Relation* original, RepairResult result,
               std::vector<cfd::Cfd> cfds);

  /// Arms the incremental detector over the repaired data. Call once before
  /// OverrideCell.
  common::Status Start();

  const relational::Relation& repaired() const { return result_.repaired; }
  const std::vector<CellChange>& changes() const { return result_.changes; }

  /// The full repair under review, including the audit counters
  /// (remaining_violations, null_escapes, merged_classes — see
  /// RepairResult). Overrides applied through OverrideCell are reflected
  /// in its change log.
  const RepairResult& result() const { return result_; }

  /// The change record for a cell, or nullptr when the cleanser left it
  /// untouched.
  const CellChange* FindChange(relational::TupleId tid, size_t col) const;

  /// Replaces the repaired value of one cell with the user's choice and runs
  /// incremental detection; returns the tuples that NOW conflict as a
  /// consequence (empty when the override is safe).
  common::Result<std::vector<relational::TupleId>> OverrideCell(
      relational::TupleId tid, size_t col, relational::Value v);

  /// Side-by-side diff of original vs. repaired for the first `max_rows`
  /// tuples; modified cells are rendered as [old -> new] (the red highlight
  /// of Fig. 5).
  std::string RenderDiff(size_t max_rows = 20) const;

 private:
  const relational::Relation* original_;
  RepairResult result_;
  std::vector<cfd::Cfd> cfds_;
  std::unique_ptr<detect::IncrementalDetector> detector_;
};

}  // namespace semandaq::repair

#endif  // SEMANDAQ_REPAIR_REPAIR_REVIEW_H_
