#ifndef SEMANDAQ_RELATIONAL_VALUE_H_
#define SEMANDAQ_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace semandaq::relational {

/// Column data types. Semandaq keeps the type lattice small on purpose: the
/// CFD literature treats attribute domains as (possibly infinite) sets of
/// uninterpreted constants, so strings carry most of the weight; ints and
/// doubles exist for counts and measures.
enum class DataType {
  kNull = 0,  ///< Only the SQL NULL literal has this static type.
  kInt,
  kDouble,
  kString,
};

/// Short name such as "STRING", for error messages and schema dumps.
const char* DataTypeToString(DataType t);

/// A single typed cell value: NULL, INT (64-bit), DOUBLE, or STRING.
///
/// Values are immutable once constructed and cheap to move. Equality is
/// exact (no numeric coercion between int and double in operator==; the SQL
/// layer performs coercion explicitly where the standard requires it).
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Payload(v)); }
  static Value Double(double v) { return Value(Payload(v)); }
  static Value String(std::string v) { return Value(Payload(std::move(v))); }

  DataType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }

  /// Accessors assert on type mismatch in debug builds; callers check type()
  /// first or use the As*Lenient forms below.
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Numeric view: INT widens to double; DOUBLE passes through; anything
  /// else returns false.
  bool ToNumeric(double* out) const;

  /// Unquoted display form ("NULL", "42", "2.5", "Edinburgh").
  std::string ToDisplayString() const;

  /// SQL literal form ("NULL", "42", "2.5", "'Edi''nburgh'").
  std::string ToSqlLiteral() const;

  /// Exact equality: same type and same payload. Two NULLs compare equal
  /// here (this is *identity* equality used by containers; SQL three-valued
  /// comparison lives in the sql:: layer).
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order for sorting and map keys: NULL < INT/DOUBLE (by numeric
  /// value) < STRING (lexicographic). Returns <0, 0, >0.
  int Compare(const Value& other) const;
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with operator==.
  size_t Hash() const;

 private:
  using Payload = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Payload data) : data_(std::move(data)) {}

  Payload data_;
};

/// A row is a positional sequence of values; position i holds attribute i of
/// the owning relation's schema.
using Row = std::vector<Value>;

/// Hash functor so Row can key unordered containers (group-by keys, indexes).
struct RowHash {
  size_t operator()(const Row& row) const;
};

/// Equality functor matching RowHash (exact Value equality per cell).
struct RowEq {
  bool operator()(const Row& a, const Row& b) const;
};

/// Hash functor so Value can key unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Renders a row as "(v1, v2, ...)" for logs and test output.
std::string RowToString(const Row& row);

}  // namespace semandaq::relational

#endif  // SEMANDAQ_RELATIONAL_VALUE_H_
