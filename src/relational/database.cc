#include "relational/database.h"

#include <algorithm>

#include "common/string_util.h"

namespace semandaq::relational {

common::Status Database::AddRelation(Relation rel) {
  std::string key = common::ToLower(rel.name());
  if (key.empty()) {
    return common::Status::InvalidArgument("relation must have a non-empty name");
  }
  if (by_name_.count(key) > 0) {
    return common::Status::AlreadyExists("relation already exists: " + rel.name());
  }
  order_.push_back(key);
  by_name_.emplace(std::move(key), std::make_unique<Relation>(std::move(rel)));
  return common::Status::OK();
}

void Database::PutRelation(Relation rel) {
  std::string key = common::ToLower(rel.name());
  auto it = by_name_.find(key);
  if (it != by_name_.end()) {
    *it->second = std::move(rel);
    return;
  }
  order_.push_back(key);
  by_name_.emplace(std::move(key), std::make_unique<Relation>(std::move(rel)));
}

common::Status Database::DropRelation(std::string_view name) {
  std::string key = common::ToLower(name);
  auto it = by_name_.find(key);
  if (it == by_name_.end()) {
    return common::Status::NotFound("no relation named " + std::string(name));
  }
  by_name_.erase(it);
  order_.erase(std::remove(order_.begin(), order_.end(), key), order_.end());
  return common::Status::OK();
}

bool Database::HasRelation(std::string_view name) const {
  return by_name_.count(common::ToLower(name)) > 0;
}

const Relation* Database::FindRelation(std::string_view name) const {
  auto it = by_name_.find(common::ToLower(name));
  return it == by_name_.end() ? nullptr : it->second.get();
}

Relation* Database::FindMutableRelation(std::string_view name) {
  auto it = by_name_.find(common::ToLower(name));
  return it == by_name_.end() ? nullptr : it->second.get();
}

common::Result<const Relation*> Database::GetRelation(std::string_view name) const {
  const Relation* rel = FindRelation(name);
  if (rel == nullptr) {
    return common::Status::NotFound("no relation named " + std::string(name));
  }
  return rel;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> out;
  out.reserve(order_.size());
  for (const auto& key : order_) out.push_back(by_name_.at(key)->name());
  return out;
}

}  // namespace semandaq::relational
