#include "relational/dictionary.h"

#include <cassert>

namespace semandaq::relational {

Dictionary::Dictionary(const Dictionary& other)
    : codes_(other.codes_),
      hydrated_(other.hydrated_.load(std::memory_order_acquire)),
      hydrate_mu_(std::make_unique<std::mutex>()),
      values_(other.values_) {}

Dictionary& Dictionary::operator=(const Dictionary& other) {
  if (this == &other) return *this;
  codes_ = other.codes_;
  hydrated_.store(other.hydrated_.load(std::memory_order_acquire),
                  std::memory_order_release);
  values_ = other.values_;
  return *this;
}

Dictionary::Dictionary(Dictionary&& other) noexcept
    : codes_(std::move(other.codes_)),
      hydrated_(other.hydrated_.load(std::memory_order_acquire)),
      hydrate_mu_(std::move(other.hydrate_mu_)),
      values_(std::move(other.values_)) {}

Dictionary& Dictionary::operator=(Dictionary&& other) noexcept {
  if (this == &other) return *this;
  codes_ = std::move(other.codes_);
  hydrated_.store(other.hydrated_.load(std::memory_order_acquire),
                  std::memory_order_release);
  hydrate_mu_ = std::move(other.hydrate_mu_);
  values_ = std::move(other.values_);
  return *this;
}

Code Dictionary::Encode(const Value& v) {
  if (v.is_null()) return kNullCode;
  EnsureHydrated();
  auto it = codes_.find(v);
  if (it != codes_.end()) return it->second;
  assert(values_.size() < static_cast<size_t>(kAbsentCode));
  const Code code = static_cast<Code>(values_.size());
  values_.push_back(v);
  codes_.emplace(v, code);
  return code;
}

Code Dictionary::Lookup(const Value& v) const {
  if (v.is_null()) return kNullCode;
  EnsureHydrated();
  auto it = codes_.find(v);
  return it == codes_.end() ? kAbsentCode : it->second;
}

const Value& Dictionary::Decode(Code code) const {
  assert(Contains(code));
  return values_[code];
}

void Dictionary::Hydrate() const {
  codes_.reserve(values_.size() - 1);
  for (Code code = 1; code < values_.size(); ++code) {
    const bool fresh = codes_.emplace(values_[code], code).second;
    assert(fresh && "snapshot dictionary holds duplicate values");
    (void)fresh;
  }
  hydrated_ = true;
}

common::Result<Dictionary> Dictionary::FromDecodedValues(
    std::vector<Value> nonnull_values) {
  Dictionary dict;
  dict.values_.reserve(nonnull_values.size() + 1);
  for (Value& v : nonnull_values) {
    if (v.is_null()) {
      return common::Status::IoError(
          "corrupted dictionary blob: NULL among the non-NULL values");
    }
    dict.values_.push_back(std::move(v));
  }
  dict.hydrated_.store(false, std::memory_order_release);
  return dict;
}

}  // namespace semandaq::relational
