#include "relational/dictionary.h"

#include <cassert>

namespace semandaq::relational {

Code Dictionary::Encode(const Value& v) {
  if (v.is_null()) return kNullCode;
  auto it = codes_.find(v);
  if (it != codes_.end()) return it->second;
  assert(values_.size() < static_cast<size_t>(kAbsentCode));
  const Code code = static_cast<Code>(values_.size());
  values_.push_back(v);
  codes_.emplace(v, code);
  return code;
}

Code Dictionary::Lookup(const Value& v) const {
  if (v.is_null()) return kNullCode;
  auto it = codes_.find(v);
  return it == codes_.end() ? kAbsentCode : it->second;
}

const Value& Dictionary::Decode(Code code) const {
  assert(Contains(code));
  return values_[code];
}

}  // namespace semandaq::relational
