#include "relational/index.h"

#include <algorithm>

namespace semandaq::relational {

HashIndex::HashIndex(const Relation& rel, std::vector<size_t> cols)
    : cols_(std::move(cols)) {
  rel.ForEach([&](TupleId tid, const Row& row) { Add(tid, row); });
}

HashIndex::HashIndex(std::vector<size_t> cols) : cols_(std::move(cols)) {}

Row HashIndex::ProjectKey(const Row& row) const {
  Row key;
  key.reserve(cols_.size());
  for (size_t c : cols_) key.push_back(row[c]);
  return key;
}

const std::vector<TupleId>& HashIndex::Lookup(const Row& key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? empty_ : it->second;
}

void HashIndex::Add(TupleId tid, const Row& row) {
  buckets_[ProjectKey(row)].push_back(tid);
}

void HashIndex::Remove(TupleId tid, const Row& row) {
  auto it = buckets_.find(ProjectKey(row));
  if (it == buckets_.end()) return;
  auto& ids = it->second;
  ids.erase(std::remove(ids.begin(), ids.end(), tid), ids.end());
  if (ids.empty()) buckets_.erase(it);
}

}  // namespace semandaq::relational
