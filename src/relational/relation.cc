#include "relational/relation.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace semandaq::relational {

Relation::Relation(const Relation& other)
    : name_(other.name_),
      schema_(other.schema_),
      rows_(other.rows_),
      hydrator_(other.hydrator_),
      needs_hydration_(other.needs_hydration_.load(std::memory_order_acquire)),
      live_(other.live_),
      live_count_(other.live_count_),
      version_(other.version_),
      overwrite_version_(other.overwrite_version_) {
  // observer_ stays nullptr: a copy is a new, unwatched relation — a WAL
  // attachment must journal exactly the relation it was attached to.
  // A copy of an unhydrated relation re-runs the (pure) hydrator
  // independently, under its own fresh mutex.
}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  schema_ = other.schema_;
  rows_ = other.rows_;
  hydrator_ = other.hydrator_;
  needs_hydration_.store(other.needs_hydration_.load(std::memory_order_acquire),
                         std::memory_order_release);
  // A moved-from shell being reused as an assignment target lost its mutex.
  if (hydrate_mu_ == nullptr) hydrate_mu_ = std::make_unique<std::mutex>();
  live_ = other.live_;
  live_count_ = other.live_count_;
  version_ = other.version_;
  overwrite_version_ = other.overwrite_version_;
  observer_ = nullptr;
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : name_(std::move(other.name_)),
      schema_(std::move(other.schema_)),
      rows_(std::move(other.rows_)),
      hydrator_(std::move(other.hydrator_)),
      needs_hydration_(other.needs_hydration_.load(std::memory_order_acquire)),
      hydrate_mu_(std::move(other.hydrate_mu_)),
      live_(std::move(other.live_)),
      live_count_(other.live_count_),
      version_(other.version_),
      overwrite_version_(other.overwrite_version_),
      observer_(other.observer_) {
  other.observer_ = nullptr;
  // The moved-from shell has neither hydrator nor mutex left; make sure it
  // can never try to hydrate.
  other.needs_hydration_.store(false, std::memory_order_release);
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  name_ = std::move(other.name_);
  schema_ = std::move(other.schema_);
  rows_ = std::move(other.rows_);
  hydrator_ = std::move(other.hydrator_);
  needs_hydration_.store(other.needs_hydration_.load(std::memory_order_acquire),
                         std::memory_order_release);
  hydrate_mu_ = std::move(other.hydrate_mu_);
  live_ = std::move(other.live_);
  live_count_ = other.live_count_;
  version_ = other.version_;
  overwrite_version_ = other.overwrite_version_;
  observer_ = other.observer_;
  other.observer_ = nullptr;
  other.needs_hydration_.store(false, std::memory_order_release);
  return *this;
}

Relation Relation::FromStorage(std::string name, Schema schema,
                               std::vector<uint8_t> live,
                               RowHydrator hydrator) {
  Relation rel(std::move(name), std::move(schema));
  rel.rows_.resize(live.size());  // empty placeholders until hydration
  for (size_t i = 0; i < live.size(); ++i) {
    if (live[i] != 0) ++rel.live_count_;
  }
  rel.live_ = std::move(live);
  rel.hydrator_ = std::move(hydrator);
  rel.needs_hydration_.store(true, std::memory_order_release);
  return rel;
}

void Relation::HydrateRows() const {
  // Detach first so a buggy hydrator touching the relation cannot recurse.
  RowHydrator hydrator = std::move(hydrator_);
  hydrator_ = nullptr;
  std::vector<Row> rows = hydrator();
  // Appends after FromStorage may have grown the tail past the hydrated
  // prefix; the hydrator only covers the ids it was installed for.
  assert(rows.size() <= rows_.size());
  for (size_t i = 0; i < rows.size(); ++i) rows_[i] = std::move(rows[i]);
}

common::Result<TupleId> Relation::Insert(Row row) {
  if (row.size() != schema_.size()) {
    return common::Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema arity " +
        std::to_string(schema_.size()) + " of relation " + name_);
  }
  rows_.push_back(std::move(row));
  live_.push_back(1);
  ++live_count_;
  ++version_;
  const TupleId tid = static_cast<TupleId>(rows_.size() - 1);
  if (observer_ != nullptr) observer_->OnInsert(tid, rows_.back());
  return tid;
}

TupleId Relation::MustInsert(Row row) {
  auto r = Insert(std::move(row));
  assert(r.ok());
  return r.ok() ? *r : -1;
}

common::Status Relation::CheckLive(TupleId tid, std::string_view verb) const {
  if (!IsLive(tid)) {
    return common::Status::OutOfRange(std::string(verb) +
                                      " of dead or unknown tuple id " +
                                      std::to_string(tid) + " in " + name_);
  }
  return common::Status::OK();
}

common::Status Relation::CheckColumn(size_t col) const {
  if (col >= schema_.size()) {
    return common::Status::OutOfRange("column ordinal " + std::to_string(col) +
                                      " out of range in " + name_);
  }
  return common::Status::OK();
}

common::Status Relation::Delete(TupleId tid) {
  SEMANDAQ_RETURN_IF_ERROR(CheckLive(tid, "delete"));
  live_[static_cast<size_t>(tid)] = 0;
  --live_count_;
  ++version_;
  if (observer_ != nullptr) observer_->OnDelete(tid);
  return common::Status::OK();
}

common::Status Relation::SetCell(TupleId tid, size_t col, Value v) {
  SEMANDAQ_RETURN_IF_ERROR(CheckLive(tid, "update"));
  SEMANDAQ_RETURN_IF_ERROR(CheckColumn(col));
  EnsureHydrated();
  rows_[static_cast<size_t>(tid)][col] = std::move(v);
  ++version_;
  ++overwrite_version_;
  if (observer_ != nullptr) {
    observer_->OnSetCell(tid, col, rows_[static_cast<size_t>(tid)][col]);
  }
  return common::Status::OK();
}

const Row& Relation::row(TupleId tid) const {
  assert(IsLive(tid));
  EnsureHydrated();
  return rows_[static_cast<size_t>(tid)];
}

std::vector<TupleId> Relation::LiveIds() const {
  std::vector<TupleId> out;
  out.reserve(live_count_);
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (live_[i]) out.push_back(static_cast<TupleId>(i));
  }
  return out;
}

Row Relation::Project(TupleId tid, const std::vector<size_t>& cols) const {
  const Row& r = row(tid);
  Row out;
  out.reserve(cols.size());
  for (size_t c : cols) out.push_back(r[c]);
  return out;
}

std::string Relation::ToAsciiTable(size_t max_rows) const {
  EnsureHydrated();
  std::vector<std::string> headers = schema_.Names();
  std::vector<size_t> widths;
  widths.reserve(headers.size());
  for (const auto& h : headers) widths.push_back(h.size());

  std::vector<std::vector<std::string>> cells;
  size_t shown = 0;
  for (size_t i = 0; i < rows_.size() && shown < max_rows; ++i) {
    if (!live_[i]) continue;
    std::vector<std::string> line;
    line.reserve(headers.size());
    for (size_t c = 0; c < headers.size(); ++c) {
      line.push_back(rows_[i][c].ToDisplayString());
      widths[c] = std::max(widths[c], line.back().size());
    }
    cells.push_back(std::move(line));
    ++shown;
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& line) {
    out << "|";
    for (size_t c = 0; c < line.size(); ++c) {
      out << " " << line[c] << std::string(widths[c] - line[c].size(), ' ') << " |";
    }
    out << "\n";
  };
  auto emit_rule = [&]() {
    out << "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << "+";
    }
    out << "\n";
  };
  emit_rule();
  emit_row(headers);
  emit_rule();
  for (const auto& line : cells) emit_row(line);
  emit_rule();
  if (size() > shown) {
    out << "... " << (size() - shown) << " more tuple(s)\n";
  }
  return out.str();
}

}  // namespace semandaq::relational
