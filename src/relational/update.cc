#include "relational/update.h"

namespace semandaq::relational {

std::string Update::ToString() const {
  switch (kind) {
    case Kind::kInsert:
      return "INSERT " + RowToString(row);
    case Kind::kDelete:
      return "DELETE #" + std::to_string(tid);
    case Kind::kModify:
      return "MODIFY #" + std::to_string(tid) + " col " + std::to_string(col) +
             " := " + new_value.ToDisplayString();
  }
  return "?";
}

common::Status ValidateUpdate(const Update& u, const Relation& rel) {
  switch (u.kind) {
    case Update::Kind::kInsert:
      if (u.row.size() != rel.schema().size()) {
        return common::Status::InvalidArgument(
            "insert arity " + std::to_string(u.row.size()) +
            " does not match schema arity " +
            std::to_string(rel.schema().size()) + " of relation " + rel.name());
      }
      return common::Status::OK();
    case Update::Kind::kDelete:
      return rel.CheckLive(u.tid, "delete");
    case Update::Kind::kModify:
      SEMANDAQ_RETURN_IF_ERROR(rel.CheckLive(u.tid, "modify"));
      return rel.CheckColumn(u.col);
  }
  return common::Status::OK();
}

common::Status ApplyUpdates(const UpdateBatch& batch, Relation* rel,
                            std::vector<TupleId>* inserted_ids) {
  for (const Update& u : batch) {
    switch (u.kind) {
      case Update::Kind::kInsert: {
        auto r = rel->Insert(u.row);
        if (!r.ok()) return r.status();
        if (inserted_ids != nullptr) inserted_ids->push_back(*r);
        break;
      }
      case Update::Kind::kDelete:
        SEMANDAQ_RETURN_IF_ERROR(rel->Delete(u.tid));
        break;
      case Update::Kind::kModify:
        SEMANDAQ_RETURN_IF_ERROR(rel->SetCell(u.tid, u.col, u.new_value));
        break;
    }
  }
  return common::Status::OK();
}

}  // namespace semandaq::relational
