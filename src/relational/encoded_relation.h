#ifndef SEMANDAQ_RELATIONAL_ENCODED_RELATION_H_
#define SEMANDAQ_RELATIONAL_ENCODED_RELATION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/cancel.h"
#include "common/hash.h"
#include "relational/column_chunk.h"
#include "relational/dictionary.h"
#include "relational/relation.h"

namespace semandaq::common {
class ThreadPool;
}  // namespace semandaq::common

namespace semandaq::relational {

/// A dictionary-encoded columnar snapshot of a Relation: one flat,
/// refcounted code chunk per column (relational::CodeColumn), indexed by
/// TupleId, plus the per-column Dictionary that issued the codes —
/// dictionaries are refcounted too, shared with frozen snapshot views and
/// detached copy-on-write before the writer mutates them.
///
/// This is the substrate of the detection/discovery fast paths: equality of
/// cells becomes equality of 32-bit codes, group-by keys become packed
/// integers, and the string hashing that dominates row-at-a-time scans is
/// paid once per distinct value at encode time. The design follows the
/// position-list/partition representations of TANE-family discovery systems
/// (Desbordante et al.): detection is then "a small number of scans" over
/// dense integer arrays, which is the paper's scaling claim made concrete.
///
/// Staleness protocol. The snapshot remembers the relation's (version,
/// overwrite_version) pair at the last sync:
///   * both match                -> in sync, Sync() is a no-op;
///   * only `version` moved      -> the relation saw appends and/or deletes;
///     Sync() encodes just the new rows (deletes need no code work because
///     scans consult Relation::IsLive, which EncodedRelation::ForEachLive
///     does for you);
///   * `overwrite_version` moved -> some cell was rewritten in place and the
///     snapshot cannot tell which; Sync() rebuilds everything.
/// Callers that apply mutations themselves (IncrementalDetector) can stay
/// warm through overwrites via the delta hooks ApplyInsert/ApplyCell, which
/// re-encode exactly the touched cells and fast-forward the sync marks.
///
/// Dictionaries only grow: deletes and overwrites may strand codes whose
/// value no longer occurs live. That is deliberate — code stability is what
/// keeps precompiled pattern codes valid across deltas — and bounded by
/// update volume; a full Rebuild() (or a fresh snapshot) compacts.
///
/// Sharing protocol (the server's epoch-published snapshots, docs/server.md).
/// Freeze() captures an immutable view of the current encoded state in O(1)
/// per column: frozen views share the chunks and dictionaries by refcount.
/// Afterwards the writer may keep mutating this object freely — appends land
/// past every frozen view's size, and overwrites (Rebuild, ApplyCell after a
/// SetCell) detach the touched chunk/dictionary copy-on-write first — so a
/// frozen view's bytes are stable for its whole lifetime and readers never
/// block on the writer.
class EncodedRelation {
 public:
  /// Builds the snapshot with one pass over the live tuples. With a pool,
  /// the encode fans out per column (see set_thread_pool). With a cancel
  /// token (common/cancel.h, checked every few thousand rows per column), a
  /// tripped token abandons the encode and leaves the snapshot *out of
  /// sync* — InSync() stays false, so nothing ever reads the half-encoded
  /// codes as current; callers surface the latched token as
  /// Status::Cancelled before using the snapshot.
  explicit EncodedRelation(const Relation* rel,
                           common::ThreadPool* pool = nullptr,
                           common::CancelToken* cancel = nullptr);

  /// Adopts already-encoded state instead of re-encoding — the storage
  /// layer's load path (storage::SnapshotReader): `dicts` and `columns`
  /// come straight off disk, `rel` is the relation they describe (same
  /// column count; each column sized to rel->IdBound()). The snapshot is
  /// marked in sync with the relation's *current* version counters, so
  /// mutations applied to `rel` afterwards (e.g. a WAL tail) flow through
  /// the ordinary Sync() append path. The dictionaries and chunks arrive
  /// refcounted, so the loader's deferred row hydrator shares them instead
  /// of retaining a second copy of the file. Shape mismatches are caller
  /// bugs and assert in debug builds.
  static EncodedRelation FromStorage(
      const Relation* rel, std::vector<std::shared_ptr<Dictionary>> dicts,
      std::vector<CodeColumn> columns);

  /// An immutable view of the current encoded state for `view_rel` — a
  /// frozen materialization of the same tuples this snapshot describes
  /// (the server's epoch publication copies liveness into a fresh Relation
  /// and pairs it with this). O(1) per column: chunks and dictionaries are
  /// shared by refcount, and the writer detaches copy-on-write before any
  /// in-place rewrite, so the view's contents never change. The view is
  /// marked in sync with `view_rel`'s current counters; since a frozen
  /// view's relation never mutates, its Sync() stays a no-op forever.
  EncodedRelation Freeze(const Relation* view_rel) const;

  /// Attaches a worker pool used to fan the encode passes (Rebuild and the
  /// append path of Sync) out per column. Column dictionaries are
  /// independent and codes are first-seen in row order within one column
  /// either way, so the parallel result is byte-identical to the serial
  /// one. The pool is borrowed, never owned; nullptr restores the serial
  /// encode. Must not be a pool that is currently inside a Run call (the
  /// pool is not reentrant).
  void set_thread_pool(common::ThreadPool* pool) { pool_ = pool; }

  /// Attaches a cooperative cancellation token checked by the encode
  /// passes (constructor, Sync, Rebuild). A tripped token makes them stop
  /// without updating the sync marks: the snapshot reports !InSync() and a
  /// later Sync()/Rebuild() with a clean token redoes the work. nullptr =
  /// not cancellable.
  void set_cancel(common::CancelToken* cancel) { cancel_ = cancel; }

  const Relation& relation() const { return *rel_; }
  size_t num_columns() const { return columns_.size(); }

  /// One past the largest encoded TupleId; matches relation().IdBound()
  /// whenever the snapshot is in sync.
  TupleId IdBound() const {
    return columns_.empty() ? 0 : static_cast<TupleId>(columns_[0].size());
  }

  /// True when the snapshot reflects the relation's current contents.
  bool InSync() const {
    return synced_version_ == rel_->version() &&
           synced_overwrite_version_ == rel_->overwrite_version();
  }

  /// Catches up with the relation: no-op when in sync, append-only encode
  /// after inserts/deletes, full rebuild after in-place overwrites.
  void Sync();

  /// Re-encodes everything from scratch (also compacts the dictionaries).
  void Rebuild();

  /// Delta hook: the caller just inserted `tid` (== previous IdBound).
  void ApplyInsert(TupleId tid);

  /// Delta hook: the caller just overwrote cell (tid, col) in the relation.
  void ApplyCell(TupleId tid, size_t col);

  /// Delta hook: the caller just tombstoned a tuple. Codes are untouched;
  /// this only fast-forwards the sync mark.
  void NoteDelete() { synced_version_ = rel_->version(); }

  /// The whole code column, indexed by TupleId (dead tuples keep their last
  /// codes; filter with relation().IsLive or ForEachLive). The returned
  /// CodeColumn is contiguous — data()/size() feed the SIMD kernels
  /// exactly like the flat vectors it replaced.
  const CodeColumn& column(size_t col) const { return columns_[col]; }

  Code code(TupleId tid, size_t col) const {
    return columns_[col][static_cast<size_t>(tid)];
  }

  const Dictionary& dictionary(size_t col) const { return *dicts_[col]; }

  /// Writer-side dictionary access: detaches a dictionary shared with
  /// frozen views (copy-on-write) before exposing it mutable, so encodes
  /// of new pattern constants or appended values never disturb readers of
  /// a published snapshot.
  Dictionary& mutable_dictionary(size_t col) { return MutableDict(col); }

  /// The refcounted dictionary itself (shared with frozen views).
  const std::shared_ptr<Dictionary>& shared_dictionary(size_t col) const {
    return dicts_[col];
  }

  /// Decoded value of a cell (NULL for kNullCode).
  const Value& Decode(size_t col, Code code) const {
    return dicts_[col]->Decode(code);
  }

  /// Invokes fn(tid) for every live encoded tuple in id order.
  template <typename Fn>
  void ForEachLive(Fn&& fn) const {
    const TupleId bound = IdBound();
    for (TupleId tid = 0; tid < bound; ++tid) {
      if (rel_->IsLive(tid)) fn(tid);
    }
  }

 private:
  EncodedRelation() = default;  // for FromStorage/Freeze

  /// False when a cancel token tripped mid-encode; the caller must then
  /// leave the sync marks untouched (the snapshot stays stale).
  bool EncodeRows(TupleId from, TupleId to);
  void EncodeColumn(size_t col, TupleId from, TupleId to);

  /// Detaches dicts_[col] if it is shared with a frozen view (COW), then
  /// returns it mutable.
  Dictionary& MutableDict(size_t col);

  const Relation* rel_ = nullptr;
  std::vector<std::shared_ptr<Dictionary>> dicts_;  // one per column, COW
  std::vector<CodeColumn> columns_;                 // [col][tid], chunked COW
  common::ThreadPool* pool_ = nullptr;  // borrowed; nullptr = serial encode
  common::CancelToken* cancel_ = nullptr;  // borrowed; nullptr = not cancellable
  uint64_t synced_version_ = 0;
  uint64_t synced_overwrite_version_ = 0;
};

/// Packs two codes into one 64-bit group-by key (the <=2-column fast case;
/// a single column packs with kNullCode as the high half).
inline uint64_t PackCodes(Code a, Code b) {
  return (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
}

/// Hash/equality for wide (>2 column) code keys.
struct CodeVecHash {
  size_t operator()(const std::vector<Code>& key) const {
    size_t h = 0x434b;  // "CK"
    for (Code c : key) h = common::HashCombine(h, c);
    return h;
  }
};

}  // namespace semandaq::relational

#endif  // SEMANDAQ_RELATIONAL_ENCODED_RELATION_H_
