#ifndef SEMANDAQ_RELATIONAL_DATABASE_H_
#define SEMANDAQ_RELATIONAL_DATABASE_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/relation.h"

namespace semandaq::relational {

/// Catalog of named relations; the unit the system "connects to" (paper §3,
/// Specifying Constraints). Relation names are case-insensitive.
class Database {
 public:
  Database() = default;

  // Movable but not copyable: relations may be large.
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Registers a relation; fails if the name is taken.
  common::Status AddRelation(Relation rel);

  /// Replaces an existing relation (or adds a new one).
  void PutRelation(Relation rel);

  /// Removes a relation by name.
  common::Status DropRelation(std::string_view name);

  bool HasRelation(std::string_view name) const;

  /// Lookup; nullptr when missing.
  const Relation* FindRelation(std::string_view name) const;
  Relation* FindMutableRelation(std::string_view name);

  /// Lookup with a descriptive error.
  common::Result<const Relation*> GetRelation(std::string_view name) const;

  /// Names of all relations, in registration order.
  std::vector<std::string> RelationNames() const;

  size_t size() const { return order_.size(); }

 private:
  std::unordered_map<std::string, std::unique_ptr<Relation>> by_name_;
  std::vector<std::string> order_;  // lowercase keys, registration order
};

}  // namespace semandaq::relational

#endif  // SEMANDAQ_RELATIONAL_DATABASE_H_
