#ifndef SEMANDAQ_RELATIONAL_SCHEMA_H_
#define SEMANDAQ_RELATIONAL_SCHEMA_H_

#include <initializer_list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace semandaq::relational {

/// A named, typed attribute of a relation schema.
struct AttributeDef {
  std::string name;
  DataType type = DataType::kString;

  /// Attributes with a declared finite domain (e.g. a boolean flag or a
  /// fixed code list) matter for CFD satisfiability analysis, which is
  /// NP-complete only in their presence (Fan et al., TODS'08). Empty means
  /// "infinite domain".
  std::vector<Value> finite_domain;

  bool has_finite_domain() const { return !finite_domain.empty(); }
};

/// An ordered list of attributes with unique (case-insensitive) names.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttributeDef> attrs);

  /// Convenience: all-string schema from attribute names.
  static Schema AllStrings(std::initializer_list<std::string_view> names);
  static Schema AllStrings(const std::vector<std::string>& names);

  size_t size() const { return attrs_.size(); }
  const AttributeDef& attr(size_t i) const { return attrs_[i]; }
  const std::vector<AttributeDef>& attrs() const { return attrs_; }

  /// Ordinal of the attribute with the given name (case-insensitive), or -1.
  int IndexOf(std::string_view name) const;

  /// Like IndexOf but produces a descriptive error.
  common::Result<size_t> RequireIndexOf(std::string_view name) const;

  /// Appends a new attribute; fails on duplicate name.
  common::Status AddAttribute(AttributeDef attr);

  /// All attribute names, in order.
  std::vector<std::string> Names() const;

  /// "name TYPE, name TYPE, ..." for logs and dumps.
  std::string ToString() const;

  /// Structural equality: same names (case-insensitive), same types, in the
  /// same order.
  bool Equals(const Schema& other) const;

 private:
  std::vector<AttributeDef> attrs_;
  std::unordered_map<std::string, size_t> by_lower_name_;
};

}  // namespace semandaq::relational

#endif  // SEMANDAQ_RELATIONAL_SCHEMA_H_
