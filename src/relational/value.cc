#include "relational/value.h"

#include <cassert>
#include <functional>

#include "common/hash.h"
#include "common/string_util.h"

namespace semandaq::relational {

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "?";
}

DataType Value::type() const {
  switch (data_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kInt;
    case 2:
      return DataType::kDouble;
    default:
      return DataType::kString;
  }
}

int64_t Value::AsInt() const {
  assert(std::holds_alternative<int64_t>(data_));
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  assert(std::holds_alternative<double>(data_));
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  assert(std::holds_alternative<std::string>(data_));
  return std::get<std::string>(data_);
}

bool Value::ToNumeric(double* out) const {
  switch (type()) {
    case DataType::kInt:
      *out = static_cast<double>(AsInt());
      return true;
    case DataType::kDouble:
      *out = AsDouble();
      return true;
    default:
      return false;
  }
}

std::string Value::ToDisplayString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt:
      return std::to_string(AsInt());
    case DataType::kDouble:
      return common::FormatDouble(AsDouble());
    case DataType::kString:
      return AsString();
  }
  return "?";
}

std::string Value::ToSqlLiteral() const {
  if (type() == DataType::kString) return common::QuoteSqlString(AsString());
  return ToDisplayString();
}

int Value::Compare(const Value& other) const {
  const DataType ta = type();
  const DataType tb = other.type();
  // NULL sorts first.
  if (ta == DataType::kNull || tb == DataType::kNull) {
    if (ta == tb) return 0;
    return ta == DataType::kNull ? -1 : 1;
  }
  const bool a_num = (ta == DataType::kInt || ta == DataType::kDouble);
  const bool b_num = (tb == DataType::kInt || tb == DataType::kDouble);
  if (a_num && b_num) {
    double x = 0;
    double y = 0;
    ToNumeric(&x);
    other.ToNumeric(&y);
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a_num != b_num) return a_num ? -1 : 1;  // numbers before strings
  const std::string& sa = AsString();
  const std::string& sb = other.AsString();
  if (sa < sb) return -1;
  if (sa > sb) return 1;
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x6e756c6cULL;  // "null"
    case DataType::kInt:
      return common::HashMix(0x1, AsInt());
    case DataType::kDouble:
      return common::HashMix(0x2, AsDouble());
    case DataType::kString:
      return common::HashMix(0x3, AsString());
  }
  return 0;
}

size_t RowHash::operator()(const Row& row) const {
  size_t h = 0x5244;  // "RD"
  for (const Value& v : row) h = common::HashCombine(h, v.Hash());
  return h;
}

bool RowEq::operator()(const Row& a, const Row& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToDisplayString();
  }
  out += ")";
  return out;
}

}  // namespace semandaq::relational
