#ifndef SEMANDAQ_RELATIONAL_DICTIONARY_H_
#define SEMANDAQ_RELATIONAL_DICTIONARY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace semandaq::relational {

/// Dense integer code of a column value inside one column's Dictionary.
/// Code 0 is permanently reserved for SQL NULL; live values get 1, 2, ...
/// in first-seen order. Codes are never reused or recycled, so a code taken
/// once stays valid for the dictionary's whole lifetime (this is what lets
/// incremental consumers keep compiled pattern codes across appends).
using Code = uint32_t;

/// The NULL code: every NULL cell of a column encodes to 0.
inline constexpr Code kNullCode = 0;

/// Sentinel for "this value has no code in the dictionary". Never assigned
/// to a real value (a dictionary holding 2^32-1 distinct values is out of
/// this system's design envelope; Encode asserts before wrapping).
inline constexpr Code kAbsentCode = UINT32_MAX;

/// Per-column mapping Value <-> dense Code.
///
/// Equality of codes is exactly Value::operator== on the decoded values:
/// the dictionary is injective on non-NULL values, and all NULLs share
/// kNullCode. This makes code comparison a drop-in replacement for Value
/// comparison in the detection and discovery inner loops — one string hash
/// per *distinct* value at encode time instead of one per tuple per scan.
class Dictionary {
 public:
  Dictionary() : hydrate_mu_(std::make_unique<std::mutex>()) {
    values_.push_back(Value::Null());
  }

  // Copies duplicate the mapping with a fresh hydration mutex; moves steal
  // everything. (Spelled out because the atomic hydration flag and the
  // mutex have no implicit copies.)
  Dictionary(const Dictionary& other);
  Dictionary& operator=(const Dictionary& other);
  Dictionary(Dictionary&& other) noexcept;
  Dictionary& operator=(Dictionary&& other) noexcept;

  /// Code of `v`, inserting it on first sight. NULL always maps to
  /// kNullCode without touching the hash table. Single-writer: must not
  /// run concurrently with any other call on the same dictionary (the
  /// encoded-relation COW discipline detaches shared dictionaries before
  /// the writer encodes into them).
  Code Encode(const Value& v);

  /// Code of `v` without inserting; kAbsentCode when the value was never
  /// encoded (a pattern constant absent here can never match any tuple).
  ///
  /// Lazily hydrates the value->code map on a dictionary rebuilt by
  /// FromDecodedValues (see there). Safe to call concurrently with other
  /// Lookup/Decode calls — hydration is double-checked under an internal
  /// mutex, so readers of a shared snapshot dictionary never race — but
  /// not with Encode (single-writer, see above).
  Code Lookup(const Value& v) const;

  /// The value behind a code; Decode(kNullCode) is NULL. The code must have
  /// been issued by this dictionary (asserted in debug builds).
  const Value& Decode(Code code) const;

  /// Number of distinct non-NULL values; issued codes are 1..size().
  size_t size() const { return values_.size() - 1; }

  /// True when `code` was issued by this dictionary (or is the NULL code).
  bool Contains(Code code) const { return code < values_.size(); }

  /// All decoded values in code order: values()[0] is NULL and values()[c]
  /// decodes code c. This is the dictionary's serialization surface — the
  /// storage layer persists exactly this vector (minus the NULL slot) and
  /// rebuilds with FromDecodedValues.
  const std::vector<Value>& values() const { return values_; }

  /// Rebuilds a dictionary from its persisted value list: `nonnull_values`
  /// holds the decoded values of codes 1..n in code order (the NULL slot is
  /// implicit). Fails on a NULL entry — the blob was not produced by
  /// Dictionary::values() then.
  ///
  /// The value->code hash map is NOT built here: decoding (what a loaded
  /// snapshot is scanned through) needs only the value vector, and eagerly
  /// hashing every distinct value would put the dominant cost of the cold
  /// encode right back into the cold load. The map hydrates on the first
  /// Encode/Lookup — i.e. the first pattern-constant compile or append
  /// touching this column — which also performs the duplicate check that
  /// eager construction would have done (duplicate = Internal error
  /// surfaced by hydration's debug assert; codes of a well-formed snapshot
  /// never alias because the writer emits values() of an injective map).
  static common::Result<Dictionary> FromDecodedValues(
      std::vector<Value> nonnull_values);

 private:
  /// Builds codes_ from values_ (the FromDecodedValues deferred half).
  void Hydrate() const;

  /// Hydrates at most once, double-checked under hydrate_mu_ so concurrent
  /// const readers (Lookup on a shared snapshot dictionary) never race.
  void EnsureHydrated() const {
    if (!hydrated_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(*hydrate_mu_);
      if (!hydrated_.load(std::memory_order_relaxed)) {
        Hydrate();
        hydrated_.store(true, std::memory_order_release);
      }
    }
  }

  // Lazily hydrated (see FromDecodedValues); mutable so the logically
  // const Lookup can hydrate.
  mutable std::unordered_map<Value, Code, ValueHash> codes_;
  mutable std::atomic<bool> hydrated_{true};
  mutable std::unique_ptr<std::mutex> hydrate_mu_;
  std::vector<Value> values_;  // values_[0] = NULL; values_[c] decodes c
};

}  // namespace semandaq::relational

#endif  // SEMANDAQ_RELATIONAL_DICTIONARY_H_
