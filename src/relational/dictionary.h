#ifndef SEMANDAQ_RELATIONAL_DICTIONARY_H_
#define SEMANDAQ_RELATIONAL_DICTIONARY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "relational/value.h"

namespace semandaq::relational {

/// Dense integer code of a column value inside one column's Dictionary.
/// Code 0 is permanently reserved for SQL NULL; live values get 1, 2, ...
/// in first-seen order. Codes are never reused or recycled, so a code taken
/// once stays valid for the dictionary's whole lifetime (this is what lets
/// incremental consumers keep compiled pattern codes across appends).
using Code = uint32_t;

/// The NULL code: every NULL cell of a column encodes to 0.
inline constexpr Code kNullCode = 0;

/// Sentinel for "this value has no code in the dictionary". Never assigned
/// to a real value (a dictionary holding 2^32-1 distinct values is out of
/// this system's design envelope; Encode asserts before wrapping).
inline constexpr Code kAbsentCode = UINT32_MAX;

/// Per-column mapping Value <-> dense Code.
///
/// Equality of codes is exactly Value::operator== on the decoded values:
/// the dictionary is injective on non-NULL values, and all NULLs share
/// kNullCode. This makes code comparison a drop-in replacement for Value
/// comparison in the detection and discovery inner loops — one string hash
/// per *distinct* value at encode time instead of one per tuple per scan.
class Dictionary {
 public:
  Dictionary() { values_.push_back(Value::Null()); }

  /// Code of `v`, inserting it on first sight. NULL always maps to
  /// kNullCode without touching the hash table.
  Code Encode(const Value& v);

  /// Code of `v` without inserting; kAbsentCode when the value was never
  /// encoded (a pattern constant absent here can never match any tuple).
  Code Lookup(const Value& v) const;

  /// The value behind a code; Decode(kNullCode) is NULL. The code must have
  /// been issued by this dictionary (asserted in debug builds).
  const Value& Decode(Code code) const;

  /// Number of distinct non-NULL values; issued codes are 1..size().
  size_t size() const { return values_.size() - 1; }

  /// True when `code` was issued by this dictionary (or is the NULL code).
  bool Contains(Code code) const { return code < values_.size(); }

 private:
  std::unordered_map<Value, Code, ValueHash> codes_;
  std::vector<Value> values_;  // values_[0] = NULL; values_[c] decodes c
};

}  // namespace semandaq::relational

#endif  // SEMANDAQ_RELATIONAL_DICTIONARY_H_
