#include "relational/encoded_relation.h"

#include <cassert>
#include <memory>
#include <utility>

#include "common/thread_pool.h"

namespace semandaq::relational {

namespace {

/// Below this many cells a rebuild is too small for fork-join dispatch to
/// pay for itself; encode serially even when a pool is attached.
constexpr uint64_t kParallelEncodeMinCells = uint64_t{1} << 14;

/// Rows between cancel checkpoints in the encode loops.
constexpr TupleId kEncodeCancelBatch = 4096;

}  // namespace

EncodedRelation::EncodedRelation(const Relation* rel, common::ThreadPool* pool,
                                 common::CancelToken* cancel)
    : rel_(rel), pool_(pool), cancel_(cancel) {
  Rebuild();
}

EncodedRelation EncodedRelation::FromStorage(
    const Relation* rel, std::vector<std::shared_ptr<Dictionary>> dicts,
    std::vector<CodeColumn> columns) {
  assert(rel != nullptr);
  assert(dicts.size() == rel->schema().size());
  assert(columns.size() == rel->schema().size());
  EncodedRelation enc;
  enc.rel_ = rel;
  enc.dicts_ = std::move(dicts);
  enc.columns_ = std::move(columns);
  for (const auto& col : enc.columns_) {
    assert(col.size() == static_cast<size_t>(rel->IdBound()));
    (void)col;
  }
  enc.synced_version_ = rel->version();
  enc.synced_overwrite_version_ = rel->overwrite_version();
  return enc;
}

EncodedRelation EncodedRelation::Freeze(const Relation* view_rel) const {
  assert(view_rel != nullptr);
  assert(view_rel->schema().size() == columns_.size());
  assert(static_cast<size_t>(view_rel->IdBound()) ==
         static_cast<size_t>(IdBound()));
  EncodedRelation out;
  out.rel_ = view_rel;
  out.dicts_ = dicts_;  // shared by refcount; writer detaches before mutating
  out.columns_.reserve(columns_.size());
  for (const auto& col : columns_) out.columns_.push_back(col.ShareFrozen());
  out.synced_version_ = view_rel->version();
  out.synced_overwrite_version_ = view_rel->overwrite_version();
  return out;
}

Dictionary& EncodedRelation::MutableDict(size_t col) {
  std::shared_ptr<Dictionary>& dict = dicts_[col];
  if (dict.use_count() > 1) dict = std::make_shared<Dictionary>(*dict);
  return *dict;
}

void EncodedRelation::Rebuild() {
  const size_t ncols = rel_->schema().size();
  dicts_.clear();
  dicts_.reserve(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    dicts_.push_back(std::make_shared<Dictionary>());
  }
  columns_.resize(ncols);
  const size_t bound = static_cast<size_t>(rel_->IdBound());
  // AssignFill detaches any chunk shared with a frozen view, so a rebuild
  // under pinned readers writes into fresh storage.
  for (auto& col : columns_) col.AssignFill(bound, kNullCode);
  // A cancelled encode leaves the sync marks behind the relation's: the
  // snapshot reports !InSync() and is rebuilt before anything trusts it.
  if (!EncodeRows(0, static_cast<TupleId>(bound))) return;
  synced_version_ = rel_->version();
  synced_overwrite_version_ = rel_->overwrite_version();
}

void EncodedRelation::Sync() {
  if (InSync()) return;
  if (synced_overwrite_version_ != rel_->overwrite_version()) {
    Rebuild();
    return;
  }
  // Appends and/or deletes only: encode the fresh id range. Dead tuples in
  // the old range keep their codes (scans skip them via liveness). The
  // extension writes only past every frozen view's size, so pinned readers
  // are unaffected (the chunk relocates if it must grow, which leaves their
  // old chunk alive via its refcount).
  const TupleId from = IdBound();
  const TupleId to = rel_->IdBound();
  for (auto& col : columns_) {
    col.ExtendFill(static_cast<size_t>(to), kNullCode);
  }
  if (!EncodeRows(from, to)) return;  // cancelled: stay stale, never lie
  synced_version_ = rel_->version();
}

bool EncodedRelation::EncodeRows(TupleId from, TupleId to) {
  const size_t ncols = columns_.size();
  if (to <= from || ncols == 0) return true;
  // Detach dictionaries shared with frozen views up front, on this thread:
  // the per-column workers below must never swap a shared_ptr another
  // reader could be copying.
  for (size_t c = 0; c < ncols; ++c) MutableDict(c);
  const uint64_t cells = static_cast<uint64_t>(to - from) * ncols;
  if (pool_ != nullptr && ncols >= 2 && cells >= kParallelEncodeMinCells) {
    // Per-column fan-out: each column owns its dictionary, and within one
    // column codes are issued in row order serially or not — the parallel
    // encode is byte-identical to the serial one. Hydrate lazily loaded
    // rows on this thread first; workers must never race the materializer.
    rel_->EnsureHydrated();
    // Workers check the token themselves (per kEncodeCancelBatch rows) and
    // stop early; the re-check below decides whether the fan-out finished.
    pool_->Run(ncols, [&](size_t c) { EncodeColumn(c, from, to); });
    return cancel_ == nullptr || cancel_->Check().ok();
  }
  for (TupleId tid = from; tid < to; ++tid) {
    if (cancel_ != nullptr && (tid - from) % kEncodeCancelBatch == 0 &&
        !cancel_->Check().ok()) {
      return false;
    }
    if (!rel_->IsLive(tid)) continue;
    const Row& row = rel_->row(tid);
    for (size_t c = 0; c < ncols; ++c) {
      columns_[c].Set(static_cast<size_t>(tid), dicts_[c]->Encode(row[c]));
    }
  }
  return cancel_ == nullptr || cancel_->Check().ok();
}

void EncodedRelation::EncodeColumn(size_t col, TupleId from, TupleId to) {
  Dictionary& dict = *dicts_[col];  // detached by EncodeRows already
  CodeColumn& codes = columns_[col];
  for (TupleId tid = from; tid < to; ++tid) {
    if (cancel_ != nullptr && (tid - from) % kEncodeCancelBatch == 0 &&
        !cancel_->Check().ok()) {
      return;  // EncodeRows re-checks and withholds the sync marks
    }
    if (!rel_->IsLive(tid)) continue;
    codes.Set(static_cast<size_t>(tid), dict.Encode(rel_->row(tid)[col]));
  }
}

void EncodedRelation::ApplyInsert(TupleId tid) {
  assert(tid == IdBound());
  for (auto& col : columns_) {
    col.ExtendFill(static_cast<size_t>(tid) + 1, kNullCode);
  }
  if (!EncodeRows(tid, tid + 1)) return;  // cancelled: stay stale
  synced_version_ = rel_->version();
}

void EncodedRelation::ApplyCell(TupleId tid, size_t col) {
  assert(tid >= 0 && tid < IdBound() && col < columns_.size());
  // Set() below the frozen watermark detaches the chunk copy-on-write;
  // MutableDict does the same for the dictionary.
  columns_[col].Set(static_cast<size_t>(tid),
                    MutableDict(col).Encode(rel_->cell(tid, col)));
  synced_version_ = rel_->version();
  synced_overwrite_version_ = rel_->overwrite_version();
}

}  // namespace semandaq::relational
