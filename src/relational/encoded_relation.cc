#include "relational/encoded_relation.h"

#include <cassert>

namespace semandaq::relational {

EncodedRelation::EncodedRelation(const Relation* rel) : rel_(rel) {
  Rebuild();
}

void EncodedRelation::Rebuild() {
  const size_t ncols = rel_->schema().size();
  dicts_.assign(ncols, Dictionary());
  columns_.assign(ncols, {});
  const size_t bound = static_cast<size_t>(rel_->IdBound());
  for (auto& col : columns_) col.assign(bound, kNullCode);
  EncodeRows(0, static_cast<TupleId>(bound));
  synced_version_ = rel_->version();
  synced_overwrite_version_ = rel_->overwrite_version();
}

void EncodedRelation::Sync() {
  if (InSync()) return;
  if (synced_overwrite_version_ != rel_->overwrite_version()) {
    Rebuild();
    return;
  }
  // Appends and/or deletes only: encode the fresh id range. Dead tuples in
  // the old range keep their codes (scans skip them via liveness).
  const TupleId from = IdBound();
  const TupleId to = rel_->IdBound();
  for (auto& col : columns_) col.resize(static_cast<size_t>(to), kNullCode);
  EncodeRows(from, to);
  synced_version_ = rel_->version();
}

void EncodedRelation::EncodeRows(TupleId from, TupleId to) {
  for (TupleId tid = from; tid < to; ++tid) {
    if (!rel_->IsLive(tid)) continue;
    const Row& row = rel_->row(tid);
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c][static_cast<size_t>(tid)] = dicts_[c].Encode(row[c]);
    }
  }
}

void EncodedRelation::ApplyInsert(TupleId tid) {
  assert(tid == IdBound());
  for (auto& col : columns_) {
    col.resize(static_cast<size_t>(tid) + 1, kNullCode);
  }
  EncodeRows(tid, tid + 1);
  synced_version_ = rel_->version();
}

void EncodedRelation::ApplyCell(TupleId tid, size_t col) {
  assert(tid >= 0 && tid < IdBound() && col < columns_.size());
  columns_[col][static_cast<size_t>(tid)] =
      dicts_[col].Encode(rel_->cell(tid, col));
  synced_version_ = rel_->version();
  synced_overwrite_version_ = rel_->overwrite_version();
}

}  // namespace semandaq::relational
