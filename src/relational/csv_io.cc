#include "relational/csv_io.h"

#include "common/csv.h"
#include "common/string_util.h"

namespace semandaq::relational {

namespace {

common::Result<Value> ParseCell(const std::string& text, DataType type) {
  if (text.empty()) return Value::Null();
  switch (type) {
    case DataType::kString:
      return Value::String(text);
    case DataType::kInt: {
      int64_t v = 0;
      if (!common::ParseInt64(text, &v)) {
        return common::Status::InvalidArgument("not an integer: '" + text + "'");
      }
      return Value::Int(v);
    }
    case DataType::kDouble: {
      double v = 0;
      if (!common::ParseDouble(text, &v)) {
        return common::Status::InvalidArgument("not a number: '" + text + "'");
      }
      return Value::Double(v);
    }
    case DataType::kNull:
      return Value::Null();
  }
  return common::Status::Internal("unreachable data type");
}

}  // namespace

common::Result<Relation> RelationFromCsv(std::string_view name,
                                         std::string_view csv_text,
                                         const Schema* schema) {
  SEMANDAQ_ASSIGN_OR_RETURN(auto rows, common::CsvParser::ParseDocument(csv_text));
  if (rows.empty()) {
    return common::Status::InvalidArgument("CSV has no header row");
  }
  const std::vector<std::string>& header = rows.front();

  Schema effective;
  if (schema != nullptr) {
    if (header.size() != schema->size()) {
      return common::Status::InvalidArgument(
          "CSV header arity " + std::to_string(header.size()) +
          " does not match declared schema arity " + std::to_string(schema->size()));
    }
    for (size_t i = 0; i < header.size(); ++i) {
      if (!common::EqualsIgnoreCase(common::Trim(header[i]), schema->attr(i).name)) {
        return common::Status::InvalidArgument(
            "CSV header column '" + header[i] + "' does not match schema attribute '" +
            schema->attr(i).name + "'");
      }
    }
    effective = *schema;
  } else {
    std::vector<std::string> names;
    names.reserve(header.size());
    for (const auto& h : header) names.emplace_back(common::Trim(h));
    effective = Schema::AllStrings(names);
    if (effective.size() != header.size()) {
      return common::Status::InvalidArgument("duplicate column names in CSV header");
    }
  }

  Relation rel{std::string(name), effective};
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& fields = rows[r];
    if (fields.size() != effective.size()) {
      return common::Status::InvalidArgument(
          "CSV record " + std::to_string(r) + " has " + std::to_string(fields.size()) +
          " fields, expected " + std::to_string(effective.size()));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      SEMANDAQ_ASSIGN_OR_RETURN(Value v, ParseCell(fields[c], effective.attr(c).type));
      row.push_back(std::move(v));
    }
    auto ins = rel.Insert(std::move(row));
    if (!ins.ok()) return ins.status();
  }
  return rel;
}

common::Result<Relation> LoadRelationCsv(std::string_view name,
                                         const std::string& path,
                                         const Schema* schema) {
  SEMANDAQ_ASSIGN_OR_RETURN(std::string text, common::ReadFileToString(path));
  return RelationFromCsv(name, text, schema);
}

std::string RelationToCsv(const Relation& rel) {
  std::string out = common::CsvFormatLine(rel.schema().Names());
  out.push_back('\n');
  rel.ForEach([&](TupleId, const Row& row) {
    std::vector<std::string> fields;
    fields.reserve(row.size());
    for (const Value& v : row) {
      fields.push_back(v.is_null() ? std::string() : v.ToDisplayString());
    }
    out += common::CsvFormatLine(fields);
    out.push_back('\n');
  });
  return out;
}

common::Status SaveRelationCsv(const Relation& rel, const std::string& path) {
  return common::WriteStringToFile(path, RelationToCsv(rel));
}

}  // namespace semandaq::relational
