#ifndef SEMANDAQ_RELATIONAL_RELATION_H_
#define SEMANDAQ_RELATIONAL_RELATION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace semandaq::relational {

/// Stable identifier of a tuple within one relation. Ids are assigned by
/// insertion order and never reused; deletion leaves a tombstone. The whole
/// data-quality stack (violation tables, repairs, audits) refers to tuples
/// by TupleId, so stability across updates is essential.
using TupleId = int64_t;

/// Observer of one relation's successful mutations, notified synchronously
/// after each Insert/Delete/SetCell commits. This is the hook the storage
/// layer's live WAL attachment hangs off: every mutation path — monitor
/// update batches, repairs, any future SQL DML — funnels through the three
/// Relation mutators, so observing here covers them all by construction.
/// Observers must not mutate the relation re-entrantly.
class MutationObserver {
 public:
  virtual ~MutationObserver() = default;
  virtual void OnInsert(TupleId tid, const Row& row) = 0;
  virtual void OnDelete(TupleId tid) = 0;
  virtual void OnSetCell(TupleId tid, size_t col, const Value& value) = 0;
};

/// An in-memory relation: a schema plus a bag of rows with stable ids.
///
/// This is the storage substrate standing in for the RDBMS layer of the
/// paper's architecture (Fig. 1, "Database Servers"). Mutation goes through
/// Insert/Delete/SetCell so that indexes and monitors can observe changes.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  /// Copies duplicate the data but NOT the observer: a clone is a new,
  /// unwatched relation (a WAL attachment journals exactly one relation).
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  /// Produces the decoded rows for the ids a lazily loaded relation was
  /// created with — the deferred half of Relation::FromStorage. Must be
  /// pure (a Clone of an unhydrated relation re-runs it independently) and
  /// infallible (the storage loader checksum-validates everything before
  /// installing one; by hydration time there is nothing left to fail).
  using RowHydrator = std::function<std::vector<Row>()>;

  /// Bulk-load hook for the storage layer: adopts a liveness mask (one
  /// byte per id; nonzero = live) — the positional index is the TupleId, so
  /// ids and tombstones of a persisted relation come back exactly — and a
  /// deferred row materializer. Rows
  /// stay unmaterialized until the first row access (EnsureHydrated), so a
  /// load-then-detect path that scans encoded columns never pays the
  /// per-cell decode at all; audit/repair/SQL hydrate transparently on
  /// first touch. Version counters start at 0, as for a freshly built
  /// relation.
  static Relation FromStorage(std::string name, Schema schema,
                              std::vector<uint8_t> live, RowHydrator hydrator);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }

  /// Number of live (non-deleted) tuples.
  size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

  /// One past the largest TupleId ever assigned; iterate ids in [0, bound)
  /// and skip dead ones.
  TupleId IdBound() const { return static_cast<TupleId>(rows_.size()); }

  bool IsLive(TupleId tid) const {
    return tid >= 0 && tid < IdBound() && live_[static_cast<size_t>(tid)] != 0;
  }

  /// The liveness byte array, indexed by TupleId over [0, IdBound()):
  /// nonzero = live. This is the raw-pointer form the SIMD scan kernels
  /// consume (common::simd::Kernels::MaskLive) — one byte per tuple so a
  /// vector compare can test 16/32 tuples per instruction; no alignment is
  /// guaranteed (kernels use unaligned loads).
  const uint8_t* live_data() const { return live_.data(); }

  /// Status form of IsLive: OutOfRange (naming `verb`, e.g. "delete") when
  /// `tid` is dead or unknown. Shared by the mutators and by pre-flight
  /// validation (relational::ValidateUpdate) in appliers that mirror
  /// relation state and must reject an update *before* touching their own
  /// structures.
  common::Status CheckLive(TupleId tid, std::string_view verb) const;

  /// Status form of the column-ordinal bounds check, the companion of
  /// CheckLive for kModify-style updates.
  common::Status CheckColumn(size_t col) const;

  /// Monotone counter bumped by every successful mutation (Insert, Delete,
  /// SetCell). Snapshot consumers (EncodedRelation) compare it to decide
  /// whether they are stale.
  uint64_t version() const { return version_; }

  /// Monotone counter bumped only by successful SetCell calls. A snapshot
  /// whose overwrite_version matches but whose version lags has only missed
  /// appends/deletes and can catch up without a full rebuild.
  uint64_t overwrite_version() const { return overwrite_version_; }

  /// Materializes lazily loaded rows (no-op for every relation not built
  /// by FromStorage, and after the first call). Every row accessor invokes
  /// this automatically. Hydration itself is thread-safe (double-checked
  /// under an internal mutex), so concurrent *readers* of an immutable
  /// relation — e.g. server sessions sharing one pinned snapshot — may
  /// race to the first row access safely; concurrent *mutation* remains
  /// the caller's problem, as for every other mutator.
  void EnsureHydrated() const {
    if (needs_hydration_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(*hydrate_mu_);
      if (needs_hydration_.load(std::memory_order_relaxed)) {
        HydrateRows();
        needs_hydration_.store(false, std::memory_order_release);
      }
    }
  }

  /// Appends a row; the row arity must match the schema.
  common::Result<TupleId> Insert(Row row);

  /// Appends a row, asserting arity; for generators and tests.
  TupleId MustInsert(Row row);

  /// Tombstones a live tuple.
  common::Status Delete(TupleId tid);

  /// Overwrites one cell of a live tuple.
  common::Status SetCell(TupleId tid, size_t col, Value v);

  /// Read access; the tuple must be live (asserted in debug builds).
  const Row& row(TupleId tid) const;

  /// Cell access shorthand.
  const Value& cell(TupleId tid, size_t col) const { return row(tid)[col]; }

  /// All live tuple ids, ascending. O(IdBound()).
  std::vector<TupleId> LiveIds() const;

  /// Invokes fn(tid, row) for every live tuple in id order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    EnsureHydrated();
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (live_[i]) fn(static_cast<TupleId>(i), rows_[i]);
    }
  }

  /// Deep copy with the same ids (tombstones preserved). The observer is
  /// not copied (see the copy constructor).
  Relation Clone() const { return *this; }

  /// Attaches (or with nullptr detaches) the mutation observer. Borrowed,
  /// never owned; at most one per relation. The caller must guarantee the
  /// observer outlives the relation or is detached first.
  void set_observer(MutationObserver* observer) { observer_ = observer; }
  MutationObserver* observer() const { return observer_; }

  /// Projects the given columns of a live tuple into a fresh row.
  Row Project(TupleId tid, const std::vector<size_t>& cols) const;

  /// Pretty-prints up to `max_rows` tuples as an ASCII table (for examples
  /// and the fig_* binaries).
  std::string ToAsciiTable(size_t max_rows = 20) const;

 private:
  /// Runs and discards the installed hydrator (see FromStorage).
  void HydrateRows() const;

  std::string name_;
  Schema schema_;
  // Logically const row access may materialize lazily loaded rows, hence
  // mutable; hydration replaces empty placeholders with equal-by-contract
  // decoded rows, so observable state never changes.
  mutable std::vector<Row> rows_;
  mutable RowHydrator hydrator_;  // non-null = rows_ prefix pending
  mutable std::atomic<bool> needs_hydration_{false};
  mutable std::unique_ptr<std::mutex> hydrate_mu_ =
      std::make_unique<std::mutex>();
  // One byte per id (nonzero = live), not vector<bool>: the SIMD liveness
  // kernels need a raw byte pointer, and byte loads beat bit extraction in
  // the scalar paths too.
  std::vector<uint8_t> live_;
  size_t live_count_ = 0;
  uint64_t version_ = 0;
  uint64_t overwrite_version_ = 0;
  MutationObserver* observer_ = nullptr;  // borrowed; never copied
};

}  // namespace semandaq::relational

#endif  // SEMANDAQ_RELATIONAL_RELATION_H_
