#ifndef SEMANDAQ_RELATIONAL_CSV_IO_H_
#define SEMANDAQ_RELATIONAL_CSV_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "relational/relation.h"

namespace semandaq::relational {

/// Parses CSV text whose first record is the header into a relation.
/// When `schema` is null, every column is typed STRING; otherwise the header
/// must match the schema and cells are parsed to the declared types
/// (empty cell -> NULL).
common::Result<Relation> RelationFromCsv(std::string_view name,
                                         std::string_view csv_text,
                                         const Schema* schema = nullptr);

/// Loads a CSV file (header row required) into a relation.
common::Result<Relation> LoadRelationCsv(std::string_view name,
                                         const std::string& path,
                                         const Schema* schema = nullptr);

/// Serializes the live tuples of a relation as CSV with a header row.
std::string RelationToCsv(const Relation& rel);

/// Writes RelationToCsv(rel) to a file.
common::Status SaveRelationCsv(const Relation& rel, const std::string& path);

}  // namespace semandaq::relational

#endif  // SEMANDAQ_RELATIONAL_CSV_IO_H_
