#include "relational/schema.h"

#include "common/string_util.h"

namespace semandaq::relational {

Schema::Schema(std::vector<AttributeDef> attrs) {
  for (auto& a : attrs) {
    // Duplicate names in the constructor are a programming error; keep the
    // first occurrence and let AddAttribute report duplicates on the
    // fallible path.
    (void)AddAttribute(std::move(a));
  }
}

Schema Schema::AllStrings(std::initializer_list<std::string_view> names) {
  Schema s;
  for (std::string_view n : names) {
    (void)s.AddAttribute(AttributeDef{std::string(n), DataType::kString, {}});
  }
  return s;
}

Schema Schema::AllStrings(const std::vector<std::string>& names) {
  Schema s;
  for (const std::string& n : names) {
    (void)s.AddAttribute(AttributeDef{n, DataType::kString, {}});
  }
  return s;
}

int Schema::IndexOf(std::string_view name) const {
  auto it = by_lower_name_.find(common::ToLower(name));
  if (it == by_lower_name_.end()) return -1;
  return static_cast<int>(it->second);
}

common::Result<size_t> Schema::RequireIndexOf(std::string_view name) const {
  const int i = IndexOf(name);
  if (i < 0) {
    return common::Status::NotFound("no attribute named '" + std::string(name) +
                                    "' in schema (" + ToString() + ")");
  }
  return static_cast<size_t>(i);
}

common::Status Schema::AddAttribute(AttributeDef attr) {
  std::string key = common::ToLower(attr.name);
  if (by_lower_name_.count(key) > 0) {
    return common::Status::AlreadyExists("duplicate attribute name: " + attr.name);
  }
  by_lower_name_.emplace(std::move(key), attrs_.size());
  attrs_.push_back(std::move(attr));
  return common::Status::OK();
}

std::vector<std::string> Schema::Names() const {
  std::vector<std::string> out;
  out.reserve(attrs_.size());
  for (const auto& a : attrs_) out.push_back(a.name);
  return out;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attrs_[i].name;
    out += " ";
    out += DataTypeToString(attrs_[i].type);
  }
  return out;
}

bool Schema::Equals(const Schema& other) const {
  if (attrs_.size() != other.attrs_.size()) return false;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (!common::EqualsIgnoreCase(attrs_[i].name, other.attrs_[i].name)) return false;
    if (attrs_[i].type != other.attrs_[i].type) return false;
  }
  return true;
}

}  // namespace semandaq::relational
