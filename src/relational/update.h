#ifndef SEMANDAQ_RELATIONAL_UPDATE_H_
#define SEMANDAQ_RELATIONAL_UPDATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/relation.h"

namespace semandaq::relational {

/// One change to a relation, the unit the data monitor reacts to (paper §2:
/// "the data monitor responds to updates on the data").
struct Update {
  enum class Kind { kInsert, kDelete, kModify };

  Kind kind = Kind::kInsert;

  /// For kDelete / kModify: the target tuple.
  TupleId tid = -1;

  /// For kInsert: the new row.
  Row row;

  /// For kModify: which column changes and to what.
  size_t col = 0;
  Value new_value;

  static Update Insert(Row r) {
    Update u;
    u.kind = Kind::kInsert;
    u.row = std::move(r);
    return u;
  }
  static Update DeleteTuple(TupleId tid) {
    Update u;
    u.kind = Kind::kDelete;
    u.tid = tid;
    return u;
  }
  static Update Modify(TupleId tid, size_t col, Value v) {
    Update u;
    u.kind = Kind::kModify;
    u.tid = tid;
    u.col = col;
    u.new_value = std::move(v);
    return u;
  }

  std::string ToString() const;
};

/// An ordered batch of updates applied atomically (from the monitor's point
/// of view: detection/repair runs after the whole batch).
using UpdateBatch = std::vector<Update>;

/// Pre-flight validation of one update against `rel`, without applying it:
/// inserts must match the schema arity, deletes and modifies must target a
/// live tuple, and modifies a valid column (Relation::CheckLive /
/// CheckColumn). Appliers that mirror relation state (IncrementalDetector
/// and the repair engines built on it) call this *before* unregistering the
/// tuple from their own structures, so a rejected update can never leave
/// them drifted from the (unchanged) relation.
common::Status ValidateUpdate(const Update& u, const Relation& rel);

/// Applies a batch to `rel` in order. Inserted tuples get fresh ids which
/// are appended to `inserted_ids` when non-null. Stops at the first error.
common::Status ApplyUpdates(const UpdateBatch& batch, Relation* rel,
                            std::vector<TupleId>* inserted_ids = nullptr);

}  // namespace semandaq::relational

#endif  // SEMANDAQ_RELATIONAL_UPDATE_H_
