#ifndef SEMANDAQ_RELATIONAL_COLUMN_CHUNK_H_
#define SEMANDAQ_RELATIONAL_COLUMN_CHUNK_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "relational/dictionary.h"

namespace semandaq::relational {

/// A refcounted, fixed-capacity block of column codes — the storage unit
/// behind CodeColumn and the epoch-published snapshots of the server layer
/// (src/server). A chunk itself carries no length: the logical size lives
/// in every CodeColumn (or frozen snapshot view) that references it, which
/// is what makes lock-free publication work:
///
///   * bytes below a published length are IMMUTABLE for the lifetime of the
///     chunk — every reader that pinned that length may scan them freely;
///   * the writer appends in place *beyond* the largest published length
///     (readers never look there), and re-publishes a larger length;
///   * rewriting an already-published index requires copy-on-write: clone
///     the chunk, edit the clone, publish the clone (CodeColumn::Set does
///     this automatically via its shared-prefix watermark).
///
/// Growth relocates into a fresh, larger chunk; pinned readers keep the old
/// one alive through their references, so relocation never invalidates a
/// published view. Allocation is eager and never reuses memory, so a code
/// pointer taken from a pinned view stays valid for the pin's lifetime.
class ColumnChunk {
 public:
  /// A fresh chunk of at least `capacity` codes (uninitialized).
  static std::shared_ptr<ColumnChunk> Allocate(size_t capacity);

  Code* data() { return data_.get(); }
  const Code* data() const { return data_.get(); }
  size_t capacity() const { return capacity_; }

 private:
  explicit ColumnChunk(size_t capacity)
      : data_(new Code[capacity]), capacity_(capacity) {}

  std::unique_ptr<Code[]> data_;
  size_t capacity_;
};

/// One column of codes over a refcounted ColumnChunk, with the mutation
/// discipline that makes frozen shares safe:
///
///   * appends (PushBack / ExtendFill) write in place past the shared
///     watermark — zero-copy even while snapshots hold the chunk;
///   * overwrites below the watermark (Set / AssignFill) detach first —
///     copy-on-write, so no frozen share ever observes a change;
///   * ShareFrozen() returns an immutable view (same chunk, current size)
///     whose contents are stable forever.
///
/// The read surface (data/size/operator[]/begin/end) is a drop-in for the
/// flat std::vector<Code> columns it replaces — scans and SIMD kernels
/// still see one contiguous array.
///
/// Thread contract: all mutators are single-writer (the relation's writer
/// thread); frozen shares may be read concurrently with writer appends
/// because appends never touch published indices. Publication of a new
/// size must happen through a release/acquire edge (the server publishes
/// whole snapshots via atomic shared_ptr swaps).
class CodeColumn {
 public:
  CodeColumn() = default;

  /// Copies share the chunk copy-on-write at O(1): both sides keep their
  /// bytes — any later overwrite on either side detaches first, and the
  /// copy never appends into the shared chunk (it does not own the tail) —
  /// so copying preserves plain value semantics.
  CodeColumn(const CodeColumn& other)
      : chunk_(other.chunk_),
        size_(other.size_),
        shared_below_(other.size_),
        owns_tail_(false) {
    other.shared_below_ = other.size_;
  }
  CodeColumn& operator=(const CodeColumn& other) {
    if (this != &other) {
      chunk_ = other.chunk_;
      size_ = other.size_;
      shared_below_ = other.size_;
      owns_tail_ = false;
      other.shared_below_ = other.size_;
    }
    return *this;
  }
  CodeColumn(CodeColumn&&) noexcept = default;
  CodeColumn& operator=(CodeColumn&&) noexcept = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Code* data() const { return chunk_ ? chunk_->data() : nullptr; }
  Code operator[](size_t i) const { return chunk_->data()[i]; }
  const Code* begin() const { return data(); }
  const Code* end() const { return data() + size_; }

  /// Sets one code. Indices at or past the shared watermark write in
  /// place; below it the chunk is cloned first (COW), so frozen shares
  /// keep their bytes.
  void Set(size_t i, Code c);

  /// Appends one code in place (grows the chunk when full; frozen shares
  /// keep the old chunk alive and unchanged).
  void PushBack(Code c);

  /// Grows to `n` codes, filling the new tail [size, n) with `fill` in
  /// place (the encode append path). No-op when n <= size.
  void ExtendFill(size_t n, Code fill);

  /// Replaces the whole column with `n` copies of `fill` (the rebuild
  /// path). Always detaches from frozen shares first.
  void AssignFill(size_t n, Code fill);

  /// Replaces the whole column with `n` codes memcpy'd from `src` (the
  /// storage loader's bulk adopt). Detaches from frozen shares first.
  void Assign(const Code* src, size_t n);

  /// An immutable view of the current contents: same chunk, current size.
  /// The view's bytes never change — later appends land past its size and
  /// later overwrites detach. Marks the current size as shared so Set
  /// knows where in-place writes stop being safe.
  CodeColumn ShareFrozen() const;

  /// Number of CodeColumns (and snapshot views) sharing this chunk; 0 for
  /// an empty column. Exposed for tests asserting COW behavior.
  long chunk_use_count() const { return chunk_ ? chunk_.use_count() : 0; }

  friend bool operator==(const CodeColumn& a, const CodeColumn& b);
  friend bool operator!=(const CodeColumn& a, const CodeColumn& b) {
    return !(a == b);
  }

 private:
  /// Relocates into a fresh chunk of at least `capacity`, copying the
  /// current prefix. The fresh chunk is unshared and fully owned.
  void Relocate(size_t capacity);

  /// Makes every index writable: adopts a sole-referenced chunk, clones a
  /// shared one (COW).
  void DetachIfShared();

  /// Makes in-place appends up to `capacity` codes safe: keeps a chunk
  /// whose tail this column owns, adopts a sole-referenced one, clones or
  /// grows otherwise.
  void EnsureWritableTail(size_t capacity);

  std::shared_ptr<ColumnChunk> chunk_;
  size_t size_ = 0;
  /// Indices below this may be referenced by frozen shares or copies of
  /// this column; writes there must detach. Appends at/after it are
  /// private to the writer until the next ShareFrozen.
  mutable size_t shared_below_ = 0;
  /// True when this column may append into chunk_ in place past size_.
  /// Exactly one CodeColumn owns a chunk's tail: frozen shares and copies
  /// are created not owning it and relocate before their first append.
  bool owns_tail_ = true;
};

/// Decodes the live rows of a chunked snapshot back into materialized Rows
/// (dead ids keep empty placeholder rows, matching the storage loader's
/// semantics). This is the shared row hydrator of the storage load path
/// and the server's pinned snapshots: both defer row materialization to
/// first access and decode from the same refcounted chunks + dictionaries
/// the encoded scans use, so nothing retains a second copy of the data.
std::vector<Row> DecodeRowsFromColumns(
    const std::vector<std::shared_ptr<Dictionary>>& dicts,
    const std::vector<CodeColumn>& columns, const std::vector<uint8_t>& live);

}  // namespace semandaq::relational

#endif  // SEMANDAQ_RELATIONAL_COLUMN_CHUNK_H_
