#include "relational/column_chunk.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace semandaq::relational {

namespace {

/// Fresh chunks start at this many codes so append-heavy workloads do not
/// relocate constantly at small sizes.
constexpr size_t kMinChunkCapacity = 1024;

}  // namespace

std::shared_ptr<ColumnChunk> ColumnChunk::Allocate(size_t capacity) {
  return std::shared_ptr<ColumnChunk>(
      new ColumnChunk(std::max(capacity, kMinChunkCapacity)));
}

void CodeColumn::Relocate(size_t capacity) {
  std::shared_ptr<ColumnChunk> fresh = ColumnChunk::Allocate(capacity);
  if (size_ > 0) {
    std::memcpy(fresh->data(), chunk_->data(), size_ * sizeof(Code));
  }
  chunk_ = std::move(fresh);  // frozen shares keep the old chunk alive
  shared_below_ = 0;
  owns_tail_ = true;
}

void CodeColumn::DetachIfShared() {
  if (chunk_ != nullptr && chunk_.use_count() > 1) {
    Relocate(chunk_->capacity());
  } else {
    // Sole reference: adopt the chunk outright, every index is private.
    shared_below_ = 0;
    owns_tail_ = true;
  }
}

void CodeColumn::EnsureWritableTail(size_t capacity) {
  if (chunk_ != nullptr && owns_tail_ && capacity <= chunk_->capacity()) {
    return;
  }
  if (chunk_ != nullptr && chunk_.use_count() == 1 &&
      capacity <= chunk_->capacity()) {
    shared_below_ = 0;  // sole reference: adopt instead of copying
    owns_tail_ = true;
    return;
  }
  Relocate(std::max(capacity, size_ * 2));
}

void CodeColumn::Set(size_t i, Code c) {
  assert(i < size_);
  if (i < shared_below_) DetachIfShared();
  chunk_->data()[i] = c;
}

void CodeColumn::PushBack(Code c) {
  EnsureWritableTail(size_ + 1);
  chunk_->data()[size_++] = c;
}

void CodeColumn::ExtendFill(size_t n, Code fill) {
  if (n <= size_) return;
  EnsureWritableTail(n);
  std::fill(chunk_->data() + size_, chunk_->data() + n, fill);
  size_ = n;
}

void CodeColumn::AssignFill(size_t n, Code fill) {
  if (chunk_ == nullptr || n > chunk_->capacity() || chunk_.use_count() > 1) {
    chunk_ = ColumnChunk::Allocate(n);
  }
  shared_below_ = 0;
  owns_tail_ = true;
  std::fill(chunk_->data(), chunk_->data() + n, fill);
  size_ = n;
}

void CodeColumn::Assign(const Code* src, size_t n) {
  if (chunk_ == nullptr || n > chunk_->capacity() || chunk_.use_count() > 1) {
    chunk_ = ColumnChunk::Allocate(n);
  }
  shared_below_ = 0;
  owns_tail_ = true;
  if (n > 0) std::memcpy(chunk_->data(), src, n * sizeof(Code));
  size_ = n;
}

CodeColumn CodeColumn::ShareFrozen() const {
  CodeColumn view;
  view.chunk_ = chunk_;
  view.size_ = size_;
  view.shared_below_ = size_;  // the view itself must never write at all
  view.owns_tail_ = false;
  shared_below_ = size_;  // writer overwrites below here must detach
  return view;
}

bool operator==(const CodeColumn& a, const CodeColumn& b) {
  if (a.size_ != b.size_) return false;
  if (a.size_ == 0) return true;
  return std::memcmp(a.data(), b.data(), a.size_ * sizeof(Code)) == 0;
}

std::vector<Row> DecodeRowsFromColumns(
    const std::vector<std::shared_ptr<Dictionary>>& dicts,
    const std::vector<CodeColumn>& columns, const std::vector<uint8_t>& live) {
  const size_t ncols = columns.size();
  const size_t bound = live.size();
  std::vector<Row> rows(bound);
  for (size_t tid = 0; tid < bound; ++tid) {
    if (live[tid]) rows[tid].resize(ncols);
  }
  for (size_t c = 0; c < ncols; ++c) {
    const Code* codes = columns[c].data();
    const Dictionary& dict = *dicts[c];
    for (size_t tid = 0; tid < bound; ++tid) {
      if (!live[tid]) continue;
      const Code code = codes[tid];
      if (code != kNullCode) rows[tid][c] = dict.Decode(code);
    }
  }
  return rows;
}

}  // namespace semandaq::relational
