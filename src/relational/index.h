#ifndef SEMANDAQ_RELATIONAL_INDEX_H_
#define SEMANDAQ_RELATIONAL_INDEX_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/relation.h"

namespace semandaq::relational {

/// Hash index over a column subset of one relation: key = projected row,
/// payload = tuple ids carrying that key.
///
/// The paper's constraint engine "maximally leverages the use of indices ...
/// provided by DBMS"; in this substrate HashIndex is that facility. The
/// incremental detector keeps one per embedded FD.
class HashIndex {
 public:
  /// Builds an index over `cols` of `rel`, scanning all live tuples.
  HashIndex(const Relation& rel, std::vector<size_t> cols);

  /// Builds an empty index over `cols` (caller feeds Add/Remove).
  explicit HashIndex(std::vector<size_t> cols);

  const std::vector<size_t>& cols() const { return cols_; }

  /// Tuple ids whose projection equals `key` (empty vector when none).
  const std::vector<TupleId>& Lookup(const Row& key) const;

  /// Registers a tuple (caller projects nothing; the index projects `row`).
  void Add(TupleId tid, const Row& row);

  /// Unregisters a tuple; the row must be the currently indexed image.
  void Remove(TupleId tid, const Row& row);

  /// Number of distinct keys.
  size_t NumKeys() const { return buckets_.size(); }

  /// Invokes fn(key, ids) for every distinct key.
  template <typename Fn>
  void ForEachGroup(Fn&& fn) const {
    for (const auto& [key, ids] : buckets_) fn(key, ids);
  }

 private:
  Row ProjectKey(const Row& row) const;

  std::vector<size_t> cols_;
  std::unordered_map<Row, std::vector<TupleId>, RowHash, RowEq> buckets_;
  std::vector<TupleId> empty_;
};

}  // namespace semandaq::relational

#endif  // SEMANDAQ_RELATIONAL_INDEX_H_
