#ifndef SEMANDAQ_COMMON_STATUS_H_
#define SEMANDAQ_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace semandaq::common {

/// Machine-readable failure categories used across the library.
///
/// Semandaq never throws exceptions across API boundaries (RocksDB/Arrow
/// idiom); fallible operations return a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed (bad SQL, bad CFD text, ...).
  kNotFound,          ///< A named relation/attribute/CFD does not exist.
  kAlreadyExists,     ///< A name collision on insertion into a catalog.
  kOutOfRange,        ///< An index (tuple id, column ordinal) is out of bounds.
  kFailedPrecondition,///< Operation not valid in the current state.
  kUnsatisfiable,     ///< A CFD set has no non-empty satisfying instance.
  kIoError,           ///< File/CSV read or write failure.
  kInternal,          ///< A bug: an invariant the library maintains was broken.
  kDeadlineExceeded,  ///< An operation ran past its caller-imposed deadline.
  kUnavailable,       ///< Transient overload (server shedding load); retryable.
  kCancelled,         ///< The caller cancelled the operation (common/cancel.h).
};

/// Returns a short human-readable name such as "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// The result of a fallible operation that produces no value.
///
/// A Status is cheap to copy when OK (no allocation) and carries a message
/// describing the failure otherwise. Typical use:
///
/// \code
///   Status s = db.AddRelation(std::move(rel));
///   if (!s.ok()) return s;
/// \endcode
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unsatisfiable(std::string msg) {
    return Status(StatusCode::kUnsatisfiable, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>", for logs and test failure output.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// The result of a fallible operation that produces a T on success.
///
/// Exactly one of value/status is set. Accessing value() on an error is a
/// programming bug and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value makes `return t;` work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit construction from an error Status makes `return status;` work.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result constructed from OK status without a value");
    if (status_.ok()) status_ = Status::Internal("Result built from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ is set.
};

}  // namespace semandaq::common

/// Propagates a non-OK Status out of the enclosing function.
#define SEMANDAQ_RETURN_IF_ERROR(expr)                      \
  do {                                                      \
    ::semandaq::common::Status _st = (expr);                \
    if (!_st.ok()) return _st;                              \
  } while (0)

#define SEMANDAQ_CONCAT_INNER_(a, b) a##b
#define SEMANDAQ_CONCAT_(a, b) SEMANDAQ_CONCAT_INNER_(a, b)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// otherwise returns the error Status from the enclosing function.
#define SEMANDAQ_ASSIGN_OR_RETURN(lhs, expr)                              \
  auto SEMANDAQ_CONCAT_(_res_, __LINE__) = (expr);                        \
  if (!SEMANDAQ_CONCAT_(_res_, __LINE__).ok())                            \
    return SEMANDAQ_CONCAT_(_res_, __LINE__).status();                    \
  lhs = std::move(SEMANDAQ_CONCAT_(_res_, __LINE__)).value()

#endif  // SEMANDAQ_COMMON_STATUS_H_
