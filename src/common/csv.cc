#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace semandaq::common {

Result<std::vector<std::string>> CsvParser::ParseLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      cur.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
      ++i;
      continue;
    }
    cur.push_back(c);
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field: " + std::string(line));
  }
  fields.push_back(std::move(cur));
  return fields;
}

Result<std::vector<std::vector<std::string>>> CsvParser::ParseDocument(
    std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  size_t start = 0;
  while (start <= text.size()) {
    if (start == text.size()) break;
    // A quoted field may contain newlines; scan for the record end while
    // tracking quote state.
    bool in_quotes = false;
    size_t end = start;
    while (end < text.size()) {
      const char c = text[end];
      if (c == '"') in_quotes = !in_quotes;
      if (c == '\n' && !in_quotes) break;
      ++end;
    }
    std::string_view line = text.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) {
      SEMANDAQ_ASSIGN_OR_RETURN(std::vector<std::string> fields, ParseLine(line));
      rows.push_back(std::move(fields));
    }
    start = end + 1;
  }
  return rows;
}

std::string CsvFormatLine(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    const std::string& f = fields[i];
    const bool needs_quotes =
        f.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes) {
      out += f;
      continue;
    }
    out.push_back('"');
    for (char c : f) {
      if (c == '"') out.push_back('"');
      out.push_back(c);
    }
    out.push_back('"');
  }
  return out;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::IoError("read failure: " + path);
  return ss.str();
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Status::IoError("write failure: " + path);
  return Status::OK();
}

}  // namespace semandaq::common
