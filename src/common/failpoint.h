#ifndef SEMANDAQ_COMMON_FAILPOINT_H_
#define SEMANDAQ_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace semandaq::common {

/// Deterministic fault injection for the storage and server stacks
/// (docs/robustness.md). Production code marks the interesting points of
/// its write paths with named failpoints:
///
///   SEMANDAQ_FAILPOINT("wal.append.pre_sync");            // plain site
///   SEMANDAQ_FAILPOINT_WRITE("wal.append.write", f, buf); // pending write
///
/// Unarmed, a site is one relaxed atomic load — nothing else. Tests arm a
/// site by name to either return an error from the enclosing function or
/// to simulate a crash: the write path stops at the site (a pending write
/// lands only partially, as a torn write would), the enclosing function
/// returns immediately with an injected status, and no cleanup that a real
/// power cut would have skipped gets to run. Combined with
/// storage::FaultInjectionEnv (which drops unsynced bytes on a simulated
/// power cut), this reproduces on-disk states byte-for-byte equal to what
/// a crash at that instruction would leave.
///
/// Capture mode records the name of every site hit, so a recovery sweep
/// can discover the crash points along a path by running it clean once and
/// then crashing at each recorded site in turn (tests/crash_recovery_test).

/// What an armed failpoint does when its site is hit.
struct FailpointConfig {
  enum class Action {
    kError,  ///< the site returns `status`; the write path is intact
    kCrash,  ///< the write path stops here: a pending write lands only
             ///< `keep_bytes` of its payload, then `status` unwinds the
             ///< enclosing call without cleanup
  };
  Action action = Action::kError;
  /// Status injected at the site. Defaults identify the site by name.
  Status status = Status::IoError("fault injected");
  /// kCrash at a SEMANDAQ_FAILPOINT_WRITE site: how many bytes of the
  /// pending write still reach the file (0 = nothing, SIZE_MAX/2 ≈ torn
  /// anywhere; clamped to the pending size).
  size_t keep_bytes = 0;
  /// The site passes through unarmed this many times before triggering
  /// (0 = trigger on the first hit). Once triggered it stays triggered.
  size_t skip_hits = 0;
};

class Failpoints {
 public:
  /// The process-wide registry. Thread-safe; sites are hit from storage
  /// and server threads while tests arm/disarm.
  static Failpoints& Instance();

  /// Arms `name`. Replaces any previous config for the site.
  void Arm(const std::string& name, FailpointConfig config);

  /// Convenience: arm `name` to crash, keeping `keep_bytes` of a pending
  /// write (see FailpointConfig::keep_bytes).
  void ArmCrash(const std::string& name, size_t keep_bytes = 0);

  void Disarm(const std::string& name);

  /// Disarms everything, stops capture, and drops captured names.
  void Clear();

  /// Begins recording the name of every site hit (deduplicated, in first-
  /// hit order) until StopCapture.
  void StartCapture();
  std::vector<std::string> StopCapture();

  /// True if `status` was injected by a crash-armed failpoint.
  static bool IsInjectedCrash(const Status& status);

  // --- site API; use the macros below, not these directly ---

  /// Plain site: returns the injected status, or OK when unarmed.
  Status Hit(const char* name);

  /// Site with a pending write of `size` bytes: sets *keep to how many of
  /// them should reach the file (== size when unarmed) and returns the
  /// status the enclosing function must return after writing them (OK when
  /// unarmed).
  Status HitWrite(const char* name, size_t size, size_t* keep);

 private:
  Failpoints() = default;

  Status Evaluate(const char* name, size_t size, size_t* keep);

  /// Fast-path gate: true while any site is armed or capture is on.
  std::atomic<bool> active_{false};

  std::mutex mu_;
  struct Armed {
    FailpointConfig config;
    size_t hits = 0;
  };
  std::unordered_map<std::string, Armed> armed_;
  bool capturing_ = false;
  std::vector<std::string> captured_;
};

}  // namespace semandaq::common

/// Marks a plain failpoint site: when armed, returns the injected status
/// from the enclosing function (which must return Status or Result<T>).
#define SEMANDAQ_FAILPOINT(name)                                            \
  do {                                                                      \
    ::semandaq::common::Status _fp_status =                                 \
        ::semandaq::common::Failpoints::Instance().Hit(name);               \
    if (!_fp_status.ok()) return _fp_status;                                \
  } while (0)

/// Marks a failpoint site guarding a pending write of `data` (a
/// std::string_view) to `file` (a storage::WritableFile*): unarmed, appends
/// all of it; armed to crash, appends only the configured prefix (a torn
/// write) and returns the injected status from the enclosing function.
/// Append failures propagate either way.
#define SEMANDAQ_FAILPOINT_WRITE(name, file, data)                          \
  do {                                                                      \
    const std::string_view _fp_data = (data);                               \
    size_t _fp_keep = _fp_data.size();                                      \
    ::semandaq::common::Status _fp_status =                                 \
        ::semandaq::common::Failpoints::Instance().HitWrite(                \
            name, _fp_data.size(), &_fp_keep);                              \
    SEMANDAQ_RETURN_IF_ERROR((file)->Append(_fp_data.substr(0, _fp_keep))); \
    if (!_fp_status.ok()) return _fp_status;                                \
  } while (0)

#endif  // SEMANDAQ_COMMON_FAILPOINT_H_
