#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>

namespace semandaq::common {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string QuoteSqlString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('\'');
  for (char c : s) {
    if (c == '\'') out.push_back('\'');
    out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

size_t DamerauLevenshtein(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  // Three rolling rows: i-2, i-1, i.
  std::vector<size_t> prev2(m + 1), prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      const size_t sub_cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      size_t best = std::min({prev[j] + 1,            // deletion
                              cur[j - 1] + 1,         // insertion
                              prev[j - 1] + sub_cost  // substitution
                             });
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        best = std::min(best, prev2[j - 2] + 1);  // adjacent transposition
      }
      cur[j] = best;
    }
    std::swap(prev2, prev);
    std::swap(prev, cur);
  }
  return prev[m];
}

double NormalizedEditDistance(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(DamerauLevenshtein(a, b)) / static_cast<double>(longest);
}

namespace {

bool LikeMatchImpl(std::string_view text, size_t ti, std::string_view pat, size_t pi) {
  while (pi < pat.size()) {
    const char pc = pat[pi];
    if (pc == '%') {
      // Collapse runs of '%' and try every split point.
      while (pi < pat.size() && pat[pi] == '%') ++pi;
      if (pi == pat.size()) return true;
      for (size_t k = ti; k <= text.size(); ++k) {
        if (LikeMatchImpl(text, k, pat, pi)) return true;
      }
      return false;
    }
    if (ti >= text.size()) return false;
    if (pc != '_' && pc != text[ti]) return false;
    ++ti;
    ++pi;
  }
  return ti == text.size();
}

}  // namespace

bool LikeMatch(std::string_view text, std::string_view pattern) {
  return LikeMatchImpl(text, 0, pattern, 0);
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  // std::from_chars<double> is available in libstdc++ 11+; use strtod with a
  // bounded copy for portability.
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return false;
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string FormatDouble(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace semandaq::common
