#ifndef SEMANDAQ_COMMON_CANCEL_H_
#define SEMANDAQ_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace semandaq::common {

/// Cooperative cancellation with deadline propagation (docs/robustness.md).
///
/// Long-running engine loops (detector kernel blocks, miner candidate
/// batches, repair rounds, SQL executor batches, WAL replay) check a
/// CancelToken at natural checkpoint boundaries:
///
///   SEMANDAQ_RETURN_IF_CANCELLED(options_.cancel);
///
/// An unarmed check — no cancel requested, no deadline set — is one
/// relaxed atomic load, the same discipline as common/failpoint. A token
/// that has been Cancel()ed, or whose absolute deadline has passed, turns
/// the checkpoint into Status::Cancelled / Status::DeadlineExceeded.
///
/// The contract a checked-out token buys (enforced by the cancellation
/// determinism sweep, tests/cancel_sweep_test.cc): read paths just stop;
/// mutating paths stage their results and publish only on success, so a
/// cancelled operation leaves observable state byte-identical to one that
/// never ran.
///
/// Tokens are owned by the request scope (server handler, test) and passed
/// down by const pointer; nullptr means "not cancellable" and costs only a
/// branch. Cancel() may be called from any thread (the server watchdog,
/// a CANCEL control frame reader) while engine threads are checking.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arms the token with an absolute deadline. Checks past this instant
  /// return Status::DeadlineExceeded. Call before sharing the token.
  void set_deadline(Clock::time_point at) {
    deadline_ns_.store(at.time_since_epoch().count(), std::memory_order_release);
    armed_.store(true, std::memory_order_release);
  }

  /// Convenience: deadline `ms` milliseconds from now. ms <= 0 leaves the
  /// token without a deadline.
  void set_deadline_after_ms(int64_t ms) {
    if (ms > 0) set_deadline(Clock::now() + std::chrono::milliseconds(ms));
  }

  /// Requests cancellation. Safe from any thread, any number of times.
  void Cancel() {
    cancelled_.store(true, std::memory_order_release);
    armed_.store(true, std::memory_order_release);
  }

  /// Test hook: the token auto-cancels on its Nth Check() from now
  /// (1 = the very next check). The cancellation sweep counts a clean
  /// run's checkpoints with CheckCount(), then replays arming every k.
  void CancelAfterChecks(uint64_t n) {
    cancel_at_check_.store(n == 0 ? 1 : n, std::memory_order_release);
    armed_.store(true, std::memory_order_release);
  }

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// Total Check() calls observed — the sweep's checkpoint census.
  uint64_t CheckCount() const {
    return checks_.load(std::memory_order_relaxed);
  }

  /// The checkpoint probe. OK while the token is unarmed (one relaxed
  /// load); Cancelled once Cancel() was called; DeadlineExceeded once the
  /// deadline passed (which also latches cancelled_ so later checks are
  /// cheap and the whole operation tears down consistently).
  Status Check() {
    if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
    return CheckSlow();
  }

 private:
  Status CheckSlow();

  /// Fast gate: false until a deadline, cancel, or countdown arms it.
  std::atomic<bool> armed_{false};
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> deadline_hit_{false};
  /// steady_clock ns-since-epoch of the deadline; 0 = none.
  std::atomic<int64_t> deadline_ns_{0};
  /// Checks observed while armed (countdown/census bookkeeping).
  std::atomic<uint64_t> checks_{0};
  /// Cancel when checks_ reaches this value; 0 = disabled.
  std::atomic<uint64_t> cancel_at_check_{0};
};

}  // namespace semandaq::common

/// Checkpoint macro: propagates Cancelled/DeadlineExceeded out of the
/// enclosing function (which must return Status or Result<T>). `token` is
/// a CancelToken* and may be null.
#define SEMANDAQ_RETURN_IF_CANCELLED(token)                    \
  do {                                                         \
    ::semandaq::common::CancelToken* _ct = (token);            \
    if (_ct != nullptr) {                                      \
      ::semandaq::common::Status _ct_status = _ct->Check();    \
      if (!_ct_status.ok()) return _ct_status;                 \
    }                                                          \
  } while (0)

#endif  // SEMANDAQ_COMMON_CANCEL_H_
