#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace semandaq::common {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Debiased modulo via rejection on the tail.
  const uint64_t threshold = -bound % bound;
  while (true) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return NextDouble() < p;
}

std::string Rng::NextString(size_t length) {
  std::string out(length, 'a');
  for (auto& c : out) c = static_cast<char>('a' + NextBelow(26));
  return out;
}

ZipfGenerator::ZipfGenerator(size_t n, double theta) {
  cdf_.resize(n == 0 ? 1 : n);
  double sum = 0.0;
  for (size_t i = 0; i < cdf_.size(); ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) v /= sum;
}

size_t ZipfGenerator::Next(Rng* rng) const {
  const double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace semandaq::common
