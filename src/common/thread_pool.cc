#include "common/thread_pool.h"

namespace semandaq::common {

size_t ResolveThreadCount(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool* ResolvePool(ThreadPool* attached, size_t num_threads,
                        std::unique_ptr<ThreadPool>* owned) {
  if (attached != nullptr) return attached;
  const size_t lanes = num_threads == 1 ? 1 : ResolveThreadCount(num_threads);
  if (lanes <= 1) return nullptr;  // serial — don't build a pool to ignore
  *owned = std::make_unique<ThreadPool>(lanes);
  return owned->get();
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t lanes = num_threads == 0 ? 1 : num_threads;
  workers_.reserve(lanes - 1);
  for (size_t i = 0; i + 1 < lanes; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Run(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    // Single-lane pool: run inline, no synchronization needed.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    total_ = n;
    done_ = 0;
    next_.store(0, std::memory_order_relaxed);
    ++epoch_;  // publishes the batch to WorkerLoop's wait predicate
  }
  work_cv_.notify_all();

  // The calling thread is a lane too.
  size_t ran = 0;
  for (;;) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    fn(i);
    ++ran;
  }

  std::unique_lock<std::mutex> lock(mu_);
  done_ += ran;
  // Wait for the work AND for every worker to leave its claim loop: a
  // worker that woke for this batch but was descheduled before claiming
  // anything still holds the batch's function pointer, and returning while
  // active_ > 0 would let it claim from the *next* batch's counter with
  // this batch's (destroyed) closure.
  done_cv_.wait(lock, [this] { return done_ == total_ && active_ == 0; });
  fn_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
    if (stop_) return;
    seen_epoch = epoch_;
    // fn_ is reset to null under mu_ when a batch completes: waking late,
    // after the batch we were notified for already drained, must not enter
    // the claim loop — the counter may belong to the *next* batch by the
    // time we reach it.
    if (fn_ == nullptr) continue;
    const std::function<void(size_t)>* fn = fn_;
    const size_t total = total_;
    ++active_;  // under mu_: Run cannot complete while we hold `fn`
    lock.unlock();

    size_t ran = 0;
    for (;;) {
      const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) break;
      (*fn)(i);
      ++ran;
    }

    lock.lock();
    done_ += ran;
    --active_;
    if (done_ == total_ && active_ == 0) done_cv_.notify_one();
  }
}

}  // namespace semandaq::common
