#include "common/cancel.h"

namespace semandaq::common {

Status CancelToken::CheckSlow() {
  const uint64_t seen = checks_.fetch_add(1, std::memory_order_acq_rel) + 1;
  const uint64_t trip = cancel_at_check_.load(std::memory_order_acquire);
  if (trip != 0 && seen >= trip) {
    cancelled_.store(true, std::memory_order_release);
  }
  if (cancelled_.load(std::memory_order_acquire)) {
    if (deadline_hit_.load(std::memory_order_acquire)) {
      return Status::DeadlineExceeded("operation ran past its deadline");
    }
    return Status::Cancelled("operation cancelled");
  }
  const int64_t ns = deadline_ns_.load(std::memory_order_acquire);
  if (ns != 0 &&
      Clock::now().time_since_epoch().count() >= ns) {
    // Latch: every subsequent check (any thread) tears down the same way.
    deadline_hit_.store(true, std::memory_order_release);
    cancelled_.store(true, std::memory_order_release);
    return Status::DeadlineExceeded("operation ran past its deadline");
  }
  return Status::OK();
}

}  // namespace semandaq::common
