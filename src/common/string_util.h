#ifndef SEMANDAQ_COMMON_STRING_UTIL_H_
#define SEMANDAQ_COMMON_STRING_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace semandaq::common {

/// Splits `s` on every occurrence of `sep`; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// ASCII-lowercases a copy of `s`.
std::string ToLower(std::string_view s);

/// ASCII-uppercases a copy of `s`.
std::string ToUpper(std::string_view s);

/// True when `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True when `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Doubles embedded single quotes and wraps in single quotes, producing a
/// SQL string literal: Abe's -> 'Abe''s'.
std::string QuoteSqlString(std::string_view s);

/// Damerau-Levenshtein edit distance (insert / delete / substitute /
/// transpose-adjacent), the string-similarity primitive of the repair cost
/// model of Cong et al. (VLDB'07).
size_t DamerauLevenshtein(std::string_view a, std::string_view b);

/// dist(a,b) / max(|a|,|b|) in [0,1]; 0 for two empty strings.
double NormalizedEditDistance(std::string_view a, std::string_view b);

/// SQL LIKE with '%' (any run) and '_' (any one char); case sensitive.
bool LikeMatch(std::string_view text, std::string_view pattern);

/// Parses a full string as a signed 64-bit integer. Returns false on any
/// trailing garbage, overflow, or empty input.
bool ParseInt64(std::string_view s, int64_t* out);

/// Parses a full string as a double. Returns false on trailing garbage or
/// empty input.
bool ParseDouble(std::string_view s, double* out);

/// Formats a double without trailing zero noise ("2", "2.5", "0.125").
std::string FormatDouble(double v);

}  // namespace semandaq::common

#endif  // SEMANDAQ_COMMON_STRING_UTIL_H_
