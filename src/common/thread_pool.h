#ifndef SEMANDAQ_COMMON_THREAD_POOL_H_
#define SEMANDAQ_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace semandaq::common {

class ThreadPool;

/// Resolves a user-facing thread-count knob: 0 means "one lane per hardware
/// thread", anything else is taken literally. Never returns 0 (a host that
/// reports unknown concurrency resolves to 1).
size_t ResolveThreadCount(size_t requested);

/// Resolves the miners' lane source: an explicitly attached (borrowed) pool
/// always wins; otherwise num_threads == 1 means serial (returns nullptr)
/// and any other value spins up a private pool in *owned with exactly
/// ResolveThreadCount(num_threads) lanes — so `threads=N` really runs N
/// lanes, it is not rounded up to a wider shared pool. The caller keeps
/// *owned alive for as long as the returned pool is used.
ThreadPool* ResolvePool(ThreadPool* attached, size_t num_threads,
                        std::unique_ptr<ThreadPool>* owned);

/// A fixed-size worker pool for fork-join parallelism: Run(n, fn) invokes
/// fn(0) .. fn(n-1), distributing the calls over the lanes, and returns only
/// when all of them have completed.
///
/// The pool is deliberately minimal — no futures, no task graph, no work
/// stealing beyond a shared index counter — because the sharded detection
/// scan needs exactly "run these N closures, then continue". A pool of
/// `num_threads` lanes starts `num_threads - 1` background workers; the
/// thread calling Run is the remaining lane, so a single-lane pool runs
/// everything inline with no synchronization beyond one atomic. Workers are
/// parked on a condition variable between batches, so repeated Detect()
/// calls do not pay thread spawn cost.
///
/// Closures must not throw: an exception escaping a background worker would
/// std::terminate. Tasks that can fail report through their slot of a
/// caller-owned result vector instead (each task index is run by exactly one
/// lane, so per-index slots need no locking).
class ThreadPool {
 public:
  /// Starts a pool with `num_threads` lanes (>= 1; pass the result of
  /// ResolveThreadCount for user-facing knobs).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes, including the caller's.
  size_t num_threads() const { return workers_.size() + 1; }

  /// Invokes fn(i) for every i in [0, n) across the lanes and blocks until
  /// all calls returned. Task indices are claimed dynamically, so uneven
  /// per-index work still balances. One Run at a time: the pool is not
  /// reentrant and Run must not be called from inside a task.
  void Run(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait here for a new batch
  std::condition_variable done_cv_;  // Run waits here for batch completion
  // Batch state. fn_/total_ are written under mu_ before the epoch bump
  // that publishes them; next_ is the shared claim counter.
  const std::function<void(size_t)>* fn_ = nullptr;
  size_t total_ = 0;
  std::atomic<size_t> next_{0};
  size_t done_ = 0;     // completed calls, guarded by mu_
  size_t active_ = 0;   // workers inside a claim loop, guarded by mu_
  uint64_t epoch_ = 0;  // batch sequence number, guarded by mu_
  bool stop_ = false;   // guarded by mu_
};

}  // namespace semandaq::common

#endif  // SEMANDAQ_COMMON_THREAD_POOL_H_
