#include "common/failpoint.h"

#include <algorithm>

namespace semandaq::common {

namespace {

/// Message prefix identifying a crash-injected status (IsInjectedCrash).
constexpr const char kCrashPrefix[] = "crash injected at ";

}  // namespace

Failpoints& Failpoints::Instance() {
  static Failpoints* instance = new Failpoints();
  return *instance;
}

void Failpoints::Arm(const std::string& name, FailpointConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_[name] = Armed{std::move(config), 0};
  active_.store(true, std::memory_order_release);
}

void Failpoints::ArmCrash(const std::string& name, size_t keep_bytes) {
  FailpointConfig config;
  config.action = FailpointConfig::Action::kCrash;
  config.status = Status::IoError(kCrashPrefix + name);
  config.keep_bytes = keep_bytes;
  Arm(name, std::move(config));
}

void Failpoints::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.erase(name);
  if (armed_.empty() && !capturing_) {
    active_.store(false, std::memory_order_release);
  }
}

void Failpoints::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
  capturing_ = false;
  captured_.clear();
  active_.store(false, std::memory_order_release);
}

void Failpoints::StartCapture() {
  std::lock_guard<std::mutex> lock(mu_);
  capturing_ = true;
  captured_.clear();
  active_.store(true, std::memory_order_release);
}

std::vector<std::string> Failpoints::StopCapture() {
  std::lock_guard<std::mutex> lock(mu_);
  capturing_ = false;
  if (armed_.empty()) active_.store(false, std::memory_order_release);
  std::vector<std::string> out;
  out.swap(captured_);
  return out;
}

bool Failpoints::IsInjectedCrash(const Status& status) {
  return !status.ok() &&
         status.message().compare(0, sizeof(kCrashPrefix) - 1, kCrashPrefix) ==
             0;
}

Status Failpoints::Hit(const char* name) {
  if (!active_.load(std::memory_order_acquire)) return Status::OK();
  size_t keep = 0;
  return Evaluate(name, 0, &keep);
}

Status Failpoints::HitWrite(const char* name, size_t size, size_t* keep) {
  *keep = size;
  if (!active_.load(std::memory_order_acquire)) return Status::OK();
  return Evaluate(name, size, keep);
}

Status Failpoints::Evaluate(const char* name, size_t size, size_t* keep) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capturing_) {
    if (std::find(captured_.begin(), captured_.end(), name) ==
        captured_.end()) {
      captured_.emplace_back(name);
    }
  }
  auto it = armed_.find(name);
  if (it == armed_.end()) return Status::OK();
  Armed& armed = it->second;
  if (armed.hits++ < armed.config.skip_hits) return Status::OK();
  if (armed.config.action == FailpointConfig::Action::kCrash) {
    *keep = std::min(armed.config.keep_bytes, size);
  }
  return armed.config.status;
}

}  // namespace semandaq::common
