#ifndef SEMANDAQ_COMMON_RANDOM_H_
#define SEMANDAQ_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace semandaq::common {

/// Deterministic, seedable PRNG (xoshiro256**). All workload generators take
/// a Rng so experiments are reproducible bit-for-bit across runs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound); bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Uniformly chosen element index for a container of size n (n > 0).
  size_t NextIndex(size_t n) { return static_cast<size_t>(NextBelow(n)); }

  /// Random lowercase ASCII string of the given length.
  std::string NextString(size_t length);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[NextIndex(i)]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Zipf(n, theta) sampler over ranks {0, .., n-1}; rank 0 is most popular.
/// Used by workload generators to skew value frequencies the way real
/// customer data is skewed (a few big cities, many small ones).
class ZipfGenerator {
 public:
  ZipfGenerator(size_t n, double theta);

  /// Draws a rank in [0, n).
  size_t Next(Rng* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace semandaq::common

#endif  // SEMANDAQ_COMMON_RANDOM_H_
