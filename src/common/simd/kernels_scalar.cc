// The dispatch-floor kernel tier: straight-line scalar implementations of
// every contract in simd::Kernels. This TU is compiled with the project's
// baseline flags on every target — it is the semantic reference the vector
// tiers are property-tested against, and the table SEMANDAQ_SIMD=scalar
// forces for A/B runs.

#include "common/simd/simd.h"

namespace semandaq::common::simd {
namespace {

size_t FilterEq32Scalar(const uint32_t* d, size_t n, uint32_t c,
                        uint32_t base, uint32_t* out) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (d[i] == c) out[count++] = base + static_cast<uint32_t>(i);
  }
  return count;
}

void FilterEqMulti32Scalar(const uint32_t* const* cols, const uint32_t* consts,
                           size_t ncols, size_t n, uint64_t* inout) {
  for (size_t k = 0; k < ncols; ++k) {
    const uint32_t* d = cols[k];
    const uint32_t c = consts[k];
    for (size_t w = 0; w * 64 < n; ++w) {
      uint64_t m = inout[w];
      if (m == 0) continue;  // already empty; equality cannot widen it
      const size_t lanes = (n - w * 64 < 64) ? n - w * 64 : 64;
      uint64_t eq = 0;
      for (size_t b = 0; b < lanes; ++b) {
        eq |= static_cast<uint64_t>(d[w * 64 + b] == c) << b;
      }
      inout[w] = m & eq;
    }
  }
}

void MaskNeAnd32Scalar(const uint32_t* d, size_t n, uint32_t c,
                       uint64_t* inout) {
  for (size_t w = 0; w * 64 < n; ++w) {
    uint64_t m = inout[w];
    if (m == 0) continue;
    const size_t lanes = (n - w * 64 < 64) ? n - w * 64 : 64;
    uint64_t ne = 0;
    for (size_t b = 0; b < lanes; ++b) {
      ne |= static_cast<uint64_t>(d[w * 64 + b] != c) << b;
    }
    inout[w] = m & ne;
  }
}

size_t MaskLiveScalar(const uint8_t* live, const uint32_t* const* cols,
                      size_t ncols, uint32_t null_code, size_t n,
                      uint64_t* out) {
  size_t popcount = 0;
  for (size_t w = 0; w * 64 < n; ++w) {
    const size_t lanes = (n - w * 64 < 64) ? n - w * 64 : 64;
    uint64_t m = 0;
    for (size_t b = 0; b < lanes; ++b) {
      const size_t i = w * 64 + b;
      bool ok = live[i] != 0;
      for (size_t k = 0; ok && k < ncols; ++k) ok = cols[k][i] != null_code;
      m |= static_cast<uint64_t>(ok) << b;
    }
    out[w] = m;
    popcount += static_cast<size_t>(__builtin_popcountll(m));
  }
  return popcount;
}

void PackKeys2x32Scalar(const uint32_t* hi, const uint32_t* lo, size_t n,
                        uint64_t* out) {
  if (lo == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint64_t>(hi[i]) << 32;
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    out[i] = (static_cast<uint64_t>(hi[i]) << 32) | lo[i];
  }
}

size_t CountEq32Scalar(const uint32_t* d, size_t n, uint32_t c) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) count += d[i] == c;
  return count;
}

constexpr Kernels kScalarTable = {
    Level::kScalar,        FilterEq32Scalar, FilterEqMulti32Scalar,
    MaskNeAnd32Scalar,     MaskLiveScalar,   PackKeys2x32Scalar,
    CountEq32Scalar,
};

}  // namespace

namespace internal {
const Kernels& ScalarKernels() { return kScalarTable; }
}  // namespace internal

}  // namespace semandaq::common::simd
