#ifndef SEMANDAQ_COMMON_SIMD_SIMD_H_
#define SEMANDAQ_COMMON_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace semandaq::common::simd {

/// Instruction-set tier of a kernel table. Tiers are totally ordered:
/// every tier implements the same contracts bit-for-bit, higher tiers are
/// only faster. kScalar is the dispatch floor and the semantic reference —
/// it must stay available on every build so any kernel is A/B-testable
/// against it.
enum class Level : uint8_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  /// Resolve at call time: the best tier this host supports, clamped by the
  /// SEMANDAQ_SIMD environment override. Never the tier of a real table.
  kAuto = 255,
};

/// The kernel dispatch table: one function pointer per kernel, all
/// width-generic over flat uint32 code columns (relational::Code arrays).
///
/// Shared contracts (see docs/simd.md for the full spec):
///  * Inputs are unaligned — every implementation uses unaligned loads, so
///    callers may pass any offset into a column (odd block starts included).
///  * Bit masks are little-endian uint64 words: bit i of out[i/64] describes
///    element i. The caller provides (n + 63) / 64 words; mask-*producing*
///    kernels zero the tail bits of the last word, mask-*narrowing* (And)
///    kernels only clear bits, so a zeroed tail stays zeroed.
///  * n is arbitrary (0 included); every kernel handles the vector-width
///    remainder with a scalar tail that computes the identical result.
///  * No kernel reads past its inputs' [0, n) range or allocates.
struct Kernels {
  /// The tier this table actually runs (after clamping); what tests log.
  Level level;

  /// Emits base + i for every i in [0, n) with d[i] == c, ascending, into
  /// out (caller provides room for n entries). Returns the emit count.
  /// This is the LHS-constant pattern match producing a tuple-id list.
  size_t (*FilterEq32)(const uint32_t* d, size_t n, uint32_t c, uint32_t base,
                       uint32_t* out);

  /// Narrows `inout` by a conjunction of per-column equalities:
  /// inout bit i &= (cols[k][i] == consts[k] for every k < ncols).
  /// ncols == 0 leaves the mask unchanged.
  void (*FilterEqMulti32)(const uint32_t* const* cols, const uint32_t* consts,
                          size_t ncols, size_t n, uint64_t* inout);

  /// Narrows `inout` by one inequality: inout bit i &= (d[i] != c).
  /// With c = relational::kNullCode this is the non-NULL filter.
  void (*MaskNeAnd32)(const uint32_t* d, size_t n, uint32_t c,
                      uint64_t* inout);

  /// Produces the scan-eligibility mask: bit i = (live[i] != 0) AND
  /// (cols[k][i] != null_code for every k < ncols). `live` is the
  /// relation's liveness byte array (Relation::live_data()); ncols == 0
  /// gives the pure liveness bitmap. Returns the number of set bits.
  size_t (*MaskLive)(const uint8_t* live, const uint32_t* const* cols,
                     size_t ncols, uint32_t null_code, size_t n,
                     uint64_t* out);

  /// out[i] = (uint64_t(hi[i]) << 32) | lo[i] — the packed 64-bit group-by
  /// key of two code columns. lo == nullptr packs zeros in the low half
  /// (the single-column key, matching relational::PackCodes(c, kNullCode)).
  void (*PackKeys2x32)(const uint32_t* hi, const uint32_t* lo, size_t n,
                       uint64_t* out);

  /// Number of i in [0, n) with d[i] == c — RHS agreement counting for the
  /// violation table's partner counts.
  size_t (*CountEq32)(const uint32_t* d, size_t n, uint32_t c);
};

/// The highest tier this host can execute (compile-time ISA availability of
/// the kernel translation units ∩ runtime CPUID). Non-x86 builds report
/// kScalar.
Level MaxSupportedLevel();

/// True when `level` can run on this host (kAuto is always true).
bool Supported(Level level);

/// The process-wide active tier: MaxSupportedLevel() clamped by the
/// SEMANDAQ_SIMD environment variable ("scalar" | "sse2" | "avx2",
/// case-insensitive; unknown values are ignored). Read once and cached.
Level ActiveLevel();

/// The kernel table for `level`: kAuto resolves to ActiveLevel(), and a
/// tier above MaxSupportedLevel() clamps down to the best supported one —
/// callers may therefore request any tier unconditionally (the equivalence
/// tests sweep all of them on every host). The returned table's `level`
/// field records what actually runs.
const Kernels& KernelsFor(Level level = Level::kAuto);

/// "scalar" / "sse2" / "avx2" / "auto".
std::string_view LevelName(Level level);

/// Parses a LevelName (case-insensitive). Returns false on unknown text.
bool ParseLevel(std::string_view text, Level* out);

/// Number of uint64 mask words covering n elements.
inline constexpr size_t MaskWords(size_t n) { return (n + 63) / 64; }

/// Invokes fn(i) for every set bit i, ascending. The scalar emission
/// companion of the mask kernels: zero words are skipped in one test, so
/// sparse masks cost ~one branch per 64 elements.
template <typename Fn>
inline void ForEachSetBit(const uint64_t* words, size_t nwords, Fn&& fn) {
  for (size_t w = 0; w < nwords; ++w) {
    uint64_t m = words[w];
    while (m != 0) {
      fn(w * 64 + static_cast<size_t>(__builtin_ctzll(m)));
      m &= m - 1;
    }
  }
}

/// Internal: per-tier tables. Sse2/Avx2 return nullptr when their TU was
/// compiled without the ISA (non-x86 target or an old compiler); the
/// dispatcher falls back down the tier order.
namespace internal {
const Kernels& ScalarKernels();
const Kernels* Sse2KernelsOrNull();
const Kernels* Avx2KernelsOrNull();
}  // namespace internal

}  // namespace semandaq::common::simd

#endif  // SEMANDAQ_COMMON_SIMD_SIMD_H_
