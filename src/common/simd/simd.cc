// Runtime dispatch over the kernel tiers: compile-time availability of the
// per-ISA translation units ∩ CPUID at first use, clamped by the
// SEMANDAQ_SIMD environment override. The resolved level is computed once
// and cached — kernels are selected per Detect/Build call by table lookup,
// never per tuple.

#include "common/simd/simd.h"

#include <cstdlib>

#include "common/logging.h"
#include "common/string_util.h"

namespace semandaq::common::simd {

namespace {

/// Best tier the hardware and the build both provide.
Level ProbeMaxLevel() {
  Level max = Level::kScalar;
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  if (internal::Sse2KernelsOrNull() != nullptr &&
      __builtin_cpu_supports("sse2")) {
    max = Level::kSse2;
  }
  if (internal::Avx2KernelsOrNull() != nullptr &&
      __builtin_cpu_supports("avx2")) {
    max = Level::kAvx2;
  }
#endif
  return max;
}

/// SEMANDAQ_SIMD override, or kAuto when unset/unparseable.
Level EnvOverride() {
  const char* env = std::getenv("SEMANDAQ_SIMD");
  if (env == nullptr || *env == '\0') return Level::kAuto;
  Level parsed;
  if (!ParseLevel(env, &parsed)) {
    SEMANDAQ_LOG(Warning) << "ignoring unknown SEMANDAQ_SIMD value '" << env
                          << "' (want scalar|sse2|avx2)";
    return Level::kAuto;
  }
  return parsed;
}

Level ResolveActiveLevel() {
  const Level max = ProbeMaxLevel();
  const Level env = EnvOverride();
  if (env == Level::kAuto) return max;
  return env <= max ? env : max;
}

}  // namespace

Level MaxSupportedLevel() {
  static const Level max = ProbeMaxLevel();
  return max;
}

bool Supported(Level level) {
  return level == Level::kAuto || level <= MaxSupportedLevel();
}

Level ActiveLevel() {
  static const Level active = ResolveActiveLevel();
  return active;
}

const Kernels& KernelsFor(Level level) {
  Level want = level == Level::kAuto ? ActiveLevel() : level;
  if (want > MaxSupportedLevel()) want = MaxSupportedLevel();
  switch (want) {
    case Level::kAvx2: {
      const Kernels* k = internal::Avx2KernelsOrNull();
      if (k != nullptr) return *k;
      [[fallthrough]];
    }
    case Level::kSse2: {
      const Kernels* k = internal::Sse2KernelsOrNull();
      if (k != nullptr) return *k;
      [[fallthrough]];
    }
    default:
      return internal::ScalarKernels();
  }
}

std::string_view LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
    case Level::kAuto:
      return "auto";
  }
  return "unknown";
}

bool ParseLevel(std::string_view text, Level* out) {
  const std::string lower = ToLower(text);
  if (lower == "scalar" || lower == "none" || lower == "off") {
    *out = Level::kScalar;
    return true;
  }
  if (lower == "sse2" || lower == "sse") {
    *out = Level::kSse2;
    return true;
  }
  if (lower == "avx2" || lower == "avx") {
    *out = Level::kAvx2;
    return true;
  }
  if (lower == "auto") {
    *out = Level::kAuto;
    return true;
  }
  return false;
}

}  // namespace semandaq::common::simd
