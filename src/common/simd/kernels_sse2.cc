// SSE2 kernel tier: 4-lane uint32 compares with movemask bit packing.
// SSE2 is part of the x86-64 baseline ABI, so this TU needs no special
// compile flags there; on non-x86 targets it compiles to a nullptr table
// and the dispatcher stays on the scalar floor.

#include "common/simd/simd.h"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace semandaq::common::simd {
namespace {

/// Equality bits of up to 64 lanes starting at d: bit b = (d[b] == c).
/// Bits >= lanes are zero.
inline uint64_t EqBits64(const uint32_t* d, uint32_t c, size_t lanes) {
  const __m128i vc = _mm_set1_epi32(static_cast<int>(c));
  uint64_t bits = 0;
  size_t b = 0;
  for (; b + 4 <= lanes; b += 4) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(d + b));
    const int m = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, vc)));
    bits |= static_cast<uint64_t>(m) << b;
  }
  for (; b < lanes; ++b) bits |= static_cast<uint64_t>(d[b] == c) << b;
  return bits;
}

/// Liveness bits of up to 64 lanes: bit b = (live[b] != 0). Bits >= lanes
/// are zero.
inline uint64_t LiveBits64(const uint8_t* live, size_t lanes) {
  const __m128i zero = _mm_setzero_si128();
  uint64_t bits = 0;
  size_t b = 0;
  for (; b + 16 <= lanes; b += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(live + b));
    const int dead = _mm_movemask_epi8(_mm_cmpeq_epi8(v, zero));
    bits |= static_cast<uint64_t>(static_cast<uint16_t>(~dead)) << b;
  }
  for (; b < lanes; ++b) bits |= static_cast<uint64_t>(live[b] != 0) << b;
  return bits;
}

inline uint64_t LaneMask(size_t lanes) {
  return lanes >= 64 ? ~uint64_t{0} : (uint64_t{1} << lanes) - 1;
}

size_t FilterEq32Sse2(const uint32_t* d, size_t n, uint32_t c, uint32_t base,
                      uint32_t* out) {
  size_t count = 0;
  for (size_t w = 0; w * 64 < n; ++w) {
    const size_t lanes = (n - w * 64 < 64) ? n - w * 64 : 64;
    uint64_t m = EqBits64(d + w * 64, c, lanes);
    while (m != 0) {
      out[count++] = base + static_cast<uint32_t>(
                                w * 64 + static_cast<size_t>(__builtin_ctzll(m)));
      m &= m - 1;
    }
  }
  return count;
}

void FilterEqMulti32Sse2(const uint32_t* const* cols, const uint32_t* consts,
                         size_t ncols, size_t n, uint64_t* inout) {
  for (size_t w = 0; w * 64 < n; ++w) {
    uint64_t m = inout[w];
    const size_t lanes = (n - w * 64 < 64) ? n - w * 64 : 64;
    for (size_t k = 0; m != 0 && k < ncols; ++k) {
      m &= EqBits64(cols[k] + w * 64, consts[k], lanes);
    }
    inout[w] = m;
  }
}

void MaskNeAnd32Sse2(const uint32_t* d, size_t n, uint32_t c,
                     uint64_t* inout) {
  for (size_t w = 0; w * 64 < n; ++w) {
    const uint64_t m = inout[w];
    if (m == 0) continue;
    const size_t lanes = (n - w * 64 < 64) ? n - w * 64 : 64;
    inout[w] = m & ~EqBits64(d + w * 64, c, lanes) & LaneMask(lanes);
  }
}

size_t MaskLiveSse2(const uint8_t* live, const uint32_t* const* cols,
                    size_t ncols, uint32_t null_code, size_t n,
                    uint64_t* out) {
  size_t popcount = 0;
  for (size_t w = 0; w * 64 < n; ++w) {
    const size_t lanes = (n - w * 64 < 64) ? n - w * 64 : 64;
    uint64_t m = LiveBits64(live + w * 64, lanes);
    for (size_t k = 0; m != 0 && k < ncols; ++k) {
      m &= ~EqBits64(cols[k] + w * 64, null_code, lanes) & LaneMask(lanes);
    }
    out[w] = m;
    popcount += static_cast<size_t>(__builtin_popcountll(m));
  }
  return popcount;
}

void PackKeys2x32Sse2(const uint32_t* hi, const uint32_t* lo, size_t n,
                      uint64_t* out) {
  const __m128i zero = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vhi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hi + i));
    const __m128i vlo =
        lo == nullptr
            ? zero
            : _mm_loadu_si128(reinterpret_cast<const __m128i*>(lo + i));
    // Interleaving (lo, hi) 32-bit lanes yields little-endian 64-bit keys
    // (hi << 32) | lo, two per unpack half.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_unpacklo_epi32(vlo, vhi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 2),
                     _mm_unpackhi_epi32(vlo, vhi));
  }
  for (; i < n; ++i) {
    out[i] = (static_cast<uint64_t>(hi[i]) << 32) |
             (lo == nullptr ? 0 : lo[i]);
  }
}

size_t CountEq32Sse2(const uint32_t* d, size_t n, uint32_t c) {
  const __m128i vc = _mm_set1_epi32(static_cast<int>(c));
  size_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(d + i));
    count += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, vc))))));
  }
  for (; i < n; ++i) count += d[i] == c;
  return count;
}

constexpr Kernels kSse2Table = {
    Level::kSse2,      FilterEq32Sse2, FilterEqMulti32Sse2,
    MaskNeAnd32Sse2,   MaskLiveSse2,   PackKeys2x32Sse2,
    CountEq32Sse2,
};

}  // namespace

namespace internal {
const Kernels* Sse2KernelsOrNull() { return &kSse2Table; }
}  // namespace internal

}  // namespace semandaq::common::simd

#else  // !defined(__SSE2__)

namespace semandaq::common::simd::internal {
const Kernels* Sse2KernelsOrNull() { return nullptr; }
}  // namespace semandaq::common::simd::internal

#endif
