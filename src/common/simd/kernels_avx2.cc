// AVX2 kernel tier: 8-lane uint32 compares, 32-lane byte compares. This TU
// is the only one built with -mavx2 (see the per-source flags in the root
// CMakeLists), so AVX2 instructions never leak into code that runs before
// the CPUID dispatch check. Without compiler AVX2 support it degrades to a
// nullptr table and the dispatcher tops out at SSE2.

#include "common/simd/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace semandaq::common::simd {
namespace {

/// Equality bits of up to 64 lanes starting at d: bit b = (d[b] == c).
/// Bits >= lanes are zero.
inline uint64_t EqBits64(const uint32_t* d, uint32_t c, size_t lanes) {
  const __m256i vc = _mm256_set1_epi32(static_cast<int>(c));
  uint64_t bits = 0;
  size_t b = 0;
  for (; b + 8 <= lanes; b += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + b));
    const int m =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, vc)));
    bits |= static_cast<uint64_t>(static_cast<uint8_t>(m)) << b;
  }
  for (; b < lanes; ++b) bits |= static_cast<uint64_t>(d[b] == c) << b;
  return bits;
}

/// Liveness bits of up to 64 lanes: bit b = (live[b] != 0).
inline uint64_t LiveBits64(const uint8_t* live, size_t lanes) {
  const __m256i zero = _mm256_setzero_si256();
  uint64_t bits = 0;
  size_t b = 0;
  for (; b + 32 <= lanes; b += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(live + b));
    const uint32_t dead = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
    bits |= static_cast<uint64_t>(~dead) << b;
  }
  for (; b < lanes; ++b) bits |= static_cast<uint64_t>(live[b] != 0) << b;
  return bits;
}

inline uint64_t LaneMask(size_t lanes) {
  return lanes >= 64 ? ~uint64_t{0} : (uint64_t{1} << lanes) - 1;
}

size_t FilterEq32Avx2(const uint32_t* d, size_t n, uint32_t c, uint32_t base,
                      uint32_t* out) {
  size_t count = 0;
  for (size_t w = 0; w * 64 < n; ++w) {
    const size_t lanes = (n - w * 64 < 64) ? n - w * 64 : 64;
    uint64_t m = EqBits64(d + w * 64, c, lanes);
    while (m != 0) {
      out[count++] = base + static_cast<uint32_t>(
                                w * 64 + static_cast<size_t>(__builtin_ctzll(m)));
      m &= m - 1;
    }
  }
  return count;
}

void FilterEqMulti32Avx2(const uint32_t* const* cols, const uint32_t* consts,
                         size_t ncols, size_t n, uint64_t* inout) {
  for (size_t w = 0; w * 64 < n; ++w) {
    uint64_t m = inout[w];
    const size_t lanes = (n - w * 64 < 64) ? n - w * 64 : 64;
    for (size_t k = 0; m != 0 && k < ncols; ++k) {
      m &= EqBits64(cols[k] + w * 64, consts[k], lanes);
    }
    inout[w] = m;
  }
}

void MaskNeAnd32Avx2(const uint32_t* d, size_t n, uint32_t c,
                     uint64_t* inout) {
  for (size_t w = 0; w * 64 < n; ++w) {
    const uint64_t m = inout[w];
    if (m == 0) continue;
    const size_t lanes = (n - w * 64 < 64) ? n - w * 64 : 64;
    inout[w] = m & ~EqBits64(d + w * 64, c, lanes) & LaneMask(lanes);
  }
}

size_t MaskLiveAvx2(const uint8_t* live, const uint32_t* const* cols,
                    size_t ncols, uint32_t null_code, size_t n,
                    uint64_t* out) {
  size_t popcount = 0;
  for (size_t w = 0; w * 64 < n; ++w) {
    const size_t lanes = (n - w * 64 < 64) ? n - w * 64 : 64;
    uint64_t m = LiveBits64(live + w * 64, lanes);
    for (size_t k = 0; m != 0 && k < ncols; ++k) {
      m &= ~EqBits64(cols[k] + w * 64, null_code, lanes) & LaneMask(lanes);
    }
    out[w] = m;
    popcount += static_cast<size_t>(__builtin_popcountll(m));
  }
  return popcount;
}

void PackKeys2x32Avx2(const uint32_t* hi, const uint32_t* lo, size_t n,
                      uint64_t* out) {
  const __m128i zero128 = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vhi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hi + i));
    const __m128i vlo =
        lo == nullptr
            ? zero128
            : _mm_loadu_si128(reinterpret_cast<const __m128i*>(lo + i));
    const __m256i hi64 = _mm256_cvtepu32_epi64(vhi);
    const __m256i lo64 = _mm256_cvtepu32_epi64(vlo);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_or_si256(_mm256_slli_epi64(hi64, 32), lo64));
  }
  for (; i < n; ++i) {
    out[i] = (static_cast<uint64_t>(hi[i]) << 32) |
             (lo == nullptr ? 0 : lo[i]);
  }
}

size_t CountEq32Avx2(const uint32_t* d, size_t n, uint32_t c) {
  const __m256i vc = _mm256_set1_epi32(static_cast<int>(c));
  size_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
    count += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, vc))))));
  }
  for (; i < n; ++i) count += d[i] == c;
  return count;
}

constexpr Kernels kAvx2Table = {
    Level::kAvx2,      FilterEq32Avx2, FilterEqMulti32Avx2,
    MaskNeAnd32Avx2,   MaskLiveAvx2,   PackKeys2x32Avx2,
    CountEq32Avx2,
};

}  // namespace

namespace internal {
const Kernels* Avx2KernelsOrNull() { return &kAvx2Table; }
}  // namespace internal

}  // namespace semandaq::common::simd

#else  // !defined(__AVX2__)

namespace semandaq::common::simd::internal {
const Kernels* Avx2KernelsOrNull() { return nullptr; }
}  // namespace semandaq::common::simd::internal

#endif
