#ifndef SEMANDAQ_COMMON_HASH_H_
#define SEMANDAQ_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace semandaq::common {

/// Mixes `value` into `seed` (boost::hash_combine recipe, 64-bit constant).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2));
}

/// Hashes any std::hash-able value into an accumulator.
template <typename T>
size_t HashMix(size_t seed, const T& v) {
  return HashCombine(seed, std::hash<T>{}(v));
}

}  // namespace semandaq::common

#endif  // SEMANDAQ_COMMON_HASH_H_
