#ifndef SEMANDAQ_COMMON_HASH_H_
#define SEMANDAQ_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace semandaq::common {

/// Mixes `value` into `seed` (boost::hash_combine recipe, 64-bit constant).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2));
}

/// Hashes any std::hash-able value into an accumulator.
template <typename T>
size_t HashMix(size_t seed, const T& v) {
  return HashCombine(seed, std::hash<T>{}(v));
}

/// The splitmix64 step: golden-gamma increment + full-avalanche finalizer.
/// The one definition shared by shard routing (detect::ShardPlan), the
/// storage checksum (storage::Checksum64), and anything else needing a
/// cheap statistically strong 64-bit mix — keep the constants in one place.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace semandaq::common

#endif  // SEMANDAQ_COMMON_HASH_H_
