#ifndef SEMANDAQ_COMMON_CSV_H_
#define SEMANDAQ_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace semandaq::common {

/// RFC-4180-ish CSV: comma separated, '"' quoting with '""' escapes,
/// newline-terminated records. Used for importing/exporting relations.
class CsvParser {
 public:
  /// Parses one CSV line (no trailing newline) into fields.
  /// Fails on an unterminated quoted field.
  static Result<std::vector<std::string>> ParseLine(std::string_view line);

  /// Parses a whole document into rows of fields. Blank lines are skipped.
  static Result<std::vector<std::vector<std::string>>> ParseDocument(
      std::string_view text);
};

/// Serializes one record; quotes fields containing comma/quote/newline.
std::string CsvFormatLine(const std::vector<std::string>& fields);

/// Reads an entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file, truncating it.
Status WriteStringToFile(const std::string& path, std::string_view content);

}  // namespace semandaq::common

#endif  // SEMANDAQ_COMMON_CSV_H_
