#ifndef SEMANDAQ_SERVER_TCP_SERVER_H_
#define SEMANDAQ_SERVER_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "server/service.h"

namespace semandaq::server {

struct TcpServerOptions {
  /// Listen address. The server is a trusted-network component (no auth,
  /// no TLS — docs/server.md, Non-goals); loopback is the safe default.
  std::string host = "127.0.0.1";
  /// 0 = pick an ephemeral port (read it back from port() after Start).
  uint16_t port = 0;
};

/// The TCP front end over a SemandaqService: accepts connections, runs one
/// thread per connection, and speaks the length-prefixed frame protocol
/// (server/protocol.h). Each connection is one service session (its own
/// pending-repair state); each request frame executes one command and
/// yields one response frame.
///
/// `shutdown` is the only transport-level command: the server responds,
/// then stops accepting, unblocks every open connection, and Wait()
/// returns. Shutdown() does the same programmatically and is idempotent.
class TcpServer {
 public:
  /// `service` is borrowed and must outlive the server.
  explicit TcpServer(SemandaqService* service, TcpServerOptions options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the accept thread. After an OK return,
  /// port() is the bound port.
  common::Status Start();

  uint16_t port() const { return port_; }

  /// Blocks until the server has shut down (the `shutdown` command or
  /// Shutdown()), then joins every connection thread.
  void Wait();

  /// Stops accepting and unblocks all connections. Idempotent; safe to
  /// call from any thread, including a connection's own handler.
  void Shutdown();

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  SemandaqService* service_;
  TcpServerOptions options_;
  /// Atomic: the accept thread reads it each iteration while Shutdown()
  /// (any thread, including a connection handler) swaps it to -1.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::unordered_set<int> conn_fds_;
};

}  // namespace semandaq::server

#endif  // SEMANDAQ_SERVER_TCP_SERVER_H_
