#ifndef SEMANDAQ_SERVER_TCP_SERVER_H_
#define SEMANDAQ_SERVER_TCP_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "server/service.h"

namespace semandaq::server {

struct TcpServerOptions {
  /// Listen address. The server is a trusted-network component (no auth,
  /// no TLS — docs/server.md, Non-goals); loopback is the safe default.
  std::string host = "127.0.0.1";
  /// 0 = pick an ephemeral port (read it back from port() after Start).
  uint16_t port = 0;
  /// Connection cap: past it, new connections are shed with a clean
  /// `busy` error frame instead of queueing a handler thread each.
  /// 0 = uncapped (the legacy behavior).
  size_t max_connections = 0;
  /// Per-frame read deadline in ms, covering idle time between requests: a
  /// client that sends nothing (or stalls mid-frame) this long is
  /// disconnected, not leaked a blocked thread. 0 = wait forever.
  int read_deadline_ms = 0;
  /// Per-frame write deadline in ms: a client that stops draining its
  /// responses this long is disconnected. 0 = wait forever.
  int write_deadline_ms = 0;
  /// Graceful-shutdown drain budget in ms: Wait() gives in-flight
  /// connections this long to finish their current command before
  /// force-disconnecting the stragglers. 0 = no grace, disconnect at once.
  int drain_deadline_ms = 2000;
  /// Default per-request deadline in ms, applied when the client's request
  /// frame carries none. The request's cancel token trips once the
  /// deadline passes and the engines unwind at their next checkpoint
  /// (status byte 3 on the wire). 0 = no default deadline.
  int default_deadline_ms = 0;
  /// Watchdog poll cadence in ms: how often in-flight requests are checked
  /// for client CANCEL frames, dead sockets, and expired deadlines.
  int watchdog_interval_ms = 10;
  /// Retry hint attached to connection-limit busy sheds.
  uint32_t shed_retry_after_ms = 1000;
};

/// The TCP front end over a SemandaqService: accepts connections, runs one
/// thread per connection, and speaks the length-prefixed frame protocol
/// (server/protocol.h). Each connection is one service session (its own
/// pending-repair state); each request frame executes one command and
/// yields one response frame.
///
/// Overload discipline (docs/robustness.md): finished handler threads are
/// reaped as the server runs (not accumulated until shutdown), the
/// connection count is capped with clean busy-shedding, and both
/// directions of socket I/O run under deadlines, so one stalled or
/// malicious client costs a bounded wait instead of a wedged thread.
///
/// Cancellation (docs/robustness.md): every request executes under a
/// CancelToken derived from the client-supplied deadline (or
/// default_deadline_ms). A watchdog thread polls in-flight connections
/// and trips the token when a CANCEL control frame arrives, when the
/// connection dies mid-request (POLLRDHUP/EOF — the engine stops even
/// though nobody is left to read the answer), or counts a timeout once
/// the deadline expires (the token notices the deadline itself at the
/// next engine checkpoint). Cancelled requests answer with wire status
/// 2/3 instead of a torn connection.
///
/// `shutdown` is the only transport-level command: the server responds,
/// then stops accepting, unblocks every open connection, and Wait()
/// returns. Shutdown() does the same programmatically and is idempotent.
class TcpServer {
 public:
  /// `service` is borrowed and must outlive the server.
  explicit TcpServer(SemandaqService* service, TcpServerOptions options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the accept thread. After an OK return,
  /// port() is the bound port.
  common::Status Start();

  uint16_t port() const { return port_; }

  /// Blocks until the server has shut down (the `shutdown` command or
  /// Shutdown()), drains in-flight connections for up to
  /// drain_deadline_ms, force-disconnects the rest, and joins every
  /// handler thread.
  void Wait();

  /// Stops accepting and unblocks all connections. Idempotent; safe to
  /// call from any thread, including a connection's own handler.
  void Shutdown();

  /// Currently open connections (for tests and ops introspection).
  size_t active_connections() const;

  /// Connections shed with a busy frame because max_connections was
  /// reached (monotonic).
  uint64_t connections_shed() const;

 private:
  /// One request currently executing on a connection handler thread,
  /// visible to the watchdog. The token outlives the entry (it lives on
  /// the handler's stack past deregistration), and the watchdog only
  /// touches fd/token while the entry is registered (under inflight_mu_).
  struct InFlight {
    int fd = -1;
    common::CancelToken* token = nullptr;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
    bool timeout_counted = false;
    bool cancel_counted = false;
  };

  void AcceptLoop();
  void ServeConnection(uint64_t id, int fd);
  void WatchdogLoop();

  /// Polls one in-flight request: consumes CANCEL frames, detects dead
  /// sockets, counts expired deadlines. Caller holds inflight_mu_.
  void CheckInFlightLocked(InFlight* rq);

  /// Joins handler threads whose connections already finished. Called
  /// from the accept loop (so the map stays small while running) and from
  /// Wait(). Must be called WITHOUT conn_mu_ held.
  void ReapFinished();

  SemandaqService* service_;
  TcpServerOptions options_;
  /// Atomic: the accept thread reads it each iteration while Shutdown()
  /// (any thread, including a connection handler) swaps it to -1.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> shed_{0};
  std::thread accept_thread_;
  std::thread watchdog_thread_;
  std::mutex watchdog_mu_;                ///< pairs with watchdog_cv_ only
  std::condition_variable watchdog_cv_;   ///< wakes the watchdog to exit

  std::mutex inflight_mu_;
  std::unordered_map<uint64_t, InFlight> inflight_;  ///< by connection id

  mutable std::mutex conn_mu_;
  std::condition_variable drain_cv_;  ///< signaled as connections finish
  uint64_t next_conn_id_ = 0;
  std::unordered_map<uint64_t, std::thread> conn_threads_;
  /// Ids whose handlers have finished (thread about to exit); their
  /// std::threads are joinable immediately and get reaped by ReapFinished.
  std::vector<uint64_t> finished_;
  std::unordered_set<int> conn_fds_;
};

}  // namespace semandaq::server

#endif  // SEMANDAQ_SERVER_TCP_SERVER_H_
