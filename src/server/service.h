#ifndef SEMANDAQ_SERVER_SERVICE_H_
#define SEMANDAQ_SERVER_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/semandaq.h"
#include "repair/batch_repair.h"
#include "server/scheduler.h"
#include "server/snapshot.h"

namespace semandaq::server {

/// Service construction knobs.
struct ServiceOptions {
  /// Worker-lane budget shared by all concurrent requests (0 = hardware
  /// thread count). See RequestScheduler.
  size_t scheduler_lanes = 0;
  /// Default WAL durability for save/savedb (overridable per save command
  /// with sync=MODE). See storage::SyncPolicy and docs/robustness.md.
  storage::SyncPolicy wal_sync;
  /// Cost-aware admission control (docs/robustness.md): per-class
  /// concurrency caps and bounded queues, shedding with busy + retry
  /// hint past them. Disabled by default.
  AdmissionOptions admission;
};

/// Monotonic service counters, exposed by the `stats` command and bumped
/// by the service and its transport (the TcpServer watchdog owns the
/// timeout/cancel events). All relaxed atomics: ops data, not barriers.
struct ServiceStats {
  /// Requests shed by admission control with a busy response.
  std::atomic<uint64_t> sheds{0};
  /// Requests cancelled by the watchdog for running past their deadline.
  std::atomic<uint64_t> timeouts{0};
  /// Requests cancelled by a client CANCEL frame or a dead connection.
  std::atomic<uint64_t> cancels{0};
  /// Epoch pins handed to read requests (Pin calls that found a snapshot).
  std::atomic<uint64_t> epochs_served{0};
};

/// The concurrent multi-session service over one Semandaq system: many
/// sessions execute the core::Session command grammar against a shared
/// database, with reads running in parallel against pinned immutable
/// epochs and writes serialized behind one writer lock.
///
/// Concurrency model (docs/server.md):
///
///   * Every relation has a publication slot holding the latest
///     RelationSnapshot, swapped with atomic shared_ptr publication.
///     Read commands (detect / mine / clean / sql / show / map / report /
///     epoch) pin the snapshot with one atomic load and compute on it
///     lock-free — they never block on writers, and a writer never waits
///     for readers (old epochs die by refcount when the last pin drops).
///   * Write commands (load / open / gen / apply / savedb / opendb / the
///     programmatic AppendBatch) and constraint/catalog commands take
///     `sys_mu_`, mutate the master through the facade, and republish the
///     affected slots before releasing it.
///   * Mining is read-compute + a brief write tail: the levelwise sweep
///     runs on the pinned epoch, only the final AddCfd batch takes the
///     writer lock.
///   * Worker lanes come from the RequestScheduler: each request leases
///     min(requested, free) lanes and degrades toward serial under load —
///     legal because every engine's output is byte-identical across
///     thread counts (the invariant the whole stack maintains).
///
/// A read computed on epoch k is byte-identical to a serial run against a
/// standalone copy of the relation as of epoch k — the property
/// tests/server_concurrency_test.cc stresses.
///
/// Sessions are represented by SessionState values owned by the transport
/// (one per connection); the service itself is stateless per request
/// beyond them, so it is safe to call Execute from any number of threads.
class SemandaqService {
 public:
  explicit SemandaqService(ServiceOptions options = {});

  SemandaqService(const SemandaqService&) = delete;
  SemandaqService& operator=(const SemandaqService&) = delete;

  /// Per-session command state: the pending candidate repair of the last
  /// `clean`, and the epoch it was computed against.
  struct SessionState {
    std::optional<repair::RepairResult> pending_repair;
    std::string pending_relation;
    uint64_t pending_epoch = 0;
  };

  /// Per-request execution context, owned by the transport. `cancel` is
  /// threaded into every engine loop the command runs (nullptr = not
  /// cancellable). On an Unavailable (admission-shed) result,
  /// `retry_after_ms` carries the busy response's machine-readable hint.
  struct RequestContext {
    common::CancelToken* cancel = nullptr;
    uint32_t retry_after_ms = 0;
  };

  /// Executes one command line for one session. Thread-safe; any number
  /// of sessions may execute concurrently. The grammar is core::Session's
  /// (same commands, same output bytes) plus `epoch REL` and `stats`.
  common::Result<std::string> Execute(SessionState* session,
                                      std::string_view command_line) {
    RequestContext ctx;
    return Execute(session, command_line, &ctx);
  }

  /// Execute with a request context: cancellation/deadline checkpoints in
  /// every engine loop, and cost-aware admission (when enabled) that can
  /// shed the request with Unavailable + ctx->retry_after_ms.
  common::Result<std::string> Execute(SessionState* session,
                                      std::string_view command_line,
                                      RequestContext* ctx);

  /// The command reference text.
  static std::string Help();

  /// Pins the latest published epoch of `relation` (publishing one first
  /// if the relation exists but was never published). nullptr when the
  /// relation is unknown. The returned snapshot stays valid and immutable
  /// for as long as the pointer is held.
  SnapshotPtr Pin(const std::string& relation);

  /// Appends `rows` to `relation` as one write batch and publishes the new
  /// epoch (the programmatic writer the concurrency stress test and
  /// ingest-style embeddings use). Runs any due snapshot compaction.
  /// Returns the number of rows appended.
  common::Result<size_t> AppendBatch(const std::string& relation,
                                     std::vector<relational::Row> rows);

  RequestScheduler& scheduler() { return scheduler_; }
  AdmissionController& admission() { return admission_; }
  ServiceStats& stats() { return stats_; }

  /// The `stats` command's body: one `key=value` per line (lane budget and
  /// free lanes, per-class active/queued gauges, shed/timeout/cancel and
  /// epochs-served counters) — machine-parseable by design.
  std::string RenderStats() const;

  /// The underlying facade, NOT synchronized: callers must guarantee no
  /// concurrent Execute/Pin/AppendBatch while touching it (bootstrap and
  /// tests only).
  core::Semandaq& system_unsynchronized() { return sys_; }

 private:
  /// One relation's publication slot. `snap` is accessed with the atomic
  /// shared_ptr free functions; `next_epoch` only under sys_mu_.
  struct Slot {
    SnapshotPtr snap;
    uint64_t next_epoch = 1;
  };

  /// The slot for `relation` (lowercase key), created on demand.
  std::shared_ptr<Slot> SlotFor(const std::string& relation, bool create);

  /// Rebuilds and publishes `relation`'s snapshot from the master (or
  /// clears the slot if the relation vanished). Caller holds sys_mu_.
  common::Status RepublishLocked(const std::string& relation);

  /// Copy of the CFDs registered for `relation` (brief sys_mu_ hold).
  std::vector<cfd::Cfd> CfdsFor(const std::string& relation);

  /// The dispatch body Execute wraps with admission control.
  common::Result<std::string> ExecuteAdmitted(SessionState* session,
                                              std::string_view line,
                                              const std::string& verb,
                                              const std::vector<std::string>& args,
                                              common::CancelToken* cancel);

  common::Result<std::string> CmdWrite(const std::string& verb,
                                       const std::vector<std::string>& args);
  common::Result<std::string> CmdShow(const std::vector<std::string>& args);
  common::Result<std::string> CmdEpoch(const std::vector<std::string>& args);
  common::Result<std::string> CmdDetect(const std::vector<std::string>& args,
                                        common::CancelToken* cancel);
  common::Result<std::string> CmdMine(const std::vector<std::string>& args,
                                      common::CancelToken* cancel);
  common::Result<std::string> CmdClean(SessionState* session,
                                       const std::vector<std::string>& args,
                                       common::CancelToken* cancel);
  common::Result<std::string> CmdDiff(SessionState* session);
  common::Result<std::string> CmdApply(SessionState* session);
  common::Result<std::string> CmdMap(const std::vector<std::string>& args,
                                     common::CancelToken* cancel);
  common::Result<std::string> CmdReport(const std::vector<std::string>& args,
                                        common::CancelToken* cancel);
  common::Result<std::string> CmdSql(std::string_view query,
                                     common::CancelToken* cancel);

  core::Semandaq sys_;
  /// The writer lock: serializes every master/catalog/constraint mutation
  /// and the facade-routed commands. Never held while a read command
  /// computes (only while it copies CFDs or pins).
  std::mutex sys_mu_;
  RequestScheduler scheduler_;
  AdmissionController admission_;
  ServiceStats stats_;
  std::mutex slots_mu_;
  std::unordered_map<std::string, std::shared_ptr<Slot>> slots_;
};

}  // namespace semandaq::server

#endif  // SEMANDAQ_SERVER_SERVICE_H_
