#include "server/service.h"

#include <sstream>
#include <utility>

#include "audit/render.h"
#include "audit/report.h"
#include "common/string_util.h"
#include "core/command_words.h"
#include "core/session.h"
#include "detect/native_detector.h"
#include "discovery/cfd_miner.h"
#include "relational/csv_io.h"
#include "repair/cost_model.h"
#include "sql/engine.h"
#include "workload/customer_gen.h"
#include "workload/hospital_gen.h"

namespace semandaq::server {

using common::Result;
using common::Status;

SemandaqService::SemandaqService(ServiceOptions options)
    : scheduler_(options.scheduler_lanes),
      admission_(options.admission, scheduler_.total_lanes()) {
  sys_.set_wal_sync_policy(options.wal_sync);
}

std::string SemandaqService::Help() {
  return core::Session::Help() +
         "  epoch REL                 latest published snapshot epoch of REL\n"
         "  stats                     server counters (lanes, queues, sheds, "
         "timeouts, cancels)\n";
}

std::string SemandaqService::RenderStats() const {
  std::ostringstream out;
  out << "lanes.total=" << scheduler_.total_lanes() << "\n"
      << "lanes.free=" << scheduler_.available() << "\n"
      << "admission.enabled=" << (admission_.enabled() ? 1 : 0) << "\n"
      << "cheap.active=" << admission_.active(RequestClass::kCheap) << "\n"
      << "cheap.queued=" << admission_.queued(RequestClass::kCheap) << "\n"
      << "expensive.active=" << admission_.active(RequestClass::kExpensive)
      << "\n"
      << "expensive.queued=" << admission_.queued(RequestClass::kExpensive)
      << "\n"
      << "sheds=" << stats_.sheds.load(std::memory_order_relaxed) << "\n"
      << "timeouts=" << stats_.timeouts.load(std::memory_order_relaxed) << "\n"
      << "cancels=" << stats_.cancels.load(std::memory_order_relaxed) << "\n"
      << "epochs_served="
      << stats_.epochs_served.load(std::memory_order_relaxed) << "\n";
  return out.str();
}

std::shared_ptr<SemandaqService::Slot> SemandaqService::SlotFor(
    const std::string& relation, bool create) {
  const std::string key = common::ToLower(relation);
  std::lock_guard<std::mutex> lock(slots_mu_);
  auto it = slots_.find(key);
  if (it != slots_.end()) return it->second;
  if (!create) return nullptr;
  auto slot = std::make_shared<Slot>();
  slots_[key] = slot;
  return slot;
}

common::Status SemandaqService::RepublishLocked(const std::string& relation) {
  std::shared_ptr<Slot> slot = SlotFor(relation, true);
  relational::Relation* rel = sys_.database().FindMutableRelation(relation);
  if (rel == nullptr) {
    std::atomic_store(&slot->snap, SnapshotPtr());
    return Status::OK();
  }
  relational::EncodedRelation* warm = sys_.WarmOrEncode(relation);
  SnapshotPtr snap = BuildRelationSnapshot(*rel, *warm, slot->next_epoch++);
  std::atomic_store(&slot->snap, std::move(snap));
  return Status::OK();
}

SnapshotPtr SemandaqService::Pin(const std::string& relation) {
  if (std::shared_ptr<Slot> slot = SlotFor(relation, false)) {
    if (SnapshotPtr snap = std::atomic_load(&slot->snap)) {
      stats_.epochs_served.fetch_add(1, std::memory_order_relaxed);
      return snap;
    }
  }
  // Nothing published yet: publish the first epoch under the writer lock
  // (a relation connected through the facade directly, or a lost race
  // with a concurrent drop — in which case stay empty).
  std::lock_guard<std::mutex> lock(sys_mu_);
  if (sys_.database().FindRelation(relation) == nullptr) return nullptr;
  if (!RepublishLocked(relation).ok()) return nullptr;
  SnapshotPtr snap = std::atomic_load(&SlotFor(relation, false)->snap);
  if (snap != nullptr) {
    stats_.epochs_served.fetch_add(1, std::memory_order_relaxed);
  }
  return snap;
}

std::vector<cfd::Cfd> SemandaqService::CfdsFor(const std::string& relation) {
  std::lock_guard<std::mutex> lock(sys_mu_);
  return sys_.constraints().CfdsFor(relation);
}

common::Result<size_t> SemandaqService::AppendBatch(
    const std::string& relation, std::vector<relational::Row> rows) {
  std::lock_guard<std::mutex> lock(sys_mu_);
  relational::Relation* rel = sys_.database().FindMutableRelation(relation);
  if (rel == nullptr) return Status::NotFound("no relation named " + relation);
  for (relational::Row& row : rows) {
    SEMANDAQ_RETURN_IF_ERROR(rel->Insert(std::move(row)).status());
  }
  SEMANDAQ_RETURN_IF_ERROR(sys_.CompactIfDue(relation).status());
  SEMANDAQ_RETURN_IF_ERROR(RepublishLocked(relation));
  return rows.size();
}

common::Result<std::string> SemandaqService::Execute(
    SessionState* session, std::string_view command_line, RequestContext* ctx) {
  const std::string_view line = common::Trim(command_line);
  if (line.empty() || line.front() == '#') return std::string();
  const std::vector<std::string> words = core::Words(line);
  const std::string verb = common::ToLower(words[0]);
  const std::vector<std::string> args(words.begin() + 1, words.end());

  // Cost-aware admission: classify, then run under a per-class slot (or
  // shed with a retry hint when the class's queue is full). Cancellation
  // covers the queue wait too — a deadline-expired request must not
  // consume the slot it queued for.
  const RequestClass cls = ClassifyVerb(verb);
  const AdmissionController::Decision d =
      admission_.Admit(cls, ctx->cancel);
  if (d.cancelled) return ctx->cancel->Check();
  if (!d.admitted) {
    stats_.sheds.fetch_add(1, std::memory_order_relaxed);
    ctx->retry_after_ms = d.retry_after_ms;
    return Status::Unavailable(
        "server busy (" +
        std::string(cls == RequestClass::kExpensive ? "expensive" : "cheap") +
        " queue full), retry in " + std::to_string(d.retry_after_ms) + "ms");
  }
  struct SlotGuard {
    AdmissionController* admission;
    RequestClass cls;
    ~SlotGuard() { admission->Release(cls); }
  } guard{&admission_, cls};
  return ExecuteAdmitted(session, line, verb, args, ctx->cancel);
}

common::Result<std::string> SemandaqService::ExecuteAdmitted(
    SessionState* session, std::string_view line, const std::string& verb,
    const std::vector<std::string>& args, common::CancelToken* cancel) {
  if (verb == "help") return Help();
  if (verb == "stats") return RenderStats();

  // Read commands: pin an epoch and compute on it lock-free.
  if (verb == "show") return CmdShow(args);
  if (verb == "epoch") return CmdEpoch(args);
  if (verb == "detect") return CmdDetect(args, cancel);
  if (verb == "mine") return CmdMine(args, cancel);
  if (verb == "clean") return CmdClean(session, args, cancel);
  if (verb == "map") return CmdMap(args, cancel);
  if (verb == "report") return CmdReport(args, cancel);
  if (verb == "sql") return CmdSql(line.substr(verb.size()), cancel);
  if (verb == "diff") return CmdDiff(session);
  if (verb == "apply") return CmdApply(session);

  // Everything else mutates the master or walks the shared catalog:
  // serialized behind the writer lock, republishing what it touched.
  std::lock_guard<std::mutex> lock(sys_mu_);

  if (verb == "ls") {
    std::string out;
    for (const auto& name : sys_.database().RelationNames()) {
      const auto* rel = sys_.database().FindRelation(name);
      out += name + " (" + std::to_string(rel->size()) + " tuples: " +
             rel->schema().ToString() + ")\n";
    }
    return out.empty() ? std::string("(no relations)\n") : out;
  }

  if (verb == "load") {
    if (args.size() != 2) {
      return Status::InvalidArgument("usage: load NAME PATH");
    }
    SEMANDAQ_ASSIGN_OR_RETURN(relational::Relation rel,
                              relational::LoadRelationCsv(args[0], args[1]));
    SEMANDAQ_RETURN_IF_ERROR(sys_.Connect(std::move(rel)));
    SEMANDAQ_RETURN_IF_ERROR(RepublishLocked(args[0]));
    return "loaded " + args[0] + "\n";
  }

  if (verb == "save") {
    if (args.size() < 2) {
      return Status::InvalidArgument(
          "usage: save REL PATH [compact=N] [sync=always|batch(N)|none]");
    }
    size_t compact_after = 0;
    std::optional<storage::SyncPolicy> sync;
    SEMANDAQ_RETURN_IF_ERROR(
        core::ParseSaveOptions(args, 2, &compact_after, &sync));
    SEMANDAQ_ASSIGN_OR_RETURN(
        auto stats, sys_.SaveRelation(args[0], args[1], compact_after, sync));
    std::string out = "saved " + args[0] + " to " + args[1] + " (" +
                      std::to_string(stats.live_rows) + " tuples, " +
                      std::to_string(stats.num_columns) + " columns, " +
                      std::to_string(stats.file_bytes) + " bytes)";
    if (compact_after > 0) {
      out += "; compaction armed at " + std::to_string(compact_after) +
             " WAL record(s)";
    }
    if (sync.has_value()) out += "; wal sync=" + sync->ToString();
    return out + "\n";
  }

  if (verb == "open") {
    if (args.size() != 2) {
      return Status::InvalidArgument("usage: open NAME PATH");
    }
    SEMANDAQ_ASSIGN_OR_RETURN(auto stats,
                              sys_.OpenRelation(args[0], args[1], cancel));
    SEMANDAQ_RETURN_IF_ERROR(RepublishLocked(args[0]));
    return "opened " + args[0] + " from " + args[1] + " (" +
           std::to_string(stats.live_rows) + " tuples, " +
           std::to_string(stats.num_columns) + " columns, +" +
           std::to_string(stats.wal_records) + " wal record(s))\n";
  }

  if (verb == "savedb") {
    if (args.size() != 1) return Status::InvalidArgument("usage: savedb DIR");
    SEMANDAQ_ASSIGN_OR_RETURN(auto stats, sys_.SaveDatabase(args[0]));
    return "saved " + std::to_string(stats.relations) + " relation(s) to " +
           args[0] + " (manifest " + stats.manifest_path + ")\n";
  }

  if (verb == "opendb") {
    if (args.size() != 1) return Status::InvalidArgument("usage: opendb DIR");
    SEMANDAQ_ASSIGN_OR_RETURN(auto stats, sys_.OpenDatabase(args[0], cancel));
    for (const auto& name : sys_.database().RelationNames()) {
      SEMANDAQ_RETURN_IF_ERROR(RepublishLocked(name));
    }
    return "opened " + std::to_string(stats.relations) + " relation(s) from " +
           args[0] + " (" + std::to_string(stats.live_rows) + " tuples, +" +
           std::to_string(stats.wal_records) + " wal record(s))\n";
  }

  if (verb == "gen") {
    if (args.size() != 3) {
      return Status::InvalidArgument("usage: gen customer|hospital N NOISE%");
    }
    SEMANDAQ_ASSIGN_OR_RETURN(size_t n, core::ParseCount(args[1]));
    SEMANDAQ_ASSIGN_OR_RETURN(size_t noise_pct, core::ParseCount(args[2]));
    const double noise = static_cast<double>(noise_pct) / 100.0;
    if (common::EqualsIgnoreCase(args[0], "customer")) {
      workload::CustomerWorkloadOptions opts;
      opts.num_tuples = n;
      opts.noise_rate = noise;
      auto wl = workload::CustomerGenerator::Generate(opts);
      const std::string dirty = wl.dirty.name();
      const std::string clean = wl.clean.name();
      SEMANDAQ_RETURN_IF_ERROR(sys_.Connect(std::move(wl.dirty)));
      SEMANDAQ_RETURN_IF_ERROR(sys_.Connect(std::move(wl.clean)));
      SEMANDAQ_RETURN_IF_ERROR(RepublishLocked(dirty));
      SEMANDAQ_RETURN_IF_ERROR(RepublishLocked(clean));
      return "generated customer (+ customer_gold), " + std::to_string(n) +
             " tuples at " + args[2] + "% noise\n";
    }
    if (common::EqualsIgnoreCase(args[0], "hospital")) {
      workload::HospitalWorkloadOptions opts;
      opts.num_tuples = n;
      opts.noise_rate = noise;
      auto wl = workload::HospitalGenerator::Generate(opts);
      const std::string dirty = wl.dirty.name();
      const std::string clean = wl.clean.name();
      SEMANDAQ_RETURN_IF_ERROR(sys_.Connect(std::move(wl.dirty)));
      SEMANDAQ_RETURN_IF_ERROR(sys_.Connect(std::move(wl.clean)));
      SEMANDAQ_RETURN_IF_ERROR(RepublishLocked(dirty));
      SEMANDAQ_RETURN_IF_ERROR(RepublishLocked(clean));
      return "generated hospital (+ hospital_gold), " + std::to_string(n) +
             " tuples at " + args[2] + "% noise\n";
    }
    return Status::InvalidArgument("unknown workload: " + args[0]);
  }

  if (verb == "cfd") {
    SEMANDAQ_RETURN_IF_ERROR(
        sys_.constraints().AddCfdsFromText(common::Trim(line.substr(verb.size()))));
    return "added; Sigma now has " + std::to_string(sys_.constraints().size()) +
           " CFD(s)\n";
  }

  if (verb == "cfds") {
    std::string out;
    for (const auto& c : sys_.constraints().cfds()) out += c.ToString() + "\n";
    return out.empty() ? std::string("(no CFDs)\n") : out;
  }

  if (verb == "validate") {
    if (args.size() != 1) return Status::InvalidArgument("usage: validate REL");
    SEMANDAQ_ASSIGN_OR_RETURN(auto report, sys_.constraints().Validate(args[0]));
    std::string out = report.satisfiable ? "SATISFIABLE" : "UNSATISFIABLE";
    out += ": " + report.explanation + "\n";
    if (report.satisfiable && !report.witness.empty()) {
      out += "witness:";
      for (size_t i = 0; i < report.witness.size(); ++i) {
        out += " " + report.witness_attrs[i] + "=" +
               report.witness[i].ToDisplayString();
      }
      out += "\n";
    }
    return out;
  }

  if (verb == "explore") {
    if (args.size() < 3) {
      return Status::InvalidArgument("usage: explore REL CFD# PAT#");
    }
    SEMANDAQ_ASSIGN_OR_RETURN(size_t ci, core::ParseCount(args[1]));
    SEMANDAQ_ASSIGN_OR_RETURN(size_t pi, core::ParseCount(args[2]));
    SEMANDAQ_ASSIGN_OR_RETURN(auto explorer, sys_.Explore(args[0]));
    SEMANDAQ_ASSIGN_OR_RETURN(auto matches,
                              explorer->LhsMatches(static_cast<int>(ci),
                                                   static_cast<int>(pi)));
    if (matches.empty()) return std::string("(no tuples match this pattern)\n");
    return explorer->RenderDrilldown(static_cast<int>(ci), static_cast<int>(pi),
                                     matches.front().lhs);
  }

  return Status::InvalidArgument("unknown command '" + verb + "' (try: help)");
}

common::Result<std::string> SemandaqService::CmdShow(
    const std::vector<std::string>& args) {
  if (args.empty()) return Status::InvalidArgument("usage: show REL [N]");
  SnapshotPtr snap = Pin(args[0]);
  if (snap == nullptr) return Status::NotFound("no relation named " + args[0]);
  size_t n = 10;
  if (args.size() > 1) {
    SEMANDAQ_ASSIGN_OR_RETURN(n, core::ParseCount(args[1]));
  }
  return snap->relation.ToAsciiTable(n);
}

common::Result<std::string> SemandaqService::CmdEpoch(
    const std::vector<std::string>& args) {
  if (args.size() != 1) return Status::InvalidArgument("usage: epoch REL");
  SnapshotPtr snap = Pin(args[0]);
  if (snap == nullptr) return Status::NotFound("no relation named " + args[0]);
  return "epoch " + std::to_string(snap->epoch) + "\n";
}

common::Result<std::string> SemandaqService::CmdDetect(
    const std::vector<std::string>& args, common::CancelToken* cancel) {
  if (args.empty()) {
    return Status::InvalidArgument(
        "usage: detect REL [sql] [threads=N] [simd=LEVEL]");
  }
  bool want_sql = false;
  detect::DetectorOptions options;
  bool native_opts_given = false;
  for (size_t i = 1; i < args.size(); ++i) {
    if (common::EqualsIgnoreCase(args[i], "sql")) {
      want_sql = true;
      continue;
    }
    bool matched = false;
    SEMANDAQ_RETURN_IF_ERROR(core::ParseSweepOption(
        args[i], &options.num_threads, &options.simd_level, &matched));
    if (!matched) {
      return Status::InvalidArgument(
          "unknown detect option '" + args[i] +
          "' (usage: detect REL [sql] [threads=N] [simd=LEVEL])");
    }
    native_opts_given = true;
  }
  if (want_sql && native_opts_given) {
    return Status::InvalidArgument(
        "threads=/simd= apply to the native detector only");
  }
  if (want_sql) {
    // The generated-SQL detector reads the shared catalog: writer lock.
    std::lock_guard<std::mutex> lock(sys_mu_);
    SEMANDAQ_ASSIGN_OR_RETURN(
        auto table, sys_.DetectErrors(args[0], core::Semandaq::DetectorKind::kSql));
    return table.Summary() + "\n";
  }

  SnapshotPtr snap = Pin(args[0]);
  if (snap == nullptr) return Status::NotFound("no relation named " + args[0]);
  std::vector<cfd::Cfd> cfds = CfdsFor(args[0]);
  ThreadLease lease = scheduler_.Acquire(options.num_threads);
  options.num_threads = lease.lanes();
  options.cancel = cancel;
  detect::NativeDetector detector(&snap->relation, std::move(cfds), options);
  detector.set_thread_pool(lease.pool());
  detector.set_encoded(&*snap->encoded);
  SEMANDAQ_ASSIGN_OR_RETURN(auto table, detector.Detect());
  return table.Summary() + "\n";
}

common::Result<std::string> SemandaqService::CmdMine(
    const std::vector<std::string>& args, common::CancelToken* cancel) {
  if (args.empty()) {
    return Status::InvalidArgument("usage: mine REL [threads=N] [simd=LEVEL]");
  }
  discovery::CfdMinerOptions options;
  for (size_t i = 1; i < args.size(); ++i) {
    bool matched = false;
    SEMANDAQ_RETURN_IF_ERROR(core::ParseSweepOption(
        args[i], &options.num_threads, &options.simd_level, &matched));
    if (!matched) {
      return Status::InvalidArgument(
          "unknown mine option '" + args[i] +
          "' (usage: mine REL [threads=N] [simd=LEVEL])");
    }
  }
  SnapshotPtr snap = Pin(args[0]);
  if (snap == nullptr) return Status::NotFound("no relation named " + args[0]);
  ThreadLease lease = scheduler_.Acquire(options.num_threads);
  options.num_threads = lease.lanes();
  options.pool = lease.pool();
  options.cancel = cancel;
  discovery::CfdMiner miner(&snap->relation, options);
  SEMANDAQ_ASSIGN_OR_RETURN(std::vector<cfd::Cfd> mined, miner.Mine());
  // The sweep ran on the pinned epoch; only the Sigma append takes the
  // writer lock.
  size_t added = 0;
  {
    std::lock_guard<std::mutex> lock(sys_mu_);
    for (cfd::Cfd& c : mined) {
      SEMANDAQ_RETURN_IF_ERROR(sys_.constraints().AddCfd(std::move(c)));
      ++added;
    }
    return "mined " + std::to_string(added) + " CFD(s) from " + args[0] +
           "; Sigma now has " + std::to_string(sys_.constraints().size()) +
           " CFD(s)\n";
  }
}

common::Result<std::string> SemandaqService::CmdClean(
    SessionState* session, const std::vector<std::string>& args,
    common::CancelToken* cancel) {
  if (args.empty()) {
    return Status::InvalidArgument("usage: clean REL [threads=N] [simd=LEVEL]");
  }
  repair::RepairOptions options;
  for (size_t i = 1; i < args.size(); ++i) {
    bool matched = false;
    SEMANDAQ_RETURN_IF_ERROR(core::ParseSweepOption(
        args[i], &options.num_threads, &options.simd_level, &matched));
    if (!matched) {
      return Status::InvalidArgument(
          "unknown clean option '" + args[i] +
          "' (usage: clean REL [threads=N] [simd=LEVEL])");
    }
  }
  SnapshotPtr snap = Pin(args[0]);
  if (snap == nullptr) return Status::NotFound("no relation named " + args[0]);
  std::vector<cfd::Cfd> cfds = CfdsFor(args[0]);
  ThreadLease lease = scheduler_.Acquire(options.num_threads);
  options.num_threads = lease.lanes();
  options.pool = lease.pool();
  options.cancel = cancel;
  repair::CostModel model(snap->relation.schema(), {});
  repair::BatchRepair cleaner(&snap->relation, std::move(cfds),
                              std::move(model), std::move(options));
  SEMANDAQ_ASSIGN_OR_RETURN(auto repair, cleaner.Run());
  std::ostringstream out;
  out << "candidate repair: " << repair.changes.size() << " cell(s), cost "
      << repair.total_cost << ", " << repair.iterations << " round(s), "
      << repair.null_escapes << " NULL escape(s), remaining "
      << repair.remaining_violations
      << "\nuse 'diff' to review, 'apply' to commit\n";
  session->pending_repair = std::move(repair);
  session->pending_relation = args[0];
  session->pending_epoch = snap->epoch;
  return out.str();
}

common::Result<std::string> SemandaqService::CmdDiff(SessionState* session) {
  if (!session->pending_repair.has_value()) {
    return Status::FailedPrecondition("no pending repair (run 'clean REL' first)");
  }
  SnapshotPtr snap = Pin(session->pending_relation);
  if (snap == nullptr) {
    return Status::NotFound("no relation named " + session->pending_relation);
  }
  std::ostringstream out;
  out << "pending repair for '" << session->pending_relation << "':\n";
  for (const auto& ch : session->pending_repair->changes) {
    out << "  #" << ch.tid << " " << snap->relation.schema().attr(ch.col).name
        << ": " << ch.original.ToDisplayString() << " -> "
        << ch.repaired.ToDisplayString();
    if (!ch.alternatives.empty()) {
      out << "   (alternatives:";
      for (const auto& [v, cost] : ch.alternatives) {
        out << " " << v.ToDisplayString();
      }
      out << ")";
    }
    out << "\n";
  }
  return out.str();
}

common::Result<std::string> SemandaqService::CmdApply(SessionState* session) {
  if (!session->pending_repair.has_value()) {
    return Status::FailedPrecondition("no pending repair (run 'clean REL' first)");
  }
  std::lock_guard<std::mutex> lock(sys_mu_);
  SEMANDAQ_RETURN_IF_ERROR(
      sys_.ApplyRepair(session->pending_relation, *session->pending_repair));
  const size_t n = session->pending_repair->changes.size();
  session->pending_repair.reset();
  std::string out = "applied " + std::to_string(n) + " change(s) to " +
                    session->pending_relation;
  SEMANDAQ_ASSIGN_OR_RETURN(bool compacted,
                            sys_.CompactIfDue(session->pending_relation));
  if (compacted) out += " (snapshot compacted)";
  SEMANDAQ_RETURN_IF_ERROR(RepublishLocked(session->pending_relation));
  return out + "\n";
}

common::Result<std::string> SemandaqService::CmdMap(
    const std::vector<std::string>& args, common::CancelToken* cancel) {
  if (args.empty()) return Status::InvalidArgument("usage: map REL [N]");
  size_t n = 20;
  if (args.size() > 1) {
    SEMANDAQ_ASSIGN_OR_RETURN(n, core::ParseCount(args[1]));
  }
  SnapshotPtr snap = Pin(args[0]);
  if (snap == nullptr) return Status::NotFound("no relation named " + args[0]);
  std::vector<cfd::Cfd> cfds = CfdsFor(args[0]);
  ThreadLease lease = scheduler_.Acquire(0);
  detect::DetectorOptions options;
  options.num_threads = lease.lanes();
  options.cancel = cancel;
  detect::NativeDetector detector(&snap->relation, std::move(cfds), options);
  detector.set_thread_pool(lease.pool());
  detector.set_encoded(&*snap->encoded);
  SEMANDAQ_ASSIGN_OR_RETURN(auto table, detector.Detect());
  return audit::AsciiRender::QualityMap(snap->relation, table, n);
}

common::Result<std::string> SemandaqService::CmdReport(
    const std::vector<std::string>& args, common::CancelToken* cancel) {
  if (args.size() != 1) return Status::InvalidArgument("usage: report REL");
  SnapshotPtr snap = Pin(args[0]);
  if (snap == nullptr) return Status::NotFound("no relation named " + args[0]);
  std::vector<cfd::Cfd> cfds = CfdsFor(args[0]);
  ThreadLease lease = scheduler_.Acquire(0);
  detect::DetectorOptions options;
  options.num_threads = lease.lanes();
  options.cancel = cancel;
  detect::NativeDetector detector(&snap->relation, cfds, options);
  detector.set_thread_pool(lease.pool());
  detector.set_encoded(&*snap->encoded);
  SEMANDAQ_ASSIGN_OR_RETURN(auto table, detector.Detect());
  audit::DataAuditor auditor(&snap->relation, std::move(cfds));
  SEMANDAQ_ASSIGN_OR_RETURN(auto outcome, auditor.Audit(table));
  const audit::QualityReport report =
      audit::BuildQualityReport(outcome, snap->relation.schema());
  return audit::AsciiRender::BarChart(report) + "\n" +
         audit::AsciiRender::PieChart(report) + "\n" +
         audit::AsciiRender::Statistics(report);
}

common::Result<std::string> SemandaqService::CmdSql(
    std::string_view query, common::CancelToken* cancel) {
  // Pin one consistent set: the latest epoch of every published relation.
  // The scratch catalog below is built from those pins alone, so the
  // query never touches the live master (and holds no lock while it runs).
  std::vector<SnapshotPtr> pinned;
  {
    std::vector<std::shared_ptr<Slot>> slots;
    {
      std::lock_guard<std::mutex> lock(slots_mu_);
      slots.reserve(slots_.size());
      for (const auto& [key, slot] : slots_) slots.push_back(slot);
    }
    for (const auto& slot : slots) {
      if (SnapshotPtr snap = std::atomic_load(&slot->snap)) {
        pinned.push_back(std::move(snap));
      }
    }
  }
  relational::Database scratch;
  std::vector<std::unique_ptr<relational::EncodedRelation>> frozen;
  std::unordered_map<const relational::Relation*,
                     const relational::EncodedRelation*>
      encoded_of;
  for (const SnapshotPtr& snap : pinned) {
    SEMANDAQ_RETURN_IF_ERROR(scratch.AddRelation(snap->relation.Clone()));
    relational::Relation* rel = scratch.FindMutableRelation(snap->name);
    frozen.push_back(std::make_unique<relational::EncodedRelation>(
        snap->encoded->Freeze(rel)));
    encoded_of[rel] = frozen.back().get();
  }
  sql::Engine engine(&scratch);
  engine.set_cancel(cancel);
  engine.set_encoded_provider(
      [&encoded_of](const relational::Relation* rel)
          -> const relational::EncodedRelation* {
        auto it = encoded_of.find(rel);
        return it == encoded_of.end() ? nullptr : it->second;
      });
  SEMANDAQ_ASSIGN_OR_RETURN(relational::Relation result,
                            engine.Query(common::Trim(query)));
  return result.ToAsciiTable(50);
}

}  // namespace semandaq::server
