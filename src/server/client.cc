#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace semandaq::server {

using common::Status;

common::Result<Client> Client::Connect(const std::string& host,
                                       uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status st = Status::IoError("connect " + host + ":" +
                                      std::to_string(port) + ": " +
                                      std::strerror(errno));
    ::close(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

common::Result<WireResponse> Client::Call(std::string_view command) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  SEMANDAQ_RETURN_IF_ERROR(WriteFrame(fd_, command));
  std::string payload;
  SEMANDAQ_ASSIGN_OR_RETURN(bool got, ReadFrame(fd_, &payload));
  if (!got) return Status::IoError("server closed the connection");
  return DecodeResponse(payload);
}

}  // namespace semandaq::server
