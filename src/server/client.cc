#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/string_util.h"

namespace semandaq::server {

using common::Status;

namespace {

common::Result<int> OpenSocket(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status st = Status::IoError("connect " + host + ":" +
                                      std::to_string(port) + ": " +
                                      std::strerror(errno));
    ::close(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

/// The server's busy-shed refusal (admission control or the connection
/// cap) — the one non-ok response worth retrying, because it promises
/// nothing ran. The status byte is authoritative; the text prefix keeps
/// compatibility with servers predating WireStatus::kBusy.
bool IsBusyRefusal(const WireResponse& resp) {
  if (resp.status == WireStatus::kBusy) return true;
  return !resp.ok && common::StartsWith(resp.text, "Unavailable:");
}

}  // namespace

common::Result<Client> Client::Connect(const std::string& host, uint16_t port,
                                       ClientOptions options) {
  SEMANDAQ_ASSIGN_OR_RETURN(int fd, OpenSocket(host, port));
  return Client(fd, host, port, options);
}

Client::Client(int fd, std::string host, uint16_t port, ClientOptions options)
    : fd_(fd),
      host_(std::move(host)),
      port_(port),
      options_(options),
      rng_(options.backoff_seed != 0
               ? options.backoff_seed
               : static_cast<uint64_t>(fd) * 0x9E3779B97F4A7C15ULL +
                     static_cast<uint64_t>(
                         std::chrono::steady_clock::now()
                             .time_since_epoch()
                             .count())) {}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      host_(std::move(other.host_)),
      port_(other.port_),
      options_(other.options_),
      rng_(other.rng_),
      reconnects_(other.reconnects_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    host_ = std::move(other.host_);
    port_ = other.port_;
    options_ = other.options_;
    rng_ = other.rng_;
    reconnects_ = other.reconnects_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

common::Status Client::Reconnect() {
  Close();
  SEMANDAQ_ASSIGN_OR_RETURN(int fd, OpenSocket(host_, port_));
  fd_ = fd;
  return Status::OK();
}

common::Result<WireResponse> Client::Call(std::string_view command) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  SEMANDAQ_RETURN_IF_ERROR(WriteFrame(fd_, command, options_.call_deadline_ms));
  std::string payload;
  SEMANDAQ_ASSIGN_OR_RETURN(
      bool got, ReadFrame(fd_, &payload, options_.call_deadline_ms));
  if (!got) return Status::IoError("server closed the connection");
  return DecodeResponse(payload);
}

common::Result<WireResponse> Client::CallWithDeadline(std::string_view command,
                                                      uint32_t deadline_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  SEMANDAQ_RETURN_IF_ERROR(WriteFrame(
      fd_, EncodeDeadlineRequest(deadline_ms, command),
      options_.call_deadline_ms));
  std::string payload;
  SEMANDAQ_ASSIGN_OR_RETURN(
      bool got, ReadFrame(fd_, &payload, options_.call_deadline_ms));
  if (!got) return Status::IoError("server closed the connection");
  return DecodeResponse(payload);
}

common::Status Client::SendCancel() {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  // Short write deadline: a cancel that cannot go out promptly is moot.
  return WriteFrame(fd_, EncodeCancelRequest(), 1000);
}

common::Result<WireResponse> Client::CallIdempotent(std::string_view command) {
  common::Result<WireResponse> last = Call(command);
  for (int attempt = 0;
       attempt < options_.max_retries &&
       (!last.ok() || IsBusyRefusal(*last));
       ++attempt) {
    // A busy response with a retry hint is the server telling us when
    // capacity frees up: honor it (with jitter in [1.0, 1.5) so a shed
    // herd does not return in lockstep) instead of guessing with
    // exponential backoff.
    const uint32_t hinted =
        last.ok() && IsBusyRefusal(*last) ? last->retry_after_ms : 0;
    int64_t nominal;
    if (hinted > 0) {
      nominal = static_cast<int64_t>(hinted);
      const int64_t jittered = nominal + rng_.NextInRange(0, nominal / 2 + 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(jittered));
      const Status rc = Reconnect();
      if (!rc.ok()) {
        last = rc;
        continue;
      }
      ++reconnects_;
      last = Call(command);
      continue;
    }
    // Exponential backoff with jitter: nominal = initial * 2^attempt
    // (capped), slept for a uniform fraction in [0.5, 1.0) of nominal so
    // concurrent retriers spread out instead of re-colliding.
    nominal = options_.backoff_initial_ms;
    for (int i = 0; i < attempt && nominal < options_.backoff_max_ms; ++i) {
      nominal *= 2;
    }
    if (nominal > options_.backoff_max_ms) nominal = options_.backoff_max_ms;
    if (nominal > 0) {
      const int64_t jittered = nominal / 2 + rng_.NextInRange(0, nominal / 2);
      std::this_thread::sleep_for(std::chrono::milliseconds(jittered));
    }
    // Reconnect before every retry: after a transport failure the old
    // connection's framing state is unknown, and after a busy refusal the
    // server already closed it.
    const Status rc = Reconnect();
    if (!rc.ok()) {
      last = rc;
      continue;
    }
    ++reconnects_;
    last = Call(command);
  }
  return last;
}

}  // namespace semandaq::server
