#ifndef SEMANDAQ_SERVER_SCHEDULER_H_
#define SEMANDAQ_SERVER_SCHEDULER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/thread_pool.h"

namespace semandaq::server {

class RequestScheduler;

/// Admission cost class of one request (docs/robustness.md, Admission
/// control). Cheap verbs answer from already-materialized state in
/// microseconds; expensive verbs run engine scans/sweeps that hold worker
/// lanes for milliseconds to minutes. Classing them separately keeps a
/// storm of expensive requests from starving the cheap ones behind it
/// (the head-of-line metric tools/bench_server_qps.py records).
enum class RequestClass : uint8_t { kCheap = 0, kExpensive = 1 };

/// The admission class of one Session-grammar verb. Unknown verbs come
/// back cheap: they fail fast in Execute's dispatch anyway.
RequestClass ClassifyVerb(std::string_view verb);

/// Cost-aware admission knobs (ServiceOptions::admission). Zeros pick
/// lane-derived defaults at construction.
struct AdmissionOptions {
  /// Master switch; disabled means every request is admitted at once (the
  /// pre-admission behavior).
  bool enabled = false;
  /// Concurrent expensive requests allowed in flight. 0 = half the worker
  /// lane budget, min 1 — expensive work can never saturate every lane.
  size_t max_expensive = 0;
  /// Concurrent cheap requests allowed in flight. 0 = 4x the lane budget
  /// (cheap verbs barely touch the lanes; the cap only bounds pathology).
  size_t max_cheap = 0;
  /// Queued (waiting) requests tolerated per class before new arrivals
  /// are shed with a busy response.
  size_t queue_limit_expensive = 8;
  size_t queue_limit_cheap = 64;
  /// Base of the busy response's retry hint; the hint scales with the
  /// shedding class's queue depth.
  uint32_t retry_after_ms = 100;
};

/// Per-class bounded admission: at most max_* requests of a class run at
/// once, at most queue_limit_* wait behind them, and everything past that
/// is shed immediately with a machine-readable retry hint. Waiting
/// requests leave the queue early when their cancel token trips (a queued
/// request past its deadline must not consume the slot it was waiting
/// for). Construction derives zero knobs from the lane budget.
class AdmissionController {
 public:
  AdmissionController(AdmissionOptions options, size_t total_lanes);

  /// One admission verdict. `admitted` means the caller MUST call
  /// Release(cls) when its request finishes. `cancelled` means the
  /// caller's token tripped while queued (report Check()'s status).
  /// Otherwise the request was shed: respond busy with `retry_after_ms`.
  struct Decision {
    bool admitted = false;
    bool cancelled = false;
    uint32_t retry_after_ms = 0;
  };

  /// Admits, queues (until a slot frees or `cancel` trips), or sheds.
  /// Thread-safe. New arrivals never jump a non-empty queue.
  Decision Admit(RequestClass cls, common::CancelToken* cancel);

  /// Returns an admitted request's slot. Wakes one queued waiter.
  void Release(RequestClass cls);

  bool enabled() const { return options_.enabled; }
  const AdmissionOptions& options() const { return options_; }

  /// Gauges for the stats surface.
  size_t active(RequestClass cls) const;
  size_t queued(RequestClass cls) const;

 private:
  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  size_t active_[2] = {0, 0};
  size_t queued_[2] = {0, 0};
};

/// A request's granted slice of the server's worker-lane budget: how many
/// lanes it may run (>= 1; the session's own thread is always one) and,
/// when more than one, a private ThreadPool sized to exactly that many
/// lanes. Engines take it as (options.num_threads = lanes(), options.pool
/// = pool()) — because every engine's output is byte-identical across
/// thread counts, a degraded grant changes only latency, never results.
///
/// Move-only; destruction returns the lanes (and the pool, for reuse) to
/// the scheduler.
class ThreadLease {
 public:
  ThreadLease(ThreadLease&& other) noexcept;
  ThreadLease& operator=(ThreadLease&& other) noexcept;
  ThreadLease(const ThreadLease&) = delete;
  ThreadLease& operator=(const ThreadLease&) = delete;
  ~ThreadLease();

  /// Total lanes this request may run, including the calling thread (1 =
  /// run serial).
  size_t lanes() const { return workers_ + 1; }

  /// The pool backing the extra lanes; nullptr when lanes() == 1 (engines
  /// treat that as "run serial", matching num_threads == 1).
  common::ThreadPool* pool() const { return pool_.get(); }

 private:
  friend class RequestScheduler;
  ThreadLease(RequestScheduler* scheduler, size_t workers,
              std::unique_ptr<common::ThreadPool> pool)
      : scheduler_(scheduler), workers_(workers), pool_(std::move(pool)) {}

  RequestScheduler* scheduler_ = nullptr;  // null after move-out / serial
  size_t workers_ = 0;                     // lanes beyond the caller
  std::unique_ptr<common::ThreadPool> pool_;
};

/// Multiplexes a fixed budget of worker lanes (hardware width by default)
/// across concurrent sessions, so 100 clients asking for `threads=0` share
/// the machine instead of oversubscribing it 100-fold.
///
/// Policy: admission control by degradation, never by blocking. Acquire
/// resolves the request (0 = all hardware threads) and grants
/// min(resolved - 1, lanes still free) extra workers — under load that
/// rounds down to a serial grant, which is always legal because every
/// engine's output is thread-count invariant. Each session's own thread is
/// its first lane and is never budgeted: total CPU demand is bounded by
/// (connections + lane budget), and a request never waits on another
/// request's lease to make progress.
///
/// Pools are cached by size and reused across leases (a ThreadPool spawns
/// OS threads in its constructor; churning them per request would dominate
/// small detects). The cache only ever holds pools whose lanes were part
/// of the budget, so its memory is bounded by the budget too.
class RequestScheduler {
 public:
  /// `total_lanes` = 0 sizes the budget to the hardware thread count.
  explicit RequestScheduler(size_t total_lanes = 0);

  /// Grants a lease for a request asking for `requested_threads` (the
  /// threads=N grammar: 0 = all hardware threads, 1 = serial, N = N
  /// lanes). Never blocks; under contention the grant degrades toward
  /// serial. Thread-safe.
  ThreadLease Acquire(size_t requested_threads);

  size_t total_lanes() const { return total_lanes_; }

  /// Lanes currently free (for tests and the stats surface).
  size_t available() const;

 private:
  friend class ThreadLease;

  /// Returns `workers` lanes (and optionally the pool that ran them) to
  /// the budget. Called by ~ThreadLease.
  void Release(size_t workers, std::unique_ptr<common::ThreadPool> pool);

  const size_t total_lanes_;
  mutable std::mutex mu_;
  size_t available_;
  /// Idle pools keyed by lane count, ready for the next same-width lease.
  std::unordered_map<size_t, std::vector<std::unique_ptr<common::ThreadPool>>>
      idle_pools_;
};

}  // namespace semandaq::server

#endif  // SEMANDAQ_SERVER_SCHEDULER_H_
