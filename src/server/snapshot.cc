#include "server/snapshot.h"

#include <utility>
#include <vector>

#include "relational/column_chunk.h"
#include "relational/dictionary.h"

namespace semandaq::server {

SnapshotPtr BuildRelationSnapshot(const relational::Relation& master,
                                  const relational::EncodedRelation& warm,
                                  uint64_t epoch) {
  auto snap = std::make_shared<RelationSnapshot>();
  snap->epoch = epoch;
  snap->name = master.name();

  const size_t bound = static_cast<size_t>(master.IdBound());
  std::vector<uint8_t> live(master.live_data(), master.live_data() + bound);

  // The deferred row hydrator captures frozen views of the warm encoded
  // form's chunks and shared references to its dictionaries — the same
  // zero-copy shape the storage loader uses (storage/snapshot.cc). The
  // master may relocate chunks or clone dictionaries later; these views
  // keep the epoch's bytes alive and unchanged by refcount.
  struct HydrationSource {
    std::vector<std::shared_ptr<relational::Dictionary>> dicts;
    std::vector<relational::CodeColumn> columns;
    std::vector<uint8_t> live;
  };
  auto source = std::make_shared<HydrationSource>();
  const size_t ncols = warm.num_columns();
  source->dicts.reserve(ncols);
  source->columns.reserve(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    source->dicts.push_back(warm.shared_dictionary(c));
    source->columns.push_back(warm.column(c).ShareFrozen());
  }
  source->live = live;

  snap->relation = relational::Relation::FromStorage(
      master.name(), master.schema(), std::move(live), [source]() {
        return relational::DecodeRowsFromColumns(source->dicts, source->columns,
                                                 source->live);
      });
  snap->encoded.emplace(warm.Freeze(&snap->relation));
  return snap;
}

}  // namespace semandaq::server
