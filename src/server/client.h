#ifndef SEMANDAQ_SERVER_CLIENT_H_
#define SEMANDAQ_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/random.h"
#include "common/status.h"
#include "server/protocol.h"

namespace semandaq::server {

struct ClientOptions {
  /// Per-operation deadline in ms covering one request frame out and its
  /// response frame back. 0 = block indefinitely (the legacy behavior).
  /// An expired deadline fails the Call with DeadlineExceeded and leaves
  /// the connection unusable (a response may still be in flight), so
  /// retry paths reconnect first.
  int call_deadline_ms = 0;
  /// Reconnect attempts CallIdempotent makes after a transport failure or
  /// a busy-shed refusal. 0 disables retrying (CallIdempotent == Call).
  int max_retries = 0;
  /// Exponential backoff between retries: initial delay, doubled per
  /// attempt, capped, with uniform jitter in [0.5, 1.0) of the nominal
  /// delay so a fleet of retrying clients does not stampede in lockstep.
  int backoff_initial_ms = 100;
  int backoff_max_ms = 2000;
  /// Jitter seed (deterministic for tests); 0 = seed from the fd + clock.
  uint64_t backoff_seed = 0;
};

/// A blocking client for the semandaq server: one TCP connection, one
/// in-flight command at a time (Call = one request frame, one response
/// frame). Sessions are per-connection on the server, so a clean/diff/
/// apply sequence must run over one Client.
///
/// Resilience (docs/robustness.md): Call enforces the per-op deadline and
/// nothing else — any failure surfaces to the caller. CallIdempotent
/// additionally reconnects with exponential backoff + jitter on transport
/// failures and busy-shed refusals. Only use it for commands that are safe
/// to re-run (reads like detect/report/ls; `save` re-runs are idempotent
/// too); session-stateful sequences (clean → diff → apply) must not retry
/// through a reconnect, which silently discards the session.
class Client {
 public:
  static common::Result<Client> Connect(const std::string& host, uint16_t port,
                                        ClientOptions options = {});

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Executes one command line on the server. A returned WireResponse with
  /// ok = false carries the server-side error text — check `status` to
  /// distinguish a plain error (kError) from the server cancelling the
  /// request (kCancelled), its deadline expiring server-side
  /// (kDeadlineExceeded), or an admission shed (kBusy, with
  /// retry_after_ms). A non-OK Result is a transport failure (IoError) or
  /// a locally-expired call deadline (DeadlineExceeded).
  common::Result<WireResponse> Call(std::string_view command);

  /// Call with a server-side deadline: the request frame carries
  /// `deadline_ms` and the server cancels the command once it expires
  /// (response status kDeadlineExceeded). Independent of the transport's
  /// call_deadline_ms, which should be longer.
  common::Result<WireResponse> CallWithDeadline(std::string_view command,
                                                uint32_t deadline_ms);

  /// Sends a CANCEL control frame for the in-flight request on this
  /// connection (use from another thread while Call blocks, or after
  /// firing a request you no longer want). No response of its own — the
  /// cancelled request's response comes back with status kCancelled.
  common::Status SendCancel();

  /// Call, plus reconnect-and-retry (up to max_retries) on transport
  /// failures and on the server's busy frame. A busy response carrying a
  /// retry_after_ms hint is honored (slept, with jitter) instead of the
  /// blind exponential backoff used for transport failures. The command
  /// runs at-least-once across attempts — only use for idempotent
  /// commands. Returns the last failure when retries run out.
  common::Result<WireResponse> CallIdempotent(std::string_view command);

  void Close();

  /// Reconnects to the original host:port (closing any current
  /// connection). The server-side session state starts fresh.
  common::Status Reconnect();

  /// Transport failures CallIdempotent recovered from (for tests/ops).
  uint64_t reconnects() const { return reconnects_; }

 private:
  Client(int fd, std::string host, uint16_t port, ClientOptions options);

  int fd_ = -1;
  std::string host_;
  uint16_t port_ = 0;
  ClientOptions options_;
  common::Rng rng_;
  uint64_t reconnects_ = 0;
};

}  // namespace semandaq::server

#endif  // SEMANDAQ_SERVER_CLIENT_H_
