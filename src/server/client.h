#ifndef SEMANDAQ_SERVER_CLIENT_H_
#define SEMANDAQ_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "server/protocol.h"

namespace semandaq::server {

/// A blocking client for the semandaq server: one TCP connection, one
/// in-flight command at a time (Call = one request frame, one response
/// frame). Sessions are per-connection on the server, so a clean/diff/
/// apply sequence must run over one Client.
class Client {
 public:
  static common::Result<Client> Connect(const std::string& host, uint16_t port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Executes one command line on the server. A returned WireResponse with
  /// ok = false carries the server-side error text; a non-OK Result is a
  /// transport failure.
  common::Result<WireResponse> Call(std::string_view command);

  void Close();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace semandaq::server

#endif  // SEMANDAQ_SERVER_CLIENT_H_
