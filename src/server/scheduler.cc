#include "server/scheduler.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/string_util.h"

namespace semandaq::server {

RequestClass ClassifyVerb(std::string_view verb) {
  // Expensive: engine scans/sweeps (detect/mine/clean/sql/map/report/
  // explore), bulk ingest (load/gen), and storage passes (open/save/
  // opendb/savedb/apply — apply re-detects via compaction republish).
  // Everything else answers from materialized state: cheap.
  static constexpr std::string_view kExpensive[] = {
      "detect", "mine",   "clean",  "sql",    "map",  "report", "explore",
      "load",   "gen",    "open",   "save",   "opendb", "savedb", "apply",
  };
  for (std::string_view v : kExpensive) {
    if (common::EqualsIgnoreCase(verb, v)) return RequestClass::kExpensive;
  }
  return RequestClass::kCheap;
}

AdmissionController::AdmissionController(AdmissionOptions options,
                                         size_t total_lanes)
    : options_(options) {
  const size_t lanes = std::max<size_t>(1, total_lanes);
  if (options_.max_expensive == 0) {
    options_.max_expensive = std::max<size_t>(1, lanes / 2);
  }
  if (options_.max_cheap == 0) options_.max_cheap = lanes * 4;
  if (options_.retry_after_ms == 0) options_.retry_after_ms = 100;
}

AdmissionController::Decision AdmissionController::Admit(
    RequestClass cls, common::CancelToken* cancel) {
  Decision d;
  if (!options_.enabled) {
    d.admitted = true;
    return d;
  }
  const size_t i = static_cast<size_t>(cls);
  const size_t max_active = cls == RequestClass::kExpensive
                                ? options_.max_expensive
                                : options_.max_cheap;
  const size_t queue_limit = cls == RequestClass::kExpensive
                                 ? options_.queue_limit_expensive
                                 : options_.queue_limit_cheap;
  std::unique_lock<std::mutex> lock(mu_);
  if (active_[i] < max_active && queued_[i] == 0) {
    ++active_[i];
    d.admitted = true;
    return d;
  }
  if (queued_[i] >= queue_limit) {
    // Shed: the hint scales with how much work is already waiting ahead.
    d.retry_after_ms =
        options_.retry_after_ms * static_cast<uint32_t>(queued_[i] + 1);
    return d;
  }
  ++queued_[i];
  // Bounded waits so a queued request notices its own cancellation (the
  // watchdog cancels deadline-expired tokens; nobody re-notifies for that).
  while (active_[i] >= max_active) {
    slot_free_.wait_for(lock, std::chrono::milliseconds(10));
    if (cancel != nullptr && !cancel->Check().ok()) {
      --queued_[i];
      d.cancelled = true;
      return d;
    }
  }
  --queued_[i];
  ++active_[i];
  d.admitted = true;
  return d;
}

void AdmissionController::Release(RequestClass cls) {
  if (!options_.enabled) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_[static_cast<size_t>(cls)];
  }
  slot_free_.notify_all();
}

size_t AdmissionController::active(RequestClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_[static_cast<size_t>(cls)];
}

size_t AdmissionController::queued(RequestClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_[static_cast<size_t>(cls)];
}

ThreadLease::ThreadLease(ThreadLease&& other) noexcept
    : scheduler_(other.scheduler_),
      workers_(other.workers_),
      pool_(std::move(other.pool_)) {
  other.scheduler_ = nullptr;
  other.workers_ = 0;
}

ThreadLease& ThreadLease::operator=(ThreadLease&& other) noexcept {
  if (this != &other) {
    if (scheduler_ != nullptr && workers_ > 0) {
      scheduler_->Release(workers_, std::move(pool_));
    }
    scheduler_ = other.scheduler_;
    workers_ = other.workers_;
    pool_ = std::move(other.pool_);
    other.scheduler_ = nullptr;
    other.workers_ = 0;
  }
  return *this;
}

ThreadLease::~ThreadLease() {
  if (scheduler_ != nullptr && workers_ > 0) {
    scheduler_->Release(workers_, std::move(pool_));
  }
}

RequestScheduler::RequestScheduler(size_t total_lanes)
    : total_lanes_(common::ResolveThreadCount(total_lanes)),
      available_(total_lanes_) {}

ThreadLease RequestScheduler::Acquire(size_t requested_threads) {
  const size_t resolved = common::ResolveThreadCount(requested_threads);
  if (resolved <= 1) return ThreadLease(this, 0, nullptr);

  size_t workers = 0;
  std::unique_ptr<common::ThreadPool> pool;
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers = std::min(resolved - 1, available_);
    if (workers == 0) return ThreadLease(this, 0, nullptr);
    available_ -= workers;
    auto it = idle_pools_.find(workers + 1);
    if (it != idle_pools_.end() && !it->second.empty()) {
      pool = std::move(it->second.back());
      it->second.pop_back();
    }
  }
  // Pool construction (OS thread spawn) happens outside the lock.
  if (pool == nullptr) {
    pool = std::make_unique<common::ThreadPool>(workers + 1);
  }
  return ThreadLease(this, workers, std::move(pool));
}

size_t RequestScheduler::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return available_;
}

void RequestScheduler::Release(size_t workers,
                               std::unique_ptr<common::ThreadPool> pool) {
  std::lock_guard<std::mutex> lock(mu_);
  available_ += workers;
  if (pool != nullptr) {
    idle_pools_[workers + 1].push_back(std::move(pool));
  }
}

}  // namespace semandaq::server
