#include "server/scheduler.h"

#include <algorithm>
#include <utility>

namespace semandaq::server {

ThreadLease::ThreadLease(ThreadLease&& other) noexcept
    : scheduler_(other.scheduler_),
      workers_(other.workers_),
      pool_(std::move(other.pool_)) {
  other.scheduler_ = nullptr;
  other.workers_ = 0;
}

ThreadLease& ThreadLease::operator=(ThreadLease&& other) noexcept {
  if (this != &other) {
    if (scheduler_ != nullptr && workers_ > 0) {
      scheduler_->Release(workers_, std::move(pool_));
    }
    scheduler_ = other.scheduler_;
    workers_ = other.workers_;
    pool_ = std::move(other.pool_);
    other.scheduler_ = nullptr;
    other.workers_ = 0;
  }
  return *this;
}

ThreadLease::~ThreadLease() {
  if (scheduler_ != nullptr && workers_ > 0) {
    scheduler_->Release(workers_, std::move(pool_));
  }
}

RequestScheduler::RequestScheduler(size_t total_lanes)
    : total_lanes_(common::ResolveThreadCount(total_lanes)),
      available_(total_lanes_) {}

ThreadLease RequestScheduler::Acquire(size_t requested_threads) {
  const size_t resolved = common::ResolveThreadCount(requested_threads);
  if (resolved <= 1) return ThreadLease(this, 0, nullptr);

  size_t workers = 0;
  std::unique_ptr<common::ThreadPool> pool;
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers = std::min(resolved - 1, available_);
    if (workers == 0) return ThreadLease(this, 0, nullptr);
    available_ -= workers;
    auto it = idle_pools_.find(workers + 1);
    if (it != idle_pools_.end() && !it->second.empty()) {
      pool = std::move(it->second.back());
      it->second.pop_back();
    }
  }
  // Pool construction (OS thread spawn) happens outside the lock.
  if (pool == nullptr) {
    pool = std::make_unique<common::ThreadPool>(workers + 1);
  }
  return ThreadLease(this, workers, std::move(pool));
}

size_t RequestScheduler::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return available_;
}

void RequestScheduler::Release(size_t workers,
                               std::unique_ptr<common::ThreadPool> pool) {
  std::lock_guard<std::mutex> lock(mu_);
  available_ += workers;
  if (pool != nullptr) {
    idle_pools_[workers + 1].push_back(std::move(pool));
  }
}

}  // namespace semandaq::server
