#ifndef SEMANDAQ_SERVER_SNAPSHOT_H_
#define SEMANDAQ_SERVER_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "relational/encoded_relation.h"
#include "relational/relation.h"

namespace semandaq::server {

/// One published epoch of a relation: an immutable, self-contained replica
/// that concurrent sessions pin and read without ever blocking the writer.
///
/// The replica is cheap because nothing in it is a second copy of the data:
///
///   * `relation` is built via Relation::FromStorage — a liveness bitmap
///     plus a deferred row hydrator that decodes from the *same* refcounted
///     column chunks and dictionaries the encoded form scans (hydration is
///     thread-safe, so racing readers may hydrate it on first row access);
///   * `encoded` is an EncodedRelation::Freeze view — O(1) per column,
///     sharing the master's chunks by refcount; the master's later appends
///     land past this view's published sizes and its overwrites detach
///     (copy-on-write), so the bytes a pinned epoch sees never change.
///
/// Lifetime: snapshots are handed out as shared_ptr<const RelationSnapshot>
/// and published via atomic shared_ptr swaps (SemandaqService); a session
/// that pinned epoch k keeps it alive for as long as it computes, no matter
/// how many epochs the writer publishes meanwhile.
struct RelationSnapshot {
  uint64_t epoch = 0;
  std::string name;
  relational::Relation relation;
  std::optional<relational::EncodedRelation> encoded;
};

using SnapshotPtr = std::shared_ptr<const RelationSnapshot>;

/// Captures `master` (and its warm, in-sync encoded form) as epoch `epoch`.
/// The caller must hold the writer lock: the master must not mutate during
/// the capture, and `warm` must be Sync'd to it (same IdBound).
SnapshotPtr BuildRelationSnapshot(const relational::Relation& master,
                                  const relational::EncodedRelation& warm,
                                  uint64_t epoch);

}  // namespace semandaq::server

#endif  // SEMANDAQ_SERVER_SNAPSHOT_H_
