#ifndef SEMANDAQ_SERVER_PROTOCOL_H_
#define SEMANDAQ_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace semandaq::server {

/// The length-prefixed binary framing semandaq_server and semandaq_client
/// speak (docs/server.md, Wire protocol):
///
///   frame    := u32-LE payload length | payload bytes
///   request  := one command line of the Session grammar (UTF-8 text)
///   response := u8 status (0 = ok, 1 = error) | result text
///
/// One request frame yields exactly one response frame, in order, per
/// connection. The length prefix is bounded by kMaxFrameBytes on both
/// sides, so a corrupt or hostile prefix can never trigger an unbounded
/// allocation. Framing is transport-level only: command syntax errors come
/// back as status-1 *responses*, never as broken frames.

/// Upper bound on one frame's payload (64 MiB — a full quality map of a
/// large relation fits; a corrupt length prefix does not).
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Writes one frame (length prefix + payload) to `fd`, handling partial
/// writes and EINTR. `deadline_ms <= 0` blocks indefinitely (the legacy
/// behavior); with a positive deadline the whole frame must go out within
/// that many milliseconds or the call fails with DeadlineExceeded — a
/// stalled peer costs a bounded wait, never a wedged thread.
common::Status WriteFrame(int fd, std::string_view payload,
                          int deadline_ms = 0);

/// Reads one frame from `fd` into `*payload`. Returns false (and OK
/// status semantics) on clean EOF at a frame boundary; IoError on a torn
/// frame, oversized length, or socket error. `deadline_ms <= 0` blocks
/// indefinitely; with a positive deadline the whole frame (prefix and
/// body) must arrive within that many milliseconds or the call fails with
/// DeadlineExceeded. The deadline covers idle time too — a connection
/// that sends nothing for deadline_ms times out the same as one that
/// stalls mid-frame.
common::Result<bool> ReadFrame(int fd, std::string* payload,
                               int deadline_ms = 0);

/// A decoded response frame.
struct WireResponse {
  bool ok = false;
  std::string text;
};

/// Encodes a response payload (status byte + text).
std::string EncodeResponse(bool ok, std::string_view text);

/// Decodes a response payload (the inverse of EncodeResponse).
common::Result<WireResponse> DecodeResponse(std::string_view payload);

}  // namespace semandaq::server

#endif  // SEMANDAQ_SERVER_PROTOCOL_H_
