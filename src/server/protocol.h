#ifndef SEMANDAQ_SERVER_PROTOCOL_H_
#define SEMANDAQ_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace semandaq::server {

/// The length-prefixed binary framing semandaq_server and semandaq_client
/// speak (docs/server.md, Wire protocol):
///
///   frame    := u32-LE payload length | payload bytes
///   request  := one command line of the Session grammar (UTF-8 text),
///               or a control frame (below)
///   response := u8 status | status-specific body
///
/// Response status bytes (WireStatus):
///   0 ok                 | result text
///   1 error              | error text
///   2 cancelled          | error text   (the request's token was cancelled)
///   3 deadline exceeded  | error text   (the request ran past its deadline)
///   4 busy               | u32-LE retry_after_ms | error text
///
/// Busy responses carry a machine-readable retry hint: the server's
/// estimate of when capacity frees up. Clients honor it instead of blind
/// exponential backoff (Client::CallIdempotent).
///
/// Control frames. Commands are UTF-8 text and never start with NUL, so a
/// request payload whose first byte is 0x00 is a control frame:
///
///   control  := 0x00 | u8 kind | body
///   kind 1   := deadline-bearing request: u32-LE deadline_ms | command
///   kind 2   := CANCEL: empty body; cancels the in-flight request on this
///               connection (no response of its own — the cancelled
///               request's response comes back with status 2/3)
///
/// One request frame yields exactly one response frame, in order, per
/// connection (CANCEL frames yield none). The length prefix is bounded by
/// kMaxFrameBytes on both sides, so a corrupt or hostile prefix can never
/// trigger an unbounded allocation. Framing is transport-level only:
/// command syntax errors come back as status-1 *responses*, never as
/// broken frames.

/// Upper bound on one frame's payload (64 MiB — a full quality map of a
/// large relation fits; a corrupt length prefix does not).
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Writes one frame (length prefix + payload) to `fd`, handling partial
/// writes and EINTR. `deadline_ms <= 0` blocks indefinitely (the legacy
/// behavior); with a positive deadline the whole frame must go out within
/// that many milliseconds or the call fails with DeadlineExceeded — a
/// stalled peer costs a bounded wait, never a wedged thread.
common::Status WriteFrame(int fd, std::string_view payload,
                          int deadline_ms = 0);

/// Reads one frame from `fd` into `*payload`. Returns false (and OK
/// status semantics) on clean EOF at a frame boundary; IoError on a torn
/// frame, oversized length, or socket error. `deadline_ms <= 0` blocks
/// indefinitely; with a positive deadline the whole frame (prefix and
/// body) must arrive within that many milliseconds or the call fails with
/// DeadlineExceeded. The deadline covers idle time too — a connection
/// that sends nothing for deadline_ms times out the same as one that
/// stalls mid-frame.
common::Result<bool> ReadFrame(int fd, std::string* payload,
                               int deadline_ms = 0);

/// Response status byte values (see the protocol comment above).
enum class WireStatus : uint8_t {
  kOk = 0,
  kError = 1,
  kCancelled = 2,          ///< the request's cancel token tripped
  kDeadlineExceeded = 3,   ///< the request ran past its deadline
  kBusy = 4,               ///< shed by admission control; retry_after_ms set
};

/// A decoded response frame.
struct WireResponse {
  WireStatus status = WireStatus::kError;
  bool ok = false;  ///< status == kOk (kept for the many existing callers)
  /// Busy responses only: the server's retry hint in milliseconds.
  uint32_t retry_after_ms = 0;
  std::string text;
};

/// Encodes an ok/error response payload (status byte + text).
std::string EncodeResponse(bool ok, std::string_view text);

/// Encodes a response with an explicit status byte (cancelled / deadline).
std::string EncodeStatusResponse(WireStatus status, std::string_view text);

/// Encodes a busy response: status 4, u32-LE retry_after_ms, text.
std::string EncodeBusyResponse(uint32_t retry_after_ms, std::string_view text);

/// Decodes a response payload (the inverse of the encoders above).
common::Result<WireResponse> DecodeResponse(std::string_view payload);

/// A decoded request frame: either a CANCEL control frame, or a command
/// with an optional client-supplied deadline (0 = none given).
struct WireRequest {
  bool cancel = false;
  uint32_t deadline_ms = 0;
  std::string command;
};

/// Encodes a deadline-bearing request control frame (kind 1).
std::string EncodeDeadlineRequest(uint32_t deadline_ms,
                                  std::string_view command);

/// Encodes a CANCEL control frame (kind 2).
std::string EncodeCancelRequest();

/// Decodes a request payload. Plain text (not starting with NUL) is a bare
/// command; control frames decode per the kinds above. Unknown control
/// kinds are IoError (a frame that old servers could misread as text).
common::Result<WireRequest> DecodeRequest(std::string_view payload);

}  // namespace semandaq::server

#endif  // SEMANDAQ_SERVER_PROTOCOL_H_
