#include "server/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace semandaq::server {

using common::Result;
using common::Status;

namespace {

/// Writes exactly `n` bytes (EINTR-safe); sockets may take the buffer in
/// pieces. MSG_NOSIGNAL turns a peer-closed socket into EPIPE instead of
/// a process-killing SIGPIPE.
Status WriteAll(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("socket write failed: ") +
                             std::strerror(errno));
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

/// Reads exactly `n` bytes. *eof is set only when EOF arrives before the
/// first byte (a clean close); EOF mid-buffer is a torn frame.
Result<bool> ReadAll(int fd, void* data, size_t n) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("socket read failed: ") +
                             std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF at a boundary
      return Status::IoError("connection closed mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return true;
}

}  // namespace

common::Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame too large: " +
                                   std::to_string(payload.size()) + " bytes");
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  char prefix[4];
  std::memcpy(prefix, &len, sizeof len);  // little-endian hosts only,
                                          // matching the storage format
  SEMANDAQ_RETURN_IF_ERROR(WriteAll(fd, prefix, sizeof prefix));
  return WriteAll(fd, payload.data(), payload.size());
}

common::Result<bool> ReadFrame(int fd, std::string* payload) {
  char prefix[4];
  SEMANDAQ_ASSIGN_OR_RETURN(bool got_prefix, ReadAll(fd, prefix, sizeof prefix));
  if (!got_prefix) return false;
  uint32_t len = 0;
  std::memcpy(&len, prefix, sizeof len);
  if (len > kMaxFrameBytes) {
    return Status::IoError("oversized frame: " + std::to_string(len) +
                           " bytes (max " + std::to_string(kMaxFrameBytes) +
                           ")");
  }
  payload->resize(len);
  if (len > 0) {
    SEMANDAQ_ASSIGN_OR_RETURN(bool got_body, ReadAll(fd, &(*payload)[0], len));
    if (!got_body) return Status::IoError("connection closed mid-frame");
  }
  return true;
}

std::string EncodeResponse(bool ok, std::string_view text) {
  std::string payload;
  payload.reserve(text.size() + 1);
  payload.push_back(ok ? '\0' : '\1');
  payload.append(text.data(), text.size());
  return payload;
}

common::Result<WireResponse> DecodeResponse(std::string_view payload) {
  if (payload.empty()) {
    return Status::IoError("empty response frame (missing status byte)");
  }
  if (payload[0] != '\0' && payload[0] != '\1') {
    return Status::IoError("unknown response status byte");
  }
  WireResponse resp;
  resp.ok = payload[0] == '\0';
  resp.text.assign(payload.data() + 1, payload.size() - 1);
  return resp;
}

}  // namespace semandaq::server
