#include "server/protocol.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace semandaq::server {

using common::Result;
using common::Status;

namespace {

using Clock = std::chrono::steady_clock;

/// A caller-imposed I/O deadline: an absolute steady_clock instant, or
/// "none" (deadline_ms <= 0), in which case every wait is indefinite.
struct Deadline {
  explicit Deadline(int deadline_ms)
      : armed(deadline_ms > 0),
        at(Clock::now() + std::chrono::milliseconds(
                              deadline_ms > 0 ? deadline_ms : 0)) {}

  /// Remaining budget for poll(): -1 = wait forever, 0 = already expired.
  int RemainingMs() const {
    if (!armed) return -1;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(at - Clock::now())
            .count();
    if (left <= 0) return 0;
    if (left > 1000 * 3600) return 1000 * 3600;  // clamp for poll's int arg
    return static_cast<int>(left);
  }

  bool armed;
  Clock::time_point at;
};

/// Waits until `fd` is ready for `events` (POLLIN/POLLOUT) or the deadline
/// passes. POLLHUP/POLLERR count as ready — the following read/write then
/// reports the real error or EOF.
Status PollFor(int fd, short events, const Deadline& deadline,
               const char* what) {
  for (;;) {
    const int remaining = deadline.RemainingMs();
    if (deadline.armed && remaining == 0) {
      return Status::DeadlineExceeded(std::string(what) + " timed out");
    }
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int n = ::poll(&pfd, 1, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("poll: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::DeadlineExceeded(std::string(what) + " timed out");
    }
    return Status::OK();
  }
}

/// Writes exactly `n` bytes (EINTR-safe); sockets may take the buffer in
/// pieces. MSG_NOSIGNAL turns a peer-closed socket into EPIPE instead of
/// a process-killing SIGPIPE; MSG_DONTWAIT keeps a full socket buffer from
/// blocking past the deadline (poll resumes the wait with the remaining
/// budget instead).
Status WriteAll(int fd, const void* data, size_t n, const Deadline& deadline) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        SEMANDAQ_RETURN_IF_ERROR(
            PollFor(fd, POLLOUT, deadline, "socket write"));
        continue;
      }
      return Status::IoError(std::string("socket write failed: ") +
                             std::strerror(errno));
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

/// Reads exactly `n` bytes. Returns false only when EOF arrives before the
/// first byte (a clean close); EOF mid-buffer is a torn frame.
Result<bool> ReadAll(int fd, void* data, size_t n, const Deadline& deadline) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, MSG_DONTWAIT);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        SEMANDAQ_RETURN_IF_ERROR(PollFor(fd, POLLIN, deadline, "socket read"));
        continue;
      }
      return Status::IoError(std::string("socket read failed: ") +
                             std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF at a boundary
      return Status::IoError("connection closed mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return true;
}

}  // namespace

common::Status WriteFrame(int fd, std::string_view payload, int deadline_ms) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame too large: " +
                                   std::to_string(payload.size()) + " bytes");
  }
  const Deadline deadline(deadline_ms);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  char prefix[4];
  std::memcpy(prefix, &len, sizeof len);  // little-endian hosts only,
                                          // matching the storage format
  SEMANDAQ_RETURN_IF_ERROR(WriteAll(fd, prefix, sizeof prefix, deadline));
  return WriteAll(fd, payload.data(), payload.size(), deadline);
}

common::Result<bool> ReadFrame(int fd, std::string* payload, int deadline_ms) {
  const Deadline deadline(deadline_ms);
  char prefix[4];
  SEMANDAQ_ASSIGN_OR_RETURN(bool got_prefix,
                            ReadAll(fd, prefix, sizeof prefix, deadline));
  if (!got_prefix) return false;
  uint32_t len = 0;
  std::memcpy(&len, prefix, sizeof len);
  if (len > kMaxFrameBytes) {
    return Status::IoError("oversized frame: " + std::to_string(len) +
                           " bytes (max " + std::to_string(kMaxFrameBytes) +
                           ")");
  }
  payload->resize(len);
  if (len > 0) {
    SEMANDAQ_ASSIGN_OR_RETURN(bool got_body,
                              ReadAll(fd, &(*payload)[0], len, deadline));
    if (!got_body) return Status::IoError("connection closed mid-frame");
  }
  return true;
}

std::string EncodeResponse(bool ok, std::string_view text) {
  return EncodeStatusResponse(ok ? WireStatus::kOk : WireStatus::kError, text);
}

std::string EncodeStatusResponse(WireStatus status, std::string_view text) {
  std::string payload;
  payload.reserve(text.size() + 1);
  payload.push_back(static_cast<char>(status));
  payload.append(text.data(), text.size());
  return payload;
}

std::string EncodeBusyResponse(uint32_t retry_after_ms, std::string_view text) {
  std::string payload;
  payload.reserve(text.size() + 5);
  payload.push_back(static_cast<char>(WireStatus::kBusy));
  char hint[4];
  std::memcpy(hint, &retry_after_ms, sizeof hint);  // little-endian hosts,
                                                    // matching the framing
  payload.append(hint, sizeof hint);
  payload.append(text.data(), text.size());
  return payload;
}

common::Result<WireResponse> DecodeResponse(std::string_view payload) {
  if (payload.empty()) {
    return Status::IoError("empty response frame (missing status byte)");
  }
  const uint8_t raw = static_cast<uint8_t>(payload[0]);
  if (raw > static_cast<uint8_t>(WireStatus::kBusy)) {
    return Status::IoError("unknown response status byte");
  }
  WireResponse resp;
  resp.status = static_cast<WireStatus>(raw);
  resp.ok = resp.status == WireStatus::kOk;
  size_t body = 1;
  if (resp.status == WireStatus::kBusy) {
    if (payload.size() < 5) {
      return Status::IoError("truncated busy response (missing retry hint)");
    }
    std::memcpy(&resp.retry_after_ms, payload.data() + 1,
                sizeof resp.retry_after_ms);
    body = 5;
  }
  resp.text.assign(payload.data() + body, payload.size() - body);
  return resp;
}

std::string EncodeDeadlineRequest(uint32_t deadline_ms,
                                  std::string_view command) {
  std::string payload;
  payload.reserve(command.size() + 6);
  payload.push_back('\0');
  payload.push_back('\1');  // kind 1: deadline-bearing request
  char ms[4];
  std::memcpy(ms, &deadline_ms, sizeof ms);
  payload.append(ms, sizeof ms);
  payload.append(command.data(), command.size());
  return payload;
}

std::string EncodeCancelRequest() {
  std::string payload;
  payload.push_back('\0');
  payload.push_back('\2');  // kind 2: CANCEL
  return payload;
}

common::Result<WireRequest> DecodeRequest(std::string_view payload) {
  WireRequest req;
  if (payload.empty() || payload[0] != '\0') {
    req.command.assign(payload.data(), payload.size());
    return req;
  }
  if (payload.size() < 2) {
    return Status::IoError("truncated control frame (missing kind byte)");
  }
  const uint8_t kind = static_cast<uint8_t>(payload[1]);
  if (kind == 1) {
    if (payload.size() < 6) {
      return Status::IoError("truncated deadline request (missing deadline)");
    }
    std::memcpy(&req.deadline_ms, payload.data() + 2, sizeof req.deadline_ms);
    req.command.assign(payload.data() + 6, payload.size() - 6);
    return req;
  }
  if (kind == 2) {
    req.cancel = true;
    return req;
  }
  return Status::IoError("unknown control frame kind " + std::to_string(kind));
}

}  // namespace semandaq::server
