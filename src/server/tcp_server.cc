#include "server/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/string_util.h"
#include "server/protocol.h"

namespace semandaq::server {

using common::Status;

namespace {

/// Deadline for courtesy frames the server sends on its own initiative
/// (busy-shed, timeout notice): long enough for any live loopback/LAN
/// client, short enough that a dead one cannot hold the sender hostage.
constexpr int kCourtesyWriteMs = 1000;

}  // namespace

TcpServer::TcpServer(SemandaqService* service, TcpServerOptions options)
    : service_(service), options_(std::move(options)) {}

TcpServer::~TcpServer() {
  Shutdown();
  Wait();
}

common::Status TcpServer::Start() {
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(lfd);
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status st = Status::IoError("bind " + options_.host + ":" +
                                      std::to_string(options_.port) + ": " +
                                      std::strerror(errno));
    ::close(lfd);
    return st;
  }
  if (::listen(lfd, 128) != 0) {
    const Status st =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(lfd);
    return st;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_.store(lfd, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  watchdog_thread_ = std::thread([this] { WatchdogLoop(); });
  return Status::OK();
}

void TcpServer::WatchdogLoop() {
  const auto interval =
      std::chrono::milliseconds(std::max(1, options_.watchdog_interval_ms));
  std::unique_lock<std::mutex> wd_lock(watchdog_mu_);
  while (!stopping_.load(std::memory_order_acquire)) {
    watchdog_cv_.wait_for(wd_lock, interval);
    if (stopping_.load(std::memory_order_acquire)) break;
    std::lock_guard<std::mutex> lock(inflight_mu_);
    for (auto& [id, rq] : inflight_) CheckInFlightLocked(&rq);
  }
}

void TcpServer::CheckInFlightLocked(InFlight* rq) {
  // Expired deadline: the token trips on its own at the next engine
  // checkpoint (CheckSlow latches DeadlineExceeded); the watchdog only
  // counts the event, once.
  if (rq->has_deadline && !rq->timeout_counted &&
      std::chrono::steady_clock::now() >= rq->deadline) {
    rq->timeout_counted = true;
    service_->stats().timeouts.fetch_add(1, std::memory_order_relaxed);
  }

  pollfd pfd;
  pfd.fd = rq->fd;
  pfd.events = POLLIN | POLLRDHUP;
  pfd.revents = 0;
  if (::poll(&pfd, 1, 0) <= 0) return;

  if (pfd.revents & (POLLRDHUP | POLLERR | POLLHUP)) {
    // The client died mid-request: nobody is left to read the answer, so
    // stop computing it. The handler thread notices when its response
    // write fails.
    if (!rq->cancel_counted) {
      rq->cancel_counted = true;
      service_->stats().cancels.fetch_add(1, std::memory_order_relaxed);
    }
    rq->token->Cancel();
    return;
  }

  if ((pfd.revents & POLLIN) == 0) return;
  // Bytes arrived while a request is in flight. The protocol is strictly
  // request-response, so this is either a CANCEL control frame or a dead
  // peer's FIN racing the poll above. Only consume a complete frame (peek
  // first): a partial one stays buffered for the next tick.
  char peek[6 + 4];
  const ssize_t avail =
      ::recv(rq->fd, peek, sizeof peek, MSG_PEEK | MSG_DONTWAIT);
  if (avail == 0) {  // EOF: dead socket
    if (!rq->cancel_counted) {
      rq->cancel_counted = true;
      service_->stats().cancels.fetch_add(1, std::memory_order_relaxed);
    }
    rq->token->Cancel();
    return;
  }
  if (avail < 4) return;  // length prefix not complete yet
  uint32_t len = 0;
  std::memcpy(&len, peek, sizeof len);
  if (len > 6) return;  // not a control frame; leave it for the handler
  if (static_cast<size_t>(avail) < 4 + len) return;  // frame incomplete
  char frame[4 + 6];
  const ssize_t taken = ::recv(rq->fd, frame, 4 + len, MSG_DONTWAIT);
  if (taken != static_cast<ssize_t>(4 + len)) return;
  auto req = DecodeRequest(std::string_view(frame + 4, len));
  if (req.ok() && req->cancel) {
    if (!rq->cancel_counted) {
      rq->cancel_counted = true;
      service_->stats().cancels.fetch_add(1, std::memory_order_relaxed);
    }
    rq->token->Cancel();
  }
  // Anything else was protocol misuse (a pipelined request mid-request);
  // consuming it keeps the framing aligned for the response that follows.
}

void TcpServer::ReapFinished() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    done.reserve(finished_.size());
    for (uint64_t id : finished_) {
      auto it = conn_threads_.find(id);
      if (it != conn_threads_.end()) {
        done.push_back(std::move(it->second));
        conn_threads_.erase(it);
      }
    }
    finished_.clear();
  }
  // Joins happen outside the lock; these threads are past their last
  // conn_mu_ acquisition (marking finished is the handler's final locked
  // step), so each join returns almost immediately.
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) break;
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (shutdown) or unrecoverable
    }
    // Reap finished handlers on every accept so the thread map tracks the
    // live connection count instead of growing for the server's lifetime.
    ReapFinished();
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (stopping_.load(std::memory_order_acquire)) {
        ::close(fd);
        break;
      }
      if (options_.max_connections > 0 &&
          conn_fds_.size() >= options_.max_connections) {
        shed = true;
      } else {
        const uint64_t id = next_conn_id_++;
        conn_fds_.insert(fd);
        conn_threads_.emplace(
            id, std::thread([this, id, fd] { ServeConnection(id, fd); }));
      }
    }
    if (shed) {
      // Clean refusal, not a silent close: the client sees one error frame
      // naming the condition and can back off and retry. Bounded write —
      // a shedding server must never block on the client it is shedding.
      shed_.fetch_add(1, std::memory_order_relaxed);
      service_->stats().sheds.fetch_add(1, std::memory_order_relaxed);
      (void)WriteFrame(
          fd,
          EncodeBusyResponse(options_.shed_retry_after_ms,
                             "Unavailable: server busy (connection "
                             "limit reached), retry later\n"),
          kCourtesyWriteMs);
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
  }
}

void TcpServer::ServeConnection(uint64_t id, int fd) {
  SemandaqService::SessionState session;
  std::string request;
  while (!stopping_.load(std::memory_order_acquire)) {
    auto got = ReadFrame(fd, &request, options_.read_deadline_ms);
    if (!got.ok()) {
      if (got.status().code() == common::StatusCode::kDeadlineExceeded) {
        // Idle or stalled past the deadline: tell the client why it is
        // being dropped (best effort) and reclaim the thread.
        (void)WriteFrame(
            fd, EncodeResponse(false, "DeadlineExceeded: idle connection "
                                      "timed out\n"),
            kCourtesyWriteMs);
      }
      break;
    }
    if (!*got) break;  // clean close
    auto req = DecodeRequest(request);
    if (!req.ok()) {
      if (!WriteFrame(fd,
                      EncodeResponse(false, req.status().ToString() + "\n"),
                      options_.write_deadline_ms)
               .ok()) {
        break;
      }
      continue;
    }
    // A CANCEL with nothing in flight: the request it aimed at already
    // answered. Control frames get no response of their own — swallow it
    // so the next real request's response lines up with its frame.
    if (req->cancel) continue;
    const std::string command = std::string(common::Trim(req->command));
    if (common::EqualsIgnoreCase(command, "shutdown")) {
      (void)WriteFrame(fd, EncodeResponse(true, "shutting down\n"),
                       kCourtesyWriteMs);
      Shutdown();
      break;
    }

    // Derive the request's cancel token: client deadline wins, then the
    // server default. The watchdog sees the request while registered and
    // trips the token on CANCEL frames / dead sockets.
    common::CancelToken token;
    const int64_t deadline_ms = req->deadline_ms > 0
                                    ? static_cast<int64_t>(req->deadline_ms)
                                    : options_.default_deadline_ms;
    token.set_deadline_after_ms(deadline_ms);
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      InFlight rq;
      rq.fd = fd;
      rq.token = &token;
      rq.has_deadline = deadline_ms > 0;
      if (rq.has_deadline) {
        rq.deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(deadline_ms);
      }
      inflight_[id] = rq;
    }
    SemandaqService::RequestContext ctx;
    ctx.cancel = &token;
    auto result = service_->Execute(&session, command, &ctx);
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      inflight_.erase(id);
    }

    std::string payload;
    if (result.ok()) {
      payload = EncodeResponse(true, *result);
    } else {
      const std::string text = result.status().ToString() + "\n";
      switch (result.status().code()) {
        case common::StatusCode::kCancelled:
          payload = EncodeStatusResponse(WireStatus::kCancelled, text);
          break;
        case common::StatusCode::kDeadlineExceeded:
          payload = EncodeStatusResponse(WireStatus::kDeadlineExceeded, text);
          break;
        case common::StatusCode::kUnavailable:
          // Admission shed: busy frame with the service's retry hint.
          payload = EncodeBusyResponse(
              ctx.retry_after_ms > 0 ? ctx.retry_after_ms : 100, text);
          break;
        default:
          payload = EncodeResponse(false, text);
      }
    }
    if (!WriteFrame(fd, payload, options_.write_deadline_ms).ok()) break;
  }
  // If this connection dies with a request registered (we broke out of
  // the loop above between register and deregister — impossible today,
  // but cheap to guard), drop the entry so the watchdog never touches a
  // dangling token.
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(id);
  }
  // Deregister before closing: Shutdown() only ever pokes fds still in
  // the set, so it can never touch a recycled descriptor number.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(fd);
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  // Mark finished LAST (and under the lock): after this the accept loop
  // may reap and join this thread, and the drain in Wait() may count the
  // connection as gone.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    finished_.push_back(id);
  }
  drain_cv_.notify_all();
}

void TcpServer::Shutdown() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  watchdog_cv_.notify_all();
  // Closing the listener unblocks accept(); shutting the connection
  // sockets down unblocks their reads (each handler closes its own fd).
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

void TcpServer::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  // Bounded drain: in-flight commands get drain_deadline_ms to finish and
  // respond; connections still open after that are force-disconnected so
  // Wait() returns in bounded time even with a wedged client.
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    if (options_.drain_deadline_ms > 0) {
      drain_cv_.wait_for(lock,
                         std::chrono::milliseconds(options_.drain_deadline_ms),
                         [this] { return conn_fds_.empty(); });
    }
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // After the accept loop exits no new connection threads appear; join
  // whatever is still draining. A connection thread never calls Wait (the
  // shutdown command only runs Shutdown), so joining here cannot deadlock.
  std::unordered_map<uint64_t, std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
    finished_.clear();
  }
  for (auto& [id, t] : threads) {
    if (t.joinable()) t.join();
  }
}

size_t TcpServer::active_connections() const {
  std::lock_guard<std::mutex> lock(conn_mu_);
  return conn_fds_.size();
}

uint64_t TcpServer::connections_shed() const {
  return shed_.load(std::memory_order_relaxed);
}

}  // namespace semandaq::server
