#include "server/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/string_util.h"
#include "server/protocol.h"

namespace semandaq::server {

using common::Status;

namespace {

/// Deadline for courtesy frames the server sends on its own initiative
/// (busy-shed, timeout notice): long enough for any live loopback/LAN
/// client, short enough that a dead one cannot hold the sender hostage.
constexpr int kCourtesyWriteMs = 1000;

}  // namespace

TcpServer::TcpServer(SemandaqService* service, TcpServerOptions options)
    : service_(service), options_(std::move(options)) {}

TcpServer::~TcpServer() {
  Shutdown();
  Wait();
}

common::Status TcpServer::Start() {
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(lfd);
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status st = Status::IoError("bind " + options_.host + ":" +
                                      std::to_string(options_.port) + ": " +
                                      std::strerror(errno));
    ::close(lfd);
    return st;
  }
  if (::listen(lfd, 128) != 0) {
    const Status st =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(lfd);
    return st;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_.store(lfd, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::ReapFinished() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    done.reserve(finished_.size());
    for (uint64_t id : finished_) {
      auto it = conn_threads_.find(id);
      if (it != conn_threads_.end()) {
        done.push_back(std::move(it->second));
        conn_threads_.erase(it);
      }
    }
    finished_.clear();
  }
  // Joins happen outside the lock; these threads are past their last
  // conn_mu_ acquisition (marking finished is the handler's final locked
  // step), so each join returns almost immediately.
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) break;
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (shutdown) or unrecoverable
    }
    // Reap finished handlers on every accept so the thread map tracks the
    // live connection count instead of growing for the server's lifetime.
    ReapFinished();
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (stopping_.load(std::memory_order_acquire)) {
        ::close(fd);
        break;
      }
      if (options_.max_connections > 0 &&
          conn_fds_.size() >= options_.max_connections) {
        shed = true;
      } else {
        const uint64_t id = next_conn_id_++;
        conn_fds_.insert(fd);
        conn_threads_.emplace(
            id, std::thread([this, id, fd] { ServeConnection(id, fd); }));
      }
    }
    if (shed) {
      // Clean refusal, not a silent close: the client sees one error frame
      // naming the condition and can back off and retry. Bounded write —
      // a shedding server must never block on the client it is shedding.
      shed_.fetch_add(1, std::memory_order_relaxed);
      (void)WriteFrame(
          fd, EncodeResponse(false, "Unavailable: server busy (connection "
                                    "limit reached), retry later\n"),
          kCourtesyWriteMs);
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
  }
}

void TcpServer::ServeConnection(uint64_t id, int fd) {
  SemandaqService::SessionState session;
  std::string request;
  while (!stopping_.load(std::memory_order_acquire)) {
    auto got = ReadFrame(fd, &request, options_.read_deadline_ms);
    if (!got.ok()) {
      if (got.status().code() == common::StatusCode::kDeadlineExceeded) {
        // Idle or stalled past the deadline: tell the client why it is
        // being dropped (best effort) and reclaim the thread.
        (void)WriteFrame(
            fd, EncodeResponse(false, "DeadlineExceeded: idle connection "
                                      "timed out\n"),
            kCourtesyWriteMs);
      }
      break;
    }
    if (!*got) break;  // clean close
    const std::string command = std::string(common::Trim(request));
    if (common::EqualsIgnoreCase(command, "shutdown")) {
      (void)WriteFrame(fd, EncodeResponse(true, "shutting down\n"),
                       kCourtesyWriteMs);
      Shutdown();
      break;
    }
    auto result = service_->Execute(&session, command);
    const std::string payload =
        result.ok() ? EncodeResponse(true, *result)
                    : EncodeResponse(false, result.status().ToString() + "\n");
    if (!WriteFrame(fd, payload, options_.write_deadline_ms).ok()) break;
  }
  // Deregister before closing: Shutdown() only ever pokes fds still in
  // the set, so it can never touch a recycled descriptor number.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(fd);
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  // Mark finished LAST (and under the lock): after this the accept loop
  // may reap and join this thread, and the drain in Wait() may count the
  // connection as gone.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    finished_.push_back(id);
  }
  drain_cv_.notify_all();
}

void TcpServer::Shutdown() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // Closing the listener unblocks accept(); shutting the connection
  // sockets down unblocks their reads (each handler closes its own fd).
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

void TcpServer::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // Bounded drain: in-flight commands get drain_deadline_ms to finish and
  // respond; connections still open after that are force-disconnected so
  // Wait() returns in bounded time even with a wedged client.
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    if (options_.drain_deadline_ms > 0) {
      drain_cv_.wait_for(lock,
                         std::chrono::milliseconds(options_.drain_deadline_ms),
                         [this] { return conn_fds_.empty(); });
    }
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // After the accept loop exits no new connection threads appear; join
  // whatever is still draining. A connection thread never calls Wait (the
  // shutdown command only runs Shutdown), so joining here cannot deadlock.
  std::unordered_map<uint64_t, std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
    finished_.clear();
  }
  for (auto& [id, t] : threads) {
    if (t.joinable()) t.join();
  }
}

size_t TcpServer::active_connections() const {
  std::lock_guard<std::mutex> lock(conn_mu_);
  return conn_fds_.size();
}

uint64_t TcpServer::connections_shed() const {
  return shed_.load(std::memory_order_relaxed);
}

}  // namespace semandaq::server
