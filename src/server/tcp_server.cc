#include "server/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"
#include "server/protocol.h"

namespace semandaq::server {

using common::Status;

TcpServer::TcpServer(SemandaqService* service, TcpServerOptions options)
    : service_(service), options_(std::move(options)) {}

TcpServer::~TcpServer() {
  Shutdown();
  Wait();
}

common::Status TcpServer::Start() {
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(lfd);
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status st = Status::IoError("bind " + options_.host + ":" +
                                      std::to_string(options_.port) + ": " +
                                      std::strerror(errno));
    ::close(lfd);
    return st;
  }
  if (::listen(lfd, 128) != 0) {
    const Status st =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(lfd);
    return st;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_.store(lfd, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) break;
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (shutdown) or unrecoverable
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    conn_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void TcpServer::ServeConnection(int fd) {
  SemandaqService::SessionState session;
  std::string request;
  while (!stopping_.load(std::memory_order_acquire)) {
    auto got = ReadFrame(fd, &request);
    if (!got.ok() || !*got) break;  // error or clean close
    const std::string command = std::string(common::Trim(request));
    if (common::EqualsIgnoreCase(command, "shutdown")) {
      (void)WriteFrame(fd, EncodeResponse(true, "shutting down\n"));
      Shutdown();
      break;
    }
    auto result = service_->Execute(&session, command);
    const std::string payload =
        result.ok() ? EncodeResponse(true, *result)
                    : EncodeResponse(false, result.status().ToString() + "\n");
    if (!WriteFrame(fd, payload).ok()) break;
  }
  // Deregister before closing: Shutdown() only ever pokes fds still in
  // the set, so it can never touch a recycled descriptor number.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(fd);
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

void TcpServer::Shutdown() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // Closing the listener unblocks accept(); shutting the connection
  // sockets down unblocks their reads (each handler closes its own fd).
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

void TcpServer::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // After the accept loop exits no new connection threads appear; join
  // whatever is still draining. A connection thread never calls Wait (the
  // shutdown command only runs Shutdown), so joining here cannot deadlock.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

}  // namespace semandaq::server
