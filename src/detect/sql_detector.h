#ifndef SEMANDAQ_DETECT_SQL_DETECTOR_H_
#define SEMANDAQ_DETECT_SQL_DETECTOR_H_

#include <string>
#include <vector>

#include "cfd/cfd.h"
#include "common/status.h"
#include "detect/sql_generator.h"
#include "detect/violation.h"
#include "relational/database.h"

namespace semandaq::detect {

/// SQL-based CFD violation detection, the technique the paper demonstrates
/// (§2, Error Detector: "efficient SQL-based detection techniques developed
/// in [3]").
///
/// Pipeline per embedded-FD group: encode the pattern tableau as a relation
/// (wildcard = NULL), run the generated Q_C for single-tuple violations, run
/// Q_V (GROUP BY / HAVING COUNT(DISTINCT) > 1) for the violating keys,
/// materialize them, and join back for the member tuples. All SQL runs
/// through sql::Engine — the code path a DBMS would execute.
class SqlDetector {
 public:
  /// `db` must contain `relation`; tableau and key relations are
  /// materialized into it during Detect and removed afterwards.
  SqlDetector(relational::Database* db, std::string relation,
              std::vector<cfd::Cfd> cfds)
      : db_(db), relation_(std::move(relation)), cfds_(std::move(cfds)) {}

  common::Result<ViolationTable> Detect();

  /// The generated SQL of the last Detect() call, for inspection and tests.
  const std::vector<DetectionQueries>& queries() const { return queries_; }

  const std::vector<cfd::Cfd>& cfds() const { return cfds_; }

 private:
  relational::Database* db_;
  std::string relation_;
  std::vector<cfd::Cfd> cfds_;
  std::vector<DetectionQueries> queries_;
};

}  // namespace semandaq::detect

#endif  // SEMANDAQ_DETECT_SQL_DETECTOR_H_
