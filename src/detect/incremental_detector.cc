#include "detect/incremental_detector.h"

#include <algorithm>
#include <cassert>

namespace semandaq::detect {

using cfd::Cfd;
using cfd::PatternTuple;
using common::Status;
using relational::Code;
using relational::kNullCode;
using relational::Row;
using relational::TupleId;
using relational::Update;
using relational::UpdateBatch;
using relational::Value;

void IncrementalDetector::Bucket::AddRhs(const Value& v) {
  if (v.is_null()) return;
  if (++rhs_counts[v] == 1) ++distinct_nonnull;
}

void IncrementalDetector::Bucket::RemoveRhs(const Value& v) {
  if (v.is_null()) return;
  auto it = rhs_counts.find(v);
  if (it == rhs_counts.end()) return;
  if (--it->second == 0) {
    rhs_counts.erase(it);
    --distinct_nonnull;
  }
}

common::Status IncrementalDetector::Initialize() {
  SEMANDAQ_RETURN_IF_ERROR(cfd::ResolveAll(&cfds_, rel_->schema()));
  groups_.clear();
  singles_.clear();
  enc_.emplace(rel_);

  const auto fd_groups = cfd::GroupByEmbeddedFd(cfds_);
  groups_.reserve(fd_groups.size());
  for (const auto& g : fd_groups) {
    GroupState gs;
    const Cfd& first = cfds_[g.members.front().first];
    gs.lhs_cols = first.lhs_cols();
    gs.rhs_col = first.rhs_col();
    for (const auto& member : g.members) {
      const auto& [ci, pi] = member;
      const PatternTuple& pt = cfds_[ci].tableau()[pi];
      // Compile the row to codes. Constants are *encoded* (not looked up):
      // that allocates a stable code even for values the data does not
      // contain yet, so later inserts of the value match correctly.
      CompiledRow cr;
      cr.ci = ci;
      cr.pi = pi;
      bool feasible = true;
      for (size_t i = 0; i < gs.lhs_cols.size(); ++i) {
        if (pt.lhs[i].is_wildcard()) continue;
        // A NULL constant matches nothing (PatternValue::Matches rejects
        // NULL cells), so the whole row can never apply to any tuple.
        if (pt.lhs[i].constant().is_null()) {
          feasible = false;
          break;
        }
        cr.lhs_consts.emplace_back(
            static_cast<uint32_t>(i),
            enc_->mutable_dictionary(gs.lhs_cols[i]).Encode(pt.lhs[i].constant()));
      }
      if (!feasible) continue;
      if (pt.is_constant_rhs()) {
        cr.rhs_code =
            enc_->mutable_dictionary(gs.rhs_col).Encode(pt.rhs.constant());
        gs.compiled_const.push_back(std::move(cr));
      } else {
        gs.var_rows.push_back(member);
        gs.compiled_var.push_back(std::move(cr));
      }
    }
    groups_.push_back(std::move(gs));
  }

  BulkEnter();
  initialized_ = true;
  return Status::OK();
}

void IncrementalDetector::BulkEnter() {
  namespace simd = common::simd;
  const simd::Kernels& kn = simd::KernelsFor(simd_level_);
  const size_t bound = static_cast<size_t>(rel_->IdBound());
  if (bound == 0) return;
  const uint8_t* live = rel_->live_data();
  constexpr size_t kBlock = 4096;
  const size_t max_words = simd::MaskWords(kBlock);
  std::vector<uint64_t> livemask(max_words);  // liveness only
  std::vector<uint64_t> rowmask(max_words);   // one compiled row's matches
  std::vector<uint64_t> scope(max_words);     // union of var-row matches
  std::vector<uint64_t> elig(max_words);      // live ∧ LHS non-NULL
  std::vector<uint64_t> packed(kBlock);

  // One compiled row's constant filter as flat kernel inputs.
  struct RowFilter {
    std::vector<const Code*> cols;
    std::vector<Code> consts;
  };

  for (GroupState& gs : groups_) {
    const size_t nlhs = gs.lhs_cols.size();
    std::vector<const Code*> lhs_ptrs(nlhs);
    for (size_t k = 0; k < nlhs; ++k) {
      lhs_ptrs[k] = enc_->column(gs.lhs_cols[k]).data();
    }
    const Code* rhs_ptr = enc_->column(gs.rhs_col).data();
    auto compile = [&](const std::vector<CompiledRow>& rows) {
      std::vector<RowFilter> out(rows.size());
      for (size_t i = 0; i < rows.size(); ++i) {
        for (const auto& [pos, code] : rows[i].lhs_consts) {
          out[i].cols.push_back(lhs_ptrs[pos]);
          out[i].consts.push_back(code);
        }
      }
      return out;
    };
    const std::vector<RowFilter> const_filters = compile(gs.compiled_const);
    const std::vector<RowFilter> var_filters = compile(gs.compiled_var);

    // Packed-key handle cache for narrow LHS: one uint64 hash probe per
    // placement instead of hashing a code vector (Bucket addresses are
    // node-stable under unordered_map growth). The vector-keyed gs.buckets
    // stays the canonical state either way.
    std::unordered_map<uint64_t, Bucket*> packed_buckets;
    std::vector<Code> key;
    std::vector<const Code*> shifted;
    std::vector<const Code*> lhs_shifted(nlhs);

    for (size_t lo = 0; lo < bound; lo += kBlock) {
      const size_t n = std::min(kBlock, bound - lo);
      const size_t nwords = simd::MaskWords(n);
      if (kn.MaskLive(live + lo, nullptr, 0, kNullCode, n, livemask.data()) ==
          0) {
        continue;
      }

      // Single-tuple violations against constant-RHS rows: live ∧ LHS
      // constants match ∧ RHS non-NULL ∧ RHS differs from the pattern.
      for (size_t ri = 0; ri < const_filters.size(); ++ri) {
        const RowFilter& f = const_filters[ri];
        std::copy_n(livemask.data(), nwords, rowmask.data());
        shifted.assign(f.cols.size(), nullptr);
        for (size_t k = 0; k < f.cols.size(); ++k) shifted[k] = f.cols[k] + lo;
        kn.FilterEqMulti32(shifted.data(), f.consts.data(), f.cols.size(), n,
                           rowmask.data());
        kn.MaskNeAnd32(rhs_ptr + lo, n, kNullCode, rowmask.data());
        kn.MaskNeAnd32(rhs_ptr + lo, n, gs.compiled_const[ri].rhs_code,
                       rowmask.data());
        simd::ForEachSetBit(rowmask.data(), nwords, [&](size_t i) {
          singles_[static_cast<TupleId>(lo + i)].emplace_back(
              gs.compiled_const[ri].ci, gs.compiled_const[ri].pi);
        });
      }

      // Variable-RHS scope membership: union of the var rows' filters,
      // then the groupability mask (live ∧ every LHS attribute non-NULL).
      if (var_filters.empty()) continue;
      std::fill_n(scope.data(), nwords, uint64_t{0});
      for (const RowFilter& f : var_filters) {
        std::copy_n(livemask.data(), nwords, rowmask.data());
        shifted.assign(f.cols.size(), nullptr);
        for (size_t k = 0; k < f.cols.size(); ++k) shifted[k] = f.cols[k] + lo;
        kn.FilterEqMulti32(shifted.data(), f.consts.data(), f.cols.size(), n,
                           rowmask.data());
        for (size_t w = 0; w < nwords; ++w) scope[w] |= rowmask[w];
      }
      for (size_t k = 0; k < nlhs; ++k) lhs_shifted[k] = lhs_ptrs[k] + lo;
      if (kn.MaskLive(live + lo, lhs_shifted.data(), nlhs, kNullCode, n,
                      elig.data()) == 0) {
        continue;
      }
      bool any = false;
      for (size_t w = 0; w < nwords; ++w) {
        scope[w] &= elig[w];
        any |= scope[w] != 0;
      }
      if (!any) continue;

      auto place = [&](TupleId tid, Bucket& b, size_t i) {
        b.members.push_back(tid);
        b.AddRhs(enc_->Decode(gs.rhs_col, rhs_ptr[lo + i]));
        ++buckets_touched_;
      };
      if (nlhs >= 1 && nlhs <= 2) {
        kn.PackKeys2x32(lhs_shifted[0], nlhs == 2 ? lhs_shifted[1] : nullptr,
                        n, packed.data());
        simd::ForEachSetBit(scope.data(), nwords, [&](size_t i) {
          auto [it, fresh] = packed_buckets.emplace(packed[i], nullptr);
          if (fresh) {
            key.clear();
            for (size_t k = 0; k < nlhs; ++k) key.push_back(lhs_shifted[k][i]);
            it->second = &gs.buckets[key];
          }
          place(static_cast<TupleId>(lo + i), *it->second, i);
        });
      } else {
        simd::ForEachSetBit(scope.data(), nwords, [&](size_t i) {
          key.clear();
          for (size_t k = 0; k < nlhs; ++k) key.push_back(lhs_shifted[k][i]);
          place(static_cast<TupleId>(lo + i), gs.buckets[key], i);
        });
      }
    }
  }
}

bool IncrementalDetector::LhsKeyOf(const GroupState& gs, TupleId tid,
                                   std::vector<Code>* key) const {
  key->clear();
  key->reserve(gs.lhs_cols.size());
  for (size_t c : gs.lhs_cols) {
    const Code code = enc_->code(tid, c);
    if (code == kNullCode) return false;
    key->push_back(code);
  }
  return true;
}

void IncrementalDetector::EnterTuple(TupleId tid) {
  std::vector<Code> key;
  for (GroupState& gs : groups_) {
    // Single-tuple violations against constant-RHS rows.
    const Code rhs_code = enc_->code(tid, gs.rhs_col);
    for (const CompiledRow& cr : gs.compiled_const) {
      bool lhs_match = true;
      for (const auto& [pos, code] : cr.lhs_consts) {
        if (enc_->code(tid, gs.lhs_cols[pos]) != code) {
          lhs_match = false;
          break;
        }
      }
      if (!lhs_match) continue;
      if (rhs_code != kNullCode && rhs_code != cr.rhs_code) {
        singles_[tid].emplace_back(cr.ci, cr.pi);
      }
    }
    // Variable-RHS scope membership.
    bool in_scope = false;
    for (const CompiledRow& cr : gs.compiled_var) {
      bool lhs_match = true;
      for (const auto& [pos, code] : cr.lhs_consts) {
        if (enc_->code(tid, gs.lhs_cols[pos]) != code) {
          lhs_match = false;
          break;
        }
      }
      if (lhs_match) {
        in_scope = true;
        break;
      }
    }
    if (!in_scope) continue;
    if (!LhsKeyOf(gs, tid, &key)) continue;  // NULL LHS never groups
    Bucket& b = gs.buckets[key];
    b.members.push_back(tid);
    b.AddRhs(enc_->Decode(gs.rhs_col, rhs_code));
    ++buckets_touched_;
  }
}

void IncrementalDetector::LeaveTuple(TupleId tid) {
  assert(rel_->IsLive(tid));
  singles_.erase(tid);
  std::vector<Code> key;
  for (GroupState& gs : groups_) {
    if (!LhsKeyOf(gs, tid, &key)) continue;
    auto it = gs.buckets.find(key);
    if (it == gs.buckets.end()) continue;
    auto& members = it->second.members;
    auto pos = std::find(members.begin(), members.end(), tid);
    if (pos == members.end()) continue;  // was not in scope for this group
    members.erase(pos);
    it->second.RemoveRhs(enc_->Decode(gs.rhs_col, enc_->code(tid, gs.rhs_col)));
    ++buckets_touched_;
    if (members.empty()) gs.buckets.erase(it);
  }
}

common::Status IncrementalDetector::ApplyAndDetect(const UpdateBatch& batch,
                                                   std::vector<TupleId>* inserted) {
  if (!initialized_) {
    return Status::FailedPrecondition("IncrementalDetector::Initialize was not called");
  }
  for (const Update& u : batch) {
    // Validate before LeaveTuple: a relation-level failure after it would
    // leave detector state drifted from the (unchanged) relation.
    SEMANDAQ_RETURN_IF_ERROR(relational::ValidateUpdate(u, *rel_));
    switch (u.kind) {
      case Update::Kind::kInsert: {
        auto r = rel_->Insert(u.row);
        if (!r.ok()) return r.status();
        if (inserted != nullptr) inserted->push_back(*r);
        enc_->ApplyInsert(*r);
        EnterTuple(*r);
        break;
      }
      case Update::Kind::kDelete:
        LeaveTuple(u.tid);
        SEMANDAQ_RETURN_IF_ERROR(rel_->Delete(u.tid));
        enc_->NoteDelete();
        break;
      case Update::Kind::kModify:
        LeaveTuple(u.tid);
        SEMANDAQ_RETURN_IF_ERROR(rel_->SetCell(u.tid, u.col, u.new_value));
        enc_->ApplyCell(u.tid, u.col);
        EnterTuple(u.tid);
        break;
    }
  }
  return Status::OK();
}

ViolationTable IncrementalDetector::Snapshot() const {
  ViolationTable table;
  // Deterministic order: singles sorted by tid.
  std::vector<TupleId> tids;
  tids.reserve(singles_.size());
  for (const auto& [tid, list] : singles_) tids.push_back(tid);
  std::sort(tids.begin(), tids.end());
  for (TupleId tid : tids) {
    for (const auto& [ci, pi] : singles_.at(tid)) {
      table.AddSingle(SingleViolation{tid, static_cast<int>(ci), static_cast<int>(pi)});
    }
  }
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    const GroupState& gs = groups_[gi];
    for (const auto& [key, bucket] : gs.buckets) {
      if (!bucket.violating()) continue;
      ViolationGroup vg;
      vg.fd_group = static_cast<int>(gi);
      vg.cfd_index =
          gs.var_rows.empty() ? -1 : static_cast<int>(gs.var_rows.front().first);
      vg.lhs_key.reserve(key.size());
      for (size_t i = 0; i < key.size(); ++i) {
        vg.lhs_key.push_back(enc_->Decode(gs.lhs_cols[i], key[i]));
      }
      vg.members = bucket.members;
      vg.member_rhs.reserve(bucket.members.size());
      for (TupleId tid : bucket.members) {
        vg.member_rhs.push_back(rel_->cell(tid, gs.rhs_col));
      }
      table.AddGroup(std::move(vg));
    }
  }
  return table;
}

int64_t IncrementalDetector::Vio(TupleId tid) const {
  int64_t vio = 0;
  // Singles: one per distinct CFD.
  auto it = singles_.find(tid);
  if (it != singles_.end()) {
    std::vector<size_t> cfd_ids;
    for (const auto& [ci, pi] : it->second) cfd_ids.push_back(ci);
    std::sort(cfd_ids.begin(), cfd_ids.end());
    cfd_ids.erase(std::unique(cfd_ids.begin(), cfd_ids.end()), cfd_ids.end());
    vio += static_cast<int64_t>(cfd_ids.size());
  }
  if (!rel_->IsLive(tid)) return vio;
  std::vector<Code> key;
  for (const GroupState& gs : groups_) {
    if (!LhsKeyOf(gs, tid, &key)) continue;
    auto bit = gs.buckets.find(key);
    if (bit == gs.buckets.end() || !bit->second.violating()) continue;
    const Bucket& b = bit->second;
    if (std::find(b.members.begin(), b.members.end(), tid) == b.members.end()) {
      continue;
    }
    const Code mine = enc_->code(tid, gs.rhs_col);
    int64_t same = 0;
    if (mine != kNullCode) {
      auto cit = b.rhs_counts.find(enc_->Decode(gs.rhs_col, mine));
      if (cit != b.rhs_counts.end()) same = cit->second;
    } else {
      for (TupleId other : b.members) {
        if (enc_->code(other, gs.rhs_col) == kNullCode) ++same;
      }
    }
    vio += static_cast<int64_t>(b.members.size()) - same;
  }
  return vio;
}

std::vector<std::pair<size_t, size_t>> IncrementalDetector::SinglesOf(
    TupleId tid) const {
  auto it = singles_.find(tid);
  return it == singles_.end() ? std::vector<std::pair<size_t, size_t>>{}
                              : it->second;
}

std::vector<IncrementalDetector::GroupView> IncrementalDetector::ViolatingGroupsOf(
    TupleId tid) const {
  std::vector<GroupView> out;
  if (!rel_->IsLive(tid)) return out;
  std::vector<Code> key;
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    const GroupState& gs = groups_[gi];
    if (!LhsKeyOf(gs, tid, &key)) continue;
    auto bit = gs.buckets.find(key);
    if (bit == gs.buckets.end() || !bit->second.violating()) continue;
    const Bucket& b = bit->second;
    if (std::find(b.members.begin(), b.members.end(), tid) == b.members.end()) {
      continue;
    }
    GroupView view;
    view.fd_group = gi;
    view.rhs_col = gs.rhs_col;
    view.escape_lhs_col = gs.lhs_cols.back();
    view.members = &b.members;
    view.rhs_counts = &b.rhs_counts;
    out.push_back(view);
  }
  return out;
}

bool IncrementalDetector::Clean() const {
  if (!singles_.empty()) return false;
  for (const GroupState& gs : groups_) {
    for (const auto& [key, bucket] : gs.buckets) {
      if (bucket.violating()) return false;
    }
  }
  return true;
}

}  // namespace semandaq::detect
