#include "detect/incremental_detector.h"

#include <algorithm>
#include <cassert>

namespace semandaq::detect {

using cfd::Cfd;
using cfd::PatternTuple;
using common::Status;
using relational::Row;
using relational::TupleId;
using relational::Update;
using relational::UpdateBatch;
using relational::Value;

void IncrementalDetector::Bucket::AddRhs(const Value& v) {
  if (v.is_null()) return;
  if (++rhs_counts[v] == 1) ++distinct_nonnull;
}

void IncrementalDetector::Bucket::RemoveRhs(const Value& v) {
  if (v.is_null()) return;
  auto it = rhs_counts.find(v);
  if (it == rhs_counts.end()) return;
  if (--it->second == 0) {
    rhs_counts.erase(it);
    --distinct_nonnull;
  }
}

common::Status IncrementalDetector::Initialize() {
  SEMANDAQ_RETURN_IF_ERROR(cfd::ResolveAll(&cfds_, rel_->schema()));
  groups_.clear();
  singles_.clear();

  const auto fd_groups = cfd::GroupByEmbeddedFd(cfds_);
  groups_.reserve(fd_groups.size());
  for (const auto& g : fd_groups) {
    GroupState gs;
    const Cfd& first = cfds_[g.members.front().first];
    gs.lhs_cols = first.lhs_cols();
    gs.rhs_col = first.rhs_col();
    for (const auto& member : g.members) {
      if (cfds_[member.first].tableau()[member.second].is_constant_rhs()) {
        gs.const_rows.push_back(member);
      } else {
        gs.var_rows.push_back(member);
      }
    }
    groups_.push_back(std::move(gs));
  }

  rel_->ForEach([&](TupleId tid, const Row&) { EnterTuple(tid); });
  initialized_ = true;
  return Status::OK();
}

void IncrementalDetector::EnterTuple(TupleId tid) {
  const Row& row = rel_->row(tid);
  for (GroupState& gs : groups_) {
    // Single-tuple violations against constant-RHS rows.
    for (const auto& [ci, pi] : gs.const_rows) {
      const PatternTuple& pt = cfds_[ci].tableau()[pi];
      bool lhs_match = true;
      for (size_t i = 0; i < gs.lhs_cols.size(); ++i) {
        if (!pt.lhs[i].Matches(row[gs.lhs_cols[i]])) {
          lhs_match = false;
          break;
        }
      }
      if (!lhs_match) continue;
      const Value& a = row[gs.rhs_col];
      if (!a.is_null() && !(a == pt.rhs.constant())) {
        singles_[tid].emplace_back(ci, pi);
      }
    }
    // Variable-RHS scope membership.
    bool in_scope = false;
    for (const auto& [ci, pi] : gs.var_rows) {
      const PatternTuple& pt = cfds_[ci].tableau()[pi];
      bool lhs_match = true;
      for (size_t i = 0; i < gs.lhs_cols.size(); ++i) {
        if (!pt.lhs[i].Matches(row[gs.lhs_cols[i]])) {
          lhs_match = false;
          break;
        }
      }
      if (lhs_match) {
        in_scope = true;
        break;
      }
    }
    if (!in_scope) continue;
    Row key;
    key.reserve(gs.lhs_cols.size());
    bool null_key = false;
    for (size_t c : gs.lhs_cols) {
      if (row[c].is_null()) {
        null_key = true;
        break;
      }
      key.push_back(row[c]);
    }
    if (null_key) continue;
    Bucket& b = gs.buckets[std::move(key)];
    b.members.push_back(tid);
    b.AddRhs(row[gs.rhs_col]);
    ++buckets_touched_;
  }
}

void IncrementalDetector::LeaveTuple(TupleId tid) {
  assert(rel_->IsLive(tid));
  const Row& row = rel_->row(tid);
  singles_.erase(tid);
  for (GroupState& gs : groups_) {
    Row key;
    key.reserve(gs.lhs_cols.size());
    bool null_key = false;
    for (size_t c : gs.lhs_cols) {
      if (row[c].is_null()) {
        null_key = true;
        break;
      }
      key.push_back(row[c]);
    }
    if (null_key) continue;
    auto it = gs.buckets.find(key);
    if (it == gs.buckets.end()) continue;
    auto& members = it->second.members;
    auto pos = std::find(members.begin(), members.end(), tid);
    if (pos == members.end()) continue;  // was not in scope for this group
    members.erase(pos);
    it->second.RemoveRhs(row[gs.rhs_col]);
    ++buckets_touched_;
    if (members.empty()) gs.buckets.erase(it);
  }
}

common::Status IncrementalDetector::ApplyAndDetect(const UpdateBatch& batch,
                                                   std::vector<TupleId>* inserted) {
  if (!initialized_) {
    return Status::FailedPrecondition("IncrementalDetector::Initialize was not called");
  }
  for (const Update& u : batch) {
    switch (u.kind) {
      case Update::Kind::kInsert: {
        auto r = rel_->Insert(u.row);
        if (!r.ok()) return r.status();
        if (inserted != nullptr) inserted->push_back(*r);
        EnterTuple(*r);
        break;
      }
      case Update::Kind::kDelete:
        if (!rel_->IsLive(u.tid)) {
          return Status::OutOfRange("delete of dead tuple " + std::to_string(u.tid));
        }
        LeaveTuple(u.tid);
        SEMANDAQ_RETURN_IF_ERROR(rel_->Delete(u.tid));
        break;
      case Update::Kind::kModify:
        if (!rel_->IsLive(u.tid)) {
          return Status::OutOfRange("modify of dead tuple " + std::to_string(u.tid));
        }
        LeaveTuple(u.tid);
        SEMANDAQ_RETURN_IF_ERROR(rel_->SetCell(u.tid, u.col, u.new_value));
        EnterTuple(u.tid);
        break;
    }
  }
  return Status::OK();
}

ViolationTable IncrementalDetector::Snapshot() const {
  ViolationTable table;
  // Deterministic order: singles sorted by tid.
  std::vector<TupleId> tids;
  tids.reserve(singles_.size());
  for (const auto& [tid, list] : singles_) tids.push_back(tid);
  std::sort(tids.begin(), tids.end());
  for (TupleId tid : tids) {
    for (const auto& [ci, pi] : singles_.at(tid)) {
      table.AddSingle(SingleViolation{tid, static_cast<int>(ci), static_cast<int>(pi)});
    }
  }
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    const GroupState& gs = groups_[gi];
    for (const auto& [key, bucket] : gs.buckets) {
      if (!bucket.violating()) continue;
      ViolationGroup vg;
      vg.fd_group = static_cast<int>(gi);
      vg.cfd_index =
          gs.var_rows.empty() ? -1 : static_cast<int>(gs.var_rows.front().first);
      vg.lhs_key = key;
      vg.members = bucket.members;
      vg.member_rhs.reserve(bucket.members.size());
      for (TupleId tid : bucket.members) {
        vg.member_rhs.push_back(rel_->cell(tid, gs.rhs_col));
      }
      table.AddGroup(std::move(vg));
    }
  }
  return table;
}

int64_t IncrementalDetector::Vio(TupleId tid) const {
  int64_t vio = 0;
  // Singles: one per distinct CFD.
  auto it = singles_.find(tid);
  if (it != singles_.end()) {
    std::vector<size_t> cfd_ids;
    for (const auto& [ci, pi] : it->second) cfd_ids.push_back(ci);
    std::sort(cfd_ids.begin(), cfd_ids.end());
    cfd_ids.erase(std::unique(cfd_ids.begin(), cfd_ids.end()), cfd_ids.end());
    vio += static_cast<int64_t>(cfd_ids.size());
  }
  if (!rel_->IsLive(tid)) return vio;
  const Row& row = rel_->row(tid);
  for (const GroupState& gs : groups_) {
    Row key;
    bool null_key = false;
    for (size_t c : gs.lhs_cols) {
      if (row[c].is_null()) {
        null_key = true;
        break;
      }
      key.push_back(row[c]);
    }
    if (null_key) continue;
    auto bit = gs.buckets.find(key);
    if (bit == gs.buckets.end() || !bit->second.violating()) continue;
    const Bucket& b = bit->second;
    if (std::find(b.members.begin(), b.members.end(), tid) == b.members.end()) {
      continue;
    }
    const Value& mine = row[gs.rhs_col];
    int64_t same = 0;
    if (!mine.is_null()) {
      auto cit = b.rhs_counts.find(mine);
      if (cit != b.rhs_counts.end()) same = cit->second;
    } else {
      for (TupleId other : b.members) {
        if (rel_->cell(other, gs.rhs_col).is_null()) ++same;
      }
    }
    vio += static_cast<int64_t>(b.members.size()) - same;
  }
  return vio;
}

std::vector<std::pair<size_t, size_t>> IncrementalDetector::SinglesOf(
    TupleId tid) const {
  auto it = singles_.find(tid);
  return it == singles_.end() ? std::vector<std::pair<size_t, size_t>>{}
                              : it->second;
}

std::vector<IncrementalDetector::GroupView> IncrementalDetector::ViolatingGroupsOf(
    TupleId tid) const {
  std::vector<GroupView> out;
  if (!rel_->IsLive(tid)) return out;
  const Row& row = rel_->row(tid);
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    const GroupState& gs = groups_[gi];
    Row key;
    bool null_key = false;
    for (size_t c : gs.lhs_cols) {
      if (row[c].is_null()) {
        null_key = true;
        break;
      }
      key.push_back(row[c]);
    }
    if (null_key) continue;
    auto bit = gs.buckets.find(key);
    if (bit == gs.buckets.end() || !bit->second.violating()) continue;
    const Bucket& b = bit->second;
    if (std::find(b.members.begin(), b.members.end(), tid) == b.members.end()) {
      continue;
    }
    GroupView view;
    view.fd_group = gi;
    view.rhs_col = gs.rhs_col;
    view.escape_lhs_col = gs.lhs_cols.back();
    view.members = &b.members;
    view.rhs_counts = &b.rhs_counts;
    out.push_back(view);
  }
  return out;
}

bool IncrementalDetector::Clean() const {
  if (!singles_.empty()) return false;
  for (const GroupState& gs : groups_) {
    for (const auto& [key, bucket] : gs.buckets) {
      if (bucket.violating()) return false;
    }
  }
  return true;
}

}  // namespace semandaq::detect
