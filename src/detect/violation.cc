#include "detect/violation.h"

#include <algorithm>

namespace semandaq::detect {

namespace {

uint64_t PairKey(relational::TupleId tid, int cfd) {
  return (static_cast<uint64_t>(tid) << 20) ^ static_cast<uint64_t>(cfd + 1);
}

}  // namespace

bool ViolationTable::AddSingle(SingleViolation v) {
  singles_.push_back(v);
  const bool fresh = counted_singles_.insert(PairKey(v.tid, v.cfd_index)).second;
  if (fresh) {
    ++vio_[v.tid];
    ++total_;
    single_cfds_[v.tid].push_back(v.cfd_index);
  }
  return fresh;
}

void ViolationTable::AddGroup(ViolationGroup g) {
  const int group_index = static_cast<int>(groups_.size());
  // Partner count for member i is |G| - |{j : rhs_j == rhs_i}| (exact Value
  // equality: two NULL RHS cells count as agreeing). One counting pass keeps
  // this linear even for very wide groups.
  std::unordered_map<relational::Value, int64_t, relational::ValueHash> freq;
  for (const relational::Value& v : g.member_rhs) ++freq[v];
  const int64_t n = static_cast<int64_t>(g.members.size());
  for (size_t i = 0; i < g.members.size(); ++i) {
    const int64_t partners = n - freq[g.member_rhs[i]];
    if (partners > 0) {
      vio_[g.members[i]] += partners;
      total_ += partners;
    }
    group_membership_[g.members[i]].push_back(group_index);
  }
  groups_.push_back(std::move(g));
}

int64_t ViolationTable::vio(relational::TupleId tid) const {
  auto it = vio_.find(tid);
  return it == vio_.end() ? 0 : it->second;
}

std::vector<int> ViolationTable::SingleCfdsOf(relational::TupleId tid) const {
  auto it = single_cfds_.find(tid);
  return it == single_cfds_.end() ? std::vector<int>{} : it->second;
}

std::vector<int> ViolationTable::GroupsOf(relational::TupleId tid) const {
  auto it = group_membership_.find(tid);
  return it == group_membership_.end() ? std::vector<int>{} : it->second;
}

std::vector<relational::TupleId> ViolationTable::ViolatingTuples() const {
  std::vector<relational::TupleId> out;
  out.reserve(vio_.size());
  for (const auto& [tid, count] : vio_) {
    if (count > 0) out.push_back(tid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string ViolationTable::Summary() const {
  return std::to_string(singles_.size()) + " single-tuple violation(s), " +
         std::to_string(groups_.size()) + " multi-tuple group(s), " +
         std::to_string(NumViolatingTuples()) + " violating tuple(s), total vio " +
         std::to_string(total_);
}

}  // namespace semandaq::detect
