#include "detect/violation.h"

#include <algorithm>

namespace semandaq::detect {

namespace {

uint64_t PairKey(relational::TupleId tid, int cfd) {
  return (static_cast<uint64_t>(tid) << 20) ^ static_cast<uint64_t>(cfd + 1);
}

}  // namespace

void ViolationTable::EnsureTid(relational::TupleId tid) {
  const size_t need = static_cast<size_t>(tid) + 1;
  if (vio_.size() < need) vio_.resize(need, 0);
}

void ViolationTable::AddVio(relational::TupleId tid, int64_t amount) {
  int64_t& v = vio_[static_cast<size_t>(tid)];
  if (v == 0 && amount > 0) ++num_violating_;
  v += amount;
  total_ += amount;
}

bool ViolationTable::AddSingle(SingleViolation v) {
  singles_.push_back(v);
  drilldown_built_ = false;
  const bool fresh = counted_singles_.insert(PairKey(v.tid, v.cfd_index)).second;
  if (fresh) {
    EnsureTid(v.tid);
    AddVio(v.tid, 1);
  }
  return fresh;
}

void ViolationTable::AddGroup(ViolationGroup g) {
  const int64_t n = static_cast<int64_t>(g.members.size());
  drilldown_built_ = false;
  if (!g.members.empty()) {
    relational::TupleId max_tid = g.members.front();
    for (relational::TupleId tid : g.members) max_tid = std::max(max_tid, tid);
    EnsureTid(max_tid);
  }
  if (g.member_partners.size() == g.members.size()) {
    // Producer supplied exact partner counts (computed on integer codes).
    for (size_t i = 0; i < g.members.size(); ++i) {
      const int64_t partners = g.member_partners[i];
      if (partners > 0) AddVio(g.members[i], partners);
    }
  } else {
    // Partner count for member i is |G| - |{j : rhs_j == rhs_i}| (exact
    // Value equality: two NULL RHS cells count as agreeing). One counting
    // pass keeps this linear even for very wide groups.
    std::unordered_map<relational::Value, int64_t, relational::ValueHash> freq;
    for (const relational::Value& v : g.member_rhs) ++freq[v];
    for (size_t i = 0; i < g.members.size(); ++i) {
      const int64_t partners = n - freq[g.member_rhs[i]];
      if (partners > 0) AddVio(g.members[i], partners);
    }
  }
  groups_.push_back(std::move(g));
}

void ViolationTable::EnsureDrilldownIndex() const {
  if (drilldown_built_) return;
  single_cfds_.clear();
  group_membership_.clear();
  std::unordered_set<uint64_t> seen;
  seen.reserve(singles_.size());
  for (const SingleViolation& v : singles_) {
    if (seen.insert(PairKey(v.tid, v.cfd_index)).second) {
      single_cfds_[v.tid].push_back(v.cfd_index);
    }
  }
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    for (relational::TupleId tid : groups_[gi].members) {
      group_membership_[tid].push_back(static_cast<int>(gi));
    }
  }
  drilldown_built_ = true;
}

int64_t ViolationTable::vio(relational::TupleId tid) const {
  const size_t i = static_cast<size_t>(tid);
  return tid >= 0 && i < vio_.size() ? vio_[i] : 0;
}

std::vector<int> ViolationTable::SingleCfdsOf(relational::TupleId tid) const {
  EnsureDrilldownIndex();
  const auto it = single_cfds_.find(tid);
  return it != single_cfds_.end() ? it->second : std::vector<int>{};
}

std::vector<int> ViolationTable::GroupsOf(relational::TupleId tid) const {
  EnsureDrilldownIndex();
  const auto it = group_membership_.find(tid);
  return it != group_membership_.end() ? it->second : std::vector<int>{};
}

std::vector<relational::TupleId> ViolationTable::ViolatingTuples() const {
  std::vector<relational::TupleId> out;
  out.reserve(num_violating_);
  for (size_t i = 0; i < vio_.size(); ++i) {
    if (vio_[i] > 0) out.push_back(static_cast<relational::TupleId>(i));
  }
  return out;
}

std::string ViolationTable::Summary() const {
  return std::to_string(singles_.size()) + " single-tuple violation(s), " +
         std::to_string(groups_.size()) + " multi-tuple group(s), " +
         std::to_string(NumViolatingTuples()) + " violating tuple(s), total vio " +
         std::to_string(total_);
}

}  // namespace semandaq::detect
