#include "detect/violation.h"

#include <algorithm>

namespace semandaq::detect {

namespace {

uint64_t PairKey(relational::TupleId tid, int cfd) {
  return (static_cast<uint64_t>(tid) << 20) ^ static_cast<uint64_t>(cfd + 1);
}

}  // namespace

void ViolationTable::EnsureTid(relational::TupleId tid) {
  const size_t need = static_cast<size_t>(tid) + 1;
  if (vio_.size() < need) {
    vio_.resize(need, 0);
    single_cfds_.resize(need);
    group_membership_.resize(need);
  }
}

void ViolationTable::AddVio(relational::TupleId tid, int64_t amount) {
  int64_t& v = vio_[static_cast<size_t>(tid)];
  if (v == 0 && amount > 0) ++num_violating_;
  v += amount;
  total_ += amount;
}

bool ViolationTable::AddSingle(SingleViolation v) {
  singles_.push_back(v);
  const bool fresh = counted_singles_.insert(PairKey(v.tid, v.cfd_index)).second;
  if (fresh) {
    EnsureTid(v.tid);
    AddVio(v.tid, 1);
    single_cfds_[static_cast<size_t>(v.tid)].push_back(v.cfd_index);
  }
  return fresh;
}

void ViolationTable::AddGroup(ViolationGroup g) {
  const int group_index = static_cast<int>(groups_.size());
  const int64_t n = static_cast<int64_t>(g.members.size());
  if (!g.members.empty()) {
    relational::TupleId max_tid = g.members.front();
    for (relational::TupleId tid : g.members) max_tid = std::max(max_tid, tid);
    EnsureTid(max_tid);
  }
  if (g.member_partners.size() == g.members.size()) {
    // Producer supplied exact partner counts (computed on integer codes).
    for (size_t i = 0; i < g.members.size(); ++i) {
      const int64_t partners = g.member_partners[i];
      if (partners > 0) AddVio(g.members[i], partners);
      group_membership_[static_cast<size_t>(g.members[i])].push_back(group_index);
    }
  } else {
    // Partner count for member i is |G| - |{j : rhs_j == rhs_i}| (exact
    // Value equality: two NULL RHS cells count as agreeing). One counting
    // pass keeps this linear even for very wide groups.
    std::unordered_map<relational::Value, int64_t, relational::ValueHash> freq;
    for (const relational::Value& v : g.member_rhs) ++freq[v];
    for (size_t i = 0; i < g.members.size(); ++i) {
      const int64_t partners = n - freq[g.member_rhs[i]];
      if (partners > 0) AddVio(g.members[i], partners);
      group_membership_[static_cast<size_t>(g.members[i])].push_back(group_index);
    }
  }
  groups_.push_back(std::move(g));
}

int64_t ViolationTable::vio(relational::TupleId tid) const {
  const size_t i = static_cast<size_t>(tid);
  return tid >= 0 && i < vio_.size() ? vio_[i] : 0;
}

std::vector<int> ViolationTable::SingleCfdsOf(relational::TupleId tid) const {
  const size_t i = static_cast<size_t>(tid);
  return tid >= 0 && i < single_cfds_.size() ? single_cfds_[i]
                                             : std::vector<int>{};
}

std::vector<int> ViolationTable::GroupsOf(relational::TupleId tid) const {
  const size_t i = static_cast<size_t>(tid);
  return tid >= 0 && i < group_membership_.size() ? group_membership_[i]
                                                  : std::vector<int>{};
}

std::vector<relational::TupleId> ViolationTable::ViolatingTuples() const {
  std::vector<relational::TupleId> out;
  out.reserve(num_violating_);
  for (size_t i = 0; i < vio_.size(); ++i) {
    if (vio_[i] > 0) out.push_back(static_cast<relational::TupleId>(i));
  }
  return out;
}

std::string ViolationTable::Summary() const {
  return std::to_string(singles_.size()) + " single-tuple violation(s), " +
         std::to_string(groups_.size()) + " multi-tuple group(s), " +
         std::to_string(NumViolatingTuples()) + " violating tuple(s), total vio " +
         std::to_string(total_);
}

}  // namespace semandaq::detect
