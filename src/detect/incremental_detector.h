#ifndef SEMANDAQ_DETECT_INCREMENTAL_DETECTOR_H_
#define SEMANDAQ_DETECT_INCREMENTAL_DETECTOR_H_

#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cfd/cfd.h"
#include "common/status.h"
#include "detect/violation.h"
#include "relational/relation.h"
#include "relational/update.h"

namespace semandaq::detect {

/// Incremental CFD violation detection (paper §2, Data Monitor: "invoking an
/// incremental detection module ... using the incremental SQL-based
/// detection techniques developed in [3]").
///
/// The detector owns per-embedded-FD-group hash state: for every LHS key,
/// the member tuples matching a variable-RHS pattern together with RHS value
/// counts, so that applying an update touches only the affected buckets —
/// O(|Δ|) work instead of a full re-scan. Snapshot() reconstitutes a
/// ViolationTable that is value-identical to a from-scratch NativeDetector
/// run (a test invariant).
///
/// The detector applies updates to the relation itself so its state can
/// never drift from the data: route all mutations through ApplyAndDetect.
class IncrementalDetector {
 public:
  /// `cfds` are resolved internally against rel's schema.
  IncrementalDetector(relational::Relation* rel, std::vector<cfd::Cfd> cfds)
      : rel_(rel), cfds_(std::move(cfds)) {}

  /// Builds the initial state with one full pass. Must be called once
  /// before ApplyAndDetect.
  common::Status Initialize();

  /// Applies the batch to the relation and updates violation state.
  /// Freshly inserted tuple ids are appended to `inserted` when non-null.
  common::Status ApplyAndDetect(const relational::UpdateBatch& batch,
                                std::vector<relational::TupleId>* inserted = nullptr);

  /// Current violations, equivalent to a full re-detection.
  ViolationTable Snapshot() const;

  /// Current vio(t) without materializing a snapshot.
  int64_t Vio(relational::TupleId tid) const;

  /// True when no tuple currently violates any CFD.
  bool Clean() const;

  /// Buckets examined by all ApplyAndDetect calls so far — the work measure
  /// bench_incremental_detect reports against full re-detection.
  size_t buckets_touched() const { return buckets_touched_; }

  const std::vector<cfd::Cfd>& cfds() const { return cfds_; }

  /// (cfd, pattern) pairs for which `tid` is currently a single-tuple
  /// violator. O(1) lookup — this is what makes delta-local repair cheap.
  std::vector<std::pair<size_t, size_t>> SinglesOf(relational::TupleId tid) const;

  /// Read-only view of one violating multi-tuple bucket containing a tuple.
  struct GroupView {
    size_t fd_group = 0;
    size_t rhs_col = 0;
    size_t escape_lhs_col = 0;  ///< last LHS column (the NULL-escape target)
    const std::vector<relational::TupleId>* members = nullptr;
    const std::unordered_map<relational::Value, int, relational::ValueHash>*
        rhs_counts = nullptr;
  };

  /// The violating buckets `tid` belongs to right now (empty when none).
  std::vector<GroupView> ViolatingGroupsOf(relational::TupleId tid) const;

 private:
  struct Bucket {
    std::vector<relational::TupleId> members;
    std::unordered_map<relational::Value, int, relational::ValueHash> rhs_counts;
    size_t distinct_nonnull = 0;

    void AddRhs(const relational::Value& v);
    void RemoveRhs(const relational::Value& v);
    bool violating() const { return distinct_nonnull >= 2; }
  };

  struct GroupState {
    std::vector<size_t> lhs_cols;
    size_t rhs_col = 0;
    /// (cfd, pattern) of constant-RHS rows, then of variable-RHS rows.
    std::vector<std::pair<size_t, size_t>> const_rows;
    std::vector<std::pair<size_t, size_t>> var_rows;
    std::unordered_map<relational::Row, Bucket, relational::RowHash,
                       relational::RowEq>
        buckets;
  };

  /// Registers a live tuple in singles and group buckets.
  void EnterTuple(relational::TupleId tid);
  /// Unregisters a live tuple (must run before the row changes/dies).
  void LeaveTuple(relational::TupleId tid);

  relational::Relation* rel_;
  std::vector<cfd::Cfd> cfds_;
  std::vector<GroupState> groups_;
  bool initialized_ = false;

  /// tid -> (cfd, pattern) single violations.
  std::unordered_map<relational::TupleId, std::vector<std::pair<size_t, size_t>>>
      singles_;
  size_t buckets_touched_ = 0;
};

}  // namespace semandaq::detect

#endif  // SEMANDAQ_DETECT_INCREMENTAL_DETECTOR_H_
