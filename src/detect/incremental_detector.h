#ifndef SEMANDAQ_DETECT_INCREMENTAL_DETECTOR_H_
#define SEMANDAQ_DETECT_INCREMENTAL_DETECTOR_H_

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cfd/cfd.h"
#include "common/simd/simd.h"
#include "common/status.h"
#include "detect/violation.h"
#include "relational/encoded_relation.h"
#include "relational/relation.h"
#include "relational/update.h"

namespace semandaq::detect {

/// Incremental CFD violation detection (paper §2, Data Monitor: "invoking an
/// incremental detection module ... using the incremental SQL-based
/// detection techniques developed in [3]").
///
/// The detector owns per-embedded-FD-group hash state: for every LHS key,
/// the member tuples matching a variable-RHS pattern together with RHS value
/// counts, so that applying an update touches only the affected buckets —
/// O(|Δ|) work instead of a full re-scan. Snapshot() reconstitutes a
/// ViolationTable that is value-identical to a from-scratch NativeDetector
/// run (a test invariant).
///
/// Internally the detector runs on a dictionary-encoded columnar snapshot
/// (relational::EncodedRelation) that it keeps warm through the delta hooks:
/// bucket keys are LHS code vectors and pattern tableaux are precompiled to
/// codes at Initialize (pattern constants are *encoded into* the
/// dictionaries, so a constant that first appears in a later insert still
/// compiles to the same stable code).
///
/// The detector applies updates to the relation itself so its state can
/// never drift from the data: route all mutations through ApplyAndDetect.
class IncrementalDetector {
 public:
  /// `cfds` are resolved internally against rel's schema. `simd_level`
  /// selects the kernel tier of Initialize()'s bulk bucket build (kAuto =
  /// the host's best); every tier builds byte-identical bucket state.
  IncrementalDetector(relational::Relation* rel, std::vector<cfd::Cfd> cfds,
                      common::simd::Level simd_level =
                          common::simd::Level::kAuto)
      : rel_(rel), cfds_(std::move(cfds)), simd_level_(simd_level) {}

  /// Builds the initial state with one full pass. The pass runs in SIMD
  /// kernel blocks (MaskLive liveness/non-NULL masks, FilterEqMulti32
  /// pattern-constant narrowing, PackKeys2x32 packed bucket keys) instead
  /// of tuple-at-a-time EnterTuple calls; the resulting buckets, singles,
  /// and counters are identical to the per-tuple build on every tier.
  /// Must be called once before ApplyAndDetect.
  common::Status Initialize();

  /// Applies the batch to the relation and updates violation state.
  /// Freshly inserted tuple ids are appended to `inserted` when non-null.
  common::Status ApplyAndDetect(const relational::UpdateBatch& batch,
                                std::vector<relational::TupleId>* inserted = nullptr);

  /// Current violations, equivalent to a full re-detection.
  ViolationTable Snapshot() const;

  /// Current vio(t) without materializing a snapshot.
  int64_t Vio(relational::TupleId tid) const;

  /// True when no tuple currently violates any CFD.
  bool Clean() const;

  /// Buckets examined by all ApplyAndDetect calls so far — the work measure
  /// bench_incremental_detect reports against full re-detection.
  size_t buckets_touched() const { return buckets_touched_; }

  const std::vector<cfd::Cfd>& cfds() const { return cfds_; }

  /// (cfd, pattern) pairs for which `tid` is currently a single-tuple
  /// violator. O(1) lookup — this is what makes delta-local repair cheap.
  std::vector<std::pair<size_t, size_t>> SinglesOf(relational::TupleId tid) const;

  /// Read-only view of one violating multi-tuple bucket containing a tuple.
  struct GroupView {
    size_t fd_group = 0;
    size_t rhs_col = 0;
    size_t escape_lhs_col = 0;  ///< last LHS column (the NULL-escape target)
    const std::vector<relational::TupleId>* members = nullptr;
    const std::unordered_map<relational::Value, int, relational::ValueHash>*
        rhs_counts = nullptr;
  };

  /// The violating buckets `tid` belongs to right now (empty when none).
  std::vector<GroupView> ViolatingGroupsOf(relational::TupleId tid) const;

 private:
  struct Bucket {
    std::vector<relational::TupleId> members;
    std::unordered_map<relational::Value, int, relational::ValueHash> rhs_counts;
    size_t distinct_nonnull = 0;

    void AddRhs(const relational::Value& v);
    void RemoveRhs(const relational::Value& v);
    bool violating() const { return distinct_nonnull >= 2; }
  };

  /// A tableau row compiled to codes: (LHS position, required code) pairs
  /// for the constants, plus the RHS code for constant-RHS rows.
  struct CompiledRow {
    size_t ci = 0;
    size_t pi = 0;
    std::vector<std::pair<uint32_t, relational::Code>> lhs_consts;
    relational::Code rhs_code = relational::kNullCode;
  };

  struct GroupState {
    std::vector<size_t> lhs_cols;
    size_t rhs_col = 0;
    /// (cfd, pattern) of the feasible variable-RHS rows (Snapshot needs a
    /// representative CFD index for each group).
    std::vector<std::pair<size_t, size_t>> var_rows;
    /// Tableau rows compiled to codes (compiled_var parallel to var_rows).
    std::vector<CompiledRow> compiled_const;
    std::vector<CompiledRow> compiled_var;
    std::unordered_map<std::vector<relational::Code>, Bucket,
                       relational::CodeVecHash>
        buckets;
  };

  /// Fills `key` with the tuple's LHS codes; false when any is NULL.
  bool LhsKeyOf(const GroupState& gs, relational::TupleId tid,
                std::vector<relational::Code>* key) const;

  /// Registers a live tuple in singles and group buckets.
  void EnterTuple(relational::TupleId tid);
  /// Unregisters a live tuple (must run before the row changes/dies).
  void LeaveTuple(relational::TupleId tid);
  /// Kernel-block twin of calling EnterTuple for every live tuple — the
  /// Initialize() bulk path.
  void BulkEnter();

  relational::Relation* rel_;
  std::vector<cfd::Cfd> cfds_;
  common::simd::Level simd_level_ = common::simd::Level::kAuto;
  std::vector<GroupState> groups_;
  /// Columnar code mirror of *rel_, kept warm by the delta hooks.
  std::optional<relational::EncodedRelation> enc_;
  bool initialized_ = false;

  /// tid -> (cfd, pattern) single violations.
  std::unordered_map<relational::TupleId, std::vector<std::pair<size_t, size_t>>>
      singles_;
  size_t buckets_touched_ = 0;
};

}  // namespace semandaq::detect

#endif  // SEMANDAQ_DETECT_INCREMENTAL_DETECTOR_H_
