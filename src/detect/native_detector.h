#ifndef SEMANDAQ_DETECT_NATIVE_DETECTOR_H_
#define SEMANDAQ_DETECT_NATIVE_DETECTOR_H_

#include <cstddef>
#include <vector>

#include "cfd/cfd.h"
#include "common/cancel.h"
#include "common/simd/simd.h"
#include "common/status.h"
#include "detect/violation.h"
#include "relational/encoded_relation.h"
#include "relational/relation.h"

namespace semandaq::common {
class ThreadPool;
}  // namespace semandaq::common

namespace semandaq::detect {

struct DetectorOptions {
  /// Route the scan through a dictionary-encoded columnar snapshot
  /// (relational::EncodedRelation): pattern constants compile to integer
  /// codes once per Detect, and grouping runs on packed code keys instead
  /// of hashing projected Rows. Off = the original row-hash scan, kept for
  /// A/B measurement and as the semantic reference.
  bool use_encoded = true;

  /// Worker lanes for the encoded scan.
  ///   1 (default)  the single-threaded scan, unchanged from before;
  ///   0            one lane per hardware thread;
  ///   >= 2         partition each CFD's LHS code-key space into that many
  ///                shards and scan them on a worker pool.
  ///
  /// The sharded result is *identical* to the serial one — same violations,
  /// same emission order — for every thread count (see docs/architecture.md,
  /// "Sharded detection"): a tuple's shard is a pure function of its LHS
  /// codes, never of thread timing. The planner may narrow the shard count
  /// on small relations (fork-join overhead would dominate) and caps it at
  /// shard_plan.h's kMaxShards (an oversized knob must not exhaust OS
  /// threads); the row path (use_encoded = false) ignores this knob
  /// entirely.
  size_t num_threads = 1;

  /// Instruction-set tier of the encoded scan's kernels (pattern match,
  /// liveness/NULL filtering, group-key packing — see docs/simd.md).
  /// kAuto (the default) resolves to the best tier the host supports,
  /// clamped by the SEMANDAQ_SIMD environment override; any explicit tier
  /// is clamped to what the host can run. Every tier produces byte-identical
  /// ViolationTables — this knob exists for A/B measurement and for forcing
  /// the scalar dispatch floor in tests. The row path ignores it.
  common::simd::Level simd_level = common::simd::Level::kAuto;

  /// Fill ViolationGroup::member_rhs with a decoded Value per group member.
  /// Consumers that only need tuple ids and exact vio accounting (the batch
  /// repair engine reads current cells itself) turn this off: the mega
  /// groups of low-cardinality LHS keys would otherwise cost one Value copy
  /// per member per Detect. member_partners is always populated when this
  /// is off, so ViolationTable totals are byte-identical either way.
  bool materialize_group_rhs = true;

  /// Cooperative cancellation (common/cancel.h): checked once per kernel
  /// block and per CFD group. A tripped token turns Detect into
  /// Status::Cancelled / Status::DeadlineExceeded with nothing published —
  /// detection writes only its local ViolationTable, so stopping is free.
  /// nullptr (the default) = not cancellable.
  common::CancelToken* cancel = nullptr;
};

/// In-process CFD violation detector: one scan per embedded-FD group with
/// hash partitioning on the LHS attributes.
///
/// Semantics are value-for-value identical to the SQL-based detector (the
/// cross-check is a test invariant):
///  * single-tuple: t matches a constant-RHS pattern's LHS and t[A] is
///    non-NULL and != the RHS constant (NULL cells are "unknown, not
///    wrong", mirroring SQL's three-valued `t.A <> c`);
///  * multi-tuple: tuples matching ANY variable-RHS row of the group, with
///    no NULL among their LHS values, grouped by the LHS projection; a group
///    violates when it carries >= 2 distinct non-NULL RHS values.
///
/// The encoded path (DetectorOptions::use_encoded, the default) produces a
/// ViolationTable with identical contents; multi-tuple groups are emitted in
/// deterministic first-touch order. With DetectorOptions::num_threads >= 2
/// the encoded scan shards the LHS code-key space over a worker pool and
/// merges per-shard results back into exactly that order.
class NativeDetector {
 public:
  /// `cfds` are resolved internally against rel's schema (copies; the input
  /// vector is untouched).
  NativeDetector(const relational::Relation* rel, std::vector<cfd::Cfd> cfds,
                 DetectorOptions options = {})
      : rel_(rel), cfds_(std::move(cfds)), options_(options) {}

  /// Attaches an externally owned, already-synced encoded snapshot of the
  /// relation so repeated Detect calls skip the encode pass (the warm-scan
  /// production pattern). Ignored when use_encoded is off; a stale snapshot
  /// is ignored too (a fresh local one is built instead). The snapshot is
  /// never written during Detect, which is what lets sharded workers share
  /// it without locks.
  void set_encoded(const relational::EncodedRelation* encoded) {
    encoded_ = encoded;
  }

  /// Attaches an externally owned worker pool reused across Detect calls
  /// (Semandaq keeps one per facade), so repeated sharded detections skip
  /// thread construction. The pool's lane count is independent of
  /// DetectorOptions::num_threads — the shard plan still decides the task
  /// count; a pool with fewer lanes just runs shards queued, with output
  /// unchanged. Without one, a sharded Detect builds a pool per call (the
  /// pre-reuse behavior); the cold encode pass also fans out over this pool
  /// when present.
  void set_thread_pool(common::ThreadPool* pool) { pool_ = pool; }

  /// Full-relation detection pass.
  common::Result<ViolationTable> Detect();

  /// The resolved CFDs in detector order (index space of SingleViolation).
  const std::vector<cfd::Cfd>& cfds() const { return cfds_; }

 private:
  common::Result<ViolationTable> DetectRows();
  common::Result<ViolationTable> DetectEncoded(
      const relational::EncodedRelation& enc);

  const relational::Relation* rel_;
  std::vector<cfd::Cfd> cfds_;
  DetectorOptions options_;
  const relational::EncodedRelation* encoded_ = nullptr;
  common::ThreadPool* pool_ = nullptr;  // borrowed; nullptr = per-call pool
};

}  // namespace semandaq::detect

#endif  // SEMANDAQ_DETECT_NATIVE_DETECTOR_H_
