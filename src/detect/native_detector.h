#ifndef SEMANDAQ_DETECT_NATIVE_DETECTOR_H_
#define SEMANDAQ_DETECT_NATIVE_DETECTOR_H_

#include <vector>

#include "cfd/cfd.h"
#include "common/status.h"
#include "detect/violation.h"
#include "relational/relation.h"

namespace semandaq::detect {

/// In-process CFD violation detector: one scan per embedded-FD group with
/// hash partitioning on the LHS attributes.
///
/// Semantics are value-for-value identical to the SQL-based detector (the
/// cross-check is a test invariant):
///  * single-tuple: t matches a constant-RHS pattern's LHS and t[A] is
///    non-NULL and != the RHS constant (NULL cells are "unknown, not
///    wrong", mirroring SQL's three-valued `t.A <> c`);
///  * multi-tuple: tuples matching ANY variable-RHS row of the group, with
///    no NULL among their LHS values, grouped by the LHS projection; a group
///    violates when it carries >= 2 distinct non-NULL RHS values.
class NativeDetector {
 public:
  /// `cfds` are resolved internally against rel's schema (copies; the input
  /// vector is untouched).
  NativeDetector(const relational::Relation* rel, std::vector<cfd::Cfd> cfds)
      : rel_(rel), cfds_(std::move(cfds)) {}

  /// Full-relation detection pass.
  common::Result<ViolationTable> Detect();

  /// The resolved CFDs in detector order (index space of SingleViolation).
  const std::vector<cfd::Cfd>& cfds() const { return cfds_; }

 private:
  const relational::Relation* rel_;
  std::vector<cfd::Cfd> cfds_;
};

}  // namespace semandaq::detect

#endif  // SEMANDAQ_DETECT_NATIVE_DETECTOR_H_
