#include "detect/shard_plan.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace semandaq::detect {

ShardPlan PlanShards(size_t num_threads, size_t live_tuples) {
  ShardPlan plan;
  if (num_threads == 1) return plan;  // the serial path, explicitly chosen
  const size_t lanes =
      std::min(common::ResolveThreadCount(num_threads), kMaxShards);
  const size_t by_size = std::max<size_t>(1, live_tuples / kMinTuplesPerShard);
  plan.num_shards = std::max<size_t>(1, std::min(lanes, by_size));
  return plan;
}

}  // namespace semandaq::detect
