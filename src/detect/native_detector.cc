#include "detect/native_detector.h"

#include <unordered_map>
#include <unordered_set>

namespace semandaq::detect {

using cfd::Cfd;
using cfd::EmbeddedFdGroup;
using cfd::PatternTuple;
using relational::Row;
using relational::RowEq;
using relational::RowHash;
using relational::TupleId;
using relational::Value;

common::Result<ViolationTable> NativeDetector::Detect() {
  SEMANDAQ_RETURN_IF_ERROR(cfd::ResolveAll(&cfds_, rel_->schema()));
  ViolationTable table;

  const std::vector<EmbeddedFdGroup> groups = cfd::GroupByEmbeddedFd(cfds_);
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    const EmbeddedFdGroup& g = groups[gi];
    // All members share the LHS column layout; take it from the first.
    const Cfd& first = cfds_[g.members.front().first];
    const std::vector<size_t>& lhs_cols = first.lhs_cols();
    const size_t rhs_col = first.rhs_col();

    struct GroupBucket {
      std::vector<TupleId> members;
      std::vector<Value> rhs;
      int first_cfd = -1;
      size_t distinct_nonnull = 0;
      std::unordered_set<Value, relational::ValueHash> seen_rhs;
    };
    std::unordered_map<Row, GroupBucket, RowHash, RowEq> buckets;

    rel_->ForEach([&](TupleId tid, const Row& row) {
      bool in_var_scope = false;
      int var_cfd = -1;
      for (const auto& [ci, pi] : g.members) {
        const PatternTuple& pt = cfds_[ci].tableau()[pi];
        bool lhs_match = true;
        for (size_t i = 0; i < lhs_cols.size(); ++i) {
          if (!pt.lhs[i].Matches(row[lhs_cols[i]])) {
            lhs_match = false;
            break;
          }
        }
        if (!lhs_match) continue;
        if (pt.is_constant_rhs()) {
          const Value& a = row[rhs_col];
          if (!a.is_null() && !(a == pt.rhs.constant())) {
            table.AddSingle(SingleViolation{tid, static_cast<int>(ci),
                                            static_cast<int>(pi)});
          }
        } else if (!in_var_scope) {
          in_var_scope = true;
          var_cfd = static_cast<int>(ci);
        }
      }
      if (!in_var_scope) return;
      // Multi-tuple scope: NULL LHS values cannot witness equality.
      Row key;
      key.reserve(lhs_cols.size());
      for (size_t c : lhs_cols) {
        if (row[c].is_null()) return;
        key.push_back(row[c]);
      }
      GroupBucket& b = buckets[std::move(key)];
      if (b.first_cfd < 0) b.first_cfd = var_cfd;
      b.members.push_back(tid);
      const Value& a = row[rhs_col];
      b.rhs.push_back(a);
      if (!a.is_null() && b.seen_rhs.insert(a).second) ++b.distinct_nonnull;
    });

    for (auto& [key, b] : buckets) {
      if (b.distinct_nonnull < 2) continue;
      ViolationGroup vg;
      vg.fd_group = static_cast<int>(gi);
      vg.cfd_index = b.first_cfd;
      vg.lhs_key = key;
      vg.members = std::move(b.members);
      vg.member_rhs = std::move(b.rhs);
      table.AddGroup(std::move(vg));
    }
  }
  return table;
}

}  // namespace semandaq::detect
