#include "detect/native_detector.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/simd/simd.h"
#include "common/thread_pool.h"
#include "detect/shard_plan.h"

namespace semandaq::detect {

using cfd::Cfd;
using cfd::EmbeddedFdGroup;
using cfd::PatternTuple;
using relational::Code;
using relational::CodeVecHash;
using relational::EncodedRelation;
using relational::kAbsentCode;
using relational::kNullCode;
using relational::PackCodes;
using relational::Row;
using relational::RowEq;
using relational::RowHash;
using relational::TupleId;
using relational::Value;

namespace simd = common::simd;

common::Result<ViolationTable> NativeDetector::Detect() {
  SEMANDAQ_RETURN_IF_ERROR(cfd::ResolveAll(&cfds_, rel_->schema()));
  if (!options_.use_encoded) return DetectRows();
  if (encoded_ != nullptr && &encoded_->relation() == rel_ &&
      encoded_->InSync()) {
    return DetectEncoded(*encoded_);
  }
  const EncodedRelation local(rel_, pool_, options_.cancel);
  return DetectEncoded(local);
}

namespace {

/// A pattern tuple compiled against the column dictionaries: constants
/// become codes, wildcards vanish (they constrain nothing in code space).
struct CompiledPattern {
  int ci = -1;
  int pi = -1;
  /// (LHS position, required code) for each constant LHS entry.
  std::vector<std::pair<uint32_t, Code>> lhs_consts;
  /// Required RHS code for constant-RHS rows; kAbsentCode when the constant
  /// never occurs in the column (every non-NULL RHS then disagrees).
  Code rhs_code = kAbsentCode;
};

/// One multi-tuple candidate group: the tuples sharing an LHS code key.
/// RHS codes are not duplicated here — the column itself holds them,
/// indexed by member tuple id.
struct CodeBucket {
  std::vector<TupleId> members;
  std::vector<Code> key;  // the LHS codes
  int first_cfd = -1;
  Code first_nonnull = kAbsentCode;
  bool two_distinct = false;

  void AddRhs(Code c) {
    if (c == kNullCode) return;
    if (first_nonnull == kAbsentCode) {
      first_nonnull = c;
    } else if (c != first_nonnull) {
      two_distinct = true;
    }
  }
};

/// Above this many slots the dense code-product group index would cost more
/// to allocate than it saves; fall back to hashing.
constexpr uint64_t kDenseGroupLimit = uint64_t{1} << 21;

constexpr uint32_t kNoBucket = UINT32_MAX;

/// Kernel block size: the scan runs the SIMD kernels over contiguous
/// tuple-id blocks of this many tuples, then emits per block in ascending
/// tid order — which is exactly the serial live-list order, so blocking is
/// invisible in the output (and shard stripes, being contiguous tid ranges,
/// chunk the same way). 4096 tuples = 16 KiB of codes per column per pass:
/// the working set of one block stays in L1/L2 across the mask passes.
constexpr size_t kScanBlock = 4096;
constexpr size_t kScanBlockWords = kScanBlock / 64;

/// At or below this many members a violating bucket counts RHS agreement
/// with CountEq32 over a gathered code array (linear passes over a tiny
/// dense block); above it, the freq[] histogram pass is cheaper. Both
/// produce identical counts.
constexpr size_t kCountEqGroupLimit = 64;

/// One embedded-FD group lowered for the encoded scan: tableau rows
/// compiled to codes, raw column pointers, the kernel table of the pass,
/// and the geometry of the dense slot index when the LHS is narrow enough
/// to afford one. Built once per group and shared read-only by the serial
/// and sharded scan bodies.
struct GroupScan {
  const EncodedRelation* enc = nullptr;
  const simd::Kernels* kn = nullptr;
  const uint8_t* live_bytes = nullptr;  // Relation::live_data()
  int gi = -1;
  size_t arity = 0;
  std::vector<size_t> lhs_cols;
  size_t rhs_col = 0;

  std::vector<CompiledPattern> const_rows;
  std::vector<CompiledPattern> var_rows;

  /// Raw column pointers (lhs_ptrs()[i][tid] is the code of LHS column i).
  std::vector<const Code*> lhs_ptr_storage;
  const Code* rhs_ptr = nullptr;
  const Code* const* lhs_ptrs() const { return lhs_ptr_storage.data(); }

  /// An all-wildcard variable row (the plain embedded FD) puts every tuple
  /// in multi-tuple scope; the per-tuple pattern masks are skipped then.
  bool var_always = false;
  int var_always_cfd = -1;

  /// Exactly one constant-RHS row constraining exactly one LHS column: the
  /// FilterEq32 fast path (emit matching tuple ids directly, no masks).
  bool single_const_filter = false;

  /// Decode member RHS values into ViolationGroup::member_rhs
  /// (DetectorOptions::materialize_group_rhs). Partner counts are computed
  /// on codes regardless.
  bool want_rhs = true;

  /// Dense slot-index geometry: codes are dense per column, so for one LHS
  /// column the code itself indexes a flat array, and for two the code
  /// *product* does whenever it fits; hashing is the fallback.
  uint64_t stride = 0;
  uint64_t dense_slots = 0;
  bool use_dense = false;

  /// Checked once per kernel block; a tripped token stops the scan early
  /// (the caller converts the latched token into a Status before any
  /// output escapes). nullptr = not cancellable.
  common::CancelToken* cancel = nullptr;

  uint64_t SlotOf(Code c0, Code c1) const {
    return arity == 1 ? c0 : static_cast<uint64_t>(c0) * stride + c1;
  }
};

/// Compiles one embedded-FD group; false when no tableau row is feasible
/// (the whole group then contributes nothing to the scan).
bool CompileGroup(const EncodedRelation& enc, const std::vector<Cfd>& cfds,
                  const EmbeddedFdGroup& g, size_t gi,
                  const simd::Kernels& kn, GroupScan* gs) {
  const Cfd& first = cfds[g.members.front().first];
  gs->enc = &enc;
  gs->kn = &kn;
  gs->live_bytes = enc.relation().live_data();
  gs->gi = static_cast<int>(gi);
  gs->lhs_cols = first.lhs_cols();
  gs->rhs_col = first.rhs_col();
  gs->arity = gs->lhs_cols.size();

  // Compile the tableau rows to codes, preserving member order. An LHS
  // constant absent from its column dictionary can never match a tuple,
  // so the whole row drops out of the scan upfront.
  for (const auto& [ci, pi] : g.members) {
    const PatternTuple& pt = cfds[ci].tableau()[pi];
    CompiledPattern cp;
    cp.ci = static_cast<int>(ci);
    cp.pi = static_cast<int>(pi);
    bool feasible = true;
    for (size_t i = 0; i < gs->arity; ++i) {
      if (pt.lhs[i].is_wildcard()) continue;
      // A NULL constant matches nothing (PatternValue::Matches rejects
      // NULL cells); it must not compile to kNullCode, which would match
      // exactly the NULL cells instead.
      const Code code = pt.lhs[i].constant().is_null()
                            ? kAbsentCode
                            : enc.dictionary(gs->lhs_cols[i])
                                  .Lookup(pt.lhs[i].constant());
      if (code == kAbsentCode) {
        feasible = false;
        break;
      }
      cp.lhs_consts.emplace_back(static_cast<uint32_t>(i), code);
    }
    if (!feasible) continue;
    if (pt.is_constant_rhs()) {
      cp.rhs_code = enc.dictionary(gs->rhs_col).Lookup(pt.rhs.constant());
      gs->const_rows.push_back(std::move(cp));
    } else {
      gs->var_rows.push_back(std::move(cp));
    }
  }
  if (gs->const_rows.empty() && gs->var_rows.empty()) return false;

  gs->lhs_ptr_storage.resize(gs->arity);
  for (size_t i = 0; i < gs->arity; ++i) {
    gs->lhs_ptr_storage[i] = enc.column(gs->lhs_cols[i]).data();
  }
  gs->rhs_ptr = enc.column(gs->rhs_col).data();

  gs->var_always = !gs->var_rows.empty() && gs->var_rows.front().lhs_consts.empty();
  gs->var_always_cfd = gs->var_always ? gs->var_rows.front().ci : -1;
  gs->single_const_filter =
      gs->const_rows.size() == 1 && gs->const_rows[0].lhs_consts.size() == 1;

  gs->stride = gs->arity == 2 ? enc.dictionary(gs->lhs_cols[1]).size() + 1 : 0;
  if (gs->arity == 1) {
    gs->dense_slots = enc.dictionary(gs->lhs_cols[0]).size() + 1;
  } else if (gs->arity == 2) {
    gs->dense_slots =
        (enc.dictionary(gs->lhs_cols[0]).size() + 1) * gs->stride;
  }
  gs->use_dense = gs->dense_slots > 0 && gs->dense_slots <= kDenseGroupLimit;
  return true;
}

/// Reusable per-lane mask/key scratch for the blocked kernel scan. One
/// instance per scan body (serial) or per worker lane (sharded); nothing in
/// it outlives a block.
struct ScanScratch {
  std::vector<uint64_t> live_bits;    // live-tuple bitmap of the block
  std::vector<uint64_t> elig;         // live && every LHS code non-NULL
  std::vector<uint64_t> scope;        // elig && some variable row matches
  std::vector<uint64_t> single_rows;  // per-const-row violation masks
  std::vector<uint64_t> var_rows;     // per-var-row match masks
  std::vector<uint64_t> any;          // OR of single_rows
  std::vector<uint64_t> packed;       // packed 64-bit group keys
  std::vector<uint32_t> hits;         // FilterEq32 emission buffer
  std::vector<const Code*> colptrs;   // kernel column-pointer arguments
  std::vector<Code> consts;           // kernel constant arguments

  void Prepare(const GroupScan& gs) {
    live_bits.resize(kScanBlockWords);
    elig.resize(kScanBlockWords);
    scope.resize(kScanBlockWords);
    any.resize(kScanBlockWords);
    single_rows.resize(gs.const_rows.size() * kScanBlockWords);
    var_rows.resize(gs.var_rows.size() * kScanBlockWords);
    packed.resize(kScanBlock);
    hits.resize(kScanBlock);
    const size_t max_args = std::max<size_t>(gs.arity, 1);
    colptrs.resize(max_args);
    consts.resize(max_args);
  }
};

/// Scans the contiguous tuple block [lo, hi) through the group's kernel
/// table and emits, in exactly the serial per-tuple order:
///  * on_single(tid, ci, pi) for every single-tuple violation (ascending
///    tid; tableau-row order within a tid);
///  * on_group(tid, var_cfd, packed_key) for every live tuple in
///    multi-tuple scope whose LHS key is NULL-free (ascending tid).
///    packed_key is (c0 << 32) | c1 for arity <= 2 (c1 = 0 when arity is
///    1, matching PackCodes with kNullCode) and unspecified for wider
///    keys — those re-read the codes, which the eligibility mask already
///    proved non-NULL.
template <typename SingleFn, typename GroupFn>
void ScanBlock(const GroupScan& gs, TupleId lo, TupleId hi, ScanScratch* sc,
               const SingleFn& on_single, const GroupFn& on_group) {
  const simd::Kernels& kn = *gs.kn;
  const size_t n = static_cast<size_t>(hi - lo);
  const size_t words = simd::MaskWords(n);
  const Code* const* lhs_ptrs = gs.lhs_ptrs();
  const uint8_t* live = gs.live_bytes + lo;

  // ---- Single-tuple violations (constant-RHS rows).
  if (gs.single_const_filter) {
    // One row, one LHS constant: emit candidate tuple ids directly and
    // resolve liveness + RHS disagreement per hit — cheaper than three
    // mask passes when the constant is selective (the common case).
    const CompiledPattern& cp = gs.const_rows[0];
    const Code* col = lhs_ptrs[cp.lhs_consts[0].first];
    const size_t cnt =
        kn.FilterEq32(col + lo, n, cp.lhs_consts[0].second,
                      static_cast<uint32_t>(lo), sc->hits.data());
    for (size_t h = 0; h < cnt; ++h) {
      const TupleId tid = static_cast<TupleId>(sc->hits[h]);
      if (gs.live_bytes[tid] == 0) continue;
      const Code a = gs.rhs_ptr[tid];
      if (a != kNullCode && a != cp.rhs_code) on_single(tid, cp.ci, cp.pi);
    }
  } else if (!gs.const_rows.empty()) {
    // Every constant row shares the same precondition — the tuple is live
    // and its RHS is non-NULL ("unknown, not wrong") — so that seed mask is
    // fused once per block; per row only the LHS equalities and the
    // disagreement with the row's own RHS constant remain.
    const Code* rhs_block = gs.rhs_ptr + lo;
    const size_t live_nonnull = kn.MaskLive(live, &rhs_block, 1, kNullCode,
                                            n, sc->live_bits.data());
    if (live_nonnull != 0) {
      for (size_t r = 0; r < gs.const_rows.size(); ++r) {
        const CompiledPattern& cp = gs.const_rows[r];
        uint64_t* m = sc->single_rows.data() + r * kScanBlockWords;
        std::memcpy(m, sc->live_bits.data(), words * sizeof(uint64_t));
        if (!cp.lhs_consts.empty()) {
          for (size_t j = 0; j < cp.lhs_consts.size(); ++j) {
            sc->colptrs[j] = lhs_ptrs[cp.lhs_consts[j].first] + lo;
            sc->consts[j] = cp.lhs_consts[j].second;
          }
          kn.FilterEqMulti32(sc->colptrs.data(), sc->consts.data(),
                             cp.lhs_consts.size(), n, m);
        }
        kn.MaskNeAnd32(gs.rhs_ptr + lo, n, cp.rhs_code, m);
      }
    } else {
      std::memset(sc->single_rows.data(), 0,
                  gs.const_rows.size() * kScanBlockWords * sizeof(uint64_t));
    }
    if (gs.const_rows.size() == 1) {
      simd::ForEachSetBit(sc->single_rows.data(), words, [&](size_t i) {
        on_single(lo + static_cast<TupleId>(i), gs.const_rows[0].ci,
                  gs.const_rows[0].pi);
      });
    } else {
      for (size_t w = 0; w < words; ++w) {
        uint64_t acc = 0;
        for (size_t r = 0; r < gs.const_rows.size(); ++r) {
          acc |= sc->single_rows[r * kScanBlockWords + w];
        }
        sc->any[w] = acc;
      }
      simd::ForEachSetBit(sc->any.data(), words, [&](size_t i) {
        for (size_t r = 0; r < gs.const_rows.size(); ++r) {
          const uint64_t* m = sc->single_rows.data() + r * kScanBlockWords;
          if ((m[i / 64] >> (i % 64)) & 1) {
            on_single(lo + static_cast<TupleId>(i), gs.const_rows[r].ci,
                      gs.const_rows[r].pi);
          }
        }
      });
    }
  }

  // ---- Multi-tuple scope (variable-RHS rows).
  if (gs.var_rows.empty()) return;
  for (size_t i = 0; i < gs.arity; ++i) sc->colptrs[i] = lhs_ptrs[i] + lo;
  const size_t eligible = kn.MaskLive(live, sc->colptrs.data(), gs.arity,
                                      kNullCode, n, sc->elig.data());
  if (eligible == 0) return;

  const uint64_t* scope = sc->elig.data();
  if (!gs.var_always) {
    for (size_t r = 0; r < gs.var_rows.size(); ++r) {
      const CompiledPattern& vr = gs.var_rows[r];
      uint64_t* m = sc->var_rows.data() + r * kScanBlockWords;
      std::memcpy(m, sc->elig.data(), words * sizeof(uint64_t));
      for (size_t j = 0; j < vr.lhs_consts.size(); ++j) {
        sc->colptrs[j] = lhs_ptrs[vr.lhs_consts[j].first] + lo;
        sc->consts[j] = vr.lhs_consts[j].second;
      }
      kn.FilterEqMulti32(sc->colptrs.data(), sc->consts.data(),
                         vr.lhs_consts.size(), n, m);
    }
    for (size_t w = 0; w < words; ++w) {
      uint64_t acc = 0;
      for (size_t r = 0; r < gs.var_rows.size(); ++r) {
        acc |= sc->var_rows[r * kScanBlockWords + w];
      }
      sc->scope[w] = acc;
    }
    scope = sc->scope.data();
  }

  if (gs.arity <= 2) {
    kn.PackKeys2x32(lhs_ptrs[0] + lo,
                    gs.arity == 2 ? lhs_ptrs[1] + lo : nullptr, n,
                    sc->packed.data());
  }

  simd::ForEachSetBit(scope, words, [&](size_t i) {
    const TupleId tid = lo + static_cast<TupleId>(i);
    int var_cfd = gs.var_always_cfd;
    if (!gs.var_always) {
      // First matching variable row, in tableau order — the serial scan's
      // VarScopeOf choice, which decides a fresh bucket's first_cfd.
      for (size_t r = 0; r < gs.var_rows.size(); ++r) {
        const uint64_t* m = sc->var_rows.data() + r * kScanBlockWords;
        if ((m[i / 64] >> (i % 64)) & 1) {
          var_cfd = gs.var_rows[r].ci;
          break;
        }
      }
    }
    on_group(tid, var_cfd, gs.arity <= 2 ? sc->packed[i] : 0);
  });
}

/// Runs ScanBlock over [lo, hi) in kScanBlock chunks. A tripped cancel
/// token abandons the remaining blocks; the scan's output is then
/// incomplete, but it only ever fills thread-local scratch — the caller
/// checks the token again before anything is published.
template <typename SingleFn, typename GroupFn>
void ScanRange(const GroupScan& gs, TupleId lo, TupleId hi, ScanScratch* sc,
               const SingleFn& on_single, const GroupFn& on_group) {
  for (TupleId b = lo; b < hi; b += static_cast<TupleId>(kScanBlock)) {
    if (gs.cancel != nullptr && !gs.cancel->Check().ok()) return;
    const TupleId e = std::min<TupleId>(hi, b + kScanBlock);
    ScanBlock(gs, b, e, sc, on_single, on_group);
  }
}

/// Materializes one violating bucket as a ViolationGroup. Partner counts on
/// codes match exact Value equality because NULLs share kNullCode. Small
/// buckets count agreement with CountEq32 over `rhs_scratch` (a gathered
/// dense code block); larger ones use `freq`, a caller-owned scratch array
/// dense over the RHS dictionary (plus the NULL slot), zeroed on entry and
/// re-zeroed before returning.
ViolationGroup MakeGroup(const GroupScan& gs, CodeBucket* b,
                         std::vector<int64_t>* freq,
                         std::vector<Code>* rhs_scratch) {
  const EncodedRelation& enc = *gs.enc;
  ViolationGroup vg;
  vg.fd_group = gs.gi;
  vg.cfd_index = b->first_cfd;
  vg.lhs_key.reserve(gs.arity);
  for (size_t i = 0; i < gs.arity; ++i) {
    vg.lhs_key.push_back(enc.Decode(gs.lhs_cols[i], b->key[i]));
  }
  const int64_t n = static_cast<int64_t>(b->members.size());
  vg.member_partners.reserve(b->members.size());
  if (gs.want_rhs) vg.member_rhs.reserve(b->members.size());
  if (b->members.size() <= kCountEqGroupLimit) {
    rhs_scratch->clear();
    for (TupleId m : b->members) rhs_scratch->push_back(gs.rhs_ptr[m]);
    for (const Code c : *rhs_scratch) {
      vg.member_partners.push_back(
          n - static_cast<int64_t>(gs.kn->CountEq32(
                  rhs_scratch->data(), rhs_scratch->size(), c)));
      if (gs.want_rhs) vg.member_rhs.push_back(enc.Decode(gs.rhs_col, c));
    }
  } else {
    for (TupleId m : b->members) ++(*freq)[gs.rhs_ptr[m]];
    for (TupleId m : b->members) {
      const Code c = gs.rhs_ptr[m];
      vg.member_partners.push_back(n - (*freq)[c]);
      if (gs.want_rhs) vg.member_rhs.push_back(enc.Decode(gs.rhs_col, c));
    }
    for (TupleId m : b->members) (*freq)[gs.rhs_ptr[m]] = 0;
  }
  vg.members = std::move(b->members);
  return vg;
}

/// The single-threaded scan body (the semantic reference for the sharded
/// path): kernel blocks over [0, IdBound), buckets in first-touch order.
void ScanGroupSerial(const GroupScan& gs, ViolationTable* table) {
  const EncodedRelation& enc = *gs.enc;
  const size_t arity = gs.arity;
  const Code* const* lhs_ptrs = gs.lhs_ptrs();

  std::vector<CodeBucket> buckets;
  std::vector<uint32_t> dense_index;
  if (gs.use_dense) dense_index.assign(gs.dense_slots, kNoBucket);
  std::unordered_map<uint64_t, uint32_t> narrow_index;
  std::unordered_map<std::vector<Code>, uint32_t, CodeVecHash> wide_index;
  std::vector<Code> scratch_key(arity);
  ScanScratch sc;
  sc.Prepare(gs);

  ScanRange(
      gs, 0, enc.IdBound(), &sc,
      [&](TupleId tid, int ci, int pi) {
        table->AddSingle(SingleViolation{tid, ci, pi});
      },
      [&](TupleId tid, int var_cfd, uint64_t packed) {
        uint32_t bi;
        if (arity <= 2) {
          const Code c0 = static_cast<Code>(packed >> 32);
          const Code c1 = static_cast<Code>(packed);
          if (gs.use_dense) {
            uint32_t& entry = dense_index[gs.SlotOf(c0, c1)];
            if (entry == kNoBucket) {
              entry = static_cast<uint32_t>(buckets.size());
              buckets.emplace_back();
            }
            bi = entry;
          } else {
            auto [it, fresh] = narrow_index.emplace(
                packed, static_cast<uint32_t>(buckets.size()));
            if (fresh) buckets.emplace_back();
            bi = it->second;
          }
          scratch_key[0] = c0;
          if (arity == 2) scratch_key[1] = c1;
        } else {
          // Codes are non-NULL here: the eligibility mask proved it.
          for (size_t i = 0; i < arity; ++i) scratch_key[i] = lhs_ptrs[i][tid];
          auto [it, fresh] = wide_index.emplace(
              scratch_key, static_cast<uint32_t>(buckets.size()));
          if (fresh) buckets.emplace_back();
          bi = it->second;
        }
        CodeBucket& b = buckets[bi];
        if (b.first_cfd < 0) {
          b.first_cfd = var_cfd;
          b.key = scratch_key;
        }
        b.members.push_back(tid);
        b.AddRhs(gs.rhs_ptr[tid]);
      });

  std::vector<int64_t> freq(enc.dictionary(gs.rhs_col).size() + 1, 0);
  std::vector<Code> rhs_scratch;
  for (CodeBucket& b : buckets) {
    if (!b.two_distinct) continue;
    table->AddGroup(MakeGroup(gs, &b, &freq, &rhs_scratch));
  }
}

/// A tuple routed to a shard during the partition phase. The LHS codes are
/// not buffered — the build phase re-reads them from the encoded columns,
/// which are already in cache-friendly flat arrays.
struct ShardEntry {
  TupleId tid;
  int var_cfd;
};

/// The sharded scan body. Two fork-join phases over `plan.num_shards`
/// lanes, then a merge on the calling thread:
///
///   Phase A (partition): the live-tuple list is cut into contiguous
///   stripes, one per lane; each stripe becomes the contiguous tuple-id
///   range [live[begin], live[end]) and is scanned in kernel blocks like
///   the serial body. Each lane collects its single-tuple violations
///   (stripe-local, in tuple order) and routes every in-scope tuple to the
///   shard owning its LHS code key (a pure function of the key — see
///   ShardPlan).
///
///   Phase B (build): lane w builds the buckets of shard w, consuming the
///   routed entries stripe by stripe so members accumulate in ascending
///   tuple order, then materializes that shard's violating groups. The
///   dense slot index is one shared array — shards own disjoint slot
///   ranges, so concurrent writes never alias.
///
///   Merge: singles concatenate in stripe order (= tuple order, exactly
///   the serial emission order). Groups sort by first member tuple id —
///   the serial path emits buckets in first-touch order, and a bucket's
///   first member IS its first toucher, so this reproduces the serial
///   order exactly. The result is byte-identical to ScanGroupSerial for
///   every shard count AND every kernel tier: determinism is structural,
///   not best-effort.
void ScanGroupSharded(const GroupScan& gs, const std::vector<TupleId>& live,
                      const ShardPlan& plan, common::ThreadPool* pool,
                      ViolationTable* table) {
  const EncodedRelation& enc = *gs.enc;
  const size_t arity = gs.arity;
  const size_t num_shards = plan.num_shards;

  std::vector<std::vector<SingleViolation>> stripe_singles(num_shards);
  // routed[stripe][shard]: entries found by `stripe` owned by `shard`.
  std::vector<std::vector<std::vector<ShardEntry>>> routed(
      num_shards, std::vector<std::vector<ShardEntry>>(num_shards));
  std::vector<uint32_t> dense_index;
  if (gs.use_dense) dense_index.assign(gs.dense_slots, kNoBucket);

  pool->Run(num_shards, [&](size_t s) {
    const size_t begin = live.size() * s / num_shards;
    const size_t end = live.size() * (s + 1) / num_shards;
    if (begin == end) return;
    // The stripe's live tuples occupy the contiguous id range
    // [live[begin], live[end]); dead ids inside it are masked out by the
    // kernels, so scanning the range visits exactly the stripe's tuples.
    const TupleId lo = live[begin];
    const TupleId hi = end == live.size() ? enc.IdBound() : live[end];
    const Code* const* lhs_ptrs = gs.lhs_ptrs();
    std::vector<SingleViolation>& singles = stripe_singles[s];
    std::vector<std::vector<ShardEntry>>& out = routed[s];
    std::vector<Code> key(arity);
    ScanScratch sc;
    sc.Prepare(gs);
    ScanRange(
        gs, lo, hi, &sc,
        [&](TupleId tid, int ci, int pi) {
          singles.push_back(SingleViolation{tid, ci, pi});
        },
        [&](TupleId tid, int var_cfd, uint64_t packed) {
          size_t shard;
          if (gs.use_dense) {
            shard = plan.ShardOfSlot(
                gs.SlotOf(static_cast<Code>(packed >> 32),
                          static_cast<Code>(packed)),
                gs.dense_slots);
          } else if (arity <= 2) {
            shard = plan.ShardOfHash(packed);
          } else {
            for (size_t i = 0; i < arity; ++i) key[i] = lhs_ptrs[i][tid];
            shard = plan.ShardOfHash(CodeVecHash{}(key));
          }
          out[shard].push_back(ShardEntry{tid, var_cfd});
        });
  });

  std::vector<std::vector<ViolationGroup>> shard_groups(num_shards);
  pool->Run(num_shards, [&](size_t w) {
    const Code* const* lhs_ptrs = gs.lhs_ptrs();
    std::vector<CodeBucket> buckets;
    std::unordered_map<uint64_t, uint32_t> narrow_index;
    std::unordered_map<std::vector<Code>, uint32_t, CodeVecHash> wide_index;
    std::vector<Code> key(arity);
    for (size_t s = 0; s < num_shards; ++s) {
      for (const ShardEntry& e : routed[s][w]) {
        for (size_t i = 0; i < arity; ++i) key[i] = lhs_ptrs[i][e.tid];
        uint32_t bi;
        if (gs.use_dense) {
          uint32_t& entry =
              dense_index[gs.SlotOf(key[0], arity == 2 ? key[1] : 0)];
          if (entry == kNoBucket) {
            entry = static_cast<uint32_t>(buckets.size());
            buckets.emplace_back();
          }
          bi = entry;
        } else if (arity <= 2) {
          auto [it, fresh] = narrow_index.emplace(
              PackCodes(key[0], arity == 2 ? key[1] : kNullCode),
              static_cast<uint32_t>(buckets.size()));
          if (fresh) buckets.emplace_back();
          bi = it->second;
        } else {
          auto [it, fresh] = wide_index.emplace(
              key, static_cast<uint32_t>(buckets.size()));
          if (fresh) buckets.emplace_back();
          bi = it->second;
        }
        CodeBucket& b = buckets[bi];
        if (b.first_cfd < 0) {
          b.first_cfd = e.var_cfd;
          b.key = key;
        }
        b.members.push_back(e.tid);
        b.AddRhs(gs.rhs_ptr[e.tid]);
      }
    }
    std::vector<int64_t> freq(enc.dictionary(gs.rhs_col).size() + 1, 0);
    std::vector<Code> rhs_scratch;
    for (CodeBucket& b : buckets) {
      if (!b.two_distinct) continue;
      shard_groups[w].push_back(MakeGroup(gs, &b, &freq, &rhs_scratch));
    }
  });

  for (const std::vector<SingleViolation>& singles : stripe_singles) {
    for (const SingleViolation& sv : singles) table->AddSingle(sv);
  }
  std::vector<ViolationGroup> merged;
  for (std::vector<ViolationGroup>& sg : shard_groups) {
    for (ViolationGroup& vg : sg) merged.push_back(std::move(vg));
  }
  // First members are distinct across buckets of one group (a tuple joins
  // at most one bucket), so this order is total.
  std::sort(merged.begin(), merged.end(),
            [](const ViolationGroup& a, const ViolationGroup& b) {
              return a.members.front() < b.members.front();
            });
  for (ViolationGroup& vg : merged) table->AddGroup(std::move(vg));
}

}  // namespace

common::Result<ViolationTable> NativeDetector::DetectEncoded(
    const EncodedRelation& enc) {
  ViolationTable table;
  // The kernel id-emission space is uint32 (simd::Kernels::FilterEq32
  // takes a uint32 base). TupleId is int64 by design, but an encoded
  // in-memory relation past 2^32 ids is outside this detector's envelope
  // (codes are uint32 too); fail loudly instead of wrapping tuple ids.
  if (static_cast<uint64_t>(enc.IdBound()) > UINT32_MAX) {
    return common::Status::InvalidArgument(
        "encoded detection supports at most 2^32 tuple ids; relation '" +
        rel_->name() + "' has id bound " + std::to_string(enc.IdBound()));
  }
  const simd::Kernels& kn = simd::KernelsFor(options_.simd_level);

  // One shard plan for the whole CFD batch. The worker pool is the
  // facade-owned one when attached (reused across Detect calls); only a
  // bare detector still builds a pool per call. The live-id list is only
  // materialized when the plan actually shards (stripe boundaries need
  // it); the serial kernels read the liveness bytes directly.
  const ShardPlan plan = PlanShards(options_.num_threads, rel_->size());
  std::vector<TupleId> live;
  if (plan.sharded()) live = rel_->LiveIds();
  std::optional<common::ThreadPool> local_pool;
  common::ThreadPool* pool = pool_;
  if (plan.sharded() && pool == nullptr) {
    local_pool.emplace(plan.num_shards);
    pool = &*local_pool;
  }

  const std::vector<EmbeddedFdGroup> groups = cfd::GroupByEmbeddedFd(cfds_);
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    SEMANDAQ_RETURN_IF_CANCELLED(options_.cancel);
    GroupScan gs;
    if (!CompileGroup(enc, cfds_, groups[gi], gi, kn, &gs)) continue;
    gs.want_rhs = options_.materialize_group_rhs;
    gs.cancel = options_.cancel;
    if (plan.sharded()) {
      ScanGroupSharded(gs, live, plan, pool, &table);
    } else {
      ScanGroupSerial(gs, &table);
    }
  }
  // A cancel that tripped inside the last group's kernel blocks left the
  // table truncated; surface it rather than returning partial output.
  SEMANDAQ_RETURN_IF_CANCELLED(options_.cancel);
  return table;
}

common::Result<ViolationTable> NativeDetector::DetectRows() {
  ViolationTable table;

  const std::vector<EmbeddedFdGroup> groups = cfd::GroupByEmbeddedFd(cfds_);
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    SEMANDAQ_RETURN_IF_CANCELLED(options_.cancel);
    const EmbeddedFdGroup& g = groups[gi];
    // All members share the LHS column layout; take it from the first.
    const Cfd& first = cfds_[g.members.front().first];
    const std::vector<size_t>& lhs_cols = first.lhs_cols();
    const size_t rhs_col = first.rhs_col();

    struct GroupBucket {
      std::vector<TupleId> members;
      std::vector<Value> rhs;
      int first_cfd = -1;
      size_t distinct_nonnull = 0;
      std::unordered_set<Value, relational::ValueHash> seen_rhs;
    };
    std::unordered_map<Row, GroupBucket, RowHash, RowEq> buckets;

    rel_->ForEach([&](TupleId tid, const Row& row) {
      bool in_var_scope = false;
      int var_cfd = -1;
      for (const auto& [ci, pi] : g.members) {
        const PatternTuple& pt = cfds_[ci].tableau()[pi];
        bool lhs_match = true;
        for (size_t i = 0; i < lhs_cols.size(); ++i) {
          if (!pt.lhs[i].Matches(row[lhs_cols[i]])) {
            lhs_match = false;
            break;
          }
        }
        if (!lhs_match) continue;
        if (pt.is_constant_rhs()) {
          const Value& a = row[rhs_col];
          if (!a.is_null() && !(a == pt.rhs.constant())) {
            table.AddSingle(SingleViolation{tid, static_cast<int>(ci),
                                            static_cast<int>(pi)});
          }
        } else if (!in_var_scope) {
          in_var_scope = true;
          var_cfd = static_cast<int>(ci);
        }
      }
      if (!in_var_scope) return;
      // Multi-tuple scope: NULL LHS values cannot witness equality.
      Row key;
      key.reserve(lhs_cols.size());
      for (size_t c : lhs_cols) {
        if (row[c].is_null()) return;
        key.push_back(row[c]);
      }
      GroupBucket& b = buckets[std::move(key)];
      if (b.first_cfd < 0) b.first_cfd = var_cfd;
      b.members.push_back(tid);
      const Value& a = row[rhs_col];
      b.rhs.push_back(a);
      if (!a.is_null() && b.seen_rhs.insert(a).second) ++b.distinct_nonnull;
    });

    for (auto& [key, b] : buckets) {
      if (b.distinct_nonnull < 2) continue;
      ViolationGroup vg;
      vg.fd_group = static_cast<int>(gi);
      vg.cfd_index = b.first_cfd;
      vg.lhs_key = key;
      vg.members = std::move(b.members);
      if (options_.materialize_group_rhs) {
        vg.member_rhs = std::move(b.rhs);
      } else {
        // Partner counts up front (the same exact-equality math AddGroup
        // would derive from member_rhs), so the table's vio totals are
        // identical with the member values dropped.
        const int64_t n = static_cast<int64_t>(b.rhs.size());
        std::unordered_map<Value, int64_t, relational::ValueHash> freq;
        freq.reserve(b.rhs.size());
        for (const Value& v : b.rhs) ++freq[v];
        vg.member_partners.reserve(b.rhs.size());
        for (const Value& v : b.rhs) vg.member_partners.push_back(n - freq[v]);
      }
      table.AddGroup(std::move(vg));
    }
  }
  return table;
}

}  // namespace semandaq::detect
