#include "detect/native_detector.h"

#include <memory>
#include <unordered_map>
#include <unordered_set>

namespace semandaq::detect {

using cfd::Cfd;
using cfd::EmbeddedFdGroup;
using cfd::PatternTuple;
using relational::Code;
using relational::CodeVecHash;
using relational::EncodedRelation;
using relational::kAbsentCode;
using relational::kNullCode;
using relational::PackCodes;
using relational::Row;
using relational::RowEq;
using relational::RowHash;
using relational::TupleId;
using relational::Value;

common::Result<ViolationTable> NativeDetector::Detect() {
  SEMANDAQ_RETURN_IF_ERROR(cfd::ResolveAll(&cfds_, rel_->schema()));
  if (!options_.use_encoded) return DetectRows();
  if (encoded_ != nullptr && &encoded_->relation() == rel_ &&
      encoded_->InSync()) {
    return DetectEncoded(*encoded_);
  }
  const EncodedRelation local(rel_);
  return DetectEncoded(local);
}

namespace {

/// A pattern tuple compiled against the column dictionaries: constants
/// become codes, wildcards vanish (they constrain nothing in code space).
struct CompiledPattern {
  int ci = -1;
  int pi = -1;
  /// (LHS position, required code) for each constant LHS entry.
  std::vector<std::pair<uint32_t, Code>> lhs_consts;
  /// Required RHS code for constant-RHS rows; kAbsentCode when the constant
  /// never occurs in the column (every non-NULL RHS then disagrees).
  Code rhs_code = kAbsentCode;

  bool MatchesLhs(const Code* const* lhs_cols, TupleId tid) const {
    for (const auto& [pos, code] : lhs_consts) {
      if (lhs_cols[pos][tid] != code) return false;
    }
    return true;
  }
};

/// One multi-tuple candidate group: the tuples sharing an LHS code key.
/// RHS codes are not duplicated here — the column itself holds them,
/// indexed by member tuple id.
struct CodeBucket {
  std::vector<TupleId> members;
  std::vector<Code> key;  // the LHS codes
  int first_cfd = -1;
  Code first_nonnull = kAbsentCode;
  bool two_distinct = false;

  void AddRhs(Code c) {
    if (c == kNullCode) return;
    if (first_nonnull == kAbsentCode) {
      first_nonnull = c;
    } else if (c != first_nonnull) {
      two_distinct = true;
    }
  }
};

/// Above this many slots the dense code-product group index would cost more
/// to allocate than it saves; fall back to hashing.
constexpr uint64_t kDenseGroupLimit = uint64_t{1} << 21;

}  // namespace

common::Result<ViolationTable> NativeDetector::DetectEncoded(
    const EncodedRelation& enc) {
  ViolationTable table;
  const std::vector<TupleId> live = rel_->LiveIds();

  const std::vector<EmbeddedFdGroup> groups = cfd::GroupByEmbeddedFd(cfds_);
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    const EmbeddedFdGroup& g = groups[gi];
    const Cfd& first = cfds_[g.members.front().first];
    const std::vector<size_t>& lhs_cols = first.lhs_cols();
    const size_t rhs_col = first.rhs_col();
    const size_t arity = lhs_cols.size();

    // Compile the tableau rows to codes, preserving member order. An LHS
    // constant absent from its column dictionary can never match a tuple,
    // so the whole row drops out of the scan upfront.
    std::vector<CompiledPattern> const_rows;
    std::vector<CompiledPattern> var_rows;
    for (const auto& [ci, pi] : g.members) {
      const PatternTuple& pt = cfds_[ci].tableau()[pi];
      CompiledPattern cp;
      cp.ci = static_cast<int>(ci);
      cp.pi = static_cast<int>(pi);
      bool feasible = true;
      for (size_t i = 0; i < arity; ++i) {
        if (pt.lhs[i].is_wildcard()) continue;
        // A NULL constant matches nothing (PatternValue::Matches rejects
        // NULL cells); it must not compile to kNullCode, which would match
        // exactly the NULL cells instead.
        const Code code = pt.lhs[i].constant().is_null()
                              ? kAbsentCode
                              : enc.dictionary(lhs_cols[i]).Lookup(
                                    pt.lhs[i].constant());
        if (code == kAbsentCode) {
          feasible = false;
          break;
        }
        cp.lhs_consts.emplace_back(static_cast<uint32_t>(i), code);
      }
      if (!feasible) continue;
      if (pt.is_constant_rhs()) {
        cp.rhs_code = enc.dictionary(rhs_col).Lookup(pt.rhs.constant());
        const_rows.push_back(std::move(cp));
      } else {
        var_rows.push_back(std::move(cp));
      }
    }
    if (const_rows.empty() && var_rows.empty()) continue;

    // Raw column pointers for the scan.
    std::vector<const Code*> lhs_ptr_storage(arity);
    for (size_t i = 0; i < arity; ++i) {
      lhs_ptr_storage[i] = enc.column(lhs_cols[i]).data();
    }
    const Code* const* lhs_ptrs = lhs_ptr_storage.data();
    const Code* rhs_ptr = enc.column(rhs_col).data();

    // An all-wildcard variable row (the plain embedded FD) puts every tuple
    // in multi-tuple scope; skip the per-tuple pattern loop then.
    const bool var_always =
        !var_rows.empty() && var_rows.front().lhs_consts.empty();
    const int var_always_cfd = var_always ? var_rows.front().ci : -1;

    // Buckets live in a vector (first-touch order). The key->bucket index
    // picks the cheapest representation: codes are dense per column, so for
    // one LHS column the code itself indexes a flat array, and for two the
    // code *product* does whenever it fits; hashing is the fallback (packed
    // uint64 for pairs, flat code vector beyond).
    std::vector<CodeBucket> buckets;
    const uint64_t stride =
        arity == 2 ? enc.dictionary(lhs_cols[1]).size() + 1 : 0;
    uint64_t dense_slots = 0;
    if (arity == 1) {
      dense_slots = enc.dictionary(lhs_cols[0]).size() + 1;
    } else if (arity == 2) {
      dense_slots = (enc.dictionary(lhs_cols[0]).size() + 1) * stride;
    }
    const bool use_dense = dense_slots > 0 && dense_slots <= kDenseGroupLimit;
    constexpr uint32_t kNoBucket = UINT32_MAX;
    std::vector<uint32_t> dense_index;
    if (use_dense) dense_index.assign(dense_slots, kNoBucket);
    std::unordered_map<uint64_t, uint32_t> narrow_index;
    std::unordered_map<std::vector<Code>, uint32_t, CodeVecHash> wide_index;
    std::vector<Code> scratch_key(arity);

    for (const TupleId tid : live) {
      for (const CompiledPattern& cp : const_rows) {
        if (!cp.MatchesLhs(lhs_ptrs, tid)) continue;
        const Code a = rhs_ptr[tid];
        if (a != kNullCode && a != cp.rhs_code) {
          table.AddSingle(SingleViolation{tid, cp.ci, cp.pi});
        }
      }
      int var_cfd = var_always_cfd;
      if (!var_always) {
        for (const CompiledPattern& cp : var_rows) {
          if (cp.MatchesLhs(lhs_ptrs, tid)) {
            var_cfd = cp.ci;
            break;
          }
        }
        if (var_cfd < 0) continue;
      }
      // Multi-tuple scope: NULL LHS values cannot witness equality.
      uint32_t bi;
      if (arity <= 2) {
        const Code c0 = lhs_ptrs[0][tid];
        if (c0 == kNullCode) continue;
        const Code c1 = arity == 2 ? lhs_ptrs[1][tid] : kNullCode;
        if (arity == 2 && c1 == kNullCode) continue;
        if (use_dense) {
          const uint64_t slot =
              arity == 1 ? c0 : static_cast<uint64_t>(c0) * stride + c1;
          uint32_t& entry = dense_index[slot];
          if (entry == kNoBucket) {
            entry = static_cast<uint32_t>(buckets.size());
            buckets.emplace_back();
          }
          bi = entry;
        } else {
          auto [it, fresh] = narrow_index.emplace(
              PackCodes(c0, c1), static_cast<uint32_t>(buckets.size()));
          if (fresh) buckets.emplace_back();
          bi = it->second;
        }
        scratch_key[0] = c0;
        if (arity == 2) scratch_key[1] = c1;
      } else {
        bool null_key = false;
        for (size_t i = 0; i < arity; ++i) {
          const Code c = lhs_ptrs[i][tid];
          if (c == kNullCode) {
            null_key = true;
            break;
          }
          scratch_key[i] = c;
        }
        if (null_key) continue;
        auto [it, fresh] = wide_index.emplace(
            scratch_key, static_cast<uint32_t>(buckets.size()));
        if (fresh) buckets.emplace_back();
        bi = it->second;
      }
      CodeBucket& b = buckets[bi];
      if (b.first_cfd < 0) {
        b.first_cfd = var_cfd;
        b.key = scratch_key;
      }
      b.members.push_back(tid);
      b.AddRhs(rhs_ptr[tid]);
    }

    // Partner counts on codes (NULLs share kNullCode and so agree with each
    // other, matching exact Value equality). The freq array is dense over
    // the RHS dictionary and reset per bucket by walking the same codes.
    std::vector<int64_t> freq(enc.dictionary(rhs_col).size() + 1, 0);
    for (CodeBucket& b : buckets) {
      if (!b.two_distinct) continue;
      ViolationGroup vg;
      vg.fd_group = static_cast<int>(gi);
      vg.cfd_index = b.first_cfd;
      vg.lhs_key.reserve(arity);
      for (size_t i = 0; i < arity; ++i) {
        vg.lhs_key.push_back(enc.Decode(lhs_cols[i], b.key[i]));
      }
      const int64_t n = static_cast<int64_t>(b.members.size());
      for (TupleId m : b.members) ++freq[rhs_ptr[m]];
      vg.member_partners.reserve(b.members.size());
      vg.member_rhs.reserve(b.members.size());
      for (TupleId m : b.members) {
        const Code c = rhs_ptr[m];
        vg.member_partners.push_back(n - freq[c]);
        vg.member_rhs.push_back(enc.Decode(rhs_col, c));
      }
      for (TupleId m : b.members) freq[rhs_ptr[m]] = 0;
      vg.members = std::move(b.members);
      table.AddGroup(std::move(vg));
    }
  }
  return table;
}

common::Result<ViolationTable> NativeDetector::DetectRows() {
  ViolationTable table;

  const std::vector<EmbeddedFdGroup> groups = cfd::GroupByEmbeddedFd(cfds_);
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    const EmbeddedFdGroup& g = groups[gi];
    // All members share the LHS column layout; take it from the first.
    const Cfd& first = cfds_[g.members.front().first];
    const std::vector<size_t>& lhs_cols = first.lhs_cols();
    const size_t rhs_col = first.rhs_col();

    struct GroupBucket {
      std::vector<TupleId> members;
      std::vector<Value> rhs;
      int first_cfd = -1;
      size_t distinct_nonnull = 0;
      std::unordered_set<Value, relational::ValueHash> seen_rhs;
    };
    std::unordered_map<Row, GroupBucket, RowHash, RowEq> buckets;

    rel_->ForEach([&](TupleId tid, const Row& row) {
      bool in_var_scope = false;
      int var_cfd = -1;
      for (const auto& [ci, pi] : g.members) {
        const PatternTuple& pt = cfds_[ci].tableau()[pi];
        bool lhs_match = true;
        for (size_t i = 0; i < lhs_cols.size(); ++i) {
          if (!pt.lhs[i].Matches(row[lhs_cols[i]])) {
            lhs_match = false;
            break;
          }
        }
        if (!lhs_match) continue;
        if (pt.is_constant_rhs()) {
          const Value& a = row[rhs_col];
          if (!a.is_null() && !(a == pt.rhs.constant())) {
            table.AddSingle(SingleViolation{tid, static_cast<int>(ci),
                                            static_cast<int>(pi)});
          }
        } else if (!in_var_scope) {
          in_var_scope = true;
          var_cfd = static_cast<int>(ci);
        }
      }
      if (!in_var_scope) return;
      // Multi-tuple scope: NULL LHS values cannot witness equality.
      Row key;
      key.reserve(lhs_cols.size());
      for (size_t c : lhs_cols) {
        if (row[c].is_null()) return;
        key.push_back(row[c]);
      }
      GroupBucket& b = buckets[std::move(key)];
      if (b.first_cfd < 0) b.first_cfd = var_cfd;
      b.members.push_back(tid);
      const Value& a = row[rhs_col];
      b.rhs.push_back(a);
      if (!a.is_null() && b.seen_rhs.insert(a).second) ++b.distinct_nonnull;
    });

    for (auto& [key, b] : buckets) {
      if (b.distinct_nonnull < 2) continue;
      ViolationGroup vg;
      vg.fd_group = static_cast<int>(gi);
      vg.cfd_index = b.first_cfd;
      vg.lhs_key = key;
      vg.members = std::move(b.members);
      vg.member_rhs = std::move(b.rhs);
      table.AddGroup(std::move(vg));
    }
  }
  return table;
}

}  // namespace semandaq::detect
