#include "detect/native_detector.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/thread_pool.h"
#include "detect/shard_plan.h"

namespace semandaq::detect {

using cfd::Cfd;
using cfd::EmbeddedFdGroup;
using cfd::PatternTuple;
using relational::Code;
using relational::CodeVecHash;
using relational::EncodedRelation;
using relational::kAbsentCode;
using relational::kNullCode;
using relational::PackCodes;
using relational::Row;
using relational::RowEq;
using relational::RowHash;
using relational::TupleId;
using relational::Value;

common::Result<ViolationTable> NativeDetector::Detect() {
  SEMANDAQ_RETURN_IF_ERROR(cfd::ResolveAll(&cfds_, rel_->schema()));
  if (!options_.use_encoded) return DetectRows();
  if (encoded_ != nullptr && &encoded_->relation() == rel_ &&
      encoded_->InSync()) {
    return DetectEncoded(*encoded_);
  }
  const EncodedRelation local(rel_, pool_);
  return DetectEncoded(local);
}

namespace {

/// A pattern tuple compiled against the column dictionaries: constants
/// become codes, wildcards vanish (they constrain nothing in code space).
struct CompiledPattern {
  int ci = -1;
  int pi = -1;
  /// (LHS position, required code) for each constant LHS entry.
  std::vector<std::pair<uint32_t, Code>> lhs_consts;
  /// Required RHS code for constant-RHS rows; kAbsentCode when the constant
  /// never occurs in the column (every non-NULL RHS then disagrees).
  Code rhs_code = kAbsentCode;

  bool MatchesLhs(const Code* const* lhs_cols, TupleId tid) const {
    for (const auto& [pos, code] : lhs_consts) {
      if (lhs_cols[pos][tid] != code) return false;
    }
    return true;
  }
};

/// One multi-tuple candidate group: the tuples sharing an LHS code key.
/// RHS codes are not duplicated here — the column itself holds them,
/// indexed by member tuple id.
struct CodeBucket {
  std::vector<TupleId> members;
  std::vector<Code> key;  // the LHS codes
  int first_cfd = -1;
  Code first_nonnull = kAbsentCode;
  bool two_distinct = false;

  void AddRhs(Code c) {
    if (c == kNullCode) return;
    if (first_nonnull == kAbsentCode) {
      first_nonnull = c;
    } else if (c != first_nonnull) {
      two_distinct = true;
    }
  }
};

/// Above this many slots the dense code-product group index would cost more
/// to allocate than it saves; fall back to hashing.
constexpr uint64_t kDenseGroupLimit = uint64_t{1} << 21;

constexpr uint32_t kNoBucket = UINT32_MAX;

/// One embedded-FD group lowered for the encoded scan: tableau rows
/// compiled to codes, raw column pointers, and the geometry of the dense
/// slot index when the LHS is narrow enough to afford one. Built once per
/// group and shared read-only by the serial and sharded scan bodies.
struct GroupScan {
  const EncodedRelation* enc = nullptr;
  int gi = -1;
  size_t arity = 0;
  std::vector<size_t> lhs_cols;
  size_t rhs_col = 0;

  std::vector<CompiledPattern> const_rows;
  std::vector<CompiledPattern> var_rows;

  /// Raw column pointers (lhs_ptrs()[i][tid] is the code of LHS column i).
  std::vector<const Code*> lhs_ptr_storage;
  const Code* rhs_ptr = nullptr;
  const Code* const* lhs_ptrs() const { return lhs_ptr_storage.data(); }

  /// An all-wildcard variable row (the plain embedded FD) puts every tuple
  /// in multi-tuple scope; the per-tuple pattern loop is skipped then.
  bool var_always = false;
  int var_always_cfd = -1;

  /// Dense slot-index geometry: codes are dense per column, so for one LHS
  /// column the code itself indexes a flat array, and for two the code
  /// *product* does whenever it fits; hashing is the fallback.
  uint64_t stride = 0;
  uint64_t dense_slots = 0;
  bool use_dense = false;

  uint64_t SlotOf(Code c0, Code c1) const {
    return arity == 1 ? c0 : static_cast<uint64_t>(c0) * stride + c1;
  }
};

/// Compiles one embedded-FD group; false when no tableau row is feasible
/// (the whole group then contributes nothing to the scan).
bool CompileGroup(const EncodedRelation& enc, const std::vector<Cfd>& cfds,
                  const EmbeddedFdGroup& g, size_t gi, GroupScan* gs) {
  const Cfd& first = cfds[g.members.front().first];
  gs->enc = &enc;
  gs->gi = static_cast<int>(gi);
  gs->lhs_cols = first.lhs_cols();
  gs->rhs_col = first.rhs_col();
  gs->arity = gs->lhs_cols.size();

  // Compile the tableau rows to codes, preserving member order. An LHS
  // constant absent from its column dictionary can never match a tuple,
  // so the whole row drops out of the scan upfront.
  for (const auto& [ci, pi] : g.members) {
    const PatternTuple& pt = cfds[ci].tableau()[pi];
    CompiledPattern cp;
    cp.ci = static_cast<int>(ci);
    cp.pi = static_cast<int>(pi);
    bool feasible = true;
    for (size_t i = 0; i < gs->arity; ++i) {
      if (pt.lhs[i].is_wildcard()) continue;
      // A NULL constant matches nothing (PatternValue::Matches rejects
      // NULL cells); it must not compile to kNullCode, which would match
      // exactly the NULL cells instead.
      const Code code = pt.lhs[i].constant().is_null()
                            ? kAbsentCode
                            : enc.dictionary(gs->lhs_cols[i])
                                  .Lookup(pt.lhs[i].constant());
      if (code == kAbsentCode) {
        feasible = false;
        break;
      }
      cp.lhs_consts.emplace_back(static_cast<uint32_t>(i), code);
    }
    if (!feasible) continue;
    if (pt.is_constant_rhs()) {
      cp.rhs_code = enc.dictionary(gs->rhs_col).Lookup(pt.rhs.constant());
      gs->const_rows.push_back(std::move(cp));
    } else {
      gs->var_rows.push_back(std::move(cp));
    }
  }
  if (gs->const_rows.empty() && gs->var_rows.empty()) return false;

  gs->lhs_ptr_storage.resize(gs->arity);
  for (size_t i = 0; i < gs->arity; ++i) {
    gs->lhs_ptr_storage[i] = enc.column(gs->lhs_cols[i]).data();
  }
  gs->rhs_ptr = enc.column(gs->rhs_col).data();

  gs->var_always = !gs->var_rows.empty() && gs->var_rows.front().lhs_consts.empty();
  gs->var_always_cfd = gs->var_always ? gs->var_rows.front().ci : -1;

  gs->stride = gs->arity == 2 ? enc.dictionary(gs->lhs_cols[1]).size() + 1 : 0;
  if (gs->arity == 1) {
    gs->dense_slots = enc.dictionary(gs->lhs_cols[0]).size() + 1;
  } else if (gs->arity == 2) {
    gs->dense_slots =
        (enc.dictionary(gs->lhs_cols[0]).size() + 1) * gs->stride;
  }
  gs->use_dense = gs->dense_slots > 0 && gs->dense_slots <= kDenseGroupLimit;
  return true;
}

/// The variable-RHS scope check for one tuple: the CFD index of the first
/// matching variable row, or -1 when the tuple is out of scope.
inline int VarScopeOf(const GroupScan& gs, TupleId tid) {
  if (gs.var_always) return gs.var_always_cfd;
  for (const CompiledPattern& cp : gs.var_rows) {
    if (cp.MatchesLhs(gs.lhs_ptrs(), tid)) return cp.ci;
  }
  return -1;
}

/// Materializes one violating bucket as a ViolationGroup. `freq` is a
/// caller-owned scratch array dense over the RHS dictionary (plus the NULL
/// slot), zeroed on entry and re-zeroed before returning; partner counts on
/// codes match exact Value equality because NULLs share kNullCode.
ViolationGroup MakeGroup(const GroupScan& gs, CodeBucket* b,
                         std::vector<int64_t>* freq) {
  const EncodedRelation& enc = *gs.enc;
  ViolationGroup vg;
  vg.fd_group = gs.gi;
  vg.cfd_index = b->first_cfd;
  vg.lhs_key.reserve(gs.arity);
  for (size_t i = 0; i < gs.arity; ++i) {
    vg.lhs_key.push_back(enc.Decode(gs.lhs_cols[i], b->key[i]));
  }
  const int64_t n = static_cast<int64_t>(b->members.size());
  for (TupleId m : b->members) ++(*freq)[gs.rhs_ptr[m]];
  vg.member_partners.reserve(b->members.size());
  vg.member_rhs.reserve(b->members.size());
  for (TupleId m : b->members) {
    const Code c = gs.rhs_ptr[m];
    vg.member_partners.push_back(n - (*freq)[c]);
    vg.member_rhs.push_back(enc.Decode(gs.rhs_col, c));
  }
  for (TupleId m : b->members) (*freq)[gs.rhs_ptr[m]] = 0;
  vg.members = std::move(b->members);
  return vg;
}

/// The original single-threaded scan body (the semantic reference for the
/// sharded path): one pass over the live tuples, buckets in first-touch
/// order.
void ScanGroupSerial(const GroupScan& gs, const std::vector<TupleId>& live,
                     ViolationTable* table) {
  const EncodedRelation& enc = *gs.enc;
  const size_t arity = gs.arity;
  const Code* const* lhs_ptrs = gs.lhs_ptrs();

  std::vector<CodeBucket> buckets;
  std::vector<uint32_t> dense_index;
  if (gs.use_dense) dense_index.assign(gs.dense_slots, kNoBucket);
  std::unordered_map<uint64_t, uint32_t> narrow_index;
  std::unordered_map<std::vector<Code>, uint32_t, CodeVecHash> wide_index;
  std::vector<Code> scratch_key(arity);

  for (const TupleId tid : live) {
    for (const CompiledPattern& cp : gs.const_rows) {
      if (!cp.MatchesLhs(lhs_ptrs, tid)) continue;
      const Code a = gs.rhs_ptr[tid];
      if (a != kNullCode && a != cp.rhs_code) {
        table->AddSingle(SingleViolation{tid, cp.ci, cp.pi});
      }
    }
    const int var_cfd = VarScopeOf(gs, tid);
    if (var_cfd < 0) continue;
    // Multi-tuple scope: NULL LHS values cannot witness equality.
    uint32_t bi;
    if (arity <= 2) {
      const Code c0 = lhs_ptrs[0][tid];
      if (c0 == kNullCode) continue;
      const Code c1 = arity == 2 ? lhs_ptrs[1][tid] : kNullCode;
      if (arity == 2 && c1 == kNullCode) continue;
      if (gs.use_dense) {
        uint32_t& entry = dense_index[gs.SlotOf(c0, c1)];
        if (entry == kNoBucket) {
          entry = static_cast<uint32_t>(buckets.size());
          buckets.emplace_back();
        }
        bi = entry;
      } else {
        auto [it, fresh] = narrow_index.emplace(
            PackCodes(c0, c1), static_cast<uint32_t>(buckets.size()));
        if (fresh) buckets.emplace_back();
        bi = it->second;
      }
      scratch_key[0] = c0;
      if (arity == 2) scratch_key[1] = c1;
    } else {
      bool null_key = false;
      for (size_t i = 0; i < arity; ++i) {
        const Code c = lhs_ptrs[i][tid];
        if (c == kNullCode) {
          null_key = true;
          break;
        }
        scratch_key[i] = c;
      }
      if (null_key) continue;
      auto [it, fresh] = wide_index.emplace(
          scratch_key, static_cast<uint32_t>(buckets.size()));
      if (fresh) buckets.emplace_back();
      bi = it->second;
    }
    CodeBucket& b = buckets[bi];
    if (b.first_cfd < 0) {
      b.first_cfd = var_cfd;
      b.key = scratch_key;
    }
    b.members.push_back(tid);
    b.AddRhs(gs.rhs_ptr[tid]);
  }

  std::vector<int64_t> freq(enc.dictionary(gs.rhs_col).size() + 1, 0);
  for (CodeBucket& b : buckets) {
    if (!b.two_distinct) continue;
    table->AddGroup(MakeGroup(gs, &b, &freq));
  }
}

/// A tuple routed to a shard during the partition phase. The LHS codes are
/// not buffered — the build phase re-reads them from the encoded columns,
/// which are already in cache-friendly flat arrays.
struct ShardEntry {
  TupleId tid;
  int var_cfd;
};

/// The sharded scan body. Two fork-join phases over `plan.num_shards`
/// lanes, then a merge on the calling thread:
///
///   Phase A (partition): the live-tuple list is cut into contiguous
///   stripes, one per lane. Each lane evaluates the compiled patterns for
///   its stripe, collects its single-tuple violations (stripe-local, in
///   tuple order), and routes every in-scope tuple to the shard owning its
///   LHS code key (a pure function of the key — see ShardPlan).
///
///   Phase B (build): lane w builds the buckets of shard w, consuming the
///   routed entries stripe by stripe so members accumulate in ascending
///   tuple order, then materializes that shard's violating groups. The
///   dense slot index is one shared array — shards own disjoint slot
///   ranges, so concurrent writes never alias.
///
///   Merge: singles concatenate in stripe order (= tuple order, exactly
///   the serial emission order). Groups sort by first member tuple id —
///   the serial path emits buckets in first-touch order, and a bucket's
///   first member IS its first toucher, so this reproduces the serial
///   order exactly. The result is byte-identical to ScanGroupSerial for
///   every shard count: determinism is structural, not best-effort.
void ScanGroupSharded(const GroupScan& gs, const std::vector<TupleId>& live,
                      const ShardPlan& plan, common::ThreadPool* pool,
                      ViolationTable* table) {
  const EncodedRelation& enc = *gs.enc;
  const size_t arity = gs.arity;
  const size_t num_shards = plan.num_shards;

  std::vector<std::vector<SingleViolation>> stripe_singles(num_shards);
  // routed[stripe][shard]: entries found by `stripe` owned by `shard`.
  std::vector<std::vector<std::vector<ShardEntry>>> routed(
      num_shards, std::vector<std::vector<ShardEntry>>(num_shards));
  std::vector<uint32_t> dense_index;
  if (gs.use_dense) dense_index.assign(gs.dense_slots, kNoBucket);

  pool->Run(num_shards, [&](size_t s) {
    const size_t begin = live.size() * s / num_shards;
    const size_t end = live.size() * (s + 1) / num_shards;
    const Code* const* lhs_ptrs = gs.lhs_ptrs();
    std::vector<SingleViolation>& singles = stripe_singles[s];
    std::vector<std::vector<ShardEntry>>& out = routed[s];
    std::vector<Code> key(arity);
    for (size_t li = begin; li < end; ++li) {
      const TupleId tid = live[li];
      for (const CompiledPattern& cp : gs.const_rows) {
        if (!cp.MatchesLhs(lhs_ptrs, tid)) continue;
        const Code a = gs.rhs_ptr[tid];
        if (a != kNullCode && a != cp.rhs_code) {
          singles.push_back(SingleViolation{tid, cp.ci, cp.pi});
        }
      }
      const int var_cfd = VarScopeOf(gs, tid);
      if (var_cfd < 0) continue;
      bool null_key = false;
      for (size_t i = 0; i < arity; ++i) {
        const Code c = lhs_ptrs[i][tid];
        if (c == kNullCode) {
          null_key = true;
          break;
        }
        key[i] = c;
      }
      if (null_key) continue;  // NULL LHS values cannot witness equality
      size_t shard;
      if (gs.use_dense) {
        shard = plan.ShardOfSlot(gs.SlotOf(key[0], arity == 2 ? key[1] : 0),
                                 gs.dense_slots);
      } else if (arity <= 2) {
        shard = plan.ShardOfHash(
            PackCodes(key[0], arity == 2 ? key[1] : kNullCode));
      } else {
        shard = plan.ShardOfHash(CodeVecHash{}(key));
      }
      out[shard].push_back(ShardEntry{tid, var_cfd});
    }
  });

  std::vector<std::vector<ViolationGroup>> shard_groups(num_shards);
  pool->Run(num_shards, [&](size_t w) {
    const Code* const* lhs_ptrs = gs.lhs_ptrs();
    std::vector<CodeBucket> buckets;
    std::unordered_map<uint64_t, uint32_t> narrow_index;
    std::unordered_map<std::vector<Code>, uint32_t, CodeVecHash> wide_index;
    std::vector<Code> key(arity);
    for (size_t s = 0; s < num_shards; ++s) {
      for (const ShardEntry& e : routed[s][w]) {
        for (size_t i = 0; i < arity; ++i) key[i] = lhs_ptrs[i][e.tid];
        uint32_t bi;
        if (gs.use_dense) {
          uint32_t& entry =
              dense_index[gs.SlotOf(key[0], arity == 2 ? key[1] : 0)];
          if (entry == kNoBucket) {
            entry = static_cast<uint32_t>(buckets.size());
            buckets.emplace_back();
          }
          bi = entry;
        } else if (arity <= 2) {
          auto [it, fresh] = narrow_index.emplace(
              PackCodes(key[0], arity == 2 ? key[1] : kNullCode),
              static_cast<uint32_t>(buckets.size()));
          if (fresh) buckets.emplace_back();
          bi = it->second;
        } else {
          auto [it, fresh] = wide_index.emplace(
              key, static_cast<uint32_t>(buckets.size()));
          if (fresh) buckets.emplace_back();
          bi = it->second;
        }
        CodeBucket& b = buckets[bi];
        if (b.first_cfd < 0) {
          b.first_cfd = e.var_cfd;
          b.key = key;
        }
        b.members.push_back(e.tid);
        b.AddRhs(gs.rhs_ptr[e.tid]);
      }
    }
    std::vector<int64_t> freq(enc.dictionary(gs.rhs_col).size() + 1, 0);
    for (CodeBucket& b : buckets) {
      if (!b.two_distinct) continue;
      shard_groups[w].push_back(MakeGroup(gs, &b, &freq));
    }
  });

  for (const std::vector<SingleViolation>& singles : stripe_singles) {
    for (const SingleViolation& sv : singles) table->AddSingle(sv);
  }
  std::vector<ViolationGroup> merged;
  for (std::vector<ViolationGroup>& sg : shard_groups) {
    for (ViolationGroup& vg : sg) merged.push_back(std::move(vg));
  }
  // First members are distinct across buckets of one group (a tuple joins
  // at most one bucket), so this order is total.
  std::sort(merged.begin(), merged.end(),
            [](const ViolationGroup& a, const ViolationGroup& b) {
              return a.members.front() < b.members.front();
            });
  for (ViolationGroup& vg : merged) table->AddGroup(std::move(vg));
}

}  // namespace

common::Result<ViolationTable> NativeDetector::DetectEncoded(
    const EncodedRelation& enc) {
  ViolationTable table;
  const std::vector<TupleId> live = rel_->LiveIds();

  // One shard plan for the whole CFD batch. The worker pool is the
  // facade-owned one when attached (reused across Detect calls); only a
  // bare detector still builds a pool per call.
  const ShardPlan plan = PlanShards(options_.num_threads, live.size());
  std::optional<common::ThreadPool> local_pool;
  common::ThreadPool* pool = pool_;
  if (plan.sharded() && pool == nullptr) {
    local_pool.emplace(plan.num_shards);
    pool = &*local_pool;
  }

  const std::vector<EmbeddedFdGroup> groups = cfd::GroupByEmbeddedFd(cfds_);
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    GroupScan gs;
    if (!CompileGroup(enc, cfds_, groups[gi], gi, &gs)) continue;
    if (plan.sharded()) {
      ScanGroupSharded(gs, live, plan, pool, &table);
    } else {
      ScanGroupSerial(gs, live, &table);
    }
  }
  return table;
}

common::Result<ViolationTable> NativeDetector::DetectRows() {
  ViolationTable table;

  const std::vector<EmbeddedFdGroup> groups = cfd::GroupByEmbeddedFd(cfds_);
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    const EmbeddedFdGroup& g = groups[gi];
    // All members share the LHS column layout; take it from the first.
    const Cfd& first = cfds_[g.members.front().first];
    const std::vector<size_t>& lhs_cols = first.lhs_cols();
    const size_t rhs_col = first.rhs_col();

    struct GroupBucket {
      std::vector<TupleId> members;
      std::vector<Value> rhs;
      int first_cfd = -1;
      size_t distinct_nonnull = 0;
      std::unordered_set<Value, relational::ValueHash> seen_rhs;
    };
    std::unordered_map<Row, GroupBucket, RowHash, RowEq> buckets;

    rel_->ForEach([&](TupleId tid, const Row& row) {
      bool in_var_scope = false;
      int var_cfd = -1;
      for (const auto& [ci, pi] : g.members) {
        const PatternTuple& pt = cfds_[ci].tableau()[pi];
        bool lhs_match = true;
        for (size_t i = 0; i < lhs_cols.size(); ++i) {
          if (!pt.lhs[i].Matches(row[lhs_cols[i]])) {
            lhs_match = false;
            break;
          }
        }
        if (!lhs_match) continue;
        if (pt.is_constant_rhs()) {
          const Value& a = row[rhs_col];
          if (!a.is_null() && !(a == pt.rhs.constant())) {
            table.AddSingle(SingleViolation{tid, static_cast<int>(ci),
                                            static_cast<int>(pi)});
          }
        } else if (!in_var_scope) {
          in_var_scope = true;
          var_cfd = static_cast<int>(ci);
        }
      }
      if (!in_var_scope) return;
      // Multi-tuple scope: NULL LHS values cannot witness equality.
      Row key;
      key.reserve(lhs_cols.size());
      for (size_t c : lhs_cols) {
        if (row[c].is_null()) return;
        key.push_back(row[c]);
      }
      GroupBucket& b = buckets[std::move(key)];
      if (b.first_cfd < 0) b.first_cfd = var_cfd;
      b.members.push_back(tid);
      const Value& a = row[rhs_col];
      b.rhs.push_back(a);
      if (!a.is_null() && b.seen_rhs.insert(a).second) ++b.distinct_nonnull;
    });

    for (auto& [key, b] : buckets) {
      if (b.distinct_nonnull < 2) continue;
      ViolationGroup vg;
      vg.fd_group = static_cast<int>(gi);
      vg.cfd_index = b.first_cfd;
      vg.lhs_key = key;
      vg.members = std::move(b.members);
      vg.member_rhs = std::move(b.rhs);
      table.AddGroup(std::move(vg));
    }
  }
  return table;
}

}  // namespace semandaq::detect
