#ifndef SEMANDAQ_DETECT_SQL_GENERATOR_H_
#define SEMANDAQ_DETECT_SQL_GENERATOR_H_

#include <string>
#include <vector>

#include "cfd/cfd.h"

namespace semandaq::detect {

/// The SQL text pair that detects all violations of one embedded-FD tableau
/// group, following the query-generation technique of Fan et al. [TODS'08]
/// (wildcards encoded as NULL in the tableau relation):
///
///  * `qc` flags single-tuple violations — tuples matching a constant-RHS
///    pattern's LHS whose RHS differs from the constant;
///  * `qv_keys` computes the LHS keys of multi-tuple violations via
///    GROUP BY / HAVING COUNT(DISTINCT rhs) > 1 over the variable-RHS rows;
///  * `qv_members` joins the keys back to enumerate the violating tuples
///    (the key relation is materialized under `keys_relation` first).
struct DetectionQueries {
  int fd_group = -1;
  std::string tableau_relation;
  std::string keys_relation;
  std::string qc;
  std::string qv_keys;
  std::string qv_members;
  bool has_constant_rows = false;
  bool has_variable_rows = false;
};

/// Generates the Q_C / Q_V query texts for every embedded-FD group of
/// `cfds`. `tableau_names` must come from cfd::TableauStore::Store (same
/// group order). `relation` is the data relation under test.
std::vector<DetectionQueries> GenerateDetectionSql(
    const std::vector<cfd::Cfd>& cfds, const std::string& relation,
    const std::vector<std::string>& tableau_names);

}  // namespace semandaq::detect

#endif  // SEMANDAQ_DETECT_SQL_GENERATOR_H_
