#ifndef SEMANDAQ_DETECT_SHARD_PLAN_H_
#define SEMANDAQ_DETECT_SHARD_PLAN_H_

#include <cstddef>
#include <cstdint>

#include "common/hash.h"

namespace semandaq::detect {

/// Shard hashing uses common::SplitMix64 — a cheap full-avalanche mix so
/// that code keys that differ only in low bits still spread across shards.
/// (Raw packed codes are dense small integers; `packed % num_shards` would
/// put every key of one column value into the same shard.)

/// A partition of the LHS code-key space for one detection pass.
///
/// Every CFD group in a batch detect shares the same plan: the shard of a
/// tuple is a pure function of its LHS code key (never of thread timing),
/// which is what makes the sharded scan deterministic — each key's bucket
/// is built by exactly one worker, in tuple-id order, regardless of how the
/// OS schedules the pool.
///
/// Two partition functions, matching the two group-index representations
/// of the encoded scan:
///  * dense (<= 2 LHS columns whose code product fits the dense index):
///    contiguous *ranges* of dense slots, so all shards can share one flat
///    slot->bucket array without ever touching the same element;
///  * hashed (everything else): SplitMix64 of the packed/combined codes,
///    reduced mod num_shards.
struct ShardPlan {
  size_t num_shards = 1;

  /// False means the serial scan runs unchanged.
  bool sharded() const { return num_shards > 1; }

  /// Shard owning a dense group-index slot; slot < dense_slots.
  size_t ShardOfSlot(uint64_t slot, uint64_t dense_slots) const {
    // dense_slots <= 2^21 and num_shards is a thread count, so the product
    // cannot overflow 64 bits.
    return static_cast<size_t>(slot * num_shards / dense_slots);
  }

  /// Shard owning a hashed code key (`packed` is PackCodes for <= 2
  /// columns, a HashCombine chain for wide keys).
  size_t ShardOfHash(uint64_t packed) const {
    return static_cast<size_t>(common::SplitMix64(packed) % num_shards);
  }
};

/// Below this many live tuples per shard, fork-join dispatch costs more
/// than the scan it parallelizes; the planner narrows the shard count so
/// every shard clears the floor.
inline constexpr size_t kMinTuplesPerShard = 512;

/// Hard ceiling on the shard count, whatever the caller asked for: beyond
/// this, extra OS threads only oversubscribe (and a typo'd knob — say
/// `threads=999999` through the CLI — must not try to spawn thousands of
/// threads and die on resource exhaustion).
inline constexpr size_t kMaxShards = 64;

/// Plans the shard count for a detection pass over `live_tuples` tuples.
/// `num_threads` carries the DetectorOptions knob semantics: 1 = serial,
/// 0 = one shard per hardware thread, >= 2 = exactly that many shards
/// (subject to the per-shard tuple floor). The same plan is reused across
/// all CFDs of the batch so the worker pool is started once.
ShardPlan PlanShards(size_t num_threads, size_t live_tuples);

}  // namespace semandaq::detect

#endif  // SEMANDAQ_DETECT_SHARD_PLAN_H_
