#include "detect/sql_generator.h"

#include "common/string_util.h"

namespace semandaq::detect {

namespace {

/// Quotes an identifier for safe embedding in generated SQL.
std::string Ident(const std::string& name) { return "\"" + name + "\""; }

/// `(t.X = tp.X OR tp.X IS NULL)` for every LHS attribute — the pattern
/// match predicate with NULL-encoded wildcards.
std::string LhsMatchPredicate(const std::vector<std::string>& lhs_attrs) {
  std::vector<std::string> parts;
  parts.reserve(lhs_attrs.size());
  for (const std::string& a : lhs_attrs) {
    parts.push_back("(t." + Ident(a) + " = tp." + Ident(a) + " OR tp." + Ident(a) +
                    " IS NULL)");
  }
  return common::Join(parts, " AND ");
}

}  // namespace

std::vector<DetectionQueries> GenerateDetectionSql(
    const std::vector<cfd::Cfd>& cfds, const std::string& relation,
    const std::vector<std::string>& tableau_names) {
  const std::vector<cfd::EmbeddedFdGroup> groups = cfd::GroupByEmbeddedFd(cfds);
  std::vector<DetectionQueries> out;
  out.reserve(groups.size());

  for (size_t gi = 0; gi < groups.size(); ++gi) {
    const cfd::EmbeddedFdGroup& g = groups[gi];
    DetectionQueries q;
    q.fd_group = static_cast<int>(gi);
    q.tableau_relation = gi < tableau_names.size()
                             ? tableau_names[gi]
                             : std::string("__cfd_tableau_") + std::to_string(gi);
    q.keys_relation = "__vio_keys_" + std::to_string(gi);

    for (const auto& [ci, pi] : g.members) {
      if (cfds[ci].tableau()[pi].is_constant_rhs()) {
        q.has_constant_rows = true;
      } else {
        q.has_variable_rows = true;
      }
    }

    const std::string match = LhsMatchPredicate(g.lhs_attrs);
    const std::string rhs = Ident(g.rhs_attr);

    // Q_C: one row per violating (tuple, CFD) pair; DISTINCT collapses
    // multiple tableau rows of the same CFD flagging the same tuple.
    q.qc = "SELECT DISTINCT t.__tid AS tid, tp.__cfd_id AS cfd_id, "
           "tp.__pattern_id AS pattern_id FROM " +
           Ident(relation) + " t, " + Ident(q.tableau_relation) + " tp WHERE " +
           match + " AND tp." + rhs + " IS NOT NULL AND t." + rhs + " <> tp." + rhs;

    // Q_V step 1: violating LHS keys among tuples matching a variable-RHS
    // row. Tuples with NULL LHS values cannot witness equality, hence the
    // IS NOT NULL guards.
    std::string key_cols;
    std::string group_cols;
    std::string notnull;
    for (size_t i = 0; i < g.lhs_attrs.size(); ++i) {
      const std::string col = "t." + Ident(g.lhs_attrs[i]);
      if (i > 0) {
        key_cols += ", ";
        group_cols += ", ";
      }
      key_cols += col + " AS k" + std::to_string(i);
      group_cols += col;
      notnull += " AND " + col + " IS NOT NULL";
    }
    q.qv_keys = "SELECT " + key_cols + " FROM " + Ident(relation) + " t, " +
                Ident(q.tableau_relation) + " tp WHERE " + match + " AND tp." + rhs +
                " IS NULL" + notnull + " GROUP BY " + group_cols +
                " HAVING COUNT(DISTINCT t." + rhs + ") > 1";

    // Q_V step 2: join the materialized keys back to enumerate members.
    std::string back_join;
    for (size_t i = 0; i < g.lhs_attrs.size(); ++i) {
      back_join += " AND t." + Ident(g.lhs_attrs[i]) + " = m.k" + std::to_string(i);
    }
    std::string select_keys;
    for (size_t i = 0; i < g.lhs_attrs.size(); ++i) {
      select_keys += ", m.k" + std::to_string(i) + " AS k" + std::to_string(i);
    }
    // DISTINCT collapses tuples matching several variable rows; the member
    // set per key is what matters (the representative CFD is recovered from
    // the tableau group by the caller).
    q.qv_members = "SELECT DISTINCT t.__tid AS tid" + select_keys + ", t." + rhs +
                   " AS rhs FROM " + Ident(relation) + " t, " +
                   Ident(q.tableau_relation) + " tp, " + Ident(q.keys_relation) +
                   " m WHERE " + match + " AND tp." + rhs + " IS NULL" + back_join;

    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace semandaq::detect
