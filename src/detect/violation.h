#ifndef SEMANDAQ_DETECT_VIOLATION_H_
#define SEMANDAQ_DETECT_VIOLATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "relational/relation.h"
#include "relational/value.h"

namespace semandaq::detect {

/// A tuple that conflicts with a constant-RHS pattern all by itself
/// (paper §2: "single-tuple violations").
struct SingleViolation {
  relational::TupleId tid = -1;
  int cfd_index = -1;      ///< index into the detector's CFD vector
  int pattern_index = -1;  ///< tableau row within that CFD
};

/// Tuples that jointly conflict with a variable-RHS pattern: they agree on
/// the LHS under the pattern but disagree on the RHS (paper §2:
/// "multi-tuple violations"). Following the merged-tableau SQL semantics of
/// Fan et al. [TODS'08], one group exists per (embedded-FD group, LHS key),
/// not per tableau row.
struct ViolationGroup {
  int fd_group = -1;   ///< index into GroupByEmbeddedFd(cfds)
  int cfd_index = -1;  ///< representative CFD (first contributing member)
  relational::Row lhs_key;
  std::vector<relational::TupleId> members;
  /// RHS value of each member, parallel to `members` (kept so auditing can
  /// judge "bulk agreement" without re-reading the relation). Empty when
  /// the producer was asked not to materialize it
  /// (DetectorOptions::materialize_group_rhs = false) — member_partners is
  /// always present then, so vio accounting never depends on it.
  std::vector<relational::Value> member_rhs;
  /// Optional producer hint, parallel to `members`: the number of group
  /// members whose RHS disagrees with this member's. Detectors that group
  /// on dictionary codes fill it from integer counts; when absent (size
  /// mismatch), AddGroup derives it from member_rhs by value hashing.
  std::vector<int64_t> member_partners;
};

/// The error detector's output: per-tuple violation counts vio(t) plus the
/// full violation records (paper §2: "the error detector records additional
/// information ... e.g. which CFDs are violated by which tuple").
///
/// vio(t) accounting follows the paper exactly: vio(t) starts at 0, gains 1
/// per CFD for which t is a single-tuple violation (deduplicated per CFD,
/// even if several tableau rows flag it), and gains, per multi-tuple
/// violation group containing t, the number of group members whose RHS value
/// differs from t's.
class ViolationTable {
 public:
  ViolationTable() = default;

  /// Records a single-tuple violation. Returns true when it was new at the
  /// (tid, cfd) granularity, i.e. it contributed +1 to vio(tid).
  bool AddSingle(SingleViolation v);

  /// Records a multi-tuple violation group and credits every member's
  /// vio(t) with its number of disagreeing partners.
  void AddGroup(ViolationGroup g);

  int64_t vio(relational::TupleId tid) const;
  bool IsViolating(relational::TupleId tid) const { return vio(tid) > 0; }

  const std::vector<SingleViolation>& singles() const { return singles_; }
  const std::vector<ViolationGroup>& groups() const { return groups_; }

  /// Distinct tuples with vio(t) > 0.
  size_t NumViolatingTuples() const { return num_violating_; }
  /// Sum of vio(t) over all tuples.
  int64_t TotalVio() const { return total_; }

  /// CFD indices violated by `tid` (singles) plus fd-group indices of the
  /// multi-tuple groups containing it, for the explorer drill-down. The
  /// index behind both is built lazily on first query (and rebuilt after
  /// further Add* calls) — detection itself never pays for it.
  std::vector<int> SingleCfdsOf(relational::TupleId tid) const;
  std::vector<int> GroupsOf(relational::TupleId tid) const;

  /// All violating tuple ids, ascending.
  std::vector<relational::TupleId> ViolatingTuples() const;

  std::string Summary() const;

 private:
  /// Grows the dense per-tuple vio array to cover `tid`.
  void EnsureTid(relational::TupleId tid);
  /// Adds to vio(tid), maintaining the violating-tuple count.
  void AddVio(relational::TupleId tid, int64_t amount);
  /// Builds the drill-down index from singles_/groups_ if stale.
  void EnsureDrilldownIndex() const;

  std::vector<SingleViolation> singles_;
  std::vector<ViolationGroup> groups_;
  // Dense per-tuple vio counts, indexed by tid (tuple ids are dense by
  // construction; a hash map here dominated emission cost at scale).
  std::vector<int64_t> vio_;
  // The explorer's drill-down index, derived from singles_/groups_ on
  // first SingleCfdsOf/GroupsOf query. It used to be maintained eagerly as
  // dense vector-of-vectors, whose grow-and-reallocate churn cost more
  // than the entire kernel scan (gprof: ~2/3 of a warm Detect); per-member
  // hash upkeep during emission is no better when variable-CFD groups span
  // most of the relation. Deriving it on demand keeps emission pure array
  // work and queries O(results).
  mutable std::unordered_map<relational::TupleId, std::vector<int>>
      single_cfds_;
  mutable std::unordered_map<relational::TupleId, std::vector<int>>
      group_membership_;
  mutable bool drilldown_built_ = false;
  size_t num_violating_ = 0;
  // (tid, cfd) pairs already counted toward vio.
  std::unordered_set<uint64_t> counted_singles_;
  int64_t total_ = 0;
};

}  // namespace semandaq::detect

#endif  // SEMANDAQ_DETECT_VIOLATION_H_
