#include "detect/sql_detector.h"

#include <unordered_map>

#include "cfd/tableau_store.h"
#include "sql/engine.h"

namespace semandaq::detect {

using common::Status;
using relational::Relation;
using relational::Row;
using relational::RowEq;
using relational::RowHash;
using relational::TupleId;
using relational::Value;

common::Result<ViolationTable> SqlDetector::Detect() {
  const Relation* target = db_->FindRelation(relation_);
  if (target == nullptr) {
    return Status::NotFound("no relation named " + relation_);
  }
  SEMANDAQ_RETURN_IF_ERROR(cfd::ResolveAll(&cfds_, target->schema()));

  std::vector<std::string> tableau_names;
  SEMANDAQ_RETURN_IF_ERROR(cfd::TableauStore::Store(cfds_, db_, &tableau_names));
  queries_ = GenerateDetectionSql(cfds_, relation_, tableau_names);

  const std::vector<cfd::EmbeddedFdGroup> groups = cfd::GroupByEmbeddedFd(cfds_);
  sql::Engine engine(db_);
  ViolationTable table;

  for (const DetectionQueries& q : queries_) {
    // Representative CFD for multi-tuple groups: the first variable-RHS
    // member of this tableau group.
    int representative = -1;
    for (const auto& [ci, pi] :
         groups[static_cast<size_t>(q.fd_group)].members) {
      if (!cfds_[ci].tableau()[pi].is_constant_rhs()) {
        representative = static_cast<int>(ci);
        break;
      }
    }

    if (q.has_constant_rows) {
      SEMANDAQ_ASSIGN_OR_RETURN(Relation qc, engine.Query(q.qc, "qc"));
      qc.ForEach([&](TupleId, const Row& row) {
        table.AddSingle(SingleViolation{row[0].AsInt(),
                                        static_cast<int>(row[1].AsInt()),
                                        static_cast<int>(row[2].AsInt())});
      });
    }

    if (q.has_variable_rows) {
      SEMANDAQ_ASSIGN_OR_RETURN(Relation keys, engine.Query(q.qv_keys, q.keys_relation));
      if (!keys.empty()) {
        db_->PutRelation(std::move(keys));
        auto members = engine.Query(q.qv_members, "qv_members");
        (void)db_->DropRelation(q.keys_relation);
        if (!members.ok()) return members.status();

        const size_t key_arity =
            groups[static_cast<size_t>(q.fd_group)].lhs_attrs.size();
        struct Bucket {
          std::vector<TupleId> members;
          std::vector<Value> rhs;
        };
        std::unordered_map<Row, Bucket, RowHash, RowEq> buckets;
        members->ForEach([&](TupleId, const Row& row) {
          // Layout: tid, k0..k{n-1}, rhs.
          Row key(row.begin() + 1, row.begin() + 1 + key_arity);
          Bucket& b = buckets[std::move(key)];
          b.members.push_back(row[0].AsInt());
          b.rhs.push_back(row[1 + key_arity]);
        });
        for (auto& [key, b] : buckets) {
          ViolationGroup vg;
          vg.fd_group = q.fd_group;
          vg.cfd_index = representative;
          vg.lhs_key = key;
          vg.members = std::move(b.members);
          vg.member_rhs = std::move(b.rhs);
          table.AddGroup(std::move(vg));
        }
      }
    }
  }

  cfd::TableauStore::Clear(db_);
  return table;
}

}  // namespace semandaq::detect
