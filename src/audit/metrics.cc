#include "audit/metrics.h"

#include <algorithm>

namespace semandaq::audit {

using cfd::Cfd;
using cfd::PatternTuple;
using detect::ViolationGroup;
using detect::ViolationTable;
using relational::Row;
using relational::TupleId;
using relational::Value;

const char* CleanGradeToString(CleanGrade g) {
  switch (g) {
    case CleanGrade::kDirty:
      return "dirty";
    case CleanGrade::kArguablyClean:
      return "arguably clean";
    case CleanGrade::kProbablyClean:
      return "probably clean";
    case CleanGrade::kVerifiedClean:
      return "verified clean";
  }
  return "?";
}

double AttributeStats::pct_verified() const {
  const int64_t t = total();
  return t == 0 ? 0 : 100.0 * static_cast<double>(counts[3]) / static_cast<double>(t);
}

double AttributeStats::pct_probably() const {
  const int64_t t = total();
  return t == 0 ? 0
               : 100.0 * static_cast<double>(counts[3] + counts[2]) /
                     static_cast<double>(t);
}

double AttributeStats::pct_arguably() const {
  const int64_t t = total();
  return t == 0 ? 0
               : 100.0 * static_cast<double>(counts[3] + counts[2] + counts[1]) /
                     static_cast<double>(t);
}

CleanGrade AuditOutcome::GradeOf(TupleId tid) const {
  auto it = tuple_grades.find(tid);
  return it == tuple_grades.end() ? CleanGrade::kProbablyClean : it->second;
}

common::Result<AuditOutcome> DataAuditor::Audit(const ViolationTable& table) {
  SEMANDAQ_RETURN_IF_ERROR(cfd::ResolveAll(&cfds_, rel_->schema()));
  AuditOutcome out;
  const size_t ncols = rel_->schema().size();
  out.attr_stats.resize(ncols);

  // Precompute, per group in the table, each member's agreement status:
  // does the strict majority of the group share its RHS value?
  // Also collect cell-level implication: which (tid, col) cells are dirty or
  // only arguably clean.
  struct CellFlag {
    bool dirty = false;
    bool arguable_only = false;  // dirty but majority agrees
  };
  std::unordered_map<uint64_t, CellFlag> cell_flags;
  auto cell_key = [](TupleId tid, size_t col) {
    return (static_cast<uint64_t>(tid) << 16) | static_cast<uint64_t>(col);
  };

  // tid -> has single / has multi / all groups bulk-agree.
  std::unordered_map<TupleId, bool> has_single;
  std::unordered_map<TupleId, bool> has_multi;
  std::unordered_map<TupleId, bool> bulk_agrees_everywhere;

  for (const auto& sv : table.singles()) {
    has_single[sv.tid] = true;
    const Cfd& c = cfds_[static_cast<size_t>(sv.cfd_index)];
    // Implicate the RHS cell and every constant LHS position: one of them
    // carries the error.
    cell_flags[cell_key(sv.tid, c.rhs_col())].dirty = true;
    const PatternTuple& pt = c.tableau()[static_cast<size_t>(sv.pattern_index)];
    for (size_t i = 0; i < c.lhs_cols().size(); ++i) {
      if (pt.lhs[i].is_constant()) {
        cell_flags[cell_key(sv.tid, c.lhs_cols()[i])].dirty = true;
      }
    }
  }

  for (const ViolationGroup& g : table.groups()) {
    out.num_groups += 1;
    out.max_group_size = std::max(out.max_group_size, g.members.size());
    out.min_group_size = out.min_group_size == 0
                             ? g.members.size()
                             : std::min(out.min_group_size, g.members.size());
    out.avg_group_size += static_cast<double>(g.members.size());

    const Cfd& c = cfds_[static_cast<size_t>(
        g.cfd_index >= 0 ? g.cfd_index : 0)];
    std::unordered_map<Value, int64_t, relational::ValueHash> freq;
    for (const Value& v : g.member_rhs) ++freq[v];
    const int64_t n = static_cast<int64_t>(g.members.size());
    for (size_t i = 0; i < g.members.size(); ++i) {
      const TupleId tid = g.members[i];
      has_multi[tid] = true;
      const bool majority = 2 * freq[g.member_rhs[i]] > n;
      auto it = bulk_agrees_everywhere.find(tid);
      if (it == bulk_agrees_everywhere.end()) {
        bulk_agrees_everywhere[tid] = majority;
      } else {
        it->second = it->second && majority;
      }
      CellFlag& flag = cell_flags[cell_key(tid, c.rhs_col())];
      flag.dirty = true;
      if (majority) flag.arguable_only = true;
    }
  }
  if (out.num_groups > 0) {
    out.avg_group_size /= static_cast<double>(out.num_groups);
  }

  // Cells (and tuples) confirmed by a satisfied constant-RHS pattern.
  std::unordered_map<uint64_t, bool> cell_verified;
  std::unordered_map<TupleId, bool> tuple_has_verifier;

  rel_->ForEach([&](TupleId tid, const Row& row) {
    for (const Cfd& c : cfds_) {
      for (const PatternTuple& pt : c.tableau()) {
        if (!pt.is_constant_rhs()) continue;
        bool lhs_match = true;
        for (size_t i = 0; i < c.lhs_cols().size(); ++i) {
          if (!pt.lhs[i].Matches(row[c.lhs_cols()[i]])) {
            lhs_match = false;
            break;
          }
        }
        if (!lhs_match) continue;
        const Value& a = row[c.rhs_col()];
        if (a.is_null() || !(a == pt.rhs.constant())) continue;
        // Confirmed: the RHS cell and every constant LHS cell.
        tuple_has_verifier[tid] = true;
        cell_verified[cell_key(tid, c.rhs_col())] = true;
        for (size_t i = 0; i < c.lhs_cols().size(); ++i) {
          if (pt.lhs[i].is_constant()) {
            cell_verified[cell_key(tid, c.lhs_cols()[i])] = true;
          }
        }
      }
    }
  });

  // Tuple grades + composition; attribute-value grades.
  int64_t sum_vio = 0;
  rel_->ForEach([&](TupleId tid, const Row&) {
    ++out.num_tuples;
    const int64_t vio = table.vio(tid);
    const bool single = has_single.count(tid) > 0;
    const bool multi = has_multi.count(tid) > 0;

    CleanGrade grade;
    if (vio == 0) {
      grade = tuple_has_verifier.count(tid) > 0 ? CleanGrade::kVerifiedClean
                                                : CleanGrade::kProbablyClean;
    } else if (!single && multi && bulk_agrees_everywhere[tid]) {
      grade = CleanGrade::kArguablyClean;
    } else {
      grade = CleanGrade::kDirty;
    }
    out.tuple_grades[tid] = grade;
    ++out.tuple_counts[static_cast<size_t>(grade)];

    if (vio == 0) {
      ++out.tuples_clean;
    } else if (single && multi) {
      ++out.tuples_both;
    } else if (single) {
      ++out.tuples_single_only;
    } else {
      ++out.tuples_multi_only;
    }

    if (vio > 0) {
      sum_vio += vio;
      out.max_vio = std::max(out.max_vio, vio);
      out.min_vio_nonzero =
          out.min_vio_nonzero == 0 ? vio : std::min(out.min_vio_nonzero, vio);
    }

    for (size_t c = 0; c < ncols; ++c) {
      auto fit = cell_flags.find(cell_key(tid, c));
      CleanGrade cell_grade;
      if (fit != cell_flags.end() && fit->second.dirty) {
        cell_grade = fit->second.arguable_only ? CleanGrade::kArguablyClean
                                               : CleanGrade::kDirty;
      } else if (cell_verified.count(cell_key(tid, c)) > 0) {
        cell_grade = CleanGrade::kVerifiedClean;
      } else {
        cell_grade = CleanGrade::kProbablyClean;
      }
      ++out.attr_stats[c].counts[static_cast<size_t>(cell_grade)];
    }
  });

  out.total_vio = table.TotalVio();
  const size_t violating = table.NumViolatingTuples();
  out.avg_vio_violating =
      violating == 0 ? 0 : static_cast<double>(sum_vio) / static_cast<double>(violating);
  return out;
}

}  // namespace semandaq::audit
