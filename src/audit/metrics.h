#ifndef SEMANDAQ_AUDIT_METRICS_H_
#define SEMANDAQ_AUDIT_METRICS_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cfd/cfd.h"
#include "common/status.h"
#include "detect/violation.h"
#include "relational/relation.h"

namespace semandaq::audit {

/// The cleanliness grades of the paper's data quality report (§3), from
/// worst to best. The three "clean" grades nest: verified => probably =>
/// arguably; a tuple's grade is the strongest that applies.
enum class CleanGrade {
  kDirty = 0,
  /// Probably clean, OR in a multi-tuple violation where the bulk (strict
  /// majority) of the jointly violating tuples agree with it.
  kArguablyClean = 1,
  /// Violates no CFD.
  kProbablyClean = 2,
  /// Violates no CFD AND some constant-RHS CFD applies to and confirms it.
  kVerifiedClean = 3,
};

const char* CleanGradeToString(CleanGrade g);

/// Per-attribute cell-grade tallies (counts of live cells at each grade).
struct AttributeStats {
  std::array<int64_t, 4> counts = {0, 0, 0, 0};

  int64_t total() const { return counts[0] + counts[1] + counts[2] + counts[3]; }
  /// Cumulative shares, matching the paper's bar chart semantics
  /// (verified <= probably <= arguably since the grades nest).
  double pct_verified() const;
  double pct_probably() const;
  double pct_arguably() const;
};

/// Everything the data auditor derives from a detection pass (paper §2:
/// "vio(t) is enriched with statistical information w.r.t. the occurrences
/// of violations in the data, at both the tuple and the attribute level").
struct AuditOutcome {
  // Tuple level.
  std::unordered_map<relational::TupleId, CleanGrade> tuple_grades;
  size_t num_tuples = 0;
  std::array<int64_t, 4> tuple_counts = {0, 0, 0, 0};

  // Attribute-value level, indexed by column ordinal.
  std::vector<AttributeStats> attr_stats;

  // vio(t) distribution (over violating tuples).
  int64_t total_vio = 0;
  int64_t max_vio = 0;
  int64_t min_vio_nonzero = 0;
  double avg_vio_violating = 0;

  // Violation composition (the pie chart of Fig. 4).
  size_t tuples_clean = 0;
  size_t tuples_single_only = 0;
  size_t tuples_multi_only = 0;
  size_t tuples_both = 0;

  // Multi-tuple group statistics.
  size_t num_groups = 0;
  size_t max_group_size = 0;
  size_t min_group_size = 0;
  double avg_group_size = 0;

  CleanGrade GradeOf(relational::TupleId tid) const;
};

/// The data auditor: summarizes a detector's ViolationTable into the grades
/// and statistics above.
class DataAuditor {
 public:
  /// `cfds` are resolved internally against rel's schema; the relation and
  /// violation table must describe the same instance.
  DataAuditor(const relational::Relation* rel, std::vector<cfd::Cfd> cfds)
      : rel_(rel), cfds_(std::move(cfds)) {}

  common::Result<AuditOutcome> Audit(const detect::ViolationTable& table);

 private:
  const relational::Relation* rel_;
  std::vector<cfd::Cfd> cfds_;
};

}  // namespace semandaq::audit

#endif  // SEMANDAQ_AUDIT_METRICS_H_
