#include "audit/render.h"

#include <algorithm>
#include <sstream>

namespace semandaq::audit {

using relational::Row;
using relational::TupleId;

namespace {

char ShadeFor(int64_t vio) {
  if (vio <= 0) return ' ';
  if (vio == 1) return '.';
  if (vio == 2) return ':';
  if (vio <= 4) return '*';
  if (vio <= 8) return '#';
  return '@';
}

std::string Pad(const std::string& s, size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return s + std::string(width - s.size(), ' ');
}

}  // namespace

std::string AsciiRender::QualityMap(const relational::Relation& rel,
                                    const detect::ViolationTable& table,
                                    size_t max_rows) {
  std::ostringstream out;
  out << "Data quality map for '" << rel.name() << "' (" << table.Summary() << ")\n";
  out << "shade: ' '=0  '.'=1  ':'=2  '*'=3-4  '#'=5-8  '@'=9+\n";
  size_t shown = 0;
  rel.ForEach([&](TupleId tid, const Row& row) {
    if (shown >= max_rows) return;
    ++shown;
    const int64_t vio = table.vio(tid);
    out << "[" << ShadeFor(vio) << "] vio=" << vio << "  #" << tid << " ";
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += " | ";
      line += row[c].ToDisplayString();
    }
    out << line << "\n";
  });
  if (rel.size() > shown) {
    out << "... " << (rel.size() - shown) << " more tuple(s)\n";
  }
  return out.str();
}

std::string AsciiRender::BarChart(const QualityReport& report, size_t width) {
  std::ostringstream out;
  out << "Attribute cleanliness (cumulative %: V=verified  P=probably  A=arguably)\n";
  size_t name_width = 4;
  for (const auto& bar : report.bars) {
    name_width = std::max(name_width, bar.attribute.size());
  }
  for (const auto& bar : report.bars) {
    const size_t v = static_cast<size_t>(bar.pct_verified / 100.0 * width + 0.5);
    const size_t p = static_cast<size_t>(bar.pct_probably / 100.0 * width + 0.5);
    const size_t a = static_cast<size_t>(bar.pct_arguably / 100.0 * width + 0.5);
    std::string strip(width, ' ');
    for (size_t i = 0; i < width; ++i) {
      if (i < v) {
        strip[i] = 'V';
      } else if (i < p) {
        strip[i] = 'P';
      } else if (i < a) {
        strip[i] = 'A';
      }
    }
    char nums[64];
    std::snprintf(nums, sizeof(nums), " V=%5.1f%% P=%5.1f%% A=%5.1f%%",
                  bar.pct_verified, bar.pct_probably, bar.pct_arguably);
    out << Pad(bar.attribute, name_width) << " |" << strip << "|" << nums << "\n";
  }
  return out.str();
}

std::string AsciiRender::PieChart(const QualityReport& report) {
  std::ostringstream out;
  out << "Violation composition over " << report.num_tuples << " tuple(s):\n";
  for (const auto& slice : report.pie) {
    char line[128];
    std::snprintf(line, sizeof(line), "  %-18s %8zu  (%5.1f%%)\n", slice.label.c_str(),
                  slice.count, slice.pct);
    out << line;
  }
  return out.str();
}

std::string AsciiRender::Statistics(const QualityReport& report) {
  std::ostringstream out;
  out << "Violation statistics:\n";
  out << "  total vio            " << report.total_vio << "\n";
  out << "  max vio(t)           " << report.max_vio << "\n";
  out << "  min vio(t) (t dirty) " << report.min_vio_nonzero << "\n";
  char avg[64];
  std::snprintf(avg, sizeof(avg), "%.2f", report.avg_vio_violating);
  out << "  avg vio(t) (t dirty) " << avg << "\n";
  out << "  multi-tuple groups   " << report.num_groups << "\n";
  if (report.num_groups > 0) {
    char gavg[64];
    std::snprintf(gavg, sizeof(gavg), "%.2f", report.avg_group_size);
    out << "  group size min/avg/max  " << report.min_group_size << " / " << gavg
        << " / " << report.max_group_size << "\n";
  }
  out << "Tuple grades: verified=" << report.tuple_counts[3]
      << " probably=" << report.tuple_counts[2]
      << " arguably=" << report.tuple_counts[1] << " dirty=" << report.tuple_counts[0]
      << "\n";
  return out.str();
}

}  // namespace semandaq::audit
