#ifndef SEMANDAQ_AUDIT_RENDER_H_
#define SEMANDAQ_AUDIT_RENDER_H_

#include <string>

#include "audit/report.h"
#include "detect/violation.h"
#include "relational/relation.h"

namespace semandaq::audit {

/// Text renderers for the data explorer's visualizations. The web UI of the
/// paper shows these as colored tables and charts; the library renders the
/// same content as ASCII so the fig_* binaries can regenerate the figures.
class AsciiRender {
 public:
  /// The tuple-level data quality map of Fig. 3: one line per tuple, shaded
  /// by vio(t) ("the darker the color of a tuple is, the greater vio(t)
  /// is"). Shade ramp: ' ' 0, '.' 1, ':' 2, '*' 3-4, '#' 5-8, '@' 9+.
  static std::string QualityMap(const relational::Relation& rel,
                                const detect::ViolationTable& table,
                                size_t max_rows = 40);

  /// The per-attribute cumulative bar chart of Fig. 4.
  static std::string BarChart(const QualityReport& report, size_t width = 50);

  /// The violation-composition pie of Fig. 4, as a percentage table.
  static std::string PieChart(const QualityReport& report);

  /// The statistics block (max/min/avg vio, multi-tuple group stats).
  static std::string Statistics(const QualityReport& report);
};

}  // namespace semandaq::audit

#endif  // SEMANDAQ_AUDIT_RENDER_H_
