#include "audit/report.h"

#include "common/string_util.h"

namespace semandaq::audit {

QualityReport BuildQualityReport(const AuditOutcome& outcome,
                                 const relational::Schema& schema) {
  QualityReport report;
  report.num_tuples = outcome.num_tuples;
  report.total_vio = outcome.total_vio;
  report.max_vio = outcome.max_vio;
  report.min_vio_nonzero = outcome.min_vio_nonzero;
  report.avg_vio_violating = outcome.avg_vio_violating;
  report.num_groups = outcome.num_groups;
  report.max_group_size = outcome.max_group_size;
  report.min_group_size = outcome.min_group_size;
  report.avg_group_size = outcome.avg_group_size;
  report.tuple_counts = outcome.tuple_counts;

  for (size_t c = 0; c < outcome.attr_stats.size() && c < schema.size(); ++c) {
    QualityReport::AttributeBar bar;
    bar.attribute = schema.attr(c).name;
    bar.pct_verified = outcome.attr_stats[c].pct_verified();
    bar.pct_probably = outcome.attr_stats[c].pct_probably();
    bar.pct_arguably = outcome.attr_stats[c].pct_arguably();
    report.bars.push_back(std::move(bar));
  }

  auto add_slice = [&](const char* label, size_t count) {
    QualityReport::PieSlice slice;
    slice.label = label;
    slice.count = count;
    slice.pct = outcome.num_tuples == 0
                    ? 0
                    : 100.0 * static_cast<double>(count) /
                          static_cast<double>(outcome.num_tuples);
    report.pie.push_back(std::move(slice));
  };
  add_slice("no violation", outcome.tuples_clean);
  add_slice("single-tuple only", outcome.tuples_single_only);
  add_slice("multi-tuple only", outcome.tuples_multi_only);
  add_slice("single + multi", outcome.tuples_both);
  return report;
}

std::string QualityReport::BarsToCsv() const {
  std::string out = "attribute,pct_verified,pct_probably,pct_arguably\n";
  for (const AttributeBar& b : bars) {
    out += b.attribute + "," + common::FormatDouble(b.pct_verified) + "," +
           common::FormatDouble(b.pct_probably) + "," +
           common::FormatDouble(b.pct_arguably) + "\n";
  }
  return out;
}

}  // namespace semandaq::audit
