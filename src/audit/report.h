#ifndef SEMANDAQ_AUDIT_REPORT_H_
#define SEMANDAQ_AUDIT_REPORT_H_

#include <string>
#include <vector>

#include "audit/metrics.h"
#include "relational/schema.h"

namespace semandaq::audit {

/// The data quality report of the paper's Fig. 4: a bar chart of cumulative
/// clean percentages per attribute, a pie chart of violation composition,
/// and summary statistics. This is a plain data object; rendering lives in
/// audit/render.h.
struct QualityReport {
  struct AttributeBar {
    std::string attribute;
    double pct_verified = 0;
    double pct_probably = 0;
    double pct_arguably = 0;
  };
  std::vector<AttributeBar> bars;

  struct PieSlice {
    std::string label;
    size_t count = 0;
    double pct = 0;
  };
  std::vector<PieSlice> pie;

  size_t num_tuples = 0;
  int64_t total_vio = 0;
  int64_t max_vio = 0;
  int64_t min_vio_nonzero = 0;
  double avg_vio_violating = 0;
  size_t num_groups = 0;
  size_t max_group_size = 0;
  size_t min_group_size = 0;
  double avg_group_size = 0;

  /// Tuple-level grade tallies, index = CleanGrade.
  std::array<int64_t, 4> tuple_counts = {0, 0, 0, 0};

  /// CSV with one row per attribute bar (for plotting outside the system).
  std::string BarsToCsv() const;
};

/// Assembles the report from an audit outcome.
QualityReport BuildQualityReport(const AuditOutcome& outcome,
                                 const relational::Schema& schema);

}  // namespace semandaq::audit

#endif  // SEMANDAQ_AUDIT_REPORT_H_
