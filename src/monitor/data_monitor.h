#ifndef SEMANDAQ_MONITOR_DATA_MONITOR_H_
#define SEMANDAQ_MONITOR_DATA_MONITOR_H_

#include <memory>
#include <vector>

#include "cfd/cfd.h"
#include "common/status.h"
#include "detect/incremental_detector.h"
#include "relational/relation.h"
#include "relational/update.h"
#include "repair/batch_repair.h"
#include "repair/cost_model.h"
#include "repair/inc_repair.h"

namespace semandaq::monitor {

/// What the monitor did with one update batch.
struct MonitorReport {
  /// Violations after the batch (and after repairs, in repair mode).
  size_t violating_tuples = 0;
  int64_t total_vio = 0;

  /// Repairs applied to the delta (repair mode only).
  std::vector<repair::CellChange> repairs_applied;

  /// Tuple ids the batch inserted.
  std::vector<relational::TupleId> inserted;
};

/// The data monitor of the paper (§2): "responds to updates on the data by
/// (1) invoking an incremental detection module ... if the database has not
/// been cleansed; or (2) invoking an incremental repair module ...
/// otherwise."
///
/// Mode (1) runs the incremental detector over the live relation; mode (2)
/// runs the stateful IncRepairEngine, which applies each batch and repairs
/// the delta in place in O(|Δ|). Switching to mode (2) (MarkCleansed) pays
/// one state-rebuild pass on the next update.
class DataMonitor {
 public:
  /// The relation must outlive the monitor; all mutations must go through
  /// OnUpdate so detector state stays in sync.
  DataMonitor(relational::Relation* rel, std::vector<cfd::Cfd> cfds,
              repair::CostModel cost_model, repair::RepairOptions repair_options = {});

  /// Builds detector state. Call once.
  common::Status Start();

  /// Declares the database cleansed: subsequent updates are incrementally
  /// repaired rather than merely flagged.
  void MarkCleansed() { cleansed_ = true; }
  bool cleansed() const { return cleansed_; }

  /// Routes one update batch per the paper's mode rules.
  common::Result<MonitorReport> OnUpdate(const relational::UpdateBatch& batch);

  /// Current violations (snapshot of the incremental detector).
  detect::ViolationTable Violations() const;

 private:
  relational::Relation* rel_;
  std::vector<cfd::Cfd> cfds_;
  repair::CostModel cost_model_;
  repair::RepairOptions repair_options_;
  std::unique_ptr<detect::IncrementalDetector> detector_;  // mode (1)
  std::unique_ptr<repair::IncRepairEngine> engine_;        // mode (2)
  bool cleansed_ = false;
};

}  // namespace semandaq::monitor

#endif  // SEMANDAQ_MONITOR_DATA_MONITOR_H_
