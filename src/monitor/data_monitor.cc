#include "monitor/data_monitor.h"

namespace semandaq::monitor {

using common::Status;
using relational::TupleId;
using relational::Update;
using relational::UpdateBatch;

DataMonitor::DataMonitor(relational::Relation* rel, std::vector<cfd::Cfd> cfds,
                         repair::CostModel cost_model,
                         repair::RepairOptions repair_options)
    : rel_(rel),
      cfds_(std::move(cfds)),
      cost_model_(std::move(cost_model)),
      repair_options_(std::move(repair_options)) {}

common::Status DataMonitor::Start() {
  detector_ = std::make_unique<detect::IncrementalDetector>(rel_, cfds_);
  return detector_->Initialize();
}

common::Result<MonitorReport> DataMonitor::OnUpdate(const UpdateBatch& batch) {
  if (detector_ == nullptr && engine_ == nullptr) {
    return Status::FailedPrecondition("DataMonitor::Start was not called");
  }
  MonitorReport report;

  if (!cleansed_) {
    // Mode (1): incremental detection only.
    SEMANDAQ_RETURN_IF_ERROR(detector_->ApplyAndDetect(batch, &report.inserted));
    const detect::ViolationTable table = detector_->Snapshot();
    report.violating_tuples = table.NumViolatingTuples();
    report.total_vio = table.TotalVio();
    return report;
  }

  // Mode (2): incremental repair. The engine owns its own detector state;
  // build it on the first cleansed-mode update (one O(|D|) pass) and retire
  // the detection-only state.
  if (engine_ == nullptr) {
    engine_ = std::make_unique<repair::IncRepairEngine>(rel_, cfds_, cost_model_,
                                                        repair_options_);
    SEMANDAQ_RETURN_IF_ERROR(engine_->Start());
    detector_.reset();
  }
  const TupleId bound_before = rel_->IdBound();
  SEMANDAQ_ASSIGN_OR_RETURN(repair::IncBatchResult fixed,
                            engine_->ApplyAndRepair(batch));
  for (TupleId tid : fixed.delta_tids) {
    if (tid >= bound_before) report.inserted.push_back(tid);
  }
  report.repairs_applied = std::move(fixed.changes);

  const detect::ViolationTable table = engine_->detector()->Snapshot();
  report.violating_tuples = table.NumViolatingTuples();
  report.total_vio = table.TotalVio();
  return report;
}

detect::ViolationTable DataMonitor::Violations() const {
  if (engine_ != nullptr) {
    // The engine's detector tracks the live relation in repair mode.
    return const_cast<repair::IncRepairEngine*>(engine_.get())
        ->detector()
        ->Snapshot();
  }
  if (detector_ == nullptr) return detect::ViolationTable{};
  return detector_->Snapshot();
}

}  // namespace semandaq::monitor
