#include "discovery/partition.h"

#include <unordered_map>

#include "common/hash.h"

namespace semandaq::discovery {

using relational::Row;
using relational::RowEq;
using relational::RowHash;
using relational::TupleId;

Partition Partition::Build(const relational::Relation& rel,
                           const std::vector<size_t>& cols) {
  Partition p;
  p.class_of_.assign(static_cast<size_t>(rel.IdBound()), -1);
  std::unordered_map<Row, int32_t, RowHash, RowEq> ids;
  std::vector<std::vector<TupleId>> members;
  rel.ForEach([&](TupleId tid, const Row& row) {
    Row key;
    key.reserve(cols.size());
    for (size_t c : cols) {
      if (row[c].is_null()) return;  // NULL excluded from partitions
      key.push_back(row[c]);
    }
    auto [it, fresh] = ids.emplace(std::move(key), static_cast<int32_t>(ids.size()));
    if (fresh) members.emplace_back();
    members[static_cast<size_t>(it->second)].push_back(tid);
    p.class_of_[static_cast<size_t>(tid)] = it->second;
    ++p.covered_;
  });
  p.num_classes_ = ids.size();
  // Strip singletons but keep ids dense within classes_ (class ids in
  // class_of_ index the *original* numbering; classes_ holds only the
  // non-singleton ones, order preserved).
  for (auto& m : members) {
    if (m.size() >= 2) p.classes_.push_back(std::move(m));
  }
  return p;
}

Partition Partition::Build(const relational::EncodedRelation& enc,
                           const std::vector<size_t>& cols) {
  using relational::Code;
  using relational::kNullCode;

  Partition p;
  const size_t bound = static_cast<size_t>(enc.IdBound());
  p.class_of_.assign(bound, -1);
  std::vector<std::vector<TupleId>> members;

  // Class ids are issued densely in first-touch order, so a fresh id is
  // always exactly members.size().
  auto place = [&](TupleId tid, int32_t cid) {
    if (static_cast<size_t>(cid) == members.size()) members.emplace_back();
    members[static_cast<size_t>(cid)].push_back(tid);
    p.class_of_[static_cast<size_t>(tid)] = cid;
    ++p.covered_;
  };

  if (cols.size() == 1) {
    // Codes are dense 1..|dict|: the class of a tuple is a direct array
    // lookup, with ids renumbered in first-touch order to stay structurally
    // identical to the hash build.
    const std::vector<Code>& codes = enc.column(cols[0]);
    std::vector<int32_t> class_of_code(enc.dictionary(cols[0]).size() + 1, -1);
    int32_t next = 0;
    enc.ForEachLive([&](TupleId tid) {
      const Code c = codes[static_cast<size_t>(tid)];
      if (c == kNullCode) return;  // NULL excluded from partitions
      int32_t& cid = class_of_code[c];
      if (cid < 0) cid = next++;
      place(tid, cid);
    });
    p.num_classes_ = static_cast<size_t>(next);
  } else if (cols.size() == 2) {
    const std::vector<Code>& ca = enc.column(cols[0]);
    const std::vector<Code>& cb = enc.column(cols[1]);
    std::unordered_map<uint64_t, int32_t> ids;
    enc.ForEachLive([&](TupleId tid) {
      const size_t i = static_cast<size_t>(tid);
      if (ca[i] == kNullCode || cb[i] == kNullCode) return;
      auto [it, fresh] = ids.emplace(relational::PackCodes(ca[i], cb[i]),
                                     static_cast<int32_t>(ids.size()));
      place(tid, it->second);
    });
    p.num_classes_ = ids.size();
  } else {
    std::vector<const Code*> ptrs;
    ptrs.reserve(cols.size());
    for (size_t c : cols) ptrs.push_back(enc.column(c).data());
    std::unordered_map<std::vector<Code>, int32_t, relational::CodeVecHash> ids;
    std::vector<Code> key(cols.size());
    enc.ForEachLive([&](TupleId tid) {
      const size_t i = static_cast<size_t>(tid);
      for (size_t k = 0; k < ptrs.size(); ++k) {
        key[k] = ptrs[k][i];
        if (key[k] == kNullCode) return;
      }
      auto [it, fresh] = ids.emplace(key, static_cast<int32_t>(ids.size()));
      place(tid, it->second);
    });
    p.num_classes_ = ids.size();
  }

  for (auto& m : members) {
    if (m.size() >= 2) p.classes_.push_back(std::move(m));
  }
  return p;
}

Partition Partition::Intersect(const Partition& a, const Partition& b) {
  Partition p;
  const size_t bound = std::max(a.class_of_.size(), b.class_of_.size());
  p.class_of_.assign(bound, -1);
  std::unordered_map<uint64_t, int32_t> ids;
  std::vector<std::vector<TupleId>> members;
  for (size_t i = 0; i < bound; ++i) {
    const int32_t ca = i < a.class_of_.size() ? a.class_of_[i] : -1;
    const int32_t cb = i < b.class_of_.size() ? b.class_of_[i] : -1;
    if (ca < 0 || cb < 0) continue;
    const uint64_t key =
        (static_cast<uint64_t>(static_cast<uint32_t>(ca)) << 32) |
        static_cast<uint32_t>(cb);
    auto [it, fresh] = ids.emplace(key, static_cast<int32_t>(ids.size()));
    if (fresh) members.emplace_back();
    members[static_cast<size_t>(it->second)].push_back(static_cast<TupleId>(i));
    p.class_of_[i] = it->second;
    ++p.covered_;
  }
  p.num_classes_ = ids.size();
  for (auto& m : members) {
    if (m.size() >= 2) p.classes_.push_back(std::move(m));
  }
  return p;
}

bool Partition::Refines(const Partition& other) const {
  // Every non-singleton class must sit inside one class of `other`;
  // singleton classes refine trivially. Tuples `other` does not cover
  // (NULL in its attributes) cannot witness a difference and are skipped.
  for (const auto& cls : classes_) {
    int32_t target = -1;
    for (TupleId tid : cls) {
      const int32_t c = other.ClassOf(tid);
      if (c < 0) continue;
      if (target < 0) {
        target = c;
      } else if (c != target) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace semandaq::discovery
