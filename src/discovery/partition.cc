#include "discovery/partition.h"

#include <unordered_map>

#include "common/hash.h"

namespace semandaq::discovery {

using relational::Row;
using relational::RowEq;
using relational::RowHash;
using relational::TupleId;

Partition Partition::Build(const relational::Relation& rel,
                           const std::vector<size_t>& cols) {
  Partition p;
  p.class_of_.assign(static_cast<size_t>(rel.IdBound()), -1);
  std::unordered_map<Row, int32_t, RowHash, RowEq> ids;
  std::vector<std::vector<TupleId>> members;
  rel.ForEach([&](TupleId tid, const Row& row) {
    Row key;
    key.reserve(cols.size());
    for (size_t c : cols) {
      if (row[c].is_null()) return;  // NULL excluded from partitions
      key.push_back(row[c]);
    }
    auto [it, fresh] = ids.emplace(std::move(key), static_cast<int32_t>(ids.size()));
    if (fresh) members.emplace_back();
    members[static_cast<size_t>(it->second)].push_back(tid);
    p.class_of_[static_cast<size_t>(tid)] = it->second;
    ++p.covered_;
  });
  p.num_classes_ = ids.size();
  // Strip singletons but keep ids dense within classes_ (class ids in
  // class_of_ index the *original* numbering; classes_ holds only the
  // non-singleton ones, order preserved).
  for (auto& m : members) {
    if (m.size() >= 2) p.classes_.push_back(std::move(m));
  }
  return p;
}

Partition Partition::Build(const relational::EncodedRelation& enc,
                           const std::vector<size_t>& cols,
                           common::simd::Level level) {
  using relational::Code;
  using relational::kNullCode;
  namespace simd = common::simd;

  Partition p;
  const size_t bound = static_cast<size_t>(enc.IdBound());
  p.class_of_.assign(bound, -1);
  std::vector<std::vector<TupleId>> members;

  // Class ids are issued densely in first-touch order, so a fresh id is
  // always exactly members.size().
  auto place = [&](TupleId tid, int32_t cid) {
    if (static_cast<size_t>(cid) == members.size()) members.emplace_back();
    members[static_cast<size_t>(cid)].push_back(tid);
    p.class_of_[static_cast<size_t>(tid)] = cid;
    ++p.covered_;
  };

  // The refinement pass runs in kernel blocks: MaskLive fuses the liveness
  // filter with the per-column non-NULL test into one bitmap per block, and
  // PackKeys2x32 pre-packs the two-column group keys — the scalar loop that
  // remains is pure first-touch class placement over the surviving bits.
  const simd::Kernels& kn = simd::KernelsFor(level);
  const uint8_t* live = enc.relation().live_data();
  constexpr size_t kBlock = 4096;
  std::vector<uint64_t> elig(simd::MaskWords(kBlock));
  std::vector<const Code*> colptrs(cols.size());
  for (size_t k = 0; k < cols.size(); ++k) {
    colptrs[k] = enc.column(cols[k]).data();
  }

  auto for_each_eligible = [&](const auto& fn) {
    std::vector<const Code*> block_ptrs(cols.size());
    for (size_t lo = 0; lo < bound; lo += kBlock) {
      const size_t n = std::min(kBlock, bound - lo);
      for (size_t k = 0; k < cols.size(); ++k) {
        block_ptrs[k] = colptrs[k] + lo;
      }
      if (kn.MaskLive(live + lo, block_ptrs.data(), cols.size(), kNullCode,
                      n, elig.data()) == 0) {
        continue;
      }
      fn(lo, n);
    }
  };

  if (cols.size() == 1) {
    // Codes are dense 1..|dict|: the class of a tuple is a direct array
    // lookup, with ids renumbered in first-touch order to stay structurally
    // identical to the hash build.
    const Code* codes = colptrs[0];
    std::vector<int32_t> class_of_code(enc.dictionary(cols[0]).size() + 1, -1);
    int32_t next = 0;
    for_each_eligible([&](size_t lo, size_t n) {
      simd::ForEachSetBit(elig.data(), simd::MaskWords(n), [&](size_t i) {
        int32_t& cid = class_of_code[codes[lo + i]];
        if (cid < 0) cid = next++;
        place(static_cast<TupleId>(lo + i), cid);
      });
    });
    p.num_classes_ = static_cast<size_t>(next);
  } else if (cols.size() == 2) {
    std::vector<uint64_t> packed(kBlock);
    std::unordered_map<uint64_t, int32_t> ids;
    for_each_eligible([&](size_t lo, size_t n) {
      kn.PackKeys2x32(colptrs[0] + lo, colptrs[1] + lo, n, packed.data());
      simd::ForEachSetBit(elig.data(), simd::MaskWords(n), [&](size_t i) {
        auto [it, fresh] =
            ids.emplace(packed[i], static_cast<int32_t>(ids.size()));
        place(static_cast<TupleId>(lo + i), it->second);
      });
    });
    p.num_classes_ = ids.size();
  } else {
    std::unordered_map<std::vector<Code>, int32_t, relational::CodeVecHash> ids;
    std::vector<Code> key(cols.size());
    for_each_eligible([&](size_t lo, size_t n) {
      simd::ForEachSetBit(elig.data(), simd::MaskWords(n), [&](size_t i) {
        for (size_t k = 0; k < cols.size(); ++k) key[k] = colptrs[k][lo + i];
        auto [it, fresh] = ids.emplace(key, static_cast<int32_t>(ids.size()));
        place(static_cast<TupleId>(lo + i), it->second);
      });
    });
    p.num_classes_ = ids.size();
  }

  for (auto& m : members) {
    if (m.size() >= 2) p.classes_.push_back(std::move(m));
  }
  return p;
}

Partition Partition::Intersect(const Partition& a, const Partition& b) {
  Partition p;
  const size_t bound = std::max(a.class_of_.size(), b.class_of_.size());
  p.class_of_.assign(bound, -1);
  std::unordered_map<uint64_t, int32_t> ids;
  std::vector<std::vector<TupleId>> members;
  for (size_t i = 0; i < bound; ++i) {
    const int32_t ca = i < a.class_of_.size() ? a.class_of_[i] : -1;
    const int32_t cb = i < b.class_of_.size() ? b.class_of_[i] : -1;
    if (ca < 0 || cb < 0) continue;
    const uint64_t key =
        (static_cast<uint64_t>(static_cast<uint32_t>(ca)) << 32) |
        static_cast<uint32_t>(cb);
    auto [it, fresh] = ids.emplace(key, static_cast<int32_t>(ids.size()));
    if (fresh) members.emplace_back();
    members[static_cast<size_t>(it->second)].push_back(static_cast<TupleId>(i));
    p.class_of_[i] = it->second;
    ++p.covered_;
  }
  p.num_classes_ = ids.size();
  for (auto& m : members) {
    if (m.size() >= 2) p.classes_.push_back(std::move(m));
  }
  return p;
}

bool Partition::Refines(const Partition& other) const {
  // Every non-singleton class must sit inside one class of `other`;
  // singleton classes refine trivially. Tuples `other` does not cover
  // (NULL in its attributes) cannot witness a difference and are skipped.
  for (const auto& cls : classes_) {
    int32_t target = -1;
    for (TupleId tid : cls) {
      const int32_t c = other.ClassOf(tid);
      if (c < 0) continue;
      if (target < 0) {
        target = c;
      } else if (c != target) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace semandaq::discovery
