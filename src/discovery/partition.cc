#include "discovery/partition.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/thread_pool.h"

namespace semandaq::discovery {

using relational::Row;
using relational::RowEq;
using relational::RowHash;
using relational::TupleId;

Partition Partition::Build(const relational::Relation& rel,
                           const std::vector<size_t>& cols) {
  Partition p;
  p.class_of_.assign(static_cast<size_t>(rel.IdBound()), -1);
  std::unordered_map<Row, int32_t, RowHash, RowEq> ids;
  std::vector<std::vector<TupleId>> members;
  rel.ForEach([&](TupleId tid, const Row& row) {
    Row key;
    key.reserve(cols.size());
    for (size_t c : cols) {
      if (row[c].is_null()) return;  // NULL excluded from partitions
      key.push_back(row[c]);
    }
    auto [it, fresh] = ids.emplace(std::move(key), static_cast<int32_t>(ids.size()));
    if (fresh) members.emplace_back();
    members[static_cast<size_t>(it->second)].push_back(tid);
    p.class_of_[static_cast<size_t>(tid)] = it->second;
    ++p.covered_;
  });
  p.num_classes_ = ids.size();
  // Strip singletons but keep ids dense within classes_ (class ids in
  // class_of_ index the *original* numbering; classes_ holds only the
  // non-singleton ones, order preserved).
  for (auto& m : members) {
    if (m.size() >= 2) p.classes_.push_back(std::move(m));
  }
  return p;
}

Partition Partition::Build(const relational::EncodedRelation& enc,
                           const std::vector<size_t>& cols,
                           common::simd::Level level) {
  using relational::Code;
  using relational::kNullCode;
  namespace simd = common::simd;

  Partition p;
  const size_t bound = static_cast<size_t>(enc.IdBound());
  p.class_of_.assign(bound, -1);
  std::vector<std::vector<TupleId>> members;

  // Class ids are issued densely in first-touch order, so a fresh id is
  // always exactly members.size().
  auto place = [&](TupleId tid, int32_t cid) {
    if (static_cast<size_t>(cid) == members.size()) members.emplace_back();
    members[static_cast<size_t>(cid)].push_back(tid);
    p.class_of_[static_cast<size_t>(tid)] = cid;
    ++p.covered_;
  };

  // The refinement pass runs in kernel blocks: MaskLive fuses the liveness
  // filter with the per-column non-NULL test into one bitmap per block, and
  // PackKeys2x32 pre-packs the two-column group keys — the scalar loop that
  // remains is pure first-touch class placement over the surviving bits.
  const simd::Kernels& kn = simd::KernelsFor(level);
  const uint8_t* live = enc.relation().live_data();
  constexpr size_t kBlock = 4096;
  std::vector<uint64_t> elig(simd::MaskWords(kBlock));
  std::vector<const Code*> colptrs(cols.size());
  for (size_t k = 0; k < cols.size(); ++k) {
    colptrs[k] = enc.column(cols[k]).data();
  }

  auto for_each_eligible = [&](const auto& fn) {
    std::vector<const Code*> block_ptrs(cols.size());
    for (size_t lo = 0; lo < bound; lo += kBlock) {
      const size_t n = std::min(kBlock, bound - lo);
      for (size_t k = 0; k < cols.size(); ++k) {
        block_ptrs[k] = colptrs[k] + lo;
      }
      if (kn.MaskLive(live + lo, block_ptrs.data(), cols.size(), kNullCode,
                      n, elig.data()) == 0) {
        continue;
      }
      fn(lo, n);
    }
  };

  if (cols.size() == 1) {
    // Codes are dense 1..|dict|: the class of a tuple is a direct array
    // lookup, with ids renumbered in first-touch order to stay structurally
    // identical to the hash build.
    const Code* codes = colptrs[0];
    std::vector<int32_t> class_of_code(enc.dictionary(cols[0]).size() + 1, -1);
    int32_t next = 0;
    for_each_eligible([&](size_t lo, size_t n) {
      simd::ForEachSetBit(elig.data(), simd::MaskWords(n), [&](size_t i) {
        int32_t& cid = class_of_code[codes[lo + i]];
        if (cid < 0) cid = next++;
        place(static_cast<TupleId>(lo + i), cid);
      });
    });
    p.num_classes_ = static_cast<size_t>(next);
  } else if (cols.size() == 2) {
    std::vector<uint64_t> packed(kBlock);
    std::unordered_map<uint64_t, int32_t> ids;
    for_each_eligible([&](size_t lo, size_t n) {
      kn.PackKeys2x32(colptrs[0] + lo, colptrs[1] + lo, n, packed.data());
      simd::ForEachSetBit(elig.data(), simd::MaskWords(n), [&](size_t i) {
        auto [it, fresh] =
            ids.emplace(packed[i], static_cast<int32_t>(ids.size()));
        place(static_cast<TupleId>(lo + i), it->second);
      });
    });
    p.num_classes_ = ids.size();
  } else {
    std::unordered_map<std::vector<Code>, int32_t, relational::CodeVecHash> ids;
    std::vector<Code> key(cols.size());
    for_each_eligible([&](size_t lo, size_t n) {
      simd::ForEachSetBit(elig.data(), simd::MaskWords(n), [&](size_t i) {
        for (size_t k = 0; k < cols.size(); ++k) key[k] = colptrs[k][lo + i];
        auto [it, fresh] = ids.emplace(key, static_cast<int32_t>(ids.size()));
        place(static_cast<TupleId>(lo + i), it->second);
      });
    });
    p.num_classes_ = ids.size();
  }

  for (auto& m : members) {
    if (m.size() >= 2) p.classes_.push_back(std::move(m));
  }
  return p;
}

Partition Partition::Intersect(const Partition& a, const Partition& b,
                               common::simd::Level level) {
  namespace simd = common::simd;
  Partition p;
  const size_t bound = std::max(a.class_of_.size(), b.class_of_.size());
  p.class_of_.assign(bound, -1);
  std::unordered_map<uint64_t, int32_t> ids;
  std::vector<std::vector<TupleId>> members;

  // Beyond the shorter class_of_ array one side is uncovered, so only the
  // common prefix can contribute. The probe loop runs in kernel blocks:
  // the int32 class ids reinterpret as uint32 columns (-1 = 0xFFFFFFFF),
  // MaskNeAnd32 drops the not-covered tuples of either side, and
  // PackKeys2x32 packs the surviving (class_a, class_b) pairs into the
  // same 64-bit keys the scalar loop built — first-touch class ids over
  // the ascending bit order make every tier's result identical.
  const size_t common_bound = std::min(a.class_of_.size(), b.class_of_.size());
  const auto* ca = reinterpret_cast<const uint32_t*>(a.class_of_.data());
  const auto* cb = reinterpret_cast<const uint32_t*>(b.class_of_.data());
  constexpr uint32_t kNotCovered = 0xFFFFFFFFu;  // bit pattern of int32 -1
  constexpr size_t kBlock = 4096;
  const simd::Kernels& kn = simd::KernelsFor(level);
  std::vector<uint64_t> mask(simd::MaskWords(kBlock));
  std::vector<uint64_t> packed(kBlock);
  for (size_t lo = 0; lo < common_bound; lo += kBlock) {
    const size_t n = std::min(kBlock, common_bound - lo);
    const size_t nwords = simd::MaskWords(n);
    std::fill(mask.begin(), mask.begin() + nwords, ~uint64_t{0});
    if (n % 64 != 0) mask[nwords - 1] = ~uint64_t{0} >> (64 - n % 64);
    kn.MaskNeAnd32(ca + lo, n, kNotCovered, mask.data());
    kn.MaskNeAnd32(cb + lo, n, kNotCovered, mask.data());
    kn.PackKeys2x32(ca + lo, cb + lo, n, packed.data());
    simd::ForEachSetBit(mask.data(), nwords, [&](size_t i) {
      auto [it, fresh] =
          ids.emplace(packed[i], static_cast<int32_t>(ids.size()));
      if (fresh) members.emplace_back();
      members[static_cast<size_t>(it->second)].push_back(
          static_cast<TupleId>(lo + i));
      p.class_of_[lo + i] = it->second;
      ++p.covered_;
    });
  }
  p.num_classes_ = ids.size();
  for (auto& m : members) {
    if (m.size() >= 2) p.classes_.push_back(std::move(m));
  }
  return p;
}

namespace {

/// Releases a PartitionCache build claim on scope exit — also on unwind,
/// so a throwing build (OOM) cannot leave waiters parked forever.
template <typename Set, typename Key>
class ClaimGuard {
 public:
  ClaimGuard(std::mutex* mu, std::condition_variable* cv, Set* set, Key key)
      : mu_(mu), cv_(cv), set_(set), key_(std::move(key)) {}
  ~ClaimGuard() {
    std::lock_guard<std::mutex> lock(*mu_);
    set_->erase(key_);
    cv_->notify_all();
  }
  ClaimGuard(const ClaimGuard&) = delete;
  ClaimGuard& operator=(const ClaimGuard&) = delete;

 private:
  std::mutex* mu_;
  std::condition_variable* cv_;
  Set* set_;
  Key key_;
};

}  // namespace

const Partition& PartitionCache::Get(const std::vector<size_t>& cols) {
  // Builds run outside the lock; the building_* sets claim a key so that
  // concurrent lanes wanting the same set wait for the one builder
  // instead of redoing the work (same-level candidates always share
  // products, so the stampede would be the common case, not a rare
  // race). Waits cannot cycle: a build only recurses into strict subsets.
  if (cols.size() <= 1) {
    const size_t col = cols.empty() ? SIZE_MAX : cols[0];
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (true) {
        auto it = bases_.find(col);
        if (it != bases_.end()) return it->second;
        if (building_bases_.count(col) == 0) {
          building_bases_.insert(col);
          break;
        }
        built_cv_.wait(lock);
      }
    }
    ClaimGuard<std::set<size_t>, size_t> guard(&mu_, &built_cv_,
                                               &building_bases_, col);
    Partition p = enc_ != nullptr ? Partition::Build(*enc_, cols, level_)
                                  : Partition::Build(*rel_, cols);
    std::lock_guard<std::mutex> lock(mu_);
    return bases_.try_emplace(col, std::move(p)).first->second;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      if (auto it = cur_.find(cols); it != cur_.end()) return it->second;
      if (auto it = prev_.find(cols); it != prev_.end()) return it->second;
      if (building_.count(cols) == 0) {
        building_.insert(cols);
        break;
      }
      built_cv_.wait(lock);
    }
  }
  ClaimGuard<std::set<std::vector<size_t>>, std::vector<size_t>> guard(
      &mu_, &built_cv_, &building_, cols);
  std::vector<size_t> prefix(cols.begin(), cols.end() - 1);
  const Partition& pa = Get(prefix);
  const Partition& pb = Get({cols.back()});
  Partition p = Partition::Intersect(pa, pb, level_);
  std::lock_guard<std::mutex> lock(mu_);
  ++builds_;
  return cur_.try_emplace(cols, std::move(p)).first->second;
}

void PartitionCache::BuildBases(size_t ncols, common::ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() <= 1 || ncols == 0) {
    for (size_t c = 0; c < ncols; ++c) Get({c});
    return;
  }
  if (rel_ != nullptr) rel_->EnsureHydrated();  // hydration is not thread-safe
  pool->Run(ncols, [this](size_t c) { Get({c}); });
}

void PartitionCache::Rotate() {
  prev_ = std::move(cur_);
  cur_.clear();
}

bool Partition::Refines(const Partition& other) const {
  // Every non-singleton class must sit inside one class of `other`;
  // singleton classes refine trivially. Tuples `other` does not cover
  // (NULL in its attributes) cannot witness a difference and are skipped.
  for (const auto& cls : classes_) {
    int32_t target = -1;
    for (TupleId tid : cls) {
      const int32_t c = other.ClassOf(tid);
      if (c < 0) continue;
      if (target < 0) {
        target = c;
      } else if (c != target) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace semandaq::discovery
