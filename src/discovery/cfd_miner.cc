#include "discovery/cfd_miner.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/thread_pool.h"
#include "discovery/fd_miner.h"
#include "discovery/partition.h"
#include "relational/encoded_relation.h"

namespace semandaq::discovery {

namespace {

namespace simd = common::simd;

using cfd::Cfd;
using cfd::PatternTuple;
using cfd::PatternValue;
using relational::Code;
using relational::kNullCode;
using relational::Row;
using relational::TupleId;
using relational::Value;

void ForEachSubset(size_t n, size_t k,
                   const std::function<void(const std::vector<size_t>&)>& fn) {
  if (k > n) return;
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    fn(idx);
    size_t i = k;
    bool advanced = false;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced) return;
  }
}

/// Is attribute `rhs` constant (and non-null) over the given tuples?
/// When yes, the shared value lands in *value.
bool ConstantOn(const relational::Relation& rel, const std::vector<TupleId>& tids,
                size_t rhs, Value* value) {
  bool first = true;
  for (TupleId tid : tids) {
    const Value& v = rel.cell(tid, rhs);
    if (v.is_null()) return false;
    if (first) {
      *value = v;
      first = false;
    } else if (!(v == *value)) {
      return false;
    }
  }
  return !first;
}

/// Gather block size for the evidence scans: big enough to amortize the
/// kernel dispatch, small enough that a candidate failing on its first
/// tuples stops after one block (the scalar walk's first-conflict early
/// exit, recovered at block granularity).
constexpr size_t kGatherBlock = 1024;

/// Code-space twin of ConstantOn, in kernel blocks: the class members' RHS
/// codes gather blockwise into a dense scratch array and a CountEq32 pass
/// per block decides "all equal to the first code" (which also rejects
/// NULLs, since the first code must be non-NULL itself); the first
/// disagreeing block exits.
bool ConstantOnEncoded(const relational::EncodedRelation& enc,
                       const simd::Kernels& kn,
                       const std::vector<TupleId>& tids, size_t rhs,
                       Value* value, std::vector<Code>* scratch) {
  const relational::CodeColumn& codes = enc.column(rhs);
  const size_t n = tids.size();
  if (n == 0) return false;
  const Code shared = codes[static_cast<size_t>(tids[0])];
  if (shared == kNullCode) return false;
  scratch->resize(std::min(n, kGatherBlock));
  Code* buf = scratch->data();
  for (size_t lo = 0; lo < n; lo += kGatherBlock) {
    const size_t m = std::min(kGatherBlock, n - lo);
    for (size_t i = 0; i < m; ++i) {
      buf[i] = codes[static_cast<size_t>(tids[lo + i])];
    }
    if (kn.CountEq32(buf, m, shared) != m) return false;
  }
  *value = enc.Decode(rhs, shared);
  return true;
}

/// Reused gather/mask buffers for one candidate task's evidence scans.
struct EvidenceScratch {
  std::vector<std::vector<Code>> lhs_cols;  // gathered LHS code columns
  std::vector<Code> rhs;                    // gathered RHS codes
  std::vector<Code> constant;               // ConstantOnEncoded's buffer
  std::vector<uint64_t> mask;
  std::vector<uint64_t> packed;
};

/// Does X -> A hold within the conditioning class `cls`, and over how much
/// evidence (tuples in X-groups of size >= 2)? The encoded variable-CFD
/// scan: class members' X and A codes gather into dense scratch columns,
/// MaskNeAnd32 builds the non-NULL eligibility mask, and for |X| == 2
/// PackKeys2x32 pre-packs the group keys so the hash grouping runs on one
/// uint64 per tuple. Identical outcome to the scalar tuple walk: the walk
/// breaks at the first RHS conflict, but (holds, evidence) — the only
/// outputs — do not depend on where the conflict was seen, and evidence is
/// only consumed when no conflict exists at all.
void VariableEvidenceEncoded(const relational::EncodedRelation& enc,
                             const simd::Kernels& kn,
                             const std::vector<TupleId>& cls,
                             const std::vector<size_t>& lhs, size_t rhs,
                             EvidenceScratch* s, bool* holds,
                             size_t* evidence) {
  const size_t n = cls.size();
  const size_t nlhs = lhs.size();
  *holds = true;
  *evidence = 0;
  if (n == 0) return;

  const size_t block = std::min(n, kGatherBlock);
  if (s->lhs_cols.size() < nlhs) s->lhs_cols.resize(nlhs);
  for (size_t k = 0; k < nlhs; ++k) s->lhs_cols[k].resize(block);
  s->rhs.resize(block);
  s->mask.resize(simd::MaskWords(block));
  if (nlhs == 2) s->packed.resize(block);
  const relational::CodeColumn& rhs_col = enc.column(rhs);

  std::unordered_map<uint64_t, std::pair<Code, int>> groups2;
  std::unordered_map<std::vector<Code>, std::pair<Code, int>,
                     relational::CodeVecHash>
      groups_wide;
  std::vector<Code> key(nlhs);

  // Blockwise: gather this block's X and A codes into dense scratch
  // columns, fold the scalar walk's NULL skips into one bitmap with
  // MaskNeAnd32, and group; the block after a conflict exits, so a
  // failing candidate does O(block) work like the scalar walk's
  // first-conflict break did.
  for (size_t lo = 0; lo < n && *holds; lo += kGatherBlock) {
    const size_t m = std::min(kGatherBlock, n - lo);
    for (size_t k = 0; k < nlhs; ++k) {
      const relational::CodeColumn& col = enc.column(lhs[k]);
      for (size_t i = 0; i < m; ++i) {
        s->lhs_cols[k][i] = col[static_cast<size_t>(cls[lo + i])];
      }
    }
    for (size_t i = 0; i < m; ++i) {
      s->rhs[i] = rhs_col[static_cast<size_t>(cls[lo + i])];
    }
    const size_t mwords = simd::MaskWords(m);
    std::fill_n(s->mask.data(), mwords, ~uint64_t{0});
    if (m % 64 != 0) s->mask[mwords - 1] = ~uint64_t{0} >> (64 - m % 64);
    for (size_t k = 0; k < nlhs; ++k) {
      kn.MaskNeAnd32(s->lhs_cols[k].data(), m, kNullCode, s->mask.data());
    }
    kn.MaskNeAnd32(s->rhs.data(), m, kNullCode, s->mask.data());

    if (nlhs == 2) {
      kn.PackKeys2x32(s->lhs_cols[0].data(), s->lhs_cols[1].data(), m,
                      s->packed.data());
      simd::ForEachSetBit(s->mask.data(), mwords, [&](size_t i) {
        if (!*holds) return;
        auto [it, fresh] =
            groups2.emplace(s->packed[i], std::make_pair(s->rhs[i], 0));
        if (!fresh && it->second.first != s->rhs[i]) {
          *holds = false;
          return;
        }
        ++it->second.second;
      });
    } else {
      simd::ForEachSetBit(s->mask.data(), mwords, [&](size_t i) {
        if (!*holds) return;
        for (size_t k = 0; k < nlhs; ++k) key[k] = s->lhs_cols[k][i];
        auto [it, fresh] = groups_wide.emplace(key, std::make_pair(s->rhs[i], 0));
        if (!fresh && it->second.first != s->rhs[i]) {
          *holds = false;
          return;
        }
        ++it->second.second;
      });
    }
  }
  if (!*holds) return;
  // Evidence = tuples in groups of size >= 2 (identical to the scalar
  // walk's incremental +2/+1 counting).
  for (const auto& [k2, g] : groups2) {
    if (g.second >= 2) *evidence += static_cast<size_t>(g.second);
  }
  for (const auto& [k2, g] : groups_wide) {
    if (g.second >= 2) *evidence += static_cast<size_t>(g.second);
  }
}

/// Row-space fallback of VariableEvidenceEncoded (use_encoded = false).
void VariableEvidenceRows(const relational::Relation& rel,
                          const std::vector<TupleId>& cls,
                          const std::vector<size_t>& lhs, size_t rhs,
                          bool* holds, size_t* evidence) {
  *holds = true;
  *evidence = 0;
  std::unordered_map<Row, Value, relational::RowHash, relational::RowEq>
      group_rhs;
  std::unordered_map<Row, int, relational::RowHash, relational::RowEq>
      group_size;
  for (TupleId tid : cls) {
    const Row& row = rel.row(tid);
    Row key;
    bool skip = false;
    for (size_t c : lhs) {
      if (row[c].is_null()) {
        skip = true;
        break;
      }
      key.push_back(row[c]);
    }
    if (skip || row[rhs].is_null()) continue;
    auto [it, fresh] = group_rhs.emplace(key, row[rhs]);
    if (!fresh && !(it->second == row[rhs])) {
      *holds = false;
      return;
    }
    const int n = ++group_size[key];
    if (n == 2) {
      *evidence += 2;  // the group just became nontrivial
    } else if (n > 2) {
      ++*evidence;
    }
  }
}

}  // namespace

common::Result<std::vector<Cfd>> CfdMiner::Mine() {
  const auto& schema = rel_->schema();
  const size_t ncols = schema.size();
  std::vector<Cfd> out;

  // One columnar encode pass feeds every partition and evidence scan below.
  std::unique_ptr<relational::EncodedRelation> encoded;
  if (options_.use_encoded) {
    encoded = std::make_unique<relational::EncodedRelation>(rel_, nullptr,
                                                            options_.cancel);
  }

  // Lane resolution is shared with the embedded FdMiner run below.
  std::unique_ptr<common::ThreadPool> local_pool;
  common::ThreadPool* pool =
      common::ResolvePool(options_.pool, options_.num_threads, &local_pool);
  const bool parallel = pool != nullptr && pool->num_threads() > 1 && ncols > 0;

  // Two-generation partition memory (bases pinned): at level k the
  // candidates fill the current generation from the previous one's
  // prefixes, and the left-reduction's (k-1)-subsets all sit in the
  // previous generation, so Rotate() after each level keeps residency
  // bounded without forcing rebuilds.
  PartitionCache cache(rel_, encoded.get(), options_.simd_level);
  // BuildBases also pays row hydration once before any fan-out (the
  // candidate tasks below read rows for pattern constants, and lazy
  // hydration is not thread-safe).
  if (parallel) cache.BuildBases(ncols, pool);
  const simd::Kernels& kn = simd::KernelsFor(options_.simd_level);

  // During the interleaved sweep below this holds every minimal FD from
  // levels <= the one being mined — exactly the set that can prune a
  // level-k conditional candidate, since a larger FD's LHS is never a
  // subset of a same-or-smaller candidate's. After the sweep it is the
  // complete list.
  std::vector<DiscoveredFd> global_fds;
  auto fd_holds_globally = [&](const std::vector<size_t>& lhs, size_t rhs) {
    for (const DiscoveredFd& fd : global_fds) {
      if (fd.rhs_col != rhs) continue;
      if (std::includes(lhs.begin(), lhs.end(), fd.lhs_cols.begin(),
                        fd.lhs_cols.end())) {
        return true;
      }
    }
    return false;
  };

  auto attr_names = [&](const std::vector<size_t>& cols) {
    std::vector<std::string> names;
    names.reserve(cols.size());
    for (size_t c : cols) names.push_back(schema.attr(c).name);
    return names;
  };

  // Mines every constant and variable CFD for one candidate LHS into
  // `local`, in the serial sweep's (rhs-ascending, constant-then-variable)
  // emission order. Pure function of the candidate plus read-only shared
  // state (partitions are deterministic, the cache is thread-safe), so
  // candidates fan out freely.
  auto mine_candidate = [&](const std::vector<size_t>& lhs,
                            std::vector<Cfd>* local) {
    if (options_.cancel != nullptr && !options_.cancel->Check().ok()) return;
    const Partition& px = cache.Get(lhs);
    EvidenceScratch scratch;
    for (size_t rhs = 0; rhs < ncols; ++rhs) {
      if (std::find(lhs.begin(), lhs.end(), rhs) != lhs.end()) continue;
      const bool global = fd_holds_globally(lhs, rhs);

      // ---- Constant CFDs: per class of Π_X with support, A constant.
      if (options_.mine_constant && !global) {
        std::vector<PatternTuple> rows;
        for (const auto& cls : px.classes()) {
          if (cls.size() < options_.min_support) continue;
          Value shared;
          if (encoded ? !ConstantOnEncoded(*encoded, kn, cls, rhs, &shared,
                                           &scratch.constant)
                      : !ConstantOn(*rel_, cls, rhs, &shared)) {
            continue;
          }
          // Left-reduction: skip when dropping any one LHS attribute
          // still yields a constant class with the same value.
          bool reducible = false;
          if (lhs.size() > 1) {
            for (size_t drop = 0; drop < lhs.size() && !reducible; ++drop) {
              std::vector<size_t> sub;
              for (size_t i = 0; i < lhs.size(); ++i) {
                if (i != drop) sub.push_back(lhs[i]);
              }
              const Partition& psub = cache.Get(sub);
              const int32_t cid = psub.ClassOf(cls.front());
              if (cid < 0) continue;
              // Find the materialized class (non-singleton) with this id.
              for (const auto& sup : psub.classes()) {
                if (psub.ClassOf(sup.front()) != cid) continue;
                Value sub_shared;
                if (sup.size() >= options_.min_support &&
                    (encoded ? ConstantOnEncoded(*encoded, kn, sup, rhs,
                                                 &sub_shared,
                                                 &scratch.constant)
                             : ConstantOn(*rel_, sup, rhs, &sub_shared)) &&
                    sub_shared == shared) {
                  reducible = true;
                }
                break;
              }
            }
          }
          if (reducible) continue;
          PatternTuple pt;
          const Row& sample = rel_->row(cls.front());
          for (size_t c : lhs) pt.lhs.push_back(PatternValue::Constant(sample[c]));
          pt.rhs = PatternValue::Constant(shared);
          rows.push_back(std::move(pt));
          if (rows.size() >= options_.max_patterns_per_fd) break;
        }
        if (!rows.empty()) {
          local->emplace_back(rel_->name(), attr_names(lhs),
                              schema.attr(rhs).name, std::move(rows));
        }
      }

      // ---- Variable CFDs: condition one LHS attribute on a constant.
      if (options_.mine_variable && !global && lhs.size() >= 2) {
        std::vector<PatternTuple> rows;
        for (size_t cond = 0; cond < lhs.size() && rows.size() <
                                                      options_.max_patterns_per_fd;
             ++cond) {
          const Partition& pc = cache.Get({lhs[cond]});
          for (const auto& cls : pc.classes()) {
            if (cls.size() < options_.min_support) continue;
            // Does X -> A hold within σ_{C=c}? Group the class members by
            // their full X projection and require constant A per group.
            // Evidence = tuples sitting in X-groups of size >= 2, i.e. the
            // tuples the conditioned FD actually constrains. Requiring
            // min_support *evidence* (not just a populous conditioning
            // class) is what separates domain rules from sampling
            // coincidences.
            bool holds = true;
            size_t evidence = 0;
            if (encoded) {
              VariableEvidenceEncoded(*encoded, kn, cls, lhs, rhs, &scratch,
                                      &holds, &evidence);
            } else {
              VariableEvidenceRows(*rel_, cls, lhs, rhs, &holds, &evidence);
            }
            if (!holds || evidence < options_.min_support) continue;
            PatternTuple pt;
            const Value& c_value = rel_->cell(cls.front(), lhs[cond]);
            for (size_t i = 0; i < lhs.size(); ++i) {
              pt.lhs.push_back(i == cond ? PatternValue::Constant(c_value)
                                         : PatternValue::Wildcard());
            }
            pt.rhs = PatternValue::Wildcard();
            rows.push_back(std::move(pt));
            if (rows.size() >= options_.max_patterns_per_fd) break;
          }
        }
        if (!rows.empty()) {
          local->emplace_back(rel_->name(), attr_names(lhs),
                              schema.attr(rhs).name, std::move(rows));
        }
      }
    }
  };

  // Mines one lattice level: candidates materialize in lexicographic order
  // into per-candidate slots (fanned out when parallel) and the slots replay
  // in order into the level's buffer — byte-identical to the serial sweep
  // for every thread count.
  std::vector<std::vector<Cfd>> level_cfds(options_.max_lhs + 1);
  auto run_level = [&](size_t level) {
    std::vector<std::vector<size_t>> cands;
    ForEachSubset(ncols, level,
                  [&](const std::vector<size_t>& lhs) { cands.push_back(lhs); });
    std::vector<std::vector<Cfd>> slots(cands.size());
    if (parallel) {
      pool->Run(cands.size(),
                [&](size_t i) { mine_candidate(cands[i], &slots[i]); });
    } else {
      for (size_t i = 0; i < cands.size(); ++i) {
        mine_candidate(cands[i], &slots[i]);
      }
    }
    for (std::vector<Cfd>& slot : slots) {
      for (Cfd& c : slot) level_cfds[level].push_back(std::move(c));
    }
  };

  // The embedded FD run shares this miner's encode pass, partition cache,
  // and lanes — and its after-level hook runs the conditional sweep for
  // level k while the level-k partitions the FD validation just used are
  // still resident (level k in the cache's previous generation, singleton
  // bases pinned). The old back-to-back sweeps rebuilt every level's
  // partitions a second time after the FD rotations evicted them; the
  // interleaved sweep pays only the left-reduction's (k-1)-subset rebuilds
  // at k >= 3. Global FDs both seed all-wildcard CFDs and prune redundant
  // conditional forms.
  FdMinerOptions fd_opts;
  fd_opts.max_lhs = options_.max_lhs;
  fd_opts.cancel = options_.cancel;
  FdMiner fd_miner(rel_, fd_opts);
  global_fds = fd_miner.Mine(
      &cache, pool, [&](size_t level, const std::vector<DiscoveredFd>& found) {
        global_fds = found;
        run_level(level);
      });
  // A tripped token made the interleaved sweep stop early with partial
  // buffers; discard them and surface the cancellation instead.
  SEMANDAQ_RETURN_IF_CANCELLED(options_.cancel);

  // Assemble in the historical order: all-wildcard global FDs first, then
  // the buffered conditional levels ascending.
  if (options_.include_global_fds) {
    for (const DiscoveredFd& fd : global_fds) {
      PatternTuple pt;
      pt.lhs.assign(fd.lhs_cols.size(), PatternValue::Wildcard());
      pt.rhs = PatternValue::Wildcard();
      out.emplace_back(rel_->name(), attr_names(fd.lhs_cols),
                       schema.attr(fd.rhs_col).name,
                       std::vector<PatternTuple>{std::move(pt)});
    }
  }
  for (std::vector<Cfd>& buffered : level_cfds) {
    for (Cfd& c : buffered) out.push_back(std::move(c));
  }
  return out;
}

}  // namespace semandaq::discovery
