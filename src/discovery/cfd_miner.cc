#include "discovery/cfd_miner.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "common/thread_pool.h"
#include "discovery/fd_miner.h"
#include "discovery/partition.h"
#include "relational/encoded_relation.h"

namespace semandaq::discovery {

namespace {

using cfd::Cfd;
using cfd::PatternTuple;
using cfd::PatternValue;
using relational::Row;
using relational::TupleId;
using relational::Value;

void ForEachSubset(size_t n, size_t k,
                   const std::function<void(const std::vector<size_t>&)>& fn) {
  if (k > n) return;
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    fn(idx);
    size_t i = k;
    bool advanced = false;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced) return;
  }
}

/// Is attribute `rhs` constant (and non-null) over the given tuples?
/// When yes, the shared value lands in *value.
bool ConstantOn(const relational::Relation& rel, const std::vector<TupleId>& tids,
                size_t rhs, Value* value) {
  bool first = true;
  for (TupleId tid : tids) {
    const Value& v = rel.cell(tid, rhs);
    if (v.is_null()) return false;
    if (first) {
      *value = v;
      first = false;
    } else if (!(v == *value)) {
      return false;
    }
  }
  return !first;
}

/// Code-space twin of ConstantOn: one integer compare per tuple.
bool ConstantOnEncoded(const relational::EncodedRelation& enc,
                       const std::vector<TupleId>& tids, size_t rhs,
                       Value* value) {
  using relational::Code;
  const std::vector<Code>& codes = enc.column(rhs);
  Code shared = relational::kNullCode;
  for (TupleId tid : tids) {
    const Code c = codes[static_cast<size_t>(tid)];
    if (c == relational::kNullCode) return false;
    if (shared == relational::kNullCode) {
      shared = c;
    } else if (c != shared) {
      return false;
    }
  }
  if (shared == relational::kNullCode) return false;
  *value = enc.Decode(rhs, shared);
  return true;
}

}  // namespace

common::Result<std::vector<Cfd>> CfdMiner::Mine() {
  const auto& schema = rel_->schema();
  const size_t ncols = schema.size();
  std::vector<Cfd> out;

  // One columnar encode pass feeds every partition and evidence scan below.
  std::unique_ptr<relational::EncodedRelation> encoded;
  if (options_.use_encoded) {
    encoded = std::make_unique<relational::EncodedRelation>(rel_);
  }

  // Shared partition cache.
  std::map<std::vector<size_t>, Partition> cache;

  // Independent per-attribute base builds fan out over a borrowed pool
  // (identical output to the lazy serial build — see FdMinerOptions::pool).
  if (options_.pool != nullptr && options_.pool->num_threads() > 1 &&
      ncols > 0) {
    rel_->EnsureHydrated();  // hydration is not thread-safe; pay it once
    std::vector<Partition> bases(ncols);
    options_.pool->Run(ncols, [&](size_t c) {
      bases[c] = encoded ? Partition::Build(*encoded, {c})
                         : Partition::Build(*rel_, {c});
    });
    for (size_t c = 0; c < ncols; ++c) {
      cache.emplace(std::vector<size_t>{c}, std::move(bases[c]));
    }
  }
  std::function<const Partition&(const std::vector<size_t>&)> partition_of =
      [&](const std::vector<size_t>& cols) -> const Partition& {
    auto it = cache.find(cols);
    if (it != cache.end()) return it->second;
    Partition p;
    if (cols.size() <= 1) {
      p = encoded ? Partition::Build(*encoded, cols)
                  : Partition::Build(*rel_, cols);
    } else {
      std::vector<size_t> prefix(cols.begin(), cols.end() - 1);
      p = Partition::Intersect(partition_of(prefix), partition_of({cols.back()}));
    }
    return cache.emplace(cols, std::move(p)).first->second;
  };

  // Global minimal FDs first (they both seed all-wildcard CFDs and prune
  // redundant conditional forms).
  FdMinerOptions fd_opts;
  fd_opts.max_lhs = options_.max_lhs;
  fd_opts.pool = options_.pool;
  FdMiner fd_miner(rel_, fd_opts);
  const std::vector<DiscoveredFd> global_fds = fd_miner.Mine();
  auto fd_holds_globally = [&](const std::vector<size_t>& lhs, size_t rhs) {
    for (const DiscoveredFd& fd : global_fds) {
      if (fd.rhs_col != rhs) continue;
      if (std::includes(lhs.begin(), lhs.end(), fd.lhs_cols.begin(),
                        fd.lhs_cols.end())) {
        return true;
      }
    }
    return false;
  };

  auto attr_names = [&](const std::vector<size_t>& cols) {
    std::vector<std::string> names;
    names.reserve(cols.size());
    for (size_t c : cols) names.push_back(schema.attr(c).name);
    return names;
  };

  if (options_.include_global_fds) {
    for (const DiscoveredFd& fd : global_fds) {
      PatternTuple pt;
      pt.lhs.assign(fd.lhs_cols.size(), PatternValue::Wildcard());
      pt.rhs = PatternValue::Wildcard();
      out.emplace_back(rel_->name(), attr_names(fd.lhs_cols),
                       schema.attr(fd.rhs_col).name,
                       std::vector<PatternTuple>{std::move(pt)});
    }
  }

  for (size_t level = 1; level <= options_.max_lhs && level < ncols; ++level) {
    ForEachSubset(ncols, level, [&](const std::vector<size_t>& lhs) {
      const Partition& px = partition_of(lhs);
      for (size_t rhs = 0; rhs < ncols; ++rhs) {
        if (std::find(lhs.begin(), lhs.end(), rhs) != lhs.end()) continue;
        const bool global = fd_holds_globally(lhs, rhs);

        // ---- Constant CFDs: per class of Π_X with support, A constant.
        if (options_.mine_constant && !global) {
          std::vector<PatternTuple> rows;
          for (const auto& cls : px.classes()) {
            if (cls.size() < options_.min_support) continue;
            Value shared;
            if (encoded ? !ConstantOnEncoded(*encoded, cls, rhs, &shared)
                        : !ConstantOn(*rel_, cls, rhs, &shared)) {
              continue;
            }
            // Left-reduction: skip when dropping any one LHS attribute
            // still yields a constant class with the same value.
            bool reducible = false;
            if (lhs.size() > 1) {
              for (size_t drop = 0; drop < lhs.size() && !reducible; ++drop) {
                std::vector<size_t> sub;
                for (size_t i = 0; i < lhs.size(); ++i) {
                  if (i != drop) sub.push_back(lhs[i]);
                }
                const Partition& psub = partition_of(sub);
                const int32_t cid = psub.ClassOf(cls.front());
                if (cid < 0) continue;
                // Find the materialized class (non-singleton) with this id.
                for (const auto& sup : psub.classes()) {
                  if (psub.ClassOf(sup.front()) != cid) continue;
                  Value sub_shared;
                  if (sup.size() >= options_.min_support &&
                      (encoded ? ConstantOnEncoded(*encoded, sup, rhs, &sub_shared)
                               : ConstantOn(*rel_, sup, rhs, &sub_shared)) &&
                      sub_shared == shared) {
                    reducible = true;
                  }
                  break;
                }
              }
            }
            if (reducible) continue;
            PatternTuple pt;
            const Row& sample = rel_->row(cls.front());
            for (size_t c : lhs) pt.lhs.push_back(PatternValue::Constant(sample[c]));
            pt.rhs = PatternValue::Constant(shared);
            rows.push_back(std::move(pt));
            if (rows.size() >= options_.max_patterns_per_fd) break;
          }
          if (!rows.empty()) {
            out.emplace_back(rel_->name(), attr_names(lhs), schema.attr(rhs).name,
                             std::move(rows));
          }
        }

        // ---- Variable CFDs: condition one LHS attribute on a constant.
        if (options_.mine_variable && !global && lhs.size() >= 2) {
          std::vector<PatternTuple> rows;
          for (size_t cond = 0; cond < lhs.size() && rows.size() <
                                                        options_.max_patterns_per_fd;
               ++cond) {
            const Partition& pc = partition_of({lhs[cond]});
            for (const auto& cls : pc.classes()) {
              if (cls.size() < options_.min_support) continue;
              // Does X -> A hold within σ_{C=c}? Group the class members by
              // their full X projection and require constant A per group.
              bool holds = true;
              // Evidence = tuples sitting in X-groups of size >= 2, i.e. the
              // tuples the conditioned FD actually constrains. Requiring
              // min_support *evidence* (not just a populous conditioning
              // class) is what separates domain rules from sampling
              // coincidences.
              size_t evidence = 0;
              if (encoded) {
                // Code-space grouping: (rhs code, group size) per X code key.
                using relational::Code;
                std::unordered_map<std::vector<Code>, std::pair<Code, int>,
                                   relational::CodeVecHash>
                    groups;
                std::vector<Code> key(lhs.size());
                for (TupleId tid : cls) {
                  bool skip = false;
                  for (size_t i = 0; i < lhs.size(); ++i) {
                    key[i] = encoded->code(tid, lhs[i]);
                    if (key[i] == relational::kNullCode) {
                      skip = true;
                      break;
                    }
                  }
                  const Code a = encoded->code(tid, rhs);
                  if (skip || a == relational::kNullCode) continue;
                  auto [it, fresh] = groups.emplace(key, std::make_pair(a, 0));
                  if (!fresh && it->second.first != a) {
                    holds = false;
                    break;
                  }
                  const int n = ++it->second.second;
                  if (n == 2) {
                    evidence += 2;  // the group just became nontrivial
                  } else if (n > 2) {
                    ++evidence;
                  }
                }
              } else {
                std::unordered_map<Row, Value, relational::RowHash,
                                   relational::RowEq>
                    group_rhs;
                std::unordered_map<Row, int, relational::RowHash,
                                   relational::RowEq>
                    group_size;
                for (TupleId tid : cls) {
                  const Row& row = rel_->row(tid);
                  Row key;
                  bool skip = false;
                  for (size_t c : lhs) {
                    if (row[c].is_null()) {
                      skip = true;
                      break;
                    }
                    key.push_back(row[c]);
                  }
                  if (skip || row[rhs].is_null()) continue;
                  auto [it, fresh] = group_rhs.emplace(key, row[rhs]);
                  if (!fresh) {
                    if (!(it->second == row[rhs])) {
                      holds = false;
                      break;
                    }
                  }
                  const int n = ++group_size[key];
                  if (n == 2) {
                    evidence += 2;  // the group just became nontrivial
                  } else if (n > 2) {
                    ++evidence;
                  }
                }
              }
              if (!holds || evidence < options_.min_support) continue;
              PatternTuple pt;
              const Value& c_value = rel_->cell(cls.front(), lhs[cond]);
              for (size_t i = 0; i < lhs.size(); ++i) {
                pt.lhs.push_back(i == cond ? PatternValue::Constant(c_value)
                                           : PatternValue::Wildcard());
              }
              pt.rhs = PatternValue::Wildcard();
              rows.push_back(std::move(pt));
              if (rows.size() >= options_.max_patterns_per_fd) break;
            }
          }
          if (!rows.empty()) {
            out.emplace_back(rel_->name(), attr_names(lhs), schema.attr(rhs).name,
                             std::move(rows));
          }
        }
      }
    });
  }
  return out;
}

}  // namespace semandaq::discovery
