#ifndef SEMANDAQ_DISCOVERY_FD_MINER_H_
#define SEMANDAQ_DISCOVERY_FD_MINER_H_

#include <vector>

#include "discovery/partition.h"
#include "relational/relation.h"

namespace semandaq::common {
class ThreadPool;
}  // namespace semandaq::common

namespace semandaq::discovery {

/// A functional dependency X -> A discovered from data, by column ordinals.
struct DiscoveredFd {
  std::vector<size_t> lhs_cols;  // sorted ascending
  size_t rhs_col = 0;
};

struct FdMinerOptions {
  /// Maximum LHS size to explore (levelwise lattice depth).
  size_t max_lhs = 3;
  /// Build base partitions from a dictionary-encoded snapshot (one encode
  /// pass, then pure integer grouping) instead of hashing projected Rows.
  bool use_encoded = true;
  /// Borrowed worker pool (e.g. the Semandaq facade's): the per-attribute
  /// Partition::Build calls of the base level are independent, so Mine()
  /// fans them out over the pool's lanes before the levelwise sweep.
  /// Products are derived from the cached bases either way, so the mined
  /// output is identical to the serial build. nullptr = serial.
  common::ThreadPool* pool = nullptr;
};

/// TANE-style levelwise FD discovery on stripped partitions: candidate
/// X -> A is valid iff Π_X refines Π_{X∪{A}}. Only minimal FDs are emitted
/// (no discovered FD's LHS contains another's for the same RHS).
///
/// This is both a substrate of the CFD miner and the classical baseline the
/// constraint engine falls back to when no conditioning helps.
class FdMiner {
 public:
  explicit FdMiner(const relational::Relation* rel, FdMinerOptions options = {})
      : rel_(rel), options_(options) {}

  std::vector<DiscoveredFd> Mine();

  /// Checks one FD directly (exposed for tests and the CFD miner).
  static bool Holds(const relational::Relation& rel, const std::vector<size_t>& lhs,
                    size_t rhs);

 private:
  const relational::Relation* rel_;
  FdMinerOptions options_;
};

}  // namespace semandaq::discovery

#endif  // SEMANDAQ_DISCOVERY_FD_MINER_H_
