#ifndef SEMANDAQ_DISCOVERY_FD_MINER_H_
#define SEMANDAQ_DISCOVERY_FD_MINER_H_

#include <functional>
#include <vector>

#include "common/cancel.h"
#include "discovery/partition.h"
#include "relational/relation.h"

namespace semandaq::common {
class ThreadPool;
}  // namespace semandaq::common

namespace semandaq::discovery {

/// A functional dependency X -> A discovered from data, by column ordinals.
struct DiscoveredFd {
  std::vector<size_t> lhs_cols;  // sorted ascending
  size_t rhs_col = 0;
};

struct FdMinerOptions {
  /// Maximum LHS size to explore (levelwise lattice depth).
  size_t max_lhs = 3;
  /// Build base partitions from a dictionary-encoded snapshot (one encode
  /// pass, then pure integer grouping) instead of hashing projected Rows.
  bool use_encoded = true;
  /// Lanes for the per-level candidate fan-out: 1 = serial sweep (the
  /// default), 0 = one lane per hardware thread, N = N lanes. When no
  /// borrowed `pool` is attached, the miner spins up its own pool for the
  /// Mine() call. Mined output is byte-identical for every thread count —
  /// candidates are validated into per-candidate slots and emitted in the
  /// serial sweep's exact lexicographic order.
  size_t num_threads = 1;
  /// Borrowed worker pool (e.g. the Semandaq facade's). When attached with
  /// more than one lane it powers both the base-partition builds and the
  /// per-level candidate fan-out, overriding `num_threads`. nullptr =
  /// honor `num_threads`.
  common::ThreadPool* pool = nullptr;
  /// Kernel tier for the partition builds, intersect probe loops, and
  /// evidence scans (kAuto = the host's best; see docs/simd.md). Every
  /// tier mines the identical output.
  common::simd::Level simd_level = common::simd::Level::kAuto;
  /// Decide candidates by the O(1) stripped-partition error test
  /// e(X) == e(X∪A) when the covers match, instead of walking classes
  /// (see RefinesForFd). Output is identical either way; the knob exists
  /// for the A/B bench.
  bool use_error_exit = true;
  /// Cooperative cancellation (common/cancel.h), checked at level and
  /// candidate boundaries. Mine() returns a vector, so a tripped token
  /// makes the sweep stop early with a *partial* result — callers that
  /// pass a token must re-check it after Mine() and discard the output
  /// (CfdMiner turns it into Status::Cancelled). nullptr = not cancellable.
  common::CancelToken* cancel = nullptr;
};

/// TANE-style levelwise FD discovery on stripped partitions: candidate
/// X -> A is valid iff Π_X refines Π_{X∪{A}}. Only minimal FDs are emitted
/// (no discovered FD's LHS contains another's for the same RHS).
///
/// The sweep fans each level's candidates out over a thread pool (one task
/// per candidate LHS; see FdMinerOptions::num_threads) and keeps partition
/// memory level-scoped through a two-generation PartitionCache. Mined
/// output is byte-identical to the serial sweep for every thread count and
/// kernel tier.
///
/// This is both a substrate of the CFD miner and the classical baseline the
/// constraint engine falls back to when no conditioning helps.
class FdMiner {
 public:
  explicit FdMiner(const relational::Relation* rel, FdMinerOptions options = {})
      : rel_(rel), options_(options) {}

  std::vector<DiscoveredFd> Mine();

  /// Invoked after each lattice level's minimal FDs are emitted and
  /// *before* the cache rotates past that level: `found` is every FD from
  /// levels 1..`level`. At that moment the level-k candidate partitions
  /// are still resident (level k in the previous generation, the freshly
  /// built level-(k+1) products in the current one, singleton bases
  /// pinned), so a caller piggybacking its own level-k pass — the CFD
  /// miner's conditional sweep — reads them out of the shared cache
  /// instead of rebuilding them after the FD run rotated them away.
  using LevelHook =
      std::function<void(size_t level, const std::vector<DiscoveredFd>& found)>;

  /// Mines through a caller-provided partition cache and lanes — the CFD
  /// miner shares its encode pass and PartitionCache with this embedded
  /// run instead of paying both twice. The cache is populated and
  /// Rotate()d by the sweep (call between your own levels only);
  /// `pool` may be null (serial sweep). Only `max_lhs` and
  /// `use_error_exit` of the options apply — the cache already fixes the
  /// encode path and kernel tier. Output is identical to Mine().
  std::vector<DiscoveredFd> Mine(PartitionCache* cache,
                                 common::ThreadPool* pool,
                                 const LevelHook& after_level = {});

  /// Checks one FD directly (exposed for tests and the CFD miner). With
  /// `use_encoded` (the default) both partitions come off one dictionary
  /// encode pass — the same build path Mine() uses — instead of hashing
  /// projected Rows.
  static bool Holds(const relational::Relation& rel, const std::vector<size_t>& lhs,
                    size_t rhs, bool use_encoded = true);

 private:
  const relational::Relation* rel_;
  FdMinerOptions options_;
};

}  // namespace semandaq::discovery

#endif  // SEMANDAQ_DISCOVERY_FD_MINER_H_
