#include "discovery/fd_miner.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>

#include "common/thread_pool.h"
#include "relational/encoded_relation.h"

namespace semandaq::discovery {

namespace {

/// All size-k subsets of {0..n-1}, emitted in lexicographic order.
void ForEachSubset(size_t n, size_t k,
                   const std::function<void(const std::vector<size_t>&)>& fn) {
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  if (k > n) return;
  while (true) {
    fn(idx);
    // Advance.
    size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
    if (k == 0) return;
  }
}

}  // namespace

bool FdMiner::Holds(const relational::Relation& rel, const std::vector<size_t>& lhs,
                    size_t rhs, bool use_encoded) {
  std::vector<size_t> xa = lhs;
  xa.push_back(rhs);
  std::sort(xa.begin(), xa.end());
  if (use_encoded) {
    const relational::EncodedRelation encoded(&rel);
    const Partition px = Partition::Build(encoded, lhs);
    const Partition pxa = Partition::Build(encoded, xa);
    return RefinesForFd(px, pxa);
  }
  const Partition px = Partition::Build(rel, lhs);
  const Partition pxa = Partition::Build(rel, xa);
  return RefinesForFd(px, pxa);
}

std::vector<DiscoveredFd> FdMiner::Mine() {
  // Base partitions come from the dictionary-encoded snapshot when enabled:
  // singletons then cost one dense code->class array pass each, with the
  // array sized directly from the dictionary cardinality.
  std::unique_ptr<relational::EncodedRelation> encoded;
  if (options_.use_encoded) {
    encoded = std::make_unique<relational::EncodedRelation>(rel_, nullptr,
                                                           options_.cancel);
  }
  std::unique_ptr<common::ThreadPool> local_pool;
  common::ThreadPool* pool =
      common::ResolvePool(options_.pool, options_.num_threads, &local_pool);
  // Two-generation partition memory: bases pinned, level k-1 products kept
  // for the intersect recurrence, level k products filling. Rotate() after
  // each level evicts everything older (rebuilt on demand if a pruning
  // path asks again).
  PartitionCache cache(rel_, encoded.get(), options_.simd_level);
  return Mine(&cache, pool);
}

std::vector<DiscoveredFd> FdMiner::Mine(PartitionCache* cache,
                                        common::ThreadPool* pool,
                                        const LevelHook& after_level) {
  const size_t ncols = rel_->schema().size();
  std::vector<DiscoveredFd> found;
  // rhs -> list of minimal LHS sets found so far.
  std::map<size_t, std::vector<std::vector<size_t>>> minimal_lhs;

  const bool parallel = pool != nullptr && pool->num_threads() > 1 && ncols > 0;
  // BuildBases also pays row hydration once before the fan-out (it is not
  // thread-safe lazily) — a no-op when the CFD miner primed the cache.
  if (parallel) cache->BuildBases(ncols, pool);

  auto has_subset_fd = [&](const std::vector<size_t>& lhs, size_t rhs) {
    auto it = minimal_lhs.find(rhs);
    if (it == minimal_lhs.end()) return false;
    for (const auto& sub : it->second) {
      if (std::includes(lhs.begin(), lhs.end(), sub.begin(), sub.end())) return true;
    }
    return false;
  };

  common::CancelToken* cancel = options_.cancel;
  for (size_t level = 1; level <= options_.max_lhs && level < ncols; ++level) {
    if (cancel != nullptr && !cancel->Check().ok()) return found;
    // Materialize this level's candidates up front, in the lexicographic
    // order the serial sweep visits them.
    std::vector<std::vector<size_t>> cands;
    ForEachSubset(ncols, level,
                  [&](const std::vector<size_t>& lhs) { cands.push_back(lhs); });

    // Per-candidate work lists. Minimality pruning only depends on FDs from
    // strictly smaller levels (two same-size LHS sets never contain one
    // another), so the skip set is fixed before the fan-out and candidates
    // are mutually independent.
    struct Slot {
      std::vector<size_t> rhs;     // RHS columns to validate, ascending
      std::vector<uint8_t> holds;  // parallel to rhs
    };
    std::vector<Slot> slots(cands.size());
    for (size_t i = 0; i < cands.size(); ++i) {
      const std::vector<size_t>& lhs = cands[i];
      for (size_t rhs = 0; rhs < ncols; ++rhs) {
        if (std::find(lhs.begin(), lhs.end(), rhs) != lhs.end()) continue;
        if (has_subset_fd(lhs, rhs)) continue;  // not minimal
        slots[i].rhs.push_back(rhs);
      }
      slots[i].holds.assign(slots[i].rhs.size(), 0);
    }

    // Validate: one task per candidate, results into its slot. Every
    // Refines/error-test outcome is a pure function of the (deterministic)
    // partitions, so the fan-out cannot perturb the mined set.
    auto validate = [&](size_t i) {
      if (cancel != nullptr && !cancel->Check().ok()) return;
      const std::vector<size_t>& lhs = cands[i];
      Slot& slot = slots[i];
      if (slot.rhs.empty()) return;
      const Partition& px = cache->Get(lhs);
      std::vector<size_t> xa(lhs.size() + 1);
      for (size_t j = 0; j < slot.rhs.size(); ++j) {
        xa.assign(lhs.begin(), lhs.end());
        xa.push_back(slot.rhs[j]);
        std::sort(xa.begin(), xa.end());
        const Partition& pxa = cache->Get(xa);
        slot.holds[j] = options_.use_error_exit ? RefinesForFd(px, pxa)
                                                : px.Refines(pxa);
      }
    };
    if (parallel) {
      pool->Run(cands.size(), validate);
    } else {
      for (size_t i = 0; i < cands.size(); ++i) validate(i);
    }
    // A cancel mid-level left slots unvalidated; stop before emitting them
    // (the caller re-checks the token and discards the partial result).
    if (cancel != nullptr && !cancel->Check().ok()) return found;

    // Emit in the serial sweep's exact order: candidates lexicographic,
    // RHS ascending within each.
    for (size_t i = 0; i < cands.size(); ++i) {
      for (size_t j = 0; j < slots[i].rhs.size(); ++j) {
        if (!slots[i].holds[j]) continue;
        found.push_back(DiscoveredFd{cands[i], slots[i].rhs[j]});
        minimal_lhs[slots[i].rhs[j]].push_back(cands[i]);
      }
    }
    // The hook runs while this level's partitions are still resident —
    // only then does Rotate() retire them.
    if (after_level) after_level(level, found);
    cache->Rotate();
  }
  return found;
}

}  // namespace semandaq::discovery
